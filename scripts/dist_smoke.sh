#!/usr/bin/env bash
# Distributed sweep smoke test, mirrored by the CI "Distributed smoke"
# step. On loopback, it checks the three properties the coordinator/
# worker architecture promises:
#
#   1. Byte-identity: a coordinator with two workers (one killed
#      mid-grid) writes a CSV byte-identical to the single-process
#      golden.
#   2. Resilience: the killed worker's leases time out and re-issue;
#      the sweep still finishes.
#   3. Warm cache: re-running the sweep against the populated results
#      cache completes >= 10x faster, with zero cells recomputed.
#
# Run from the repo root: bash scripts/dist_smoke.sh
set -euo pipefail
. "$(dirname "$0")/lib.sh"

EXP=fig7
SAMPLES=8
LINES=16

rcoal_init
TMP=$RCOAL_TMP

echo "== build =="
rcoal_build

ADDR=$(rcoal_pick_addr)
URL=http://$ADDR

echo "== single-process golden =="
mkdir -p "$TMP/golden"
"$RCOAL_BIN/rcoal-experiments" -run "$EXP" -samples "$SAMPLES" -lines "$LINES" \
  -csv "$TMP/golden" >/dev/null

echo "== distributed: coordinator + 2 workers, one killed mid-grid ($ADDR) =="
mkdir -p "$TMP/dist-csv" "$TMP/journal"
t0=$(now_ms)
"$RCOAL_BIN/rcoal-coordinator" -addr "$ADDR" -run "$EXP" \
  -samples "$SAMPLES" -lines "$LINES" \
  -journal "$TMP/journal" -cache "$TMP/cache" -csv "$TMP/dist-csv" \
  -lease-timeout 3s -drain-wait 500ms >/dev/null &
COORD=$!
rcoal_wait_ready "$ADDR"
"$RCOAL_BIN/rcoal-experiments" -worker "$URL" -worker-id doomed -workers 1 &
W1=$!
"$RCOAL_BIN/rcoal-experiments" -worker "$URL" -worker-id survivor -workers 2 &
W2=$!
sleep 0.5
kill "$W1" 2>/dev/null || true
echo "killed worker 'doomed' mid-grid; its leases re-issue after the 3s timeout"
wait "$COORD"
t1=$(now_ms)
kill "$W2" 2>/dev/null || true
wait "$W2" 2>/dev/null || true
cold_ms=$((t1 - t0))

diff -u "$TMP/golden/$EXP.csv" "$TMP/dist-csv/$EXP.csv"
echo "OK: distributed CSV is byte-identical to the single-process golden (${cold_ms}ms)"

echo "== warm cache: repeated sweep, no workers attached =="
mkdir -p "$TMP/warm-csv" "$TMP/journal2"
t2=$(now_ms)
"$RCOAL_BIN/rcoal-coordinator" -addr "$ADDR" -run "$EXP" \
  -samples "$SAMPLES" -lines "$LINES" \
  -journal "$TMP/journal2" -cache "$TMP/cache" -csv "$TMP/warm-csv" \
  -drain-wait 0s >/dev/null
t3=$(now_ms)
warm_ms=$((t3 - t2))

diff -u "$TMP/golden/$EXP.csv" "$TMP/warm-csv/$EXP.csv"
echo "OK: cache-served CSV is byte-identical (${warm_ms}ms)"

if [ $((warm_ms * 10)) -gt "$cold_ms" ]; then
  echo "FAIL: warm sweep (${warm_ms}ms) not >= 10x faster than cold (${cold_ms}ms)"
  exit 1
fi
echo "OK: warm sweep ${warm_ms}ms vs cold ${cold_ms}ms (>= 10x faster)"
echo "dist smoke passed"
