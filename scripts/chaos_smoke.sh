#!/usr/bin/env bash
# Chaos soak smoke test, mirrored by the CI "Chaos smoke" step. It
# runs the defense-frontier grid through real processes on a hostile
# loopback network and checks the robustness layer end to end:
#
#   1. Every worker request suffers the seeded fault schedule of
#      internal/chaos (-chaos-seed): drops, duplicated deliveries,
#      5xx bursts, torn bodies, delays, and timed partitions. The
#      schedule is deterministic — rerun with the same seed to replay
#      the exact fault sequence.
#   2. One worker is killed hard mid-sweep; its leases expire and
#      re-issue.
#   3. The coordinator is SIGTERMed mid-sweep (graceful shutdown
#      flushes the lease ledger) and restarted with -resume; the
#      surviving worker retries its way through the outage.
#   4. The final CSV must be byte-identical to the single-process
#      golden: transport faults may cost time, never bytes.
#
# Run from the repo root: bash scripts/chaos_smoke.sh [seed]
set -euo pipefail
. "$(dirname "$0")/lib.sh"

EXP=ext-defense-frontier
MECHS="baseline,fss:2,fss:4,fss:8,rss:2,rss:4,rss:8,delay:16"
SAMPLES=8
LINES=16
SEED=${1:-0xC0A150AC}
KILL_HARD=-9

rcoal_init
TMP=$RCOAL_TMP

echo "== build =="
rcoal_build

ADDR=$(rcoal_pick_addr)
URL=http://$ADDR

echo "== single-process golden =="
mkdir -p "$TMP/golden"
"$RCOAL_BIN/rcoal-experiments" -run "$EXP" -mechanisms "$MECHS" \
  -samples "$SAMPLES" -lines "$LINES" -csv "$TMP/golden" >/dev/null

echo "== chaos sweep: seeded faults ($SEED), worker killed, coordinator restarted ($ADDR) =="
mkdir -p "$TMP/chaos-csv" "$TMP/journal"
"$RCOAL_BIN/rcoal-coordinator" -addr "$ADDR" -run "$EXP" -mechanisms "$MECHS" \
  -samples "$SAMPLES" -lines "$LINES" \
  -journal "$TMP/journal" -csv "$TMP/chaos-csv" \
  -lease-timeout 2s -drain-wait 500ms >/dev/null 2>"$TMP/coord1.log" &
COORD=$!
rcoal_wait_ready "$ADDR"
"$RCOAL_BIN/rcoal-experiments" -worker "$URL" -worker-id doomed -workers 1 \
  -chaos-seed "$SEED" 2>"$TMP/doomed.log" &
W1=$!
"$RCOAL_BIN/rcoal-experiments" -worker "$URL" -worker-id survivor -workers 2 \
  -chaos-seed "$SEED" 2>"$TMP/survivor.log" &
W2=$!

sleep 0.6
kill -9 "$W1" 2>/dev/null || true
echo "killed worker 'doomed' hard mid-sweep; its leases re-issue after the 2s timeout"

sleep 0.4
if kill -TERM "$COORD" 2>/dev/null; then
  wait "$COORD" 2>/dev/null || true
  echo "SIGTERMed the coordinator mid-sweep (ledger flushed); restarting with -resume"
  "$RCOAL_BIN/rcoal-coordinator" -addr "$ADDR" -run "$EXP" -mechanisms "$MECHS" \
    -samples "$SAMPLES" -lines "$LINES" \
    -journal "$TMP/journal" -resume -csv "$TMP/chaos-csv" \
    -lease-timeout 2s -drain-wait 500ms >/dev/null 2>"$TMP/coord2.log" &
  COORD=$!
else
  echo "coordinator finished before the restart window (small grid); continuing"
fi
wait "$COORD"
kill "$W2" 2>/dev/null || true
wait "$W2" 2>/dev/null || true

grep -h "chaos plan seed" "$TMP/doomed.log" "$TMP/survivor.log" | head -1 || true
grep -h "chaos: injected" "$TMP/survivor.log" | tail -1 || true

diff -u "$TMP/golden/$EXP.csv" "$TMP/chaos-csv/$EXP.csv"
echo "OK: chaos-swept CSV is byte-identical to the single-process golden"
echo "chaos smoke passed (replay with: bash scripts/chaos_smoke.sh $SEED)"
