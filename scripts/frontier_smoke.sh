#!/usr/bin/env bash
# Defense-frontier smoke test, mirrored by the CI "Frontier smoke"
# step. Runs the ext-defense-frontier experiment end to end through the
# real binary — registry resolution, the -mechanisms filter, cell
# fan-out, CSV export — at the same reduced grid the package golden is
# pinned at, and diffs the CSV byte-for-byte against
# internal/experiments/testdata/frontier_small.golden.csv.
#
# A mismatch means either a real regression in a defense mechanism /
# the attack / the energy model, or an intentional change that must
# regenerate the golden:
#   go test ./internal/experiments -run Frontier -update
#
# Run from the repo root: bash scripts/frontier_smoke.sh
set -euo pipefail
. "$(dirname "$0")/lib.sh"

GOLDEN=internal/experiments/testdata/frontier_small.golden.csv
MECHS='fss:4,rss+rts:8,delay:16,shuffle,nocoal'

rcoal_init
TMP=$RCOAL_TMP

echo "== frontier smoke: rcoal-experiments -run ext-defense-frontier =="
rcoal_build ./cmd/rcoal-experiments
"$RCOAL_BIN/rcoal-experiments" -run ext-defense-frontier \
  -samples 10 -mechanisms "$MECHS" -csv "$TMP"

echo "== golden CSV diff =="
if ! diff -u "$GOLDEN" "$TMP/ext-defense-frontier.csv"; then
  echo "frontier_smoke: CSV diverged from $GOLDEN (regenerate with: go test ./internal/experiments -run Frontier -update)" >&2
  exit 1
fi
echo "frontier_smoke: OK (CSV byte-identical to golden)"
