#!/usr/bin/env bash
# Fleet observability smoke test, mirrored by the CI "Fleet
# observability smoke" step. Runs a 4-worker chaos-faulted distributed
# sweep with the full observability plane on and checks that
# observability is both complete and free:
#
#   1. The coordinator's /metrics and a worker's /metrics parse as
#      valid Prometheus text exposition (rcoal-obscheck -prom).
#   2. The merged fleet trace validates against the Chrome trace-event
#      schema, carries one trace id on every timeline event, and
#      contains coordinator lease spans, worker cell spans, renewal
#      events, delivery backoff marks, and injected-fault annotations
#      (rcoal-obscheck -trace).
#   3. Structured JSON logs decode line by line.
#   4. The CSV is byte-identical to a single-process run with
#      observability off: tracing and logging may never perturb
#      result bytes.
#
# Run from the repo root: bash scripts/obs_smoke.sh [seed]
set -euo pipefail
. "$(dirname "$0")/lib.sh"

EXP=ext-defense-frontier
MECHS="baseline,fss:2,fss:4,fss:8,rss:2,rss:4,rss:8,delay:16"
SAMPLES=8
LINES=16
SEED=${1:-0x0B5C0A1}

rcoal_init
TMP=$RCOAL_TMP

echo "== build =="
rcoal_build ./cmd/rcoal-experiments ./cmd/rcoal-coordinator ./cmd/rcoal-obscheck

ADDR=$(rcoal_pick_addr)
URL=http://$ADDR
WADDR=$(rcoal_pick_addr)

echo "== single-process golden (observability off) =="
mkdir -p "$TMP/golden"
"$RCOAL_BIN/rcoal-experiments" -run "$EXP" -mechanisms "$MECHS" \
  -samples "$SAMPLES" -lines "$LINES" -csv "$TMP/golden" >/dev/null

echo "== observed sweep: coordinator + 4 chaos-faulted workers ($ADDR) =="
# The short lease timeout makes renewals routine (renew tick ~100ms),
# so lease_renewed events deterministically land in the trace.
mkdir -p "$TMP/obs-csv" "$TMP/journal"
"$RCOAL_BIN/rcoal-coordinator" -addr "$ADDR" -run "$EXP" -mechanisms "$MECHS" \
  -samples "$SAMPLES" -lines "$LINES" \
  -journal "$TMP/journal" -csv "$TMP/obs-csv" \
  -lease-timeout 300ms -drain-wait 500ms \
  -trace-out "$TMP/fleet_trace.json" -log-json -flight-out "$TMP/coord_flight.json" \
  >/dev/null 2>"$TMP/coord.log" &
COORD=$!
rcoal_wait_ready "$ADDR"

WPIDS=()
for i in 1 2 3 4; do
  margs=()
  if [ "$i" = 1 ]; then
    margs=(-metrics-addr "$WADDR")
  fi
  "$RCOAL_BIN/rcoal-experiments" -worker "$URL" -worker-id "w$i" -workers 1 \
    -chaos-seed "$SEED" -log-json "${margs[@]}" 2>"$TMP/w$i.log" &
  WPIDS+=($!)
done
rcoal_wait_ready "$WADDR"

echo "== scrape /metrics mid-sweep =="
rcoal_http_get "$URL/metrics" > "$TMP/coord_metrics.txt"
rcoal_http_get "http://$WADDR/metrics" > "$TMP/worker_metrics.txt"

wait "$COORD"
for pid in "${WPIDS[@]}"; do
  kill "$pid" 2>/dev/null || true
  wait "$pid" 2>/dev/null || true
done

echo "== validate Prometheus exposition =="
"$RCOAL_BIN/rcoal-obscheck" -prom "$TMP/coord_metrics.txt"
"$RCOAL_BIN/rcoal-obscheck" -prom "$TMP/worker_metrics.txt"
grep -q '^rcoal_coordinator_pending_cells' "$TMP/coord_metrics.txt"
grep -q '^rcoal_worker_cells_completed' "$TMP/worker_metrics.txt"

echo "== validate merged fleet trace =="
"$RCOAL_BIN/rcoal-obscheck" -trace "$TMP/fleet_trace.json" -one-trace-id \
  -require "lease ,cell ,lease_renewed,chaos_fault"
# Backoff marks appear whenever a delivery retried; under the default
# chaos profile at 4 workers that is overwhelmingly likely but not
# guaranteed, so report rather than gate.
if "$RCOAL_BIN/rcoal-obscheck" -trace "$TMP/fleet_trace.json" -require backoff >/dev/null 2>&1; then
  echo "trace contains delivery backoff marks"
else
  echo "note: no delivery backoff marks this run (no completion retried)"
fi

echo "== validate structured logs =="
for f in "$TMP/coord.log" "$TMP"/w*.log; do
  grep '^{' "$f" | python3 -c 'import json,sys
n = 0
for line in sys.stdin:
    json.loads(line)
    n += 1
print(f"  {n} JSON events ok")' || { echo "FAIL: bad JSON log line in $f"; exit 1; }
done
grep -h '^{' "$TMP/coord.log" | grep -q '"msg":"lease granted"' || {
  echo "FAIL: coordinator log missing lease-grant events"; exit 1; }

echo "== CSV byte-identity: observability on vs off =="
diff -u "$TMP/golden/$EXP.csv" "$TMP/obs-csv/$EXP.csv"
echo "OK: observed sweep CSV is byte-identical to the unobserved golden"

# Keep the artifacts when the caller asks (CI uploads the trace).
if [ -n "${OBS_ARTIFACT_DIR:-}" ]; then
  mkdir -p "$OBS_ARTIFACT_DIR"
  cp "$TMP/fleet_trace.json" "$TMP/coord_metrics.txt" "$TMP/worker_metrics.txt" "$OBS_ARTIFACT_DIR/"
fi
echo "obs smoke passed (replay with: bash scripts/obs_smoke.sh $SEED)"
