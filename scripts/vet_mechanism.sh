#!/usr/bin/env bash
# Mechanism-API boundary vet, mirrored by the CI "Mechanism boundary"
# step. Since the defense-zoo refactor, every package outside
# internal/core and internal/mechanism must construct defenses through
# the mechanism registry (mechanism.FSS, mechanism.Parse, ...) — never
# by building a core.Config coalescing policy directly. Direct
# construction bypasses the registry's validation (satellite: no panic
# path from a bad config) and would let a defense exist that the CLI
# spec grammar, the frontier grid, and `rcoal list-mechanisms` cannot
# name.
#
# Plan-level types stay open: core.Plan, core.DefaultWarpSize, and the
# other non-constructor identifiers are part of the simulator's data
# plane. Tests are exempt — the differential harnesses compare against
# core.Config plans on purpose.
#
# Run from the repo root: bash scripts/vet_mechanism.sh
set -euo pipefail

pattern='core\.(Config\{|Baseline\(|FSS\(|FSSRTS\(|RSS\(|RSSRTS\(|RSSNormal\()'

hits=$(grep -rnE --include='*.go' "$pattern" . \
  | grep -v '_test\.go:' \
  | grep -v '^\./internal/core/' \
  | grep -v '^\./internal/mechanism/' \
  || true)

if [ -n "$hits" ]; then
  echo "vet_mechanism: direct core.Config construction outside internal/{core,mechanism}:" >&2
  echo "$hits" >&2
  echo "use the mechanism package (mechanism.FSS, mechanism.Parse, ...) instead" >&2
  exit 1
fi
echo "vet_mechanism: OK (no direct core.Config construction outside internal/{core,mechanism})"
