# Shared helpers for the smoke scripts (dist_smoke, chaos_smoke,
# frontier_smoke, obs_smoke). Source from the repo root:
#
#   . scripts/lib.sh
#   rcoal_init            # tmp dir + cleanup trap
#   rcoal_build           # binaries into $RCOAL_BIN
#   ADDR=$(rcoal_pick_addr)
#   rcoal_wait_ready "$ADDR"
#
# Everything here is bash + coreutils only: port probing and HTTP GET
# go through /dev/tcp, so the scripts run on CI images without curl.

# rcoal_init creates the scratch dir ($RCOAL_TMP) and installs an EXIT
# trap that kills every background job and removes it. KILL_HARD=-9
# upgrades the cleanup kill for scripts that orphan -9'd workers.
rcoal_init() {
  RCOAL_TMP=$(mktemp -d)
  RCOAL_BIN="$RCOAL_TMP/bin"
  trap 'rcoal_cleanup' EXIT
}

rcoal_cleanup() {
  jobs -p | xargs -r kill ${KILL_HARD:-} 2>/dev/null || true
  rm -rf "$RCOAL_TMP"
}

# rcoal_build compiles the named ./cmd packages (default: experiments
# + coordinator) into $RCOAL_BIN.
rcoal_build() {
  local pkgs=("$@")
  if [ ${#pkgs[@]} -eq 0 ]; then
    pkgs=(./cmd/rcoal-experiments ./cmd/rcoal-coordinator)
  fi
  go build -o "$RCOAL_BIN/" "${pkgs[@]}"
}

now_ms() { date +%s%3N; }

# rcoal_port_free probes host:port; succeeds when nothing listens.
rcoal_port_free() {
  ! (exec 3<>"/dev/tcp/$1/$2") 2>/dev/null
}

# rcoal_pick_addr prints a collision-free localhost:port, drawn at
# random from the 20000-45000 band so parallel smoke runs on one box
# do not race each other for the historical fixed ports.
rcoal_pick_addr() {
  local port
  for _ in $(seq 1 50); do
    port=$((20000 + RANDOM % 25000))
    if rcoal_port_free 127.0.0.1 "$port"; then
      echo "localhost:$port"
      return 0
    fi
  done
  echo "lib.sh: no free port found in 20000-45000" >&2
  return 1
}

# rcoal_wait_ready host:port [timeout_s] polls until something accepts
# on the address — the spawn-coordinator-then-sleep pattern, without
# the guessed sleep.
rcoal_wait_ready() {
  local host=${1%%:*} port=${1##*:} deadline=$((SECONDS + ${2:-10}))
  while [ $SECONDS -lt $deadline ]; do
    if ! rcoal_port_free "$host" "$port"; then
      return 0
    fi
    sleep 0.05
  done
  echo "lib.sh: $1 not ready within ${2:-10}s" >&2
  return 1
}

# rcoal_http_get url prints the response body of a GET over /dev/tcp
# (HTTP/1.0, so the server closes the connection after the body).
rcoal_http_get() {
  local url=${1#http://} host port path
  host=${url%%/*}
  path=/${url#*/}
  [ "$path" = "/$url" ] && path=/
  port=${host##*:}
  host=${host%%:*}
  exec 3<>"/dev/tcp/$host/$port"
  printf 'GET %s HTTP/1.0\r\nHost: %s\r\n\r\n' "$path" "$host" >&3
  # Strip the status line + headers (up to the first blank line).
  sed '1,/^\r*$/d' <&3
  exec 3<&- 3>&-
}
