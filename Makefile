# Convenience targets for the RCoal reproduction.

GO ?= go

.PHONY: all build test test-race cover bench bench-json ci equiv experiments examples fuzz dist-smoke chaos frontier obs-smoke vet-mechanism clean

all: build test

# Mirror of .github/workflows/ci.yml: everything the gate runs.
ci: build test
	$(GO) vet ./...
	bash scripts/vet_mechanism.sh
	$(GO) test -race -short ./...
	$(GO) test -run TestFastForward ./internal/gpusim
	$(GO) test -run 'TestRunSteadyStateAllocations|TestRecoverByteSteadyStateAllocations' -count=1 ./internal/gpusim ./internal/attack
	$(GO) test -run TestHotPathAllocsPerRun -count=1 ./internal/metrics
	$(MAKE) equiv EQUIV_SHORT=1
	$(GO) test -run '^$$' -bench . -benchtime=1x -benchmem .
	$(MAKE) dist-smoke
	$(MAKE) chaos
	$(MAKE) frontier
	$(MAKE) obs-smoke

# Defense-frontier smoke: the ext-defense-frontier experiment through
# the real binary, CSV diffed byte-for-byte against the committed
# golden (regenerate: go test ./internal/experiments -run Frontier -update).
frontier:
	bash scripts/frontier_smoke.sh

# Mechanism-API boundary: no package outside internal/{core,mechanism}
# may construct a core.Config coalescing policy directly — defenses go
# through the mechanism registry.
vet-mechanism:
	bash scripts/vet_mechanism.sh

# Distributed sweep smoke: coordinator + two loopback workers (one
# killed mid-grid) must match the single-process CSV byte for byte,
# and a warm-cache rerun must be >= 10x faster.
dist-smoke:
	bash scripts/dist_smoke.sh

# Chaos soak: the chaos e2e suite under the race detector, then the
# frontier grid through real processes on a seeded-fault loopback
# network (worker killed, coordinator restarted mid-sweep) — the CSV
# must stay byte-identical to the single-process golden.
chaos:
	$(GO) test -race -count=1 ./internal/chaos/
	bash scripts/chaos_smoke.sh

# Fleet observability smoke: a 4-worker chaos-faulted sweep with
# tracing, structured logs, and /metrics on — the Prometheus
# expositions must lint, the merged fleet trace must validate with
# one trace id, and the CSV must match an unobserved run byte for
# byte.
obs-smoke:
	bash scripts/obs_smoke.sh

# Differential-equivalence harness for the simulation accelerators
# (trace cache, copy-on-write prefix forking, hybrid analytical
# cells). EQUIV_SHORT=1 runs the PR-sized grid; unset runs the full
# 6-mechanism x 3-subwarp-count x 3-seed matrix (the main-branch
# gate).
equiv:
	$(GO) test $(if $(EQUIV_SHORT),-short) -v -count=1 ./internal/equiv/

build:
	$(GO) build ./...
	$(GO) vet ./...

test:
	$(GO) test ./...

test-race:
	$(GO) test -race ./...

cover:
	$(GO) test -cover ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# Machine-readable benchmark report. Set BENCH_BASELINE to a previous
# raw `go test -bench` log to record before/after speedups alongside
# the fresh numbers. The accelerator X/XVanilla pairs are joined
# within the run and gated: the prefix-forked sweep must hold >= 2x,
# the trace-cached collect must stay within noise of vanilla.
BENCHTIME ?= 1s
MIN_SPEEDUPS = SelectiveMechanismSweep:2.0,TraceCachedCollect:0.85
bench-json:
	$(GO) test -run '^$$' -bench . -benchtime=$(BENCHTIME) -benchmem -count=1 . > bench_raw.txt
	$(GO) run ./cmd/rcoal-benchjson -gpu-metrics $(if $(BENCH_BASELINE),-baseline $(BENCH_BASELINE)) \
		-join-variant Vanilla -min-speedup '$(MIN_SPEEDUPS)' \
		-out BENCH_gpusim.json bench_raw.txt
	@rm -f bench_raw.txt
	@echo wrote BENCH_gpusim.json

# Reproduce every paper figure/table (plus extensions) at the paper's
# sample count, writing CSV data files under data/.
experiments:
	mkdir -p data
	$(GO) run ./cmd/rcoal-experiments -run all -samples 100 -parallel 3 -csv data

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/keyrecovery
	$(GO) run ./examples/ctrmode
	$(GO) run ./examples/defensetuning
	$(GO) run ./examples/largeplaintext

fuzz:
	$(GO) test -fuzz FuzzEncryptMatchesStdlib -fuzztime 30s ./internal/aes/
	$(GO) test -fuzz FuzzParseMechanism -fuzztime 15s .
	$(GO) test -fuzz FuzzRunnerSeedSplit -fuzztime 15s .

clean:
	$(GO) clean -testcache
