# Convenience targets for the RCoal reproduction.

GO ?= go

.PHONY: all build test test-race cover bench ci experiments examples fuzz clean

all: build test

# Mirror of .github/workflows/ci.yml: everything the gate runs.
ci: build test
	$(GO) test -race -short ./internal/runner ./internal/experiments ./internal/attack

build:
	$(GO) build ./...
	$(GO) vet ./...

test:
	$(GO) test ./...

test-race:
	$(GO) test -race ./...

cover:
	$(GO) test -cover ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# Reproduce every paper figure/table (plus extensions) at the paper's
# sample count, writing CSV data files under data/.
experiments:
	mkdir -p data
	$(GO) run ./cmd/rcoal-experiments -run all -samples 100 -parallel 3 -csv data

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/keyrecovery
	$(GO) run ./examples/ctrmode
	$(GO) run ./examples/defensetuning
	$(GO) run ./examples/largeplaintext

fuzz:
	$(GO) test -fuzz FuzzEncryptMatchesStdlib -fuzztime 30s ./internal/aes/
	$(GO) test -fuzz FuzzParseMechanism -fuzztime 15s .
	$(GO) test -fuzz FuzzRunnerSeedSplit -fuzztime 15s .

clean:
	$(GO) clean -testcache
