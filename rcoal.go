// Package rcoal is a from-scratch reproduction of "RCoal: Mitigating
// GPU Timing Attack via Subwarp-Based Randomized Coalescing
// Techniques" (Kadam, Zhang, Jog — HPCA 2018).
//
// It provides, as one coherent library:
//
//   - the randomized coalescing mechanisms themselves (FSS, RSS, RTS
//     and their combinations) and the subwarp-plan abstraction the
//     modified coalescing unit executes;
//   - a cycle-level GPU timing simulator configured like the paper's
//     Table I (SIMT cores, crossbar interconnect, GDDR5 partitions
//     with FR-FCFS scheduling) that runs AES-128 encryption kernels;
//   - the correlation timing attack of Jiang et al. and the paper's
//     "corresponding attacks" against each defense;
//   - the Section V analytical security model that regenerates
//     Table II; and
//   - experiment drivers reproducing every figure and table of the
//     paper's evaluation.
//
// This file is the public facade: type aliases and constructors over
// the internal packages, so downstream users interact with one stable
// surface. The examples/ directory shows typical usage; the cmd/
// directory ships CLI tools built on the same API.
package rcoal

import (
	"rcoal/internal/aes"
	"rcoal/internal/aesgpu"
	"rcoal/internal/attack"
	"rcoal/internal/core"
	"rcoal/internal/experiments"
	"rcoal/internal/gpusim"
	"rcoal/internal/kernels"
	"rcoal/internal/mechanism"
	"rcoal/internal/rng"
	"rcoal/internal/stats"
	"rcoal/internal/theory"
)

// --- Defense mechanisms (the paper's contribution, plus the zoo) -------------

// Mechanism is a pluggable coalescing-stage defense: it validates
// against a warp size and realizes per-launch behavior (a subwarp plan
// plus optional per-request hooks). The paper's subwarp mechanisms
// (FSS, RSS, RTS combinations), the obfuscation defenses of Karimi et
// al. (randomized delay, access shuffling), and the no-coalescing
// strawman all implement it. Build one with the constructors below or
// ParseMechanism.
type Mechanism = mechanism.Mechanism

// MechanismInfo describes one registered mechanism family (its CLI
// keyword, usage, and example specs).
type MechanismInfo = mechanism.Info

// SubwarpPlan is one realized thread→subwarp mapping (drawn per kernel
// launch).
type SubwarpPlan = core.Plan

// Baseline returns the undefended whole-warp coalescing policy.
func Baseline() Mechanism { return mechanism.Baseline() }

// FSS returns fixed-sized subwarps with m subwarps per warp.
func FSS(m int) Mechanism { return mechanism.FSS(m) }

// FSSRTS returns FSS with random thread allocation.
func FSSRTS(m int) Mechanism { return mechanism.FSSRTS(m) }

// RSS returns random-sized (skewed) subwarps.
func RSS(m int) Mechanism { return mechanism.RSS(m) }

// RSSRTS returns RSS with random thread allocation.
func RSSRTS(m int) Mechanism { return mechanism.RSSRTS(m) }

// RSSNormal returns the normal-sized RSS variant of Figure 9.
func RSSNormal(m int, sigma float64) Mechanism { return mechanism.RSSNormal(m, sigma) }

// Delay returns the randomized-delay obfuscation defense (Karimi et
// al.): each memory instruction's issue is stalled by a uniform random
// 0..maxCycles cycles.
func Delay(maxCycles int) Mechanism { return mechanism.Delay(maxCycles) }

// Shuffle returns the access-pattern-shuffling obfuscation defense
// (Karimi et al.): coalesced transactions leave the MCU in a random
// order.
func Shuffle() Mechanism { return mechanism.Shuffle() }

// NoCoal returns the Section III strawman: coalescing disabled, one
// transaction per active thread.
func NoCoal() Mechanism { return mechanism.NoCoal() }

// ParseMechanism parses a defense spec such as "baseline", "fss:4",
// "rss+rts:8", "rss-normal:4:1.5", "delay:64", "shuffle", or
// "nocoal". The grammar is keyword[:arg[:arg]]; ListMechanisms
// enumerates the registered keywords. Specs round-trip:
// ParseMechanism(m.Spec()) reconstructs m.
func ParseMechanism(spec string) (Mechanism, error) { return mechanism.Parse(spec) }

// ListMechanisms returns the registered mechanism families in
// registration order (the defense zoo's table of contents).
func ListMechanisms() []MechanismInfo { return mechanism.List() }

// --- Simulated GPU and encryption service -----------------------------------

// GPUConfig is the simulated GPU configuration (Table I defaults via
// DefaultGPUConfig).
type GPUConfig = gpusim.Config

// DefaultGPUConfig returns the paper's Table I configuration.
func DefaultGPUConfig() GPUConfig { return gpusim.DefaultConfig() }

// Server is a GPU AES encryption service (the remote victim of the
// threat model).
type Server = aesgpu.Server

// Dataset is a collection of timing samples gathered from a Server.
type Dataset = aesgpu.Dataset

// Sample is one encryption request's observable outcome.
type Sample = aesgpu.Sample

// Line is one 16-byte plaintext/ciphertext block.
type Line = kernels.Line

// NewServer builds an encryption server simulating cfg with the given
// AES key.
func NewServer(cfg GPUConfig, key []byte) (*Server, error) {
	return aesgpu.NewServer(cfg, key)
}

// TraceCache memoizes per-plaintext AES trace construction keyed by
// (key schedule, plaintext, direction). Install with
// Server.SetTraceCache or ExperimentOptions.TraceCache; results stay
// byte-identical (see internal/equiv).
type TraceCache = kernels.TraceCache

// NewTraceCache returns an empty trace cache, safe for concurrent use.
func NewTraceCache() *TraceCache { return kernels.NewTraceCache() }

// ForkedCollect gathers nSamples timing samples under EACH mechanism,
// simulating the mechanism-independent prefix of every sample once and
// forking it per mechanism (copy-on-write prefix forking). Requires
// selective RCoal (cfg.VulnerableRounds non-empty) and plan-only
// mechanisms (no per-request hooks); the datasets are byte-identical
// to per-mechanism Server.Collect runs. tc may be nil.
func ForkedCollect(cfg GPUConfig, key []byte, mechs []Mechanism, nSamples, linesPer int, seed uint64, tc *TraceCache) ([]*Dataset, error) {
	return aesgpu.ForkedCollect(cfg, key, mechs, nSamples, linesPer, seed, tc)
}

// RandomPlaintext draws n random plaintext lines from the seed.
func RandomPlaintext(seed uint64, n int) []Line {
	return kernels.RandomPlaintext(rng.New(seed), n)
}

// InvertAES128Schedule recovers the original AES-128 key from a
// recovered last round key — the property that makes the last round
// the attack target.
func InvertAES128Schedule(lastRoundKey [16]byte) [16]byte {
	return aes.InvertSchedule128(lastRoundKey)
}

// EnergyModel estimates per-launch energy (GPUWattch-style constants);
// see the gpusim package for the event accounting.
type EnergyModel = gpusim.EnergyModel

// DefaultEnergyModel returns the order-of-magnitude per-event energies.
func DefaultEnergyModel() EnergyModel { return gpusim.DefaultEnergyModel() }

// --- Attacks -----------------------------------------------------------------

// Attacker mounts correlation timing attacks under an assumed defense
// policy.
type Attacker = attack.Attacker

// KeyResult is a full 16-byte last-round key recovery outcome.
type KeyResult = attack.KeyResult

// ByteResult is a single key byte's attack outcome.
type ByteResult = attack.ByteResult

// NewAttacker builds a "corresponding attack" for the given assumed
// defense; the seed drives the attacker's own defense simulation.
func NewAttacker(defense Mechanism, seed uint64) (*Attacker, error) {
	return attack.New(defense, seed)
}

// BaselineAttacker returns the original attack of Jiang et al.
// (whole-warp coalescing assumed).
func BaselineAttacker(seed uint64) *Attacker { return attack.Baseline(seed) }

// NewDecryptAttacker builds a corresponding attack against a GPU
// *decryption* service: the observed lines are recovered plaintexts
// and the recovered bytes form round key 0 — the original AES key.
func NewDecryptAttacker(defense Mechanism, seed uint64) (*Attacker, error) {
	return attack.NewDecrypt(defense, seed)
}

// CTRSample is a CTR-mode encryption response (ciphertexts plus the
// keystream blocks the attacker can reconstruct from known plaintext).
type CTRSample = aesgpu.CTRSample

// BankConflictAttacker mounts the shared-memory bank-conflict attack
// (the channel RCoal does not cover; see the ext-sharedmem
// experiment).
type BankConflictAttacker = attack.BankConflictAttacker

// --- Analytical model and metrics ---------------------------------------------

// SecurityModel is the Section V analytical model.
type SecurityModel = theory.Model

// SecurityRow is one Table II row (fixed M across mechanisms).
type SecurityRow = theory.Row

// NewSecurityModel builds the model for n threads per warp and r
// memory blocks per table (the paper uses 32 and 16).
func NewSecurityModel(n, r int) (*SecurityModel, error) { return theory.NewModel(n, r) }

// SamplesForAttack is Equation 4: the samples needed for a successful
// attack at correlation rho and success rate alpha.
func SamplesForAttack(rho, alpha float64) float64 { return stats.SamplesForAttack(rho, alpha) }

// RCoalScore is Equation 7: the security/performance trade-off metric.
func RCoalScore(s, executionTime, a, b float64) float64 {
	return stats.RCoalScore(s, executionTime, a, b)
}

// --- Experiments ---------------------------------------------------------------

// ExperimentOptions parameterizes a paper-reproduction experiment.
type ExperimentOptions = experiments.Options

// DefaultExperimentOptions mirrors the paper's evaluation setup.
func DefaultExperimentOptions() ExperimentOptions { return experiments.DefaultOptions() }

// ExperimentIDs lists the reproducible paper artifacts ("fig6",
// "table2", ...).
func ExperimentIDs() []string { return experiments.IDs() }

// RunExperiment reproduces one paper artifact and returns its report.
func RunExperiment(id string, o ExperimentOptions) (string, error) {
	res, err := experiments.Run(id, o)
	if err != nil {
		return "", err
	}
	return res.Render(), nil
}
