package amath

import (
	"math/big"
	"testing"
	"testing/quick"
)

func TestFactorialSmall(t *testing.T) {
	want := []int64{1, 1, 2, 6, 24, 120, 720, 5040}
	for n, w := range want {
		if got := Factorial(n); got.Cmp(big.NewInt(w)) != 0 {
			t.Errorf("Factorial(%d) = %s, want %d", n, got, w)
		}
	}
}

func TestFactorialNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Factorial(-1) did not panic")
		}
	}()
	Factorial(-1)
}

func TestBinomialTable(t *testing.T) {
	cases := []struct {
		n, k int
		want int64
	}{
		{0, 0, 1}, {5, 0, 1}, {5, 5, 1}, {5, 2, 10}, {10, 3, 120},
		{32, 16, 601080390}, {5, 6, 0}, {5, -1, 0},
	}
	for _, c := range cases {
		if got := Binomial(c.n, c.k); got.Cmp(big.NewInt(c.want)) != 0 {
			t.Errorf("Binomial(%d,%d) = %s, want %d", c.n, c.k, got, c.want)
		}
	}
}

func TestBinomialPascalProperty(t *testing.T) {
	// C(n,k) = C(n-1,k-1) + C(n-1,k) for 1 <= k <= n-1.
	f := func(n, k uint8) bool {
		nn := int(n%60) + 2
		kk := int(k) % nn
		if kk == 0 {
			kk = 1
		}
		lhs := Binomial(nn, kk)
		rhs := new(big.Int).Add(Binomial(nn-1, kk-1), Binomial(nn-1, kk))
		return lhs.Cmp(rhs) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFallingFactorial(t *testing.T) {
	if got := FallingFactorial(16, 3); got.Cmp(big.NewInt(16*15*14)) != 0 {
		t.Errorf("FallingFactorial(16,3) = %s, want %d", got, 16*15*14)
	}
	if got := FallingFactorial(4, 5); got.Sign() != 0 {
		t.Errorf("FallingFactorial(4,5) = %s, want 0", got)
	}
	if got := FallingFactorial(7, 0); got.Cmp(big.NewInt(1)) != 0 {
		t.Errorf("FallingFactorial(7,0) = %s, want 1", got)
	}
}

func TestFallingFactorialMatchesBinomial(t *testing.T) {
	// n!/(n-k)! = C(n,k) * k!
	f := func(n, k uint8) bool {
		nn := int(n % 40)
		kk := int(k % 40)
		lhs := FallingFactorial(nn, kk)
		rhs := new(big.Int).Mul(Binomial(nn, kk), Factorial(kk))
		return lhs.Cmp(rhs) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMultinomial(t *testing.T) {
	if got := Multinomial(4, []int{2, 1, 1}); got.Cmp(big.NewInt(12)) != 0 {
		t.Errorf("Multinomial(4;2,1,1) = %s, want 12", got)
	}
	if got := Multinomial(6, []int{6}); got.Cmp(big.NewInt(1)) != 0 {
		t.Errorf("Multinomial(6;6) = %s, want 1", got)
	}
}

func TestMultinomialBadSumPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Multinomial with bad sum did not panic")
		}
	}()
	Multinomial(5, []int{2, 2})
}

func TestPow(t *testing.T) {
	if got := Pow(16, 32); got.Cmp(new(big.Int).Lsh(big.NewInt(1), 128)) != 0 {
		t.Errorf("Pow(16,32) = %s, want 2^128", got)
	}
	if got := Pow(7, 0); got.Cmp(big.NewInt(1)) != 0 {
		t.Errorf("Pow(7,0) = %s, want 1", got)
	}
}

func TestBinomialFloat(t *testing.T) {
	if got := BinomialFloat(10, 5); got != 252 {
		t.Errorf("BinomialFloat(10,5) = %v, want 252", got)
	}
}

func TestRatFloat(t *testing.T) {
	if got := RatFloat(big.NewRat(1, 4)); got != 0.25 {
		t.Errorf("RatFloat(1/4) = %v, want 0.25", got)
	}
}
