package amath

import (
	"math"
	"math/big"
)

// Partition is a partition of an integer into positive parts, stored in
// non-increasing order. The RCoal model uses partitions in two roles:
//
//   - a frequency class: the multiset of non-zero per-block access
//     frequencies {f_1, ..., f_R} (Definition 2), and
//   - a subwarp-size class: the multiset of subwarp capacities
//     {w_1, ..., w_M} under RSS (Section V-B3).
//
// Collapsing labeled vectors into partition classes is what makes the
// Table II sums tractable: the expectation formulas of Definition 3
// depend only on the multiset, so each class is evaluated once and
// weighted by its arrangement count.
type Partition []int

// Sum returns the partitioned integer.
func (p Partition) Sum() int {
	s := 0
	for _, v := range p {
		s += v
	}
	return s
}

// Multiplicities returns, for each distinct part value, how many times
// it occurs. Iteration order follows first appearance (descending part
// value, since partitions are stored non-increasing).
func (p Partition) Multiplicities() (values, counts []int) {
	for _, v := range p {
		if n := len(values); n > 0 && values[n-1] == v {
			counts[n-1]++
		} else {
			values = append(values, v)
			counts = append(counts, 1)
		}
	}
	return values, counts
}

// ForEachPartition enumerates every partition of n into at most maxParts
// positive parts, in reverse lexicographic order, invoking fn for each.
// The slice passed to fn is reused between calls; fn must copy it if it
// retains it. Enumeration stops early if fn returns false.
func ForEachPartition(n, maxParts int, fn func(Partition) bool) {
	if n < 0 || maxParts <= 0 {
		return
	}
	if n == 0 {
		fn(Partition{})
		return
	}
	parts := make([]int, 0, maxParts)
	var rec func(remaining, maxPart, slots int) bool
	rec = func(remaining, maxPart, slots int) bool {
		if remaining == 0 {
			return fn(Partition(parts))
		}
		if slots == 0 {
			return true
		}
		hi := maxPart
		if remaining < hi {
			hi = remaining
		}
		for v := hi; v >= 1; v-- {
			// The remaining slots must be able to absorb what is left:
			// each can hold at most v.
			if remaining-v > (slots-1)*v {
				continue
			}
			parts = append(parts, v)
			ok := rec(remaining-v, v, slots-1)
			parts = parts[:len(parts)-1]
			if !ok {
				return false
			}
		}
		return true
	}
	rec(n, n, maxParts)
}

// ForEachPartitionExact enumerates partitions of n into exactly k
// positive parts. The slice passed to fn is reused; copy to retain.
func ForEachPartitionExact(n, k int, fn func(Partition) bool) {
	ForEachPartition(n, k, func(p Partition) bool {
		if len(p) != k {
			return true
		}
		return fn(p)
	})
}

// CountPartitions returns the number of partitions of n into at most
// maxParts positive parts.
func CountPartitions(n, maxParts int) int {
	count := 0
	ForEachPartition(n, maxParts, func(Partition) bool {
		count++
		return true
	})
	return count
}

// CompositionCount returns the number of compositions of n into exactly
// k positive (ordered) parts: C(n-1, k-1). Under skewed RSS every such
// composition is equally likely (Section IV-B).
func CompositionCount(n, k int) *big.Int {
	if n <= 0 || k <= 0 {
		return big.NewInt(0)
	}
	return Binomial(n-1, k-1)
}

// CompositionsOfClass returns how many ordered compositions realize the
// partition class p (distinct orderings of its parts): k! / ∏ mult_v!.
func CompositionsOfClass(p Partition) *big.Int {
	out := Factorial(len(p))
	_, counts := p.Multiplicities()
	for _, c := range counts {
		out.Quo(out, Factorial(c))
	}
	return out
}

// FrequencyArrangements returns the number of ways to assign the
// partition class p (the non-zero frequencies) onto r labeled memory
// blocks, the remaining blocks having frequency zero:
// r! / (∏ mult_v! · (r-len(p))!).
func FrequencyArrangements(p Partition, r int) *big.Int {
	if len(p) > r {
		return big.NewInt(0)
	}
	out := Factorial(r)
	_, counts := p.Multiplicities()
	for _, c := range counts {
		out.Quo(out, Factorial(c))
	}
	out.Quo(out, Factorial(r-len(p)))
	return out
}

// FrequencyClassProbability returns the exact probability that n
// uniform, independent block accesses over r labeled blocks produce a
// frequency vector in the class of p: arrangements · n!/(∏ f_i!) / r^n.
// This is P(F) of Section V-B2 summed over the whole class.
func FrequencyClassProbability(p Partition, n, r int) *big.Rat {
	if p.Sum() != n {
		panic("amath: FrequencyClassProbability partition does not sum to n")
	}
	num := FrequencyArrangements(p, r)
	num.Mul(num, Multinomial(n, p))
	return new(big.Rat).SetFrac(num, Pow(r, n))
}

// FrequencyClassProbabilityFloat is the float64 fast path of
// FrequencyClassProbability, computed with log-gamma so that large-N
// models (e.g. 64-thread wavefronts) stay tractable. Relative error is
// at the 1e-12 level, far below the model's printed precision.
func FrequencyClassProbabilityFloat(p Partition, n, r int) float64 {
	if p.Sum() != n {
		panic("amath: FrequencyClassProbabilityFloat partition does not sum to n")
	}
	if len(p) > r {
		return 0
	}
	// log of: r!/(∏ mult! · (r-k)!) · n!/(∏ f_i!) / r^n
	logp := lgamma(r+1) - lgamma(r-len(p)+1) + lgamma(n+1) - float64(n)*math.Log(float64(r))
	values, counts := p.Multiplicities()
	for i, v := range values {
		logp -= float64(counts[i]) * lgamma(v+1) // ∏ f_i! over the class
		logp -= lgamma(counts[i] + 1)            // ∏ mult!
	}
	return math.Exp(logp)
}

func lgamma(x int) float64 {
	v, _ := math.Lgamma(float64(x))
	return v
}
