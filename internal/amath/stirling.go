package amath

import (
	"math/big"
	"sync"
)

// stirlingTable memoizes rows of the Stirling-number triangle. Row n
// holds S2(n, 0..n).
var (
	stirlingMu    sync.Mutex
	stirlingTable = [][]*big.Int{{big.NewInt(1)}} // S2(0,0) = 1
)

// Stirling2 returns the Stirling number of the second kind S2(n, k):
// the number of ways to partition an n-element set into k non-empty
// unlabeled subsets. Out-of-range k yields 0.
//
// In the RCoal model (Definition 1), S2(m, i) counts the ways m threads
// can collapse onto exactly i distinct memory blocks.
func Stirling2(n, k int) *big.Int {
	if n < 0 {
		panic("amath: Stirling2 with negative n")
	}
	if k < 0 || k > n {
		return big.NewInt(0)
	}
	stirlingMu.Lock()
	defer stirlingMu.Unlock()
	for len(stirlingTable) <= n {
		m := len(stirlingTable)
		prev := stirlingTable[m-1]
		row := make([]*big.Int, m+1)
		row[0] = big.NewInt(0)
		row[m] = big.NewInt(1)
		for j := 1; j < m; j++ {
			// S2(m, j) = j*S2(m-1, j) + S2(m-1, j-1)
			row[j] = new(big.Int).Mul(big.NewInt(int64(j)), prev[j])
			row[j].Add(row[j], prev[j-1])
		}
		stirlingTable = append(stirlingTable, row)
	}
	return new(big.Int).Set(stirlingTable[n][k])
}

// SurjectionCount returns the number of surjections from an n-set onto
// a k-set: k! · S2(n, k). It is the number of ways n threads can touch
// exactly k labeled memory blocks with none left untouched.
func SurjectionCount(n, k int) *big.Int {
	out := Stirling2(n, k)
	return out.Mul(out, Factorial(k))
}
