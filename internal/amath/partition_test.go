package amath

import (
	"math/big"
	"testing"
)

func collectPartitions(n, maxParts int) []Partition {
	var out []Partition
	ForEachPartition(n, maxParts, func(p Partition) bool {
		cp := make(Partition, len(p))
		copy(cp, p)
		out = append(out, cp)
		return true
	})
	return out
}

func TestForEachPartitionSmall(t *testing.T) {
	got := collectPartitions(4, 4)
	want := [][]int{{4}, {3, 1}, {2, 2}, {2, 1, 1}, {1, 1, 1, 1}}
	if len(got) != len(want) {
		t.Fatalf("partitions of 4: got %d, want %d (%v)", len(got), len(want), got)
	}
	for i := range want {
		if len(got[i]) != len(want[i]) {
			t.Fatalf("partition %d: got %v want %v", i, got[i], want[i])
		}
		for j := range want[i] {
			if got[i][j] != want[i][j] {
				t.Fatalf("partition %d: got %v want %v", i, got[i], want[i])
			}
		}
	}
}

func TestForEachPartitionMaxPartsLimits(t *testing.T) {
	got := collectPartitions(5, 2)
	// partitions of 5 into at most 2 parts: 5, 4+1, 3+2
	if len(got) != 3 {
		t.Fatalf("partitions of 5 into <=2 parts: got %d (%v), want 3", len(got), got)
	}
}

func TestPartitionInvariants(t *testing.T) {
	ForEachPartition(12, 7, func(p Partition) bool {
		if p.Sum() != 12 {
			t.Errorf("partition %v sums to %d", p, p.Sum())
		}
		if len(p) > 7 {
			t.Errorf("partition %v has %d parts, max 7", p, len(p))
		}
		for i := 1; i < len(p); i++ {
			if p[i] > p[i-1] {
				t.Errorf("partition %v not non-increasing", p)
			}
		}
		return true
	})
}

func TestCountPartitionsKnown(t *testing.T) {
	// p(n) with unrestricted parts.
	known := map[int]int{1: 1, 2: 2, 3: 3, 4: 5, 5: 7, 10: 42, 20: 627}
	for n, w := range known {
		if got := CountPartitions(n, n); got != w {
			t.Errorf("p(%d) = %d, want %d", n, got, w)
		}
	}
	// Paper-scale sanity: partitions of 32 into at most 16 parts must be
	// enumerable quickly (the Table II outer sum).
	if got := CountPartitions(32, 16); got <= 0 || got > 10000 {
		t.Errorf("partitions of 32 into <=16 parts = %d, out of plausible range", got)
	}
}

func TestForEachPartitionExact(t *testing.T) {
	count := 0
	ForEachPartitionExact(6, 3, func(p Partition) bool {
		count++
		if len(p) != 3 || p.Sum() != 6 {
			t.Errorf("bad exact partition %v", p)
		}
		return true
	})
	if count != 3 { // 4+1+1, 3+2+1, 2+2+2
		t.Errorf("partitions of 6 into exactly 3 parts: got %d, want 3", count)
	}
}

func TestEarlyStop(t *testing.T) {
	count := 0
	ForEachPartition(30, 30, func(Partition) bool {
		count++
		return count < 5
	})
	if count != 5 {
		t.Errorf("early stop: visited %d partitions, want 5", count)
	}
}

func TestMultiplicities(t *testing.T) {
	values, counts := Partition{5, 3, 3, 1, 1, 1}.Multiplicities()
	wantV := []int{5, 3, 1}
	wantC := []int{1, 2, 3}
	if len(values) != 3 {
		t.Fatalf("multiplicities: %v %v", values, counts)
	}
	for i := range wantV {
		if values[i] != wantV[i] || counts[i] != wantC[i] {
			t.Fatalf("multiplicities: got %v %v, want %v %v", values, counts, wantV, wantC)
		}
	}
}

func TestCompositionCountStarsAndBars(t *testing.T) {
	if got := CompositionCount(32, 4); got.Cmp(Binomial(31, 3)) != 0 {
		t.Errorf("CompositionCount(32,4) = %s, want C(31,3)", got)
	}
	if got := CompositionCount(0, 3); got.Sign() != 0 {
		t.Errorf("CompositionCount(0,3) = %s, want 0", got)
	}
}

func TestCompositionClassesCoverAllCompositions(t *testing.T) {
	// Sum over partition classes of CompositionsOfClass must equal the
	// total number of compositions C(n-1,k-1).
	for _, tc := range []struct{ n, k int }{{8, 3}, {32, 4}, {32, 8}, {12, 12}} {
		sum := big.NewInt(0)
		ForEachPartitionExact(tc.n, tc.k, func(p Partition) bool {
			sum.Add(sum, CompositionsOfClass(p))
			return true
		})
		if sum.Cmp(CompositionCount(tc.n, tc.k)) != 0 {
			t.Errorf("n=%d k=%d: class sum %s != C(n-1,k-1) %s", tc.n, tc.k, sum, CompositionCount(tc.n, tc.k))
		}
	}
}

func TestFrequencyArrangements(t *testing.T) {
	// Partition {2,1,1} of 4 over r=3 blocks: arrangements of multiset
	// {2,1,1} on 3 labeled slots = 3!/(1!·2!·0!) = 3.
	got := FrequencyArrangements(Partition{2, 1, 1}, 3)
	if got.Cmp(big.NewInt(3)) != 0 {
		t.Errorf("FrequencyArrangements({2,1,1},3) = %s, want 3", got)
	}
	// More parts than blocks: impossible.
	if got := FrequencyArrangements(Partition{1, 1, 1}, 2); got.Sign() != 0 {
		t.Errorf("overfull arrangement = %s, want 0", got)
	}
}

func TestFrequencyClassProbabilitiesSumToOne(t *testing.T) {
	// Summing P over all frequency classes of n accesses to r blocks
	// must give exactly 1 (Definition 2 covers the sample space).
	for _, tc := range []struct{ n, r int }{{4, 3}, {8, 4}, {32, 16}} {
		sum := new(big.Rat)
		ForEachPartition(tc.n, tc.r, func(p Partition) bool {
			sum.Add(sum, FrequencyClassProbability(p, tc.n, tc.r))
			return true
		})
		if sum.Cmp(big.NewRat(1, 1)) != 0 {
			t.Errorf("n=%d r=%d: frequency classes sum to %s, want 1", tc.n, tc.r, sum)
		}
	}
}

func TestFrequencyClassProbabilityFloatMatchesExact(t *testing.T) {
	for _, tc := range []struct{ n, r int }{{8, 4}, {32, 16}, {12, 12}} {
		ForEachPartition(tc.n, tc.r, func(p Partition) bool {
			exact := RatFloat(FrequencyClassProbability(p, tc.n, tc.r))
			fast := FrequencyClassProbabilityFloat(p, tc.n, tc.r)
			diff := exact - fast
			if diff < 0 {
				diff = -diff
			}
			if exact > 0 && diff/exact > 1e-9 {
				t.Fatalf("n=%d r=%d partition %v: exact %v vs float %v", tc.n, tc.r, p, exact, fast)
			}
			return true
		})
	}
	// Over-full partitions yield 0 on both paths.
	if FrequencyClassProbabilityFloat(Partition{1, 1, 1}, 3, 2) != 0 {
		t.Error("over-full class not zero")
	}
}
