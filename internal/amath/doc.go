// Package amath provides the exact combinatorial machinery used by the
// RCoal analytical security model (Section V of the paper): binomial and
// multinomial coefficients, factorials, Stirling numbers of the second
// kind, and enumeration of integer partitions and compositions.
//
// All counting functions are exact (math/big based) because the model
// manipulates probabilities with denominators as large as R^N = 16^32;
// convenience float64 views are provided for the numerical pipeline that
// assembles Table II.
package amath
