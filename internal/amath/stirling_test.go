package amath

import (
	"math/big"
	"testing"
	"testing/quick"
)

func TestStirling2Known(t *testing.T) {
	cases := []struct {
		n, k int
		want int64
	}{
		{0, 0, 1}, {1, 1, 1}, {4, 2, 7}, {5, 3, 25}, {6, 3, 90},
		{7, 4, 350}, {4, 0, 0}, {3, 4, 0}, {10, 10, 1},
	}
	for _, c := range cases {
		if got := Stirling2(c.n, c.k); got.Cmp(big.NewInt(c.want)) != 0 {
			t.Errorf("Stirling2(%d,%d) = %s, want %d", c.n, c.k, got, c.want)
		}
	}
}

func TestStirling2RowSumIsBell(t *testing.T) {
	// Sum_k S2(n,k) = Bell(n); spot-check Bell numbers.
	bell := []int64{1, 1, 2, 5, 15, 52, 203, 877, 4140}
	for n, b := range bell {
		sum := big.NewInt(0)
		for k := 0; k <= n; k++ {
			sum.Add(sum, Stirling2(n, k))
		}
		if sum.Cmp(big.NewInt(b)) != 0 {
			t.Errorf("sum_k S2(%d,k) = %s, want Bell=%d", n, sum, b)
		}
	}
}

func TestStirling2Recurrence(t *testing.T) {
	f := func(n, k uint8) bool {
		nn := int(n%30) + 2
		kk := int(k)%nn + 1
		lhs := Stirling2(nn, kk)
		rhs := new(big.Int).Mul(big.NewInt(int64(kk)), Stirling2(nn-1, kk))
		rhs.Add(rhs, Stirling2(nn-1, kk-1))
		return lhs.Cmp(rhs) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSurjectionTotalsPowerIdentity(t *testing.T) {
	// r^n = Sum_{k=0..r} C(r,k) * k! * S2(n,k): each function onto some
	// subset of its range. This is the identity Definition 1 relies on.
	for _, tc := range []struct{ n, r int }{{5, 3}, {8, 4}, {32, 16}} {
		sum := big.NewInt(0)
		for k := 0; k <= tc.r; k++ {
			term := new(big.Int).Mul(Binomial(tc.r, k), SurjectionCount(tc.n, k))
			sum.Add(sum, term)
		}
		if sum.Cmp(Pow(tc.r, tc.n)) != 0 {
			t.Errorf("n=%d r=%d: surjection sum %s != %d^%d", tc.n, tc.r, sum, tc.r, tc.n)
		}
	}
}

func TestDefinition1DistributionSumsToOne(t *testing.T) {
	// P(N_{m,n}=i) = n!/(n-i)! * S2(m,i) / n^m must sum to 1 over i.
	for _, tc := range []struct{ m, n int }{{4, 4}, {32, 16}, {1, 16}, {16, 2}} {
		sum := new(big.Rat)
		den := Pow(tc.n, tc.m)
		for i := 0; i <= tc.m && i <= tc.n; i++ {
			num := new(big.Int).Mul(FallingFactorial(tc.n, i), Stirling2(tc.m, i))
			sum.Add(sum, new(big.Rat).SetFrac(num, den))
		}
		if sum.Cmp(big.NewRat(1, 1)) != 0 {
			t.Errorf("m=%d n=%d: distribution sums to %s, want 1", tc.m, tc.n, sum)
		}
	}
}
