package amath

import (
	"fmt"
	"math/big"
	"sync"
)

// factCache memoizes factorials; AES/RCoal sizes never exceed a few
// hundred, so the cache stays tiny.
var (
	factMu    sync.Mutex
	factCache = []*big.Int{big.NewInt(1)} // 0! = 1
)

// Factorial returns n! as a big integer. It panics if n is negative.
func Factorial(n int) *big.Int {
	if n < 0 {
		panic(fmt.Sprintf("amath: Factorial of negative %d", n))
	}
	factMu.Lock()
	defer factMu.Unlock()
	for len(factCache) <= n {
		k := len(factCache)
		next := new(big.Int).Mul(factCache[k-1], big.NewInt(int64(k)))
		factCache = append(factCache, next)
	}
	return new(big.Int).Set(factCache[n])
}

// Binomial returns C(n, k), the number of k-element subsets of an
// n-element set. Out-of-range k (k < 0 or k > n) yields 0, matching the
// usual combinatorial convention; negative n panics.
func Binomial(n, k int) *big.Int {
	if n < 0 {
		panic(fmt.Sprintf("amath: Binomial with negative n=%d", n))
	}
	if k < 0 || k > n {
		return big.NewInt(0)
	}
	return new(big.Int).Binomial(int64(n), int64(k))
}

// BinomialFloat returns C(n, k) as a float64. Values beyond float64
// range return +Inf, which callers treat as saturation.
func BinomialFloat(n, k int) float64 {
	f, _ := new(big.Float).SetInt(Binomial(n, k)).Float64()
	return f
}

// FallingFactorial returns n·(n-1)···(n-k+1), the number of injections
// from a k-set into an n-set (k-permutations of n). k > n yields 0.
func FallingFactorial(n, k int) *big.Int {
	if n < 0 || k < 0 {
		panic(fmt.Sprintf("amath: FallingFactorial with negative argument n=%d k=%d", n, k))
	}
	if k > n {
		return big.NewInt(0)
	}
	out := big.NewInt(1)
	for i := 0; i < k; i++ {
		out.Mul(out, big.NewInt(int64(n-i)))
	}
	return out
}

// Multinomial returns n! / (k1!·k2!···km!) for parts that sum to n.
// It panics if any part is negative or the parts do not sum to n.
func Multinomial(n int, parts []int) *big.Int {
	sum := 0
	for _, p := range parts {
		if p < 0 {
			panic(fmt.Sprintf("amath: Multinomial with negative part %d", p))
		}
		sum += p
	}
	if sum != n {
		panic(fmt.Sprintf("amath: Multinomial parts sum to %d, want %d", sum, n))
	}
	out := Factorial(n)
	for _, p := range parts {
		out.Quo(out, Factorial(p))
	}
	return out
}

// Pow returns base^exp as a big integer for exp >= 0.
func Pow(base, exp int) *big.Int {
	if exp < 0 {
		panic(fmt.Sprintf("amath: Pow with negative exponent %d", exp))
	}
	return new(big.Int).Exp(big.NewInt(int64(base)), big.NewInt(int64(exp)), nil)
}

// RatFloat converts an exact rational to float64, for handing exact
// model terms to the float64 aggregation pipeline.
func RatFloat(r *big.Rat) float64 {
	f, _ := r.Float64()
	return f
}
