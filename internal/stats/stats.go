// Package stats implements the statistical machinery of the RCoal
// correlation timing attack and its security metrics: descriptive
// statistics, Pearson correlation (the attacker's scoring function),
// the standard-normal quantile, the attack sample-size estimator of
// Equation 4, and the RCoal_Score trade-off metric of Equation 7.
package stats

import (
	"errors"
	"math"
)

// ErrShortSeries is returned when a computation needs more data points
// than were supplied.
var ErrShortSeries = errors.New("stats: series too short")

// ErrLengthMismatch is returned by bivariate statistics when the two
// series differ in length.
var ErrLengthMismatch = errors.New("stats: series length mismatch")

// Mean returns the arithmetic mean of xs. It returns NaN for an empty
// series rather than an error, since it is used in hot loops.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Variance returns the population variance of xs (division by n, not
// n-1): the paper's analytical model works with distribution moments,
// so the population convention keeps empirical and analytical sides
// directly comparable.
func Variance(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := Mean(xs)
	sum := 0.0
	for _, x := range xs {
		d := x - m
		sum += d * d
	}
	return sum / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Covariance returns the population covariance of xs and ys.
func Covariance(xs, ys []float64) (float64, error) {
	if len(xs) != len(ys) {
		return 0, ErrLengthMismatch
	}
	if len(xs) == 0 {
		return 0, ErrShortSeries
	}
	mx, my := Mean(xs), Mean(ys)
	sum := 0.0
	for i := range xs {
		sum += (xs[i] - mx) * (ys[i] - my)
	}
	return sum / float64(len(xs)), nil
}

// Pearson returns the Pearson correlation coefficient between xs and
// ys. A constant series has zero variance; the correlation is then
// defined as 0, matching the paper's treatment of num-subwarp = 32
// (where the access count is constant and "the correlation ... drops
// to 0").
func Pearson(xs, ys []float64) (float64, error) {
	if len(xs) != len(ys) {
		return 0, ErrLengthMismatch
	}
	if len(xs) < 2 {
		return 0, ErrShortSeries
	}
	mx, my := Mean(xs), Mean(ys)
	var sxy, sxx, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0, nil
	}
	return sxy / math.Sqrt(sxx*syy), nil
}

// MustPearson is Pearson for callers that have already validated their
// inputs (equal-length, n >= 2); it panics on error.
func MustPearson(xs, ys []float64) float64 {
	r, err := Pearson(xs, ys)
	if err != nil {
		panic(err)
	}
	return r
}

// Center writes ys - mean(ys) into dst (which must have the same
// length as ys) and returns Σ dst[i]², the centered sum of squares.
// Together with PearsonCentered it lets a caller correlate one fixed
// series against many candidates — the attack's 256-guess scoring
// loop — paying the centering cost once instead of per candidate.
func Center(dst, ys []float64) (sumSquares float64) {
	if len(dst) != len(ys) {
		panic(ErrLengthMismatch)
	}
	m := Mean(ys)
	for i, y := range ys {
		d := y - m
		dst[i] = d
		sumSquares += d * d
	}
	return sumSquares
}

// PearsonCentered returns the Pearson correlation of xs against a
// series supplied in centered form: dy[i] = ys[i] - mean(ys) and
// syy = Σ dy[i]², as produced by Center. Every accumulation runs in
// the same index order over the same values as Pearson, so the result
// is bit-identical to Pearson(xs, ys).
func PearsonCentered(xs, dy []float64, syy float64) (float64, error) {
	if len(xs) != len(dy) {
		return 0, ErrLengthMismatch
	}
	if len(xs) < 2 {
		return 0, ErrShortSeries
	}
	mx := Mean(xs)
	var sxy, sxx float64
	for i := range xs {
		dx := xs[i] - mx
		sxy += dx * dy[i]
		sxx += dx * dx
	}
	if sxx == 0 || syy == 0 {
		return 0, nil
	}
	return sxy / math.Sqrt(sxx*syy), nil
}
