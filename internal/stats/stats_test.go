package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol
}

func TestMeanVariance(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(xs); m != 5 {
		t.Errorf("Mean = %v, want 5", m)
	}
	if v := Variance(xs); v != 4 {
		t.Errorf("Variance = %v, want 4", v)
	}
	if s := StdDev(xs); s != 2 {
		t.Errorf("StdDev = %v, want 2", s)
	}
}

func TestMeanEmpty(t *testing.T) {
	if !math.IsNaN(Mean(nil)) || !math.IsNaN(Variance(nil)) {
		t.Error("empty series should yield NaN")
	}
}

func TestCovarianceErrors(t *testing.T) {
	if _, err := Covariance([]float64{1}, []float64{1, 2}); err != ErrLengthMismatch {
		t.Errorf("want ErrLengthMismatch, got %v", err)
	}
	if _, err := Covariance(nil, nil); err != ErrShortSeries {
		t.Errorf("want ErrShortSeries, got %v", err)
	}
}

func TestPearsonPerfect(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{10, 20, 30, 40, 50}
	r, err := Pearson(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(r, 1, 1e-12) {
		t.Errorf("Pearson = %v, want 1", r)
	}
	neg := []float64{50, 40, 30, 20, 10}
	r, _ = Pearson(xs, neg)
	if !almostEqual(r, -1, 1e-12) {
		t.Errorf("Pearson = %v, want -1", r)
	}
}

func TestPearsonConstantSeriesIsZero(t *testing.T) {
	// num-subwarp = 32: the access count never varies, the paper
	// defines the correlation as dropping to 0.
	xs := []float64{7, 7, 7, 7}
	ys := []float64{1, 2, 3, 4}
	r, err := Pearson(xs, ys)
	if err != nil || r != 0 {
		t.Errorf("Pearson(const, ys) = %v, %v; want 0, nil", r, err)
	}
}

func TestPearsonInvariantUnderAffineMaps(t *testing.T) {
	f := func(seedBytes [8]uint8, scale uint8, shift int8) bool {
		xs := make([]float64, 8)
		ys := make([]float64, 8)
		for i := range xs {
			xs[i] = float64(seedBytes[i])
			ys[i] = float64(seedBytes[i])*1.5 + float64(i)
		}
		a := float64(scale%7) + 1 // positive scale
		b := float64(shift)
		r1, err1 := Pearson(xs, ys)
		zs := make([]float64, len(ys))
		for i, y := range ys {
			zs[i] = a*y + b
		}
		r2, err2 := Pearson(xs, zs)
		if err1 != nil || err2 != nil {
			return false
		}
		return almostEqual(r1, r2, 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPearsonBounds(t *testing.T) {
	f := func(raw [12]int8) bool {
		xs := make([]float64, 6)
		ys := make([]float64, 6)
		for i := 0; i < 6; i++ {
			xs[i] = float64(raw[i])
			ys[i] = float64(raw[i+6])
		}
		r, err := Pearson(xs, ys)
		if err != nil {
			return false
		}
		return r >= -1-1e-12 && r <= 1+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMustPearsonPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustPearson with mismatched lengths did not panic")
		}
	}()
	MustPearson([]float64{1}, []float64{1, 2})
}

func TestNormalQuantileKnown(t *testing.T) {
	cases := []struct{ p, want float64 }{
		{0.5, 0},
		{0.975, 1.959963984540054},
		{0.99, 2.3263478740408408},
		{0.01, -2.3263478740408408},
		{0.999, 3.090232306167813},
	}
	for _, c := range cases {
		if got := NormalQuantile(c.p); !almostEqual(got, c.want, 1e-8) {
			t.Errorf("NormalQuantile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestNormalQuantileRoundTrip(t *testing.T) {
	for p := 0.001; p < 1; p += 0.0137 {
		x := NormalQuantile(p)
		if back := NormalCDF(x); !almostEqual(back, p, 1e-10) {
			t.Errorf("CDF(Quantile(%v)) = %v", p, back)
		}
	}
}

func TestNormalQuantilePanicsOutOfRange(t *testing.T) {
	for _, p := range []float64{0, 1, -0.5, 2} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NormalQuantile(%v) did not panic", p)
				}
			}()
			NormalQuantile(p)
		}()
	}
}

func TestSamplesForAttackPaperConstant(t *testing.T) {
	// Paper: with alpha = 0.99, 2·Z_α² ≈ 11.
	z := NormalQuantile(0.99)
	if got := 2 * z * z; !almostEqual(got, 10.82, 0.05) {
		t.Errorf("2·Z²(0.99) = %v, want ≈10.8 (paper rounds to 11)", got)
	}
}

func TestSamplesForAttackEdges(t *testing.T) {
	if s := SamplesForAttack(0, 0.99); !math.IsInf(s, 1) {
		t.Errorf("rho=0: S = %v, want +Inf", s)
	}
	if s := SamplesForAttack(1, 0.99); s != 3 {
		t.Errorf("rho=1: S = %v, want 3", s)
	}
	if s := SamplesForAttack(-1, 0.99); s != 3 {
		t.Errorf("rho=-1: S = %v, want 3 (sign-insensitive)", s)
	}
}

func TestSamplesApproxMatchesExactForSmallRho(t *testing.T) {
	for _, rho := range []float64{0.01, 0.03, 0.05, 0.1} {
		exact := SamplesForAttack(rho, 0.99)
		approx := SamplesForAttackApprox(rho, 0.99)
		if rel := math.Abs(exact-approx) / exact; rel > 0.02 {
			t.Errorf("rho=%v: exact %v vs approx %v (rel err %v)", rho, exact, approx, rel)
		}
	}
}

func TestSamplesMonotoneInRho(t *testing.T) {
	prev := math.Inf(1)
	for _, rho := range []float64{0.05, 0.1, 0.2, 0.4, 0.8} {
		s := SamplesForAttack(rho, 0.99)
		if s >= prev {
			t.Errorf("S not decreasing at rho=%v: %v >= %v", rho, s, prev)
		}
		prev = s
	}
}

func TestNormalizedSamplesTable2Spine(t *testing.T) {
	// Table II: rho 0.41 -> S ≈ 6, rho 0.20 -> 25, rho 0.09 -> ~123,
	// rho 0.03 -> ~1111 (paper reports 961 from unrounded rho).
	cases := []struct{ rho, want, tol float64 }{
		{1, 1, 0}, {0.41, 5.95, 0.05}, {0.20, 25, 0.01}, {0.05, 400, 1},
	}
	for _, c := range cases {
		if got := NormalizedSamples(c.rho); !almostEqual(got, c.want, c.tol) {
			t.Errorf("NormalizedSamples(%v) = %v, want %v", c.rho, got, c.want)
		}
	}
	if got := NormalizedSamples(0); !math.IsInf(got, 1) {
		t.Errorf("NormalizedSamples(0) = %v, want +Inf", got)
	}
}

func TestRCoalScore(t *testing.T) {
	// Security-oriented (a=1,b=1): doubling exec time halves the score.
	s1 := RCoalScore(100, 1, 1, 1)
	s2 := RCoalScore(100, 2, 1, 1)
	if !almostEqual(s1/s2, 2, 1e-12) {
		t.Errorf("score ratio = %v, want 2", s1/s2)
	}
	// Performance-oriented (a=1,b=20): a 10%% slowdown costs ~6.7x.
	p1 := RCoalScore(100, 1, 1, 20)
	p2 := RCoalScore(100, 1.1, 1, 20)
	if p1/p2 < 6 || p1/p2 > 7 {
		t.Errorf("b=20 penalty ratio = %v, want ≈6.7", p1/p2)
	}
}

func TestRCoalScorePanicsOnBadTime(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("RCoalScore with nonpositive time did not panic")
		}
	}()
	RCoalScore(1, 0, 1, 1)
}

func TestSecurityS(t *testing.T) {
	if got := SecurityS(0.1); !almostEqual(got, 100, 1e-9) {
		t.Errorf("SecurityS(0.1) = %v, want 100", got)
	}
}
