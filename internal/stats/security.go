package stats

import (
	"fmt"
	"math"
)

// SamplesForAttack implements Equation 4 of the paper: the expected
// number of timing samples S an attacker needs to distinguish the
// correct key guess at success rate alpha, given the correlation rho
// between the measurement vector T and the estimation vector Û:
//
//	S = 3 + 8 · (Z_α / ln((1+ρ)/(1-ρ)))²
//
// |rho| >= 1 returns the degenerate minimum (3: the estimator is
// exact), rho == 0 returns +Inf (the attack never succeeds, e.g.
// num-subwarp = 32 where the access count is constant).
func SamplesForAttack(rho, alpha float64) float64 {
	if !(alpha > 0 && alpha < 1) {
		panic(fmt.Sprintf("stats: SamplesForAttack alpha=%v outside (0,1)", alpha))
	}
	rho = math.Abs(rho)
	if rho == 0 {
		return math.Inf(1)
	}
	if rho >= 1 {
		return 3
	}
	z := NormalQuantile(alpha)
	l := math.Log((1 + rho) / (1 - rho))
	return 3 + 8*(z/l)*(z/l)
}

// SamplesForAttackApprox implements the small-ρ approximation of
// Equation 4: S ≈ 2·Z_α²/ρ². With α = 0.99, 2·Z_α² ≈ 11 as the paper
// notes.
func SamplesForAttackApprox(rho, alpha float64) float64 {
	if !(alpha > 0 && alpha < 1) {
		panic(fmt.Sprintf("stats: SamplesForAttackApprox alpha=%v outside (0,1)", alpha))
	}
	rho = math.Abs(rho)
	if rho == 0 {
		return math.Inf(1)
	}
	z := NormalQuantile(alpha)
	return 2 * z * z / (rho * rho)
}

// NormalizedSamples returns S normalized to the baseline case ρ = 1
// (FSS with M = 1 in Table II): S_norm = 1/ρ². Zero correlation maps
// to +Inf.
func NormalizedSamples(rho float64) float64 {
	rho = math.Abs(rho)
	if rho == 0 {
		return math.Inf(1)
	}
	return 1 / (rho * rho)
}

// RCoalScore implements Equation 7, the tunable security/performance
// trade-off metric:
//
//	RCoal_Score = S^a / execution_time^b
//
// where S is the squared inverse of the average attack correlation
// (SecurityS) and executionTime is typically normalized to the
// num-subwarp = 1 baseline. Exponents a and b weight security versus
// performance: the paper evaluates (a=1, b=1) for a security-oriented
// system and (a=1, b=20) for a performance-oriented one.
func RCoalScore(s, executionTime, a, b float64) float64 {
	if executionTime <= 0 {
		panic(fmt.Sprintf("stats: RCoalScore executionTime=%v must be positive", executionTime))
	}
	return math.Pow(s, a) / math.Pow(executionTime, b)
}

// SecurityS converts an average attack correlation into the paper's S
// value used by RCoalScore: the square of the inverse of the average
// correlation. Zero correlation maps to +Inf (perfect security).
func SecurityS(avgCorrelation float64) float64 {
	return NormalizedSamples(avgCorrelation)
}
