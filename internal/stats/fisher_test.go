package stats

import (
	"math"
	"testing"
)

func TestFisherZ(t *testing.T) {
	if FisherZ(0) != 0 {
		t.Error("FisherZ(0) != 0")
	}
	if !almostEqual(FisherZ(0.5), 0.5493061443340548, 1e-12) {
		t.Errorf("FisherZ(0.5) = %v", FisherZ(0.5))
	}
	// Antisymmetric.
	if FisherZ(0.3) != -FisherZ(-0.3) {
		t.Error("FisherZ not antisymmetric")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("FisherZ(1) did not panic")
		}
	}()
	FisherZ(1)
}

func TestFisherCIProperties(t *testing.T) {
	lo, hi := FisherCI(0.4, 100, 0.95)
	if !(lo < 0.4 && 0.4 < hi) {
		t.Errorf("CI [%v, %v] does not bracket the estimate", lo, hi)
	}
	// More samples shrink the interval.
	lo2, hi2 := FisherCI(0.4, 1000, 0.95)
	if hi2-lo2 >= hi-lo {
		t.Error("CI did not shrink with more samples")
	}
	// Higher confidence widens it.
	lo3, hi3 := FisherCI(0.4, 100, 0.99)
	if hi3-lo3 <= hi-lo {
		t.Error("99% CI not wider than 95%")
	}
	// Known value: r=0.5, n=103 -> se = 0.1, z = 0.5493,
	// 95% CI in z-space 0.5493 ± 1.96*0.1.
	lo4, hi4 := FisherCI(0.5, 103, 0.95)
	if !almostEqual(lo4, math.Tanh(0.5493061443340548-1.959963984540054*0.1), 1e-9) {
		t.Errorf("lo = %v", lo4)
	}
	if !almostEqual(hi4, math.Tanh(0.5493061443340548+1.959963984540054*0.1), 1e-9) {
		t.Errorf("hi = %v", hi4)
	}
}

func TestFisherCIPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"small n":        func() { FisherCI(0.1, 3, 0.95) },
		"bad confidence": func() { FisherCI(0.1, 100, 1.5) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestNoiseFloorScales(t *testing.T) {
	// The attack's wrong-guess bar: about 0.25-0.33 at n=100 over 255
	// guesses, shrinking like 1/sqrt(n).
	f100 := NoiseFloor(100, 255)
	if f100 < 0.2 || f100 > 0.4 {
		t.Errorf("NoiseFloor(100,255) = %v, want ≈0.3", f100)
	}
	f400 := NoiseFloor(400, 255)
	if !almostEqual(f400, f100/2, 0.01) {
		t.Errorf("floor not ~1/sqrt(n): %v vs %v/2", f400, f100)
	}
	// More guesses raise the bar.
	if NoiseFloor(100, 1000) <= NoiseFloor(100, 10) {
		t.Error("floor not increasing in guesses")
	}
}

func TestNoiseFloorMatchesSimulation(t *testing.T) {
	// Empirical check against the observed wrong-guess maxima in the
	// experiments: at n=100 samples the best wrong guess lands around
	// 0.27-0.31 (see fig6 disabled run: 0.274). The analytic floor
	// should be in that band.
	f := NoiseFloor(100, 255)
	if f < 0.25 || f > 0.35 {
		t.Errorf("NoiseFloor(100,255) = %v, observed wrong-guess maxima ≈0.27-0.31", f)
	}
}
