package stats

import (
	"fmt"
	"math"
)

// Fisher z-transform machinery: confidence intervals for sample
// correlations and the expected noise floor of the attack's guess
// ranking. The evaluation uses these to say when a measured
// correlation is signal and when it is indistinguishable from the
// noise among 255 wrong guesses.

// FisherZ maps a correlation to Fisher's z (atanh); its sampling
// distribution is ≈ normal with variance 1/(n-3).
func FisherZ(r float64) float64 {
	if r <= -1 || r >= 1 {
		panic(fmt.Sprintf("stats: FisherZ of |r| >= 1 (%v)", r))
	}
	return math.Atanh(r)
}

// FisherCI returns the confidence interval of a Pearson correlation
// estimated from n samples, at the given confidence level (e.g. 0.95).
// It requires n > 3.
func FisherCI(r float64, n int, confidence float64) (lo, hi float64) {
	if n <= 3 {
		panic(fmt.Sprintf("stats: FisherCI needs n > 3, have %d", n))
	}
	if !(confidence > 0 && confidence < 1) {
		panic(fmt.Sprintf("stats: confidence %v outside (0,1)", confidence))
	}
	z := FisherZ(r)
	se := 1 / math.Sqrt(float64(n-3))
	q := NormalQuantile(0.5 + confidence/2)
	return math.Tanh(z - q*se), math.Tanh(z + q*se)
}

// NoiseFloor returns the expected maximum |correlation| among
// `guesses` independent wrong guesses, each an empirical correlation
// over n samples of actually-uncorrelated series: the bar a correct
// guess must clear to win the attack's ranking. It uses the normal
// approximation corr ≈ N(0, 1/√n) and the expected-maximum quantile
// Φ⁻¹(1 - 1/(guesses+1)) of the half-normal.
func NoiseFloor(n, guesses int) float64 {
	if n <= 3 || guesses < 1 {
		panic(fmt.Sprintf("stats: NoiseFloor needs n > 3 (%d) and guesses >= 1 (%d)", n, guesses))
	}
	// Two-sided: |corr| of each wrong guess is half-normal; the max of
	// g draws sits near the 1-1/(g+1) quantile.
	p := 1 - 1/(2*float64(guesses)+2)
	return NormalQuantile(p) / math.Sqrt(float64(n))
}
