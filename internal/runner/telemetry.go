package runner

import (
	"fmt"
	"io"
	"math"
	"sync"
	"time"
)

// Telemetry aggregates live runtime statistics from one or more Pools:
// cell timings, retries, failures, throughput, and worker occupancy.
// Unlike the simulator's metrics registry (single-goroutine by
// design), Telemetry is concurrency-safe — many worker goroutines and
// a heartbeat reader share one instance. Attach it via Pool.Telemetry;
// the same instance may serve several pools (e.g. "-run all" driving
// one experiment per pool), in which case totals accumulate across
// them.
type Telemetry struct {
	mu         sync.Mutex
	start      time.Time
	total      int
	done       int
	failed     int
	restored   int
	cacheHits  int
	cacheMiss  int
	retries    int
	active     int
	peakActive int
	busy       time.Duration
	sumCell    time.Duration
	minCell    time.Duration
	maxCell    time.Duration
	now        func() time.Time // test hook
}

// NewTelemetry returns an empty aggregator.
func NewTelemetry() *Telemetry { return &Telemetry{} }

func (t *Telemetry) clock() time.Time {
	if t.now != nil {
		return t.now()
	}
	return time.Now()
}

// ensureStarted stamps the observation window's start; callers hold mu.
func (t *Telemetry) ensureStarted(now time.Time) {
	if t.start.IsZero() {
		t.start = now
	}
}

// addTotal records that n more cells have been scheduled.
func (t *Telemetry) addTotal(n int) {
	now := t.clock()
	t.mu.Lock()
	t.ensureStarted(now)
	t.total += n
	t.mu.Unlock()
}

// cellStart records a worker picking up a cell and returns the start
// time to hand back to cellEnd.
func (t *Telemetry) cellStart() time.Time {
	now := t.clock()
	t.mu.Lock()
	t.ensureStarted(now)
	t.active++
	if t.active > t.peakActive {
		t.peakActive = t.active
	}
	t.mu.Unlock()
	return now
}

// cellEnd records a cell finishing (across all of its retry attempts).
func (t *Telemetry) cellEnd(start time.Time, err error) {
	d := t.clock().Sub(start)
	t.mu.Lock()
	t.active--
	t.busy += d
	t.sumCell += d
	if t.done+t.failed == 0 || d < t.minCell {
		t.minCell = d
	}
	if d > t.maxCell {
		t.maxCell = d
	}
	if err != nil {
		t.failed++
	} else {
		t.done++
	}
	t.mu.Unlock()
}

// AddRestored records n cells satisfied without computation — restored
// from a checkpoint journal or served by a results cache. Restored
// cells count toward the grid total and completion display but are
// excluded from the rate window: they complete in microseconds, and
// folding them into the throughput sample would inflate the rate and
// collapse the ETA of a resumed sweep (the remaining *fresh* cells
// still cost full simulation time each).
func (t *Telemetry) AddRestored(n int) {
	now := t.clock()
	t.mu.Lock()
	t.ensureStarted(now)
	t.restored += n
	t.mu.Unlock()
}

// AddCacheHit records one cell served by the fingerprint-keyed results
// cache. Hits are also restored cells — report them with AddRestored
// too; this counter only tracks the cache's contribution.
func (t *Telemetry) AddCacheHit() {
	t.mu.Lock()
	t.cacheHits++
	t.mu.Unlock()
}

// AddCacheMiss records one cell the results cache could not serve.
func (t *Telemetry) AddCacheMiss() {
	t.mu.Lock()
	t.cacheMiss++
	t.mu.Unlock()
}

// retryEvent records one extra attempt of a failed cell.
func (t *Telemetry) retryEvent() {
	t.mu.Lock()
	t.retries++
	t.mu.Unlock()
}

// TelemetryStats is a point-in-time summary, JSON-friendly for the
// expvar endpoint.
type TelemetryStats struct {
	TotalCells  int `json:"total_cells"`
	CellsDone   int `json:"cells_done"`
	CellsFailed int `json:"cells_failed"`
	// RestoredCells were satisfied without computation (journal resume
	// or results cache). They are included in TotalCells and CellsDone
	// but excluded from CellsPerSec and ETA — see AddRestored.
	RestoredCells int           `json:"restored_cells"`
	CacheHits     int           `json:"cache_hits"`
	CacheMisses   int           `json:"cache_misses"`
	Retries       int           `json:"retries"`
	ActiveWorkers int           `json:"active_workers"`
	PeakWorkers   int           `json:"peak_workers"`
	Elapsed       time.Duration `json:"elapsed_ns"`
	AvgCell       time.Duration `json:"avg_cell_ns"`
	MinCell       time.Duration `json:"min_cell_ns"`
	MaxCell       time.Duration `json:"max_cell_ns"`
	CellsPerSec   float64       `json:"cells_per_sec"`
	ETA           time.Duration `json:"eta_ns"`
	Utilization   float64       `json:"utilization"`
}

// Stats summarizes the run so far. Throughput counts freshly computed
// cells (done + failed, restored excluded) over the window since the
// first event; ETA extrapolates that rate over the unfinished
// remainder; utilization is the fraction of worker-seconds spent
// inside cells, against the peak concurrency seen.
func (t *Telemetry) Stats() TelemetryStats {
	now := t.clock()
	t.mu.Lock()
	defer t.mu.Unlock()
	s := TelemetryStats{
		TotalCells:    t.total + t.restored,
		CellsDone:     t.done + t.restored,
		CellsFailed:   t.failed,
		RestoredCells: t.restored,
		CacheHits:     t.cacheHits,
		CacheMisses:   t.cacheMiss,
		Retries:       t.retries,
		ActiveWorkers: t.active,
		PeakWorkers:   t.peakActive,
		MinCell:       t.minCell,
		MaxCell:       t.maxCell,
	}
	if t.start.IsZero() {
		return s
	}
	if s.Elapsed = now.Sub(t.start); s.Elapsed < 0 {
		s.Elapsed = 0 // clock stepped backwards; keep the window sane
	}
	// The rate window covers freshly computed cells only: restored
	// cells arrive in microseconds and would otherwise inflate the
	// rate (and deflate the ETA) of every resumed or cache-warm sweep.
	// When that window is zero-width — every cell so far was a cache
	// hit or journal restore, so fresh == 0, or the clock has not
	// advanced — the rate is undefined: report 0 and no ETA rather
	// than NaN/Inf (which would poison the expvar/Prometheus JSON) or
	// a negative extrapolation.
	fresh := t.done + t.failed
	if fresh > 0 {
		s.AvgCell = t.sumCell / time.Duration(fresh)
	}
	if s.Elapsed > 0 {
		if fresh > 0 {
			s.CellsPerSec = float64(fresh) / s.Elapsed.Seconds()
		}
		if t.peakActive > 0 {
			s.Utilization = float64(t.busy) / (float64(s.Elapsed) * float64(t.peakActive))
			if s.Utilization > 1 {
				s.Utilization = 1 // rounding at tiny elapsed windows
			} else if s.Utilization < 0 {
				s.Utilization = 0
			}
		}
	}
	// remaining can go negative when restored cells were also counted
	// as scheduled (journal replay racing grid registration); clamp
	// instead of emitting a negative ETA.
	if remaining := t.total - fresh; remaining > 0 && s.CellsPerSec > 0 {
		if sec := float64(remaining) / s.CellsPerSec; sec < float64(math.MaxInt64)/float64(time.Second) {
			s.ETA = time.Duration(sec * float64(time.Second))
		} else {
			s.ETA = math.MaxInt64 // avoid Duration overflow wrapping negative
		}
	}
	return s
}

// String renders the heartbeat line.
func (s TelemetryStats) String() string {
	line := fmt.Sprintf("cells %d/%d", s.CellsDone+s.CellsFailed, s.TotalCells)
	if s.RestoredCells > 0 {
		line += fmt.Sprintf(" (%d restored)", s.RestoredCells)
	}
	if s.CellsFailed > 0 {
		line += fmt.Sprintf(" (%d failed)", s.CellsFailed)
	}
	if s.CacheHits+s.CacheMisses > 0 {
		line += fmt.Sprintf(", cache %d hit/%d miss", s.CacheHits, s.CacheMisses)
	}
	if s.Retries > 0 {
		line += fmt.Sprintf(", %d retries", s.Retries)
	}
	line += fmt.Sprintf(", %.1f cells/s", s.CellsPerSec)
	if s.ETA > 0 {
		line += fmt.Sprintf(", eta %s", s.ETA.Round(time.Second))
	}
	line += fmt.Sprintf(", workers %d/%d, util %d%%",
		s.ActiveWorkers, s.PeakWorkers, int(s.Utilization*100+0.5))
	return line
}

// Heartbeat starts a goroutine writing one Stats line to w every
// interval until the returned stop function is called. stop blocks
// until the final line (the end-of-run summary) has been written, so
// callers can defer it and still get a complete last line.
func (t *Telemetry) Heartbeat(w io.Writer, every time.Duration) (stop func()) {
	return t.HeartbeatWith(every, func(s TelemetryStats) {
		fmt.Fprintf(w, "telemetry: %s\n", s)
	})
}

// HeartbeatWith is Heartbeat with a caller-supplied sink: emit is
// called with a fresh Stats snapshot every interval and once more on
// stop (the end-of-run summary). It exists so callers can route the
// heartbeat into a structured logger or metrics exporter without this
// package depending on either.
func (t *Telemetry) HeartbeatWith(every time.Duration, emit func(TelemetryStats)) (stop func()) {
	done := make(chan struct{})
	finished := make(chan struct{})
	go func() {
		defer close(finished)
		tick := time.NewTicker(every)
		defer tick.Stop()
		for {
			select {
			case <-tick.C:
				emit(t.Stats())
			case <-done:
				emit(t.Stats())
				return
			}
		}
	}()
	var once sync.Once
	return func() {
		once.Do(func() { close(done) })
		<-finished
	}
}
