package runner

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestTelemetryCountsPoolRun(t *testing.T) {
	tel := NewTelemetry()
	p := Pool{Workers: 4, Telemetry: tel}
	err := p.MapN(context.Background(), 20, func(context.Context, int) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	s := tel.Stats()
	if s.TotalCells != 20 || s.CellsDone != 20 || s.CellsFailed != 0 {
		t.Fatalf("stats after clean run: %+v", s)
	}
	if s.ActiveWorkers != 0 {
		t.Errorf("active workers %d after pool drained, want 0", s.ActiveWorkers)
	}
	if s.PeakWorkers < 1 || s.PeakWorkers > 4 {
		t.Errorf("peak workers %d, want 1..4", s.PeakWorkers)
	}
	if s.MinCell < 0 || s.MaxCell < s.MinCell || s.AvgCell < 0 {
		t.Errorf("cell timing stats inconsistent: %+v", s)
	}
}

func TestTelemetryRetriesAndFailures(t *testing.T) {
	tel := NewTelemetry()
	var mu sync.Mutex
	attempts := map[int]int{}
	p := Pool{Workers: 1, Retries: 2, Telemetry: tel}
	err := p.MapN(context.Background(), 3, func(_ context.Context, i int) error {
		mu.Lock()
		attempts[i]++
		n := attempts[i]
		mu.Unlock()
		if i == 1 && n <= 2 {
			return MarkRetryable(errors.New("flaky"))
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	s := tel.Stats()
	if s.Retries != 2 {
		t.Errorf("retries = %d, want 2", s.Retries)
	}
	if s.CellsDone != 3 || s.CellsFailed != 0 {
		t.Errorf("done/failed = %d/%d, want 3/0", s.CellsDone, s.CellsFailed)
	}

	// A terminally failing cell counts as failed, not done.
	tel2 := NewTelemetry()
	p2 := Pool{Workers: 1, Telemetry: tel2}
	if err := p2.MapN(context.Background(), 1, func(context.Context, int) error {
		return errors.New("fatal")
	}); err == nil {
		t.Fatal("expected error")
	}
	if s := tel2.Stats(); s.CellsFailed != 1 || s.CellsDone != 0 {
		t.Errorf("done/failed = %d/%d, want 0/1", s.CellsDone, s.CellsFailed)
	}
}

func TestTelemetryStatsDerived(t *testing.T) {
	// Fixed clock: 10 cells finish over 5 virtual seconds, half the
	// workers busy — rate, ETA, and utilization become exact.
	tel := NewTelemetry()
	base := time.Unix(1000, 0)
	now := base
	tel.now = func() time.Time { return now }

	tel.addTotal(20)
	for i := 0; i < 10; i++ {
		start := tel.cellStart()
		now = now.Add(250 * time.Millisecond)
		tel.cellEnd(start, nil)
		now = now.Add(250 * time.Millisecond)
	}
	s := tel.Stats()
	if s.Elapsed != 5*time.Second {
		t.Fatalf("elapsed = %v, want 5s", s.Elapsed)
	}
	if s.CellsPerSec != 2 {
		t.Errorf("rate = %v, want 2 cells/s", s.CellsPerSec)
	}
	if s.ETA != 5*time.Second {
		t.Errorf("eta = %v, want 5s (10 remaining at 2/s)", s.ETA)
	}
	if s.Utilization != 0.5 {
		t.Errorf("utilization = %v, want 0.5", s.Utilization)
	}
	if s.AvgCell != 250*time.Millisecond || s.MinCell != 250*time.Millisecond || s.MaxCell != 250*time.Millisecond {
		t.Errorf("cell times avg/min/max = %v/%v/%v, want 250ms each", s.AvgCell, s.MinCell, s.MaxCell)
	}

	line := s.String()
	for _, want := range []string{"cells 10/20", "2.0 cells/s", "eta 5s", "util 50%"} {
		if !strings.Contains(line, want) {
			t.Errorf("heartbeat line %q missing %q", line, want)
		}
	}
}

func TestTelemetryRestoredExcludedFromRateWindow(t *testing.T) {
	// A resumed sweep: 15 of 20 cells restored from the journal in an
	// instant, 2 fresh cells computed at 1 cell/s. The rate must
	// reflect only the fresh cells, and the ETA must cover only the 3
	// unfinished fresh cells — restored cells inflating either was the
	// stale-rate bug on resumed sweeps.
	tel := NewTelemetry()
	base := time.Unix(1000, 0)
	now := base
	tel.now = func() time.Time { return now }

	tel.AddRestored(15)
	tel.addTotal(5) // the pool only schedules the 5 remaining cells
	for i := 0; i < 2; i++ {
		start := tel.cellStart()
		now = now.Add(time.Second)
		tel.cellEnd(start, nil)
	}
	s := tel.Stats()
	if s.TotalCells != 20 || s.CellsDone != 17 {
		t.Errorf("done/total = %d/%d, want 17/20", s.CellsDone, s.TotalCells)
	}
	if s.RestoredCells != 15 {
		t.Errorf("restored = %d, want 15", s.RestoredCells)
	}
	if s.CellsPerSec != 1 {
		t.Errorf("rate = %v cells/s, want 1 (restored cells must not count)", s.CellsPerSec)
	}
	if s.ETA != 3*time.Second {
		t.Errorf("eta = %v, want 3s (3 fresh cells at 1/s)", s.ETA)
	}
	if line := s.String(); !strings.Contains(line, "cells 17/20 (15 restored)") {
		t.Errorf("heartbeat line %q missing restored count", line)
	}
}

func TestTelemetryZeroWidthRateWindow(t *testing.T) {
	// A fully warm sweep: every remaining cell is a cache hit or
	// journal restore, so the fresh-cell rate window is zero-width.
	// The rate/ETA/utilization must all stay finite and non-negative —
	// this was the heartbeat degenerating on warm resumes.
	tel := NewTelemetry()
	base := time.Unix(1000, 0)
	now := base
	tel.now = func() time.Time { return now }

	tel.AddRestored(20)
	for i := 0; i < 20; i++ {
		tel.AddCacheHit()
	}
	now = now.Add(3 * time.Second) // wall time passes, zero fresh cells
	s := tel.Stats()
	for name, v := range map[string]float64{
		"cells_per_sec": s.CellsPerSec,
		"utilization":   s.Utilization,
		"eta_seconds":   s.ETA.Seconds(),
	} {
		if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
			t.Errorf("%s = %v on zero-width rate window, want finite non-negative", name, v)
		}
	}
	if s.CellsPerSec != 0 || s.ETA != 0 {
		t.Errorf("rate/eta = %v/%v on all-restored sweep, want 0/0", s.CellsPerSec, s.ETA)
	}
	if _, err := json.Marshal(s); err != nil {
		t.Errorf("stats snapshot not JSON-marshalable: %v", err)
	}
	if line := s.String(); strings.Contains(line, "NaN") || strings.Contains(line, "-") {
		t.Errorf("heartbeat line degenerated: %q", line)
	}

	// Same scenario with zero elapsed time (events all within one
	// clock tick): still finite.
	tel2 := NewTelemetry()
	tel2.now = func() time.Time { return base }
	tel2.AddRestored(5)
	s2 := tel2.Stats()
	if s2.CellsPerSec != 0 || s2.ETA != 0 || s2.Utilization != 0 {
		t.Errorf("zero-elapsed stats degenerated: %+v", s2)
	}
}

func TestTelemetryClockSkewClamped(t *testing.T) {
	// The clock stepping backwards (NTP correction) must not produce a
	// negative elapsed window or a negative rate.
	tel := NewTelemetry()
	base := time.Unix(1000, 0)
	now := base
	tel.now = func() time.Time { return now }
	tel.addTotal(2)
	start := tel.cellStart()
	tel.cellEnd(start, nil)
	now = base.Add(-10 * time.Second)
	s := tel.Stats()
	if s.Elapsed < 0 || s.CellsPerSec < 0 || s.ETA < 0 {
		t.Errorf("clock skew produced negative stats: %+v", s)
	}
}

func TestHeartbeatWithEmitsSnapshots(t *testing.T) {
	tel := NewTelemetry()
	tel.addTotal(3)
	var mu sync.Mutex
	var got []TelemetryStats
	stop := tel.HeartbeatWith(10*time.Millisecond, func(s TelemetryStats) {
		mu.Lock()
		got = append(got, s)
		mu.Unlock()
	})
	time.Sleep(35 * time.Millisecond)
	stop()
	stop() // idempotent
	mu.Lock()
	defer mu.Unlock()
	if len(got) < 2 {
		t.Fatalf("HeartbeatWith emitted %d snapshots, want >= 2", len(got))
	}
	if got[len(got)-1].TotalCells != 3 {
		t.Errorf("final snapshot total = %d, want 3", got[len(got)-1].TotalCells)
	}
}

func TestTelemetryCacheCounters(t *testing.T) {
	tel := NewTelemetry()
	tel.AddCacheHit()
	tel.AddCacheHit()
	tel.AddCacheMiss()
	s := tel.Stats()
	if s.CacheHits != 2 || s.CacheMisses != 1 {
		t.Errorf("cache hit/miss = %d/%d, want 2/1", s.CacheHits, s.CacheMisses)
	}
	if line := s.String(); !strings.Contains(line, "cache 2 hit/1 miss") {
		t.Errorf("heartbeat line %q missing cache counters", line)
	}
}

func TestTelemetryEmptyStats(t *testing.T) {
	s := NewTelemetry().Stats()
	if s.Elapsed != 0 || s.CellsPerSec != 0 || s.ETA != 0 {
		t.Errorf("empty telemetry derived non-zero stats: %+v", s)
	}
	if line := s.String(); !strings.Contains(line, "cells 0/0") {
		t.Errorf("empty heartbeat line: %q", line)
	}
}

func TestHeartbeatWritesAndStops(t *testing.T) {
	tel := NewTelemetry()
	tel.addTotal(1)
	var buf bytes.Buffer
	var mu sync.Mutex
	w := writerFunc(func(p []byte) (int, error) {
		mu.Lock()
		defer mu.Unlock()
		return buf.Write(p)
	})
	stop := tel.Heartbeat(w, 10*time.Millisecond)
	time.Sleep(35 * time.Millisecond)
	stop()
	stop() // idempotent
	mu.Lock()
	out := buf.String()
	mu.Unlock()
	if strings.Count(out, "telemetry:") < 2 {
		t.Fatalf("heartbeat wrote too few lines:\n%s", out)
	}
	if !strings.HasSuffix(out, "\n") {
		t.Error("heartbeat output not line-terminated")
	}
}

type writerFunc func([]byte) (int, error)

func (f writerFunc) Write(p []byte) (int, error) { return f(p) }
