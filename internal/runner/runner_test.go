package runner

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestWorkersResolution(t *testing.T) {
	if got := Workers(4); got != 4 {
		t.Errorf("Workers(4) = %d", got)
	}
	if got := Workers(0); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(0) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Workers(-3); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(-3) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
}

// TestMapPreservesInputOrder makes completion order deliberately
// adversarial (early items finish last) and asserts results still land
// by input index.
func TestMapPreservesInputOrder(t *testing.T) {
	items := make([]int, 16)
	for i := range items {
		items[i] = i
	}
	out, err := Map(context.Background(), 8, items, func(_ context.Context, i int, item int) (string, error) {
		time.Sleep(time.Duration(len(items)-i) * time.Millisecond)
		return fmt.Sprintf("cell-%d", item), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range out {
		if want := fmt.Sprintf("cell-%d", i); s != want {
			t.Errorf("out[%d] = %q, want %q", i, s, want)
		}
	}
}

func TestMapEmptyInput(t *testing.T) {
	out, err := Map(context.Background(), 4, nil, func(_ context.Context, i int, item int) (int, error) {
		t.Error("fn called on empty input")
		return 0, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 0 {
		t.Errorf("got %d results", len(out))
	}
	if err := (Pool{}).MapN(context.Background(), 0, nil); err != nil {
		t.Errorf("MapN(0) = %v", err)
	}
}

// TestSingleWorkerIsSerial proves Workers=1 executes cells strictly in
// index order with no interleaving — the determinism baseline.
func TestSingleWorkerIsSerial(t *testing.T) {
	var order []int
	err := Pool{Workers: 1}.MapN(context.Background(), 20, func(_ context.Context, i int) error {
		order = append(order, i) // no lock: single worker must serialize
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(order) != 20 {
		t.Fatalf("ran %d cells", len(order))
	}
	for i, got := range order {
		if got != i {
			t.Fatalf("execution order %v not sequential", order)
		}
	}
}

// TestFirstErrorPropagation: the error of the lowest-indexed failing
// cell wins, later cells are canceled, and with one worker no cell
// after the failure runs at all.
func TestFirstErrorPropagation(t *testing.T) {
	boom := errors.New("boom")
	var ran atomic.Int64
	err := Pool{Workers: 1}.MapN(context.Background(), 100, func(_ context.Context, i int) error {
		ran.Add(1)
		if i == 3 {
			return fmt.Errorf("cell %d: %w", i, boom)
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped boom", err)
	}
	if err.Error() != "cell 3: boom" {
		t.Errorf("err = %q, want the index-3 error", err)
	}
	if got := ran.Load(); got != 4 {
		t.Errorf("%d cells ran after failure at index 3 (single worker)", got)
	}

	// Parallel: two failures; the lower index must be reported even
	// when the higher-indexed error lands first.
	started2 := make(chan struct{})
	err = Pool{Workers: 8}.MapN(context.Background(), 8, func(_ context.Context, i int) error {
		switch i {
		case 2:
			close(started2)
			time.Sleep(10 * time.Millisecond)
			return fmt.Errorf("cell %d: %w", i, boom)
		case 6:
			<-started2
			return fmt.Errorf("cell %d: %w", i, boom)
		}
		return nil
	})
	if err == nil || err.Error() != "cell 2: boom" {
		t.Errorf("parallel err = %v, want the index-2 error", err)
	}

	// Map discards partial results on error.
	out, err := Map(context.Background(), 2, []int{1, 2, 3}, func(_ context.Context, i int, item int) (int, error) {
		if i == 0 {
			return 0, boom
		}
		return item, nil
	})
	if err == nil || out != nil {
		t.Errorf("Map after error: out=%v err=%v", out, err)
	}
}

// TestCancellationMidSweep cancels a long sweep and asserts the pool
// returns context.Canceled promptly without leaking goroutines.
func TestCancellationMidSweep(t *testing.T) {
	before := runtime.NumGoroutine()

	ctx, cancel := context.WithCancel(context.Background())
	started := make(chan struct{}, 1)
	var ran atomic.Int64
	errc := make(chan error, 1)
	go func() {
		errc <- Pool{Workers: 4}.MapN(ctx, 10_000, func(ctx context.Context, i int) error {
			ran.Add(1)
			select {
			case started <- struct{}{}:
			default:
			}
			select { // simulate a long cell that honors cancellation
			case <-ctx.Done():
			case <-time.After(5 * time.Millisecond):
			}
			return nil
		})
	}()
	<-started
	cancel()
	select {
	case err := <-errc:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("pool did not return after cancellation")
	}
	if got := ran.Load(); got >= 10_000 {
		t.Errorf("cancellation did not stop the sweep (%d cells ran)", got)
	}

	// All workers must be gone; allow the runtime a moment to reap.
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > before {
		t.Errorf("goroutines leaked: %d before, %d after", before, after)
	}
}

func TestProgressCallback(t *testing.T) {
	var calls []int
	total := 0
	p := Pool{Workers: 3, OnProgress: func(done, n int) {
		calls = append(calls, done) // serialized by contract
		total = n
	}}
	if err := p.MapN(context.Background(), 7, func(_ context.Context, i int) error { return nil }); err != nil {
		t.Fatal(err)
	}
	if total != 7 || len(calls) != 7 {
		t.Fatalf("progress calls %v (total %d)", calls, total)
	}
	for i, done := range calls {
		if done != i+1 {
			t.Fatalf("progress counts %v not monotonic", calls)
		}
	}
}

func TestCellSeedDeterminismAndDistinctness(t *testing.T) {
	const master = 0x8C0A1
	tuples := [][]any{
		{"sweep", 0, 1},
		{"sweep", 0, 2},
		{"sweep", 1, 1},
		{"sweep", 1, 2},
		{"fig18", 0, 1},
		{"sweep"},
		{"swee", "p"},      // concatenation must not alias the tuple above
		{"sweep", 0, 1, 0}, // longer tuple, shared prefix
		{int64(7)},
		{uint64(7)}, // same value, different type tag
		{uint32(7)},
		{"7"},
	}
	seen := map[uint64][]any{}
	for _, tu := range tuples {
		s := CellSeed(master, tu...)
		if s2 := CellSeed(master, tu...); s2 != s {
			t.Errorf("CellSeed(%v) unstable: %x vs %x", tu, s, s2)
		}
		if prev, dup := seen[s]; dup {
			t.Errorf("CellSeed collision between %v and %v", prev, tu)
		}
		seen[s] = tu
	}
	if a, b := CellSeed(1, "x"), CellSeed(2, "x"); a == b {
		t.Error("different masters produced the same stream")
	}
}

// TestPanicRecoveredAsError: a panicking cell must surface as a
// *PanicError carrying its index and stack, cancel in-flight siblings,
// and leak no goroutines — not crash the process.
func TestPanicRecoveredAsError(t *testing.T) {
	before := runtime.NumGoroutine()

	siblingCanceled := make(chan bool, 1)
	err := Pool{Workers: 2}.MapN(context.Background(), 8, func(ctx context.Context, i int) error {
		switch i {
		case 0: // long-running sibling: must be canceled, not abandoned
			select {
			case <-ctx.Done():
				siblingCanceled <- true
			case <-time.After(5 * time.Second):
				siblingCanceled <- false
			}
			return ctx.Err()
		case 1:
			time.Sleep(5 * time.Millisecond) // let the sibling start
			panic("cell 1 exploded")
		}
		return nil
	})

	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want *PanicError", err)
	}
	if pe.Cell != 1 || pe.Value != "cell 1 exploded" {
		t.Errorf("PanicError = cell %d value %v", pe.Cell, pe.Value)
	}
	if len(pe.Stack) == 0 || !strings.Contains(string(pe.Stack), "runner_test.go") {
		t.Errorf("panic stack does not point at the cell:\n%s", pe.Stack)
	}
	if !<-siblingCanceled {
		t.Error("in-flight sibling was not canceled")
	}

	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > before {
		t.Errorf("goroutines leaked after panic: %d before, %d after", before, after)
	}
}

// TestLowestPanickingIndexWins mirrors the ordinary-error contract:
// with two panics in flight, the lower cell index is reported even
// when the higher one lands first.
func TestLowestPanickingIndexWins(t *testing.T) {
	started2 := make(chan struct{})
	err := Pool{Workers: 8}.MapN(context.Background(), 8, func(_ context.Context, i int) error {
		switch i {
		case 2:
			close(started2)
			time.Sleep(10 * time.Millisecond)
			panic("low")
		case 6:
			<-started2
			panic("high")
		}
		return nil
	})
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want *PanicError", err)
	}
	if pe.Cell != 2 || pe.Value != "low" {
		t.Errorf("reported cell %d (%v), want cell 2", pe.Cell, pe.Value)
	}
}

// TestPanicAndErrorRace: a panic is an error like any other — when an
// ordinary error holds the lower index, it wins over the panic.
func TestPanicAndErrorRace(t *testing.T) {
	boom := errors.New("boom")
	started1 := make(chan struct{})
	err := Pool{Workers: 4}.MapN(context.Background(), 4, func(_ context.Context, i int) error {
		switch i {
		case 1:
			close(started1)
			time.Sleep(10 * time.Millisecond)
			return boom
		case 3:
			<-started1
			panic("later cell")
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want the lower-indexed plain error", err)
	}
}

func TestCellTimeout(t *testing.T) {
	var hit atomic.Int64
	err := Pool{Workers: 2, CellTimeout: 20 * time.Millisecond}.MapN(
		context.Background(), 4, func(ctx context.Context, i int) error {
			if i == 1 { // one cell wedges (but honors its context)
				<-ctx.Done()
				return ctx.Err()
			}
			hit.Add(1)
			return nil
		})
	var te *TimeoutError
	if !errors.As(err, &te) {
		t.Fatalf("err = %v, want *TimeoutError", err)
	}
	if te.Cell != 1 || te.Timeout != 20*time.Millisecond {
		t.Errorf("TimeoutError = %+v", te)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Error("timeout does not unwrap to context.DeadlineExceeded")
	}

	// Fast cells must be untouched by the budget.
	if err := (Pool{Workers: 2, CellTimeout: time.Second}).MapN(
		context.Background(), 8, func(_ context.Context, i int) error { return nil }); err != nil {
		t.Fatalf("fast cells under timeout: %v", err)
	}
}

// TestCallerCancelIsNotATimeout: cancellation of the parent context
// surfaces as ctx.Err(), never dressed up as a per-cell timeout.
func TestCallerCancelIsNotATimeout(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	started := make(chan struct{})
	go func() { <-started; cancel() }()
	var once sync.Once
	err := Pool{Workers: 2, CellTimeout: time.Minute}.MapN(ctx, 100, func(ctx context.Context, i int) error {
		once.Do(func() { close(started) })
		<-ctx.Done()
		return ctx.Err()
	})
	var te *TimeoutError
	if errors.As(err, &te) {
		t.Fatalf("caller cancel misreported as cell timeout: %v", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestRetryableFaultsRetriedSameCell(t *testing.T) {
	flaky := errors.New("transient")
	var attempts atomic.Int64
	err := Pool{Workers: 1, Retries: 2}.MapN(context.Background(), 3, func(_ context.Context, i int) error {
		if i == 1 && attempts.Add(1) < 3 { // fails twice, succeeds third
			return MarkRetryable(flaky)
		}
		return nil
	})
	if err != nil {
		t.Fatalf("retried cell still failed: %v", err)
	}
	if got := attempts.Load(); got != 3 {
		t.Errorf("cell 1 attempted %d times, want 3", got)
	}

	// Budget exhausted: the marked error surfaces and unwraps.
	attempts.Store(0)
	err = Pool{Workers: 1, Retries: 2}.MapN(context.Background(), 2, func(_ context.Context, i int) error {
		if i == 0 {
			attempts.Add(1)
			return MarkRetryable(flaky)
		}
		return nil
	})
	if !errors.Is(err, flaky) {
		t.Fatalf("err = %v, want wrapped transient", err)
	}
	if got := attempts.Load(); got != 3 {
		t.Errorf("attempted %d times, want 1 + 2 retries", got)
	}

	// Unmarked errors never retry, whatever the budget.
	attempts.Store(0)
	err = Pool{Workers: 1, Retries: 5}.MapN(context.Background(), 1, func(_ context.Context, i int) error {
		attempts.Add(1)
		return flaky
	})
	if !errors.Is(err, flaky) || attempts.Load() != 1 {
		t.Errorf("unmarked error: err=%v attempts=%d, want 1 attempt", err, attempts.Load())
	}

	// Panics never retry either.
	attempts.Store(0)
	err = Pool{Workers: 1, Retries: 5}.MapN(context.Background(), 1, func(_ context.Context, i int) error {
		attempts.Add(1)
		panic("not transient")
	})
	var pe *PanicError
	if !errors.As(err, &pe) || attempts.Load() != 1 {
		t.Errorf("panic retry: err=%v attempts=%d, want 1 attempt", err, attempts.Load())
	}
}

func TestRetryableMarking(t *testing.T) {
	if MarkRetryable(nil) != nil {
		t.Error("MarkRetryable(nil) != nil")
	}
	base := errors.New("x")
	marked := MarkRetryable(base)
	if !IsRetryable(marked) || !errors.Is(marked, base) {
		t.Error("marked error lost its mark or identity")
	}
	if IsRetryable(base) || IsRetryable(nil) {
		t.Error("unmarked error reported retryable")
	}
	wrapped := fmt.Errorf("cell 3: %w", marked)
	if !IsRetryable(wrapped) {
		t.Error("mark not visible through wrapping")
	}
}
