// Package runner is the work-scheduling layer shared by the
// experiment drivers: it fans independent evaluation cells (one
// (mechanism, num-subwarp) point, one scatter panel, one workload
// pattern...) out over a bounded worker pool while preserving the
// deterministic, serial-equivalent semantics the reproduction depends
// on.
//
// The contract every helper here upholds:
//
//   - results land in input order, regardless of completion order;
//   - the worker count changes wall-clock time only, never output
//     bytes — each cell must derive all of its randomness from an
//     explicit per-cell seed (see CellSeed) and own all of its mutable
//     state (its gpusim server, its attack.Attacker);
//   - the first error (lowest cell index among failures) cancels the
//     remaining cells and is returned;
//   - a panicking cell is recovered into a *PanicError and propagated
//     exactly like an ordinary failure — no crashed process, no leaked
//     goroutines;
//   - cancellation of the caller's context stops the pool promptly and
//     surfaces ctx.Err() without leaking goroutines.
package runner

import (
	"context"
	"errors"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"
)

// Workers resolves a worker-count request: n > 0 is honored as given;
// anything else (the zero value) means GOMAXPROCS.
func Workers(n int) int {
	if n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// Pool is a bounded fan-out executor. The zero value is ready to use
// and runs GOMAXPROCS cells at a time.
type Pool struct {
	// Workers bounds concurrent cells; <= 0 means GOMAXPROCS. 1 gives
	// fully serial execution (useful for determinism baselines).
	Workers int
	// OnProgress, when non-nil, is called after each completed cell
	// with the completion count so far and the total. Calls are
	// serialized, so the callback needs no locking of its own.
	OnProgress func(done, total int)
	// CellTimeout, when positive, bounds each cell's run: the cell's
	// context is canceled at the deadline, and an error the cell then
	// returns is wrapped in a *TimeoutError. Cells must honor their
	// context for the bound to bite — the pool never abandons a running
	// goroutine (that would leak it).
	CellTimeout time.Duration
	// Retries re-runs a failed cell up to this many extra times when
	// its error is marked retryable (MarkRetryable). A retried cell
	// keeps its index and therefore its CellSeed-derived randomness, so
	// an eventual success is byte-identical to a first-try success.
	Retries int
	// Telemetry, when non-nil, receives live per-cell runtime stats
	// (timings, retries, failures, worker occupancy). One Telemetry may
	// be shared across pools; see its docs.
	Telemetry *Telemetry
}

// MapN runs fn(ctx, i) for every i in [0, n) on at most p.Workers
// goroutines. It blocks until every started cell has returned; no
// goroutine outlives the call. If a cell fails, the remaining cells
// are canceled and the error of the lowest-indexed failing cell is
// returned. If ctx is canceled first, MapN returns ctx.Err().
func (p Pool) MapN(ctx context.Context, n int, fn func(ctx context.Context, i int) error) error {
	if n <= 0 {
		return ctx.Err()
	}
	if p.Telemetry != nil {
		p.Telemetry.addTotal(n)
	}
	workers := Workers(p.Workers)
	if workers > n {
		workers = n
	}
	cctx, cancel := context.WithCancel(ctx)
	defer cancel()

	var (
		next     atomic.Int64
		wg       sync.WaitGroup
		mu       sync.Mutex
		done     int
		firstIdx = -1
		firstErr error
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n || cctx.Err() != nil {
					return
				}
				if err := p.runCell(cctx, i, fn); err != nil {
					if errors.Is(err, context.Canceled) && cctx.Err() != nil {
						// Cancellation cascade: the pool is already
						// shutting down (a sibling failed, or the caller
						// canceled). A cell surfacing that cancellation
						// is not a root failure — recording it would let
						// a low-indexed canceled cell mask the culprit.
						return
					}
					mu.Lock()
					if firstIdx == -1 || i < firstIdx {
						firstIdx, firstErr = i, err
					}
					mu.Unlock()
					cancel()
					return
				}
				mu.Lock()
				done++
				if p.OnProgress != nil {
					p.OnProgress(done, n)
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	mu.Lock()
	err := firstErr
	mu.Unlock()
	if err != nil {
		return err
	}
	return ctx.Err()
}

// runCell executes one cell with the robustness envelope: bounded
// same-seed retries around attempts that recover panics and enforce
// the per-cell timeout.
func (p Pool) runCell(ctx context.Context, i int, fn func(ctx context.Context, i int) error) error {
	var start time.Time
	if p.Telemetry != nil {
		start = p.Telemetry.cellStart()
	}
	for attempt := 0; ; attempt++ {
		err := p.attemptCell(ctx, i, fn)
		if err == nil || attempt >= p.Retries || !IsRetryable(err) || ctx.Err() != nil {
			if p.Telemetry != nil {
				p.Telemetry.cellEnd(start, err)
			}
			return err
		}
		if p.Telemetry != nil {
			p.Telemetry.retryEvent()
		}
	}
}

func (p Pool) attemptCell(ctx context.Context, i int, fn func(ctx context.Context, i int) error) (err error) {
	cellCtx := ctx
	if p.CellTimeout > 0 {
		var cancel context.CancelFunc
		cellCtx, cancel = context.WithTimeout(ctx, p.CellTimeout)
		defer cancel()
	}
	defer func() {
		if v := recover(); v != nil {
			err = &PanicError{Cell: i, Value: v, Stack: debug.Stack()}
		}
	}()
	err = fn(cellCtx, i)
	if err != nil && cellCtx.Err() == context.DeadlineExceeded && ctx.Err() == nil {
		err = &TimeoutError{Cell: i, Timeout: p.CellTimeout, Err: err}
	}
	return err
}

// Map fans fn out over items on at most workers goroutines (<= 0
// means GOMAXPROCS) and returns the results in input order. Error and
// cancellation semantics are those of Pool.MapN.
func Map[T, R any](ctx context.Context, workers int, items []T, fn func(ctx context.Context, i int, item T) (R, error)) ([]R, error) {
	return MapWith(ctx, Pool{Workers: workers}, items, fn)
}

// MapWith is Map running on an explicit Pool, for callers that also
// want progress reporting. (A free function because Go methods cannot
// be generic.)
func MapWith[T, R any](ctx context.Context, p Pool, items []T, fn func(ctx context.Context, i int, item T) (R, error)) ([]R, error) {
	out := make([]R, len(items))
	err := p.MapN(ctx, len(items), func(ctx context.Context, i int) error {
		r, err := fn(ctx, i, items[i])
		if err != nil {
			return err
		}
		out[i] = r
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
