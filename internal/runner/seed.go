package runner

import (
	"encoding/binary"
	"fmt"
	"hash"
	"hash/fnv"

	"rcoal/internal/rng"
)

// CellSeed derives a deterministic 64-bit RNG seed for one labeled
// cell of a parallel experiment: the label tuple (experiment name,
// mechanism, num-subwarp, sample range, ...) is hashed and split off
// the master seed via the rng package's stream splitting. Distinct
// label tuples yield independent streams, so sibling workers can never
// collide on randomness no matter how cells are scheduled — and a cell
// keeps the same stream whether the sweep runs on 1 worker or 64.
//
// The encoding is injective over the supported label types (ints,
// unsigned ints, strings, fmt.Stringers): every label is tagged and
// length-delimited, and the tuple is length-prefixed, so ("ab") and
// ("a", "b") hash differently. Using CellSeed also prevents the
// classic ad-hoc-xor bug where two derivations (e.g. seed^0 for
// plaintexts and seed^(0*31) for hardware) silently alias at some
// index.
func CellSeed(master uint64, labels ...any) uint64 {
	h := fnv.New64a()
	writeUint64(h, uint64(len(labels)))
	for _, l := range labels {
		writeLabel(h, l)
	}
	return rng.New(master).Split(h.Sum64()).Uint64()
}

func writeUint64(h hash.Hash64, v uint64) {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], v)
	h.Write(buf[:])
}

func writeString(h hash.Hash64, tag byte, s string) {
	h.Write([]byte{tag})
	writeUint64(h, uint64(len(s)))
	h.Write([]byte(s))
}

func writeLabel(h hash.Hash64, l any) {
	switch v := l.(type) {
	case int:
		h.Write([]byte{'i'})
		writeUint64(h, uint64(int64(v)))
	case int64:
		h.Write([]byte{'i'})
		writeUint64(h, uint64(v))
	case uint64:
		h.Write([]byte{'u'})
		writeUint64(h, v)
	case string:
		writeString(h, 's', v)
	case fmt.Stringer:
		writeString(h, 'S', v.String())
	default:
		// Fallback for rare label types: tag with the dynamic type so
		// (int8(1)) and (int16(1)) cannot alias.
		writeString(h, '?', fmt.Sprintf("%T=%v", v, v))
	}
}
