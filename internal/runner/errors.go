package runner

import (
	"errors"
	"fmt"
	"time"
)

// PanicError is a recovered cell panic. The pool converts panics into
// errors so one bad cell cancels its siblings and surfaces like any
// other failure (lowest index first) instead of killing the process —
// a multi-hour sweep then reports the cell and stack and can be
// resumed from its journal.
type PanicError struct {
	// Cell is the panicking cell's index.
	Cell int
	// Value is the recovered panic value.
	Value any
	// Stack is the panicking goroutine's stack trace.
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("runner: cell %d panicked: %v\n%s", e.Cell, e.Value, e.Stack)
}

// TimeoutError reports a cell that exceeded the pool's CellTimeout.
// It unwraps to the cell's own error (typically context.DeadlineExceeded
// surfaced by whatever the cell was blocked on).
type TimeoutError struct {
	// Cell is the timed-out cell's index.
	Cell int
	// Timeout is the configured per-cell budget.
	Timeout time.Duration
	// Err is the error the cell returned when its context expired.
	Err error
}

func (e *TimeoutError) Error() string {
	return fmt.Sprintf("runner: cell %d exceeded its %v timeout: %v", e.Cell, e.Timeout, e.Err)
}

func (e *TimeoutError) Unwrap() error { return e.Err }

// retryable wraps an error marked safe to re-attempt.
type retryable struct{ err error }

func (r retryable) Error() string { return r.err.Error() }
func (r retryable) Unwrap() error { return r.err }

// MarkRetryable flags err as a transient fault the pool may re-run
// under Pool.Retries. Only mark faults whose retry cannot change
// results: cells derive all randomness from explicit seeds (CellSeed),
// so a same-seed re-attempt either fails again or produces the exact
// bytes a first-try success would have.
func MarkRetryable(err error) error {
	if err == nil {
		return nil
	}
	return retryable{err: err}
}

// IsRetryable reports whether err (or anything it wraps) was marked
// with MarkRetryable. Panics and timeouts are never retryable.
func IsRetryable(err error) bool {
	var r retryable
	return errors.As(err, &r)
}
