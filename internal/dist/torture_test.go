package dist

import (
	"encoding/json"
	"net/http/httptest"
	"path/filepath"
	"testing"
	"time"

	"rcoal/internal/checkpoint"
	"rcoal/internal/faultinject"
)

// TestTornLeaseLineResume tortures the coordinator ledger with a
// crash-mid-append (the journal's tail bytes vanish): the torn lease
// line is discarded on resume, its cell re-issues fresh, intact lease
// lines still seed their seqs, and completed cells stay completed.
func TestTornLeaseLineResume(t *testing.T) {
	path := filepath.Join(t.TempDir(), "exp.journal")
	meta := map[string]string{"id": "exp"}
	j1, err := checkpoint.Create(path, meta)
	if err != nil {
		t.Fatal(err)
	}
	if err := j1.RecordLease(checkpoint.Lease{Key: "cell/0", Worker: "A", Seq: 4, IssuedUnixNano: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := j1.RecordOnce("cell/1", "finished"); err != nil {
		t.Fatal(err)
	}
	if err := j1.RecordLease(checkpoint.Lease{Key: "cell/2", Worker: "B", Seq: 7, IssuedUnixNano: 2}); err != nil {
		t.Fatal(err)
	}
	j1.Close()

	// The crash tears the tail: the cell/2 lease line loses its end.
	if err := faultinject.TornTail(path, 10); err != nil {
		t.Fatal(err)
	}

	j2, err := checkpoint.Resume(path, meta)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if j2.Discarded != 1 {
		t.Fatalf("Discarded = %d, want 1 (the torn lease line)", j2.Discarded)
	}
	leases := j2.Leases()
	if _, ok := leases["cell/0"]; !ok {
		t.Error("intact lease line lost on resume")
	}
	if _, ok := leases["cell/2"]; ok {
		t.Error("torn lease line resurrected")
	}

	s := NewServer(ServerConfig{LeaseTimeout: time.Hour})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	done := startBatch(s, "exp", j2, nil, "cell/0", "cell/1", "cell/2")

	// cell/0's pre-crash holder reports at its journaled seq: accepted.
	deadline := time.Now().Add(5 * time.Second)
	for {
		var resp CompleteResponse
		postJSON(t, srv.URL+"/complete", CompleteRequest{
			Worker: "A", Experiment: "exp", Key: "cell/0", Seq: 4,
			Value: json.RawMessage(`"pre-crash"`),
		}, &resp)
		if resp.Accepted {
			break
		}
		if resp.Reason == "unknown experiment" && time.Now().Before(deadline) {
			time.Sleep(5 * time.Millisecond)
			continue
		}
		t.Fatalf("journaled-lease completion rejected: %s", resp.Reason)
	}

	// cell/2's lease was torn away, so it re-issues as a fresh seq-1
	// lease (cell/1 is complete and never grantable).
	g := lease(t, srv.URL, "C")
	if g.Key != "cell/2" || g.Seq != 1 {
		t.Fatalf("post-torture grant = %+v, want cell/2 seq 1", g)
	}
	if resp := complete(t, srv.URL, g, "C", `"rerun"`); !resp.Accepted {
		t.Fatalf("completion rejected: %s", resp.Reason)
	}

	res := <-done
	if res.err != nil {
		t.Fatal(res.err)
	}
	want := []string{`"pre-crash"`, `"finished"`, `"rerun"`}
	for i, v := range want {
		if string(res.raws[i]) != v {
			t.Errorf("cell %d = %s, want %s", i, res.raws[i], v)
		}
	}
	if n := s.Status().Experiments[0].Restored; n != 1 {
		t.Errorf("restored = %d, want 1 (the completed cell)", n)
	}
}

// TestCorruptedResultLineRerun tortures the ledger with bit-rot in a
// completed cell's line: the checksum rejects it on resume and the
// cell simply re-runs — first-writer-wins then applies to the rerun.
func TestCorruptedResultLineRerun(t *testing.T) {
	path := filepath.Join(t.TempDir(), "exp.journal")
	meta := map[string]string{"id": "exp"}
	j1, err := checkpoint.Create(path, meta)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := j1.RecordOnce("cell/0", "rotted"); err != nil {
		t.Fatal(err)
	}
	j1.Close()

	// Line 0 is the meta fingerprint; line 1 is the result.
	if err := faultinject.CorruptJournalLine(path, 1); err != nil {
		t.Fatal(err)
	}
	j2, err := checkpoint.Resume(path, meta)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if j2.Discarded != 1 || j2.Len() != 0 {
		t.Fatalf("resume kept %d cells with %d discarded, want 0 kept / 1 discarded", j2.Len(), j2.Discarded)
	}

	s := NewServer(ServerConfig{})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	done := startBatch(s, "exp", j2, nil, "cell/0")
	g := lease(t, srv.URL, "A")
	if resp := complete(t, srv.URL, g, "A", `"recomputed"`); !resp.Accepted {
		t.Fatalf("rerun completion rejected: %s", resp.Reason)
	}
	// Duplicate delivery of the rerun (a chaos DropResponse retry):
	// rejected, bytes unchanged.
	if resp := complete(t, srv.URL, g, "A", `"recomputed"`); resp.Accepted {
		t.Error("duplicate rerun completion accepted")
	}
	res := <-done
	if res.err != nil {
		t.Fatal(res.err)
	}
	if string(res.raws[0]) != `"recomputed"` {
		t.Errorf("result = %s", res.raws[0])
	}
	if raw, _ := j2.Lookup("cell/0"); string(raw) != `"recomputed"` {
		t.Errorf("journal holds %s", raw)
	}
}
