package dist

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"

	"rcoal/internal/experiments"
)

// TestBackoffDeterministicJitter pins the retry-pause contract: the
// sequence is a pure function of the worker ID (replayable), grows
// exponentially to the cap, and differs between workers so a shared
// outage does not retry in lockstep.
func TestBackoffDeterministicJitter(t *testing.T) {
	mk := func(id string) *Worker {
		return &Worker{ID: id, BackoffBase: 10 * time.Millisecond, BackoffCap: 80 * time.Millisecond}
	}
	seq := func(w *Worker) []time.Duration {
		src := w.jitterSource(0)
		out := make([]time.Duration, 8)
		for i := range out {
			out[i] = w.backoff(src, i+1)
		}
		return out
	}
	a, b := seq(mk("alpha")), seq(mk("alpha"))
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same worker ID, attempt %d: %v vs %v", i+1, a[i], b[i])
		}
	}
	c := seq(mk("beta"))
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same == len(a) {
		t.Error("different worker IDs produced identical backoff sequences")
	}
	for i, d := range a {
		// Attempt n's nominal pause is base<<(n-1) capped; jitter keeps it
		// in [nominal/2, nominal).
		nominal := 10 * time.Millisecond << uint(i)
		if nominal > 80*time.Millisecond {
			nominal = 80 * time.Millisecond
		}
		if d < nominal/2 || d >= nominal {
			t.Errorf("attempt %d pause %v outside [%v, %v)", i+1, d, nominal/2, nominal)
		}
	}
}

// TestBackoffHonorsPollWaitFloor: the coordinator's PollWait hint
// floors the error backoff.
func TestBackoffHonorsPollWaitFloor(t *testing.T) {
	w := &Worker{ID: "x", BackoffBase: time.Millisecond, BackoffCap: 2 * time.Millisecond}
	w.pollWaitMS.Store(500)
	if d := w.backoff(w.jitterSource(0), 1); d < 500*time.Millisecond {
		t.Errorf("backoff %v below the coordinator's 500ms PollWait floor", d)
	}
}

// TestRenewalKeepsSlowCell is the deadline-recompute fix: an honest
// computation outlasting LeaseTimeout renews its lease, so the cell
// is never re-issued and the slow holder's completion is accepted.
// The server runs on an injectable clock (reaping happens only inside
// lease polls, which this test controls), so scheduler load can slow
// the test down but never flip its verdict.
func TestRenewalKeepsSlowCell(t *testing.T) {
	clock := newTestClock()
	// 90ms of budget drives the worker's real-time renewal ticker
	// (every third of the budget); expiry is judged on the fake clock.
	s := NewServer(ServerConfig{LeaseTimeout: 90 * time.Millisecond, Clock: clock.Now})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	done := startBatch(s, "exp", nil, nil, "cell/0")
	release := make(chan struct{})
	slow := &Worker{
		Coordinator:  srv.URL,
		ID:           "slow",
		PollInterval: 5 * time.Millisecond,
		Compute: func(id string, o experiments.Options, key string) (json.RawMessage, error) {
			<-release
			return json.RawMessage(`"slow but honest"`), nil
		},
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go slow.Run(ctx)

	renewed := func() uint64 { return s.Status().Metrics.Counters[cntLeasesRenewed] }
	waitRenewals := func(min uint64) {
		deadline := time.Now().Add(30 * time.Second)
		for renewed() < min {
			if time.Now().After(deadline) {
				t.Fatalf("renewals stalled at %d, want >= %d", renewed(), min)
			}
			time.Sleep(2 * time.Millisecond)
		}
	}
	waitRenewals(1)

	// Push the fake clock far past the grant's original deadline: only
	// renewals can keep the lease alive now. Wait for one to land
	// after the advance (it resets the deadline ahead of fake-now),
	// then poll — nothing may be reaped or re-issued.
	clock.Advance(time.Hour)
	waitRenewals(renewed() + 1)
	var lr LeaseResponse
	postJSON(t, srv.URL+"/lease", LeaseRequest{Worker: "vulture"}, &lr)
	if lr.Lease != nil {
		t.Fatalf("renewed lease re-issued to a polling vulture: %+v", lr.Lease)
	}
	if n := s.Status().Metrics.Counters[cntLeasesExpired]; n != 0 {
		t.Fatalf("lease expired %d times despite renewals", n)
	}

	close(release)
	res := <-done
	if res.err != nil {
		t.Fatal(res.err)
	}
	if string(res.raws[0]) != `"slow but honest"` {
		t.Errorf("result = %s, want the slow holder's value", res.raws[0])
	}
}

// TestRenewEndpointSemantics pins /lease/renew's idempotent answers.
func TestRenewEndpointSemantics(t *testing.T) {
	s := NewServer(ServerConfig{LeaseTimeout: time.Minute})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	done := startBatch(s, "exp", nil, nil, "cell/0")
	g := lease(t, srv.URL, "A")

	renew := func(exp, key string, seq int64) RenewResponse {
		var resp RenewResponse
		postJSON(t, srv.URL+"/lease/renew", RenewRequest{Worker: "A", Experiment: exp, Key: key, Seq: seq}, &resp)
		return resp
	}

	if r := renew("nope", g.Key, g.Seq); r.Renewed {
		t.Error("renewed a lease of an unknown experiment")
	}
	if r := renew(g.Experiment, "nope", g.Seq); r.Renewed {
		t.Error("renewed an unknown cell")
	}
	if r := renew(g.Experiment, g.Key, g.Seq+1); r.Renewed {
		t.Error("renewed a stale seq")
	}
	r1 := renew(g.Experiment, g.Key, g.Seq)
	if !r1.Renewed || r1.DeadlineUnixNano <= g.DeadlineUnixNano {
		t.Errorf("valid renewal = %+v (grant deadline %d)", r1, g.DeadlineUnixNano)
	}
	// Duplicated renewal delivery: extends again, still fine.
	if r2 := renew(g.Experiment, g.Key, g.Seq); !r2.Renewed {
		t.Errorf("duplicated renewal rejected: %s", r2.Reason)
	}

	complete(t, srv.URL, g, "A", `"done"`)
	if r := renew(g.Experiment, g.Key, g.Seq); r.Renewed || r.Reason != "already complete" {
		t.Errorf("post-completion renewal = %+v", r)
	}
	if res := <-done; res.err != nil {
		t.Fatal(res.err)
	}
}

// TestGrantCarriesDeadline: the grant itself carries the authoritative
// deadline and the budget the holder schedules renewals from.
func TestGrantCarriesDeadline(t *testing.T) {
	s := NewServer(ServerConfig{LeaseTimeout: time.Minute})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	done := startBatch(s, "exp", nil, nil, "cell/0")
	g := lease(t, srv.URL, "A")
	if g.LeaseTimeoutMS != time.Minute.Milliseconds() {
		t.Errorf("grant budget = %dms, want %dms", g.LeaseTimeoutMS, time.Minute.Milliseconds())
	}
	if g.DeadlineUnixNano == 0 {
		t.Error("grant carries no deadline")
	}
	complete(t, srv.URL, g, "A", `"x"`)
	if res := <-done; res.err != nil {
		t.Fatal(res.err)
	}
}

// TestDrainFinishesInFlight is the SIGTERM contract: a drained worker
// finishes and reports its in-flight cell, takes no new lease, and
// Run returns nil — no orphaned leases, no lost work.
func TestDrainFinishesInFlight(t *testing.T) {
	s := NewServer(ServerConfig{LeaseTimeout: time.Minute})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	done := startBatch(s, "exp", nil, nil, "cell/0", "cell/1")

	started := make(chan struct{})
	release := make(chan struct{})
	w := &Worker{
		Coordinator:  srv.URL,
		ID:           "draining",
		PollInterval: 5 * time.Millisecond,
		Compute: func(id string, o experiments.Options, key string) (json.RawMessage, error) {
			close(started)
			<-release
			return json.RawMessage(`"finished"`), nil
		},
	}
	runErr := make(chan error, 1)
	go func() { runErr <- w.Run(context.Background()) }()

	<-started
	w.Drain()
	w.Drain() // idempotent
	close(release)

	select {
	case err := <-runErr:
		if err != nil {
			t.Fatalf("drained worker returned %v, want nil", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("drained worker did not exit")
	}
	if w.Completed() != 1 {
		t.Errorf("drained worker completed %d cells, want exactly the in-flight one", w.Completed())
	}

	// The in-flight cell landed; the second was never leased and is
	// immediately grantable — nothing orphaned behind a stale deadline.
	st := s.Status()
	var exp ExperimentStatus
	for _, e := range st.Experiments {
		if e.ID == "exp" {
			exp = e
		}
	}
	if exp.Done != 1 || exp.Leased != 0 || exp.Pending != 1 {
		t.Errorf("post-drain grid = %+v, want 1 done / 0 leased / 1 pending", exp)
	}
	g := lease(t, srv.URL, "B")
	if g.Key != "cell/1" || g.Seq != 1 {
		t.Errorf("post-drain grant = %+v, want cell/1 at seq 1 (fresh lease, not a re-issue)", g)
	}
	complete(t, srv.URL, g, "B", `"rest"`)
	if res := <-done; res.err != nil {
		t.Fatal(res.err)
	}
}

// blockPath fails every request to one path with a transport error —
// the "coordinator reachable except for completions" partial outage.
type blockPath struct {
	path    string
	blocked atomic.Bool
}

func (b *blockPath) RoundTrip(req *http.Request) (*http.Response, error) {
	if b.blocked.Load() && req.URL.Path == b.path {
		if req.Body != nil {
			req.Body.Close()
		}
		return nil, errors.New("blockPath: injected outage")
	}
	return http.DefaultTransport.RoundTrip(req)
}

// TestDegradedParkAndReplay is the graceful-degradation contract: a
// worker that computes a cell but cannot deliver it within
// DegradedAfter parks the completion in its local journal and exits
// cleanly; the next run with the same journal replays it to the
// coordinator, and the batch finishes with the parked value.
func TestDegradedParkAndReplay(t *testing.T) {
	s := NewServer(ServerConfig{LeaseTimeout: time.Hour})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	done := startBatch(s, "exp", nil, nil, "cell/0")

	parkPath := filepath.Join(t.TempDir(), "degraded.journal")
	outage := &blockPath{path: "/complete"}
	outage.blocked.Store(true)
	w1 := &Worker{
		Coordinator:   srv.URL,
		ID:            "stranded",
		PollInterval:  time.Millisecond,
		MaxErrors:     100000,
		BackoffBase:   time.Millisecond,
		BackoffCap:    5 * time.Millisecond,
		DegradedPath:  parkPath,
		DegradedAfter: 20 * time.Millisecond,
		Client:        &http.Client{Transport: outage},
		Compute: func(id string, o experiments.Options, key string) (json.RawMessage, error) {
			return json.RawMessage(`"computed in the dark"`), nil
		},
	}
	if err := w1.Run(context.Background()); err != nil {
		t.Fatalf("degraded worker returned %v, want clean exit", err)
	}
	if w1.Parked() != 1 {
		t.Fatalf("parked %d completions, want 1", w1.Parked())
	}

	// The outage heals; a new worker process with the same degraded
	// journal replays the parked completion before polling.
	w2 := &Worker{
		Coordinator:  srv.URL,
		ID:           "recovered",
		PollInterval: time.Millisecond,
		DegradedPath: parkPath,
		Compute: func(id string, o experiments.Options, key string) (json.RawMessage, error) {
			return nil, fmt.Errorf("nothing should need computing")
		},
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	w2done := make(chan error, 1)
	go func() { w2done <- w2.Run(ctx) }()

	res := <-done
	if res.err != nil {
		t.Fatal(res.err)
	}
	if string(res.raws[0]) != `"computed in the dark"` {
		t.Errorf("result = %s, want the parked value", res.raws[0])
	}
	s.Drain()
	if err := <-w2done; err != nil {
		t.Errorf("replaying worker returned %v", err)
	}

	// Replay is idempotent: a third run with the same journal finds the
	// completion already delivered and nothing breaks.
	w3 := &Worker{Coordinator: srv.URL, ID: "again", PollInterval: time.Millisecond, DegradedPath: parkPath}
	if err := w3.Run(context.Background()); err != nil {
		t.Errorf("idempotent replay returned %v", err)
	}
}

// TestRetryableCompletionDelivery: a 5xx (here injected at the HTTP
// layer, as internal/chaos does) on /complete is retried until the
// coordinator accepts, and first-writer-wins still holds — the cell
// lands exactly once.
func TestRetryableCompletionDelivery(t *testing.T) {
	s := NewServer(ServerConfig{LeaseTimeout: time.Hour})
	var fail atomic.Int64
	fail.Store(3)
	var completePosts atomic.Int64
	inner := s.Handler()
	flaky := http.HandlerFunc(func(rw http.ResponseWriter, req *http.Request) {
		if req.URL.Path == "/complete" {
			completePosts.Add(1)
			if fail.Add(-1) >= 0 {
				http.Error(rw, "injected 503", http.StatusServiceUnavailable)
				return
			}
		}
		inner.ServeHTTP(rw, req)
	})
	srv := httptest.NewServer(flaky)
	defer srv.Close()

	done := startBatch(s, "exp", nil, nil, "cell/0")
	w := &Worker{
		Coordinator:  srv.URL,
		ID:           "persistent",
		PollInterval: time.Millisecond,
		BackoffBase:  time.Millisecond,
		BackoffCap:   4 * time.Millisecond,
		Compute: func(id string, o experiments.Options, key string) (json.RawMessage, error) {
			return json.RawMessage(`"delivered eventually"`), nil
		},
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go w.Run(ctx)

	res := <-done
	if res.err != nil {
		t.Fatal(res.err)
	}
	if string(res.raws[0]) != `"delivered eventually"` {
		t.Errorf("result = %s", res.raws[0])
	}
	if n := completePosts.Load(); n < 4 {
		t.Errorf("saw %d /complete posts, want >= 4 (3 rejected + 1 accepted)", n)
	}
	if n := s.Status().Metrics.Counters[cntCompletions]; n != 1 {
		t.Errorf("completions counter = %d, want exactly 1", n)
	}
}

// TestStatusLivenessAndBacklog pins the autoscaling hint: PendingCells
// counts unfinished work, LiveWorkers tracks the liveness window, and
// BacklogSeconds divides the former by the live fleet's rate.
func TestStatusLivenessAndBacklog(t *testing.T) {
	clock := newTestClock()
	s := NewServer(ServerConfig{LeaseTimeout: time.Hour, LivenessWindow: 10 * time.Second, Clock: clock.Now})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	done := startBatch(s, "exp", nil, nil, "cell/0", "cell/1", "cell/2", "cell/3")
	gA := lease(t, srv.URL, "A")
	lease(t, srv.URL, "B")
	clock.Advance(2 * time.Second)
	complete(t, srv.URL, gA, "A", `"a"`)

	st := s.Status()
	if st.PendingCells != 3 {
		t.Errorf("PendingCells = %d, want 3 (1 leased + 2 pending)", st.PendingCells)
	}
	if st.LiveWorkers != 2 {
		t.Errorf("LiveWorkers = %d, want 2", st.LiveWorkers)
	}
	if st.BacklogSeconds <= 0 {
		t.Errorf("BacklogSeconds = %v, want > 0 with work pending and a live rate", st.BacklogSeconds)
	}

	// B goes silent past the window: it keeps its history but leaves
	// the live fleet.
	clock.Advance(11 * time.Second)
	var lr LeaseResponse
	postJSON(t, srv.URL+"/lease", LeaseRequest{Worker: "A"}, &lr)
	st = s.Status()
	if st.LiveWorkers != 1 {
		t.Errorf("LiveWorkers after silence = %d, want 1", st.LiveWorkers)
	}
	for _, w := range st.Workers {
		if w.ID == "B" && w.Live {
			t.Error("silent worker B still marked live")
		}
	}

	s.Close()
	if res := <-done; res.err == nil {
		t.Fatal("closed server's batch reported success")
	}
}
