package dist

import (
	"encoding/json"
	"errors"

	"rcoal/internal/checkpoint"
	"rcoal/internal/experiments"
)

// Exec is the coordinator-side experiments.CellExec: instead of
// fanning a grid batch out over the local pool, it registers the batch
// with the Server's lease state machine and blocks until remote
// workers have delivered every cell (or one failed). Attach it to
// Options.Exec and run the experiment as usual — the driver cannot
// tell it is distributed.
type Exec struct {
	s  *Server
	id string
	// journal is the durable work ledger: completed cells restore, the
	// rest lease out, and every lease and completion is journaled.
	journal *checkpoint.Journal
	// cache, when non-nil, short-circuits cells any prior sweep
	// computed under the same fingerprint (experiments.OpenCache).
	cache *checkpoint.Journal
	wire  WireOptions
}

// NewExec prepares experiment id for distributed execution on s. The
// journal and cache (either may be nil) come from
// experiments.OpenJournal / experiments.OpenCache; wire options are
// derived from the run's Options at ExecCells time.
func NewExec(s *Server, id string, journal, cache *checkpoint.Journal) *Exec {
	return &Exec{s: s, id: id, journal: journal, cache: cache}
}

// ExecCells implements experiments.CellExec. The enumerated closures
// are discarded — cells are recomputed remotely by key — which is
// exactly why GridCell keys must identify cells completely.
func (e *Exec) ExecCells(o experiments.Options, cells []experiments.GridCell) ([]json.RawMessage, error) {
	e.wire = WireFrom(o)
	keys := make([]string, len(cells))
	for i, c := range cells {
		keys[i] = c.Key
	}
	st, err := e.s.register(e, keys)
	if err != nil {
		return nil, err
	}

	s := e.s
	s.mu.Lock()
	restored, cacheHits := 0, 0
	for _, c := range st.cells {
		if c.restored {
			restored++
		}
		if c.cacheHit {
			cacheHits++
		}
	}
	st.progress = o.Progress
	s.mu.Unlock()
	if o.Telemetry != nil {
		if restored+cacheHits > 0 {
			o.Telemetry.AddRestored(restored + cacheHits)
		}
		for i := 0; i < cacheHits; i++ {
			o.Telemetry.AddCacheHit()
		}
		if e.cache != nil {
			for i := 0; i < len(cells)-restored-cacheHits; i++ {
				o.Telemetry.AddCacheMiss()
			}
		}
	}

	s.mu.Lock()
	for !st.complete() && !s.closed {
		s.cond.Wait()
	}
	closed, failure := s.closed, st.failure
	var raws []json.RawMessage
	if failure == nil && !closed {
		raws = make([]json.RawMessage, len(st.cells))
		for i, c := range st.cells {
			raws[i] = c.raw
		}
	}
	s.mu.Unlock()

	if failure != nil {
		s.unregister(st)
		return nil, failure
	}
	if closed {
		s.unregister(st)
		return nil, errServerClosed
	}
	return raws, nil
}

var errServerClosed = errors.New("dist: coordinator closed before the grid completed")
