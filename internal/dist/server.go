package dist

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"time"

	"rcoal/internal/checkpoint"
	"rcoal/internal/metrics"
	"rcoal/internal/obs"
)

// cellPhase is a grid cell's place in the lease state machine.
type cellPhase int

const (
	cellPending cellPhase = iota
	cellLeased
	cellDone
)

// cellState is one enumerated grid cell as the coordinator tracks it.
type cellState struct {
	index    int
	key      string
	phase    cellPhase
	raw      json.RawMessage
	worker    string
	seq       int64 // last issued lease number; bumps on re-issue/cancel
	deadline  time.Time
	grantedAt time.Time // current lease's grant time, for the fleet-trace span
	restored  bool
	cacheHit  bool
}

// expState is one experiment's registered grid plus its durable ledger.
type expState struct {
	id      string
	journal *checkpoint.Journal
	cache   *checkpoint.Journal // nil without a results cache
	wire    WireOptions
	cells   []*cellState
	byKey   map[string]*cellState
	pending int
	leased  int
	done    int
	// failure, when non-nil, aborts the experiment: the first cell
	// error reported by a worker, mirroring the local pool's
	// first-error-cancels contract.
	failure error
	// progress mirrors experiments.Options.Progress for the
	// registering driver; counts freshly computed completions only.
	progress   func(done, total int)
	freshDone  int
	freshTotal int
}

func (e *expState) complete() bool { return e.failure != nil || e.done == len(e.cells) }

// workerState is the coordinator's accounting for one worker identity.
type workerState struct {
	id        string
	active    int
	completed int
	firstSeen time.Time
	lastSeen  time.Time
}

// ServerConfig parameterizes a coordinator.
type ServerConfig struct {
	// LeaseTimeout bounds how long a granted lease may stay silent
	// before the cell is re-issued to another worker. 0 means the
	// default (2 minutes). The deadline is computed once at grant time
	// and carried in the grant (the one authoritative deadline); a
	// holder whose honest computation outlasts the budget renews via
	// /lease/renew instead of having its cell wastefully recomputed
	// elsewhere. Un-renewed expiry stays harmless either way, since
	// completions are first-writer-wins over identical bytes.
	LeaseTimeout time.Duration
	// PollWait is the retry hint returned when no cell is pending.
	// 0 means the default (250ms).
	PollWait time.Duration
	// LivenessWindow is how recently a worker must have been seen
	// (poll, renewal, or completion) to count as live in /status and
	// the autoscaling-hint aggregate. 0 means the default (15s).
	LivenessWindow time.Duration
	// TraceID is the sweep's trace id, minted by the coordinator
	// front end (obs.NewTraceID). When non-empty it is stamped on
	// every HTTP response (obs.TraceHeader), carried in every lease
	// grant, and workers collect per-cell spans for it.
	TraceID string
	// Trace, when non-nil, accumulates the fleet-wide merged trace:
	// coordinator lease spans and lifecycle marks plus the per-cell
	// span reports workers attach to completions.
	Trace *obs.FleetTrace
	// Log receives structured lease-lifecycle events (grants,
	// completions, renewals, expiries, cancellations, failures). nil
	// disables logging — the nil-receiver contract of obs.Logger makes
	// every call site unconditional.
	Log *obs.Logger
	// StragglerRatio flags a live worker whose per-worker rate falls
	// below this fraction of the live-fleet median. 0 means the
	// default (0.5).
	StragglerRatio float64
	// StragglerMinCells is how many completions a worker needs before
	// its rate joins the straggler baseline. 0 means the default (3).
	StragglerMinCells int
	// Clock overrides time.Now (tests).
	Clock func() time.Time
}

// Server is the coordinator: the lease state machine over every
// registered experiment grid, exposed as an http.Handler. All state is
// guarded by one mutex; completions broadcast on cond to wake the
// Exec goroutines blocked in ExecCells.
type Server struct {
	cfg  ServerConfig
	mu   sync.Mutex
	cond *sync.Cond
	reg  *metrics.Registry

	exps    []*expState
	byID    map[string]*expState
	workers map[string]*workerState

	firstLease time.Time
	drained    bool
	closed     bool
}

// NewServer returns an empty coordinator.
func NewServer(cfg ServerConfig) *Server {
	if cfg.LeaseTimeout <= 0 {
		cfg.LeaseTimeout = 2 * time.Minute
	}
	if cfg.PollWait <= 0 {
		cfg.PollWait = 250 * time.Millisecond
	}
	if cfg.LivenessWindow <= 0 {
		cfg.LivenessWindow = 15 * time.Second
	}
	if cfg.StragglerRatio <= 0 {
		cfg.StragglerRatio = 0.5
	}
	if cfg.StragglerMinCells <= 0 {
		cfg.StragglerMinCells = 3
	}
	// The coordinator owns pid 0 of the merged trace regardless of
	// which worker reports first.
	cfg.Trace.RegisterProcess(coordinatorProc)
	s := &Server{
		cfg:     cfg,
		reg:     metrics.NewRegistry(),
		byID:    make(map[string]*expState),
		workers: make(map[string]*workerState),
	}
	s.cond = sync.NewCond(&s.mu)
	return s
}

// coordinatorProc is the coordinator's process name in the merged
// fleet trace; workers appear as workerProc(id).
const coordinatorProc = "coordinator"

func workerProc(id string) string { return "worker " + id }

func (s *Server) now() time.Time {
	if s.cfg.Clock != nil {
		return s.cfg.Clock()
	}
	return time.Now()
}

// counter names surfaced via Status.Metrics and the expvar endpoint.
const (
	cntCacheHits      = "dist_cache_hits"
	cntCacheMisses    = "dist_cache_misses"
	cntRestored       = "dist_cells_restored"
	cntLeasesIssued   = "dist_leases_issued"
	cntLeasesExpired  = "dist_leases_expired"
	cntLeasesRenewed  = "dist_leases_renewed"
	cntLeasesCanceled = "dist_leases_canceled"
	cntCompletions    = "dist_completions"
	cntDuplicates     = "dist_completions_duplicate"
	cntStale          = "dist_completions_stale"
)

// Drain marks the coordinator finished: every driver has returned, so
// workers polling for leases are told Done and exit.
func (s *Server) Drain() {
	s.mu.Lock()
	s.drained = true
	s.mu.Unlock()
}

// Close aborts the coordinator: every blocked Exec returns an error.
// Used on shutdown paths and by the kill-and-resume tests ("kill" the
// coordinator without finishing the grid).
func (s *Server) Close() {
	s.mu.Lock()
	s.closed = true
	s.cond.Broadcast()
	s.mu.Unlock()
}

// register installs a grid batch for experiment id, restoring cells
// from the ledger journal and the results cache. Caller is exec.go.
func (s *Server) register(e *Exec, keys []string) (*expState, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, fmt.Errorf("dist: coordinator closed")
	}
	if _, dup := s.byID[e.id]; dup {
		return nil, fmt.Errorf("dist: experiment %q registered twice", e.id)
	}
	st := &expState{
		id:      e.id,
		journal: e.journal,
		cache:   e.cache,
		wire:    e.wire,
		byKey:   make(map[string]*cellState, len(keys)),
	}
	// Leases journaled by a previous coordinator incarnation seed the
	// per-cell sequence numbers, so completions of pre-crash leases
	// are recognized rather than misread as issues of this run.
	prior := map[string]checkpoint.Lease{}
	if e.journal != nil {
		prior = e.journal.Leases()
	}
	restored, cacheHits := 0, 0
	for i, key := range keys {
		c := &cellState{index: i, key: key}
		if pl, ok := prior[key]; ok {
			c.seq = pl.Seq
		}
		if e.journal != nil {
			if raw, ok := e.journal.Lookup(key); ok {
				c.phase, c.raw, c.restored = cellDone, raw, true
				restored++
			}
		}
		if c.phase != cellDone && e.cache != nil {
			if raw, ok := e.cache.Lookup(key); ok {
				c.phase, c.raw, c.cacheHit = cellDone, raw, true
				cacheHits++
				if e.journal != nil {
					if err := e.journal.Record(key, raw); err != nil {
						return nil, err
					}
				}
			} else {
				s.reg.Counter(cntCacheMisses).Inc()
			}
		}
		if c.phase == cellDone {
			st.done++
		} else {
			st.pending++
		}
		st.cells = append(st.cells, c)
		st.byKey[key] = c
	}
	st.freshTotal = st.pending
	s.reg.Counter(cntRestored).Add(uint64(restored))
	s.reg.Counter(cntCacheHits).Add(uint64(cacheHits))
	s.exps = append(s.exps, st)
	s.byID[st.id] = st
	return st, nil
}

// unregister removes a failed experiment's grid so a rebuilt Exec
// (e.g. a resumed coordinator sharing the process) can re-register.
func (s *Server) unregister(st *expState) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.byID, st.id)
	for i, e := range s.exps {
		if e == st {
			s.exps = append(s.exps[:i], s.exps[i+1:]...)
			break
		}
	}
}

// reapExpired returns timed-out leases to the pending queue. Caller
// holds mu.
func (s *Server) reapExpired(now time.Time) {
	for _, e := range s.exps {
		for _, c := range e.cells {
			if c.phase == cellLeased && now.After(c.deadline) {
				c.phase = cellPending
				e.leased--
				e.pending++
				if w := s.workers[c.worker]; w != nil && w.active > 0 {
					w.active--
				}
				s.reg.Counter(cntLeasesExpired).Inc()
				s.cfg.Log.Warn("lease expired",
					"experiment", e.id, "cell", c.key, "seq", c.seq, "worker", c.worker)
				s.cfg.Trace.Mark(coordinatorProc, obs.Mark{
					Track: e.id, Name: "lease_expired", At: now.UnixNano(),
					Attrs: map[string]string{"cell": c.key, "worker": c.worker},
				})
			}
		}
	}
}

// grantLease finds the first pending cell in registration order,
// journals the hand-out, and returns the grant. Caller holds mu.
func (s *Server) grantLease(w *workerState, now time.Time) (*LeaseGrant, error) {
	for _, e := range s.exps {
		if e.pending == 0 || e.failure != nil {
			continue
		}
		for _, c := range e.cells {
			if c.phase != cellPending {
				continue
			}
			c.seq++
			lease := checkpoint.Lease{
				Key: c.key, Worker: w.id, Seq: c.seq, IssuedUnixNano: now.UnixNano(),
			}
			if e.journal != nil {
				// Durable before granted: a coordinator crash between
				// here and the HTTP reply at worst re-issues.
				if err := e.journal.RecordLease(lease); err != nil {
					c.seq--
					return nil, err
				}
			}
			c.phase = cellLeased
			c.worker = w.id
			// The one authoritative deadline: set here, carried in the
			// grant, moved only by /lease/renew.
			c.deadline = now.Add(s.cfg.LeaseTimeout)
			c.grantedAt = now
			e.pending--
			e.leased++
			w.active++
			s.reg.Counter(cntLeasesIssued).Inc()
			if s.firstLease.IsZero() {
				s.firstLease = now
			}
			s.cfg.Log.Info("lease granted",
				"experiment", e.id, "cell", c.key, "seq", c.seq, "worker", w.id,
				"deadline_unix_nano", c.deadline.UnixNano())
			return &LeaseGrant{
				Experiment: e.id, Key: c.key, Seq: c.seq, Options: e.wire,
				LeaseTimeoutMS:   s.cfg.LeaseTimeout.Milliseconds(),
				DeadlineUnixNano: c.deadline.UnixNano(),
				TraceID:          s.cfg.TraceID,
			}, nil
		}
	}
	return nil, nil
}

func (s *Server) worker(id string, now time.Time) *workerState {
	w := s.workers[id]
	if w == nil {
		w = &workerState{id: id, firstSeen: now}
		s.workers[id] = w
	}
	w.lastSeen = now
	return w
}

// handleLease serves POST /lease.
func (s *Server) handleLease(rw http.ResponseWriter, req *http.Request) {
	var lr LeaseRequest
	if err := decodeJSON(rw, req, &lr); err != nil {
		return
	}
	if lr.Worker == "" {
		lr.Worker = "anonymous"
	}
	now := s.now()
	s.mu.Lock()
	s.reapExpired(now)
	w := s.worker(lr.Worker, now)
	grant, err := s.grantLease(w, now)
	drained := s.drained
	s.mu.Unlock()
	if err != nil {
		http.Error(rw, err.Error(), http.StatusInternalServerError)
		return
	}
	resp := LeaseResponse{}
	switch {
	case grant != nil:
		resp.Lease = grant
	case drained:
		resp.Done = true
	default:
		resp.WaitMS = s.cfg.PollWait.Milliseconds()
	}
	writeJSON(rw, resp)
}

// handleComplete serves POST /complete.
func (s *Server) handleComplete(rw http.ResponseWriter, req *http.Request) {
	var cr CompleteRequest
	if err := decodeJSON(rw, req, &cr); err != nil {
		return
	}
	if cr.Error == "" && !json.Valid(cr.Value) {
		writeJSON(rw, CompleteResponse{Accepted: false, Reason: "invalid result JSON"})
		return
	}
	now := s.now()
	s.mu.Lock()
	defer s.mu.Unlock()
	w := s.worker(cr.Worker, now)
	e := s.byID[cr.Experiment]
	if e == nil {
		writeJSON(rw, CompleteResponse{Accepted: false, Reason: "unknown experiment"})
		return
	}
	c := e.byKey[cr.Key]
	if c == nil {
		writeJSON(rw, CompleteResponse{Accepted: false, Reason: "unknown cell"})
		return
	}
	if c.phase == cellDone {
		s.reg.Counter(cntDuplicates).Inc()
		s.cfg.Log.Info("completion rejected",
			"experiment", e.id, "cell", cr.Key, "seq", cr.Seq, "worker", cr.Worker,
			"reason", "duplicate")
		writeJSON(rw, CompleteResponse{Accepted: false, Reason: "duplicate: first writer won"})
		return
	}
	if cr.Seq != c.seq {
		// A canceled or re-issued lease's original holder reporting
		// late. The current holder (or the next one) owns the cell.
		s.reg.Counter(cntStale).Inc()
		s.cfg.Log.Info("completion rejected",
			"experiment", e.id, "cell", cr.Key, "seq", cr.Seq, "worker", cr.Worker,
			"reason", "stale lease")
		writeJSON(rw, CompleteResponse{Accepted: false, Reason: "stale lease"})
		return
	}
	if cr.Error != "" {
		// First cell error aborts the experiment, mirroring the local
		// pool's first-error-cancels contract.
		if e.failure == nil {
			e.failure = fmt.Errorf("dist: cell %q on worker %s: %s", cr.Key, cr.Worker, cr.Error)
		}
		s.cfg.Log.Error("cell failed on worker",
			"experiment", e.id, "cell", cr.Key, "seq", cr.Seq, "worker", cr.Worker,
			"error", cr.Error)
		if c.phase == cellLeased {
			c.phase = cellPending
			e.leased--
			e.pending++
		}
		if w.active > 0 {
			w.active--
		}
		s.cond.Broadcast()
		writeJSON(rw, CompleteResponse{Accepted: true})
		return
	}
	if e.journal != nil {
		if _, err := e.journal.RecordOnce(cr.Key, cr.Value); err != nil {
			http.Error(rw, err.Error(), http.StatusInternalServerError)
			return
		}
	}
	if e.cache != nil {
		if _, err := e.cache.RecordOnce(cr.Key, cr.Value); err != nil {
			http.Error(rw, err.Error(), http.StatusInternalServerError)
			return
		}
	}
	if c.phase == cellLeased {
		e.leased--
	} else {
		e.pending-- // expired lease whose holder still delivered
	}
	c.phase = cellDone
	c.raw = cr.Value
	e.done++
	e.freshDone++
	if w.active > 0 {
		w.active--
	}
	w.completed++
	s.reg.Counter(cntCompletions).Inc()
	s.cfg.Log.Info("completion accepted",
		"experiment", e.id, "cell", cr.Key, "seq", cr.Seq, "worker", cr.Worker,
		"done", e.done, "total", len(e.cells))
	if s.cfg.Trace != nil {
		// The coordinator's view of the cell: one lease-hold span from
		// grant to accepted completion on the experiment's track.
		start := c.grantedAt.UnixNano()
		if c.grantedAt.IsZero() {
			start = now.UnixNano() // pre-crash lease delivered after resume
		}
		s.cfg.Trace.Span(coordinatorProc, obs.Span{
			Track: e.id, Name: "lease " + cr.Key,
			Start: start, End: now.UnixNano(),
			Attrs: map[string]string{"worker": cr.Worker, "seq": fmt.Sprint(cr.Seq)},
		})
		// Merge the worker's own per-cell span report.
		if cr.Trace != nil {
			s.cfg.Trace.AddCell(workerProc(cr.Worker), *cr.Trace)
		}
	}
	if e.progress != nil {
		e.progress(e.freshDone, e.freshTotal)
	}
	s.cond.Broadcast()
	writeJSON(rw, CompleteResponse{Accepted: true})
}

// handleRenew serves POST /lease/renew: an alive holder extends its
// lease's deadline by a full LeaseTimeout, so honest computations
// that outlast the silence budget are not recomputed elsewhere.
// Idempotent: a duplicated renewal extends an already-extended
// deadline by the same amount from the later arrival.
func (s *Server) handleRenew(rw http.ResponseWriter, req *http.Request) {
	var rr RenewRequest
	if err := decodeJSON(rw, req, &rr); err != nil {
		return
	}
	now := s.now()
	s.mu.Lock()
	defer s.mu.Unlock()
	if rr.Worker != "" {
		s.worker(rr.Worker, now)
	}
	e := s.byID[rr.Experiment]
	if e == nil {
		writeJSON(rw, RenewResponse{Renewed: false, Reason: "unknown experiment"})
		return
	}
	c := e.byKey[rr.Key]
	if c == nil {
		writeJSON(rw, RenewResponse{Renewed: false, Reason: "unknown cell"})
		return
	}
	if c.phase == cellDone {
		writeJSON(rw, RenewResponse{Renewed: false, Reason: "already complete"})
		return
	}
	if c.phase != cellLeased || rr.Seq != c.seq {
		writeJSON(rw, RenewResponse{Renewed: false, Reason: "stale lease"})
		return
	}
	c.deadline = now.Add(s.cfg.LeaseTimeout)
	s.reg.Counter(cntLeasesRenewed).Inc()
	s.cfg.Log.Info("lease renewed",
		"experiment", e.id, "cell", rr.Key, "seq", rr.Seq, "worker", rr.Worker,
		"deadline_unix_nano", c.deadline.UnixNano())
	s.cfg.Trace.Mark(coordinatorProc, obs.Mark{
		Track: e.id, Name: "lease_renewed", At: now.UnixNano(),
		Attrs: map[string]string{"cell": rr.Key, "worker": rr.Worker},
	})
	writeJSON(rw, RenewResponse{Renewed: true, DeadlineUnixNano: c.deadline.UnixNano()})
}

// handleCancel serves POST /leases/cancel.
func (s *Server) handleCancel(rw http.ResponseWriter, req *http.Request) {
	var cr CancelRequest
	if err := decodeJSON(rw, req, &cr); err != nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	e := s.byID[cr.Experiment]
	if e == nil {
		writeJSON(rw, CancelResponse{Canceled: false, Reason: "unknown experiment"})
		return
	}
	c := e.byKey[cr.Key]
	if c == nil {
		writeJSON(rw, CancelResponse{Canceled: false, Reason: "unknown cell"})
		return
	}
	if c.phase != cellLeased {
		writeJSON(rw, CancelResponse{Canceled: false, Reason: "not leased"})
		return
	}
	// Bump seq so the revoked holder's completion is stale; the cell
	// re-issues on the next poll (the "retry" half of cancel/retry).
	c.seq++
	c.phase = cellPending
	e.leased--
	e.pending++
	if w := s.workers[c.worker]; w != nil && w.active > 0 {
		w.active--
	}
	s.reg.Counter(cntLeasesCanceled).Inc()
	s.cfg.Log.Warn("lease canceled",
		"experiment", e.id, "cell", cr.Key, "worker", c.worker)
	s.cfg.Trace.Mark(coordinatorProc, obs.Mark{
		Track: e.id, Name: "lease_canceled", At: s.now().UnixNano(),
		Attrs: map[string]string{"cell": cr.Key, "worker": c.worker},
	})
	writeJSON(rw, CancelResponse{Canceled: true})
}

// Status summarizes the coordinator's live state.
func (s *Server) Status() Status {
	now := s.now()
	s.mu.Lock()
	defer s.mu.Unlock()
	st := Status{Done: s.drained, Metrics: s.reg.Snapshot()}
	totalPending, totalLeased, fresh := 0, 0, 0
	for _, e := range s.exps {
		es := ExperimentStatus{
			ID: e.id, Total: len(e.cells), Done: e.done,
			Pending: e.pending, Leased: e.leased,
		}
		for _, c := range e.cells {
			if c.restored {
				es.Restored++
			}
			if c.cacheHit {
				es.CacheHit++
			}
		}
		fresh += e.freshDone
		totalPending += e.pending
		totalLeased += e.leased
		st.Experiments = append(st.Experiments, es)
	}
	ids := make([]string, 0, len(s.workers))
	for id := range s.workers {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	liveRate := 0.0
	var baselineRates []float64
	for _, id := range ids {
		w := s.workers[id]
		ws := WorkerStatus{
			ID: w.id, Active: w.active, Completed: w.completed,
			LastSeenUnixNano: w.lastSeen.UnixNano(),
			Live:             now.Sub(w.lastSeen) <= s.cfg.LivenessWindow,
		}
		if d := now.Sub(w.firstSeen).Seconds(); d > 0 {
			ws.CellsPerSec = float64(w.completed) / d
		}
		if ws.Live {
			st.LiveWorkers++
			liveRate += ws.CellsPerSec
			if w.completed >= s.cfg.StragglerMinCells {
				baselineRates = append(baselineRates, ws.CellsPerSec)
			}
		}
		st.Workers = append(st.Workers, ws)
	}
	// Straggler detection: compare each live worker's throughput to the
	// median of live workers that have completed enough cells to have a
	// meaningful rate. Workers inside the grace window (younger than the
	// liveness window) are never flagged — their rate is still warming up.
	if len(baselineRates) > 0 {
		sort.Float64s(baselineRates)
		mid := len(baselineRates) / 2
		median := baselineRates[mid]
		if len(baselineRates)%2 == 0 {
			median = (baselineRates[mid-1] + baselineRates[mid]) / 2
		}
		st.MedianCellsPerSec = median
		if median > 0 {
			for i := range st.Workers {
				ws := &st.Workers[i]
				w := s.workers[ws.ID]
				ws.RateRatio = ws.CellsPerSec / median
				if ws.Live && now.Sub(w.firstSeen) >= s.cfg.LivenessWindow &&
					ws.CellsPerSec < s.cfg.StragglerRatio*median {
					ws.Straggler = true
				}
			}
		}
	}
	st.PendingCells = totalPending + totalLeased
	if liveRate > 0 {
		// The autoscaling hint: seconds of backlog at the live fleet's
		// aggregate rate. Persistently high => add workers; near zero
		// with many live workers => shrink.
		st.BacklogSeconds = float64(st.PendingCells) / liveRate
	}
	if !s.firstLease.IsZero() {
		if d := now.Sub(s.firstLease).Seconds(); d > 0 && fresh > 0 {
			st.CellsPerSec = float64(fresh) / d
			st.ETASeconds = float64(totalPending+totalLeased) / st.CellsPerSec
		}
	}
	return st
}

// FinalizeTrace labels straggler worker processes in the fleet trace
// so the badge shows up next to the process name in the viewer. Call
// once, after the sweep drains and before exporting the trace. No-op
// when tracing is disabled.
func (s *Server) FinalizeTrace() {
	if s.cfg.Trace == nil {
		return
	}
	st := s.Status()
	for _, ws := range st.Workers {
		if ws.Straggler {
			s.cfg.Trace.SetLabel(workerProc(ws.ID), "straggler")
		}
	}
}

// handleMetrics renders the coordinator's state as Prometheus text
// exposition (version 0.0.4): sweep-level gauges, per-experiment and
// per-worker series, then the full metrics.Registry snapshot.
func (s *Server) handleMetrics(rw http.ResponseWriter, _ *http.Request) {
	st := s.Status()
	p := obs.NewProm()
	done := 0
	if st.Done {
		done = 1
	}
	p.Gauge("rcoal_coordinator_done", "Whether the sweep has drained (1) or is still running (0).", float64(done))
	p.Gauge("rcoal_coordinator_pending_cells", "Cells not yet completed (pending plus leased).", float64(st.PendingCells))
	p.Gauge("rcoal_coordinator_live_workers", "Workers seen within the liveness window.", float64(st.LiveWorkers))
	p.Gauge("rcoal_coordinator_cells_per_second", "Fleet-wide fresh completion rate.", st.CellsPerSec)
	p.Gauge("rcoal_coordinator_eta_seconds", "Estimated seconds until the sweep drains.", st.ETASeconds)
	p.Gauge("rcoal_coordinator_backlog_seconds", "Seconds of backlog at the live fleet's aggregate rate.", st.BacklogSeconds)
	p.Gauge("rcoal_coordinator_median_cells_per_second", "Median per-worker completion rate used as the straggler baseline.", st.MedianCellsPerSec)
	expSeries := func(name, help string, pick func(ExperimentStatus) float64) {
		p.GaugeSeries(name, help, func(sample func(v float64, labels ...obs.Label)) {
			for _, es := range st.Experiments {
				sample(pick(es), obs.Label{Name: "experiment", Value: es.ID})
			}
		})
	}
	expSeries("rcoal_experiment_cells_total", "Total cells in the experiment grid.", func(es ExperimentStatus) float64 { return float64(es.Total) })
	expSeries("rcoal_experiment_cells_done", "Completed cells, restored and cache hits included.", func(es ExperimentStatus) float64 { return float64(es.Done) })
	expSeries("rcoal_experiment_cells_restored", "Cells restored from the journal at startup.", func(es ExperimentStatus) float64 { return float64(es.Restored) })
	expSeries("rcoal_experiment_cache_hits", "Cells answered from the results cache.", func(es ExperimentStatus) float64 { return float64(es.CacheHit) })
	workerSeries := func(name, help string, pick func(WorkerStatus) float64) {
		p.GaugeSeries(name, help, func(sample func(v float64, labels ...obs.Label)) {
			for _, ws := range st.Workers {
				sample(pick(ws), obs.Label{Name: "worker", Value: ws.ID})
			}
		})
	}
	workerSeries("rcoal_worker_completed_cells", "Cells completed by the worker.", func(ws WorkerStatus) float64 { return float64(ws.Completed) })
	workerSeries("rcoal_worker_cells_per_second", "Per-worker completion rate.", func(ws WorkerStatus) float64 { return ws.CellsPerSec })
	workerSeries("rcoal_worker_rate_ratio", "Worker rate relative to the live-median baseline.", func(ws WorkerStatus) float64 { return ws.RateRatio })
	workerSeries("rcoal_worker_straggler", "Whether the worker is flagged as a straggler (1) or not (0).", func(ws WorkerStatus) float64 {
		if ws.Straggler {
			return 1
		}
		return 0
	})
	workerSeries("rcoal_worker_live", "Whether the worker was seen within the liveness window.", func(ws WorkerStatus) float64 {
		if ws.Live {
			return 1
		}
		return 0
	})
	p.Snapshot("rcoal", st.Metrics)
	rw.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	p.WriteTo(rw)
}

// Handler returns the coordinator's HTTP interface.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/lease", methodHandler(http.MethodPost, s.handleLease))
	mux.HandleFunc("/lease/renew", methodHandler(http.MethodPost, s.handleRenew))
	mux.HandleFunc("/complete", methodHandler(http.MethodPost, s.handleComplete))
	mux.HandleFunc("/leases/cancel", methodHandler(http.MethodPost, s.handleCancel))
	mux.HandleFunc("/status", methodHandler(http.MethodGet, func(rw http.ResponseWriter, _ *http.Request) {
		writeJSON(rw, s.Status())
	}))
	mux.HandleFunc("/metrics", methodHandler(http.MethodGet, s.handleMetrics))
	if s.cfg.TraceID == "" {
		return mux
	}
	return http.HandlerFunc(func(rw http.ResponseWriter, req *http.Request) {
		rw.Header().Set(obs.TraceHeader, s.cfg.TraceID)
		mux.ServeHTTP(rw, req)
	})
}

// Heartbeat starts a goroutine writing one status line to w every
// interval until the returned stop function is called; stop writes the
// final end-of-run line before returning, so callers can defer it.
func (s *Server) Heartbeat(w io.Writer, every time.Duration) (stop func()) {
	done := make(chan struct{})
	finished := make(chan struct{})
	line := func() {
		fmt.Fprintf(w, "dist: %s\n", s.heartbeatLine())
	}
	go func() {
		defer close(finished)
		tick := time.NewTicker(every)
		defer tick.Stop()
		for {
			select {
			case <-tick.C:
				line()
			case <-done:
				line()
				return
			}
		}
	}()
	var once sync.Once
	return func() {
		once.Do(func() { close(done) })
		<-finished
	}
}

// heartbeatLine renders the one-line live summary, cache counters
// included.
func (s *Server) heartbeatLine() string {
	st := s.Status()
	total, done, restored := 0, 0, 0
	for _, e := range st.Experiments {
		total += e.Total
		done += e.Done
		restored += e.Restored
	}
	line := fmt.Sprintf("cells %d/%d", done, total)
	if restored > 0 {
		line += fmt.Sprintf(" (%d restored)", restored)
	}
	hits := st.Metrics.Counters[cntCacheHits]
	misses := st.Metrics.Counters[cntCacheMisses]
	if hits+misses > 0 {
		line += fmt.Sprintf(", cache %d hit/%d miss", hits, misses)
	}
	active := 0
	for _, w := range st.Workers {
		active += w.Active
	}
	line += fmt.Sprintf(", workers %d (%d busy)", len(st.Workers), active)
	if st.CellsPerSec > 0 {
		line += fmt.Sprintf(", %.1f cells/s", st.CellsPerSec)
	}
	if st.ETASeconds > 0 {
		line += fmt.Sprintf(", eta %s", (time.Duration(st.ETASeconds * float64(time.Second))).Round(time.Second))
	}
	return line
}

func methodHandler(method string, fn http.HandlerFunc) http.HandlerFunc {
	return func(rw http.ResponseWriter, req *http.Request) {
		if req.Method != method {
			http.Error(rw, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		fn(rw, req)
	}
}

func decodeJSON(rw http.ResponseWriter, req *http.Request, v any) error {
	dec := json.NewDecoder(io.LimitReader(req.Body, 64<<20))
	if err := dec.Decode(v); err != nil {
		http.Error(rw, fmt.Sprintf("bad request: %v", err), http.StatusBadRequest)
		return err
	}
	return nil
}

func writeJSON(rw http.ResponseWriter, v any) {
	rw.Header().Set("Content-Type", "application/json")
	json.NewEncoder(rw).Encode(v)
}
