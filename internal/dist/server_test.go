package dist

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"rcoal/internal/checkpoint"
	"rcoal/internal/experiments"
)

// testClock is an injectable clock for lease-timeout tests.
type testClock struct {
	mu sync.Mutex
	t  time.Time
}

func newTestClock() *testClock {
	return &testClock{t: time.Unix(1_700_000_000, 0)}
}

func (c *testClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *testClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func postJSON(t *testing.T, url string, in, out any) {
	t.Helper()
	body, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST %s: HTTP %d", url, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatal(err)
	}
}

// fakeCells builds a grid batch whose Run closures are never invoked —
// the dist executor recomputes by key on workers, so only keys matter.
func fakeCells(keys ...string) []experiments.GridCell {
	cells := make([]experiments.GridCell, len(keys))
	for i, k := range keys {
		cells[i] = experiments.GridCell{Index: i, Key: k}
	}
	return cells
}

type execResult struct {
	raws []json.RawMessage
	err  error
}

// startBatch registers a fake grid with the server from a background
// goroutine, the way a real experiment driver would.
func startBatch(s *Server, id string, j, cache *checkpoint.Journal, keys ...string) <-chan execResult {
	done := make(chan execResult, 1)
	go func() {
		e := NewExec(s, id, j, cache)
		raws, err := e.ExecCells(experiments.DefaultOptions(), fakeCells(keys...))
		done <- execResult{raws, err}
	}()
	return done
}

// lease polls until the coordinator grants one (the batch registers
// asynchronously) or the deadline passes.
func lease(t *testing.T, url, worker string) *LeaseGrant {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		var resp LeaseResponse
		postJSON(t, url+"/lease", LeaseRequest{Worker: worker}, &resp)
		if resp.Lease != nil {
			return resp.Lease
		}
		if resp.Done {
			t.Fatal("coordinator drained before granting a lease")
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("no lease granted within deadline")
	return nil
}

func complete(t *testing.T, url string, g *LeaseGrant, worker string, value string) CompleteResponse {
	t.Helper()
	var resp CompleteResponse
	postJSON(t, url+"/complete", CompleteRequest{
		Worker: worker, Experiment: g.Experiment, Key: g.Key, Seq: g.Seq,
		Value: json.RawMessage(value),
	}, &resp)
	return resp
}

func TestLeaseTimeoutReissue(t *testing.T) {
	clock := newTestClock()
	s := NewServer(ServerConfig{LeaseTimeout: time.Minute, Clock: clock.Now})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	done := startBatch(s, "exp", nil, nil, "cell/0")
	gA := lease(t, srv.URL, "A")
	if gA.Key != "cell/0" || gA.Seq != 1 {
		t.Fatalf("first grant = %+v, want cell/0 seq 1", gA)
	}

	// Worker A goes silent past the lease timeout; B's next poll reaps
	// the lease and re-issues the cell with a bumped seq.
	clock.Advance(2 * time.Minute)
	gB := lease(t, srv.URL, "B")
	if gB.Key != "cell/0" || gB.Seq != 2 {
		t.Fatalf("re-issued grant = %+v, want cell/0 seq 2", gB)
	}

	// A comes back from the dead: its completion is stale.
	if resp := complete(t, srv.URL, gA, "A", `"late"`); resp.Accepted {
		t.Error("stale completion accepted")
	}
	if resp := complete(t, srv.URL, gB, "B", `"fresh"`); !resp.Accepted {
		t.Errorf("current completion rejected: %s", resp.Reason)
	}

	res := <-done
	if res.err != nil {
		t.Fatal(res.err)
	}
	if string(res.raws[0]) != `"fresh"` {
		t.Errorf("batch result = %s, want the current holder's value", res.raws[0])
	}
	st := s.Status()
	if st.Metrics.Counters[cntLeasesExpired] != 1 || st.Metrics.Counters[cntStale] != 1 {
		t.Errorf("counters = %v, want 1 expiry and 1 stale", st.Metrics.Counters)
	}
}

func TestDuplicateCompletionFirstWriterWins(t *testing.T) {
	s := NewServer(ServerConfig{})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	path := filepath.Join(t.TempDir(), "exp.journal")
	j, err := checkpoint.Create(path, map[string]string{"id": "exp"})
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()

	done := startBatch(s, "exp", j, nil, "cell/0")
	g := lease(t, srv.URL, "A")
	if resp := complete(t, srv.URL, g, "A", `"first"`); !resp.Accepted {
		t.Fatalf("first completion rejected: %s", resp.Reason)
	}
	if resp := complete(t, srv.URL, g, "A", `"second"`); resp.Accepted {
		t.Error("duplicate completion accepted")
	}
	res := <-done
	if res.err != nil {
		t.Fatal(res.err)
	}
	if string(res.raws[0]) != `"first"` {
		t.Errorf("result = %s, want the first writer's value", res.raws[0])
	}
	// The ledger, too, keeps the first writer's bytes.
	if raw, ok := j.Lookup("cell/0"); !ok || string(raw) != `"first"` {
		t.Errorf("journal has %s, want \"first\"", raw)
	}
	if n := s.Status().Metrics.Counters[cntDuplicates]; n != 1 {
		t.Errorf("duplicate counter = %d, want 1", n)
	}
}

func TestCancelRevokesAndReissues(t *testing.T) {
	s := NewServer(ServerConfig{})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	done := startBatch(s, "exp", nil, nil, "cell/0")
	gA := lease(t, srv.URL, "A")

	var cresp CancelResponse
	postJSON(t, srv.URL+"/leases/cancel", CancelRequest{Experiment: "exp", Key: "cell/0"}, &cresp)
	if !cresp.Canceled {
		t.Fatalf("cancel refused: %s", cresp.Reason)
	}
	// Canceling an idle cell is refused.
	postJSON(t, srv.URL+"/leases/cancel", CancelRequest{Experiment: "exp", Key: "cell/0"}, &cresp)
	if cresp.Canceled {
		t.Error("canceled a non-leased cell")
	}

	gB := lease(t, srv.URL, "B")
	if gB.Seq <= gA.Seq {
		t.Fatalf("re-issue seq %d not past revoked seq %d", gB.Seq, gA.Seq)
	}
	if resp := complete(t, srv.URL, gA, "A", `"revoked"`); resp.Accepted {
		t.Error("revoked holder's completion accepted")
	}
	if resp := complete(t, srv.URL, gB, "B", `"kept"`); !resp.Accepted {
		t.Errorf("new holder's completion rejected: %s", resp.Reason)
	}
	res := <-done
	if res.err != nil {
		t.Fatal(res.err)
	}
	if string(res.raws[0]) != `"kept"` {
		t.Errorf("result = %s, want the new holder's value", res.raws[0])
	}
}

func TestWorkerErrorFailsExperiment(t *testing.T) {
	s := NewServer(ServerConfig{})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	done := startBatch(s, "exp", nil, nil, "cell/0", "cell/1")
	g := lease(t, srv.URL, "A")
	var resp CompleteResponse
	postJSON(t, srv.URL+"/complete", CompleteRequest{
		Worker: "A", Experiment: g.Experiment, Key: g.Key, Seq: g.Seq,
		Error: "synthetic cell failure",
	}, &resp)
	res := <-done
	if res.err == nil || !strings.Contains(res.err.Error(), "synthetic cell failure") {
		t.Fatalf("batch error = %v, want the worker's failure", res.err)
	}
	// The failed registration is gone: the experiment can re-register
	// (a resumed coordinator in the same process).
	done2 := startBatch(s, "exp", nil, nil, "cell/0")
	g2 := lease(t, srv.URL, "A")
	if resp := complete(t, srv.URL, g2, "A", `"ok"`); !resp.Accepted {
		t.Fatalf("re-registered completion rejected: %s", resp.Reason)
	}
	if res := <-done2; res.err != nil {
		t.Fatal(res.err)
	}
}

// TestPreCrashLeaseCompletionAccepted pins the resume-seq contract: a
// lease journaled by a previous coordinator incarnation seeds the
// cell's seq, so the old holder's completion arriving at the new
// coordinator is recognized, not misread as stale.
func TestPreCrashLeaseCompletionAccepted(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "exp.journal")
	meta := map[string]string{"id": "exp"}
	j1, err := checkpoint.Create(path, meta)
	if err != nil {
		t.Fatal(err)
	}
	if err := j1.RecordLease(checkpoint.Lease{Key: "cell/0", Worker: "A", Seq: 4, IssuedUnixNano: 1}); err != nil {
		t.Fatal(err)
	}
	j1.Close()

	j2, err := checkpoint.Resume(path, meta)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()

	s := NewServer(ServerConfig{})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	done := startBatch(s, "exp", j2, nil, "cell/0")

	// Give the batch a moment to register, then deliver the pre-crash
	// lease's completion without ever polling for a new lease.
	deadline := time.Now().Add(5 * time.Second)
	for {
		var resp CompleteResponse
		postJSON(t, srv.URL+"/complete", CompleteRequest{
			Worker: "A", Experiment: "exp", Key: "cell/0", Seq: 4,
			Value: json.RawMessage(`"survivor"`),
		}, &resp)
		if resp.Accepted {
			break
		}
		if resp.Reason == "unknown experiment" && time.Now().Before(deadline) {
			time.Sleep(5 * time.Millisecond)
			continue
		}
		t.Fatalf("pre-crash completion rejected: %s", resp.Reason)
	}
	res := <-done
	if res.err != nil {
		t.Fatal(res.err)
	}
	if string(res.raws[0]) != `"survivor"` {
		t.Errorf("result = %s, want the pre-crash holder's value", res.raws[0])
	}
	if n := s.Status().Metrics.Counters[cntLeasesIssued]; n != 0 {
		t.Errorf("leases issued = %d, want 0 (completion arrived before re-issue)", n)
	}
}

func TestCloseUnblocksExec(t *testing.T) {
	s := NewServer(ServerConfig{})
	done := startBatch(s, "exp", nil, nil, "cell/0")
	time.Sleep(10 * time.Millisecond)
	s.Close()
	res := <-done
	if res.err == nil || !strings.Contains(res.err.Error(), "closed") {
		t.Fatalf("batch error after Close = %v", res.err)
	}
}

func TestStatusAndHeartbeat(t *testing.T) {
	s := NewServer(ServerConfig{})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	done := startBatch(s, "exp", nil, nil, "cell/0", "cell/1")
	g := lease(t, srv.URL, "A")
	complete(t, srv.URL, g, "A", `1`)

	resp, err := http.Get(srv.URL + "/status")
	if err != nil {
		t.Fatal(err)
	}
	var st Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(st.Experiments) != 1 || st.Experiments[0].Done != 1 || st.Experiments[0].Total != 2 {
		t.Errorf("status experiments = %+v, want 1/2 done", st.Experiments)
	}
	if len(st.Workers) != 1 || st.Workers[0].ID != "A" || st.Workers[0].Completed != 1 {
		t.Errorf("status workers = %+v", st.Workers)
	}
	if line := s.heartbeatLine(); !strings.Contains(line, "cells 1/2") || !strings.Contains(line, "workers 1") {
		t.Errorf("heartbeat line = %q", line)
	}

	g2 := lease(t, srv.URL, "A")
	complete(t, srv.URL, g2, "A", `2`)
	if res := <-done; res.err != nil {
		t.Fatal(res.err)
	}

	// After Drain, polls report Done.
	s.Drain()
	var lr LeaseResponse
	postJSON(t, srv.URL+"/lease", LeaseRequest{Worker: "A"}, &lr)
	if !lr.Done {
		t.Error("post-drain poll did not report Done")
	}
}
