package dist

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"rcoal/internal/gpusim/tracevis"
	"rcoal/internal/obs"
)

// TestTracePropagationAndMerge drives one cell through the lease
// protocol with tracing enabled and checks the merged fleet trace:
// the grant carries the trace id, every HTTP response echoes it in
// the header, the coordinator's lease span and the worker's cell
// span/marks land in one valid Chrome trace sharing one trace id.
func TestTracePropagationAndMerge(t *testing.T) {
	clock := newTestClock()
	traceID := obs.NewTraceID()
	ft := obs.NewFleetTrace(traceID)
	s := NewServer(ServerConfig{
		Clock:   clock.Now,
		TraceID: traceID,
		Trace:   ft,
	})
	defer s.Close()
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	done := startBatch(s, "exp", nil, nil, "k0")

	resp, err := http.Get(srv.URL + "/status")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get(obs.TraceHeader); got != traceID {
		t.Fatalf("response %s header = %q, want %q", obs.TraceHeader, got, traceID)
	}

	g := lease(t, srv.URL, "w1")
	if g.TraceID != traceID {
		t.Fatalf("grant trace id = %q, want %q", g.TraceID, traceID)
	}
	clock.Advance(100 * time.Millisecond)

	now := clock.Now()
	var cresp CompleteResponse
	postJSON(t, srv.URL+"/complete", CompleteRequest{
		Worker: "w1", Experiment: g.Experiment, Key: g.Key, Seq: g.Seq,
		Value: json.RawMessage(`{"v":1}`),
		Trace: &obs.CellTrace{
			Worker: "w1",
			Spans: []obs.Span{{
				Track: g.Experiment, Name: "cell " + g.Key,
				Start: now.Add(-80 * time.Millisecond).UnixNano(),
				End:   now.UnixNano(),
			}},
			Marks: []obs.Mark{{
				Track: g.Experiment, Name: "chaos_fault",
				At:    now.Add(-40 * time.Millisecond).UnixNano(),
				Attrs: map[string]string{"endpoint": "/complete", "kind": "torn"},
			}},
		},
	}, &cresp)
	if !cresp.Accepted {
		t.Fatalf("completion rejected: %s", cresp.Reason)
	}
	if err := (<-done).err; err != nil {
		t.Fatal(err)
	}
	s.FinalizeTrace()

	var buf strings.Builder
	if err := ft.Export(&buf); err != nil {
		t.Fatal(err)
	}
	raw := []byte(buf.String())
	if err := tracevis.Validate(raw); err != nil {
		t.Fatalf("merged trace invalid: %v\n%s", err, raw)
	}
	var f tracevis.File
	if err := json.Unmarshal(raw, &f); err != nil {
		t.Fatal(err)
	}
	if got := f.OtherData["trace_id"]; got != traceID {
		t.Fatalf("otherData trace_id = %v, want %q", got, traceID)
	}
	names := map[string]bool{}
	procs := map[string]float64{}
	for _, ev := range f.TraceEvents {
		names[ev.Name] = true
		if ev.Name == "process_name" {
			procs[ev.Args["name"].(string)] = float64(ev.Pid)
		}
		if ev.Ph == "X" || ev.Ph == "i" {
			if id, ok := ev.Args["trace_id"]; !ok || id != traceID {
				t.Fatalf("event %q missing trace_id arg: %v", ev.Name, ev.Args)
			}
		}
	}
	for _, want := range []string{"lease k0", "cell k0", "chaos_fault"} {
		if !names[want] {
			t.Fatalf("merged trace missing event %q; have %v", want, names)
		}
	}
	if pid, ok := procs["coordinator"]; !ok || pid != 0 {
		t.Fatalf("coordinator should be pid 0, procs = %v", procs)
	}
	if _, ok := procs["worker w1"]; !ok {
		t.Fatalf("worker process track missing, procs = %v", procs)
	}
}

// TestMetricsEndpoint checks /metrics renders valid Prometheus text
// exposition with the expected coordinator families.
func TestMetricsEndpoint(t *testing.T) {
	clock := newTestClock()
	s := NewServer(ServerConfig{Clock: clock.Now})
	defer s.Close()
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	done := startBatch(s, "exp", nil, nil, "k0", "k1")
	g := lease(t, srv.URL, "w1")
	complete(t, srv.URL, g, "w1", `{"v":1}`)

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("Content-Type = %q", ct)
	}
	if err := obs.LintProm(body); err != nil {
		t.Fatalf("/metrics failed lint: %v\n%s", err, body)
	}
	for _, want := range []string{
		"rcoal_coordinator_pending_cells",
		"rcoal_coordinator_live_workers",
		"rcoal_coordinator_median_cells_per_second",
		`rcoal_experiment_cells_total{experiment="exp"} 2`,
		`rcoal_worker_completed_cells{worker="w1"} 1`,
		"rcoal_dist_leases_issued",
	} {
		if !strings.Contains(string(body), want) {
			t.Fatalf("/metrics missing %q:\n%s", want, body)
		}
	}

	g2 := lease(t, srv.URL, "w1")
	complete(t, srv.URL, g2, "w1", `{"v":2}`)
	if err := (<-done).err; err != nil {
		t.Fatal(err)
	}
}

// TestStragglerDetection: a slow worker past the grace window is
// flagged against the live-median baseline; the fast worker is not.
func TestStragglerDetection(t *testing.T) {
	clock := newTestClock()
	s := NewServer(ServerConfig{
		Clock:          clock.Now,
		LivenessWindow: time.Second,
	})
	defer s.Close()
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	keys := []string{"k0", "k1", "k2", "k3", "k4", "k5", "k6", "k7", "k8", "k9"}
	done := startBatch(s, "exp", nil, nil, keys...)

	// fast completes 8 cells, slow completes 1, over a 2s window.
	for i := 0; i < 8; i++ {
		g := lease(t, srv.URL, "fast")
		complete(t, srv.URL, g, "fast", `{"v":1}`)
	}
	gSlow := lease(t, srv.URL, "slow")
	complete(t, srv.URL, gSlow, "slow", `{"v":1}`)

	clock.Advance(2 * time.Second)
	// Refresh lastSeen so both workers count as live at the new time.
	var lr LeaseResponse
	postJSON(t, srv.URL+"/lease", LeaseRequest{Worker: "fast"}, &lr)
	postJSON(t, srv.URL+"/lease", LeaseRequest{Worker: "slow"}, &lr)

	st := s.Status()
	if st.MedianCellsPerSec <= 0 {
		t.Fatalf("median rate = %v, want > 0", st.MedianCellsPerSec)
	}
	byID := map[string]WorkerStatus{}
	for _, ws := range st.Workers {
		byID[ws.ID] = ws
	}
	if ws := byID["fast"]; ws.Straggler || ws.RateRatio < 0.9 {
		t.Fatalf("fast worker misflagged: %+v", ws)
	}
	if ws := byID["slow"]; !ws.Straggler {
		t.Fatalf("slow worker not flagged: %+v (median %v)", ws, st.MedianCellsPerSec)
	} else if ws.RateRatio >= 0.5 {
		t.Fatalf("slow rate ratio = %v, want < 0.5", ws.RateRatio)
	}

	// Drain the rest so the batch goroutine exits.
	if lr.Lease != nil {
		var cr CompleteResponse
		postJSON(t, srv.URL+"/complete", CompleteRequest{
			Worker: "slow", Experiment: lr.Lease.Experiment, Key: lr.Lease.Key,
			Seq: lr.Lease.Seq, Value: json.RawMessage(`{"v":1}`),
		}, &cr)
	}
	for {
		var resp LeaseResponse
		postJSON(t, srv.URL+"/lease", LeaseRequest{Worker: "fast"}, &resp)
		if resp.Lease == nil {
			break
		}
		complete(t, srv.URL, resp.Lease, "fast", `{"v":1}`)
	}
	if err := (<-done).err; err != nil {
		t.Fatal(err)
	}
}

// TestWorkerObserveFaultBuffers: fault marks recorded between
// completions attach to the next delivered completion's trace.
func TestWorkerObserveFaultBuffers(t *testing.T) {
	w := &Worker{ID: "w1"}
	w.ObserveFault("/lease", 3, "drop_request", false)
	w.ObserveFault("/complete", 7, "torn", true)
	marks := w.drainMarks("exp")
	if len(marks) != 2 {
		t.Fatalf("drained %d marks, want 2", len(marks))
	}
	if marks[0].Track != "exp" || marks[0].Name != "chaos_fault" {
		t.Fatalf("mark 0 = %+v", marks[0])
	}
	if marks[1].Attrs["partitioned"] != "true" || marks[1].Attrs["kind"] != "torn" {
		t.Fatalf("mark 1 attrs = %v", marks[1].Attrs)
	}
	if got := w.drainMarks("exp"); len(got) != 0 {
		t.Fatalf("second drain returned %d marks, want 0", len(got))
	}
	if w.Stats().FaultsSeen != 2 {
		t.Fatalf("FaultsSeen = %d, want 2", w.Stats().FaultsSeen)
	}
}
