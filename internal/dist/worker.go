package dist

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"net/http"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"rcoal/internal/checkpoint"
	"rcoal/internal/experiments"
	"rcoal/internal/kernels"
	"rcoal/internal/obs"
	"rcoal/internal/rng"
)

// Worker pulls leases from a coordinator, recomputes each leased cell
// with experiments.ComputeCell, and reports the bytes back. One Worker
// value drives Concurrency goroutines sharing a single trace cache, so
// accelerated leases amortize kernel construction across cells exactly
// as a local accelerated sweep does.
//
// The transport is hardened for hostile networks (see internal/chaos
// for the fault layer that soaks it): every request carries a timeout,
// transient failures — transport errors and 5xx responses alike —
// retry under capped exponential backoff with deterministic jitter,
// completions are redelivered until the coordinator acknowledges them,
// long computations renew their lease, SIGTERM-style draining finishes
// and reports the in-flight cell before exiting, and a coordinator
// unreachable past DegradedAfter fails the worker over to degraded
// standalone mode: the already-computed completion is checkpointed to
// a local journal (DegradedPath) instead of being lost, and a later
// run replays it.
type Worker struct {
	// Coordinator is the coordinator's base URL (http://host:port).
	Coordinator string
	// ID names this worker in the ledger and the status page. It also
	// seeds the deterministic backoff jitter, so two workers sharing a
	// flaky network do not retry in lockstep.
	ID string
	// Concurrency is the number of cells computed at once; 0 means 1.
	Concurrency int
	// Client overrides http.DefaultClient (e.g. to install
	// chaos.Transport).
	Client *http.Client
	// PollInterval bounds lease-poll backoff when the coordinator has
	// nothing pending and gave no hint; 0 means 250ms.
	PollInterval time.Duration
	// MaxErrors aborts Run after this many consecutive transport
	// failures (coordinator unreachable); 0 means 25. Rejected
	// completions (duplicate/stale) are not errors.
	MaxErrors int
	// BackoffBase is the first pause after a transport failure; the
	// pause doubles per consecutive failure up to BackoffCap, scaled
	// by a jitter factor in [0.5, 1.0) drawn from a stream seeded by
	// the worker ID, and floored at the coordinator's last PollWait
	// hint. 0 means 100ms.
	BackoffBase time.Duration
	// BackoffCap caps the exponential growth; 0 means 5s.
	BackoffCap time.Duration
	// RequestTimeout bounds each HTTP round trip; 0 means 30s,
	// negative means no per-request timeout.
	RequestTimeout time.Duration
	// DegradedPath, when non-empty, is the local checkpoint journal
	// for degraded standalone mode: a computed completion that cannot
	// be delivered within DegradedAfter is parked there instead of
	// lost, the worker exits cleanly, and the next Run with the same
	// path replays parked completions to the coordinator first.
	DegradedPath string
	// DegradedAfter is the delivery-failure window before a completion
	// is parked (only meaningful with DegradedPath); 0 means 30s.
	DegradedAfter time.Duration
	// Log, when non-nil, receives one line per lease lifecycle event.
	Log io.Writer
	// Logger, when non-nil, receives the same lifecycle as structured
	// events (obs.Logger is nil-receiver safe, so call sites are
	// unconditional). Typically pre-tagged with the worker id.
	Logger *obs.Logger
	// Compute overrides cell computation (tests). nil means
	// experiments.ComputeCell with panic recovery.
	Compute func(id string, o experiments.Options, key string) (json.RawMessage, error)

	// traceCache is shared by all goroutines of this worker; built
	// lazily on the first accelerated lease.
	cacheOnce  sync.Once
	traceCache *kernels.TraceCache

	// pollWaitMS is the coordinator's last PollWait hint, the floor
	// for error backoff.
	pollWaitMS atomic.Int64
	// draining, once set, stops the loops from taking new leases;
	// in-flight cells finish and report first.
	draining atomic.Bool
	// degraded counts completions parked to the local journal this
	// run; nonzero means the worker exited in degraded mode.
	degraded atomic.Int64

	// accepted/rejected/renewalsLost/faultsSeen feed the worker-side
	// /metrics endpoint; completed (below) counts deliveries of either
	// outcome.
	accepted     atomic.Int64
	rejected     atomic.Int64
	renewalsLost atomic.Int64
	faultsSeen   atomic.Int64

	mu        sync.Mutex
	drainCh   chan struct{}
	parked    *checkpoint.Journal
	completed int
	// pendingMarks buffers chaos-fault observations (ObserveFault) that
	// arrive while no cell trace is being built — e.g. faults injected
	// on lease polls — so they attach to the next completion's trace
	// instead of vanishing. Bounded; oldest dropped first.
	pendingMarks []obs.Mark
}

// maxPendingMarks bounds the fault-mark buffer between completions.
const maxPendingMarks = 256

// WorkerStats is a point-in-time snapshot of a worker's delivery
// counters, rendered by the worker-side /metrics endpoint.
type WorkerStats struct {
	Completed    int   // deliveries, accepted or not
	Accepted     int64 // completions the coordinator accepted
	Rejected     int64 // duplicate/stale completions (benign)
	Parked       int64 // completions checkpointed in degraded mode
	RenewalsLost int64 // leases the coordinator declined to renew
	FaultsSeen   int64 // chaos faults observed via ObserveFault
}

// Stats snapshots the worker's delivery counters.
func (w *Worker) Stats() WorkerStats {
	w.mu.Lock()
	completed := w.completed
	w.mu.Unlock()
	return WorkerStats{
		Completed:    completed,
		Accepted:     w.accepted.Load(),
		Rejected:     w.rejected.Load(),
		Parked:       w.degraded.Load(),
		RenewalsLost: w.renewalsLost.Load(),
		FaultsSeen:   w.faultsSeen.Load(),
	}
}

// ObserveFault records an injected (or observed) network fault as a
// trace mark attached to the next completion this worker delivers.
// Wire it to chaos.Injector.OnFault. Safe for concurrent use; a no-op
// burden of one bounded buffer append when tracing is off.
func (w *Worker) ObserveFault(endpoint string, n uint64, kind string, partitioned bool) {
	w.faultsSeen.Add(1)
	m := obs.Mark{
		Name: "chaos_fault", At: time.Now().UnixNano(),
		Attrs: map[string]string{
			"endpoint": endpoint,
			"kind":     kind,
			"n":        fmt.Sprint(n),
		},
	}
	if partitioned {
		m.Attrs["partitioned"] = "true"
	}
	w.mu.Lock()
	if len(w.pendingMarks) >= maxPendingMarks {
		w.pendingMarks = w.pendingMarks[1:]
	}
	w.pendingMarks = append(w.pendingMarks, m)
	w.mu.Unlock()
}

// drainMarks takes the buffered fault marks, stamping them onto track.
func (w *Worker) drainMarks(track string) []obs.Mark {
	w.mu.Lock()
	marks := w.pendingMarks
	w.pendingMarks = nil
	w.mu.Unlock()
	for i := range marks {
		marks[i].Track = track
	}
	return marks
}

// degradedMeta fingerprints the parked-completion journal. It is
// constant: parked completions carry their own experiment identity in
// the value, so any worker run may append to (and replay from) the
// same file.
type degradedMeta struct {
	Format string `json:"format"`
	V      int    `json:"v"`
}

func parkedMeta() degradedMeta { return degradedMeta{Format: "rcoal-degraded-completions", V: 1} }

func (w *Worker) logf(format string, args ...any) {
	if w.Log != nil {
		fmt.Fprintf(w.Log, "worker %s: %s\n", w.ID, fmt.Sprintf(format, args...))
	}
}

// Completed returns how many cells this worker delivered (accepted or
// not).
func (w *Worker) Completed() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.completed
}

// Parked returns how many completions this run checkpointed to the
// degraded journal instead of delivering.
func (w *Worker) Parked() int { return int(w.degraded.Load()) }

// Drain asks the worker to stop taking new leases: each loop finishes
// and reports its in-flight cell, then exits. Run then returns nil —
// a drained worker is a clean exit, and its completed cells leave no
// orphaned leases behind. Safe to call from a signal handler
// goroutine, any number of times.
func (w *Worker) Drain() {
	w.draining.Store(true)
	w.mu.Lock()
	if w.drainCh == nil {
		w.drainCh = make(chan struct{})
	}
	select {
	case <-w.drainCh:
	default:
		close(w.drainCh)
	}
	w.mu.Unlock()
}

// drainChan returns the channel closed by Drain, creating it lazily.
func (w *Worker) drainChan() <-chan struct{} {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.drainCh == nil {
		w.drainCh = make(chan struct{})
	}
	return w.drainCh
}

func (w *Worker) maxErrors() int {
	if w.MaxErrors > 0 {
		return w.MaxErrors
	}
	return 25
}

// backoff returns the pause before retry attempt n (1-based):
// min(BackoffCap, BackoffBase<<(n-1)) scaled by a deterministic
// jitter in [0.5, 1.0) from src, floored at the coordinator's last
// PollWait hint so workers never hammer a coordinator that asked for
// patience.
func (w *Worker) backoff(src *rng.Source, attempt int) time.Duration {
	base := w.BackoffBase
	if base <= 0 {
		base = 100 * time.Millisecond
	}
	cap := w.BackoffCap
	if cap <= 0 {
		cap = 5 * time.Second
	}
	d := base
	for i := 1; i < attempt && d < cap; i++ {
		d *= 2
	}
	if d > cap {
		d = cap
	}
	d = d/2 + time.Duration(src.Intn(int(d/2)))
	if floor := time.Duration(w.pollWaitMS.Load()) * time.Millisecond; d < floor {
		d = floor
	}
	return d
}

// jitterSource seeds loop's deterministic backoff stream from the
// worker ID: replayable per worker, decorrelated across workers.
func (w *Worker) jitterSource(loop int) *rng.Source {
	h := fnv.New64a()
	h.Write([]byte(w.ID))
	return rng.New(h.Sum64() ^ uint64(loop)*0xA3B195354A39B70D)
}

// Run polls for leases until the coordinator reports Done, the context
// is canceled, Drain finishes the in-flight work, or MaxErrors
// consecutive transport failures. A nil error means a clean drain.
// With DegradedPath set, Run first replays completions parked by a
// previous degraded run.
func (w *Worker) Run(ctx context.Context) error {
	if w.ID == "" {
		w.ID = "worker"
	}
	client := w.Client
	if client == nil {
		client = http.DefaultClient
	}
	if w.DegradedPath != "" {
		if err := w.openParked(); err != nil {
			return err
		}
		w.replayParked(ctx, client)
	}
	conc := w.Concurrency
	if conc <= 0 {
		conc = 1
	}
	errs := make(chan error, conc)
	for i := 0; i < conc; i++ {
		go func(loop int) { errs <- w.runLoop(ctx, client, loop) }(i)
	}
	var first error
	for i := 0; i < conc; i++ {
		if err := <-errs; err != nil && first == nil {
			first = err
		}
	}
	w.mu.Lock()
	if w.parked != nil {
		w.parked.Close()
		w.parked = nil
	}
	w.mu.Unlock()
	if n := w.Parked(); n > 0 {
		w.logf("degraded: %d completion(s) parked in %s; rerun this worker to replay them", n, w.DegradedPath)
	}
	return first
}

func (w *Worker) runLoop(ctx context.Context, client *http.Client, loop int) error {
	poll := w.PollInterval
	if poll <= 0 {
		poll = 250 * time.Millisecond
	}
	maxErrs := w.maxErrors()
	jitter := w.jitterSource(loop)
	consecutive := 0
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		if w.draining.Load() {
			w.logf("drained, exiting")
			return nil
		}
		var resp LeaseResponse
		err := w.post(ctx, client, "/lease", LeaseRequest{Worker: w.ID}, &resp)
		if err != nil {
			consecutive++
			if consecutive >= maxErrs {
				return fmt.Errorf("dist: worker %s: %d consecutive coordinator errors, last: %w", w.ID, consecutive, err)
			}
			w.logf("lease poll failed (%d/%d): %v", consecutive, maxErrs, err)
			if !w.sleep(ctx, w.backoff(jitter, consecutive)) {
				return ctx.Err()
			}
			continue
		}
		consecutive = 0
		switch {
		case resp.Done:
			w.logf("coordinator drained, exiting")
			return nil
		case resp.Lease == nil:
			wait := poll
			if resp.WaitMS > 0 {
				wait = time.Duration(resp.WaitMS) * time.Millisecond
				w.pollWaitMS.Store(resp.WaitMS)
			}
			if !w.sleep(ctx, wait) {
				return ctx.Err()
			}
		default:
			if err := w.serveLease(ctx, client, jitter, resp.Lease); err != nil {
				return err
			}
		}
	}
}

// sleep pauses for d, waking early on context cancellation (false) or
// drain (true — the loop top decides what draining means).
func (w *Worker) sleep(ctx context.Context, d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return false
	case <-w.drainChan():
		return true
	case <-t.C:
		return true
	}
}

// cellTraceBuilder accumulates one leased cell's spans and marks for
// the completion payload. It is shared between the computing loop and
// the renewer goroutine, hence the mutex. A nil builder (tracing off)
// makes every method a no-op.
type cellTraceBuilder struct {
	mu    sync.Mutex
	track string
	ct    obs.CellTrace
}

func (b *cellTraceBuilder) span(name string, start, end time.Time, attrs map[string]string) {
	if b == nil {
		return
	}
	b.mu.Lock()
	b.ct.Spans = append(b.ct.Spans, obs.Span{
		Track: b.track, Name: name,
		Start: start.UnixNano(), End: end.UnixNano(), Attrs: attrs,
	})
	b.mu.Unlock()
}

func (b *cellTraceBuilder) mark(name string, at time.Time, attrs map[string]string) {
	if b == nil {
		return
	}
	b.mu.Lock()
	b.ct.Marks = append(b.ct.Marks, obs.Mark{
		Track: b.track, Name: name, At: at.UnixNano(), Attrs: attrs,
	})
	b.mu.Unlock()
}

func (b *cellTraceBuilder) absorb(marks []obs.Mark) {
	if b == nil || len(marks) == 0 {
		return
	}
	b.mu.Lock()
	b.ct.Marks = append(b.ct.Marks, marks...)
	b.mu.Unlock()
}

// snapshot copies the accumulated trace for one delivery attempt —
// the builder keeps growing (backoff marks, late faults) between
// retries, and each POST marshals whatever is attached at that point.
func (b *cellTraceBuilder) snapshot() *obs.CellTrace {
	if b == nil {
		return nil
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	ct := obs.CellTrace{
		Worker: b.ct.Worker,
		Spans:  append([]obs.Span(nil), b.ct.Spans...),
		Marks:  append([]obs.Mark(nil), b.ct.Marks...),
	}
	return &ct
}

// serveLease computes one leased cell and delivers the outcome,
// renewing the lease while it works. The returned error means
// delivery definitively failed (retries exhausted with no degraded
// journal) — a cell computation failure is reported to the
// coordinator (which fails that experiment), not up the worker loop.
func (w *Worker) serveLease(ctx context.Context, client *http.Client, jitter *rng.Source, g *LeaseGrant) error {
	w.logf("leased %s %s (seq %d)", g.Experiment, g.Key, g.Seq)
	w.Logger.Info("lease granted",
		"experiment", g.Experiment, "cell", g.Key, "seq", g.Seq)
	// A non-empty TraceID in the grant is the coordinator's signal to
	// collect per-cell spans; the merged trace rides beside Value in
	// the completion, never inside it, so result bytes are identical
	// with tracing on or off.
	var tb *cellTraceBuilder
	if g.TraceID != "" {
		tb = &cellTraceBuilder{track: g.Experiment}
		tb.ct.Worker = w.ID
	}
	stopRenew := w.startRenewer(ctx, client, g, tb)
	defer stopRenew()
	computeStart := time.Now()
	raw, err := w.compute(g)
	tb.span("cell "+g.Key, computeStart, time.Now(),
		map[string]string{"seq": fmt.Sprint(g.Seq)})
	req := CompleteRequest{
		Worker: w.ID, Experiment: g.Experiment, Key: g.Key, Seq: g.Seq, Value: raw,
	}
	if err != nil {
		req.Error = err.Error()
		req.Value = nil
		w.Logger.Error("cell computation failed",
			"experiment", g.Experiment, "cell", g.Key, "error", err.Error())
	}
	w.mu.Lock()
	w.completed++
	w.mu.Unlock()
	return w.deliver(ctx, client, jitter, req, tb)
}

// deliver redelivers one completion until the coordinator
// acknowledges it, the retry budget runs out, or — with a degraded
// journal configured — the failure window closes and the completion
// is parked locally instead. Delivery continues through Drain: a
// draining worker reports its in-flight cell before exiting.
func (w *Worker) deliver(ctx context.Context, client *http.Client, jitter *rng.Source, req CompleteRequest, tb *cellTraceBuilder) error {
	maxErrs := w.maxErrors()
	window := w.DegradedAfter
	if window <= 0 {
		window = 30 * time.Second
	}
	start := time.Now()
	for attempt := 1; ; attempt++ {
		if tb != nil {
			// Refresh the attached trace each attempt: backoff marks and
			// chaos faults observed since the last POST ride along.
			tb.absorb(w.drainMarks(tb.track))
			req.Trace = tb.snapshot()
		}
		var resp CompleteResponse
		err := w.post(ctx, client, "/complete", req, &resp)
		if err == nil {
			if !resp.Accepted {
				// Duplicate or stale — another holder (or a previous
				// delivery of this one whose response was lost) already
				// landed the identical bytes. Informational, not an error.
				w.rejected.Add(1)
				w.logf("completion of %s %s rejected: %s", req.Experiment, req.Key, resp.Reason)
				w.Logger.Info("completion rejected",
					"experiment", req.Experiment, "cell", req.Key, "seq", req.Seq, "reason", resp.Reason)
			} else {
				w.accepted.Add(1)
				w.logf("completed %s %s", req.Experiment, req.Key)
				w.Logger.Info("completion accepted",
					"experiment", req.Experiment, "cell", req.Key, "seq", req.Seq, "attempts", attempt)
			}
			return nil
		}
		if ctx.Err() != nil {
			return ctx.Err()
		}
		w.logf("completion post for %s %s failed (%d/%d): %v", req.Experiment, req.Key, attempt, maxErrs, err)
		w.Logger.Warn("completion post failed",
			"experiment", req.Experiment, "cell", req.Key, "attempt", attempt, "error", err.Error())
		if w.DegradedPath != "" && time.Since(start) >= window {
			return w.park(req)
		}
		if attempt >= maxErrs {
			return fmt.Errorf("dist: worker %s: %d consecutive coordinator errors delivering %s %s, last: %w",
				w.ID, attempt, req.Experiment, req.Key, err)
		}
		pause := w.backoff(jitter, attempt)
		tb.mark("backoff", time.Now(), map[string]string{
			"attempt": fmt.Sprint(attempt),
			"wait_ms": fmt.Sprint(pause.Milliseconds()),
		})
		if !w.sleep(ctx, pause) {
			return ctx.Err()
		}
	}
}

// openParked opens (or creates) the degraded journal at DegradedPath.
func (w *Worker) openParked() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.parked != nil {
		return nil
	}
	j, err := checkpoint.Resume(w.DegradedPath, parkedMeta())
	if err != nil {
		return fmt.Errorf("dist: opening degraded journal: %w", err)
	}
	w.parked = j
	return nil
}

// park checkpoints an undeliverable completion to the degraded
// journal and switches the worker to degraded standalone mode: the
// loops stop polling (the coordinator is unreachable anyway) and Run
// returns cleanly with the work preserved instead of hanging or
// dropping it.
func (w *Worker) park(req CompleteRequest) error {
	w.mu.Lock()
	j := w.parked
	w.mu.Unlock()
	if j == nil {
		return fmt.Errorf("dist: worker %s: degraded journal not open", w.ID)
	}
	key := req.Experiment + "\x1f" + req.Key
	if _, err := j.RecordOnce(key, req); err != nil {
		return fmt.Errorf("dist: parking completion %s %s: %w", req.Experiment, req.Key, err)
	}
	w.degraded.Add(1)
	w.logf("degraded: coordinator unreachable, parked completion of %s %s locally", req.Experiment, req.Key)
	w.Logger.Error("degraded mode: completion parked locally",
		"experiment", req.Experiment, "cell", req.Key, "journal", w.DegradedPath)
	w.Drain()
	return nil
}

// replayParked delivers completions a previous degraded run
// checkpointed locally. Parked entries are never removed — replaying
// an already-delivered completion is rejected first-writer-wins by
// the coordinator, so replay is idempotent. Failures leave the entry
// parked for the next run.
func (w *Worker) replayParked(ctx context.Context, client *http.Client) {
	w.mu.Lock()
	j := w.parked
	w.mu.Unlock()
	if j == nil || j.Len() == 0 {
		return
	}
	delivered, failed := 0, 0
	j.Range(func(key string, value json.RawMessage) bool {
		var req CompleteRequest
		if err := json.Unmarshal(value, &req); err != nil {
			w.logf("degraded replay: unreadable parked entry %q: %v", key, err)
			failed++
			return true
		}
		var resp CompleteResponse
		if err := w.post(ctx, client, "/complete", req, &resp); err != nil {
			w.logf("degraded replay: %s %s undeliverable: %v", req.Experiment, req.Key, err)
			failed++
			return true
		}
		delivered++
		if !resp.Accepted {
			w.logf("degraded replay: %s %s already delivered (%s)", req.Experiment, req.Key, resp.Reason)
		} else {
			w.logf("degraded replay: delivered parked completion of %s %s", req.Experiment, req.Key)
		}
		return true
	})
	w.logf("degraded replay: %d delivered, %d still parked", delivered, failed)
}

// startRenewer keeps g alive while its cell computes: a goroutine
// renews the lease every third of the budget until stopped — two
// chances before expiry, so one slow round trip on a loaded box does
// not forfeit the lease — and honest computations that outlast
// LeaseTimeout are not re-issued elsewhere.
// A failed renewal is ignored (the next one may succeed; at worst the
// lease expires and first-writer-wins makes the race benign); a
// Renewed=false response stops renewing — the lease is gone.
func (w *Worker) startRenewer(ctx context.Context, client *http.Client, g *LeaseGrant, tb *cellTraceBuilder) (stop func()) {
	if g.LeaseTimeoutMS <= 0 {
		return func() {}
	}
	interval := time.Duration(g.LeaseTimeoutMS) * time.Millisecond / 3
	if interval < 10*time.Millisecond {
		interval = 10 * time.Millisecond
	}
	done := make(chan struct{})
	finished := make(chan struct{})
	go func() {
		defer close(finished)
		tick := time.NewTicker(interval)
		defer tick.Stop()
		for {
			select {
			case <-done:
				return
			case <-ctx.Done():
				return
			case <-tick.C:
				var resp RenewResponse
				err := w.post(ctx, client, "/lease/renew", RenewRequest{
					Worker: w.ID, Experiment: g.Experiment, Key: g.Key, Seq: g.Seq,
				}, &resp)
				if err != nil {
					w.logf("lease renewal for %s %s failed: %v", g.Experiment, g.Key, err)
					w.Logger.Warn("lease renewal failed",
						"experiment", g.Experiment, "cell", g.Key, "error", err.Error())
					continue
				}
				if !resp.Renewed {
					w.renewalsLost.Add(1)
					w.logf("lease %s %s no longer renewable: %s", g.Experiment, g.Key, resp.Reason)
					w.Logger.Warn("lease lost",
						"experiment", g.Experiment, "cell", g.Key, "reason", resp.Reason)
					tb.mark("lease_lost", time.Now(), map[string]string{
						"cell": g.Key, "reason": resp.Reason,
					})
					return
				}
				tb.mark("lease_renewed_worker", time.Now(), map[string]string{"cell": g.Key})
			}
		}
	}()
	var once sync.Once
	return func() {
		once.Do(func() { close(done) })
		<-finished
	}
}

// compute reconstructs the leased cell's options and recomputes it,
// converting panics into reportable errors so a poisoned cell fails
// its experiment instead of killing the worker.
func (w *Worker) compute(g *LeaseGrant) (raw json.RawMessage, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("panic: %v\n%s", r, debug.Stack())
		}
	}()
	o, err := g.Options.Options()
	if err != nil {
		return nil, err
	}
	if g.Options.Accel {
		w.cacheOnce.Do(func() { w.traceCache = kernels.NewTraceCache() })
		o.TraceCache = w.traceCache
	}
	if w.Compute != nil {
		return w.Compute(g.Experiment, o, g.Key)
	}
	return experiments.ComputeCell(g.Experiment, o, g.Key)
}

// post performs one JSON round trip under the per-request timeout.
// A non-2xx status is an error; 5xx (and transport failures) are the
// transient shapes the retry paths above back off on.
func (w *Worker) post(ctx context.Context, client *http.Client, path string, in, out any) error {
	body, err := json.Marshal(in)
	if err != nil {
		return err
	}
	timeout := w.RequestTimeout
	if timeout == 0 {
		timeout = 30 * time.Second
	}
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, w.Coordinator+path, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4<<10))
		return fmt.Errorf("dist: %s: HTTP %d: %s", path, resp.StatusCode, bytes.TrimSpace(msg))
	}
	return json.NewDecoder(resp.Body).Decode(out)
}
