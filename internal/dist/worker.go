package dist

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"runtime/debug"
	"sync"
	"time"

	"rcoal/internal/experiments"
	"rcoal/internal/kernels"
)

// Worker pulls leases from a coordinator, recomputes each leased cell
// with experiments.ComputeCell, and reports the bytes back. One Worker
// value drives Concurrency goroutines sharing a single trace cache, so
// accelerated leases amortize kernel construction across cells exactly
// as a local accelerated sweep does.
type Worker struct {
	// Coordinator is the coordinator's base URL (http://host:port).
	Coordinator string
	// ID names this worker in the ledger and the status page.
	ID string
	// Concurrency is the number of cells computed at once; 0 means 1.
	Concurrency int
	// Client overrides http.DefaultClient.
	Client *http.Client
	// PollInterval bounds lease-poll backoff when the coordinator has
	// nothing pending and gave no hint; 0 means 250ms.
	PollInterval time.Duration
	// MaxErrors aborts Run after this many consecutive transport
	// failures (coordinator unreachable); 0 means 25. Rejected
	// completions (duplicate/stale) are not errors.
	MaxErrors int
	// ErrorBackoff is the pause after a transport failure; 0 means
	// 400ms.
	ErrorBackoff time.Duration
	// Log, when non-nil, receives one line per lease lifecycle event.
	Log io.Writer
	// Compute overrides cell computation (tests). nil means
	// experiments.ComputeCell with panic recovery.
	Compute func(id string, o experiments.Options, key string) (json.RawMessage, error)

	// traceCache is shared by all goroutines of this worker; built
	// lazily on the first accelerated lease.
	cacheOnce  sync.Once
	traceCache *kernels.TraceCache

	mu        sync.Mutex
	completed int
}

func (w *Worker) logf(format string, args ...any) {
	if w.Log != nil {
		fmt.Fprintf(w.Log, "worker %s: %s\n", w.ID, fmt.Sprintf(format, args...))
	}
}

// Completed returns how many cells this worker delivered (accepted or
// not).
func (w *Worker) Completed() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.completed
}

// Run polls for leases until the coordinator reports Done, the context
// is canceled, or MaxErrors consecutive transport failures. A nil
// error means a clean drain.
func (w *Worker) Run(ctx context.Context) error {
	if w.ID == "" {
		w.ID = "worker"
	}
	conc := w.Concurrency
	if conc <= 0 {
		conc = 1
	}
	errs := make(chan error, conc)
	for i := 0; i < conc; i++ {
		go func() { errs <- w.runLoop(ctx) }()
	}
	var first error
	for i := 0; i < conc; i++ {
		if err := <-errs; err != nil && first == nil {
			first = err
		}
	}
	return first
}

func (w *Worker) runLoop(ctx context.Context) error {
	client := w.Client
	if client == nil {
		client = http.DefaultClient
	}
	poll := w.PollInterval
	if poll <= 0 {
		poll = 250 * time.Millisecond
	}
	backoff := w.ErrorBackoff
	if backoff <= 0 {
		backoff = 400 * time.Millisecond
	}
	maxErrs := w.MaxErrors
	if maxErrs <= 0 {
		maxErrs = 25
	}
	consecutive := 0
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		var resp LeaseResponse
		err := w.post(ctx, client, "/lease", LeaseRequest{Worker: w.ID}, &resp)
		if err != nil {
			consecutive++
			if consecutive >= maxErrs {
				return fmt.Errorf("dist: worker %s: %d consecutive coordinator errors, last: %w", w.ID, consecutive, err)
			}
			w.logf("lease poll failed (%d/%d): %v", consecutive, maxErrs, err)
			if !sleepCtx(ctx, backoff) {
				return ctx.Err()
			}
			continue
		}
		consecutive = 0
		switch {
		case resp.Done:
			w.logf("coordinator drained, exiting")
			return nil
		case resp.Lease == nil:
			wait := poll
			if resp.WaitMS > 0 {
				wait = time.Duration(resp.WaitMS) * time.Millisecond
			}
			if !sleepCtx(ctx, wait) {
				return ctx.Err()
			}
		default:
			if err := w.serveLease(ctx, client, resp.Lease); err != nil {
				consecutive++
				if consecutive >= maxErrs {
					return fmt.Errorf("dist: worker %s: %d consecutive coordinator errors, last: %w", w.ID, consecutive, err)
				}
				w.logf("completion post failed (%d/%d): %v", consecutive, maxErrs, err)
				if !sleepCtx(ctx, backoff) {
					return ctx.Err()
				}
			} else {
				consecutive = 0
			}
		}
	}
}

// serveLease computes one leased cell and reports the outcome. The
// returned error covers transport only — a cell computation failure is
// reported to the coordinator (which fails that experiment), not up
// the worker loop.
func (w *Worker) serveLease(ctx context.Context, client *http.Client, g *LeaseGrant) error {
	w.logf("leased %s %s (seq %d)", g.Experiment, g.Key, g.Seq)
	raw, err := w.compute(g)
	req := CompleteRequest{
		Worker: w.ID, Experiment: g.Experiment, Key: g.Key, Seq: g.Seq, Value: raw,
	}
	if err != nil {
		req.Error = err.Error()
		req.Value = nil
	}
	w.mu.Lock()
	w.completed++
	w.mu.Unlock()
	var resp CompleteResponse
	if err := w.post(ctx, client, "/complete", req, &resp); err != nil {
		return err
	}
	if !resp.Accepted {
		// Duplicate or stale — another holder delivered the identical
		// bytes first. Informational, not an error.
		w.logf("completion of %s %s rejected: %s", g.Experiment, g.Key, resp.Reason)
	} else {
		w.logf("completed %s %s", g.Experiment, g.Key)
	}
	return nil
}

// compute reconstructs the leased cell's options and recomputes it,
// converting panics into reportable errors so a poisoned cell fails
// its experiment instead of killing the worker.
func (w *Worker) compute(g *LeaseGrant) (raw json.RawMessage, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("panic: %v\n%s", r, debug.Stack())
		}
	}()
	o, err := g.Options.Options()
	if err != nil {
		return nil, err
	}
	if g.Options.Accel {
		w.cacheOnce.Do(func() { w.traceCache = kernels.NewTraceCache() })
		o.TraceCache = w.traceCache
	}
	if w.Compute != nil {
		return w.Compute(g.Experiment, o, g.Key)
	}
	return experiments.ComputeCell(g.Experiment, o, g.Key)
}

func (w *Worker) post(ctx context.Context, client *http.Client, path string, in, out any) error {
	body, err := json.Marshal(in)
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, w.Coordinator+path, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4<<10))
		return fmt.Errorf("dist: %s: HTTP %d: %s", path, resp.StatusCode, bytes.TrimSpace(msg))
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

func sleepCtx(ctx context.Context, d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return false
	case <-t.C:
		return true
	}
}
