// Package dist shards an experiment grid across machines: a
// coordinator enumerates the cell-parallel experiments' grids and
// hands cells out over HTTP as leases; workers pull a lease, recompute
// exactly that cell with experiments.ComputeCell, and POST the result
// back. Because every cell derives all of its randomness from explicit
// seeds (runner.CellSeed), cells are location-independent, and the
// final CSVs are byte-identical at any shard count — the property the
// end-to-end tests and the CI smoke step enforce.
//
// Durability is delegated to the checksummed checkpoint journal
// (internal/checkpoint), which the coordinator uses as a work ledger:
//
//   - a lease is journaled (RecordLease) before it is granted, so a
//     coordinator crash never forgets a cell was in flight;
//   - a completion is journaled first-writer-wins (RecordOnce), so a
//     timed-out lease whose original holder reports late cannot
//     clobber the re-issued lease's result (they are identical bytes
//     anyway — determinism makes the race benign, the ledger makes it
//     visible);
//   - on restart the coordinator resumes the journal, restores every
//     completed cell, and re-issues the rest — no cell runs more than
//     once per lease timeout.
//
// Repeated sweeps are short-circuited by the fingerprint-keyed results
// cache (experiments.OpenCache): any cell computed under identical
// result-determining options by any prior sweep — local or distributed
// — is restored instead of leased.
//
// The wire protocol is plain JSON over four endpoints:
//
//	POST /lease         LeaseRequest  -> LeaseResponse
//	POST /complete      CompleteRequest -> CompleteResponse
//	POST /leases/cancel CancelRequest -> CancelResponse
//	GET  /status        -> Status
//
// The AES key under attack travels in the lease payload (hex). The
// protocol is designed for trusted lab networks (localhost, a private
// cluster), not the open internet; the key is the paper's published
// evaluation constant in every shipped configuration.
package dist

import (
	"encoding/hex"
	"encoding/json"
	"fmt"

	"rcoal/internal/experiments"
	"rcoal/internal/metrics"
)

// WireOptions is the result-determining slice of experiments.Options a
// lease carries: everything a worker needs to recompute a cell
// byte-identically, and nothing that is local policy (worker counts,
// progress sinks, journals).
type WireOptions struct {
	Samples int    `json:"samples"`
	Lines   int    `json:"lines"`
	Seed    uint64 `json:"seed"`
	KeyHex  string `json:"key_hex"`
	// Hybrid selects the analytical closed-cell substitution — part of
	// the result fingerprint, so it must travel with the lease.
	Hybrid bool `json:"hybrid,omitempty"`
	// Accel turns on the exact accelerators (trace cache, prefix
	// forking) on the worker. Byte-identical by the internal/equiv
	// contract, so it is NOT part of the fingerprint — an accelerated
	// distributed sweep must match a vanilla single-process one.
	Accel bool `json:"accel,omitempty"`
}

// WireFrom extracts the wire options from an experiment configuration.
func WireFrom(o experiments.Options) WireOptions {
	return WireOptions{
		Samples: o.Samples,
		Lines:   o.Lines,
		Seed:    o.Seed,
		KeyHex:  hex.EncodeToString(o.Key),
		Hybrid:  o.Hybrid,
		Accel:   o.TraceCache != nil || o.ForkPrefix,
	}
}

// Options reconstructs the experiment configuration a worker computes
// leased cells under. The caller supplies the accelerator state (one
// shared trace cache per worker process); width and worker counts are
// irrelevant to cell bytes and set to render-neutral values.
func (w WireOptions) Options() (experiments.Options, error) {
	key, err := hex.DecodeString(w.KeyHex)
	if err != nil {
		return experiments.Options{}, fmt.Errorf("dist: decoding lease key: %w", err)
	}
	o := experiments.DefaultOptions()
	o.Samples = w.Samples
	o.Lines = w.Lines
	o.Seed = w.Seed
	o.Key = key
	o.Hybrid = w.Hybrid
	o.ForkPrefix = w.Accel
	o.Workers = 1
	return o, nil
}

// LeaseRequest asks the coordinator for one cell to compute.
type LeaseRequest struct {
	// Worker identifies the requester in the ledger, the status page,
	// and the per-worker rate accounting.
	Worker string `json:"worker"`
}

// LeaseGrant is one cell handed to a worker.
type LeaseGrant struct {
	Experiment string `json:"experiment"`
	Key        string `json:"key"`
	// Seq is the per-cell issue number; completions must echo it, so
	// stale holders of a canceled or re-issued lease are recognized.
	Seq     int64       `json:"seq"`
	Options WireOptions `json:"options"`
}

// LeaseResponse answers a lease poll. Exactly one of the three shapes
// applies: a grant, a wait hint (nothing pending right now), or Done
// (the coordinator has drained — the worker should exit).
type LeaseResponse struct {
	Done   bool        `json:"done,omitempty"`
	WaitMS int64       `json:"wait_ms,omitempty"`
	Lease  *LeaseGrant `json:"lease,omitempty"`
}

// CompleteRequest reports a computed cell (or the error that killed
// it). Value is the cell's canonical JSON, byte-identical to what a
// local run would journal.
type CompleteRequest struct {
	Worker     string          `json:"worker"`
	Experiment string          `json:"experiment"`
	Key        string          `json:"key"`
	Seq        int64           `json:"seq"`
	Value      json.RawMessage `json:"value,omitempty"`
	// Error, when non-empty, reports that the cell failed on the
	// worker. Cell errors are deterministic in this codebase
	// (misconfiguration, not flakiness), so they fail the experiment
	// just as they would in the local pool.
	Error string `json:"error,omitempty"`
}

// CompleteResponse acknowledges a completion. Accepted=false is not an
// error condition for the worker — it means another holder already
// delivered the cell (duplicate) or the lease was canceled (stale).
type CompleteResponse struct {
	Accepted bool   `json:"accepted"`
	Reason   string `json:"reason,omitempty"`
}

// CancelRequest revokes an in-flight lease. The cell returns to the
// pending queue and re-issues on the next poll (that is also the
// "retry" operation — retrying a lease is canceling it and letting a
// worker pick it back up); the revoked holder's eventual completion is
// rejected as stale.
type CancelRequest struct {
	Experiment string `json:"experiment"`
	Key        string `json:"key"`
}

// CancelResponse reports whether a lease was actually revoked.
type CancelResponse struct {
	Canceled bool   `json:"canceled"`
	Reason   string `json:"reason,omitempty"`
}

// Status is the coordinator control plane's live view: per-experiment
// grid progress, per-worker rates, and the counter registry (lease
// traffic, cache hits/misses, restores).
type Status struct {
	Done        bool               `json:"done"`
	Experiments []ExperimentStatus `json:"experiments"`
	Workers     []WorkerStatus     `json:"workers"`
	// CellsPerSec is the fresh-completion rate (restored and cached
	// cells excluded, mirroring runner.Telemetry's rate-window rule).
	CellsPerSec float64 `json:"cells_per_sec"`
	// ETASeconds extrapolates CellsPerSec over unfinished cells; 0
	// when unknown.
	ETASeconds float64 `json:"eta_seconds"`
	// Metrics is the coordinator's counter registry snapshot
	// (dist_cache_hits, dist_cache_misses, dist_leases_issued, ...).
	Metrics *metrics.Snapshot `json:"metrics,omitempty"`
}

// ExperimentStatus is one experiment's grid progress.
type ExperimentStatus struct {
	ID       string `json:"id"`
	Total    int    `json:"total"`
	Done     int    `json:"done"`
	Restored int    `json:"restored"`
	CacheHit int    `json:"cache_hits"`
	Pending  int    `json:"pending"`
	Leased   int    `json:"leased"`
}

// WorkerStatus is one worker's live accounting.
type WorkerStatus struct {
	ID               string  `json:"id"`
	Active           int     `json:"active"`
	Completed        int     `json:"completed"`
	CellsPerSec      float64 `json:"cells_per_sec"`
	LastSeenUnixNano int64   `json:"last_seen_unix_nano"`
}
