// Package dist shards an experiment grid across machines: a
// coordinator enumerates the cell-parallel experiments' grids and
// hands cells out over HTTP as leases; workers pull a lease, recompute
// exactly that cell with experiments.ComputeCell, and POST the result
// back. Because every cell derives all of its randomness from explicit
// seeds (runner.CellSeed), cells are location-independent, and the
// final CSVs are byte-identical at any shard count — the property the
// end-to-end tests and the CI smoke step enforce.
//
// Durability is delegated to the checksummed checkpoint journal
// (internal/checkpoint), which the coordinator uses as a work ledger:
//
//   - a lease is journaled (RecordLease) before it is granted, so a
//     coordinator crash never forgets a cell was in flight;
//   - a completion is journaled first-writer-wins (RecordOnce), so a
//     timed-out lease whose original holder reports late cannot
//     clobber the re-issued lease's result (they are identical bytes
//     anyway — determinism makes the race benign, the ledger makes it
//     visible);
//   - on restart the coordinator resumes the journal, restores every
//     completed cell, and re-issues the rest — no cell runs more than
//     once per lease timeout.
//
// Repeated sweeps are short-circuited by the fingerprint-keyed results
// cache (experiments.OpenCache): any cell computed under identical
// result-determining options by any prior sweep — local or distributed
// — is restored instead of leased.
//
// The wire protocol is plain JSON over four endpoints:
//
//	POST /lease         LeaseRequest  -> LeaseResponse
//	POST /complete      CompleteRequest -> CompleteResponse
//	POST /lease/renew   RenewRequest  -> RenewResponse
//	POST /leases/cancel CancelRequest -> CancelResponse
//	GET  /status        -> Status
//
// Every mutating endpoint is idempotent under duplicated and replayed
// deliveries: a duplicated lease poll grants a second (independent)
// cell or none, a duplicated completion is rejected first-writer-wins,
// a duplicated renewal extends an already-extended deadline, and a
// duplicated cancel finds the lease already revoked. The chaos layer
// (internal/chaos) soaks the protocol under exactly those faults.
//
// The AES key under attack travels in the lease payload (hex). The
// protocol is designed for trusted lab networks (localhost, a private
// cluster), not the open internet; the key is the paper's published
// evaluation constant in every shipped configuration.
package dist

import (
	"encoding/hex"
	"encoding/json"
	"fmt"

	"rcoal/internal/experiments"
	"rcoal/internal/metrics"
	"rcoal/internal/obs"
)

// WireOptions is the result-determining slice of experiments.Options a
// lease carries: everything a worker needs to recompute a cell
// byte-identically, and nothing that is local policy (worker counts,
// progress sinks, journals).
type WireOptions struct {
	Samples int    `json:"samples"`
	Lines   int    `json:"lines"`
	Seed    uint64 `json:"seed"`
	KeyHex  string `json:"key_hex"`
	// Hybrid selects the analytical closed-cell substitution — part of
	// the result fingerprint, so it must travel with the lease.
	Hybrid bool `json:"hybrid,omitempty"`
	// Accel turns on the exact accelerators (trace cache, prefix
	// forking) on the worker. Byte-identical by the internal/equiv
	// contract, so it is NOT part of the fingerprint — an accelerated
	// distributed sweep must match a vanilla single-process one.
	Accel bool `json:"accel,omitempty"`
	// Mechanisms is the defense-spec filter of mechanism-enumerating
	// experiments (ext-defense-frontier). It must travel with the
	// lease: a filter may name specs outside the default registry
	// enumeration (e.g. "rss+rts:8"), and a worker recomputing by key
	// only finds such a cell if it enumerates the same grid.
	Mechanisms []string `json:"mechanisms,omitempty"`
}

// WireFrom extracts the wire options from an experiment configuration.
func WireFrom(o experiments.Options) WireOptions {
	return WireOptions{
		Samples:    o.Samples,
		Lines:      o.Lines,
		Seed:       o.Seed,
		KeyHex:     hex.EncodeToString(o.Key),
		Hybrid:     o.Hybrid,
		Accel:      o.TraceCache != nil || o.ForkPrefix,
		Mechanisms: o.Mechanisms,
	}
}

// Options reconstructs the experiment configuration a worker computes
// leased cells under. The caller supplies the accelerator state (one
// shared trace cache per worker process); width and worker counts are
// irrelevant to cell bytes and set to render-neutral values.
func (w WireOptions) Options() (experiments.Options, error) {
	key, err := hex.DecodeString(w.KeyHex)
	if err != nil {
		return experiments.Options{}, fmt.Errorf("dist: decoding lease key: %w", err)
	}
	o := experiments.DefaultOptions()
	o.Samples = w.Samples
	o.Lines = w.Lines
	o.Seed = w.Seed
	o.Key = key
	o.Hybrid = w.Hybrid
	o.ForkPrefix = w.Accel
	o.Mechanisms = w.Mechanisms
	o.Workers = 1
	return o, nil
}

// LeaseRequest asks the coordinator for one cell to compute.
type LeaseRequest struct {
	// Worker identifies the requester in the ledger, the status page,
	// and the per-worker rate accounting.
	Worker string `json:"worker"`
}

// LeaseGrant is one cell handed to a worker.
type LeaseGrant struct {
	Experiment string `json:"experiment"`
	Key        string `json:"key"`
	// Seq is the per-cell issue number; completions must echo it, so
	// stale holders of a canceled or re-issued lease are recognized.
	Seq     int64       `json:"seq"`
	Options WireOptions `json:"options"`
	// LeaseTimeoutMS is the lease's silence budget: the authoritative
	// deadline is set once at grant time (coordinator clock) and the
	// grant carries the budget so the holder can renew before expiry —
	// an honest computation that outlasts the budget keeps its lease
	// instead of being wastefully recomputed elsewhere.
	LeaseTimeoutMS int64 `json:"lease_timeout_ms,omitempty"`
	// DeadlineUnixNano is that authoritative deadline on the
	// coordinator's clock (informational for the worker — clocks may
	// skew; renewal scheduling uses LeaseTimeoutMS).
	DeadlineUnixNano int64 `json:"deadline_unix_nano,omitempty"`
	// TraceID is the sweep's trace id. Non-empty only when the
	// coordinator is building a fleet trace; it doubles as the
	// worker's signal to collect per-cell spans and attach them to the
	// completion.
	TraceID string `json:"trace_id,omitempty"`
}

// RenewRequest extends an in-flight lease: the holder is alive and
// still computing. Renewal resets the cell's deadline to a full
// LeaseTimeout from now; a stale or finished lease is not renewable.
type RenewRequest struct {
	Worker     string `json:"worker"`
	Experiment string `json:"experiment"`
	Key        string `json:"key"`
	Seq        int64  `json:"seq"`
}

// RenewResponse reports whether the lease was extended. Renewed=false
// tells the holder its lease is gone (re-issued, canceled, or already
// complete) — it may abandon the computation or finish and let
// first-writer-wins sort the completion out.
type RenewResponse struct {
	Renewed bool   `json:"renewed"`
	Reason  string `json:"reason,omitempty"`
	// DeadlineUnixNano is the new authoritative deadline when renewed.
	DeadlineUnixNano int64 `json:"deadline_unix_nano,omitempty"`
}

// LeaseResponse answers a lease poll. Exactly one of the three shapes
// applies: a grant, a wait hint (nothing pending right now), or Done
// (the coordinator has drained — the worker should exit).
type LeaseResponse struct {
	Done   bool        `json:"done,omitempty"`
	WaitMS int64       `json:"wait_ms,omitempty"`
	Lease  *LeaseGrant `json:"lease,omitempty"`
}

// CompleteRequest reports a computed cell (or the error that killed
// it). Value is the cell's canonical JSON, byte-identical to what a
// local run would journal.
type CompleteRequest struct {
	Worker     string          `json:"worker"`
	Experiment string          `json:"experiment"`
	Key        string          `json:"key"`
	Seq        int64           `json:"seq"`
	Value      json.RawMessage `json:"value,omitempty"`
	// Error, when non-empty, reports that the cell failed on the
	// worker. Cell errors are deterministic in this codebase
	// (misconfiguration, not flakiness), so they fail the experiment
	// just as they would in the local pool.
	Error string `json:"error,omitempty"`
	// Trace is the worker's span report for this cell (compute and
	// delivery phases, backoff, renewals, chaos faults), attached only
	// when the grant carried a TraceID. It rides beside Value, never
	// inside it, so tracing cannot perturb result bytes.
	Trace *obs.CellTrace `json:"trace,omitempty"`
}

// CompleteResponse acknowledges a completion. Accepted=false is not an
// error condition for the worker — it means another holder already
// delivered the cell (duplicate) or the lease was canceled (stale).
type CompleteResponse struct {
	Accepted bool   `json:"accepted"`
	Reason   string `json:"reason,omitempty"`
}

// CancelRequest revokes an in-flight lease. The cell returns to the
// pending queue and re-issues on the next poll (that is also the
// "retry" operation — retrying a lease is canceling it and letting a
// worker pick it back up); the revoked holder's eventual completion is
// rejected as stale.
type CancelRequest struct {
	Experiment string `json:"experiment"`
	Key        string `json:"key"`
}

// CancelResponse reports whether a lease was actually revoked.
type CancelResponse struct {
	Canceled bool   `json:"canceled"`
	Reason   string `json:"reason,omitempty"`
}

// Status is the coordinator control plane's live view: per-experiment
// grid progress, per-worker rates, and the counter registry (lease
// traffic, cache hits/misses, restores).
type Status struct {
	Done        bool               `json:"done"`
	Experiments []ExperimentStatus `json:"experiments"`
	Workers     []WorkerStatus     `json:"workers"`
	// CellsPerSec is the fresh-completion rate (restored and cached
	// cells excluded, mirroring runner.Telemetry's rate-window rule).
	CellsPerSec float64 `json:"cells_per_sec"`
	// ETASeconds extrapolates CellsPerSec over unfinished cells; 0
	// when unknown.
	ETASeconds float64 `json:"eta_seconds"`
	// PendingCells is the total unfinished work (pending + leased)
	// across every registered experiment.
	PendingCells int `json:"pending_cells"`
	// LiveWorkers counts workers seen within the liveness window
	// (ServerConfig.LivenessWindow).
	LiveWorkers int `json:"live_workers"`
	// BacklogSeconds is the autoscaling hint: pending cells divided by
	// the aggregate completion rate of live workers — how far behind
	// the current fleet is. Scale workers up when it stays high, down
	// when it approaches zero. 0 when no live worker has a rate yet.
	BacklogSeconds float64 `json:"backlog_seconds"`
	// MedianCellsPerSec is the median per-worker completion rate among
	// live workers with enough history (the straggler baseline); 0
	// until at least one qualifies.
	MedianCellsPerSec float64 `json:"median_cells_per_sec"`
	// Metrics is the coordinator's counter registry snapshot
	// (dist_cache_hits, dist_cache_misses, dist_leases_issued, ...).
	Metrics *metrics.Snapshot `json:"metrics,omitempty"`
}

// ExperimentStatus is one experiment's grid progress.
type ExperimentStatus struct {
	ID       string `json:"id"`
	Total    int    `json:"total"`
	Done     int    `json:"done"`
	Restored int    `json:"restored"`
	CacheHit int    `json:"cache_hits"`
	Pending  int    `json:"pending"`
	Leased   int    `json:"leased"`
}

// WorkerStatus is one worker's live accounting.
type WorkerStatus struct {
	ID               string  `json:"id"`
	Active           int     `json:"active"`
	Completed        int     `json:"completed"`
	CellsPerSec      float64 `json:"cells_per_sec"`
	LastSeenUnixNano int64   `json:"last_seen_unix_nano"`
	// Live reports whether the worker was seen (poll, renew, or
	// completion) within the liveness window; dead workers keep their
	// history but drop out of the autoscaling-hint aggregate.
	Live bool `json:"live"`
	// RateRatio is this worker's rate against the live-fleet median
	// (Status.MedianCellsPerSec); 0 when no baseline exists yet.
	RateRatio float64 `json:"rate_ratio"`
	// Straggler flags a live worker with enough completions whose rate
	// has fallen below the straggler threshold of the fleet median —
	// the "which machine is dragging the sweep" signal, also surfaced
	// as a process label in the merged fleet trace.
	Straggler bool `json:"straggler"`
}
