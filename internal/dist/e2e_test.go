package dist

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"rcoal/internal/checkpoint"
	"rcoal/internal/experiments"
	"rcoal/internal/kernels"
)

// e2eOptions keeps the end-to-end grids small enough for CI while
// exercising the full simulate-attack-score pipeline per cell.
func e2eOptions() experiments.Options {
	o := experiments.DefaultOptions()
	o.Samples = 6
	o.Lines = 8
	o.Workers = 1
	return o
}

// runLocal is the reference: a plain single-process sweep.
func runLocal(t *testing.T, id string, o experiments.Options, journalPath string) (experiments.Result, *checkpoint.Journal) {
	t.Helper()
	j, err := experiments.OpenJournal(journalPath, id, o, false)
	if err != nil {
		t.Fatal(err)
	}
	o.Journal = j
	res, err := experiments.Run(id, o)
	if err != nil {
		t.Fatal(err)
	}
	return res, j
}

// runDistributed runs experiment id through a coordinator with n
// workers attached over loopback HTTP and returns the result plus the
// coordinator's ledger journal (still open) and final status.
func runDistributed(t *testing.T, id string, o experiments.Options, n int, journalPath string, resume bool, cache *checkpoint.Journal, compute func(string, experiments.Options, string) (json.RawMessage, error)) (experiments.Result, *checkpoint.Journal, Status) {
	t.Helper()
	j, err := experiments.OpenJournal(journalPath, id, o, resume)
	if err != nil {
		t.Fatal(err)
	}
	s := NewServer(ServerConfig{})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		w := &Worker{
			Coordinator:  srv.URL,
			ID:           fmt.Sprintf("w%d", i),
			PollInterval: 5 * time.Millisecond,
			Compute:      compute,
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := w.Run(ctx); err != nil && ctx.Err() == nil {
				t.Errorf("worker %s: %v", w.ID, err)
			}
		}()
	}

	o.Exec = NewExec(s, id, j, cache)
	res, err := experiments.Run(id, o)
	if err != nil {
		t.Fatal(err)
	}
	s.Drain()
	wg.Wait()
	return res, j, s.Status()
}

// sameCells asserts two journals hold byte-identical values for every
// given key.
func sameCells(t *testing.T, want, got *checkpoint.Journal, keys []string, label string) {
	t.Helper()
	for _, k := range keys {
		w, ok := want.Lookup(k)
		if !ok {
			t.Fatalf("%s: reference journal missing %q", label, k)
		}
		g, ok := got.Lookup(k)
		if !ok {
			t.Fatalf("%s: journal missing %q", label, k)
		}
		if string(w) != string(g) {
			t.Errorf("%s: cell %q differs:\n  ref:  %s\n  dist: %s", label, k, w, g)
		}
	}
}

func fig7Keys() []string {
	keys := make([]string, len(experiments.Fig7Subwarps))
	for i, m := range experiments.Fig7Subwarps {
		keys[i] = fmt.Sprintf("fss/%d", m)
	}
	return keys
}

// TestDistributedByteIdentity is the tentpole acceptance criterion:
// the same grid run in one process, through a coordinator with one
// worker, and through a coordinator with four workers produces
// byte-identical cell values and identical rendered output.
func TestDistributedByteIdentity(t *testing.T) {
	dir := t.TempDir()
	o := e2eOptions()

	refRes, refJ := runLocal(t, "fig7", o, filepath.Join(dir, "local.journal"))
	defer refJ.Close()

	for _, n := range []int{1, 4} {
		res, j, st := runDistributed(t, "fig7", o, n,
			filepath.Join(dir, fmt.Sprintf("dist%d.journal", n)), false, nil, nil)
		if res.Render() != refRes.Render() {
			t.Errorf("%d-worker render differs from single-process render", n)
		}
		sameCells(t, refJ, j, fig7Keys(), fmt.Sprintf("%d workers", n))
		j.Close()
		if got := st.Metrics.Counters[cntCompletions]; got != uint64(len(experiments.Fig7Subwarps)) {
			t.Errorf("%d workers: completions = %d, want %d", n, got, len(experiments.Fig7Subwarps))
		}
	}
}

// TestKillCoordinatorAndResume pins the durable-ledger contract: a
// coordinator killed mid-grid resumes from its journal, re-leases only
// the unfinished cells, and the finished sweep matches the reference.
func TestKillCoordinatorAndResume(t *testing.T) {
	dir := t.TempDir()
	o := e2eOptions()

	refRes, refJ := runLocal(t, "fig7", o, filepath.Join(dir, "local.journal"))
	defer refJ.Close()

	// Phase 1: hand-drive two cells through the coordinator, then kill
	// it with the grid unfinished.
	path := filepath.Join(dir, "dist.journal")
	j1, err := experiments.OpenJournal(path, "fig7", o, false)
	if err != nil {
		t.Fatal(err)
	}
	s1 := NewServer(ServerConfig{})
	srv1 := httptest.NewServer(s1.Handler())
	execErr := make(chan error, 1)
	go func() {
		oo := o
		oo.Exec = NewExec(s1, "fig7", j1, nil)
		_, err := experiments.Run("fig7", oo)
		execErr <- err
	}()
	for i := 0; i < 2; i++ {
		g := lease(t, srv1.URL, "doomed")
		wo, err := g.Options.Options()
		if err != nil {
			t.Fatal(err)
		}
		raw, err := experiments.ComputeCell(g.Experiment, wo, g.Key)
		if err != nil {
			t.Fatal(err)
		}
		if resp := complete(t, srv1.URL, g, "doomed", string(raw)); !resp.Accepted {
			t.Fatalf("completion rejected: %s", resp.Reason)
		}
	}
	s1.Close()
	if err := <-execErr; err == nil {
		t.Fatal("killed coordinator's run reported success")
	}
	srv1.Close()
	j1.Close()

	// Phase 2: resume. Only the remaining cells may be computed.
	var mu sync.Mutex
	computed := 0
	counting := func(id string, wo experiments.Options, key string) (json.RawMessage, error) {
		mu.Lock()
		computed++
		mu.Unlock()
		return experiments.ComputeCell(id, wo, key)
	}
	res, j2, st := runDistributed(t, "fig7", o, 2, path, true, nil, counting)
	defer j2.Close()
	if res.Render() != refRes.Render() {
		t.Error("resumed distributed render differs from single-process render")
	}
	sameCells(t, refJ, j2, fig7Keys(), "resumed")
	want := len(experiments.Fig7Subwarps) - 2
	if computed != want {
		t.Errorf("resume computed %d cells, want %d (2 were journaled pre-kill)", computed, want)
	}
	if got := st.Experiments[0].Restored; got != 2 {
		t.Errorf("resume restored %d cells, want 2", got)
	}
}

// TestWarmCacheShortCircuitsGrid pins the cross-sweep cache contract:
// a second distributed sweep under identical result-determining
// options restores every cell from the cache and never leases.
func TestWarmCacheShortCircuitsGrid(t *testing.T) {
	dir := t.TempDir()
	o := e2eOptions()

	c1, err := experiments.OpenCache(dir, "fig7", o)
	if err != nil {
		t.Fatal(err)
	}
	coldRes, j1, _ := runDistributed(t, "fig7", o, 2, filepath.Join(dir, "cold.journal"), false, c1, nil)
	j1.Close()
	c1.Close()

	c2, err := experiments.OpenCache(dir, "fig7", o)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	warmRes, j2, st := runDistributed(t, "fig7", o, 2, filepath.Join(dir, "warm.journal"), false, c2, nil)
	defer j2.Close()
	if warmRes.Render() != coldRes.Render() {
		t.Error("cache-served sweep renders differently")
	}
	if n := st.Metrics.Counters[cntLeasesIssued]; n != 0 {
		t.Errorf("warm sweep issued %d leases, want 0", n)
	}
	if n := st.Metrics.Counters[cntCacheHits]; n != uint64(len(experiments.Fig7Subwarps)) {
		t.Errorf("warm sweep cache hits = %d, want %d", n, len(experiments.Fig7Subwarps))
	}
}

// TestDistributedAccelMatchesVanilla is the satellite #6 equivalence:
// an accelerated distributed sweep (trace cache on every worker, Accel
// in the lease payload) must produce the same bytes as a vanilla
// single-process sweep.
func TestDistributedAccelMatchesVanilla(t *testing.T) {
	dir := t.TempDir()
	o := e2eOptions()
	o.Samples = 4
	o.Lines = 4

	refRes, refJ := runLocal(t, "fig7", o, filepath.Join(dir, "vanilla.journal"))
	defer refJ.Close()

	accel := o
	accel.TraceCache = kernels.NewTraceCache() // coordinator-side flag; workers build their own
	if !WireFrom(accel).Accel {
		t.Fatal("accel option did not reach the wire")
	}
	res, j, _ := runDistributed(t, "fig7", accel, 2, filepath.Join(dir, "accel.journal"), false, nil, nil)
	defer j.Close()
	if res.Render() != refRes.Render() {
		t.Error("accelerated distributed render differs from vanilla single-process render")
	}
	sameCells(t, refJ, j, fig7Keys(), "accel")
}

// TestWorkerGivesUpOnDeadCoordinator bounds the failure mode of a
// worker pointed at nothing.
func TestWorkerGivesUpOnDeadCoordinator(t *testing.T) {
	w := &Worker{
		Coordinator:  "http://127.0.0.1:1", // reserved port: connection refused
		ID:           "lost",
		MaxErrors:   2,
		BackoffBase: time.Millisecond,
		BackoffCap:  2 * time.Millisecond,
	}
	if err := w.Run(context.Background()); err == nil {
		t.Fatal("worker kept running against a dead coordinator")
	}
}
