package dist

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
	"time"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// jsonShape flattens a decoded JSON value into sorted "path: type"
// lines — the schema of the document with all values erased. Array
// elements collapse to one "path[]" entry (the union of element
// shapes), so the schema is independent of how many workers or
// experiments happen to be present.
func jsonShape(prefix string, v any, out map[string]string) {
	switch x := v.(type) {
	case map[string]any:
		out[prefix] = "object"
		for k, e := range x {
			jsonShape(prefix+"."+k, e, out)
		}
	case []any:
		out[prefix] = "array"
		for _, e := range x {
			jsonShape(prefix+"[]", e, out)
		}
	case string:
		out[prefix] = "string"
	case float64:
		out[prefix] = "number"
	case bool:
		out[prefix] = "boolean"
	case nil:
		if _, seen := out[prefix]; !seen {
			out[prefix] = "null"
		}
	}
}

// TestStatusSchemaGolden pins the /status JSON schema — field names
// and types — so renames or type changes that would break dashboards
// and the smoke scripts show up as a test diff, not a silent drift.
// Run with -update to accept an intentional change.
func TestStatusSchemaGolden(t *testing.T) {
	clock := newTestClock()
	s := NewServer(ServerConfig{Clock: clock.Now, LivenessWindow: time.Minute})
	defer s.Close()

	// Populate every branch of the document: an experiment with done,
	// leased, and pending cells, plus a worker with completions, so no
	// field is omitted from the rendered JSON.
	done := startBatch(s, "exp", nil, nil, "k0", "k1", "k2")
	g, err := s.grantLeaseForTest("w1")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.completeForTest(g, `{"v":1}`); err != nil {
		t.Fatal(err)
	}
	clock.Advance(time.Second)
	if _, err := s.grantLeaseForTest("w1"); err != nil {
		t.Fatal(err)
	}

	raw, err := json.Marshal(s.Status())
	if err != nil {
		t.Fatal(err)
	}
	shape := map[string]string{}
	var doc any
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatal(err)
	}
	jsonShape("status", doc, shape)
	keys := make([]string, 0, len(shape))
	for k := range shape {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		fmt.Fprintf(&b, "%s: %s\n", k, shape[k])
	}
	got := b.String()

	golden := filepath.Join("testdata", "status_schema.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("reading golden (run with -update to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("/status JSON schema drifted from golden.\n--- got ---\n%s--- want ---\n%s\nIf the change is intentional, rerun with -update and review the diff.", got, want)
	}

	// Unblock the batch goroutine.
	s.Close()
	<-done
}

// grantLeaseForTest issues one lease directly against the state
// machine, bypassing HTTP, waiting briefly for the async register.
func (s *Server) grantLeaseForTest(worker string) (*LeaseGrant, error) {
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		now := s.now()
		s.mu.Lock()
		w := s.worker(worker, now)
		g, err := s.grantLease(w, now)
		s.mu.Unlock()
		if err != nil {
			return nil, err
		}
		if g != nil {
			return g, nil
		}
		time.Sleep(2 * time.Millisecond)
	}
	return nil, fmt.Errorf("no lease granted within deadline")
}

// completeForTest lands one completion directly via the HTTP handler
// (the accept path updates worker accounting used by the schema test).
func (s *Server) completeForTest(g *LeaseGrant, value string) (CompleteResponse, error) {
	body, err := json.Marshal(CompleteRequest{
		Worker: "w1", Experiment: g.Experiment, Key: g.Key, Seq: g.Seq,
		Value: json.RawMessage(value),
	})
	if err != nil {
		return CompleteResponse{}, err
	}
	rec := httptest.NewRecorder()
	s.handleComplete(rec, httptest.NewRequest(http.MethodPost, "/complete", bytes.NewReader(body)))
	var resp CompleteResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		return resp, err
	}
	return resp, nil
}
