package atomicio

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestWriteFileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.csv")
	want := []byte("a,b\n1,2\n")
	if err := WriteFile(path, want, 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(want) {
		t.Errorf("read back %q, want %q", got, want)
	}
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if info.Mode().Perm() != 0o644 {
		t.Errorf("perm = %v, want 0644", info.Mode().Perm())
	}
}

func TestWriteFileReplacesExisting(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.csv")
	if err := os.WriteFile(path, []byte("old old old old"), 0o600); err != nil {
		t.Fatal(err)
	}
	if err := WriteFile(path, []byte("new"), 0o644); err != nil {
		t.Fatal(err)
	}
	got, _ := os.ReadFile(path)
	if string(got) != "new" {
		t.Errorf("read back %q, want %q", got, "new")
	}
}

func TestWriteFileLeavesNoTempDebris(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.csv")
	if err := WriteFile(path, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	// Failure path: destination directory does not exist.
	if err := WriteFile(filepath.Join(dir, "missing", "out.csv"), []byte("x"), 0o644); err == nil {
		t.Error("write into a missing directory succeeded")
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.Contains(e.Name(), ".tmp") {
			t.Errorf("temp debris left behind: %s", e.Name())
		}
	}
	if len(entries) != 1 {
		t.Errorf("dir has %d entries, want just out.csv", len(entries))
	}
}
