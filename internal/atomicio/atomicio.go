// Package atomicio provides crash-safe file writes. A plain
// os.WriteFile that dies mid-call leaves a truncated file behind; for
// experiment CSVs that a later analysis step parses, a half-written
// file is worse than no file. WriteFile stages the content in a
// temporary file in the destination's directory (same filesystem, so
// the final rename cannot degrade into a copy) and renames it into
// place — readers see either the old bytes or the new bytes, never a
// prefix.
package atomicio

import (
	"fmt"
	"os"
	"path/filepath"
)

// WriteFile writes data to path atomically: the bytes are written and
// synced to a temporary file in path's directory, which is then
// renamed over path. On any error the temporary file is removed and
// path is left untouched.
func WriteFile(path string, data []byte, perm os.FileMode) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, "."+filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("atomicio: staging %s: %w", path, err)
	}
	tmpName := tmp.Name()
	// Any failure from here on must not leave the temp file behind.
	cleanup := func(err error) error {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		return cleanup(fmt.Errorf("atomicio: writing %s: %w", path, err))
	}
	if err := tmp.Sync(); err != nil {
		return cleanup(fmt.Errorf("atomicio: syncing %s: %w", path, err))
	}
	if err := tmp.Chmod(perm); err != nil {
		return cleanup(fmt.Errorf("atomicio: chmod %s: %w", path, err))
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("atomicio: closing %s: %w", path, err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("atomicio: publishing %s: %w", path, err)
	}
	return nil
}
