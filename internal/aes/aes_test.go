package aes

import (
	"bytes"
	stdaes "crypto/aes"
	"encoding/hex"
	"testing"
	"testing/quick"
)

func mustHex(t *testing.T, s string) []byte {
	t.Helper()
	b, err := hex.DecodeString(s)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestFIPS197Vectors(t *testing.T) {
	cases := []struct{ key, pt, ct string }{
		// FIPS-197 Appendix C.1 (AES-128), C.2 (AES-192), C.3 (AES-256).
		{"000102030405060708090a0b0c0d0e0f", "00112233445566778899aabbccddeeff", "69c4e0d86a7b0430d8cdb78070b4c55a"},
		{"000102030405060708090a0b0c0d0e0f1011121314151617", "00112233445566778899aabbccddeeff", "dda97ca4864cdfe06eaf70a0ec0d7191"},
		{"000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f", "00112233445566778899aabbccddeeff", "8ea2b7ca516745bfeafc49904b496089"},
		// FIPS-197 Appendix B worked example.
		{"2b7e151628aed2a6abf7158809cf4f3c", "3243f6a8885a308d313198a2e0370734", "3925841d02dc09fbdc118597196a0b32"},
	}
	for _, c := range cases {
		ci, err := NewCipher(mustHex(t, c.key))
		if err != nil {
			t.Fatal(err)
		}
		got := make([]byte, 16)
		ci.Encrypt(got, mustHex(t, c.pt))
		if want := mustHex(t, c.ct); !bytes.Equal(got, want) {
			t.Errorf("key %s: got %x, want %x", c.key, got, want)
		}
	}
}

func TestKeySizeError(t *testing.T) {
	if _, err := NewCipher(make([]byte, 15)); err == nil {
		t.Fatal("15-byte key accepted")
	} else if err.Error() == "" {
		t.Fatal("empty error message")
	}
}

func TestAgainstStdlibRandomKeys(t *testing.T) {
	f := func(key [16]byte, pt [16]byte) bool {
		ours, err := NewCipher(key[:])
		if err != nil {
			return false
		}
		ref, err := stdaes.NewCipher(key[:])
		if err != nil {
			return false
		}
		got := make([]byte, 16)
		want := make([]byte, 16)
		ours.Encrypt(got, pt[:])
		ref.Encrypt(want, pt[:])
		return bytes.Equal(got, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestAgainstStdlib256(t *testing.T) {
	f := func(key [32]byte, pt [16]byte) bool {
		ours, _ := NewCipher(key[:])
		ref, _ := stdaes.NewCipher(key[:])
		got := make([]byte, 16)
		want := make([]byte, 16)
		ours.Encrypt(got, pt[:])
		ref.Encrypt(want, pt[:])
		return bytes.Equal(got, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestEncryptDecryptRoundTrip(t *testing.T) {
	for _, keyLen := range []int{16, 24, 32} {
		key := make([]byte, keyLen)
		for i := range key {
			key[i] = byte(i*7 + keyLen)
		}
		c, err := NewCipher(key)
		if err != nil {
			t.Fatal(err)
		}
		f := func(pt [16]byte) bool {
			ct := make([]byte, 16)
			back := make([]byte, 16)
			c.Encrypt(ct, pt[:])
			c.Decrypt(back, ct)
			return bytes.Equal(back, pt[:])
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
			t.Errorf("keyLen %d: %v", keyLen, err)
		}
	}
}

func TestEncryptInPlace(t *testing.T) {
	key := mustHex(t, "2b7e151628aed2a6abf7158809cf4f3c")
	c, _ := NewCipher(key)
	buf := mustHex(t, "3243f6a8885a308d313198a2e0370734")
	c.Encrypt(buf, buf)
	if want := mustHex(t, "3925841d02dc09fbdc118597196a0b32"); !bytes.Equal(buf, want) {
		t.Errorf("in-place encrypt: got %x, want %x", buf, want)
	}
}

func TestSBoxProperties(t *testing.T) {
	if SBox(0x00) != 0x63 || SBox(0x01) != 0x7c || SBox(0x53) != 0xed {
		t.Error("S-box spot values wrong")
	}
	seen := make(map[byte]bool)
	for i := 0; i < 256; i++ {
		s := SBox(byte(i))
		if seen[s] {
			t.Fatalf("S-box not a bijection: duplicate %#x", s)
		}
		seen[s] = true
		if InvSBox(s) != byte(i) {
			t.Fatalf("InvSBox(SBox(%#x)) = %#x", i, InvSBox(s))
		}
		if s == byte(i) {
			t.Errorf("S-box has fixed point at %#x", i)
		}
		if s == byte(i)^0xff {
			t.Errorf("S-box has anti-fixed point at %#x", i)
		}
	}
}

func TestGFMulProperties(t *testing.T) {
	// xtime of 0x80 wraps through the reduction polynomial.
	if gfMul(0x80, 2) != 0x1b {
		t.Errorf("gfMul(0x80,2) = %#x, want 0x1b", gfMul(0x80, 2))
	}
	f := func(a, b byte) bool { return gfMul(a, b) == gfMul(b, a) }
	if err := quick.Check(f, nil); err != nil {
		t.Error("gfMul not commutative:", err)
	}
	g := func(a byte) bool { return a == 0 || gfMul(a, gfInv(a)) == 1 }
	if err := quick.Check(g, nil); err != nil {
		t.Error("gfInv not an inverse:", err)
	}
}

func TestRoundKeyBounds(t *testing.T) {
	c, _ := NewCipher(make([]byte, 16))
	defer func() {
		if recover() == nil {
			t.Fatal("RoundKey(11) did not panic for AES-128")
		}
	}()
	c.RoundKey(11)
}

func TestInvertSchedule128(t *testing.T) {
	f := func(key [16]byte) bool {
		c, _ := NewCipher(key[:])
		recovered := InvertSchedule128(c.LastRoundKey())
		return recovered == key
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestTableWordLanes(t *testing.T) {
	// Te4 replicates the S-box across all four lanes.
	for i := 0; i < 256; i++ {
		w := TableWord(T4, byte(i))
		s := uint32(SBox(byte(i)))
		if w != s<<24|s<<16|s<<8|s {
			t.Fatalf("Te4[%d] = %#x, want replicated %#x", i, w, s)
		}
	}
	// Te0..Te3 are byte rotations of each other.
	for i := 0; i < 256; i++ {
		w0 := TableWord(T0, byte(i))
		if TableWord(T1, byte(i)) != w0>>8|w0<<24 {
			t.Fatalf("Te1[%d] is not Te0 rotated", i)
		}
		if TableWord(T2, byte(i)) != w0>>16|w0<<16 {
			t.Fatalf("Te2[%d] is not Te0 rotated twice", i)
		}
		if TableWord(T3, byte(i)) != w0>>24|w0<<8 {
			t.Fatalf("Te3[%d] is not Te0 rotated thrice", i)
		}
	}
}
