package aes

import (
	"encoding/binary"
	"fmt"
)

// BlockSize is the AES block size in bytes.
const BlockSize = 16

// KeySizeError reports an unsupported key length.
type KeySizeError int

func (k KeySizeError) Error() string {
	return fmt.Sprintf("aes: invalid key size %d (want 16, 24, or 32)", int(k))
}

// Cipher holds an expanded AES key schedule.
type Cipher struct {
	rounds int      // 10, 12, or 14
	enc    []uint32 // 4*(rounds+1) round-key words
}

// rcon are the round constants of the key schedule.
var rcon = [...]byte{0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1b, 0x36}

func subWord(w uint32) uint32 {
	return uint32(sbox[w>>24])<<24 | uint32(sbox[(w>>16)&0xff])<<16 |
		uint32(sbox[(w>>8)&0xff])<<8 | uint32(sbox[w&0xff])
}

func rotWord(w uint32) uint32 { return w<<8 | w>>24 }

// NewCipher expands key (16, 24, or 32 bytes) into a Cipher.
func NewCipher(key []byte) (*Cipher, error) {
	var rounds int
	switch len(key) {
	case 16:
		rounds = 10
	case 24:
		rounds = 12
	case 32:
		rounds = 14
	default:
		return nil, KeySizeError(len(key))
	}
	nk := len(key) / 4
	n := 4 * (rounds + 1)
	w := make([]uint32, n)
	for i := 0; i < nk; i++ {
		w[i] = binary.BigEndian.Uint32(key[4*i:])
	}
	for i := nk; i < n; i++ {
		t := w[i-1]
		switch {
		case i%nk == 0:
			t = subWord(rotWord(t)) ^ uint32(rcon[i/nk-1])<<24
		case nk > 6 && i%nk == 4:
			t = subWord(t)
		}
		w[i] = w[i-nk] ^ t
	}
	return &Cipher{rounds: rounds, enc: w}, nil
}

// Rounds returns the number of rounds (10 for AES-128).
func (c *Cipher) Rounds() int { return c.rounds }

// RoundKey returns the 16-byte round key for round r (0 is the initial
// AddRoundKey, Rounds() is the final one).
func (c *Cipher) RoundKey(r int) [BlockSize]byte {
	if r < 0 || r > c.rounds {
		panic(fmt.Sprintf("aes: RoundKey round %d out of range [0,%d]", r, c.rounds))
	}
	var out [BlockSize]byte
	for i := 0; i < 4; i++ {
		binary.BigEndian.PutUint32(out[4*i:], c.enc[4*r+i])
	}
	return out
}

// LastRoundKey returns the final round key — the secret the RCoal
// baseline attack recovers byte by byte. For AES-128 the key schedule
// is invertible, so the last round key reveals the original key (see
// InvertSchedule128).
func (c *Cipher) LastRoundKey() [BlockSize]byte { return c.RoundKey(c.rounds) }

// Encrypt computes dst = AES(src) for one block. dst and src may
// overlap. It panics if either slice is shorter than BlockSize.
func (c *Cipher) Encrypt(dst, src []byte) {
	_ = src[BlockSize-1]
	_ = dst[BlockSize-1]
	s0 := binary.BigEndian.Uint32(src[0:]) ^ c.enc[0]
	s1 := binary.BigEndian.Uint32(src[4:]) ^ c.enc[1]
	s2 := binary.BigEndian.Uint32(src[8:]) ^ c.enc[2]
	s3 := binary.BigEndian.Uint32(src[12:]) ^ c.enc[3]

	k := 4
	for r := 1; r < c.rounds; r++ {
		t0 := te[T0][s0>>24] ^ te[T1][(s1>>16)&0xff] ^ te[T2][(s2>>8)&0xff] ^ te[T3][s3&0xff] ^ c.enc[k]
		t1 := te[T0][s1>>24] ^ te[T1][(s2>>16)&0xff] ^ te[T2][(s3>>8)&0xff] ^ te[T3][s0&0xff] ^ c.enc[k+1]
		t2 := te[T0][s2>>24] ^ te[T1][(s3>>16)&0xff] ^ te[T2][(s0>>8)&0xff] ^ te[T3][s1&0xff] ^ c.enc[k+2]
		t3 := te[T0][s3>>24] ^ te[T1][(s0>>16)&0xff] ^ te[T2][(s1>>8)&0xff] ^ te[T3][s2&0xff] ^ c.enc[k+3]
		s0, s1, s2, s3 = t0, t1, t2, t3
		k += 4
	}

	// Last round: Te4 lookups (S-box lanes), no MixColumns.
	t0 := te[T4][s0>>24]&0xff000000 ^ te[T4][(s1>>16)&0xff]&0x00ff0000 ^
		te[T4][(s2>>8)&0xff]&0x0000ff00 ^ te[T4][s3&0xff]&0x000000ff ^ c.enc[k]
	t1 := te[T4][s1>>24]&0xff000000 ^ te[T4][(s2>>16)&0xff]&0x00ff0000 ^
		te[T4][(s3>>8)&0xff]&0x0000ff00 ^ te[T4][s0&0xff]&0x000000ff ^ c.enc[k+1]
	t2 := te[T4][s2>>24]&0xff000000 ^ te[T4][(s3>>16)&0xff]&0x00ff0000 ^
		te[T4][(s0>>8)&0xff]&0x0000ff00 ^ te[T4][s1&0xff]&0x000000ff ^ c.enc[k+2]
	t3 := te[T4][s3>>24]&0xff000000 ^ te[T4][(s0>>16)&0xff]&0x00ff0000 ^
		te[T4][(s1>>8)&0xff]&0x0000ff00 ^ te[T4][s2&0xff]&0x000000ff ^ c.enc[k+3]

	binary.BigEndian.PutUint32(dst[0:], t0)
	binary.BigEndian.PutUint32(dst[4:], t1)
	binary.BigEndian.PutUint32(dst[8:], t2)
	binary.BigEndian.PutUint32(dst[12:], t3)
}

// Decrypt computes dst = AES⁻¹(src) for one block using the
// straightforward inverse cipher (InvShiftRows/InvSubBytes/
// InvMixColumns on a byte-oriented state). It is used for validation
// and round-trip tests, not on the simulated GPU.
func (c *Cipher) Decrypt(dst, src []byte) {
	_ = src[BlockSize-1]
	_ = dst[BlockSize-1]
	var st [16]byte
	copy(st[:], src[:16])

	addRoundKey := func(r int) {
		rk := c.RoundKey(r)
		for i := range st {
			st[i] ^= rk[i]
		}
	}
	invShiftRows := func() {
		var t [16]byte
		// state byte order is column-major: st[4*col+row'] where the
		// word layout puts row b at byte b of column word. ShiftRows
		// rotated row b left by b columns; invert it.
		for col := 0; col < 4; col++ {
			for row := 0; row < 4; row++ {
				t[4*((col+row)%4)+row] = st[4*col+row]
			}
		}
		st = t
	}
	invSubBytes := func() {
		for i := range st {
			st[i] = invSbox[st[i]]
		}
	}
	invMixColumns := func() {
		for col := 0; col < 4; col++ {
			a0, a1, a2, a3 := st[4*col], st[4*col+1], st[4*col+2], st[4*col+3]
			st[4*col+0] = gfMul(a0, 14) ^ gfMul(a1, 11) ^ gfMul(a2, 13) ^ gfMul(a3, 9)
			st[4*col+1] = gfMul(a0, 9) ^ gfMul(a1, 14) ^ gfMul(a2, 11) ^ gfMul(a3, 13)
			st[4*col+2] = gfMul(a0, 13) ^ gfMul(a1, 9) ^ gfMul(a2, 14) ^ gfMul(a3, 11)
			st[4*col+3] = gfMul(a0, 11) ^ gfMul(a1, 13) ^ gfMul(a2, 9) ^ gfMul(a3, 14)
		}
	}

	addRoundKey(c.rounds)
	for r := c.rounds - 1; r >= 1; r-- {
		invShiftRows()
		invSubBytes()
		addRoundKey(r)
		invMixColumns()
	}
	invShiftRows()
	invSubBytes()
	addRoundKey(0)
	copy(dst[:16], st[:])
}

// InvertSchedule128 recovers the original AES-128 key from its last
// round key by running the key schedule backwards. This is the
// property (Neve & Seifert) that makes the last round the attack
// target: recovering round key 10 is as good as recovering the key.
func InvertSchedule128(lastRoundKey [BlockSize]byte) [BlockSize]byte {
	w := make([]uint32, 44)
	for i := 0; i < 4; i++ {
		w[40+i] = binary.BigEndian.Uint32(lastRoundKey[4*i:])
	}
	for i := 39; i >= 0; i-- {
		t := w[i+3] // w[i+4-1]
		if (i+4)%4 == 0 {
			t = subWord(rotWord(t)) ^ uint32(rcon[(i+4)/4-1])<<24
		}
		w[i] = w[i+4] ^ t
	}
	var key [BlockSize]byte
	for i := 0; i < 4; i++ {
		binary.BigEndian.PutUint32(key[4*i:], w[i])
	}
	return key
}
