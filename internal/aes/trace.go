package aes

import "encoding/binary"

// Lookup records one T-table access performed during encryption: which
// table and which of its 256 entries. The GPU kernel builder turns
// each Lookup into a per-thread global-memory address; the coalescing
// unit then merges the 32 addresses of a warp-wide lookup instruction.
type Lookup struct {
	Table TableID
	Index byte
}

// Trace is the complete table-access record of one block encryption:
// Trace[r-1] holds round r's 16 lookups (r = 1..Rounds()). In the
// middle rounds each lookup feeds a whole state column, so slot
// j = 4·word+lane is a storage convention; in the last round slot j is
// exactly the T4 lookup producing ciphertext byte j, whose index the
// attacker reconstructs from ciphertext byte j and key byte j via
// Equation 3.
type Trace [][BlockSize]Lookup

// byteOf extracts byte lane b (0 = most significant) of w.
func byteOf(w uint32, b int) byte { return byte(w >> (24 - 8*b)) }

// TraceEncrypt encrypts one block like Encrypt while recording every
// T-table lookup. The ciphertext matches Encrypt bit for bit (tested),
// so traces can be paired with real ciphertexts.
func (c *Cipher) TraceEncrypt(src []byte) (ct [BlockSize]byte, trace Trace) {
	_ = src[BlockSize-1]
	trace = make(Trace, c.rounds)

	var s [4]uint32
	for i := range s {
		s[i] = binary.BigEndian.Uint32(src[4*i:]) ^ c.enc[i]
	}

	k := 4
	for r := 1; r < c.rounds; r++ {
		var t [4]uint32
		for i := 0; i < 4; i++ {
			w := c.enc[k+i]
			for b := 0; b < 4; b++ {
				idx := byteOf(s[(i+b)%4], b)
				trace[r-1][4*i+b] = Lookup{Table: TableID(b), Index: idx}
				w ^= te[TableID(b)][idx]
			}
			t[i] = w
		}
		s = t
		k += 4
	}

	var out [4]uint32
	for i := 0; i < 4; i++ {
		w := c.enc[k+i]
		for b := 0; b < 4; b++ {
			idx := byteOf(s[(i+b)%4], b)
			trace[c.rounds-1][4*i+b] = Lookup{Table: T4, Index: idx}
			w ^= te[T4][idx] & (0xff000000 >> (8 * b))
		}
		out[i] = w
	}
	for i := range out {
		binary.BigEndian.PutUint32(ct[4*i:], out[i])
	}
	return ct, trace
}

// LastRoundIndex implements Equation 3 of the paper: given ciphertext
// byte c_j and a guess k for last-round key byte k_j, it returns the
// T4 lookup index t_j = T4⁻¹[c_j ⊕ k_j] that the guess implies.
func LastRoundIndex(cipherByte, keyGuess byte) byte {
	return invSbox[cipherByte^keyGuess]
}

// BlocksPerTable is R, the number of cache-line-sized memory blocks a
// lookup table spans: 256 entries × 4 B / 64 B lines = 16.
const BlocksPerTable = TableBytes / 64

// BlockOfIndex maps a table index to the memory block (0..R-1) it
// falls in: 16 consecutive entries share a 64-byte line, so the block
// is index >> 4. This is the "holder[...] >> 4" step of Algorithm 1.
func BlockOfIndex(index byte) int { return int(index) >> 4 }
