package aes

// The encryption T-tables fold SubBytes, ShiftRows, and MixColumns
// into four 256-entry tables of 32-bit words (Te0..Te3), plus the
// last-round table Te4 (the S-box replicated across all four byte
// lanes, no MixColumns). This is the classic GPU/OpenSSL formulation:
// each round becomes 16 table lookups plus XORs, and it is exactly
// those lookups whose memory coalescing the RCoal paper studies.

// TableID identifies which lookup table a memory access targets.
type TableID uint8

const (
	T0 TableID = iota // rounds 1..9, state byte row 0
	T1                // rounds 1..9, state byte row 1
	T2                // rounds 1..9, state byte row 2
	T3                // rounds 1..9, state byte row 3
	T4                // last round (S-box table)
	numTables
)

// String returns the conventional table name.
func (t TableID) String() string {
	switch t {
	case T0:
		return "T0"
	case T1:
		return "T1"
	case T2:
		return "T2"
	case T3:
		return "T3"
	case T4:
		return "T4"
	}
	return "T?"
}

const (
	// TableEntries is the number of entries per lookup table.
	TableEntries = 256
	// EntryBytes is the size of one table entry. Four-byte entries and
	// 64-byte memory blocks give the paper's "16 consecutive table
	// elements map to the same memory block" (R = 16 blocks per table).
	EntryBytes = 4
	// TableBytes is the byte size of one table.
	TableBytes = TableEntries * EntryBytes
)

var te = computeEncTables()

func computeEncTables() (te [5][256]uint32) {
	for i := 0; i < 256; i++ {
		s := sbox[i]
		s2 := gfMul(s, 2)
		s3 := gfMul(s, 3)
		te[T0][i] = uint32(s2)<<24 | uint32(s)<<16 | uint32(s)<<8 | uint32(s3)
		te[T1][i] = uint32(s3)<<24 | uint32(s2)<<16 | uint32(s)<<8 | uint32(s)
		te[T2][i] = uint32(s)<<24 | uint32(s3)<<16 | uint32(s2)<<8 | uint32(s)
		te[T3][i] = uint32(s)<<24 | uint32(s)<<16 | uint32(s3)<<8 | uint32(s2)
		te[T4][i] = uint32(s)<<24 | uint32(s)<<16 | uint32(s)<<8 | uint32(s)
	}
	return te
}

// TableWord returns entry i of table t, as the GPU kernel would load
// it from global memory.
func TableWord(t TableID, i byte) uint32 { return te[t][i] }
