package aes

// AppendScheduleFingerprint appends a canonical encoding of the
// expanded key schedule to dst and returns the extended slice. The
// encoding — the round count followed by every round-key word in
// big-endian order — is injective in the original key (the schedule's
// first Nk words are the key itself), so two ciphers share a
// fingerprint iff they were built from the same key. Trace caches use
// this as the key-identity component of their cache keys without ever
// retaining the raw key bytes in an exported field.
func (c *Cipher) AppendScheduleFingerprint(dst []byte) []byte {
	dst = append(dst, byte(c.rounds))
	for _, w := range c.enc {
		dst = append(dst, byte(w>>24), byte(w>>16), byte(w>>8), byte(w))
	}
	return dst
}
