package aes

import (
	"testing"
	"testing/quick"
)

func TestTraceEncryptMatchesEncrypt(t *testing.T) {
	f := func(key, pt [16]byte) bool {
		c, _ := NewCipher(key[:])
		want := make([]byte, 16)
		c.Encrypt(want, pt[:])
		got, trace := c.TraceEncrypt(pt[:])
		if len(trace) != 10 {
			return false
		}
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestTraceTableAssignment(t *testing.T) {
	c, _ := NewCipher(make([]byte, 16))
	_, trace := c.TraceEncrypt(make([]byte, 16))
	for r := 0; r < 9; r++ {
		for j := 0; j < 16; j++ {
			if want := TableID(j % 4); trace[r][j].Table != want {
				t.Fatalf("round %d slot %d: table %v, want %v", r+1, j, trace[r][j].Table, want)
			}
		}
	}
	for j := 0; j < 16; j++ {
		if trace[9][j].Table != T4 {
			t.Fatalf("last round slot %d: table %v, want T4", j, trace[9][j].Table)
		}
	}
}

func TestLastRoundEquation3(t *testing.T) {
	// The heart of the attack: for every byte j, the T4 index recorded
	// in the trace equals InvSBox[c_j ^ k_j] where k is the last round
	// key (Equation 3). This must hold for the *correct* key guess.
	f := func(key, pt [16]byte) bool {
		c, _ := NewCipher(key[:])
		ct, trace := c.TraceEncrypt(pt[:])
		lrk := c.LastRoundKey()
		for j := 0; j < 16; j++ {
			if trace[9][j].Index != LastRoundIndex(ct[j], lrk[j]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestLastRoundIndexWrongGuessDiffers(t *testing.T) {
	// A wrong key guess must yield a different index (InvSBox is a
	// bijection), which is what gives the attack its discriminating
	// power.
	for g := 1; g < 256; g++ {
		if LastRoundIndex(0xab, 0x12) == LastRoundIndex(0xab, 0x12^byte(g)) {
			t.Fatalf("guess offset %#x collides", g)
		}
	}
}

func TestBlockOfIndex(t *testing.T) {
	if BlocksPerTable != 16 {
		t.Fatalf("BlocksPerTable = %d, want 16 (R in the paper)", BlocksPerTable)
	}
	cases := []struct {
		idx   byte
		block int
	}{{0, 0}, {15, 0}, {16, 1}, {255, 15}, {128, 8}}
	for _, c := range cases {
		if got := BlockOfIndex(c.idx); got != c.block {
			t.Errorf("BlockOfIndex(%d) = %d, want %d", c.idx, got, c.block)
		}
	}
}

func TestTraceIndexDistributionNondegenerate(t *testing.T) {
	// Over random plaintexts, last-round indices should touch many
	// blocks (the coalescing signal the attack exploits).
	c, _ := NewCipher([]byte("0123456789abcdef"))
	blocks := map[int]bool{}
	pt := make([]byte, 16)
	for n := 0; n < 64; n++ {
		for i := range pt {
			pt[i] = byte(n*16 + i*31)
		}
		_, trace := c.TraceEncrypt(pt)
		for j := 0; j < 16; j++ {
			blocks[BlockOfIndex(trace[9][j].Index)] = true
		}
	}
	if len(blocks) < 12 {
		t.Errorf("last-round lookups touched only %d/16 blocks", len(blocks))
	}
}
