package aes

import "encoding/binary"

// This file implements the equivalent inverse cipher in the T-table
// formulation (Td0..Td4), the form a GPU decryption kernel uses. The
// straightforward byte-oriented Decrypt in aes.go cross-validates it.
//
// Decryption matters to the reproduction because a GPU AES *decryption*
// server leaks the same way encryption does: its final round performs
// Td4 lookups whose indices are a per-byte function of the *plaintext*
// byte and the first (equivalent) round key, so the correlation attack
// transfers. TraceDecrypt exposes the lookups for the kernel builder.

// DecryptTableID mirrors TableID for the decryption tables.
const (
	// Td0..Td3 are the inverse round tables, Td4 the inverse S-box
	// table; they occupy the same TableID space as the encryption
	// tables in a decryption kernel's address layout.
	numDecTables = 5
)

var td = computeDecTables()

func computeDecTables() (td [numDecTables][256]uint32) {
	for i := 0; i < 256; i++ {
		s := invSbox[i]
		s9 := gfMul(s, 9)
		sb := gfMul(s, 11)
		sd := gfMul(s, 13)
		se := gfMul(s, 14)
		td[0][i] = uint32(se)<<24 | uint32(s9)<<16 | uint32(sd)<<8 | uint32(sb)
		td[1][i] = uint32(sb)<<24 | uint32(se)<<16 | uint32(s9)<<8 | uint32(sd)
		td[2][i] = uint32(sd)<<24 | uint32(sb)<<16 | uint32(se)<<8 | uint32(s9)
		td[3][i] = uint32(s9)<<24 | uint32(sd)<<16 | uint32(sb)<<8 | uint32(se)
		td[4][i] = uint32(s)<<24 | uint32(s)<<16 | uint32(s)<<8 | uint32(s)
	}
	return td
}

// DecTableWord returns entry i of decryption table t (0..4), as a GPU
// kernel would load it.
func DecTableWord(t int, i byte) uint32 { return td[t][i] }

// invMixColumnsWord applies InvMixColumns to one column word.
func invMixColumnsWord(w uint32) uint32 {
	b0, b1, b2, b3 := byte(w>>24), byte(w>>16), byte(w>>8), byte(w)
	return uint32(gfMul(b0, 14)^gfMul(b1, 11)^gfMul(b2, 13)^gfMul(b3, 9))<<24 |
		uint32(gfMul(b0, 9)^gfMul(b1, 14)^gfMul(b2, 11)^gfMul(b3, 13))<<16 |
		uint32(gfMul(b0, 13)^gfMul(b1, 9)^gfMul(b2, 14)^gfMul(b3, 11))<<8 |
		uint32(gfMul(b0, 11)^gfMul(b1, 13)^gfMul(b2, 9)^gfMul(b3, 14))
}

// decKeySchedule returns the equivalent-inverse-cipher round keys:
// encryption keys in reverse round order, with InvMixColumns applied
// to the middle rounds.
func (c *Cipher) decKeySchedule() []uint32 {
	n := 4 * (c.rounds + 1)
	dk := make([]uint32, n)
	for r := 0; r <= c.rounds; r++ {
		for i := 0; i < 4; i++ {
			dk[4*r+i] = c.enc[4*(c.rounds-r)+i]
		}
	}
	for r := 1; r < c.rounds; r++ {
		for i := 0; i < 4; i++ {
			dk[4*r+i] = invMixColumnsWord(dk[4*r+i])
		}
	}
	return dk
}

// DecryptFast computes dst = AES⁻¹(src) for one block using the
// Td-table equivalent inverse cipher — the dataflow a GPU decryption
// kernel executes.
func (c *Cipher) DecryptFast(dst, src []byte) {
	ct, _ := c.decryptTrace(src, false)
	copy(dst[:BlockSize], ct[:])
}

// TraceDecrypt decrypts one block while recording every Td-table
// lookup, in the same Trace layout as TraceEncrypt: trace[r-1][j] is
// the lookup feeding state/plaintext byte j in (inverse) round r, and
// the final round's slot j is the Td4 lookup whose index is
// InvSBox-free: index = SBox(p_j ⊕ dk_j)… see LastRoundDecIndex.
func (c *Cipher) TraceDecrypt(src []byte) (pt [BlockSize]byte, trace Trace) {
	return c.decryptTrace(src, true)
}

func (c *Cipher) decryptTrace(src []byte, wantTrace bool) (pt [BlockSize]byte, trace Trace) {
	_ = src[BlockSize-1]
	dk := c.decKeySchedule()
	if wantTrace {
		trace = make(Trace, c.rounds)
	}

	var s [4]uint32
	for i := range s {
		s[i] = binary.BigEndian.Uint32(src[4*i:]) ^ dk[i]
	}

	k := 4
	for r := 1; r < c.rounds; r++ {
		var t [4]uint32
		for i := 0; i < 4; i++ {
			w := dk[k+i]
			for b := 0; b < 4; b++ {
				// Inverse ShiftRows rotates the other way: lane b of
				// output word i reads lane b of word (i-b) mod 4.
				idx := byteOf(s[(i+4-b)%4], b)
				if wantTrace {
					trace[r-1][4*i+b] = Lookup{Table: TableID(b), Index: idx}
				}
				w ^= td[b][idx]
			}
			t[i] = w
		}
		s = t
		k += 4
	}

	var out [4]uint32
	for i := 0; i < 4; i++ {
		w := dk[k+i]
		for b := 0; b < 4; b++ {
			idx := byteOf(s[(i+4-b)%4], b)
			if wantTrace {
				trace[c.rounds-1][4*i+b] = Lookup{Table: T4, Index: idx}
			}
			w ^= td[4][idx] & (0xff000000 >> (8 * b))
		}
		out[i] = w
	}
	for i := range out {
		binary.BigEndian.PutUint32(pt[4*i:], out[i])
	}
	return pt, trace
}

// LastRoundDecIndex is the decryption analogue of Equation 3: the
// final inverse round computes p_j = Td4[t_j] ⊕ dk_j with Td4 = S⁻¹,
// so an attacker observing plaintext byte p_j and guessing the
// equivalent-key byte dk_j recovers the lookup index
// t_j = S(p_j ⊕ dk_j).
func LastRoundDecIndex(plainByte, keyGuess byte) byte {
	return sbox[plainByte^keyGuess]
}
