// Package aes is a from-scratch implementation of the Advanced
// Encryption Standard (FIPS-197) in the T-table formulation used by
// GPU implementations of AES, which is the workload attacked in the
// RCoal paper.
//
// Beyond ordinary encryption/decryption the package exposes what the
// attack and the simulator need:
//
//   - the per-round table-lookup trace of an encryption
//     (TraceEncrypt), from which the GPU kernel builder derives the
//     exact global-memory addresses each thread issues, and
//   - the last-round algebra of the correlation timing attack
//     (Equations 1-3 of the paper): recovering the last-round lookup
//     index from a ciphertext byte and a key-byte guess.
//
// Correctness is validated against the standard library's crypto/aes
// in the test suite.
package aes

// The S-box is generated programmatically from the GF(2^8) definition
// (multiplicative inverse followed by the affine transform) rather than
// pasted as a constant table, so the tests can cross-check it against
// first principles and crypto/aes.

// sbox and invSbox are built by variable initialization (not init
// functions) so that the T-table initializers in other files of this
// package — which Go orders by dependency — always see them populated.
var sbox, invSbox = computeSBoxes()

// gfMul multiplies two elements of GF(2^8) modulo the AES polynomial
// x^8 + x^4 + x^3 + x + 1 (0x11b).
func gfMul(a, b byte) byte {
	var p byte
	for b != 0 {
		if b&1 != 0 {
			p ^= a
		}
		hi := a & 0x80
		a <<= 1
		if hi != 0 {
			a ^= 0x1b
		}
		b >>= 1
	}
	return p
}

// gfInv returns the multiplicative inverse in GF(2^8), with gfInv(0)=0
// as AES specifies.
func gfInv(a byte) byte {
	if a == 0 {
		return 0
	}
	// Inverse by exponentiation: a^254 = a^-1 in GF(2^8)*.
	result := byte(1)
	base := a
	for e := 254; e > 0; e >>= 1 {
		if e&1 != 0 {
			result = gfMul(result, base)
		}
		base = gfMul(base, base)
	}
	return result
}

func computeSBoxes() (s, inv [256]byte) {
	for i := 0; i < 256; i++ {
		// Affine transform: b ^ rotl(b,1) ^ rotl(b,2) ^ rotl(b,3) ^ rotl(b,4) ^ 0x63.
		b := gfInv(byte(i))
		x := b
		for r := 1; r <= 4; r++ {
			b = b<<1 | b>>7
			x ^= b
		}
		s[i] = x ^ 0x63
	}
	for i := 0; i < 256; i++ {
		inv[s[i]] = byte(i)
	}
	return s, inv
}

// SBox returns S(x), the AES substitution of x.
func SBox(x byte) byte { return sbox[x] }

// InvSBox returns S⁻¹(x). In the attack (Equation 3) this is the
// T4⁻¹[·] operation that maps a ciphertext byte XOR a key-byte guess
// back to the last-round table-lookup index.
func InvSBox(x byte) byte { return invSbox[x] }
