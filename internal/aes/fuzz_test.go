package aes

import (
	"bytes"
	stdaes "crypto/aes"
	"testing"
)

// Native fuzz targets. `go test` runs the seed corpus; `go test -fuzz`
// explores further.

func FuzzEncryptMatchesStdlib(f *testing.F) {
	f.Add([]byte("0123456789abcdef"), []byte("fedcba9876543210"))
	f.Add(make([]byte, 16), make([]byte, 16))
	f.Add([]byte("0123456789abcdef0123456789abcdef"), []byte("one block here!!"))
	f.Fuzz(func(t *testing.T, key, pt []byte) {
		if len(key) != 16 && len(key) != 24 && len(key) != 32 {
			t.Skip()
		}
		if len(pt) < 16 {
			t.Skip()
		}
		pt = pt[:16]
		ours, err := NewCipher(key)
		if err != nil {
			t.Fatal(err)
		}
		ref, err := stdaes.NewCipher(key)
		if err != nil {
			t.Fatal(err)
		}
		got := make([]byte, 16)
		want := make([]byte, 16)
		ours.Encrypt(got, pt)
		ref.Encrypt(want, pt)
		if !bytes.Equal(got, want) {
			t.Fatalf("mismatch vs stdlib: key %x pt %x", key, pt)
		}
		// And the full round trip through both inverse ciphers.
		back := make([]byte, 16)
		ours.Decrypt(back, got)
		if !bytes.Equal(back, pt) {
			t.Fatal("byte-oriented decrypt broke round trip")
		}
		ours.DecryptFast(back, got)
		if !bytes.Equal(back, pt) {
			t.Fatal("T-table decrypt broke round trip")
		}
	})
}

func FuzzTraceConsistency(f *testing.F) {
	f.Add([]byte("fuzz trace key!!"), []byte("fuzz trace text!"))
	f.Fuzz(func(t *testing.T, key, pt []byte) {
		if len(key) != 16 || len(pt) < 16 {
			t.Skip()
		}
		pt = pt[:16]
		c, err := NewCipher(key)
		if err != nil {
			t.Fatal(err)
		}
		ct, trace := c.TraceEncrypt(pt)
		want := make([]byte, 16)
		c.Encrypt(want, pt)
		if !bytes.Equal(ct[:], want) {
			t.Fatal("trace ciphertext differs from Encrypt")
		}
		lrk := c.LastRoundKey()
		for j := 0; j < 16; j++ {
			if trace[9][j].Index != LastRoundIndex(ct[j], lrk[j]) {
				t.Fatal("Equation 3 violated")
			}
		}
	})
}
