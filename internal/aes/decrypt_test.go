package aes

import (
	"bytes"
	stdaes "crypto/aes"
	"testing"
	"testing/quick"
)

func TestDecryptFastMatchesStdlib(t *testing.T) {
	f := func(key, ct [16]byte) bool {
		ours, _ := NewCipher(key[:])
		ref, _ := stdaes.NewCipher(key[:])
		got := make([]byte, 16)
		want := make([]byte, 16)
		ours.DecryptFast(got, ct[:])
		ref.Decrypt(want, ct[:])
		return bytes.Equal(got, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestDecryptFastMatchesByteOriented(t *testing.T) {
	// The two independent inverse-cipher implementations must agree,
	// for all key sizes.
	for _, keyLen := range []int{16, 24, 32} {
		key := make([]byte, keyLen)
		for i := range key {
			key[i] = byte(i*13 + keyLen)
		}
		c, err := NewCipher(key)
		if err != nil {
			t.Fatal(err)
		}
		f := func(ct [16]byte) bool {
			a := make([]byte, 16)
			b := make([]byte, 16)
			c.DecryptFast(a, ct[:])
			c.Decrypt(b, ct[:])
			return bytes.Equal(a, b)
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
			t.Errorf("keyLen %d: %v", keyLen, err)
		}
	}
}

func TestEncryptDecryptFastRoundTrip(t *testing.T) {
	c, _ := NewCipher([]byte("round trip key!!"))
	f := func(pt [16]byte) bool {
		ct := make([]byte, 16)
		back := make([]byte, 16)
		c.Encrypt(ct, pt[:])
		c.DecryptFast(back, ct)
		return bytes.Equal(back, pt[:])
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestTraceDecryptMatchesDecryptFast(t *testing.T) {
	c, _ := NewCipher([]byte("trace dec key!!!"))
	f := func(ct [16]byte) bool {
		want := make([]byte, 16)
		c.DecryptFast(want, ct[:])
		got, trace := c.TraceDecrypt(ct[:])
		if len(trace) != 10 {
			return false
		}
		return bytes.Equal(got[:], want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestTraceDecryptTableAssignment(t *testing.T) {
	c, _ := NewCipher(make([]byte, 16))
	_, trace := c.TraceDecrypt(make([]byte, 16))
	for r := 0; r < 9; r++ {
		for j := 0; j < 16; j++ {
			if want := TableID(j % 4); trace[r][j].Table != want {
				t.Fatalf("round %d slot %d: table %v, want %v", r+1, j, trace[r][j].Table, want)
			}
		}
	}
	for j := 0; j < 16; j++ {
		if trace[9][j].Table != T4 {
			t.Fatalf("last round slot %d: table %v, want T4", j, trace[9][j].Table)
		}
	}
}

func TestLastRoundDecEquation(t *testing.T) {
	// The decryption analogue of Equation 3: the final-round Td4 index
	// recorded in the trace equals SBox(p_j ^ dk_j) where dk is the
	// equivalent inverse cipher's final round key (= the original
	// round-0 key).
	f := func(key, ct [16]byte) bool {
		c, _ := NewCipher(key[:])
		pt, trace := c.TraceDecrypt(ct[:])
		dk := c.RoundKey(0) // final AddRoundKey of decryption
		for j := 0; j < 16; j++ {
			if trace[9][j].Index != LastRoundDecIndex(pt[j], dk[j]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestDecTableWordLanes(t *testing.T) {
	// Td4 replicates the inverse S-box.
	for i := 0; i < 256; i++ {
		w := DecTableWord(4, byte(i))
		s := uint32(InvSBox(byte(i)))
		if w != s<<24|s<<16|s<<8|s {
			t.Fatalf("Td4[%d] = %#x", i, w)
		}
	}
	// Td1..Td3 are rotations of Td0.
	for i := 0; i < 256; i++ {
		w0 := DecTableWord(0, byte(i))
		if DecTableWord(1, byte(i)) != w0>>8|w0<<24 {
			t.Fatalf("Td1[%d] not a rotation", i)
		}
	}
}

func TestInvMixColumnsWordInvertsMixColumns(t *testing.T) {
	// MixColumns via Te tables on an identity path: for any column w,
	// invMixColumnsWord(MixColumns(w)) == w. Build MixColumns from the
	// same GF arithmetic.
	mix := func(w uint32) uint32 {
		b0, b1, b2, b3 := byte(w>>24), byte(w>>16), byte(w>>8), byte(w)
		return uint32(gfMul(b0, 2)^gfMul(b1, 3)^b2^b3)<<24 |
			uint32(b0^gfMul(b1, 2)^gfMul(b2, 3)^b3)<<16 |
			uint32(b0^b1^gfMul(b2, 2)^gfMul(b3, 3))<<8 |
			uint32(gfMul(b0, 3)^b1^b2^gfMul(b3, 2))
	}
	f := func(w uint32) bool { return invMixColumnsWord(mix(w)) == w }
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
