package theory

import (
	"testing"

	"rcoal/internal/core"
	"rcoal/internal/rng"
	"rcoal/internal/stats"
)

// empiricalRho estimates ρ(U, Û) by Monte Carlo: per sample, draw N
// uniform block accesses; the defense draws its own plan (hardware
// stream) to produce U, the attacker draws an independent plan from
// the same policy to produce Û. This is exactly the quantity the
// Section V model computes, so it must match Table II.
func empiricalRho(t *testing.T, policy core.Config, nBlocks, samples int, seed uint64) float64 {
	t.Helper()
	hw := rng.New(seed).Split(1)
	atk := rng.New(seed).Split(2)
	data := rng.New(seed).Split(3)
	u := make([]float64, samples)
	uhat := make([]float64, samples)
	blocks := make([]int, core.DefaultWarpSize)
	for n := 0; n < samples; n++ {
		for i := range blocks {
			blocks[i] = data.Intn(nBlocks)
		}
		u[n] = float64(policy.NewPlan(hw).CountSmallBlocks(blocks))
		uhat[n] = float64(policy.NewPlan(atk).CountSmallBlocks(blocks))
	}
	r, err := stats.Pearson(u, uhat)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestTable2AgainstMonteCarlo(t *testing.T) {
	// Empirically confirm the analytical ρ of Table II with the real
	// mechanism implementations: the defense and the attack use
	// independent random streams, exactly the corresponding-attack
	// setting. 30k samples give ±0.012 (2σ) accuracy.
	const samples = 30000
	md, _ := NewModel(32, 16)
	cases := []struct {
		policy core.Config
		want   float64
	}{
		{core.FSSRTS(2), md.RhoFSSRTS(2)},
		{core.FSSRTS(4), md.RhoFSSRTS(4)},
		{core.FSSRTS(8), md.RhoFSSRTS(8)},
		{core.FSSRTS(16), md.RhoFSSRTS(16)},
		{core.RSSRTS(2), md.RhoRSSRTS(2)},
		{core.RSSRTS(4), md.RhoRSSRTS(4)},
		{core.RSSRTS(8), md.RhoRSSRTS(8)},
		{core.RSSRTS(16), md.RhoRSSRTS(16)},
	}
	for _, c := range cases {
		got := empiricalRho(t, c.policy, 16, samples, 0xE2E)
		if !almost(got, c.want, 0.02) {
			t.Errorf("%s: empirical rho %.4f vs analytical %.4f", c.policy.Name(), got, c.want)
		}
	}
}

func TestFSSAttackDeterministicallyMatches(t *testing.T) {
	// FSS without RTS is deterministic: attacker and hardware plans
	// coincide, so U == Û exactly, sample by sample (the paper's
	// Figure 8 conclusion).
	for _, m := range []int{1, 2, 4, 8, 16} {
		policy := core.FSS(m)
		if rho := empiricalRho(t, policy, 16, 2000, 0xF55A); !almost(rho, 1, 1e-9) {
			t.Errorf("FSS(%d): rho = %v, want exactly 1", m, rho)
		}
	}
}

func TestM32ConstantCount(t *testing.T) {
	// M = 32: the count is constant, the correlation degenerates to 0.
	if rho := empiricalRho(t, core.FSSRTS(32), 16, 500, 0x32); rho != 0 {
		t.Errorf("M=32: rho = %v, want 0 (constant series)", rho)
	}
}

func TestRSSWithoutRTSEmpirical(t *testing.T) {
	// The model skips plain RSS (Section V notes the enumeration is
	// infeasible analytically), but empirically its ρ must sit between
	// the deterministic FSS (1.0) and the doubly-randomized RSS+RTS.
	md, _ := NewModel(32, 16)
	for _, m := range []int{2, 4, 8} {
		rss := empiricalRho(t, core.RSS(m), 16, 30000, 0x4A)
		rssrts := md.RhoRSSRTS(m)
		if rss <= rssrts-0.02 {
			t.Errorf("RSS(%d): rho %.4f below RSS+RTS analytical %.4f", m, rss, rssrts)
		}
		if rss >= 0.9 {
			t.Errorf("RSS(%d): rho %.4f too close to deterministic", m, rss)
		}
	}
}
