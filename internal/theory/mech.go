package theory

import (
	"rcoal/internal/core"
	"rcoal/internal/mechanism"
)

// RhoFor maps a defense mechanism to the Section V model's analytical
// correlation ρ, when the model covers it. Coverage:
//
//   - the undefended baseline is deterministic: ρ = 1;
//   - FSS and FSS+RTS require M to divide N (equal subwarps);
//   - RSS+RTS with skewed sizing is Equation 6;
//   - RSS without RTS and normal-sized RSS have no closed form in the
//     paper (the size distribution breaks the composition-class
//     enumeration) — ok is false;
//   - non-subwarp mechanisms (delay injection, access shuffling, the
//     no-coalescing strawman) perturb *timing*, not the coalesced
//     access counts the model describes — ok is false and their
//     security must be measured empirically (the defense-frontier
//     experiment does exactly that).
func (md *Model) RhoFor(m mechanism.Mechanism) (rho float64, ok bool) {
	cfg, isSubwarp := mechanism.SubwarpConfig(m)
	if !isSubwarp {
		return 0, false
	}
	sw := cfg.NumSubwarps
	if sw < 1 || sw > md.N {
		return 0, false
	}
	if sw == 1 && !cfg.RandomThreads {
		return 1, true
	}
	switch {
	case cfg.SizeDist == core.SizeFixed && !cfg.RandomThreads:
		if md.N%sw == 0 {
			return md.RhoFSS(sw), true
		}
	case cfg.SizeDist == core.SizeFixed && cfg.RandomThreads:
		if md.N%sw == 0 {
			return md.RhoFSSRTS(sw), true
		}
	case cfg.SizeDist == core.SizeSkewed && cfg.RandomThreads:
		return md.RhoRSSRTS(sw), true
	}
	return 0, false
}
