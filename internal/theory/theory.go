// Package theory implements the analytical security model of Section V
// of the RCoal paper: the exact distribution of coalesced-access
// counts under each defense mechanism and the resulting correlation ρ
// between the attacker's estimation vector and the true access counts,
// from which the (normalized) number of samples S needed for a
// successful correlation attack follows (Table II).
//
// Notation follows the paper: N threads per warp, R memory blocks per
// lookup table, M subwarps. Definition 1's distribution 𝔑_{m,n} is
// evaluated exactly with big.Rat (Stirling numbers over n^m); the
// sums over frequency classes (Definition 2) and subwarp-size classes
// collapse labeled vectors into integer-partition classes, which makes
// the 16^32-term sums tractable.
package theory

import (
	"fmt"
	"math"
	"math/big"

	"rcoal/internal/amath"
)

// NDistribution returns the exact law of 𝔑_{m,n} (Definition 1): the
// number of distinct blocks touched when m threads each access one of
// n blocks uniformly. Entry i of the result is P(𝔑 = i), i = 0..m.
func NDistribution(m, n int) []*big.Rat {
	if m < 0 || n <= 0 {
		panic(fmt.Sprintf("theory: NDistribution(%d,%d) invalid", m, n))
	}
	den := amath.Pow(n, m)
	out := make([]*big.Rat, m+1)
	for i := 0; i <= m; i++ {
		num := new(big.Int).Mul(amath.FallingFactorial(n, i), amath.Stirling2(m, i))
		out[i] = new(big.Rat).SetFrac(num, den)
	}
	return out
}

// NMoments returns the exact mean and variance of 𝔑_{m,n}.
func NMoments(m, n int) (mean, variance float64) {
	dist := NDistribution(m, n)
	mu := new(big.Rat)
	mu2 := new(big.Rat)
	for i, p := range dist {
		iv := big.NewRat(int64(i), 1)
		term := new(big.Rat).Mul(p, iv)
		mu.Add(mu, term)
		mu2.Add(mu2, term.Mul(term, iv))
	}
	mean = amath.RatFloat(mu)
	m2 := amath.RatFloat(mu2)
	return mean, m2 - mean*mean
}

// coverProb is the Definition 3 kernel: the probability that a subwarp
// of capacity c receives at least one of the f threads accessing a
// given block, when the f threads are spread uniformly (RTS) over S
// thread slots: 1 − C(S−c, f)/C(S, f).
func coverProb(s, f, c int) float64 {
	den := amath.BinomialFloat(s, f)
	if den == 0 {
		return 0
	}
	return 1 - amath.BinomialFloat(s-c, f)/den
}

// MeanMFC returns μ(𝔐_{F,C}) per Definition 3: the expected coalesced
// accesses when the block-frequency vector is F and the subwarp
// capacities are C, with random (RTS) thread placement over
// S = ΣC slots.
func MeanMFC(freqs, caps []int) float64 {
	s := 0
	for _, c := range caps {
		s += c
	}
	total := 0.0
	for _, f := range freqs {
		for _, c := range caps {
			total += coverProb(s, f, c)
		}
	}
	return total
}

// Model evaluates the analytical ρ for one (N, R, M) point.
type Model struct {
	N, R int // threads per warp, blocks per table

	// freqClasses caches the frequency-class enumeration (partition
	// classes of N over R blocks with their exact probabilities),
	// which every RTS-based ρ shares.
	freqClasses []freqClass
	// binom caches Pascal's triangle up to N as float64: the coverProb
	// kernel runs tens of millions of times for large-N models, and
	// big.Int binomials would dominate the runtime.
	binom [][]float64
}

type freqClass struct {
	freqs []int
	prob  float64
}

// NewModel returns the model for N threads and R blocks; the paper
// evaluates N=32, R=16.
func NewModel(n, r int) (*Model, error) {
	if n <= 0 || r <= 0 {
		return nil, fmt.Errorf("theory: invalid model N=%d R=%d", n, r)
	}
	md := &Model{N: n, R: r}
	md.binom = make([][]float64, n+1)
	for i := 0; i <= n; i++ {
		md.binom[i] = make([]float64, i+1)
		md.binom[i][0] = 1
		md.binom[i][i] = 1
		for j := 1; j < i; j++ {
			md.binom[i][j] = md.binom[i-1][j-1] + md.binom[i-1][j]
		}
	}
	return md, nil
}

// cover is coverProb with the model's cached triangle.
func (md *Model) cover(s, f, c int) float64 {
	if f < 0 || f > s {
		return 0
	}
	den := md.binom[s][f]
	if den == 0 {
		return 0
	}
	num := 0.0
	if rem := s - c; rem >= 0 && f <= rem {
		num = md.binom[rem][f]
	}
	return 1 - num/den
}

// RhoFSS returns ρ for the FSS mechanism with M subwarps. The FSS
// attack reproduces the hardware's deterministic plan exactly, so
// U = Û and ρ = 1 — except at M = N where every thread is alone, the
// count is the constant N, σ(U) = 0, and ρ is defined as 0.
func (md *Model) RhoFSS(m int) float64 {
	if md.N%m != 0 {
		panic(fmt.Sprintf("theory: FSS M=%d must divide N=%d", m, md.N))
	}
	if m == md.N {
		return 0
	}
	_, v := NMoments(md.N/m, md.R)
	if v == 0 {
		return 0
	}
	return 1
}

// RhoFSSRTS returns ρ for FSS+RTS with M subwarps (Section V-B2).
func (md *Model) RhoFSSRTS(m int) float64 {
	if md.N%m != 0 {
		panic(fmt.Sprintf("theory: FSS+RTS M=%d must divide N=%d", m, md.N))
	}
	if m == md.N {
		return 0
	}
	// The random permutation leaves the marginal law of U unchanged:
	// μ(U) and σ(U) are those of FSS.
	mu1, v1 := NMoments(md.N/m, md.R)
	mu := float64(m) * mu1
	variance := float64(m) * v1
	if variance == 0 {
		return 0
	}

	// μ(U×Û) = Σ_F P(F) μ(U|F)², Equation 6. All subwarps share the
	// capacity N/M, so μ(𝔐) per block frequency f is M·cover(f).
	gFix := make([]float64, md.N+1)
	for f := 1; f <= md.N; f++ {
		gFix[f] = float64(m) * md.cover(md.N, f, md.N/m)
	}
	muUU := md.sumOverFrequencyClasses(func(freqs []int) float64 {
		x := 0.0
		for _, f := range freqs {
			x += gFix[f]
		}
		return x * x
	})
	return (muUU - mu*mu) / variance
}

// RhoRSSRTS returns ρ for RSS+RTS with M subwarps (Section V-B3):
// subwarp sizes drawn uniformly from the compositions of N into M
// positive parts, threads placed by random permutation.
func (md *Model) RhoRSSRTS(m int) float64 {
	if m < 1 || m > md.N {
		panic(fmt.Sprintf("theory: RSS+RTS M=%d outside [1,%d]", m, md.N))
	}
	if m == md.N {
		return 0
	}

	// Enumerate subwarp-size classes: partitions of N into exactly M
	// parts, weighted by their composition count.
	type sizeClass struct {
		parts []int
		prob  float64
	}
	var classes []sizeClass
	totalComps := new(big.Rat).SetInt(amath.CompositionCount(md.N, m))
	amath.ForEachPartitionExact(md.N, m, func(p amath.Partition) bool {
		cp := make([]int, len(p))
		copy(cp, p)
		w := new(big.Rat).SetInt(amath.CompositionsOfClass(p))
		w.Quo(w, totalComps)
		classes = append(classes, sizeClass{parts: cp, prob: amath.RatFloat(w)})
		return true
	})

	// Per-size moments of 𝔑_{w,R}.
	muN := make([]float64, md.N+1)
	varN := make([]float64, md.N+1)
	for w := 1; w <= md.N; w++ {
		muN[w], varN[w] = NMoments(w, md.R)
	}

	// μ(U), μ(U²) over the size classes; subwarps are independent
	// given the sizes.
	var mu, mu2 float64
	for _, cl := range classes {
		condMu, condVar := 0.0, 0.0
		for _, w := range cl.parts {
			condMu += muN[w]
			condVar += varN[w]
		}
		mu += cl.prob * condMu
		mu2 += cl.prob * (condVar + condMu*condMu)
	}
	variance := mu2 - mu*mu
	if variance <= 0 {
		return 0
	}

	// G(f) = Σ_W P(W) Σ_{c∈W} coverProb(N, f, c): the expected number
	// of subwarps covering a block accessed by f threads, averaged
	// over size classes. Then μ(U|F) = Σ_{f∈F} G(f) and
	// μ(U×Û) = Σ_F P(F) (Σ_{f∈F} G(f))².
	g := make([]float64, md.N+1)
	for f := 1; f <= md.N; f++ {
		for _, cl := range classes {
			s := 0.0
			for _, c := range cl.parts {
				s += md.cover(md.N, f, c)
			}
			g[f] += cl.prob * s
		}
	}
	muUU := md.sumOverFrequencyClasses(func(freqs []int) float64 {
		h := 0.0
		for _, f := range freqs {
			h += g[f]
		}
		return h * h
	})
	return (muUU - mu*mu) / variance
}

// sumOverFrequencyClasses computes Σ_F P(F)·fn(F) over all frequency
// classes of N accesses to R blocks (Definition 2), enumerating
// partition classes and weighting by their exact probability.
func (md *Model) sumOverFrequencyClasses(fn func(freqs []int) float64) float64 {
	if md.freqClasses == nil {
		amath.ForEachPartition(md.N, md.R, func(p amath.Partition) bool {
			cp := make([]int, len(p))
			copy(cp, p)
			// The float fast path keeps large-N models tractable; its
			// agreement with the exact rational form is locked in by
			// the amath tests.
			prob := amath.FrequencyClassProbabilityFloat(p, md.N, md.R)
			md.freqClasses = append(md.freqClasses, freqClass{freqs: cp, prob: prob})
			return true
		})
	}
	total := 0.0
	for _, fc := range md.freqClasses {
		total += fc.prob * fn(fc.freqs)
	}
	return total
}

// Row is one line of Table II.
type Row struct {
	M                            int
	RhoFSS, RhoFSSRTS, RhoRSSRTS float64
	// S values are normalized to FSS at M=1 (S = 1/ρ²); +Inf encodes
	// the paper's ∞ entries.
	SFSS, SFSSRTS, SRSSRTS float64
}

// Table2 reproduces Table II for the given subwarp counts.
func (md *Model) Table2(ms []int) []Row {
	rows := make([]Row, 0, len(ms))
	for _, m := range ms {
		r := Row{
			M:         m,
			RhoFSS:    md.RhoFSS(m),
			RhoFSSRTS: md.RhoFSSRTS(m),
			RhoRSSRTS: md.RhoRSSRTS(m),
		}
		r.SFSS = invSquare(r.RhoFSS)
		r.SFSSRTS = invSquare(r.RhoFSSRTS)
		r.SRSSRTS = invSquare(r.RhoRSSRTS)
		rows = append(rows, r)
	}
	return rows
}

func invSquare(rho float64) float64 {
	if rho == 0 {
		return math.Inf(1)
	}
	return 1 / (rho * rho)
}
