package theory

import (
	"math"
	"math/big"
	"testing"

	"rcoal/internal/rng"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestNDistributionNormalizes(t *testing.T) {
	for _, tc := range []struct{ m, n int }{{1, 16}, {4, 16}, {32, 16}, {8, 4}} {
		sum := new(big.Rat)
		for _, p := range NDistribution(tc.m, tc.n) {
			if p.Sign() < 0 {
				t.Fatalf("negative probability for m=%d n=%d", tc.m, tc.n)
			}
			sum.Add(sum, p)
		}
		if sum.Cmp(big.NewRat(1, 1)) != 0 {
			t.Errorf("m=%d n=%d: sums to %s", tc.m, tc.n, sum)
		}
	}
}

func TestNDistributionEdgeCases(t *testing.T) {
	// One thread: always exactly one block.
	d := NDistribution(1, 16)
	if d[0].Sign() != 0 || d[1].Cmp(big.NewRat(1, 1)) != 0 {
		t.Error("m=1 distribution wrong")
	}
	// Mean of the coupon-collector form: n(1-(1-1/n)^m).
	mean, _ := NMoments(32, 16)
	want := 16 * (1 - math.Pow(15.0/16.0, 32))
	if !almost(mean, want, 1e-9) {
		t.Errorf("mean = %v, want %v", mean, want)
	}
}

func TestNMomentsAgainstSimulation(t *testing.T) {
	// Monte-Carlo cross-check of Definition 1.
	src := rng.New(7)
	const draws = 200000
	m, n := 8, 16
	var sum, sum2 float64
	for i := 0; i < draws; i++ {
		var mask uint32
		for j := 0; j < m; j++ {
			mask |= 1 << uint(src.Intn(n))
		}
		c := float64(popcount32(mask))
		sum += c
		sum2 += c * c
	}
	simMean := sum / draws
	simVar := sum2/draws - simMean*simMean
	mean, variance := NMoments(m, n)
	if !almost(mean, simMean, 0.02) {
		t.Errorf("mean: analytic %v vs sim %v", mean, simMean)
	}
	if !almost(variance, simVar, 0.03) {
		t.Errorf("variance: analytic %v vs sim %v", variance, simVar)
	}
}

func popcount32(x uint32) int {
	n := 0
	for x != 0 {
		x &= x - 1
		n++
	}
	return n
}

func TestCoverProb(t *testing.T) {
	// Capacity = all slots: certainly covered.
	if got := coverProb(32, 5, 32); !almost(got, 1, 1e-12) {
		t.Errorf("full capacity: %v", got)
	}
	// f = S: every slot holds a thread, any non-empty subwarp covered.
	if got := coverProb(32, 32, 1); !almost(got, 1, 1e-12) {
		t.Errorf("all threads: %v", got)
	}
	// Single thread, capacity c: probability c/S.
	if got := coverProb(32, 1, 8); !almost(got, 0.25, 1e-12) {
		t.Errorf("single thread: %v, want 0.25", got)
	}
}

func TestMeanMFCAgainstSimulation(t *testing.T) {
	// Definition 3 cross-check: random permutation placement.
	freqs := []int{5, 3, 2} // 10 threads over 3 blocks... plus empty slots
	caps := []int{4, 4, 4, 4}
	// MeanMFC semantics: S = sum caps = 16 slots; freqs threads placed
	// among the 16 slots uniformly.
	analytic := MeanMFC(freqs, caps)

	src := rng.New(9)
	const draws = 100000
	total := 0.0
	for d := 0; d < draws; d++ {
		perm := src.Perm(16)
		// slots 0..4 hold block-0 threads, 5..7 block 1, 8..9 block 2,
		// rest idle. perm[i] = slot of thread i.
		blockOfSlot := make(map[int]int)
		pos := 0
		for b, f := range freqs {
			for k := 0; k < f; k++ {
				blockOfSlot[perm[pos]] = b
				pos++
			}
		}
		count := 0
		for s := 0; s < 4; s++ {
			var seen [3]bool
			for slot := s * 4; slot < (s+1)*4; slot++ {
				if b, ok := blockOfSlot[slot]; ok && !seen[b] {
					seen[b] = true
					count++
				}
			}
		}
		total += float64(count)
	}
	sim := total / draws
	if !almost(analytic, sim, 0.02) {
		t.Errorf("MeanMFC: analytic %v vs sim %v", analytic, sim)
	}
}

func TestNewModelValidation(t *testing.T) {
	if _, err := NewModel(0, 16); err == nil {
		t.Error("N=0 accepted")
	}
	if _, err := NewModel(32, 0); err == nil {
		t.Error("R=0 accepted")
	}
}

func TestTable2MatchesPaper(t *testing.T) {
	// The headline theoretical result: Table II of the paper, to the
	// printed precision.
	md, err := NewModel(32, 16)
	if err != nil {
		t.Fatal(err)
	}
	rows := md.Table2([]int{1, 2, 4, 8, 16, 32})

	want := []struct {
		m                            int
		rhoFSS, rhoFSSRTS, rhoRSSRTS float64
		sFSSRTS, sRSSRTS             float64 // 0 encodes ∞/1 handled below
	}{
		{1, 1.00, 1.00, 1.00, 1, 1},
		{2, 1.00, 0.41, 0.20, 6, 25},
		{4, 1.00, 0.20, 0.15, 24, 42},
		{8, 1.00, 0.09, 0.11, 115, 78},
		{16, 1.00, 0.03, 0.05, 961, 349},
		{32, 0.00, 0.00, 0.00, math.Inf(1), math.Inf(1)},
	}
	for i, w := range want {
		r := rows[i]
		if r.M != w.m {
			t.Fatalf("row %d: M=%d", i, r.M)
		}
		if !almost(r.RhoFSS, w.rhoFSS, 0.005) {
			t.Errorf("M=%d: rho FSS = %v, paper %v", w.m, r.RhoFSS, w.rhoFSS)
		}
		if !almost(r.RhoFSSRTS, w.rhoFSSRTS, 0.005) {
			t.Errorf("M=%d: rho FSS+RTS = %v, paper %v", w.m, r.RhoFSSRTS, w.rhoFSSRTS)
		}
		if !almost(r.RhoRSSRTS, w.rhoRSSRTS, 0.005) {
			t.Errorf("M=%d: rho RSS+RTS = %v, paper %v", w.m, r.RhoRSSRTS, w.rhoRSSRTS)
		}
		if math.IsInf(w.sFSSRTS, 1) {
			if !math.IsInf(r.SFSSRTS, 1) || !math.IsInf(r.SRSSRTS, 1) {
				t.Errorf("M=%d: S should be ∞", w.m)
			}
			continue
		}
		if math.Round(r.SFSSRTS) != w.sFSSRTS {
			t.Errorf("M=%d: S FSS+RTS = %v, paper %v", w.m, math.Round(r.SFSSRTS), w.sFSSRTS)
		}
		if math.Round(r.SRSSRTS) != w.sRSSRTS {
			t.Errorf("M=%d: S RSS+RTS = %v, paper %v", w.m, math.Round(r.SRSSRTS), w.sRSSRTS)
		}
	}
}

func TestTable2CrossoverStructure(t *testing.T) {
	// The qualitative finding of Section V-C: RSS+RTS is stronger for
	// M = 2, 4; FSS+RTS is stronger for M = 8, 16.
	md, _ := NewModel(32, 16)
	rows := md.Table2([]int{2, 4, 8, 16})
	for _, r := range rows[:2] {
		if r.RhoRSSRTS >= r.RhoFSSRTS {
			t.Errorf("M=%d: expected RSS+RTS (%v) below FSS+RTS (%v)", r.M, r.RhoRSSRTS, r.RhoFSSRTS)
		}
	}
	for _, r := range rows[2:] {
		if r.RhoFSSRTS >= r.RhoRSSRTS {
			t.Errorf("M=%d: expected FSS+RTS (%v) below RSS+RTS (%v)", r.M, r.RhoFSSRTS, r.RhoRSSRTS)
		}
	}
}

func TestRhoDecreasesWithM(t *testing.T) {
	md, _ := NewModel(32, 16)
	prevF, prevR := 2.0, 2.0
	for _, m := range []int{1, 2, 4, 8, 16} {
		f := md.RhoFSSRTS(m)
		r := md.RhoRSSRTS(m)
		if f >= prevF || r >= prevR {
			t.Errorf("M=%d: rho not strictly decreasing (FSS+RTS %v, RSS+RTS %v)", m, f, r)
		}
		prevF, prevR = f, r
	}
}

func TestSmallModelSanity(t *testing.T) {
	// A 4-thread, 2-block toy model must still satisfy the structural
	// facts: rho(M=1) = 1, rho(M=N) = 0, monotone in between.
	md, _ := NewModel(4, 2)
	if got := md.RhoFSSRTS(1); !almost(got, 1, 1e-9) {
		t.Errorf("toy M=1: %v", got)
	}
	if got := md.RhoFSSRTS(4); got != 0 {
		t.Errorf("toy M=N: %v", got)
	}
	mid := md.RhoFSSRTS(2)
	if mid <= 0 || mid >= 1 {
		t.Errorf("toy M=2: %v outside (0,1)", mid)
	}
	rss := md.RhoRSSRTS(2)
	if rss <= 0 || rss >= 1 {
		t.Errorf("toy RSS M=2: %v outside (0,1)", rss)
	}
}

func TestPanicsOnBadM(t *testing.T) {
	md, _ := NewModel(32, 16)
	for name, fn := range map[string]func(){
		"FSS non-divisor":     func() { md.RhoFSS(3) },
		"FSSRTS non-divisor":  func() { md.RhoFSSRTS(5) },
		"RSSRTS out of range": func() { md.RhoRSSRTS(33) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}
