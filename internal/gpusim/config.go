// Package gpusim is a cycle-level timing simulator of the baseline GPU
// architecture of the RCoal paper (Table I): SIMT cores with dual warp
// schedulers, a load/store unit containing the (modified, Figure 11)
// memory coalescing unit, a crossbar interconnect per direction, and
// six GDDR5 memory partitions with FR-FCFS scheduling.
//
// It plays the role GPGPU-Sim plays in the paper: executing the AES
// workload as per-warp instruction traces and reporting total cycles,
// per-round cycle windows, and per-round coalesced-access counts — the
// quantities the correlation timing attack and the defense evaluation
// consume. Matching the paper's methodology, L1/L2 caches and MSHR
// request merging default to off (the paper disables them, Section
// VII), so every coalesced transaction travels to DRAM; they can be
// enabled for the hierarchy ablations, alongside shared-memory
// bank-conflict modeling, warp-scheduler selection, event tracing, and
// energy accounting.
package gpusim

import (
	"fmt"

	"rcoal/internal/faultinject"
	"rcoal/internal/gpusim/cache"
	"rcoal/internal/gpusim/dram"
	"rcoal/internal/gpusim/mem"
	"rcoal/internal/mechanism"
)

// Config is the simulated GPU configuration. DefaultConfig returns
// the Table I values.
type Config struct {
	// NumSMs is the number of streaming multiprocessors (15).
	NumSMs int
	// SchedulersPerSM is the number of concurrent warp schedulers per
	// SM (2); warps on an SM are split between them.
	SchedulersPerSM int
	// WarpSize is the number of threads per warp (32).
	WarpSize int
	// SIMTLanes is the number of physical lanes (16 × 2 in Table I's
	// "SIMT width = 32 (16×2)" notation): a full warp issues over
	// WarpSize/SIMTLanes cycles.
	SIMTLanes int
	// ALULatency is the pipeline latency of an arithmetic warp
	// instruction in core cycles.
	ALULatency int
	// ICNTLatency is the one-way crossbar latency in core cycles.
	ICNTLatency int
	// FlitBytes is the interconnect flit size; a 64-byte data reply
	// occupies its return port for BlockBytes/FlitBytes cycles while a
	// request header takes one flit. 32 B matches the crossbar of the
	// baseline architecture.
	FlitBytes int
	// CoreClockMHz and MemClockMHz set the clock domains (1400 / 924);
	// DRAM timing is scaled into the core domain by their ratio.
	CoreClockMHz, MemClockMHz int
	// AddressMap is the partition/bank interleaving.
	AddressMap mem.AddressMap
	// DRAMTiming is the GDDR5 timing in memory-clock cycles.
	DRAMTiming dram.Timing
	// DRAMQueueCap bounds each controller's request queue (0 =
	// unbounded).
	DRAMQueueCap int
	// Defense is the installed timing-channel defense: an RCoal subwarp
	// coalescing policy (mechanism.Baseline/FSS/RSS... or any
	// mechanism.Subwarp wrapping a core.Config), an obfuscation defense
	// (mechanism.Delay, mechanism.Shuffle), or the no-coalescing
	// strawman (mechanism.NoCoal). nil means the undefended baseline.
	Defense mechanism.Mechanism
	// MCURate is the number of coalesced transactions the LD/ST unit
	// injects into the interconnect per cycle (Table I: one subwarp
	// per coalescing unit per cycle; we inject one transaction per
	// cycle).
	MCURate int
	// MaxCycles bounds a launch's simulated cycles; Run returns a
	// *MaxCyclesError (wrapping ErrMaxCycles) with a diagnostic
	// snapshot when a kernel exhausts it. 0 means DefaultMaxCycles,
	// orders of magnitude above any legitimate Table I kernel.
	MaxCycles int64
	// WatchdogWindow is the forward-progress watchdog's patience: if no
	// warp, PRT entry, inject queue, crossbar port, or DRAM controller
	// changes state for this many consecutive simulation steps while
	// warps remain unfinished, Run returns a *NoProgressError (wrapping
	// ErrNoProgress) with a diagnostic snapshot instead of spinning.
	// Steps equal cycles under pure stepping; event-driven fast-forward
	// elides provably idle cycles, so legitimate idle stretches never
	// age the watchdog. 0 means DefaultWatchdogWindow.
	WatchdogWindow int64
	// Faults wires deterministic, test-only hardware faults into the
	// launch (see internal/faultinject). nil — the only production
	// value — injects nothing.
	Faults *faultinject.Plan
	// FastForwardDisabled forces pure cycle-by-cycle stepping,
	// disabling the event-driven fast-forward that jumps over cycles
	// in which no subsystem can make progress. Results are
	// byte-identical either way (the determinism contract, enforced by
	// a differential test); the flag exists for that test and for
	// debugging, not for tuning.
	FastForwardDisabled bool

	// --- Optional subsystems beyond the paper's baseline ------------
	//
	// The paper's methodology disables caches and MSHR request merging
	// to isolate the coalescing channel (§VII); they are modeled here
	// for ablations and for the paper's future-work extensions, and
	// default to off.

	// L1Enabled adds a per-SM L1 data cache (loads only; stores bypass
	// write-through, no-allocate).
	L1Enabled bool
	// L1 configures the per-SM cache when enabled.
	L1 cache.Config
	// L2Enabled adds a per-partition L2 slice in front of DRAM.
	L2Enabled bool
	// L2 configures the per-partition cache when enabled.
	L2 cache.Config
	// CacheRandomized turns on the per-launch randomized set-index
	// hash in every enabled cache — the paper's future-work
	// "randomization at all levels of the memory hierarchy".
	CacheRandomized bool
	// MSHREnabled merges outstanding same-block loads per SM (inter-
	// and intra-warp request merging via miss-status holding
	// registers).
	MSHREnabled bool
	// Scheduler selects the warp scheduling policy.
	Scheduler SchedulerKind
	// VulnerableRounds restricts the randomized coalescing to the
	// listed AES rounds (the paper's future work #1: selective RCoal
	// with software-identified vulnerable code). Instructions in other
	// rounds coalesce with the baseline whole-warp plan. Empty means
	// the policy applies to the entire execution, as in the paper.
	VulnerableRounds []int
	// PlanPerWarp draws an independent subwarp plan per warp instead
	// of one per launch — an ablation on the hardware's randomization
	// granularity.
	PlanPerWarp bool
	// Trace, when non-nil, receives the simulation's event timeline
	// (issues, transactions, replies, retirements). Debugging aid;
	// leave nil for full speed.
	Trace TraceSink
	// Metrics, when non-nil, instruments the launch with the simulator's
	// metrics layer (MCU coalescing distributions, PRT occupancy, DRAM
	// row locality and queueing, crossbar depths, scheduler stalls); the
	// launch's snapshot lands in Result.Metrics. Same discipline as
	// Trace: nil (the default) costs only nil checks on the hot path.
	// A Metrics bundle is single-goroutine, like the GPU itself.
	Metrics *Metrics
	// SharedBanks is the number of shared-memory banks (32 on the
	// baseline architecture); SharedLoad instructions serialize over
	// bank conflicts.
	SharedBanks int
	// SharedLatency is the conflict-free shared-memory access latency
	// in core cycles.
	SharedLatency int
}

// SchedulerKind selects the warp scheduling policy.
type SchedulerKind uint8

const (
	// LRR is loose round-robin (the default).
	LRR SchedulerKind = iota
	// GTO is greedy-then-oldest: stick with the current warp until it
	// stalls, then pick the oldest ready warp.
	GTO
)

func (s SchedulerKind) String() string {
	if s == GTO {
		return "gto"
	}
	return "lrr"
}

// DefaultL1 returns a 16 KiB, 4-way, 64 B-line L1 configuration.
func DefaultL1() cache.Config {
	return cache.Config{SizeBytes: 16 << 10, LineBytes: mem.BlockBytes, Ways: 4, HitLatency: 4}
}

// DefaultL2 returns a 128 KiB-per-partition, 8-way L2 configuration
// (768 KiB total over 6 partitions).
func DefaultL2() cache.Config {
	return cache.Config{SizeBytes: 128 << 10, LineBytes: mem.BlockBytes, Ways: 8, HitLatency: 12}
}

// DefaultConfig returns the simulated configuration of Table I with
// baseline (whole-warp) coalescing.
func DefaultConfig() Config {
	return Config{
		NumSMs:          15,
		SchedulersPerSM: 2,
		WarpSize:        32,
		SIMTLanes:       16,
		ALULatency:      4,
		ICNTLatency:     8,
		FlitBytes:       32,
		CoreClockMHz:    1400,
		MemClockMHz:     924,
		AddressMap:      mem.DefaultAddressMap(),
		DRAMTiming:      dram.HynixGDDR5(),
		DRAMQueueCap:    64,
		Defense:         mechanism.Baseline(),
		MCURate:         1,
		SharedBanks:     32,
		SharedLatency:   2,
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	switch {
	case c.NumSMs <= 0:
		return fmt.Errorf("gpusim: NumSMs %d must be positive", c.NumSMs)
	case c.SchedulersPerSM <= 0:
		return fmt.Errorf("gpusim: SchedulersPerSM %d must be positive", c.SchedulersPerSM)
	case c.WarpSize <= 0:
		return fmt.Errorf("gpusim: WarpSize %d must be positive", c.WarpSize)
	case c.SIMTLanes <= 0 || c.WarpSize%c.SIMTLanes != 0:
		return fmt.Errorf("gpusim: SIMTLanes %d must divide WarpSize %d", c.SIMTLanes, c.WarpSize)
	case c.ALULatency < 1:
		return fmt.Errorf("gpusim: ALULatency %d must be >= 1", c.ALULatency)
	case c.ICNTLatency < 1:
		return fmt.Errorf("gpusim: ICNTLatency %d must be >= 1", c.ICNTLatency)
	case c.FlitBytes < 1 || mem.BlockBytes%c.FlitBytes != 0:
		return fmt.Errorf("gpusim: FlitBytes %d must divide block size %d", c.FlitBytes, mem.BlockBytes)
	case c.CoreClockMHz <= 0 || c.MemClockMHz <= 0:
		return fmt.Errorf("gpusim: clocks must be positive (%d, %d)", c.CoreClockMHz, c.MemClockMHz)
	case c.MCURate < 1:
		return fmt.Errorf("gpusim: MCURate %d must be >= 1", c.MCURate)
	case c.SharedBanks < 1:
		return fmt.Errorf("gpusim: SharedBanks %d must be >= 1", c.SharedBanks)
	case c.SharedLatency < 1:
		return fmt.Errorf("gpusim: SharedLatency %d must be >= 1", c.SharedLatency)
	case c.MaxCycles < 0:
		return fmt.Errorf("gpusim: MaxCycles %d must be >= 0 (0 = default %d)", c.MaxCycles, DefaultMaxCycles)
	case c.WatchdogWindow < 0:
		return fmt.Errorf("gpusim: WatchdogWindow %d must be >= 0 (0 = default %d)", c.WatchdogWindow, DefaultWatchdogWindow)
	}
	if f := c.Faults; f != nil {
		if s := f.DRAMStall; s != nil && (s.Partition < -1 || s.Partition >= c.AddressMap.Partitions) {
			return fmt.Errorf("gpusim: fault DRAMStall partition %d outside [-1,%d)", s.Partition, c.AddressMap.Partitions)
		}
		if d := f.DropReply; d != nil {
			if d.Port < 0 || d.Port >= c.NumSMs {
				return fmt.Errorf("gpusim: fault DropReply port %d outside [0,%d)", d.Port, c.NumSMs)
			}
			if d.Nth < 1 {
				return fmt.Errorf("gpusim: fault DropReply nth %d must be >= 1", d.Nth)
			}
		}
	}
	if err := c.AddressMap.Validate(); err != nil {
		return err
	}
	if err := c.DRAMTiming.Validate(); err != nil {
		return err
	}
	if c.L1Enabled {
		if err := c.L1.Validate(); err != nil {
			return err
		}
		if c.L1.LineBytes != mem.BlockBytes {
			return fmt.Errorf("gpusim: L1 line %d must equal block size %d", c.L1.LineBytes, mem.BlockBytes)
		}
	}
	if c.L2Enabled {
		if err := c.L2.Validate(); err != nil {
			return err
		}
		if c.L2.LineBytes != mem.BlockBytes {
			return fmt.Errorf("gpusim: L2 line %d must equal block size %d", c.L2.LineBytes, mem.BlockBytes)
		}
	}
	if c.Scheduler != LRR && c.Scheduler != GTO {
		return fmt.Errorf("gpusim: unknown scheduler %d", c.Scheduler)
	}
	for _, r := range c.VulnerableRounds {
		if r < 1 || r > MaxRounds {
			return fmt.Errorf("gpusim: vulnerable round %d outside [1,%d]", r, MaxRounds)
		}
	}
	if c.Defense != nil {
		if err := c.Defense.ValidateFor(c.WarpSize); err != nil {
			return fmt.Errorf("gpusim: defense %s: %w", c.Defense.Spec(), err)
		}
	}
	return nil
}

// clockRatio returns core cycles per memory cycle.
func (c Config) clockRatio() float64 {
	return float64(c.CoreClockMHz) / float64(c.MemClockMHz)
}

// issueCycles is how many cycles a warp occupies its scheduler per
// instruction (WarpSize / SIMTLanes).
func (c Config) issueCycles() int64 {
	n := c.WarpSize / c.SIMTLanes
	if n < 1 {
		n = 1
	}
	return int64(n)
}
