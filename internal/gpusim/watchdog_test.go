package gpusim

import (
	"errors"
	"strings"
	"testing"

	"rcoal/internal/faultinject"
)

func TestConfigValidateRobustnessFields(t *testing.T) {
	good := DefaultConfig()
	good.MaxCycles = 1 << 20
	good.WatchdogWindow = 1 << 12
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}

	bad := DefaultConfig()
	bad.MaxCycles = -1
	if bad.Validate() == nil {
		t.Error("negative MaxCycles accepted")
	}
	bad = DefaultConfig()
	bad.WatchdogWindow = -5
	if bad.Validate() == nil {
		t.Error("negative WatchdogWindow accepted")
	}

	bad = DefaultConfig()
	bad.Faults = &faultinject.Plan{DRAMStall: &faultinject.DRAMStall{Partition: 6}}
	if bad.Validate() == nil {
		t.Error("out-of-range DRAMStall partition accepted")
	}
	bad.Faults = &faultinject.Plan{DRAMStall: &faultinject.DRAMStall{Partition: -1}}
	if err := bad.Validate(); err != nil {
		t.Errorf("stall-all partition (-1) rejected: %v", err)
	}
	bad.Faults = &faultinject.Plan{DropReply: &faultinject.DropReply{Port: 15, Nth: 1}}
	if bad.Validate() == nil {
		t.Error("out-of-range DropReply port accepted")
	}
	bad.Faults = &faultinject.Plan{DropReply: &faultinject.DropReply{Port: 0, Nth: 0}}
	if bad.Validate() == nil {
		t.Error("DropReply nth 0 accepted")
	}
}

// TestMaxCyclesStructuredError proves a budget-exhausted launch
// returns a typed error carrying a diagnostic snapshot instead of the
// old flat string.
func TestMaxCyclesStructuredError(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxCycles = 50 // far below any real kernel's runtime
	g := mustGPU(t, cfg)
	_, err := g.Run(testKernel(8, 32), 1)
	if !errors.Is(err, ErrMaxCycles) {
		t.Fatalf("err = %v, want ErrMaxCycles", err)
	}
	var mce *MaxCyclesError
	if !errors.As(err, &mce) {
		t.Fatalf("err %T does not unwrap to *MaxCyclesError", err)
	}
	if mce.MaxCycles != 50 || mce.Kernel != "test" || mce.Snapshot == nil {
		t.Errorf("MaxCyclesError = %+v, want budget 50, kernel test, snapshot", mce)
	}
}

// TestWatchdogTripsOnDRAMStall injects a frozen DRAM scheduler and
// asserts the run surfaces ErrNoProgress with a snapshot showing the
// stuck requests — rather than spinning to the cycle budget.
func TestWatchdogTripsOnDRAMStall(t *testing.T) {
	for _, ffDisabled := range []bool{false, true} {
		cfg := DefaultConfig()
		cfg.FastForwardDisabled = ffDisabled
		cfg.WatchdogWindow = 4096 // keep the test fast; default is 2^20
		cfg.Faults = &faultinject.Plan{DRAMStall: &faultinject.DRAMStall{Partition: -1}}
		g := mustGPU(t, cfg)
		_, err := g.Run(testKernel(2, 32), 1)
		if !errors.Is(err, ErrNoProgress) {
			t.Fatalf("ffDisabled=%v: err = %v, want ErrNoProgress", ffDisabled, err)
		}
		var npe *NoProgressError
		if !errors.As(err, &npe) {
			t.Fatalf("ffDisabled=%v: err %T does not unwrap to *NoProgressError", ffDisabled, err)
		}
		if npe.Snapshot == nil {
			t.Fatalf("ffDisabled=%v: no snapshot", ffDisabled)
		}
		queued := 0
		for _, p := range npe.Snapshot.Partitions {
			queued += p.Queued
		}
		if queued == 0 {
			t.Errorf("ffDisabled=%v: snapshot shows no queued DRAM requests:\n%s", ffDisabled, npe.Snapshot)
		}
		if npe.Snapshot.RemainingWarps == 0 {
			t.Errorf("ffDisabled=%v: snapshot claims all warps finished", ffDisabled)
		}
		if !strings.Contains(err.Error(), "no forward progress") ||
			!strings.Contains(err.Error(), "partition") {
			t.Errorf("ffDisabled=%v: undiagnostic error text:\n%s", ffDisabled, err)
		}
	}
}

// TestWatchdogTripsOnSwallowedReply injects a lost crossbar reply: the
// requesting warp waits forever with nothing in flight. Fast-forward
// proves the wedge immediately; pure stepping trips via the window.
func TestWatchdogTripsOnSwallowedReply(t *testing.T) {
	for _, ffDisabled := range []bool{false, true} {
		cfg := DefaultConfig()
		cfg.FastForwardDisabled = ffDisabled
		cfg.WatchdogWindow = 4096
		cfg.Faults = &faultinject.Plan{DropReply: &faultinject.DropReply{Port: 0, Nth: 1}}
		g := mustGPU(t, cfg)
		// One load, all 32 threads on one block: exactly one reply, and
		// it is swallowed.
		_, err := g.Run(testKernel(1, 1), 1)
		var npe *NoProgressError
		if !errors.As(err, &npe) {
			t.Fatalf("ffDisabled=%v: err = %v, want *NoProgressError", ffDisabled, err)
		}
		blocked, prt := 0, 0
		for _, sm := range npe.Snapshot.SMs {
			blocked += sm.Blocked
			prt += sm.PRTEntries
		}
		if blocked != 1 || prt != 1 {
			t.Errorf("ffDisabled=%v: snapshot blocked=%d prt=%d, want 1/1:\n%s",
				ffDisabled, blocked, prt, npe.Snapshot)
		}
		if !ffDisabled && npe.Window != 0 {
			t.Errorf("fast-forward should prove the wedge immediately (window 0), got %d", npe.Window)
		}
	}
}

// TestWatchdogQuietOnHealthyRuns: a small window must never trip on a
// legitimate kernel, with and without fast-forward.
func TestWatchdogQuietOnHealthyRuns(t *testing.T) {
	for _, ffDisabled := range []bool{false, true} {
		cfg := DefaultConfig()
		cfg.FastForwardDisabled = ffDisabled
		cfg.WatchdogWindow = 4096
		g := mustGPU(t, cfg)
		if _, err := g.Run(testKernel(16, 32), 7); err != nil {
			t.Fatalf("ffDisabled=%v: healthy run tripped: %v", ffDisabled, err)
		}
	}
}

// TestWatchdogDeterminismUnaffected: the watchdog instrumentation must
// not change results; a faulted runtime that is re-run without faults
// would be a config change, so instead compare watchdog-on vs seed
// twin with a tiny window.
func TestWatchdogDeterminismUnaffected(t *testing.T) {
	base := mustGPU(t, DefaultConfig())
	cfg := DefaultConfig()
	cfg.WatchdogWindow = 4096
	cfg.MaxCycles = DefaultMaxCycles
	tight := mustGPU(t, cfg)
	r1, err := base.Run(testKernel(8, 16), 42)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := tight.Run(testKernel(8, 16), 42)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Cycles != r2.Cycles || r1.TotalTx != r2.TotalTx {
		t.Errorf("watchdog changed results: cycles %d vs %d, tx %d vs %d",
			r1.Cycles, r2.Cycles, r1.TotalTx, r2.TotalTx)
	}
}

func TestSnapshotString(t *testing.T) {
	var s *Snapshot
	if got := s.String(); !strings.Contains(got, "no snapshot") {
		t.Errorf("nil snapshot String = %q", got)
	}
	full := &Snapshot{Cycle: 9, RemainingWarps: 1,
		SMs:        []SMSnapshot{{SM: 2, Warps: 3, Blocked: 1, PRTEntries: 4, InjectQueue: 2}},
		Partitions: []PartitionSnapshot{{Partition: 1, Queued: 5, InFlight: 2}}}
	got := full.String()
	for _, want := range []string{"cycle 9", "sm 2", "prt 4", "partition 1", "queued 5"} {
		if !strings.Contains(got, want) {
			t.Errorf("snapshot missing %q:\n%s", want, got)
		}
	}
}
