package tracevis

import (
	"bytes"
	"encoding/json"
	"os"
	"strings"
	"testing"

	"rcoal/internal/aes"
	"rcoal/internal/gpusim"
	"rcoal/internal/kernels"
	"rcoal/internal/mechanism"
	"rcoal/internal/rng"
)

// decoded mirrors the wire format loosely, for schema validation.
type decoded struct {
	TraceEvents []map[string]any `json:"traceEvents"`
}

// validateChromeTrace runs the exported schema validator and decodes
// the trace for further assertions.
func validateChromeTrace(t *testing.T, raw []byte) decoded {
	t.Helper()
	if err := Validate(raw); err != nil {
		t.Fatalf("trace fails schema validation: %v", err)
	}
	var d decoded
	if err := json.Unmarshal(raw, &d); err != nil {
		t.Fatalf("trace does not decode: %v", err)
	}
	return d
}

func TestValidateRejectsMalformed(t *testing.T) {
	cases := map[string]string{
		"not json":      `{"traceEvents":`,
		"unknown phase": `{"traceEvents":[{"name":"x","ph":"Q","ts":0,"pid":0,"tid":0}]}`,
		"unsorted": `{"traceEvents":[` +
			`{"name":"thread_name","ph":"M","pid":0,"tid":0,"args":{"name":"r"}},` +
			`{"name":"a","ph":"i","ts":5,"pid":0,"tid":0},` +
			`{"name":"b","ph":"i","ts":4,"pid":0,"tid":0}]}`,
		"X without dur": `{"traceEvents":[` +
			`{"name":"thread_name","ph":"M","pid":0,"tid":0,"args":{"name":"r"}},` +
			`{"name":"a","ph":"X","ts":0,"pid":0,"tid":0}]}`,
		"E without B": `{"traceEvents":[` +
			`{"name":"thread_name","ph":"M","pid":0,"tid":0,"args":{"name":"r"}},` +
			`{"name":"a","ph":"E","ts":0,"pid":0,"tid":0}]}`,
		"unmatched B": `{"traceEvents":[` +
			`{"name":"thread_name","ph":"M","pid":0,"tid":0,"args":{"name":"r"}},` +
			`{"name":"a","ph":"B","ts":0,"pid":0,"tid":0}]}`,
		"unnamed row": `{"traceEvents":[{"name":"a","ph":"i","ts":0,"pid":0,"tid":0}]}`,
	}
	for name, raw := range cases {
		if err := Validate([]byte(raw)); err == nil {
			t.Errorf("%s: Validate accepted malformed trace", name)
		}
	}
}

func TestExportGolden(t *testing.T) {
	// A fixed synthetic event sequence must serialize byte-for-byte
	// stably: emission order is scrambled, export sorts by timestamp and
	// keeps emission order among ties.
	x := New()
	x.Emit(gpusim.Event{Cycle: 40, Kind: gpusim.EvDRAMService, Part: 2, Addr: 0x1740, N: 30})
	x.Emit(gpusim.Event{Cycle: 5, Kind: gpusim.EvIssue, SM: 1, Warp: 3, PC: 7})
	x.Emit(gpusim.Event{Cycle: 5, Kind: gpusim.EvCoalesce, SM: 1, Warp: 3, Round: 9, N: 4})
	x.Emit(gpusim.Event{Cycle: 6, Kind: gpusim.EvMemTx, SM: 1, Warp: 3, Round: 9, Addr: 0x1740})
	x.Emit(gpusim.Event{Cycle: 44, Kind: gpusim.EvReply, SM: 1, Warp: 3})

	var buf bytes.Buffer
	if err := x.Export(&buf); err != nil {
		t.Fatal(err)
	}
	validateChromeTrace(t, buf.Bytes())

	const want = `{"traceEvents":[` +
		`{"name":"process_name","ph":"M","ts":0,"pid":0,"tid":0,"args":{"name":"SM cores"}},` +
		`{"name":"process_sort_index","ph":"M","ts":0,"pid":0,"tid":0,"args":{"sort_index":0}},` +
		`{"name":"process_name","ph":"M","ts":0,"pid":1,"tid":0,"args":{"name":"DRAM partitions"}},` +
		`{"name":"process_sort_index","ph":"M","ts":0,"pid":1,"tid":0,"args":{"sort_index":1}},` +
		`{"name":"thread_name","ph":"M","ts":0,"pid":1,"tid":2,"args":{"name":"partition 2"}},` +
		`{"name":"thread_name","ph":"M","ts":0,"pid":0,"tid":1,"args":{"name":"sm 1"}},` +
		`{"name":"issue","ph":"i","ts":5,"pid":0,"tid":1,"s":"t","args":{"pc":7,"warp":3}},` +
		`{"name":"coalesce","ph":"i","ts":5,"pid":0,"tid":1,"s":"t","args":{"round":9,"tx":4,"warp":3}},` +
		`{"name":"memtx","ph":"i","ts":6,"pid":0,"tid":1,"s":"t","args":{"addr":"0x1740","round":9,"warp":3}},` +
		`{"name":"service","ph":"X","ts":10,"dur":30,"pid":1,"tid":2,"args":{"addr":"0x1740"}},` +
		`{"name":"reply","ph":"i","ts":44,"pid":0,"tid":1,"s":"t","args":{"warp":3}}` +
		`],"displayTimeUnit":"ms"}` + "\n"
	if got := buf.String(); got != want {
		t.Errorf("golden mismatch:\n got: %s\nwant: %s", got, want)
	}
}

func TestExportFromSimulation(t *testing.T) {
	// End to end: trace a real AES launch and check the export is a
	// valid Chrome trace containing both new event kinds on their
	// designated tracks.
	c, err := aes.NewCipher([]byte("0123456789abcdef"))
	if err != nil {
		t.Fatal(err)
	}
	k, _, err := kernels.Build(c, kernels.RandomPlaintext(rng.New(3), 64))
	if err != nil {
		t.Fatal(err)
	}
	x := New()
	cfg := gpusim.DefaultConfig()
	cfg.Defense = mechanism.RSS(4)
	cfg.Trace = x
	g, err := gpusim.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.Run(k, 17); err != nil {
		t.Fatal(err)
	}
	if x.Len() == 0 {
		t.Fatal("simulation emitted no events")
	}

	var buf bytes.Buffer
	if err := x.Export(&buf); err != nil {
		t.Fatal(err)
	}
	d := validateChromeTrace(t, buf.Bytes())
	var coalesce, service int
	for _, e := range d.TraceEvents {
		switch e["name"] {
		case "coalesce":
			if int(e["pid"].(float64)) != PidSM {
				t.Fatal("coalesce event off the SM process")
			}
			coalesce++
		case "service":
			if int(e["pid"].(float64)) != PidDRAM {
				t.Fatal("service event off the DRAM process")
			}
			service++
		}
	}
	if coalesce == 0 || service == 0 {
		t.Fatalf("trace has %d coalesce and %d service events, want both > 0", coalesce, service)
	}

	// Reset empties the buffer for the next launch.
	x.Reset()
	if x.Len() != 0 {
		t.Error("Reset left events behind")
	}
}

func TestWriteFile(t *testing.T) {
	x := New()
	x.Emit(gpusim.Event{Cycle: 1, Kind: gpusim.EvIssue, SM: 0})
	path := t.TempDir() + "/trace.json"
	if err := x.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	validateChromeTrace(t, raw)
	if !strings.Contains(string(raw), `"issue"`) {
		t.Error("written trace missing event")
	}
}
