// Package tracevis exports the gpusim event stream as Chrome
// trace-event JSON — the format Perfetto (ui.perfetto.dev) and
// chrome://tracing load directly. One simulated cycle maps to one
// microsecond of trace time, so the viewer's time axis reads in
// cycles.
//
// The exporter renders two processes:
//
//   - pid 0 "SM cores": one thread row per SM, carrying instruction
//     issues, subwarp-coalesce events (with the Algorithm-1 group
//     count), transaction injections, reply deliveries, and warp
//     retirements as instant events.
//   - pid 1 "DRAM partitions": one thread row per memory partition,
//     carrying each serviced transaction as a complete ("X") span from
//     controller arrival to data return.
//
// An Exporter implements gpusim.TraceSink. Emit is mutex-guarded so
// parallel experiment cells may share one exporter; within a single
// simulation the lock is uncontended and costs one atomic pair per
// event.
package tracevis

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"sync"

	"rcoal/internal/gpusim"
)

// Process ids of the exported track groups.
const (
	// PidSM is the process holding one thread row per SM.
	PidSM = 0
	// PidDRAM is the process holding one thread row per partition.
	PidDRAM = 1
)

// Exporter buffers simulator events and writes them as Chrome
// trace-event JSON. The zero value is ready to use.
type Exporter struct {
	mu     sync.Mutex
	events []gpusim.Event
}

// New returns an empty exporter.
func New() *Exporter { return &Exporter{} }

// Emit implements gpusim.TraceSink.
func (x *Exporter) Emit(e gpusim.Event) {
	x.mu.Lock()
	x.events = append(x.events, e)
	x.mu.Unlock()
}

// Len returns the number of buffered events.
func (x *Exporter) Len() int {
	x.mu.Lock()
	defer x.mu.Unlock()
	return len(x.events)
}

// Reset discards all buffered events, keeping the exporter usable.
func (x *Exporter) Reset() {
	x.mu.Lock()
	x.events = x.events[:0]
	x.mu.Unlock()
}

// TraceEvent is one Chrome trace-event JSON object. Dur is a pointer
// so complete events always carry it (a zero-cycle service is still a
// span) while instant and metadata events omit it.
type TraceEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   int64          `json:"ts"`
	Dur  *int64         `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// File is the top-level JSON object. OtherData carries free-form
// file-level metadata (the fleet trace stores its trace id there);
// it is omitted when empty, so single-process exports are unchanged.
type File struct {
	TraceEvents     []TraceEvent   `json:"traceEvents"`
	DisplayTimeUnit string         `json:"displayTimeUnit"`
	OtherData       map[string]any `json:"otherData,omitempty"`
}

// Export writes the buffered events as one Chrome trace JSON object:
// metadata (track naming) first, then all timeline events sorted by
// timestamp. The buffer is left intact, so a long experiment can
// export intermediate traces.
func (x *Exporter) Export(w io.Writer) error {
	x.mu.Lock()
	events := append([]gpusim.Event(nil), x.events...)
	x.mu.Unlock()

	out := File{DisplayTimeUnit: "ms", TraceEvents: []TraceEvent{
		Meta("process_name", PidSM, 0, "SM cores"),
		Meta("process_sort_index", PidSM, 0, 0),
		Meta("process_name", PidDRAM, 0, "DRAM partitions"),
		Meta("process_sort_index", PidDRAM, 0, 1),
	}}

	// Name each track row that actually appears.
	smSeen, partSeen := map[int]bool{}, map[int]bool{}
	for _, e := range events {
		if e.Kind == gpusim.EvDRAMService {
			if !partSeen[e.Part] {
				partSeen[e.Part] = true
				out.TraceEvents = append(out.TraceEvents,
					Meta("thread_name", PidDRAM, e.Part, fmt.Sprintf("partition %d", e.Part)))
			}
			continue
		}
		if !smSeen[e.SM] {
			smSeen[e.SM] = true
			out.TraceEvents = append(out.TraceEvents,
				Meta("thread_name", PidSM, e.SM, fmt.Sprintf("sm %d", e.SM)))
		}
	}

	timeline := make([]TraceEvent, 0, len(events))
	for _, e := range events {
		timeline = append(timeline, convert(e))
	}
	// Chrome trace JSON wants events in timestamp order; keep emission
	// order among equal timestamps for determinism.
	sort.SliceStable(timeline, func(i, j int) bool { return timeline[i].Ts < timeline[j].Ts })
	out.TraceEvents = append(out.TraceEvents, timeline...)

	enc := json.NewEncoder(w)
	return enc.Encode(out)
}

// WriteFile exports the trace into path (atomically enough for a
// post-run artifact: written to completion, then closed).
func (x *Exporter) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := x.Export(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Meta builds one metadata ("M") record naming or ordering a track.
// Besides the two process_* kinds and thread_name/thread_sort_index,
// Chrome also understands process_labels (badges next to the process
// name — the fleet trace uses it to flag stragglers).
func Meta(name string, pid, tid int, arg any) TraceEvent {
	key := "name"
	switch name {
	case "process_sort_index", "thread_sort_index":
		key = "sort_index"
	case "process_labels":
		key = "labels"
	}
	return TraceEvent{Name: name, Ph: "M", Pid: pid, Tid: tid, Args: map[string]any{key: arg}}
}

// convert maps one simulator event onto its trace representation.
func convert(e gpusim.Event) TraceEvent {
	switch e.Kind {
	case gpusim.EvDRAMService:
		// A complete span on the partition's row: arrival to data
		// return. Events are emitted at completion, so the span starts
		// N cycles back.
		dur := e.N
		return TraceEvent{
			Name: "service", Ph: "X", Ts: e.Cycle - e.N, Dur: &dur,
			Pid: PidDRAM, Tid: e.Part,
			Args: map[string]any{"addr": fmt.Sprintf("%#x", e.Addr)},
		}
	case gpusim.EvCoalesce:
		return instant(e, map[string]any{"warp": e.Warp, "round": e.Round, "tx": e.N})
	case gpusim.EvIssue:
		return instant(e, map[string]any{"warp": e.Warp, "pc": e.PC})
	case gpusim.EvMemTx:
		return instant(e, map[string]any{"warp": e.Warp, "round": e.Round, "addr": fmt.Sprintf("%#x", e.Addr)})
	default: // EvReply, EvRetire, and any future kinds
		return instant(e, map[string]any{"warp": e.Warp})
	}
}

// instant builds a thread-scoped instant event on the SM's row.
func instant(e gpusim.Event, args map[string]any) TraceEvent {
	return TraceEvent{
		Name: e.Kind.String(), Ph: "i", Ts: e.Cycle,
		Pid: PidSM, Tid: e.SM, S: "t", Args: args,
	}
}
