package tracevis

import (
	"encoding/json"
	"fmt"
)

// Validate checks a serialized Chrome trace against the invariants
// Perfetto's importer relies on: the file decodes, every event has a
// known phase, timeline events appear in non-decreasing timestamp
// order, complete ("X") events carry a non-negative duration,
// duration events nest (every B has its E, per pid/tid row), and
// every timeline row is named by a thread_name metadata record. It is
// the schema gate for both the per-simulation exporter and the
// fleet-wide trace merged by the sweep coordinator, and is run by
// cmd/rcoal-obscheck in CI.
func Validate(raw []byte) error {
	var d struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &d); err != nil {
		return fmt.Errorf("trace does not decode: %w", err)
	}
	named := map[[2]int]bool{}
	open := map[[2]int]int{} // B/E nesting depth per (pid, tid)
	lastTs := int64(-1 << 62)
	for i, e := range d.TraceEvents {
		ph, _ := e["ph"].(string)
		pid, okP := e["pid"].(float64)
		tid, okT := e["tid"].(float64)
		if !okP || !okT {
			return fmt.Errorf("event %d: missing pid/tid: %v", i, e)
		}
		key := [2]int{int(pid), int(tid)}
		switch ph {
		case "M":
			if e["name"] == "thread_name" {
				named[key] = true
			}
			continue
		case "i", "X", "B", "E":
		default:
			return fmt.Errorf("event %d: unknown phase %q", i, ph)
		}
		ts, ok := e["ts"].(float64)
		if !ok {
			return fmt.Errorf("event %d: missing ts: %v", i, e)
		}
		if int64(ts) < lastTs {
			return fmt.Errorf("event %d: ts %d after %d — timeline not sorted", i, int64(ts), lastTs)
		}
		lastTs = int64(ts)
		switch ph {
		case "X":
			dur, ok := e["dur"].(float64)
			if !ok || dur < 0 {
				return fmt.Errorf("event %d: complete event without non-negative dur: %v", i, e)
			}
		case "B":
			open[key]++
		case "E":
			open[key]--
			if open[key] < 0 {
				return fmt.Errorf("event %d: E without matching B on %v", i, key)
			}
		}
		if !named[key] {
			return fmt.Errorf("event %d: row %v has no thread_name metadata", i, key)
		}
	}
	for key, n := range open {
		if n != 0 {
			return fmt.Errorf("row %v: %d unmatched B events", key, n)
		}
	}
	return nil
}
