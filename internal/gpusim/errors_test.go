package gpusim

import (
	"errors"
	"strings"
	"testing"
)

func diagSnapshot() *Snapshot {
	return &Snapshot{Cycle: 120, RemainingWarps: 3,
		ToMemPending: 2, ToSMPending: 1,
		SMs:        []SMSnapshot{{SM: 4, Warps: 3, Blocked: 2, Ready: 1, PRTEntries: 7, InjectQueue: 1}},
		Partitions: []PartitionSnapshot{{Partition: 2, Queued: 5, InFlight: 1, L2Replies: 1}}}
}

func TestNoProgressErrorString(t *testing.T) {
	e := &NoProgressError{Kernel: "aes", Cycle: 120, Window: 64, Snapshot: diagSnapshot()}
	msg := e.Error()
	for _, want := range []string{
		`kernel "aes"`, "cycle 120", "no state change for 64 steps",
		"snapshot @ cycle 120", "3 warps unfinished",
		"sm 4:", "blocked 2", "partition 2:", "queued 5",
	} {
		if !strings.Contains(msg, want) {
			t.Errorf("NoProgressError message missing %q:\n%s", want, msg)
		}
	}
	if !errors.Is(e, ErrNoProgress) {
		t.Error("NoProgressError does not match ErrNoProgress")
	}

	// Window 0 means the watchdog proved the launch can never complete;
	// the message must say so rather than report a zero-step wait.
	proved := &NoProgressError{Kernel: "aes", Cycle: 7, Window: 0, Snapshot: diagSnapshot()}
	if msg := proved.Error(); !strings.Contains(msg, "nothing in flight can ever complete") {
		t.Errorf("window-0 message lacks the proof phrasing: %s", msg)
	} else if strings.Contains(msg, "0 steps") {
		t.Errorf("window-0 message reports a zero-step wait: %s", msg)
	}
}

func TestMaxCyclesErrorString(t *testing.T) {
	e := &MaxCyclesError{Kernel: "sweep", MaxCycles: 5000, Snapshot: diagSnapshot()}
	msg := e.Error()
	for _, want := range []string{`kernel "sweep"`, "exceeded 5000 cycles", "snapshot @ cycle 120"} {
		if !strings.Contains(msg, want) {
			t.Errorf("MaxCyclesError message missing %q:\n%s", want, msg)
		}
	}
	if !errors.Is(e, ErrMaxCycles) {
		t.Error("MaxCyclesError does not match ErrMaxCycles")
	}
}

func TestErrorStringsTolerateNilSnapshot(t *testing.T) {
	// Errors constructed without a snapshot (e.g. in tests or future
	// call sites) must render, not panic.
	np := &NoProgressError{Kernel: "k", Cycle: 1, Window: 2}
	if msg := np.Error(); !strings.Contains(msg, "(no snapshot)") {
		t.Errorf("nil-snapshot NoProgressError: %s", msg)
	}
	mc := &MaxCyclesError{Kernel: "k", MaxCycles: 10}
	if msg := mc.Error(); !strings.Contains(msg, "(no snapshot)") {
		t.Errorf("nil-snapshot MaxCyclesError: %s", msg)
	}
}

func TestErrorsAsRecoversSnapshot(t *testing.T) {
	// The documented recovery path: errors.As through a wrapped chain
	// yields the typed error with its diagnostic snapshot intact.
	base := &NoProgressError{Kernel: "wrapped", Cycle: 9, Window: 3, Snapshot: diagSnapshot()}
	wrapped := wrapErr{base}
	var npe *NoProgressError
	if !errors.As(wrapped, &npe) {
		t.Fatal("errors.As failed through wrapper")
	}
	if npe.Snapshot == nil || npe.Snapshot.Cycle != 120 {
		t.Errorf("recovered snapshot lost data: %+v", npe.Snapshot)
	}
}

type wrapErr struct{ err error }

func (w wrapErr) Error() string { return "run failed: " + w.err.Error() }
func (w wrapErr) Unwrap() error { return w.err }
