package gpusim

import "testing"

// Steady-state allocation guards: after a warm-up launch has built the
// runtime (SMs, crossbars, controllers, request arena), repeat launches
// on the same GPU must allocate only the per-launch values that escape
// to the caller — the Result, its per-warp stats slice, the launch's
// coalescing plan, and the RNG sources that derive it. Everything else
// (queues, scratch, requests) is reused. A regression here silently
// re-introduces the GC pressure the event-driven core removed.

// steadyStateRunAllocs is the pinned per-launch allocation count for a
// shared-plan launch: Result + Warps slice + plan (sizes, subwarp ids)
// + the hardware/cache/launch RNG sources.
const steadyStateRunAllocs = 12

func TestRunSteadyStateAllocations(t *testing.T) {
	g, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	k := randomKernel(5, 2, 3)
	if _, err := g.Run(k, 1); err != nil {
		t.Fatal(err)
	}
	avg := testing.AllocsPerRun(20, func() {
		if _, err := g.Run(k, 2); err != nil {
			t.Fatal(err)
		}
	})
	if avg > steadyStateRunAllocs {
		t.Errorf("steady-state Run allocates %.1f times per launch, pinned at %d",
			avg, steadyStateRunAllocs)
	}
}

func TestRunSteadyStateAllocationsAcrossSeeds(t *testing.T) {
	// Different seeds draw different plans but must hit the same reuse
	// path; only the seed-dependent escaping values may allocate.
	g, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	k := randomKernel(6, 4, 2)
	if _, err := g.Run(k, 0); err != nil {
		t.Fatal(err)
	}
	seed := uint64(1)
	avg := testing.AllocsPerRun(20, func() {
		if _, err := g.Run(k, seed); err != nil {
			t.Fatal(err)
		}
		seed++
	})
	if avg > steadyStateRunAllocs {
		t.Errorf("steady-state Run across seeds allocates %.1f times per launch, pinned at %d",
			avg, steadyStateRunAllocs)
	}
}

// selectiveRunAllocs pins the selective-RCoal (VulnerableRounds) Run:
// the shared-plan count plus the whole-warp basePlan's two slices.
const selectiveRunAllocs = steadyStateRunAllocs + 2

// TestRunSelectiveSteadyStateAllocations proves the fork-off path adds
// zero allocations: a plain selective Run — the configuration prefix
// forking accelerates, run WITHOUT forking — stays at its pinned
// count, so merely having the fork machinery in the binary costs
// nothing when unused.
func TestRunSelectiveSteadyStateAllocations(t *testing.T) {
	cfg := DefaultConfig()
	cfg.VulnerableRounds = []int{3}
	g, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	k := randomKernel(5, 2, 3)
	if _, err := g.Run(k, 1); err != nil {
		t.Fatal(err)
	}
	avg := testing.AllocsPerRun(20, func() {
		if _, err := g.Run(k, 2); err != nil {
			t.Fatal(err)
		}
	})
	if avg > selectiveRunAllocs {
		t.Errorf("steady-state selective Run allocates %.1f times per launch, pinned at %d",
			avg, selectiveRunAllocs)
	}
}

// TestRunAllocationsAfterFork proves forking leaves no allocation
// residue: after a RunPrefix/RunFork cycle on a GPU, subsequent plain
// Runs on the same GPU are back at the baseline pinned count.
func TestRunAllocationsAfterFork(t *testing.T) {
	cfg := DefaultConfig()
	cfg.VulnerableRounds = []int{3}
	g, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	k := randomKernel(5, 2, 3)
	snap, err := g.RunPrefix(k, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.RunFork(snap); err != nil {
		t.Fatal(err)
	}
	if _, err := g.Run(k, 1); err != nil {
		t.Fatal(err)
	}
	avg := testing.AllocsPerRun(20, func() {
		if _, err := g.Run(k, 2); err != nil {
			t.Fatal(err)
		}
	})
	if avg > selectiveRunAllocs {
		t.Errorf("post-fork Run allocates %.1f times per launch, pinned at %d",
			avg, selectiveRunAllocs)
	}
}
