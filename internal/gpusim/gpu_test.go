package gpusim

import (
	"testing"

	"rcoal/internal/core"
	"rcoal/internal/mechanism"
)

// testKernel builds a one-warp kernel: `loads` global loads whose 32
// threads each touch `spread` distinct blocks, tagged as round 1,
// bracketed by round markers.
func testKernel(loads, spread int) *Kernel {
	wp := &WarpProgram{ID: 0}
	wp.Instrs = append(wp.Instrs, Instr{Kind: RoundMark, Round: 1})
	for l := 0; l < loads; l++ {
		addrs := make([]uint64, 32)
		for t := 0; t < 32; t++ {
			addrs[t] = uint64(t%spread) * 64
		}
		wp.Instrs = append(wp.Instrs, Instr{Kind: Load, Addrs: addrs, Round: 1})
		wp.Instrs = append(wp.Instrs, Instr{Kind: ALU, Round: 1})
	}
	wp.Instrs = append(wp.Instrs, Instr{Kind: RoundMark, Round: 0})
	return &Kernel{Warps: []*WarpProgram{wp}, Label: "test"}
}

func mustGPU(t *testing.T, cfg Config) *GPU {
	t.Helper()
	g, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := DefaultConfig()
	bad.NumSMs = 0
	if bad.Validate() == nil {
		t.Error("NumSMs=0 accepted")
	}
	bad = DefaultConfig()
	bad.SIMTLanes = 7
	if bad.Validate() == nil {
		t.Error("non-dividing SIMTLanes accepted")
	}
	bad = DefaultConfig()
	bad.Defense = mechanism.FSS(3) // FSS(3) invalid for warp 32
	if bad.Validate() == nil {
		t.Error("invalid defense mechanism accepted")
	}
	bad = DefaultConfig()
	bad.Defense = mechanism.Subwarp(core.Config{NumSubwarps: 2, WarpSize: 16})
	if bad.Validate() == nil {
		t.Error("mismatched defense warp size accepted")
	}
}

func TestKernelValidate(t *testing.T) {
	k := testKernel(2, 4)
	if err := k.Validate(32); err != nil {
		t.Fatal(err)
	}
	if err := k.Validate(16); err == nil {
		t.Error("wrong warp size accepted")
	}
	empty := &Kernel{Label: "empty"}
	if err := empty.Validate(32); err == nil {
		t.Error("empty kernel accepted")
	}
	if got := k.MemInstrs(); got != 2 {
		t.Errorf("MemInstrs = %d, want 2", got)
	}
}

func TestRunCompletesAndCounts(t *testing.T) {
	g := mustGPU(t, DefaultConfig())
	res, err := g.Run(testKernel(4, 8), 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles <= 0 {
		t.Error("no cycles elapsed")
	}
	// Baseline coalescing: 8 distinct blocks per load, 4 loads.
	if res.TotalTx != 32 {
		t.Errorf("TotalTx = %d, want 32", res.TotalTx)
	}
	if res.RoundTx[1] != 32 {
		t.Errorf("RoundTx[1] = %d, want 32", res.RoundTx[1])
	}
	if res.RoundWindow(1) <= 0 {
		t.Error("round 1 window empty")
	}
	if res.Warps[0].Finish <= 0 {
		t.Error("warp finish not recorded")
	}
}

func TestDeterminism(t *testing.T) {
	g := mustGPU(t, DefaultConfig())
	a, err := g.Run(testKernel(6, 6), 99)
	if err != nil {
		t.Fatal(err)
	}
	b, err := g.Run(testKernel(6, 6), 99)
	if err != nil {
		t.Fatal(err)
	}
	if a.Cycles != b.Cycles || a.TotalTx != b.TotalTx {
		t.Errorf("same seed diverged: %d/%d cycles, %d/%d txs", a.Cycles, b.Cycles, a.TotalTx, b.TotalTx)
	}
}

func TestSubwarpsIncreaseTransactionsAndTime(t *testing.T) {
	// FSS monotonicity end-to-end: more subwarps -> more transactions
	// -> more cycles (Figure 7a's trend).
	var prevTx uint64
	var prevCycles int64
	for _, m := range []int{1, 4, 16, 32} {
		cfg := DefaultConfig()
		cfg.Defense = mechanism.FSS(m)
		g := mustGPU(t, cfg)
		res, err := g.Run(testKernel(8, 8), 7)
		if err != nil {
			t.Fatal(err)
		}
		if res.TotalTx < prevTx {
			t.Errorf("FSS(%d): tx %d < previous %d", m, res.TotalTx, prevTx)
		}
		if res.Cycles < prevCycles {
			t.Errorf("FSS(%d): cycles %d < previous %d", m, res.Cycles, prevCycles)
		}
		prevTx, prevCycles = res.TotalTx, res.Cycles
	}
}

func TestCoalescingDisabledWorstCase(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Defense = mechanism.NoCoal()
	g := mustGPU(t, cfg)
	res, err := g.Run(testKernel(4, 8), 1)
	if err != nil {
		t.Fatal(err)
	}
	// 32 threads x 4 loads, no merging.
	if res.TotalTx != 128 {
		t.Errorf("TotalTx = %d, want 128", res.TotalTx)
	}

	base := mustGPU(t, DefaultConfig())
	bres, _ := base.Run(testKernel(4, 8), 1)
	if res.Cycles <= bres.Cycles {
		t.Errorf("disabled coalescing (%d cycles) not slower than baseline (%d)", res.Cycles, bres.Cycles)
	}
}

func TestPredicatedOffLoad(t *testing.T) {
	// A fully inactive load must not deadlock the warp.
	wp := &WarpProgram{ID: 0}
	addrs := make([]uint64, 32)
	active := make([]bool, 32) // all off
	wp.Instrs = []Instr{
		{Kind: Load, Addrs: addrs, Active: active},
		{Kind: ALU},
	}
	g := mustGPU(t, DefaultConfig())
	res, err := g.Run(&Kernel{Warps: []*WarpProgram{wp}, Label: "masked"}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalTx != 0 {
		t.Errorf("TotalTx = %d, want 0", res.TotalTx)
	}
}

func TestEndsOnALU(t *testing.T) {
	wp := &WarpProgram{ID: 0, Instrs: []Instr{{Kind: ALU}, {Kind: ALU}}}
	g := mustGPU(t, DefaultConfig())
	res, err := g.Run(&Kernel{Warps: []*WarpProgram{wp}, Label: "alu"}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles <= 0 {
		t.Error("ALU-only kernel did not run")
	}
}

func TestMultiWarpDistribution(t *testing.T) {
	// 30 warps over 15 SMs: all must complete; total tx = 30x one
	// warp's count.
	var warps []*WarpProgram
	for i := 0; i < 30; i++ {
		wp := &WarpProgram{ID: i}
		wp.Instrs = append(wp.Instrs, Instr{Kind: RoundMark, Round: 1})
		for l := 0; l < 4; l++ {
			addrs := make([]uint64, 32)
			for t := 0; t < 32; t++ {
				// Give each warp its own address region, spread over
				// partitions and banks (7 chunks per warp; 7 is coprime
				// to both the partition count and the bank count), so
				// the test exercises SM parallelism rather than DRAM
				// bank conflicts.
				addrs[t] = uint64(i)*7*256 + uint64(t%8)*64
			}
			wp.Instrs = append(wp.Instrs, Instr{Kind: Load, Addrs: addrs, Round: 1})
		}
		wp.Instrs = append(wp.Instrs, Instr{Kind: RoundMark, Round: 0})
		warps = append(warps, wp)
	}
	g := mustGPU(t, DefaultConfig())
	res, err := g.Run(&Kernel{Warps: warps, Label: "multi"}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalTx != 30*32 {
		t.Errorf("TotalTx = %d, want %d", res.TotalTx, 30*32)
	}
	for i := range res.Warps {
		if res.Warps[i].Finish <= 0 {
			t.Errorf("warp %d never finished", i)
		}
	}
	// Parallel warps on separate SMs must beat serial execution (30x a
	// single warp); DRAM bandwidth and row conflicts keep it well above
	// 1x.
	sres, _ := g.Run(testKernel(4, 8), 5)
	if res.Cycles >= sres.Cycles*30/2 {
		t.Errorf("30 warps took %d cycles vs single %d: no parallelism", res.Cycles, sres.Cycles)
	}
}

func TestRoundWindowsNested(t *testing.T) {
	// Two rounds in sequence: round 1 must end no later than round 2
	// starts.
	wp := &WarpProgram{ID: 0}
	addrs := make([]uint64, 32)
	for t := range addrs {
		addrs[t] = uint64(t) * 64
	}
	wp.Instrs = []Instr{
		{Kind: RoundMark, Round: 1},
		{Kind: Load, Addrs: addrs, Round: 1},
		{Kind: RoundMark, Round: 2},
		{Kind: Load, Addrs: addrs, Round: 2},
		{Kind: RoundMark, Round: 0},
	}
	g := mustGPU(t, DefaultConfig())
	res, err := g.Run(&Kernel{Warps: []*WarpProgram{wp}, Label: "rounds"}, 1)
	if err != nil {
		t.Fatal(err)
	}
	w := res.Warps[0]
	if w.RoundStart[1] < 0 || w.RoundEnd[1] < 0 || w.RoundStart[2] < 0 || w.RoundEnd[2] < 0 {
		t.Fatalf("round windows not recorded: %+v %+v", w.RoundStart[:3], w.RoundEnd[:3])
	}
	if w.RoundEnd[1] > w.RoundStart[2] {
		t.Errorf("round 1 ends at %d after round 2 starts at %d", w.RoundEnd[1], w.RoundStart[2])
	}
	if w.RoundCycles(1) <= 0 || w.RoundCycles(2) <= 0 {
		t.Error("round cycles not positive")
	}
	if res.RoundTx[1] != 32 || res.RoundTx[2] != 32 {
		t.Errorf("round tx: %d, %d; want 32, 32", res.RoundTx[1], res.RoundTx[2])
	}
}

func TestTimeTracksTransactions(t *testing.T) {
	// Core timing property for the attack: cycles grow with the number
	// of coalesced transactions (Figure 5's proportionality).
	g := mustGPU(t, DefaultConfig())
	var prev int64
	for _, spread := range []int{1, 4, 8, 16, 32} {
		res, err := g.Run(testKernel(16, spread), 3)
		if err != nil {
			t.Fatal(err)
		}
		if res.Cycles <= prev {
			t.Errorf("spread %d: cycles %d not greater than %d", spread, res.Cycles, prev)
		}
		prev = res.Cycles
	}
}

func TestRunSeedChangesPlanForRSS(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Defense = mechanism.RSSRTS(4)
	g := mustGPU(t, cfg)
	a, err := g.Run(testKernel(2, 8), 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := g.Run(testKernel(2, 8), 2)
	if err != nil {
		t.Fatal(err)
	}
	sameSizes := true
	for i := range a.Plan.Sizes {
		if a.Plan.Sizes[i] != b.Plan.Sizes[i] {
			sameSizes = false
		}
	}
	sameSID := true
	for i := range a.Plan.SID {
		if a.Plan.SID[i] != b.Plan.SID[i] {
			sameSID = false
		}
	}
	if sameSizes && sameSID {
		t.Error("different seeds produced identical RSS+RTS plans")
	}
}
