package icnt

import (
	"testing"

	"rcoal/internal/gpusim/mem"
)

func TestNewCrossbarValidation(t *testing.T) {
	if _, err := NewCrossbar(0, 8, 1); err == nil {
		t.Error("0 ports accepted")
	}
	if _, err := NewCrossbar(6, 0, 1); err == nil {
		t.Error("0 latency accepted")
	}
	x, err := NewCrossbar(6, 8, 1)
	if err != nil || x.Ports() != 6 {
		t.Fatalf("NewCrossbar: %v, ports %d", err, x.Ports())
	}
}

func TestLatency(t *testing.T) {
	x, _ := NewCrossbar(2, 8, 1)
	r := &mem.Request{ID: 1}
	x.Push(1, r, 100)
	for now := int64(100); now < 108; now++ {
		if got := x.Pop(1, now); got != nil {
			t.Fatalf("delivered at %d, before latency elapsed", now)
		}
	}
	if got := x.Pop(1, 108); got != r {
		t.Fatal("not delivered at latency boundary")
	}
}

func TestPortBandwidthOnePerCycle(t *testing.T) {
	x, _ := NewCrossbar(1, 1, 1)
	for i := 0; i < 4; i++ {
		x.Push(0, &mem.Request{ID: uint64(i)}, 0)
	}
	var got []uint64
	for now := int64(1); now <= 10; now++ {
		if r := x.Pop(0, now); r != nil {
			got = append(got, r.ID)
			// A second pop in the same cycle must fail.
			if x.Pop(0, now) != nil {
				t.Fatal("two deliveries in one cycle on one port")
			}
		}
	}
	if len(got) != 4 {
		t.Fatalf("delivered %d, want 4", len(got))
	}
	for i, id := range got {
		if id != uint64(i) {
			t.Fatalf("out-of-order delivery: %v", got)
		}
	}
}

func TestPortsIndependent(t *testing.T) {
	x, _ := NewCrossbar(2, 1, 1)
	x.Push(0, &mem.Request{ID: 0}, 0)
	x.Push(1, &mem.Request{ID: 1}, 0)
	a := x.Pop(0, 1)
	b := x.Pop(1, 1)
	if a == nil || b == nil {
		t.Fatal("ports not independent in the same cycle")
	}
}

func TestPeekDoesNotConsume(t *testing.T) {
	x, _ := NewCrossbar(1, 1, 1)
	x.Push(0, &mem.Request{ID: 7}, 0)
	if x.Peek(0, 0) {
		t.Error("peek true before latency")
	}
	if !x.Peek(0, 1) || !x.Peek(0, 1) {
		t.Error("peek consumed or false when deliverable")
	}
	if x.Pop(0, 1) == nil {
		t.Error("pop failed after peek")
	}
}

func TestIdleAndPending(t *testing.T) {
	x, _ := NewCrossbar(3, 2, 1)
	if !x.Idle() {
		t.Error("new crossbar not idle")
	}
	x.Push(2, &mem.Request{}, 0)
	if x.Idle() || x.Pending(2) != 1 || x.Pending(0) != 0 {
		t.Error("pending accounting wrong")
	}
	x.Pop(2, 5)
	if !x.Idle() || x.Delivered != 1 {
		t.Error("idle/delivered accounting wrong after drain")
	}
}

func TestPushBadPortPanics(t *testing.T) {
	x, _ := NewCrossbar(2, 1, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("push to invalid port did not panic")
		}
	}()
	x.Push(5, &mem.Request{}, 0)
}

// TestInjectDrop: the fault seam swallows exactly the nth push to the
// armed port; other packets and ports are untouched, and Reset re-arms
// the per-launch counter.
func TestInjectDrop(t *testing.T) {
	x, _ := NewCrossbar(2, 1, 1)
	x.InjectDrop(0, 2)
	for i := 0; i < 3; i++ {
		x.Push(0, &mem.Request{ID: uint64(i + 1)}, 0)
	}
	x.Push(1, &mem.Request{ID: 9}, 0) // other port: never dropped
	var got []uint64
	for now := int64(1); now < 10; now++ {
		if r := x.Pop(0, now); r != nil {
			got = append(got, r.ID)
		}
	}
	if len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Fatalf("port 0 delivered %v, want [1 3] (2 swallowed)", got)
	}
	if r := x.Pop(1, 5); r == nil || r.ID != 9 {
		t.Fatal("unarmed port lost its packet")
	}

	// Reset starts a fresh launch: the second push vanishes again.
	x.Reset()
	x.Push(0, &mem.Request{ID: 11}, 0)
	x.Push(0, &mem.Request{ID: 12}, 0)
	if n := x.Pending(0); n != 1 {
		t.Fatalf("after reset, pending = %d, want 1 (re-armed drop)", n)
	}
}
