package icnt

import (
	"reflect"
	"testing"

	"rcoal/internal/gpusim/mem"
	"rcoal/internal/rng"
)

type delivery struct {
	port  int
	id    uint64
	cycle int64
}

// drainAll pops every port each cycle from start until the crossbar is
// idle, recording the delivery sequence.
func drainAll(t *testing.T, x *Crossbar, start int64) []delivery {
	t.Helper()
	var out []delivery
	for now := start; now < start+10000; now++ {
		for p := 0; p < x.Ports(); p++ {
			if r := x.Pop(p, now); r != nil {
				out = append(out, delivery{port: p, id: r.ID, cycle: now})
			}
		}
		if x.Idle() {
			return out
		}
	}
	t.Fatal("crossbar did not drain")
	return nil
}

// TestSnapshotRestoreEquivalence is the crossbar's snapshot/restore
// property test: inject random traffic, pop part of it, snapshot,
// drain the original to completion (the mutation and the reference),
// then Restore into the same and a fresh crossbar and require the
// identical delivery tail.
func TestSnapshotRestoreEquivalence(t *testing.T) {
	r := rng.New(4242)
	for trial := 0; trial < 20; trial++ {
		ports := 2 + r.Intn(4)
		x, err := NewCrossbar(ports, 1+r.Intn(4), 1+r.Intn(2))
		if err != nil {
			t.Fatal(err)
		}
		n := 5 + r.Intn(30)
		for i := 0; i < n; i++ {
			req := &mem.Request{ID: uint64(i + 1)}
			x.Push(r.Intn(ports), req, int64(r.Intn(10)))
		}
		cut := int64(3 + r.Intn(10))
		for now := int64(0); now < cut; now++ {
			for p := 0; p < ports; p++ {
				x.Pop(p, now)
			}
		}

		var table []mem.Request
		idx := map[*mem.Request]int{}
		intern := func(q *mem.Request) int {
			if i, ok := idx[q]; ok {
				return i
			}
			table = append(table, *q)
			idx[q] = len(table) - 1
			return len(table) - 1
		}
		snap := x.Snapshot(intern)
		wantDelivered := x.Delivered

		wantTail := drainAll(t, x, cut)
		wantFinal := x.Delivered

		materialize := func() func(int) *mem.Request {
			fresh := make([]*mem.Request, len(table))
			return func(i int) *mem.Request {
				if fresh[i] == nil {
					p := new(mem.Request)
					*p = table[i]
					fresh[i] = p
				}
				return fresh[i]
			}
		}

		x.Restore(snap, materialize())
		if x.Delivered != wantDelivered {
			t.Fatalf("trial %d: restored Delivered = %d, want %d", trial, x.Delivered, wantDelivered)
		}
		if got := drainAll(t, x, cut); !reflect.DeepEqual(got, wantTail) {
			t.Fatalf("trial %d: same-crossbar restore tail differs\n got %v\nwant %v", trial, got, wantTail)
		}
		if x.Delivered != wantFinal {
			t.Fatalf("trial %d: same-crossbar final Delivered differs", trial)
		}

		fresh, err := NewCrossbar(ports, 1, 1)
		if err != nil {
			t.Fatal(err)
		}
		// Latency/occupancy live in config, not the snapshot; build the
		// fresh crossbar with matching parameters for the equivalence
		// check to hold.
		fresh.latency, fresh.occupancy = x.latency, x.occupancy
		fresh.Restore(snap, materialize())
		if got := drainAll(t, fresh, cut); !reflect.DeepEqual(got, wantTail) {
			t.Fatalf("trial %d: fresh-crossbar restore tail differs", trial)
		}
	}
}

// TestSnapshotRestorePortCountGuard pins the structural-mismatch
// panic.
func TestSnapshotRestorePortCountGuard(t *testing.T) {
	x, err := NewCrossbar(4, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	snap := x.Snapshot(func(*mem.Request) int { return 0 })
	other, err := NewCrossbar(3, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("restore across port counts did not panic")
		}
	}()
	other.Restore(snap, func(int) *mem.Request { return nil })
}
