// Package icnt models the on-chip interconnect of the simulated GPU:
// one crossbar per direction (SM→memory-partition and partition→SM,
// Table I) with a fixed pipeline latency and one packet per output
// port per cycle of delivery bandwidth, approximating the iSLIP-
// allocated crossbar of the baseline architecture with round-robin
// fairness per output port.
package icnt

import (
	"fmt"
	"math"

	"rcoal/internal/gpusim/mem"
	"rcoal/internal/metrics"
	"rcoal/internal/ringbuf"
)

// packet wraps a request with its earliest possible delivery cycle.
type packet struct {
	req     *mem.Request
	readyAt int64
}

// Crossbar is one direction of the interconnect. Packets pushed to an
// output port are delivered in order, no earlier than latency cycles
// after injection, at most one per cycle per port.
type Crossbar struct {
	latency   int64
	occupancy int64
	ports     []ringbuf.Ring[packet]
	// nextSlot[p] is the next cycle at which port p may deliver,
	// enforcing the per-packet port occupancy.
	nextSlot []int64

	// dropPort/dropNth/dropSeen are the fault-injection seam (see
	// InjectDrop): when dropNth > 0, the dropNth-th push toward
	// dropPort is silently swallowed.
	dropPort int
	dropNth  uint64
	dropSeen uint64

	// Stats
	Delivered uint64
	MaxQueue  int

	// DepthHist, when non-nil, observes a port's queued-packet count at
	// every injection (the depth including the new packet). Installed by
	// the simulator's metrics layer; the hot path pays one nil check.
	DepthHist *metrics.Histogram
}

// NewCrossbar builds a crossbar with the given number of output ports
// and pipeline latency in core cycles. Each packet occupies its output
// port for occupancy cycles (its flit count: a 64-byte data reply is
// two 32-byte flits, a request header one).
func NewCrossbar(ports int, latency, occupancy int) (*Crossbar, error) {
	if ports <= 0 {
		return nil, fmt.Errorf("icnt: ports %d must be positive", ports)
	}
	if latency < 1 {
		return nil, fmt.Errorf("icnt: latency %d must be >= 1", latency)
	}
	if occupancy < 1 {
		return nil, fmt.Errorf("icnt: occupancy %d must be >= 1", occupancy)
	}
	return &Crossbar{
		latency:   int64(latency),
		occupancy: int64(occupancy),
		ports:     make([]ringbuf.Ring[packet], ports),
		nextSlot:  make([]int64, ports),
	}, nil
}

// InjectDrop arms the crossbar's test-only fault seam
// (internal/faultinject): the nth push (1-based) toward output port
// dst is silently swallowed — the packet never arrives and no error is
// raised, modeling a lost reply. The push counter resets with the
// crossbar (Reset), so nth counts the current launch's pushes; the
// armed state itself survives Reset.
func (x *Crossbar) InjectDrop(dst int, nth uint64) {
	x.dropPort = dst
	x.dropNth = nth
	x.dropSeen = 0
}

// Push injects a request toward output port dst at cycle now.
func (x *Crossbar) Push(dst int, r *mem.Request, now int64) {
	if dst < 0 || dst >= len(x.ports) {
		panic(fmt.Sprintf("icnt: push to port %d of %d", dst, len(x.ports)))
	}
	if x.dropNth > 0 && dst == x.dropPort {
		x.dropSeen++
		if x.dropSeen == x.dropNth {
			return // fault injected: the packet vanishes
		}
	}
	x.ports[dst].Push(packet{req: r, readyAt: now + x.latency})
	if n := x.ports[dst].Len(); n > x.MaxQueue {
		x.MaxQueue = n
	}
	if x.DepthHist != nil {
		x.DepthHist.Observe(int64(x.ports[dst].Len()))
	}
}

// Pop returns at most one request deliverable at port dst on cycle
// now, honoring in-order delivery, pipeline latency, and port
// bandwidth. It returns nil when nothing is deliverable.
func (x *Crossbar) Pop(dst int, now int64) *mem.Request {
	q := &x.ports[dst]
	if q.Len() == 0 {
		return nil
	}
	if q.Peek().readyAt > now || x.nextSlot[dst] > now {
		return nil
	}
	head := q.Pop()
	x.nextSlot[dst] = now + x.occupancy
	x.Delivered++
	return head.req
}

// Peek reports whether port dst could deliver at cycle now without
// consuming the packet (used for back-pressure checks).
func (x *Crossbar) Peek(dst int, now int64) bool {
	q := &x.ports[dst]
	return q.Len() > 0 && q.Peek().readyAt <= now && x.nextSlot[dst] <= now
}

// NextDeliverable returns the earliest cycle at which port dst could
// deliver its head packet, or math.MaxInt64 when the port is empty.
// Packets are queued in injection order, so the head carries the
// minimum readyAt; the port's bandwidth slot can only push delivery
// later. This is the port's event horizon for fast-forwarding: no
// cycle strictly before the returned value can observe a delivery.
func (x *Crossbar) NextDeliverable(dst int) int64 {
	q := &x.ports[dst]
	if q.Len() == 0 {
		return math.MaxInt64
	}
	t := q.Peek().readyAt
	if s := x.nextSlot[dst]; s > t {
		t = s
	}
	return t
}

// Pending returns the number of packets queued for port dst.
func (x *Crossbar) Pending(dst int) int { return x.ports[dst].Len() }

// Idle reports whether no packets are queued on any port.
func (x *Crossbar) Idle() bool {
	for i := range x.ports {
		if x.ports[i].Len() > 0 {
			return false
		}
	}
	return true
}

// Ports returns the number of output ports.
func (x *Crossbar) Ports() int { return len(x.ports) }

// Snapshot is a crossbar's complete mid-launch state, captured for
// copy-on-write prefix forking. Queued packets reference requests as
// indices into the caller's interned request table, so a snapshot
// stays valid — and shareable across forks — after the live request
// arena is reused.
type Snapshot struct {
	ports     [][]snapPacket
	nextSlot  []int64
	delivered uint64
	maxQueue  int
	dropSeen  uint64
}

type snapPacket struct {
	req     int
	readyAt int64
}

// Snapshot captures the crossbar's state; intern maps each in-flight
// *mem.Request to a stable index in the caller's request table.
func (x *Crossbar) Snapshot(intern func(*mem.Request) int) *Snapshot {
	s := &Snapshot{
		ports:     make([][]snapPacket, len(x.ports)),
		nextSlot:  append([]int64(nil), x.nextSlot...),
		delivered: x.Delivered,
		maxQueue:  x.MaxQueue,
		dropSeen:  x.dropSeen,
	}
	var scratch []packet
	for i := range x.ports {
		scratch = x.ports[i].Snapshot(scratch[:0])
		for _, p := range scratch {
			s.ports[i] = append(s.ports[i], snapPacket{req: intern(p.req), readyAt: p.readyAt})
		}
	}
	return s
}

// Restore rewinds the crossbar to the snapshot, materializing queued
// packets' requests through req (interned index → fresh live request).
// The crossbar must have the snapshot's port count, which
// fork-compatibility checks guarantee upstream.
func (x *Crossbar) Restore(s *Snapshot, req func(int) *mem.Request) {
	if len(x.ports) != len(s.ports) {
		panic(fmt.Sprintf("icnt: restore across port counts (%d != %d)", len(x.ports), len(s.ports)))
	}
	for i := range x.ports {
		x.ports[i].Reset()
		for _, p := range s.ports[i] {
			x.ports[i].Push(packet{req: req(p.req), readyAt: p.readyAt})
		}
	}
	copy(x.nextSlot, s.nextSlot)
	x.Delivered = s.delivered
	x.MaxQueue = s.maxQueue
	x.dropSeen = s.dropSeen
}

// Reset drops all queued packets and bandwidth state, keeping the port
// buffers for reuse, so one crossbar can serve many launches without
// reallocating.
func (x *Crossbar) Reset() {
	for i := range x.ports {
		x.ports[i].Reset()
		x.nextSlot[i] = 0
	}
	x.Delivered = 0
	x.MaxQueue = 0
	x.dropSeen = 0
}
