package cache

import (
	"testing"
	"testing/quick"

	"rcoal/internal/rng"
)

func testConfig() Config {
	return Config{SizeBytes: 4096, LineBytes: 64, Ways: 4, HitLatency: 4}
}

func TestConfigValidate(t *testing.T) {
	if err := testConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Config{
		{SizeBytes: 0, LineBytes: 64, Ways: 4, HitLatency: 1},
		{SizeBytes: 4096, LineBytes: 100, Ways: 4, HitLatency: 1},
		{SizeBytes: 4096, LineBytes: 64, Ways: 7, HitLatency: 1},
		{SizeBytes: 4096, LineBytes: 64, Ways: 4, HitLatency: 0},
	}
	for i, c := range bad {
		if c.Validate() == nil {
			t.Errorf("bad config %d validated", i)
		}
	}
	if got := testConfig().Sets(); got != 16 {
		t.Errorf("Sets = %d, want 16", got)
	}
}

func TestHitAfterFill(t *testing.T) {
	c, err := New(testConfig(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if hit, _, _ := c.Access(42); hit {
		t.Error("cold access hit")
	}
	if hit, _, _ := c.Access(42); !hit {
		t.Error("second access missed")
	}
	if !c.Contains(42) || c.Contains(43) {
		t.Error("Contains wrong")
	}
	if c.Stats.Hits != 1 || c.Stats.Misses != 1 {
		t.Errorf("stats %+v", c.Stats)
	}
}

func TestLRUEviction(t *testing.T) {
	// 4-way set: fill 4 conflicting lines, touch the first, insert a
	// fifth — the least recently used (second) must be evicted.
	c, _ := New(testConfig(), 0)
	sets := uint64(testConfig().Sets())
	blocks := []uint64{0, sets, 2 * sets, 3 * sets} // same set 0
	for _, b := range blocks {
		c.Access(b)
	}
	c.Access(blocks[0]) // refresh
	hit, victim, evicted := c.Access(4 * sets)
	if hit || !evicted {
		t.Fatalf("expected evicting miss, hit=%v evicted=%v", hit, evicted)
	}
	if victim != blocks[1] {
		t.Errorf("evicted %d, want %d (LRU)", victim, blocks[1])
	}
	if !c.Contains(blocks[0]) {
		t.Error("refreshed line evicted")
	}
}

func TestWorkingSetFits(t *testing.T) {
	// A working set within capacity eventually hits 100%.
	c, _ := New(testConfig(), 0)
	for round := 0; round < 3; round++ {
		for b := uint64(0); b < 64; b++ { // 64 lines = capacity
			c.Access(b)
		}
	}
	if c.Stats.Evictions != 0 {
		t.Errorf("evictions %d in a fitting working set", c.Stats.Evictions)
	}
	if got := c.Stats.HitRate(); got < 0.6 {
		t.Errorf("hit rate %v, want >= 2/3", got)
	}
}

func TestHitRateEmpty(t *testing.T) {
	if (Stats{}).HitRate() != 0 {
		t.Error("empty stats hit rate not 0")
	}
}

func TestRandomizedIndexDiffersAcrossKeys(t *testing.T) {
	cfg := testConfig()
	cfg.RandomizeIndex = true
	a, _ := New(cfg, 111)
	b, _ := New(cfg, 222)
	differ := false
	for blk := uint64(0); blk < 256; blk++ {
		if a.setOf(blk) != b.setOf(blk) {
			differ = true
			break
		}
	}
	if !differ {
		t.Error("different keys produced identical index mappings")
	}
	// Identity mapping differs from randomized.
	id, _ := New(testConfig(), 0)
	differ = false
	for blk := uint64(0); blk < 256; blk++ {
		if a.setOf(blk) != id.setOf(blk) {
			differ = true
			break
		}
	}
	if !differ {
		t.Error("randomized mapping equals identity")
	}
}

func TestRandomizedIndexStillCaches(t *testing.T) {
	cfg := testConfig()
	cfg.RandomizeIndex = true
	c, _ := New(cfg, 99)
	c.Access(7)
	if hit, _, _ := c.Access(7); !hit {
		t.Error("randomized cache lost its own line")
	}
}

func TestRandomizedIndexSpreadsSets(t *testing.T) {
	// The keyed hash must not collapse blocks into few sets.
	cfg := testConfig()
	cfg.RandomizeIndex = true
	c, _ := New(cfg, 12345)
	used := map[int]bool{}
	for blk := uint64(0); blk < 512; blk++ {
		used[c.setOf(blk)] = true
	}
	if len(used) < cfg.Sets() {
		t.Errorf("hash uses only %d/%d sets", len(used), cfg.Sets())
	}
}

func TestAccessInvariants(t *testing.T) {
	c, _ := New(testConfig(), 0)
	src := rng.New(5)
	f := func(n uint16) bool {
		blk := uint64(src.Intn(256))
		hitBefore := c.Contains(blk)
		hit, _, _ := c.Access(blk)
		// Contains must predict Access, and the block must be resident
		// afterwards.
		return hit == hitBefore && c.Contains(blk)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}
