// Package cache models the GPU cache hierarchy the RCoal paper's
// methodology disables: set-associative L1 (per SM) and L2 (per memory
// partition) caches with LRU replacement.
//
// Two roles in this repository:
//
//   - ablation: the paper disables L1/L2 and MSHR merging to isolate
//     the coalescing channel (§VII); enabling the caches here lets the
//     experiments quantify how much of the timing channel survives a
//     realistic hierarchy, and
//   - future work #2: the paper proposes "randomization at all levels
//     of the memory hierarchy" — the cache supports a per-launch
//     randomized set-index hash (RandomizeIndex), the cache-level
//     analogue of RTS.
package cache

import "fmt"

// Config describes one cache.
type Config struct {
	// SizeBytes is the total capacity.
	SizeBytes int
	// LineBytes is the line size; the coalescing block (64 B) in this
	// repository.
	LineBytes int
	// Ways is the set associativity.
	Ways int
	// HitLatency is the access latency in core cycles.
	HitLatency int
	// RandomizeIndex enables the per-launch randomized set-index hash
	// (the future-work defense): the mapping from block to set is
	// keyed by a launch-specific random value, so an attacker cannot
	// predict set contention across launches.
	RandomizeIndex bool
}

// Validate checks structural sanity.
func (c Config) Validate() error {
	switch {
	case c.SizeBytes <= 0:
		return fmt.Errorf("cache: size %d must be positive", c.SizeBytes)
	case c.LineBytes <= 0 || c.SizeBytes%c.LineBytes != 0:
		return fmt.Errorf("cache: line size %d must divide size %d", c.LineBytes, c.SizeBytes)
	case c.Ways <= 0 || (c.SizeBytes/c.LineBytes)%c.Ways != 0:
		return fmt.Errorf("cache: %d ways must divide %d lines", c.Ways, c.SizeBytes/c.LineBytes)
	case c.HitLatency < 1:
		return fmt.Errorf("cache: hit latency %d must be >= 1", c.HitLatency)
	}
	return nil
}

// Sets returns the number of sets.
func (c Config) Sets() int { return c.SizeBytes / c.LineBytes / c.Ways }

type line struct {
	block uint64
	valid bool
	// lastUse orders LRU within the set.
	lastUse uint64
}

// Stats counts cache events.
type Stats struct {
	Hits, Misses, Evictions uint64
}

// HitRate returns hits / (hits + misses), or 0 if never accessed.
func (s Stats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// Cache is one set-associative LRU cache instance.
type Cache struct {
	cfg   Config
	sets  [][]line
	clock uint64
	key   uint64 // set-index hash key (0 when not randomized)

	Stats Stats
}

// New builds a cache. hashKey seeds the randomized index; it is
// ignored unless cfg.RandomizeIndex is set.
func New(cfg Config, hashKey uint64) (*Cache, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	sets := make([][]line, cfg.Sets())
	for i := range sets {
		sets[i] = make([]line, cfg.Ways)
	}
	c := &Cache{cfg: cfg, sets: sets}
	if cfg.RandomizeIndex {
		// Never zero, so randomized mode always differs from identity.
		c.key = hashKey | 1
	}
	return c, nil
}

// setOf maps a block to its set, optionally through the keyed hash.
func (c *Cache) setOf(block uint64) int {
	if c.key != 0 {
		// A fast invertible mix (splitmix-style) keyed per launch: the
		// set index becomes unpredictable without the key.
		x := block ^ c.key
		x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
		x ^= x >> 27
		block = x
	}
	return int(block % uint64(len(c.sets)))
}

// Access looks up a block, filling it on miss. It reports whether the
// access hit and, if a valid victim was evicted, its block key.
func (c *Cache) Access(block uint64) (hit bool, victim uint64, evicted bool) {
	c.clock++
	set := c.sets[c.setOf(block)]
	lru := 0
	for i := range set {
		if set[i].valid && set[i].block == block {
			set[i].lastUse = c.clock
			c.Stats.Hits++
			return true, 0, false
		}
		if !set[i].valid {
			lru = i // prefer an invalid slot
		} else if set[lru].valid && set[i].lastUse < set[lru].lastUse {
			lru = i
		}
	}
	c.Stats.Misses++
	if set[lru].valid {
		victim, evicted = set[lru].block, true
		c.Stats.Evictions++
	}
	set[lru] = line{block: block, valid: true, lastUse: c.clock}
	return false, victim, evicted
}

// Reset invalidates every line and clears the LRU clock and
// statistics, re-keying the randomized index with hashKey (ignored
// unless the cache was configured with RandomizeIndex). It keeps the
// set storage, so one cache can serve many launches without
// reallocating.
func (c *Cache) Reset(hashKey uint64) {
	for _, set := range c.sets {
		for i := range set {
			set[i] = line{}
		}
	}
	c.clock = 0
	c.Stats = Stats{}
	if c.cfg.RandomizeIndex {
		c.key = hashKey | 1
	}
}

// Contains reports whether the block is resident, without touching
// LRU state or statistics.
func (c *Cache) Contains(block uint64) bool {
	set := c.sets[c.setOf(block)]
	for i := range set {
		if set[i].valid && set[i].block == block {
			return true
		}
	}
	return false
}

// HitLatency returns the configured hit latency.
func (c *Cache) HitLatency() int { return c.cfg.HitLatency }
