package gpusim

import (
	"fmt"

	"rcoal/internal/core"
	"rcoal/internal/gpusim/cache"
	"rcoal/internal/gpusim/dram"
	"rcoal/internal/metrics"
)

// MaxRounds bounds the AES round tags the stats arrays index
// (AES-256 has 14 rounds).
const MaxRounds = 15

// WarpStats records one warp's execution: per-round cycle windows and
// per-round coalesced transaction counts.
type WarpStats struct {
	// RoundStart[r] / RoundEnd[r] bound round r's execution in core
	// cycles; -1 if the round never ran.
	RoundStart [MaxRounds + 1]int64
	RoundEnd   [MaxRounds + 1]int64
	// RoundTx[r] is the number of coalesced transactions issued for
	// round r; index 0 collects out-of-round traffic (plaintext loads,
	// ciphertext stores).
	RoundTx [MaxRounds + 1]int
	// SharedPasses[r] sums the bank-conflict serialization passes of
	// the round's shared-memory accesses.
	SharedPasses [MaxRounds + 1]int
	// TotalTx is the warp's total transaction count.
	TotalTx int
	// Finish is the cycle the warp completed (last reply received).
	Finish int64
}

// RoundCycles returns the cycle window of round r, or 0 if it did not
// run.
func (w *WarpStats) RoundCycles(r int) int64 {
	if r < 0 || r > MaxRounds || w.RoundStart[r] < 0 || w.RoundEnd[r] < 0 {
		return 0
	}
	return w.RoundEnd[r] - w.RoundStart[r]
}

// Result is the outcome of one kernel launch.
type Result struct {
	// Cycles is the total execution time in core cycles.
	Cycles int64
	// Warps holds per-warp statistics, indexed like Kernel.Warps.
	Warps []WarpStats
	// TotalTx is the total number of memory transactions (the paper's
	// "data movement" / "total memory accesses" metric).
	TotalTx uint64
	// RoundTx aggregates transactions per round over all warps.
	RoundTx [MaxRounds + 1]uint64
	// Plan is the subwarp plan the launch drew (one per launch, set by
	// the hardware logic at application start per Section IV-D).
	Plan core.Plan
	// DRAM holds per-partition controller statistics.
	DRAM []dram.Stats
	// L1 holds per-SM L1 statistics when the L1 is enabled.
	L1 []cache.Stats
	// L2 holds per-partition L2 statistics when the L2 is enabled.
	L2 []cache.Stats
	// MSHRMerges counts loads absorbed by MSHR request merging.
	MSHRMerges uint64
	// ALUOps counts warp-wide arithmetic instructions issued (for the
	// energy model).
	ALUOps uint64
	// SharedPasses aggregates per-round shared-memory bank-conflict
	// passes over all warps — the observable of the bank-conflict
	// timing channel.
	SharedPasses [MaxRounds + 1]uint64
	// Metrics is the launch's detached metrics snapshot when
	// Config.Metrics is installed; nil otherwise (the default), so
	// Results from metrics-free runs stay byte-comparable.
	Metrics *metrics.Snapshot `json:",omitempty"`
}

// RoundWindow returns the kernel-level cycle window of round r: from
// the earliest warp entering it to the latest warp leaving it. This is
// the "last round execution time" the attacker measures when r is the
// final round.
func (r *Result) RoundWindow(round int) int64 {
	if round < 0 || round > MaxRounds {
		panic(fmt.Sprintf("gpusim: round %d out of range", round))
	}
	var lo, hi int64 = -1, -1
	for i := range r.Warps {
		s, e := r.Warps[i].RoundStart[round], r.Warps[i].RoundEnd[round]
		if s < 0 || e < 0 {
			continue
		}
		if lo < 0 || s < lo {
			lo = s
		}
		if e > hi {
			hi = e
		}
	}
	if lo < 0 {
		return 0
	}
	return hi - lo
}

// LastRoundTx returns the total coalesced accesses of round `round`
// across all warps — the quantity the attacker's estimators target.
func (r *Result) LastRoundTx(round int) uint64 {
	if round < 0 || round > MaxRounds {
		panic(fmt.Sprintf("gpusim: round %d out of range", round))
	}
	return r.RoundTx[round]
}
