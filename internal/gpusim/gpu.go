package gpusim

import (
	"fmt"

	"rcoal/internal/core"
	"rcoal/internal/gpusim/cache"
	"rcoal/internal/gpusim/dram"
	"rcoal/internal/gpusim/icnt"
	"rcoal/internal/gpusim/mem"
	"rcoal/internal/rng"
)

// maxSimCycles aborts runaway simulations (deadlock guard).
const maxSimCycles = 1 << 28

// GPU is a configured simulator instance. It is stateless between
// runs; Run builds fresh runtime state per launch, so a GPU can be
// shared sequentially across experiments. It is not safe for
// concurrent use (Run reuses scratch buffers) — create one GPU per
// goroutine.
type GPU struct {
	cfg    Config
	timing dram.Timing // scaled into core-clock domain

	// scratch buffers for the memory-issue hot path; Run is
	// sequential, so sharing them across instructions is safe.
	blockScratch []uint64
	txScratch    []uint64
}

// New validates the configuration and returns a simulator.
func New(cfg Config) (*GPU, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.Coalescing.WarpSize == 0 {
		cfg.Coalescing.WarpSize = cfg.WarpSize
	}
	return &GPU{cfg: cfg, timing: cfg.DRAMTiming.Scale(cfg.clockRatio())}, nil
}

// Config returns the configuration the GPU was built with.
func (g *GPU) Config() Config { return g.cfg }

// warpRun is the runtime state of one warp.
type warpRun struct {
	prog     *WarpProgram
	pc       int
	readyAt  int64
	pending  int  // outstanding memory replies
	blocked  bool // waiting on memory
	curRound int
	done     bool
	plan     core.Plan // this warp's subwarp plan
	stats    WarpStats
}

// localReply is an L1 hit completing after the hit latency.
type localReply struct {
	at   int64
	warp int
}

// smState is the runtime state of one SM: its resident warps, the
// per-scheduler warp subsets, the LD/ST unit's pending transaction
// queue (the PRT drain queue of Figure 11), the optional L1, and the
// optional MSHR merge table.
type smState struct {
	warps    []*warpRun
	sched    [][]*warpRun // per-scheduler warp subsets
	schedPtr []int
	injectQ  []*mem.Request
	l1       *cache.Cache
	replies  []localReply
	// mshr maps an outstanding block to the warp ids piggybacked on
	// the primary request (the primary's warp id is in the request).
	mshr map[uint64][]int
}

// partState is one memory partition: the optional L2 slice in front of
// the DRAM controller, plus its delayed hit replies.
type partState struct {
	ctrl    *dram.Controller
	l2      *cache.Cache
	replies []*mem.Request // L2 hits, delivered when Done <= now
}

// runState bundles one launch's mutable state.
type runState struct {
	runs      []*warpRun
	sms       []*smState
	parts     []*partState
	toMem     *icnt.Crossbar
	toSM      *icnt.Crossbar
	res       *Result
	reqID     uint64
	remaining int
	basePlan  core.Plan // whole-warp plan for non-vulnerable rounds
	roundMask [MaxRounds + 1]bool
	selective bool
}

// Run executes the kernel to completion and returns its statistics.
// The seed drives the launch's hardware randomness: the subwarp plans
// for RSS/RTS policies and the cache index keys when randomized.
// Identical (kernel, seed) pairs produce identical results.
func (g *GPU) Run(k *Kernel, seed uint64) (*Result, error) {
	if err := k.Validate(g.cfg.WarpSize); err != nil {
		return nil, err
	}
	st, err := g.setup(k, seed)
	if err != nil {
		return nil, err
	}

	for now := int64(0); ; now++ {
		if now > maxSimCycles {
			return nil, fmt.Errorf("gpusim: kernel %q exceeded %d cycles (deadlock?)", k.Label, maxSimCycles)
		}
		g.stepSMs(st, now)
		g.stepMemory(st, now)
		if st.remaining == 0 && st.toMem.Idle() && st.toSM.Idle() && st.idleMemory() && st.idleSMs() {
			st.res.Cycles = now
			break
		}
	}

	for _, p := range st.parts {
		st.res.DRAM = append(st.res.DRAM, p.ctrl.Stats)
		if p.l2 != nil {
			st.res.L2 = append(st.res.L2, p.l2.Stats)
		}
	}
	for _, sm := range st.sms {
		if sm.l1 != nil {
			st.res.L1 = append(st.res.L1, sm.l1.Stats)
		}
	}
	return st.res, nil
}

// setup builds the launch state: warps on SMs, plans, interconnect,
// caches, and memory partitions.
func (g *GPU) setup(k *Kernel, seed uint64) (*runState, error) {
	// The subwarp-id mapping is set by the hardware logic at the
	// beginning of the execution and stays fixed for the launch
	// (Section IV-D): one plan shared by every warp of the launch,
	// unless PlanPerWarp asks for per-warp randomization.
	hwRNG := rng.New(seed).Split(0xC0A1) // hardware stream; attackers never see it
	launchPlan := g.cfg.Coalescing.NewPlan(hwRNG)

	st := &runState{
		res: &Result{Plan: launchPlan, Warps: make([]WarpStats, len(k.Warps))},
	}
	st.selective = len(g.cfg.VulnerableRounds) > 0
	if st.selective {
		wholeWarp := core.Baseline()
		wholeWarp.WarpSize = g.cfg.WarpSize
		st.basePlan = wholeWarp.NewPlan(hwRNG)
		for _, r := range g.cfg.VulnerableRounds {
			st.roundMask[r] = true
		}
	}

	st.sms = make([]*smState, g.cfg.NumSMs)
	cacheRNG := rng.New(seed).Split(0xCAC8E)
	for i := range st.sms {
		sm := &smState{schedPtr: make([]int, g.cfg.SchedulersPerSM)}
		if g.cfg.L1Enabled {
			cfg := g.cfg.L1
			cfg.RandomizeIndex = cfg.RandomizeIndex || g.cfg.CacheRandomized
			l1, err := cache.New(cfg, cacheRNG.Uint64())
			if err != nil {
				return nil, err
			}
			sm.l1 = l1
		}
		if g.cfg.MSHREnabled {
			sm.mshr = make(map[uint64][]int)
		}
		st.sms[i] = sm
	}

	for i, wp := range k.Warps {
		w := &warpRun{prog: wp, plan: launchPlan}
		if g.cfg.PlanPerWarp {
			w.plan = g.cfg.Coalescing.NewPlan(hwRNG)
		}
		for r := 0; r <= MaxRounds; r++ {
			w.stats.RoundStart[r] = -1
			w.stats.RoundEnd[r] = -1
		}
		st.sms[i%len(st.sms)].warps = append(st.sms[i%len(st.sms)].warps, w)
		st.runs = append(st.runs, w)
	}
	for _, sm := range st.sms {
		sm.sched = make([][]*warpRun, g.cfg.SchedulersPerSM)
		for i, w := range sm.warps {
			s := i % g.cfg.SchedulersPerSM
			sm.sched[s] = append(sm.sched[s], w)
		}
	}

	var err error
	st.toMem, err = icnt.NewCrossbar(g.cfg.AddressMap.Partitions, g.cfg.ICNTLatency, 1)
	if err != nil {
		return nil, err
	}
	st.toSM, err = icnt.NewCrossbar(g.cfg.NumSMs, g.cfg.ICNTLatency, mem.BlockBytes/g.cfg.FlitBytes)
	if err != nil {
		return nil, err
	}
	st.parts = make([]*partState, g.cfg.AddressMap.Partitions)
	for i := range st.parts {
		p := &partState{}
		p.ctrl, err = dram.NewController(g.timing, g.cfg.AddressMap, g.cfg.DRAMQueueCap)
		if err != nil {
			return nil, err
		}
		if g.cfg.L2Enabled {
			cfg := g.cfg.L2
			cfg.RandomizeIndex = cfg.RandomizeIndex || g.cfg.CacheRandomized
			p.l2, err = cache.New(cfg, cacheRNG.Uint64())
			if err != nil {
				return nil, err
			}
		}
		st.parts[i] = p
	}
	st.remaining = len(st.runs)
	return st, nil
}

// stepSMs advances every SM by one cycle: deliver replies, drain the
// LD/ST injection queues, and let the schedulers issue.
func (g *GPU) stepSMs(st *runState, now int64) {
	for smID, sm := range st.sms {
		// 1a. L1-hit replies maturing this cycle.
		if len(sm.replies) > 0 {
			kept := sm.replies[:0]
			for _, lr := range sm.replies {
				if lr.at <= now {
					g.settle(st, st.runs[lr.warp], now)
				} else {
					kept = append(kept, lr)
				}
			}
			sm.replies = kept
		}

		// 1b. Memory replies from the interconnect (one per cycle:
		// return-port bandwidth).
		if r := st.toSM.Pop(smID, now); r != nil {
			if sm.l1 != nil && r.Kind == mem.Load {
				sm.l1.Access(mem.BlockOf(r.Addr)) // fill
			}
			g.settle(st, st.runs[r.Warp], now)
			if sm.mshr != nil {
				block := mem.BlockOf(r.Addr)
				if waiters, ok := sm.mshr[block]; ok {
					for _, waiter := range waiters {
						g.settle(st, st.runs[waiter], now)
					}
					delete(sm.mshr, block)
				}
			}
		}

		// 2. Drain the LD/ST injection queue into the interconnect.
		for n := 0; n < g.cfg.MCURate && len(sm.injectQ) > 0; n++ {
			req := sm.injectQ[0]
			sm.injectQ = sm.injectQ[1:]
			req.Issued = now
			st.toMem.Push(g.cfg.AddressMap.Decode(req.Addr).Partition, req, now)
		}

		// 3. Warp schedulers issue.
		for s := 0; s < g.cfg.SchedulersPerSM; s++ {
			g.issueOne(st, sm, smID, s, now)
		}
	}
}

// settle delivers one memory reply to a warp, retiring the warp if it
// has run off its program.
func (g *GPU) settle(st *runState, w *warpRun, now int64) {
	if g.cfg.Trace != nil {
		g.cfg.Trace.Emit(Event{Cycle: now, Kind: EvReply, Warp: w.prog.ID})
	}
	w.pending--
	if w.pending < 0 {
		panic(fmt.Sprintf("gpusim: warp %d reply underflow", w.prog.ID))
	}
	if w.pending == 0 && w.blocked {
		w.blocked = false
		w.readyAt = now + 1
		if w.pc >= len(w.prog.Instrs) {
			g.retire(st, w, now)
		}
	}
}

// retire finishes a warp and emits its trace event.
func (g *GPU) retire(st *runState, w *warpRun, now int64) {
	w.finish(now, &st.res.Warps[w.prog.ID])
	st.remaining--
	if g.cfg.Trace != nil {
		g.cfg.Trace.Emit(Event{Cycle: now, Kind: EvRetire, Warp: w.prog.ID})
	}
}

// stepMemory advances every partition: accept a request from the
// interconnect (through the L2 when enabled), tick the DRAM
// controller, and send replies back.
func (g *GPU) stepMemory(st *runState, now int64) {
	for pid, p := range st.parts {
		// L2-hit replies maturing this cycle.
		if len(p.replies) > 0 {
			kept := p.replies[:0]
			for _, r := range p.replies {
				if r.Done <= now {
					st.toSM.Push(r.SM, r, now)
				} else {
					kept = append(kept, r)
				}
			}
			p.replies = kept
		}

		if p.ctrl.CanAccept() {
			if r := st.toMem.Pop(pid, now); r != nil {
				if p.l2 != nil && r.Kind == mem.Load {
					if hit, _, _ := p.l2.Access(mem.BlockOf(r.Addr)); hit {
						r.Done = now + int64(p.l2.HitLatency())
						p.replies = append(p.replies, r)
						goto tick
					}
				}
				p.ctrl.Push(r)
			}
		}
	tick:
		for _, done := range p.ctrl.Tick(now) {
			done.Done = now
			st.toSM.Push(done.SM, done, now)
		}
	}
}

func (st *runState) idleMemory() bool {
	for _, p := range st.parts {
		if !p.ctrl.Idle() || len(p.replies) > 0 {
			return false
		}
	}
	return true
}

func (st *runState) idleSMs() bool {
	for _, sm := range st.sms {
		if len(sm.injectQ) > 0 || len(sm.replies) > 0 {
			return false
		}
	}
	return true
}

func (w *warpRun) finish(now int64, stats *WarpStats) {
	w.done = true
	if w.curRound > 0 && w.stats.RoundEnd[w.curRound] < 0 {
		w.stats.RoundEnd[w.curRound] = now
	}
	w.stats.Finish = now
	*stats = w.stats
}

// issueOne lets scheduler s of the SM issue for at most one warp.
// Under LRR the scan starts after the last issued warp; under GTO the
// scheduler greedily retries the warp it issued last and otherwise
// falls back to the oldest ready warp (subset order encodes age).
func (g *GPU) issueOne(st *runState, sm *smState, smID, s int, now int64) {
	mine := sm.sched[s]
	nLocal := len(mine)
	if nLocal == 0 {
		return
	}
	start := sm.schedPtr[s]
	if g.cfg.Scheduler == GTO {
		prev := start - 1
		if prev < 0 {
			prev = nLocal - 1
		}
		if g.tryIssue(st, sm, smID, mine[prev], now) {
			sm.schedPtr[s] = prev + 1
			if sm.schedPtr[s] >= nLocal {
				sm.schedPtr[s] = 0
			}
			return
		}
		start = 0
	}
	for probe := 0; probe < nLocal; probe++ {
		idx := start + probe
		if idx >= nLocal {
			idx -= nLocal
		}
		if g.tryIssue(st, sm, smID, mine[idx], now) {
			sm.schedPtr[s] = (idx + 1) % nLocal
			return
		}
	}
}

// tryIssue attempts to issue one instruction for the warp, reporting
// whether the warp consumed the issue slot.
func (g *GPU) tryIssue(st *runState, sm *smState, smID int, w *warpRun, now int64) bool {
	if w.done || w.blocked || w.readyAt > now {
		return false
	}
	if w.pc >= len(w.prog.Instrs) {
		// Ran off the end on a non-memory instruction: retire.
		if w.pending == 0 {
			g.retire(st, w, now)
		} else {
			w.blocked = true
		}
		return false
	}

	// Consume zero-cost round markers eagerly.
	for w.pc < len(w.prog.Instrs) && w.prog.Instrs[w.pc].Kind == RoundMark {
		ins := &w.prog.Instrs[w.pc]
		if w.curRound > 0 && w.stats.RoundEnd[w.curRound] < 0 {
			w.stats.RoundEnd[w.curRound] = now
		}
		if ins.Round > 0 && ins.Round <= MaxRounds {
			if w.stats.RoundStart[ins.Round] < 0 {
				w.stats.RoundStart[ins.Round] = now
			}
			w.curRound = ins.Round
		} else {
			w.curRound = 0
		}
		w.pc++
	}
	if w.pc >= len(w.prog.Instrs) {
		if w.pending == 0 {
			g.retire(st, w, now)
		} else {
			w.blocked = true
		}
		return true
	}

	ins := &w.prog.Instrs[w.pc]
	if g.cfg.Trace != nil {
		g.cfg.Trace.Emit(Event{Cycle: now, Kind: EvIssue, SM: smID, Warp: w.prog.ID, PC: w.pc, Round: ins.Round})
	}
	switch ins.Kind {
	case ALU:
		lat := int64(ins.Latency)
		if lat <= 0 {
			lat = int64(g.cfg.ALULatency)
		}
		if issue := g.cfg.issueCycles(); lat < issue {
			lat = issue
		}
		w.readyAt = now + lat
		w.pc++
		st.res.ALUOps++
	case Load, Store:
		g.issueMemory(st, sm, smID, w, ins, now)
		w.pc++
	case SharedLoad:
		g.issueShared(st, w, ins, now)
		w.pc++
	}
	return true
}

// issueShared models a shared-memory access: requests to the same bank
// for different words serialize into multiple passes (same-word
// requests broadcast). The warp stalls for the conflict-serialized
// latency; no global-memory traffic is generated.
func (g *GPU) issueShared(st *runState, w *warpRun, ins *Instr, now int64) {
	degree := g.sharedConflictDegree(ins)
	lat := int64(g.cfg.SharedLatency + degree - 1)
	if degree == 0 {
		lat = 1 // fully predicated off
	}
	w.readyAt = now + lat
	round := ins.Round
	if round < 0 || round > MaxRounds {
		round = 0
	}
	w.stats.SharedPasses[round] += degree
	st.res.SharedPasses[round] += uint64(degree)
}

// sharedConflictDegree returns the number of serialized passes the
// access needs: the maximum, over banks, of distinct words requested
// in that bank (0 if no thread is active).
func (g *GPU) sharedConflictDegree(ins *Instr) int {
	banks := g.cfg.SharedBanks
	seen := make(map[int]map[uint64]struct{}, banks)
	degree := 0
	for t, a := range ins.Addrs {
		if ins.Active != nil && !ins.Active[t] {
			continue
		}
		word := a / 4
		bank := int(word % uint64(banks))
		words := seen[bank]
		if words == nil {
			words = make(map[uint64]struct{}, 4)
			seen[bank] = words
		}
		if _, dup := words[word]; dup {
			continue // broadcast
		}
		words[word] = struct{}{}
		if len(words) > degree {
			degree = len(words)
		}
	}
	return degree
}

// planFor selects the subwarp plan governing this instruction: the
// randomized plan everywhere by default; under selective RCoal
// (VulnerableRounds) only the listed rounds are randomized and the
// rest coalesce whole-warp.
func (g *GPU) planFor(st *runState, w *warpRun, round int) core.Plan {
	if !st.selective || (round >= 0 && round <= MaxRounds && st.roundMask[round]) {
		return w.plan
	}
	return st.basePlan
}

// issueMemory runs the (modified) coalescing unit on a warp-wide
// memory instruction: per-thread addresses are reduced to block
// requests, grouped by the governing plan's subwarp ids, filtered
// through the L1 and the MSHR merge table when enabled, and the
// surviving transactions queued for injection.
func (g *GPU) issueMemory(st *runState, sm *smState, smID int, w *warpRun, ins *Instr, now int64) {
	blocks := g.blockScratch[:0]
	for _, a := range ins.Addrs {
		blocks = append(blocks, mem.BlockOf(a))
	}

	txBlocks := g.txScratch[:0]
	if g.cfg.CoalescingDisabled {
		// One transaction per active thread, duplicates included.
		for t, b := range blocks {
			if ins.Active == nil || ins.Active[t] {
				txBlocks = append(txBlocks, b)
			}
		}
	} else {
		txBlocks = g.planFor(st, w, ins.Round).CoalesceBlocks(blocks, ins.Active, txBlocks)
	}
	g.blockScratch = blocks[:0]

	round := ins.Round
	if round < 0 || round > MaxRounds {
		round = 0
	}
	issued := 0
	for _, b := range txBlocks {
		// Every coalesced transaction counts as an access (the
		// quantity the attack reasons about), even when a cache or
		// the MSHR absorbs it downstream.
		w.stats.RoundTx[round]++
		w.stats.TotalTx++
		st.res.RoundTx[round]++
		st.res.TotalTx++
		issued++
		w.pending++

		if ins.Kind == Load {
			// L1 probe.
			if sm.l1 != nil {
				if hit, _, _ := sm.l1.Access(b); hit {
					sm.replies = append(sm.replies,
						localReply{at: now + int64(sm.l1.HitLatency()), warp: w.prog.ID})
					continue
				}
			}
			// MSHR merge with an outstanding miss to the same block.
			if sm.mshr != nil {
				if _, outstanding := sm.mshr[b]; outstanding {
					sm.mshr[b] = append(sm.mshr[b], w.prog.ID)
					st.res.MSHRMerges++
					continue
				}
				sm.mshr[b] = []int{} // primary in flight
			}
		}

		if g.cfg.Trace != nil {
			g.cfg.Trace.Emit(Event{Cycle: now, Kind: EvMemTx, SM: smID, Warp: w.prog.ID, Addr: b * mem.BlockBytes, Round: round})
		}
		st.reqID++
		sm.injectQ = append(sm.injectQ, &mem.Request{
			ID:    st.reqID,
			Addr:  b * mem.BlockBytes,
			Kind:  kindOf(ins.Kind),
			SM:    smID,
			Warp:  w.prog.ID,
			Round: round,
		})
	}
	g.txScratch = txBlocks[:0]
	if issued > 0 {
		w.blocked = true
	} else {
		// Fully predicated-off instruction: nothing to wait for.
		w.readyAt = now + 1
	}
}
