package gpusim

import (
	"fmt"
	"math"

	"rcoal/internal/core"
	"rcoal/internal/gpusim/cache"
	"rcoal/internal/gpusim/dram"
	"rcoal/internal/gpusim/icnt"
	"rcoal/internal/gpusim/mem"
	"rcoal/internal/mechanism"
	"rcoal/internal/ringbuf"
	"rcoal/internal/rng"
)

// DefaultMaxCycles is the cycle budget when Config.MaxCycles is 0 —
// orders of magnitude above any legitimate Table I kernel (the 1024-
// line case study finishes in ~10^6 cycles).
const DefaultMaxCycles = 1 << 28

// DefaultWatchdogWindow is the forward-progress watchdog's patience
// when Config.WatchdogWindow is 0. Legitimate no-change stretches are
// bounded by the largest subsystem latency (hundreds of cycles for
// scaled GDDR5 timings); 2^20 steps leaves three orders of magnitude
// of headroom while still tripping on a wedged launch in well under a
// second.
const DefaultWatchdogWindow = 1 << 20

// GPU is a configured simulator instance. Run rebuilds the launch's
// logical state per call, but the heavy runtime structures (SM state,
// crossbars, DRAM controllers, caches, the request arena) are retained
// and reset between runs, so steady-state re-invocation on the same
// GPU allocates only the returned Result and the launch plan. A GPU
// can be shared sequentially across experiments; it is not safe for
// concurrent use — create one GPU per goroutine.
type GPU struct {
	cfg    Config
	timing dram.Timing // scaled into core-clock domain

	// scratch buffers for the memory-issue hot path; Run is
	// sequential, so sharing them across instructions is safe.
	blockScratch []uint64
	txScratch    []uint64

	// rt is the reusable runtime state; valid when the previous launch
	// had the same warp count.
	rt    *runState
	arena reqArena

	// SkippedCycles counts the cycles elided by event-driven
	// fast-forward over the GPU's lifetime (diagnostic; it never
	// influences results).
	SkippedCycles int64
}

// New validates the configuration and returns a simulator.
func New(cfg Config) (*GPU, error) {
	if cfg.Defense == nil {
		cfg.Defense = mechanism.Baseline()
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &GPU{cfg: cfg, timing: cfg.DRAMTiming.Scale(cfg.clockRatio())}, nil
}

// Config returns the configuration the GPU was built with.
func (g *GPU) Config() Config { return g.cfg }

// reqChunk is the request-arena chunk size.
const reqChunk = 512

// reqArena hands out mem.Request values from chunked storage that is
// reset (not freed) between launches: requests only live within one
// Run, so steady-state runs allocate no request memory at all.
type reqArena struct {
	chunks [][]mem.Request
	ci     int // current chunk
	used   int // slots used in the current chunk
}

func (a *reqArena) get() *mem.Request {
	if a.ci == len(a.chunks) {
		a.chunks = append(a.chunks, make([]mem.Request, reqChunk))
	}
	r := &a.chunks[a.ci][a.used]
	*r = mem.Request{}
	a.used++
	if a.used == reqChunk {
		a.ci++
		a.used = 0
	}
	return r
}

func (a *reqArena) reset() { a.ci, a.used = 0, 0 }

// warpRun is the runtime state of one warp.
type warpRun struct {
	prog     *WarpProgram
	pc       int
	readyAt  int64
	pending  int  // outstanding memory replies
	blocked  bool // waiting on memory
	curRound int
	done     bool
	plan     core.Plan // this warp's subwarp plan
	// delayedPC marks the pc whose randomized issue delay (the defense's
	// Delay hook) has already been drawn, so a retried instruction does
	// not stall twice; -1 when no draw is pending.
	delayedPC int
	stats     WarpStats
}

// reset prepares the warp state for a new launch.
func (w *warpRun) reset(prog *WarpProgram, plan core.Plan) {
	*w = warpRun{prog: prog, plan: plan, delayedPC: -1}
	for r := 0; r <= MaxRounds; r++ {
		w.stats.RoundStart[r] = -1
		w.stats.RoundEnd[r] = -1
	}
}

// localReply is an L1 hit completing after the hit latency.
type localReply struct {
	at   int64
	warp int
}

// smState is the runtime state of one SM: its resident warps, the
// per-scheduler warp subsets, the LD/ST unit's pending transaction
// queue (the PRT drain queue of Figure 11), the optional L1, and the
// optional MSHR merge table.
type smState struct {
	warps    []*warpRun
	sched    [][]*warpRun // per-scheduler warp subsets
	schedPtr []int
	injectQ  ringbuf.Ring[*mem.Request]
	l1       *cache.Cache
	replies  []localReply
	// mshr maps an outstanding block to the warp ids piggybacked on
	// the primary request (the primary's warp id is in the request).
	mshr map[uint64][]int
	// prt is the SM's outstanding-transaction count (the pending-
	// request-table occupancy of Figure 11); maintained only when
	// metrics are installed.
	prt int
}

// partState is one memory partition: the optional L2 slice in front of
// the DRAM controller, plus its delayed hit replies.
type partState struct {
	ctrl    *dram.Controller
	l2      *cache.Cache
	replies []*mem.Request // L2 hits, delivered when Done <= now
}

// runState bundles one launch's mutable state.
type runState struct {
	runs      []*warpRun
	sms       []*smState
	parts     []*partState
	toMem     *icnt.Crossbar
	toSM      *icnt.Crossbar
	res       *Result
	reqID     uint64
	remaining int
	// progress counts observable state transitions (issues, queue
	// movements, DRAM scheduling, replies, retirements). The forward-
	// progress watchdog trips when it stops advancing while warps
	// remain unfinished; it never influences simulation behavior.
	progress uint64
	// launch is the realized defense state for this launch: the subwarp
	// plan behind res.Plan plus the per-request hooks (delay, shuffle)
	// and the coalescer bypass.
	launch mechanism.Launch
	// defRNG feeds the launch's per-request defense hooks; nil when the
	// defense has none, so plan-only mechanisms consume exactly the
	// streams they did before the Mechanism seam existed.
	defRNG    *rng.Source
	basePlan  core.Plan // whole-warp plan for non-vulnerable rounds
	roundMask [MaxRounds + 1]bool
	selective bool
}

// Run executes the kernel to completion and returns its statistics.
// The seed drives the launch's hardware randomness: the subwarp plans
// for RSS/RTS policies and the cache index keys when randomized.
// Identical (kernel, seed) pairs produce identical results, whether
// fast-forward is enabled or not (the determinism contract checked by
// TestFastForwardByteIdenticalResults).
func (g *GPU) Run(k *Kernel, seed uint64) (*Result, error) {
	if err := k.Validate(g.cfg.WarpSize); err != nil {
		return nil, err
	}
	st, err := g.setup(k, seed)
	if err != nil {
		return nil, err
	}
	if _, _, err := g.loop(st, k, 0, false); err != nil {
		return nil, err
	}
	g.finish(st)
	return st.res, nil
}

// loop runs the cycle loop from cycle start until the launch
// terminates, setting st.res.Cycles. With pauseAtVulnerable set it
// instead returns (pausedAt, true, nil) at the top of the first cycle
// where some ready warp's next real instruction belongs to a
// vulnerable round, before any work of that cycle happens — the
// copy-on-write fork point (fork.go). The predicate is a pure function
// of simulator state, and no plan-dependent work of a vulnerable round
// can have executed before it fires, so the pause cycle and the
// pre-pause state are identical across mechanism configurations.
// Fast-forward cannot jump past the boundary: a ready warp pins the
// event horizon to now+1, and every skipped cycle provably has no
// ready warps, where the predicate is vacuously false.
func (g *GPU) loop(st *runState, k *Kernel, start int64, pauseAtVulnerable bool) (pausedAt int64, paused bool, err error) {
	fastForward := !g.cfg.FastForwardDisabled
	maxCycles := g.cfg.MaxCycles
	if maxCycles == 0 {
		maxCycles = DefaultMaxCycles
	}
	window := g.cfg.WatchdogWindow
	if window == 0 {
		window = DefaultWatchdogWindow
	}
	// Forward-progress watchdog state: lastProgress is st.progress at
	// the most recent observable state change, stalled the consecutive
	// steps without one. Fast-forward only elides cycles proven to be
	// no-ops, so skipped cycles never age the watchdog.
	var lastProgress uint64
	var stalled int64

	for now := start; ; now++ {
		if now > maxCycles {
			return 0, false, &MaxCyclesError{Kernel: k.Label, MaxCycles: maxCycles, Snapshot: g.snapshot(st, now)}
		}
		if pauseAtVulnerable && st.atVulnerableBoundary(now) {
			return now, true, nil
		}
		smBusy := g.stepSMs(st, now)
		memBusy := g.stepMemory(st, now)
		if st.remaining == 0 && st.toMem.Idle() && st.toSM.Idle() && st.idleMemory() && st.idleSMs() {
			st.res.Cycles = now
			return 0, false, nil
		}
		if st.progress != lastProgress {
			lastProgress = st.progress
			stalled = 0
		} else if stalled++; stalled >= window {
			return 0, false, &NoProgressError{Kernel: k.Label, Cycle: now, Window: window, Snapshot: g.snapshot(st, now)}
		}
		if fastForward && !smBusy && !memBusy {
			// Event-driven fast-forward: when no subsystem can make
			// progress before some future cycle, jump straight to it.
			// Every skipped cycle is one where stepSMs and stepMemory
			// would have been no-ops, so results are byte-identical to
			// pure cycle-stepping. The busy flags are a fast path: a
			// non-empty inject or DRAM queue pins the horizon to now+1,
			// so the full scan below would find nothing to skip.
			next := g.nextEvent(st, now)
			if next == math.MaxInt64 {
				// Warps remain unfinished yet nothing is in flight
				// anywhere: no future step can change state. Report the
				// wedge immediately instead of aging the watchdog.
				return 0, false, &NoProgressError{Kernel: k.Label, Cycle: now, Snapshot: g.snapshot(st, now)}
			}
			if next > now+1 {
				if next > maxCycles {
					next = maxCycles + 1 // surface the cycle budget
				}
				g.SkippedCycles += next - now - 1
				now = next - 1
			}
		}
	}
}

// finish folds the per-subsystem statistics into st.res after the loop
// terminates.
func (g *GPU) finish(st *runState) {
	for _, p := range st.parts {
		st.res.DRAM = append(st.res.DRAM, p.ctrl.Stats)
		if p.l2 != nil {
			st.res.L2 = append(st.res.L2, p.l2.Stats)
		}
	}
	for _, sm := range st.sms {
		if sm.l1 != nil {
			st.res.L1 = append(st.res.L1, sm.l1.Stats)
		}
	}
	if g.cfg.Metrics != nil {
		g.snapshotInto(st, st.res)
	}
}

// atVulnerableBoundary reports whether some ready warp's next real
// (non-RoundMark) instruction belongs to a vulnerable round. tryIssue
// consumes RoundMarks eagerly in the same issue slot as the following
// instruction, so the scan mirrors exactly what the warp would issue
// this cycle; a true result means issuing any further cycle could
// execute plan-dependent work.
func (st *runState) atVulnerableBoundary(now int64) bool {
	for _, w := range st.runs {
		if w.done || w.blocked || w.readyAt > now {
			continue
		}
		for pc := w.pc; pc < len(w.prog.Instrs); pc++ {
			ins := &w.prog.Instrs[pc]
			if ins.Kind == RoundMark {
				continue
			}
			if ins.Round >= 0 && ins.Round <= MaxRounds && st.roundMask[ins.Round] {
				return true
			}
			break
		}
	}
	return false
}

// nextEvent returns the earliest cycle strictly after now at which any
// subsystem can act, or math.MaxInt64 when nothing is in flight. The
// horizon of each subsystem is conservative: it may be earlier than
// the subsystem's next true state change (in which case the simulator
// simply steps a few idle cycles), but it is never later.
func (g *GPU) nextEvent(st *runState, now int64) int64 {
	next := int64(math.MaxInt64)
	for smID, sm := range st.sms {
		if len(sm.warps) == 0 {
			continue // never receives traffic, never issues
		}
		// A queued transaction drains next cycle.
		if sm.injectQ.Len() > 0 {
			return now + 1
		}
		for i := range sm.replies {
			if t := sm.replies[i].at; t < next {
				next = t
			}
		}
		if t := st.toSM.NextDeliverable(smID); t < next {
			next = t
		}
		for _, w := range sm.warps {
			if w.done || w.blocked {
				continue // woken by a reply, covered above
			}
			if w.readyAt <= now {
				// Ready but not issued this cycle (scheduler bandwidth):
				// the SM is active next cycle.
				return now + 1
			}
			if w.readyAt < next {
				next = w.readyAt
			}
		}
	}
	for pid, p := range st.parts {
		t := p.ctrl.NextEvent(now)
		if t == now+1 {
			return now + 1
		}
		if t < next {
			next = t
		}
		for _, r := range p.replies {
			if r.Done < next {
				next = r.Done
			}
		}
		// The controller queue is empty here (NextEvent would have
		// returned now+1), so it can always accept a delivery.
		if t := st.toMem.NextDeliverable(pid); t < next {
			next = t
		}
	}
	return next
}

// setup builds the launch state: warps on SMs, plans, interconnect,
// caches, and memory partitions. Structural state is reused from the
// previous launch when the warp count matches; per-launch state (the
// Result, the plans) is always fresh because it escapes to the caller.
func (g *GPU) setup(k *Kernel, seed uint64) (*runState, error) {
	// The defense's launch state (for subwarp mechanisms, the
	// subwarp-id mapping) is set by the hardware logic at the beginning
	// of the execution and stays fixed for the launch (Section IV-D):
	// one realization shared by every warp of the launch, unless
	// PlanPerWarp asks for per-warp randomization.
	hwRNG := rng.New(seed).Split(0xC0A1) // hardware stream; attackers never see it
	launch, err := g.cfg.Defense.NewLaunch(g.cfg.WarpSize, hwRNG)
	if err != nil {
		return nil, err
	}
	cacheRNG := rng.New(seed).Split(0xCAC8E)

	st := g.rt
	if st == nil || len(st.runs) != len(k.Warps) {
		if st, err = g.build(len(k.Warps)); err != nil {
			return nil, err
		}
		g.rt = st
	}
	// Reset also serves the fresh build: it draws the launch's cache
	// hash keys from cacheRNG in a fixed order, so rebuilt and reused
	// runtimes see identical key sequences.
	g.resetRuntime(st, cacheRNG)
	g.arena.reset()
	if m := g.cfg.Metrics; m != nil {
		m.reset() // each Run reports exactly its own launch
	}

	st.res = &Result{Plan: launch.Plan, Warps: make([]WarpStats, len(k.Warps))}
	st.reqID = 0
	st.remaining = len(st.runs)
	st.launch = launch
	st.defRNG = nil
	if launch.HasHooks() {
		// Dedicated stream for the per-request hooks: drawn lazily here
		// so plan-only mechanisms touch exactly the streams they did
		// before the Mechanism seam existed (the byte-identity contract).
		st.defRNG = rng.New(seed).Split(0xDE1A)
	}
	st.roundMask = [MaxRounds + 1]bool{}
	st.basePlan = core.Plan{}
	st.selective = len(g.cfg.VulnerableRounds) > 0
	if st.selective {
		st.basePlan = mechanism.WholeWarpPlan(g.cfg.WarpSize)
		for _, r := range g.cfg.VulnerableRounds {
			st.roundMask[r] = true
		}
	}
	for i, wp := range k.Warps {
		plan := launch.Plan
		if g.cfg.PlanPerWarp {
			wl, err := g.cfg.Defense.NewLaunch(g.cfg.WarpSize, hwRNG)
			if err != nil {
				return nil, err
			}
			plan = wl.Plan
		}
		st.runs[i].reset(wp, plan)
	}
	return st, nil
}

// build constructs the structural runtime state for a launch of
// nWarps warps: SM states with caches, warp slots distributed over SMs
// and schedulers, crossbars, and memory partitions. Cache hash keys
// are not drawn here — setup keys every cache through resetRuntime so
// rebuilt and reused runtimes are indistinguishable.
func (g *GPU) build(nWarps int) (*runState, error) {
	st := &runState{}
	st.sms = make([]*smState, g.cfg.NumSMs)
	for i := range st.sms {
		sm := &smState{schedPtr: make([]int, g.cfg.SchedulersPerSM)}
		if g.cfg.L1Enabled {
			cfg := g.cfg.L1
			cfg.RandomizeIndex = cfg.RandomizeIndex || g.cfg.CacheRandomized
			l1, err := cache.New(cfg, 0)
			if err != nil {
				return nil, err
			}
			sm.l1 = l1
		}
		if g.cfg.MSHREnabled {
			sm.mshr = make(map[uint64][]int)
		}
		st.sms[i] = sm
	}

	st.runs = make([]*warpRun, nWarps)
	for i := range st.runs {
		w := &warpRun{}
		st.runs[i] = w
		st.sms[i%len(st.sms)].warps = append(st.sms[i%len(st.sms)].warps, w)
	}
	for _, sm := range st.sms {
		sm.sched = make([][]*warpRun, g.cfg.SchedulersPerSM)
		for i, w := range sm.warps {
			s := i % g.cfg.SchedulersPerSM
			sm.sched[s] = append(sm.sched[s], w)
		}
	}

	var err error
	st.toMem, err = icnt.NewCrossbar(g.cfg.AddressMap.Partitions, g.cfg.ICNTLatency, 1)
	if err != nil {
		return nil, err
	}
	st.toSM, err = icnt.NewCrossbar(g.cfg.NumSMs, g.cfg.ICNTLatency, mem.BlockBytes/g.cfg.FlitBytes)
	if err != nil {
		return nil, err
	}
	st.parts = make([]*partState, g.cfg.AddressMap.Partitions)
	for i := range st.parts {
		p := &partState{}
		p.ctrl, err = dram.NewController(g.timing, g.cfg.AddressMap, g.cfg.DRAMQueueCap)
		if err != nil {
			return nil, err
		}
		if g.cfg.L2Enabled {
			cfg := g.cfg.L2
			cfg.RandomizeIndex = cfg.RandomizeIndex || g.cfg.CacheRandomized
			p.l2, err = cache.New(cfg, 0)
			if err != nil {
				return nil, err
			}
		}
		st.parts[i] = p
	}

	// Arm the configured test-only faults (internal/faultinject). The
	// seams survive per-launch resets, so a reused runtime keeps its
	// fault plan.
	if f := g.cfg.Faults; f != nil {
		if s := f.DRAMStall; s != nil {
			for pid, p := range st.parts {
				if s.Partition == -1 || s.Partition == pid {
					p.ctrl.InjectStall(s.AfterAccesses)
				}
			}
		}
		if d := f.DropReply; d != nil {
			st.toSM.InjectDrop(d.Port, d.Nth)
		}
	}

	// Install the metrics layer's subsystem hooks. The registry hands
	// back the same histogram objects across rebuilds, so a rebuilt
	// runtime keeps accumulating into the same series.
	if m := g.cfg.Metrics; m != nil {
		st.toMem.DepthHist = m.icntToMem
		st.toSM.DepthHist = m.icntToSM
		for pid, p := range st.parts {
			p.ctrl.DepthHist = m.dramDepthHist(pid)
		}
		m.installDRAM(len(st.parts), g.cfg.AddressMap.Banks)
	}
	return st, nil
}

// resetRuntime restores the structural state to launch-start
// conditions, drawing fresh cache hash keys from cacheRNG in the same
// order build-time construction would (one per enabled L1 in SM order,
// then one per enabled L2 in partition order).
func (g *GPU) resetRuntime(st *runState, cacheRNG *rng.Source) {
	for _, sm := range st.sms {
		sm.injectQ.Reset()
		sm.replies = sm.replies[:0]
		for i := range sm.schedPtr {
			sm.schedPtr[i] = 0
		}
		if sm.l1 != nil {
			sm.l1.Reset(cacheRNG.Uint64())
		}
		if sm.mshr != nil {
			clear(sm.mshr)
		}
		sm.prt = 0
	}
	for _, p := range st.parts {
		p.ctrl.Reset()
		p.replies = p.replies[:0]
		if p.l2 != nil {
			p.l2.Reset(cacheRNG.Uint64())
		}
	}
	st.toMem.Reset()
	st.toSM.Reset()
}

// stepSMs advances every SM by one cycle: deliver replies, drain the
// LD/ST injection queues, and let the schedulers issue.
// stepSMs advances every SM one cycle. The returned flag reports
// whether some SM still holds queued transactions, which pins the
// event horizon to now+1 (see nextEvent).
func (g *GPU) stepSMs(st *runState, now int64) (busy bool) {
	for smID, sm := range st.sms {
		if len(sm.warps) == 0 {
			continue // no resident warps: nothing ever happens here
		}
		// 1a. L1-hit replies maturing this cycle.
		if len(sm.replies) > 0 {
			kept := sm.replies[:0]
			for _, lr := range sm.replies {
				if lr.at <= now {
					g.settle(st, sm, smID, st.runs[lr.warp], now)
				} else {
					kept = append(kept, lr)
				}
			}
			sm.replies = kept
		}

		// 1b. Memory replies from the interconnect (one per cycle:
		// return-port bandwidth).
		if r := st.toSM.Pop(smID, now); r != nil {
			if sm.l1 != nil && r.Kind == mem.Load {
				sm.l1.Access(mem.BlockOf(r.Addr)) // fill
			}
			g.settle(st, sm, smID, st.runs[r.Warp], now)
			if sm.mshr != nil {
				block := mem.BlockOf(r.Addr)
				if waiters, ok := sm.mshr[block]; ok {
					for _, waiter := range waiters {
						g.settle(st, sm, smID, st.runs[waiter], now)
					}
					delete(sm.mshr, block)
				}
			}
		}

		// 2. Drain the LD/ST injection queue into the interconnect.
		for n := 0; n < g.cfg.MCURate && sm.injectQ.Len() > 0; n++ {
			req := sm.injectQ.Pop()
			req.Issued = now
			st.toMem.Push(req.Loc.Partition, req, now)
			st.progress++
		}

		// 3. Warp schedulers issue.
		for s := 0; s < g.cfg.SchedulersPerSM; s++ {
			g.issueOne(st, sm, smID, s, now)
		}

		if sm.injectQ.Len() > 0 {
			busy = true
		}
	}
	return busy
}

// settle delivers one memory reply to a warp, retiring the warp if it
// has run off its program.
func (g *GPU) settle(st *runState, sm *smState, smID int, w *warpRun, now int64) {
	st.progress++
	if g.cfg.Trace != nil {
		g.cfg.Trace.Emit(Event{Cycle: now, Kind: EvReply, SM: smID, Warp: w.prog.ID})
	}
	if m := g.cfg.Metrics; m != nil {
		sm.prt--
		m.prtOccupancy.Observe(int64(sm.prt))
	}
	w.pending--
	if w.pending < 0 {
		panic(fmt.Sprintf("gpusim: warp %d reply underflow", w.prog.ID))
	}
	if w.pending == 0 && w.blocked {
		w.blocked = false
		w.readyAt = now + 1
		if w.pc >= len(w.prog.Instrs) {
			g.retire(st, w, now)
		}
	}
}

// retire finishes a warp and emits its trace event.
func (g *GPU) retire(st *runState, w *warpRun, now int64) {
	st.progress++
	w.finish(now, &st.res.Warps[w.prog.ID])
	st.remaining--
	if g.cfg.Trace != nil {
		g.cfg.Trace.Emit(Event{Cycle: now, Kind: EvRetire, Warp: w.prog.ID})
	}
}

// stepMemory advances every partition: accept a request from the
// interconnect (through the L2 when enabled), tick the DRAM
// controller, and send replies back. The returned flag reports
// whether some controller still queues unscheduled requests, which
// pins the event horizon to now+1 (see nextEvent).
func (g *GPU) stepMemory(st *runState, now int64) (busy bool) {
	for pid, p := range st.parts {
		// A partition with no queued, in-flight, or deliverable work is
		// a strict no-op this cycle; skip its whole body.
		if len(p.replies) == 0 && p.ctrl.Idle() && st.toMem.Pending(pid) == 0 {
			continue
		}
		// L2-hit replies maturing this cycle.
		if len(p.replies) > 0 {
			kept := p.replies[:0]
			for _, r := range p.replies {
				if r.Done <= now {
					st.toSM.Push(r.SM, r, now)
					st.progress++
				} else {
					kept = append(kept, r)
				}
			}
			p.replies = kept
		}

		if p.ctrl.CanAccept() {
			if r := st.toMem.Pop(pid, now); r != nil {
				st.progress++
				if p.l2 != nil && r.Kind == mem.Load {
					if hit, _, _ := p.l2.Access(mem.BlockOf(r.Addr)); hit {
						r.Done = now + int64(p.l2.HitLatency())
						p.replies = append(p.replies, r)
						goto tick
					}
				}
				r.Arrived = now
				p.ctrl.Push(r)
			}
		}
	tick:
		{
			// Scheduling moves a request queue→in-flight without
			// completing anything; detect it by queue shrinkage so a
			// frozen controller (fault injection, modeling bugs) reads
			// as no progress rather than spinning forever.
			qBefore := p.ctrl.QueueLen()
			for _, done := range p.ctrl.Tick(now) {
				done.Done = now
				if g.cfg.Trace != nil {
					g.cfg.Trace.Emit(Event{Cycle: now, Kind: EvDRAMService, SM: done.SM,
						Warp: done.Warp, Addr: done.Addr, Round: done.Round,
						Part: pid, N: now - done.Arrived})
				}
				st.toSM.Push(done.SM, done, now)
				st.progress++
			}
			if p.ctrl.QueueLen() != qBefore {
				st.progress++
			}
		}
		if p.ctrl.QueueLen() > 0 {
			busy = true
		}
	}
	return busy
}

func (st *runState) idleMemory() bool {
	for _, p := range st.parts {
		if !p.ctrl.Idle() || len(p.replies) > 0 {
			return false
		}
	}
	return true
}

func (st *runState) idleSMs() bool {
	for _, sm := range st.sms {
		if sm.injectQ.Len() > 0 || len(sm.replies) > 0 {
			return false
		}
	}
	return true
}

func (w *warpRun) finish(now int64, stats *WarpStats) {
	w.done = true
	if w.curRound > 0 && w.stats.RoundEnd[w.curRound] < 0 {
		w.stats.RoundEnd[w.curRound] = now
	}
	w.stats.Finish = now
	*stats = w.stats
}

// issueOne lets scheduler s of the SM issue for at most one warp.
// Under LRR the scan starts after the last issued warp; under GTO the
// scheduler greedily retries the warp it issued last and otherwise
// falls back to the oldest ready warp (subset order encodes age).
func (g *GPU) issueOne(st *runState, sm *smState, smID, s int, now int64) {
	mine := sm.sched[s]
	nLocal := len(mine)
	if nLocal == 0 {
		return
	}
	start := sm.schedPtr[s]
	if g.cfg.Scheduler == GTO {
		prev := start - 1
		if prev < 0 {
			prev = nLocal - 1
		}
		if g.tryIssue(st, sm, smID, mine[prev], now) {
			sm.schedPtr[s] = prev + 1
			if sm.schedPtr[s] >= nLocal {
				sm.schedPtr[s] = 0
			}
			if m := g.cfg.Metrics; m != nil {
				m.issued.Inc()
			}
			return
		}
		start = 0
	}
	for probe := 0; probe < nLocal; probe++ {
		idx := start + probe
		if idx >= nLocal {
			idx -= nLocal
		}
		if g.tryIssue(st, sm, smID, mine[idx], now) {
			sm.schedPtr[s] = (idx + 1) % nLocal
			if m := g.cfg.Metrics; m != nil {
				m.issued.Inc()
			}
			return
		}
	}
	if m := g.cfg.Metrics; m != nil {
		// The slot went unused; classify why. Any candidate blocked on
		// memory makes it a memory stall; otherwise warps waiting out
		// pipeline latency make it a pipeline stall; with every warp
		// finished the scheduler is simply idle.
		blocked, future := false, false
		for _, w := range mine {
			if w.done {
				continue
			}
			if w.blocked || w.pending > 0 {
				blocked = true
				break
			}
			future = true
		}
		switch {
		case blocked:
			m.stallMemory.Inc()
		case future:
			m.stallPipeline.Inc()
		default:
			m.stallIdle.Inc()
		}
	}
}

// tryIssue attempts to issue one instruction for the warp, reporting
// whether the warp consumed the issue slot.
func (g *GPU) tryIssue(st *runState, sm *smState, smID int, w *warpRun, now int64) bool {
	if w.done || w.blocked || w.readyAt > now {
		return false
	}
	if w.pc >= len(w.prog.Instrs) {
		// Ran off the end on a non-memory instruction: retire.
		if w.pending == 0 {
			g.retire(st, w, now)
		} else {
			w.blocked = true
			st.progress++
		}
		return false
	}

	// Consume zero-cost round markers eagerly.
	for w.pc < len(w.prog.Instrs) && w.prog.Instrs[w.pc].Kind == RoundMark {
		ins := &w.prog.Instrs[w.pc]
		if w.curRound > 0 && w.stats.RoundEnd[w.curRound] < 0 {
			w.stats.RoundEnd[w.curRound] = now
		}
		if ins.Round > 0 && ins.Round <= MaxRounds {
			if w.stats.RoundStart[ins.Round] < 0 {
				w.stats.RoundStart[ins.Round] = now
			}
			w.curRound = ins.Round
		} else {
			w.curRound = 0
		}
		w.pc++
	}
	if w.pc >= len(w.prog.Instrs) {
		if w.pending == 0 {
			g.retire(st, w, now)
		} else {
			w.blocked = true
		}
		st.progress++
		return true
	}

	ins := &w.prog.Instrs[w.pc]
	if g.cfg.Trace != nil {
		g.cfg.Trace.Emit(Event{Cycle: now, Kind: EvIssue, SM: smID, Warp: w.prog.ID, PC: w.pc, Round: ins.Round})
	}
	switch ins.Kind {
	case ALU:
		lat := int64(ins.Latency)
		if lat <= 0 {
			lat = int64(g.cfg.ALULatency)
		}
		if issue := g.cfg.issueCycles(); lat < issue {
			lat = issue
		}
		w.readyAt = now + lat
		w.pc++
		st.res.ALUOps++
	case Load, Store:
		if g.delayIssue(st, w, now) {
			break // randomized-delay defense: slot consumed, pc unchanged
		}
		g.issueMemory(st, sm, smID, w, ins, now)
		w.pc++
	case SharedLoad:
		g.issueShared(st, w, ins, now)
		w.pc++
	}
	st.progress++
	return true
}

// delayIssue is the issue-stage seam for the randomized-delay defense:
// when the launch carries a Delay hook, every memory instruction draws
// one stall from the defense stream the first time it reaches the
// front of its warp. A positive draw holds the warp for that many
// cycles and reports true (the instruction retries after the stall);
// delayedPC remembers the draw so the retry — and a zero draw — issues
// immediately.
func (g *GPU) delayIssue(st *runState, w *warpRun, now int64) bool {
	if st.launch.Delay == nil || w.delayedPC == w.pc {
		return false
	}
	w.delayedPC = w.pc
	if d := st.launch.Delay(st.defRNG); d > 0 {
		w.readyAt = now + d
		return true
	}
	return false
}

// issueShared models a shared-memory access: requests to the same bank
// for different words serialize into multiple passes (same-word
// requests broadcast). The warp stalls for the conflict-serialized
// latency; no global-memory traffic is generated.
func (g *GPU) issueShared(st *runState, w *warpRun, ins *Instr, now int64) {
	degree := g.sharedConflictDegree(ins)
	lat := int64(g.cfg.SharedLatency + degree - 1)
	if degree == 0 {
		lat = 1 // fully predicated off
	}
	w.readyAt = now + lat
	round := ins.Round
	if round < 0 || round > MaxRounds {
		round = 0
	}
	w.stats.SharedPasses[round] += degree
	st.res.SharedPasses[round] += uint64(degree)
}

// sharedConflictDegree returns the number of serialized passes the
// access needs: the maximum, over banks, of distinct words requested
// in that bank (0 if no thread is active).
func (g *GPU) sharedConflictDegree(ins *Instr) int {
	banks := g.cfg.SharedBanks
	seen := make(map[int]map[uint64]struct{}, banks)
	degree := 0
	for t, a := range ins.Addrs {
		if ins.Active != nil && !ins.Active[t] {
			continue
		}
		word := a / 4
		bank := int(word % uint64(banks))
		words := seen[bank]
		if words == nil {
			words = make(map[uint64]struct{}, 4)
			seen[bank] = words
		}
		if _, dup := words[word]; dup {
			continue // broadcast
		}
		words[word] = struct{}{}
		if len(words) > degree {
			degree = len(words)
		}
	}
	return degree
}

// planFor selects the subwarp plan governing this instruction: the
// randomized plan everywhere by default; under selective RCoal
// (VulnerableRounds) only the listed rounds are randomized and the
// rest coalesce whole-warp.
func (g *GPU) planFor(st *runState, w *warpRun, round int) core.Plan {
	if !st.selective || (round >= 0 && round <= MaxRounds && st.roundMask[round]) {
		return w.plan
	}
	return st.basePlan
}

// issueMemory runs the (modified) coalescing unit on a warp-wide
// memory instruction: per-thread addresses are reduced to block
// requests, grouped by the governing plan's subwarp ids, filtered
// through the L1 and the MSHR merge table when enabled, and the
// surviving transactions queued for injection.
func (g *GPU) issueMemory(st *runState, sm *smState, smID int, w *warpRun, ins *Instr, now int64) {
	blocks := g.blockScratch[:0]
	for _, a := range ins.Addrs {
		blocks = append(blocks, mem.BlockOf(a))
	}

	round := ins.Round
	if round < 0 || round > MaxRounds {
		round = 0
	}
	txBlocks := g.txScratch[:0]
	m := g.cfg.Metrics
	switch {
	case st.launch.PerThread:
		// Coalescer bypassed (the no-coalescing strawman): one
		// transaction per active thread, duplicates included.
		for t, b := range blocks {
			if ins.Active == nil || ins.Active[t] {
				txBlocks = append(txBlocks, b)
			}
		}
		if m != nil {
			m.observeUncoalesced(len(txBlocks), round)
		}
	case m != nil:
		// Fused pass: block keys and Algorithm-1 group sizes in one
		// coalescing scan, so metrics never re-run the MCU logic.
		var sizes []int
		txBlocks, sizes = g.planFor(st, w, ins.Round).CoalesceBlocksSizes(blocks, ins.Active, txBlocks, m.sizeScratch[:0])
		m.observeSizes(sizes, round)
		m.sizeScratch = sizes
	default:
		txBlocks = g.planFor(st, w, ins.Round).CoalesceBlocks(blocks, ins.Active, txBlocks)
	}
	if st.launch.Shuffle != nil && len(txBlocks) > 1 {
		// Access-pattern shuffling: transaction count (the coalescing
		// channel) is untouched, but the order the LD/ST unit queues
		// them — and therefore DRAM arrival order and row locality — is
		// freshly randomized per request.
		st.launch.Shuffle(st.defRNG, txBlocks)
	}
	if g.cfg.Trace != nil {
		g.cfg.Trace.Emit(Event{Cycle: now, Kind: EvCoalesce, SM: smID, Warp: w.prog.ID,
			Round: round, N: int64(len(txBlocks))})
	}
	g.blockScratch = blocks[:0]

	issued := 0
	for _, b := range txBlocks {
		// Every coalesced transaction counts as an access (the
		// quantity the attack reasons about), even when a cache or
		// the MSHR absorbs it downstream.
		w.stats.RoundTx[round]++
		w.stats.TotalTx++
		st.res.RoundTx[round]++
		st.res.TotalTx++
		issued++
		w.pending++

		if ins.Kind == Load {
			// L1 probe.
			if sm.l1 != nil {
				if hit, _, _ := sm.l1.Access(b); hit {
					sm.replies = append(sm.replies,
						localReply{at: now + int64(sm.l1.HitLatency()), warp: w.prog.ID})
					continue
				}
			}
			// MSHR merge with an outstanding miss to the same block.
			if sm.mshr != nil {
				if _, outstanding := sm.mshr[b]; outstanding {
					sm.mshr[b] = append(sm.mshr[b], w.prog.ID)
					st.res.MSHRMerges++
					continue
				}
				sm.mshr[b] = nil // primary in flight
			}
		}

		if g.cfg.Trace != nil {
			g.cfg.Trace.Emit(Event{Cycle: now, Kind: EvMemTx, SM: smID, Warp: w.prog.ID, Addr: b * mem.BlockBytes, Round: round})
		}
		st.reqID++
		req := g.arena.get()
		addr := b * mem.BlockBytes
		*req = mem.Request{
			ID:    st.reqID,
			Addr:  addr,
			Kind:  kindOf(ins.Kind),
			SM:    smID,
			Warp:  w.prog.ID,
			Round: round,
			Loc:   g.cfg.AddressMap.Decode(addr),
		}
		sm.injectQ.Push(req)
		if m := g.cfg.Metrics; m != nil {
			m.injectDepth.Observe(int64(sm.injectQ.Len()))
		}
	}
	g.txScratch = txBlocks[:0]
	if issued > 0 {
		if m := g.cfg.Metrics; m != nil {
			sm.prt += issued
			m.prtOccupancy.Observe(int64(sm.prt))
		}
		w.blocked = true
	} else {
		// Fully predicated-off instruction: nothing to wait for.
		w.readyAt = now + 1
	}
}
