package gpusim

import (
	"errors"
	"strings"
	"testing"

	"rcoal/internal/mechanism"
)

// aesLikeKernel builds a warp that re-reads a small table region every
// "round", the access pattern caches and MSHRs thrive on.
func aesLikeKernel(warps, rounds int) *Kernel {
	k := &Kernel{Label: "aeslike"}
	for wid := 0; wid < warps; wid++ {
		wp := &WarpProgram{ID: wid}
		for r := 1; r <= rounds; r++ {
			wp.Instrs = append(wp.Instrs, Instr{Kind: RoundMark, Round: r})
			for l := 0; l < 4; l++ {
				addrs := make([]uint64, 32)
				for t := 0; t < 32; t++ {
					// 16 blocks of shared table space, varying pattern.
					addrs[t] = uint64((t*7+l*3+r)%16) * 64
				}
				wp.Instrs = append(wp.Instrs, Instr{Kind: Load, Addrs: addrs, Round: r})
			}
		}
		wp.Instrs = append(wp.Instrs, Instr{Kind: RoundMark, Round: 0})
		k.Warps = append(k.Warps, wp)
	}
	return k
}

func dramAccesses(res *Result) uint64 {
	var n uint64
	for _, d := range res.DRAM {
		n += d.Accesses
	}
	return n
}

func TestL1ReducesDRAMTraffic(t *testing.T) {
	base := mustGPU(t, DefaultConfig())
	bres, err := base.Run(aesLikeKernel(1, 10), 1)
	if err != nil {
		t.Fatal(err)
	}

	cfg := DefaultConfig()
	cfg.L1Enabled = true
	cfg.L1 = DefaultL1()
	g := mustGPU(t, cfg)
	res, err := g.Run(aesLikeKernel(1, 10), 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.L1) != cfg.NumSMs {
		t.Fatalf("%d L1 stats, want %d", len(res.L1), cfg.NumSMs)
	}
	var hits uint64
	for _, s := range res.L1 {
		hits += s.Hits
	}
	if hits == 0 {
		t.Error("L1 never hit on a table-reuse workload")
	}
	if got, want := dramAccesses(res), dramAccesses(bres); got >= want {
		t.Errorf("L1 on: %d DRAM accesses, baseline %d", got, want)
	}
	if res.Cycles >= bres.Cycles {
		t.Errorf("L1 on: %d cycles, baseline %d", res.Cycles, bres.Cycles)
	}
	// Coalescing-level accounting is unchanged: the attack's quantity
	// is counted before the cache.
	if res.TotalTx != bres.TotalTx {
		t.Errorf("TotalTx changed with L1: %d vs %d", res.TotalTx, bres.TotalTx)
	}
}

func TestL2ReducesDRAMTraffic(t *testing.T) {
	cfg := DefaultConfig()
	cfg.L2Enabled = true
	cfg.L2 = DefaultL2()
	g := mustGPU(t, cfg)
	res, err := g.Run(aesLikeKernel(2, 10), 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.L2) != cfg.AddressMap.Partitions {
		t.Fatalf("%d L2 stats", len(res.L2))
	}
	var hits uint64
	for _, s := range res.L2 {
		hits += s.Hits
	}
	if hits == 0 {
		t.Error("L2 never hit")
	}
	base := mustGPU(t, DefaultConfig())
	bres, _ := base.Run(aesLikeKernel(2, 10), 1)
	if dramAccesses(res) >= dramAccesses(bres) {
		t.Error("L2 did not reduce DRAM accesses")
	}
}

func TestMSHRMergesOutstandingMisses(t *testing.T) {
	// Two warps on the same SM issuing the same blocks back to back:
	// merging should absorb some requests.
	cfg := DefaultConfig()
	cfg.NumSMs = 1
	cfg.MSHREnabled = true
	g := mustGPU(t, cfg)
	res, err := g.Run(aesLikeKernel(2, 10), 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.MSHRMerges == 0 {
		t.Error("MSHR never merged on overlapping warps")
	}
	base := mustGPU(t, func() Config { c := DefaultConfig(); c.NumSMs = 1; return c }())
	bres, _ := base.Run(aesLikeKernel(2, 10), 1)
	if dramAccesses(res) >= dramAccesses(bres) {
		t.Errorf("MSHR on: %d DRAM accesses, baseline %d", dramAccesses(res), dramAccesses(bres))
	}
	if res.TotalTx != bres.TotalTx {
		t.Error("MSHR changed coalescing-level accounting")
	}
}

func TestCacheRandomizedStillCorrectAndKeyed(t *testing.T) {
	cfg := DefaultConfig()
	cfg.L1Enabled = true
	cfg.L1 = DefaultL1()
	cfg.CacheRandomized = true
	g := mustGPU(t, cfg)
	a, err := g.Run(aesLikeKernel(1, 10), 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := g.Run(aesLikeKernel(1, 10), 2)
	if err != nil {
		t.Fatal(err)
	}
	// Different launch seeds re-key the index hash; with a tiny
	// working set both still hit, but totals stay sane and tx counts
	// equal (randomization never changes coalescing accounting).
	if a.TotalTx != b.TotalTx {
		t.Error("cache randomization changed tx accounting")
	}
	var hitsA uint64
	for _, s := range a.L1 {
		hitsA += s.Hits
	}
	if hitsA == 0 {
		t.Error("randomized L1 never hit")
	}
}

func TestGTOSchedulerCompletes(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Scheduler = GTO
	g := mustGPU(t, cfg)
	res, err := g.Run(aesLikeKernel(4, 10), 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := range res.Warps {
		if res.Warps[i].Finish <= 0 {
			t.Errorf("warp %d never finished under GTO", i)
		}
	}
	lrr := mustGPU(t, DefaultConfig())
	lres, _ := lrr.Run(aesLikeKernel(4, 10), 1)
	if res.TotalTx != lres.TotalTx {
		t.Error("scheduler changed transaction counts")
	}
}

func TestSchedulerKindString(t *testing.T) {
	if LRR.String() != "lrr" || GTO.String() != "gto" {
		t.Error("scheduler names wrong")
	}
}

func TestVulnerableRoundsSelective(t *testing.T) {
	full := DefaultConfig()
	full.Defense = mechanism.FSS(8)
	gFull := mustGPU(t, full)
	fres, err := gFull.Run(aesLikeKernel(1, 10), 1)
	if err != nil {
		t.Fatal(err)
	}

	sel := DefaultConfig()
	sel.Defense = mechanism.FSS(8)
	sel.VulnerableRounds = []int{10}
	gSel := mustGPU(t, sel)
	sres, err := gSel.Run(aesLikeKernel(1, 10), 1)
	if err != nil {
		t.Fatal(err)
	}

	base := mustGPU(t, DefaultConfig())
	bres, _ := base.Run(aesLikeKernel(1, 10), 1)

	// Non-vulnerable rounds coalesce whole-warp (baseline counts);
	// round 10 carries the FSS(8) inflation.
	for r := 1; r <= 9; r++ {
		if sres.RoundTx[r] != bres.RoundTx[r] {
			t.Errorf("round %d: selective tx %d != baseline %d", r, sres.RoundTx[r], bres.RoundTx[r])
		}
	}
	if sres.RoundTx[10] != fres.RoundTx[10] {
		t.Errorf("round 10: selective tx %d != full-FSS %d", sres.RoundTx[10], fres.RoundTx[10])
	}
	// Selective recovers most of the performance.
	if sres.TotalTx >= fres.TotalTx {
		t.Error("selective did not reduce total accesses vs full FSS")
	}
	if sres.Cycles >= fres.Cycles {
		t.Error("selective did not reduce cycles vs full FSS")
	}
}

func TestVulnerableRoundsValidation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.VulnerableRounds = []int{0}
	if cfg.Validate() == nil {
		t.Error("round 0 accepted")
	}
	cfg.VulnerableRounds = []int{MaxRounds + 1}
	if cfg.Validate() == nil {
		t.Error("out-of-range round accepted")
	}
}

func TestPlanPerWarpDiversifies(t *testing.T) {
	// Identical per-warp programs: with one launch plan all warps
	// produce identical access counts; with per-warp plans they split.
	mk := func(perWarp bool) *Result {
		cfg := DefaultConfig()
		cfg.Defense = mechanism.RSSRTS(8)
		cfg.PlanPerWarp = perWarp
		g := mustGPU(t, cfg)
		res, err := g.Run(aesLikeKernel(6, 10), 9)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	shared := mk(false)
	for i := 1; i < len(shared.Warps); i++ {
		if shared.Warps[i].TotalTx != shared.Warps[0].TotalTx {
			t.Fatal("shared plan produced differing per-warp counts on identical programs")
		}
	}
	per := mk(true)
	same := true
	for i := 1; i < len(per.Warps); i++ {
		if per.Warps[i].TotalTx != per.Warps[0].TotalTx {
			same = false
		}
	}
	if same {
		t.Error("per-warp plans produced identical counts on all warps")
	}
}

func TestCacheConfigValidationInGPU(t *testing.T) {
	cfg := DefaultConfig()
	cfg.L1Enabled = true
	cfg.L1 = DefaultL1()
	cfg.L1.LineBytes = 32
	if cfg.Validate() == nil {
		t.Error("L1 line size mismatch accepted")
	}
	cfg = DefaultConfig()
	cfg.L2Enabled = true
	cfg.L2 = DefaultL2()
	cfg.L2.Ways = 0
	if cfg.Validate() == nil {
		t.Error("invalid L2 accepted")
	}
	cfg = DefaultConfig()
	cfg.Scheduler = SchedulerKind(9)
	if cfg.Validate() == nil {
		t.Error("unknown scheduler accepted")
	}
}

func TestTraceSinkReceivesTimeline(t *testing.T) {
	cfg := DefaultConfig()
	sink := &CountingSink{}
	cfg.Trace = sink
	g := mustGPU(t, cfg)
	res, err := g.Run(testKernel(4, 8), 1)
	if err != nil {
		t.Fatal(err)
	}
	if sink.Counts[EvRetire] != 1 {
		t.Errorf("retire events = %d, want 1", sink.Counts[EvRetire])
	}
	// One memtx event per coalesced transaction, one reply each.
	if sink.Counts[EvMemTx] != res.TotalTx {
		t.Errorf("memtx events %d != total tx %d", sink.Counts[EvMemTx], res.TotalTx)
	}
	if sink.Counts[EvReply] != res.TotalTx {
		t.Errorf("reply events %d != total tx %d", sink.Counts[EvReply], res.TotalTx)
	}
	// At least one issue per instruction that executes.
	if sink.Counts[EvIssue] == 0 {
		t.Error("no issue events")
	}
}

func TestWriterSinkFormat(t *testing.T) {
	var buf strings.Builder
	sink := &WriterSink{W: &buf}
	sink.Emit(Event{Cycle: 42, Kind: EvMemTx, SM: 3, Warp: 7, Addr: 0x1000, Round: 10})
	out := buf.String()
	for _, want := range []string{"cycle=42", "kind=memtx", "sm=3", "warp=7", "addr=0x1000", "round=10"} {
		if !strings.Contains(out, want) {
			t.Errorf("trace line %q missing %q", out, want)
		}
	}
	if EvIssue.String() != "issue" || EvRetire.String() != "retire" || EventKind(9).String() != "unknown" {
		t.Error("event kind names wrong")
	}
}

func TestWriterSinkStopsOnError(t *testing.T) {
	sink := &WriterSink{W: failingWriter{}}
	sink.Emit(Event{})
	if sink.Err == nil {
		t.Fatal("write error not recorded")
	}
	sink.Emit(Event{}) // must not panic or clear the error
	if sink.Err == nil {
		t.Fatal("error cleared")
	}
}

type failingWriter struct{}

func (failingWriter) Write([]byte) (int, error) { return 0, errWriteFailed }

var errWriteFailed = errors.New("write failed")

func TestDRAMBackpressureTinyQueue(t *testing.T) {
	// A queue capacity of 1 forces back-pressure through the
	// interconnect; the kernel must still complete with identical
	// transaction counts, just more slowly.
	cfg := DefaultConfig()
	cfg.DRAMQueueCap = 1
	g := mustGPU(t, cfg)
	res, err := g.Run(aesLikeKernel(4, 10), 1)
	if err != nil {
		t.Fatal(err)
	}
	base := mustGPU(t, DefaultConfig())
	bres, err := base.Run(aesLikeKernel(4, 10), 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalTx != bres.TotalTx {
		t.Errorf("backpressure changed tx count: %d vs %d", res.TotalTx, bres.TotalTx)
	}
	if res.Cycles < bres.Cycles {
		t.Errorf("tiny queue (%d cycles) faster than default (%d)", res.Cycles, bres.Cycles)
	}
	for i := range res.Warps {
		if res.Warps[i].Finish <= 0 {
			t.Errorf("warp %d starved under backpressure", i)
		}
	}
}

func TestRunRejectsInvalidKernel(t *testing.T) {
	g := mustGPU(t, DefaultConfig())
	bad := &Kernel{Label: "bad", Warps: []*WarpProgram{{ID: 0, Instrs: []Instr{
		{Kind: Load, Addrs: make([]uint64, 7)}, // wrong warp size
	}}}}
	if _, err := g.Run(bad, 1); err == nil {
		t.Fatal("invalid kernel accepted")
	}
}

func TestInstrKindString(t *testing.T) {
	for k, want := range map[InstrKind]string{ALU: "alu", Load: "load", Store: "store",
		RoundMark: "roundmark", InstrKind(9): "unknown"} {
		if k.String() != want {
			t.Errorf("InstrKind(%d) = %q, want %q", k, k.String(), want)
		}
	}
}

func TestResultRoundWindowPanics(t *testing.T) {
	res := &Result{}
	defer func() {
		if recover() == nil {
			t.Fatal("RoundWindow(-1) did not panic")
		}
	}()
	res.RoundWindow(-1)
}

func TestEnergyModelEstimate(t *testing.T) {
	g := mustGPU(t, DefaultConfig())
	res, err := g.Run(aesLikeKernel(1, 10), 1)
	if err != nil {
		t.Fatal(err)
	}
	model := DefaultEnergyModel()
	eb := model.Estimate(res, DefaultConfig())
	if eb.Total() <= 0 {
		t.Fatal("no energy estimated")
	}
	// With caches off, the cache terms are zero and DRAM dominates.
	if eb.L1 != 0 || eb.L2 != 0 {
		t.Errorf("cache energy nonzero with caches disabled: L1=%v L2=%v", eb.L1, eb.L2)
	}
	if eb.DRAM <= eb.ALU {
		t.Errorf("DRAM energy %v not dominant over ALU %v on a memory-bound kernel", eb.DRAM, eb.ALU)
	}
	// More transactions -> more energy.
	cfg := DefaultConfig()
	cfg.Defense = mechanism.FSS(32)
	g32 := mustGPU(t, cfg)
	res32, err := g32.Run(aesLikeKernel(1, 10), 1)
	if err != nil {
		t.Fatal(err)
	}
	if model.Estimate(res32, cfg).Total() <= eb.Total() {
		t.Error("FSS(32) energy not above baseline")
	}
	// ALU accounting needs a kernel that actually has ALU instructions.
	aluRes, err := g.Run(testKernel(4, 8), 1)
	if err != nil {
		t.Fatal(err)
	}
	if aluRes.ALUOps == 0 {
		t.Error("ALU ops not counted")
	}
}

func TestEnergyModelWithCaches(t *testing.T) {
	cfg := DefaultConfig()
	cfg.L1Enabled = true
	cfg.L1 = DefaultL1()
	cfg.L2Enabled = true
	cfg.L2 = DefaultL2()
	g := mustGPU(t, cfg)
	res, err := g.Run(aesLikeKernel(1, 10), 1)
	if err != nil {
		t.Fatal(err)
	}
	eb := DefaultEnergyModel().Estimate(res, cfg)
	if eb.L1 <= 0 || eb.L2 <= 0 {
		t.Errorf("cache energies not counted: L1=%v L2=%v", eb.L1, eb.L2)
	}
	// Caches slash DRAM traffic, so total energy drops vs no caches.
	base := mustGPU(t, DefaultConfig())
	bres, _ := base.Run(aesLikeKernel(1, 10), 1)
	if eb.Total() >= DefaultEnergyModel().Estimate(bres, DefaultConfig()).Total() {
		t.Error("cached run not more energy-efficient on a reuse-heavy kernel")
	}
}

func TestSharedLoadBankConflicts(t *testing.T) {
	mk := func(addrs []uint64) *Result {
		wp := &WarpProgram{ID: 0, Instrs: []Instr{
			{Kind: RoundMark, Round: 1},
			{Kind: SharedLoad, Addrs: addrs, Round: 1},
			{Kind: RoundMark, Round: 0},
		}}
		g := mustGPU(t, DefaultConfig())
		res, err := g.Run(&Kernel{Warps: []*WarpProgram{wp}, Label: "shared"}, 1)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	// Conflict-free: 32 threads hit 32 distinct banks -> 1 pass.
	free := make([]uint64, 32)
	for i := range free {
		free[i] = uint64(i) * 4
	}
	if res := mk(free); res.SharedPasses[1] != 1 {
		t.Errorf("conflict-free passes = %d, want 1", res.SharedPasses[1])
	}

	// Broadcast: all threads read the same word -> 1 pass.
	bcast := make([]uint64, 32)
	if res := mk(bcast); res.SharedPasses[1] != 1 {
		t.Errorf("broadcast passes = %d, want 1", res.SharedPasses[1])
	}

	// Worst case: all threads hit distinct words of one bank -> 32.
	worst := make([]uint64, 32)
	for i := range worst {
		worst[i] = uint64(i) * 32 * 4
	}
	wres := mk(worst)
	if wres.SharedPasses[1] != 32 {
		t.Errorf("worst-case passes = %d, want 32", wres.SharedPasses[1])
	}
	// And it takes longer than the conflict-free access.
	if fres := mk(free); wres.RoundWindow(1) <= fres.RoundWindow(1) {
		t.Errorf("worst case (%d cycles) not slower than conflict-free (%d)",
			wres.RoundWindow(1), fres.RoundWindow(1))
	}
	// Shared loads generate no memory traffic.
	if wres.TotalTx != 0 {
		t.Errorf("shared load generated %d transactions", wres.TotalTx)
	}
}
