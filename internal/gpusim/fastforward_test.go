package gpusim

import (
	"fmt"
	"reflect"
	"testing"

	"rcoal/internal/mechanism"
	"rcoal/internal/rng"
)

// This file enforces the determinism contract of the event-driven
// fast-forward core: for any (kernel, seed, configuration), the Result
// of a fast-forwarded run is byte-identical to the Result of a pure
// cycle-stepped run — same cycle count, same per-round windows, same
// coalesced-access counts, same DRAM/L1/L2 statistics.

// randomKernel builds a multi-warp kernel with a mix of instruction
// kinds, divergence, and per-round markers, stressing the scheduler
// and memory paths with irregular address patterns.
func randomKernel(seed uint64, warps, rounds int) *Kernel {
	r := rng.New(seed)
	k := &Kernel{Label: fmt.Sprintf("ff-random-%d", seed)}
	for wid := 0; wid < warps; wid++ {
		wp := &WarpProgram{ID: wid}
		for round := 1; round <= rounds; round++ {
			wp.Instrs = append(wp.Instrs, Instr{Kind: RoundMark, Round: round})
			wp.Instrs = append(wp.Instrs, Instr{Kind: ALU, Round: round})
			for l := 0; l < 3; l++ {
				addrs := make([]uint64, 32)
				for t := range addrs {
					addrs[t] = uint64(r.Intn(64)) * 64 // 64 blocks of table space
				}
				ins := Instr{Kind: Load, Addrs: addrs, Round: round}
				if l == 1 && r.Intn(2) == 0 {
					active := make([]bool, 32)
					for t := range active {
						active[t] = r.Intn(4) != 0
					}
					ins.Active = active
				}
				wp.Instrs = append(wp.Instrs, ins)
			}
		}
		wp.Instrs = append(wp.Instrs, Instr{Kind: RoundMark, Round: 0})
		// Trailing store (ciphertext writeback pattern).
		addrs := make([]uint64, 32)
		for t := range addrs {
			addrs[t] = uint64(4096 + wid*2048 + t*64)
		}
		wp.Instrs = append(wp.Instrs, Instr{Kind: Store, Addrs: addrs})
		k.Warps = append(k.Warps, wp)
	}
	return k
}

// ffVariant is one configuration point of the differential grid.
type ffVariant struct {
	name string
	mut  func(*Config)
}

func ffVariants() []ffVariant {
	return []ffVariant{
		{"paper-baseline", func(c *Config) {}},
		{"l1l2", func(c *Config) {
			c.L1Enabled, c.L1 = true, DefaultL1()
			c.L2Enabled, c.L2 = true, DefaultL2()
		}},
		{"mshr", func(c *Config) { c.MSHREnabled = true }},
		{"l1l2-mshr-randomized", func(c *Config) {
			c.L1Enabled, c.L1 = true, DefaultL1()
			c.L2Enabled, c.L2 = true, DefaultL2()
			c.MSHREnabled = true
			c.CacheRandomized = true
		}},
		{"gto", func(c *Config) { c.Scheduler = GTO }},
		{"nocoal", func(c *Config) { c.Defense = mechanism.NoCoal() }},
		{"selective", func(c *Config) { c.VulnerableRounds = []int{1, 4} }},
		{"planperwarp", func(c *Config) { c.PlanPerWarp = true }},
	}
}

func ffMechanisms() []mechanism.Mechanism {
	return []mechanism.Mechanism{
		mechanism.Baseline(),
		mechanism.FSS(8),
		mechanism.FSSRTS(4),
		mechanism.RSS(8),
		mechanism.RSSRTS(8),
		mechanism.RSSNormal(4, 1.5),
	}
}

// TestFastForwardByteIdenticalResults runs the same (kernel, seed)
// with fast-forward forced off and on across every mechanism, ablation
// variant, and several seeds, requiring deeply equal Results.
func TestFastForwardByteIdenticalResults(t *testing.T) {
	kern := randomKernel(11, 4, 4)
	seeds := []uint64{1, 42, 0xdecaf}
	for _, variant := range ffVariants() {
		for _, mech := range ffMechanisms() {
			t.Run(fmt.Sprintf("%s/%s", variant.name, mech.Name()), func(t *testing.T) {
				cfg := DefaultConfig()
				cfg.Defense = mech
				variant.mut(&cfg)

				slow := cfg
				slow.FastForwardDisabled = true
				gSlow, err := New(slow)
				if err != nil {
					t.Fatal(err)
				}
				gFast, err := New(cfg)
				if err != nil {
					t.Fatal(err)
				}
				for _, seed := range seeds {
					want, err := gSlow.Run(kern, seed)
					if err != nil {
						t.Fatal(err)
					}
					got, err := gFast.Run(kern, seed)
					if err != nil {
						t.Fatal(err)
					}
					if !reflect.DeepEqual(want, got) {
						t.Fatalf("seed %d: fast-forward result differs\ncycle-stepped: cycles=%d totalTx=%d\nfast-forward:  cycles=%d totalTx=%d",
							seed, want.Cycles, want.TotalTx, got.Cycles, got.TotalTx)
					}
					if gFast.SkippedCycles == 0 && want.Cycles > 100 {
						t.Errorf("seed %d: fast-forward never skipped a cycle on a %d-cycle run", seed, want.Cycles)
					}
				}
			})
		}
	}
}

// TestFastForwardIdenticalAcrossReuse checks the runtime-reuse path:
// interleaving kernels of different warp counts (forcing rebuilds) and
// repeating seeds on a shared GPU must reproduce the results of fresh
// single-use GPUs, fast-forwarded or not.
func TestFastForwardIdenticalAcrossReuse(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Defense = mechanism.RSSRTS(8)
	shared, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	kerns := []*Kernel{randomKernel(1, 2, 3), randomKernel(2, 5, 2), randomKernel(3, 2, 4)}
	for round := 0; round < 2; round++ {
		for ki, kern := range kerns {
			seed := uint64(100*round + ki)
			got, err := shared.Run(kern, seed)
			if err != nil {
				t.Fatal(err)
			}
			fresh, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			want, err := fresh.Run(kern, seed)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(want, got) {
				t.Fatalf("round %d kernel %d: shared-GPU result differs from fresh-GPU result", round, ki)
			}
		}
	}
}

// TestFastForwardSkipsMostCycles pins the optimization itself: on a
// latency-bound single-warp kernel (each load coalesces to one
// transaction, so the machine sits idle for the full memory round
// trip) the event-driven core must elide the majority of cycles, not
// just a token few.
func TestFastForwardSkipsMostCycles(t *testing.T) {
	k := &Kernel{Label: "pointer-chase"}
	wp := &WarpProgram{ID: 0}
	for i := 0; i < 20; i++ {
		addrs := make([]uint64, 32)
		for t := range addrs {
			addrs[t] = uint64(i) * 64 // whole warp shares one block
		}
		wp.Instrs = append(wp.Instrs, Instr{Kind: Load, Addrs: addrs})
	}
	k.Warps = append(k.Warps, wp)

	g, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	res, err := g.Run(k, 9)
	if err != nil {
		t.Fatal(err)
	}
	if g.SkippedCycles*2 < res.Cycles {
		t.Fatalf("skipped only %d of %d cycles; expected > half on a latency-bound kernel",
			g.SkippedCycles, res.Cycles)
	}
}
