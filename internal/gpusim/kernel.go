package gpusim

import (
	"fmt"

	"rcoal/internal/gpusim/mem"
)

// InstrKind classifies warp instructions.
type InstrKind uint8

const (
	// ALU is any non-memory warp instruction (XOR, shift, ...); only
	// its latency matters.
	ALU InstrKind = iota
	// Load is a warp-wide global-memory read with one address per
	// active thread, subject to coalescing.
	Load
	// Store is a warp-wide global-memory write, also coalesced.
	Store
	// RoundMark is a zero-cost annotation delimiting AES rounds; the
	// simulator records per-round cycle windows at marks.
	RoundMark
	// SharedLoad is a warp-wide load from per-SM shared (scratchpad)
	// memory: no global traffic, but requests serialize over the 32
	// shared-memory banks — the bank-conflict timing channel of Jiang
	// et al. (GLSVLSI'17), which RCoal's coalescing randomization does
	// not cover. Addrs are byte offsets within shared memory.
	SharedLoad
)

func (k InstrKind) String() string {
	switch k {
	case ALU:
		return "alu"
	case Load:
		return "load"
	case Store:
		return "store"
	case RoundMark:
		return "roundmark"
	case SharedLoad:
		return "sharedload"
	}
	return "unknown"
}

// Instr is one warp instruction of a trace.
type Instr struct {
	Kind InstrKind
	// Latency overrides the ALU pipeline latency when positive.
	Latency int
	// Addrs holds one byte address per thread for Load/Store.
	Addrs []uint64
	// Active is the predication mask for Load/Store; nil = all active.
	Active []bool
	// Round is the AES round this instruction belongs to (1-based), or
	// 0 for traffic outside the rounds (plaintext loads, ciphertext
	// stores). RoundMark instructions announce entry into Round.
	Round int
}

// WarpProgram is the instruction trace of one warp.
type WarpProgram struct {
	// ID is the global warp id.
	ID     int
	Instrs []Instr
}

// Kernel is a launch: a set of warp traces executed to completion.
type Kernel struct {
	Warps []*WarpProgram
	// Label annotates results (e.g. "aes128-32lines").
	Label string
}

// Validate checks every memory instruction carries per-thread
// addresses matching the warp size.
func (k *Kernel) Validate(warpSize int) error {
	if len(k.Warps) == 0 {
		return fmt.Errorf("gpusim: kernel %q has no warps", k.Label)
	}
	for _, w := range k.Warps {
		if w == nil || len(w.Instrs) == 0 {
			return fmt.Errorf("gpusim: kernel %q has an empty warp", k.Label)
		}
		for i, ins := range w.Instrs {
			switch ins.Kind {
			case Load, Store, SharedLoad:
				if len(ins.Addrs) != warpSize {
					return fmt.Errorf("gpusim: warp %d instr %d: %d addresses, warp size %d",
						w.ID, i, len(ins.Addrs), warpSize)
				}
				if ins.Active != nil && len(ins.Active) != warpSize {
					return fmt.Errorf("gpusim: warp %d instr %d: active mask length %d",
						w.ID, i, len(ins.Active))
				}
			case ALU, RoundMark:
				// no constraints
			default:
				return fmt.Errorf("gpusim: warp %d instr %d: unknown kind %d", w.ID, i, ins.Kind)
			}
		}
	}
	return nil
}

// MemInstrs counts the global-memory instructions in the kernel, a
// quick sanity statistic for tests.
func (k *Kernel) MemInstrs() int {
	n := 0
	for _, w := range k.Warps {
		for _, ins := range w.Instrs {
			if ins.Kind == Load || ins.Kind == Store {
				n++
			}
		}
	}
	return n
}

// kindOf maps an instruction kind to the memory access kind.
func kindOf(k InstrKind) mem.AccessKind {
	if k == Store {
		return mem.Store
	}
	return mem.Load
}
