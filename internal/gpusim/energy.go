package gpusim

// Energy accounting in the style of GPUWattch (which the paper cites
// for its energy-efficiency argument): per-event dynamic energies plus
// cycle-proportional leakage, evaluated over a Result's counters. The
// constants are order-of-magnitude figures from the accelerator
// literature (≈20 pJ/bit DRAM, SRAM arrays at hundreds of pJ/access,
// ~45 nm-class logic); absolute joules are not the point — the paper's
// claims are about *relative* energy across mechanisms, which is what
// the experiments compare.

// EnergyModel holds per-event energies in picojoules.
type EnergyModel struct {
	// ALUOp is one warp-wide arithmetic instruction.
	ALUOp float64
	// CoalesceTx is the MCU/PRT work per emitted transaction.
	CoalesceTx float64
	// ICNTFlit is one 32-byte flit traversing the crossbar.
	ICNTFlit float64
	// L1Access / L2Access are per 64-byte SRAM access.
	L1Access, L2Access float64
	// DRAMAccess is one 64-byte DRAM access (activation amortized).
	DRAMAccess float64
	// LeakagePerCycle is whole-chip static power per core cycle.
	LeakagePerCycle float64
}

// DefaultEnergyModel returns the order-of-magnitude constants.
func DefaultEnergyModel() EnergyModel {
	return EnergyModel{
		ALUOp:           120,
		CoalesceTx:      40,
		ICNTFlit:        190,
		L1Access:        430,
		L2Access:        1100,
		DRAMAccess:      10500,
		LeakagePerCycle: 600,
	}
}

// EnergyBreakdown is the estimate for one kernel launch, in picojoules.
type EnergyBreakdown struct {
	ALU, Coalescing, Interconnect, L1, L2, DRAM, Leakage float64
}

// Total returns the summed energy in picojoules.
func (e EnergyBreakdown) Total() float64 {
	return e.ALU + e.Coalescing + e.Interconnect + e.L1 + e.L2 + e.DRAM + e.Leakage
}

// Estimate evaluates the model over a finished run. Flit counts follow
// the simulator's interconnect model: one request flit out plus
// BlockBytes/FlitBytes reply flits back per transaction that reached
// the interconnect (L1 hits never leave the SM).
func (m EnergyModel) Estimate(res *Result, cfg Config) EnergyBreakdown {
	var l1Hits, l2Hits, dram uint64
	for _, s := range res.L1 {
		l1Hits += s.Hits
	}
	for _, s := range res.L2 {
		l2Hits += s.Hits
	}
	for _, s := range res.DRAM {
		dram += s.Accesses
	}
	// Transactions that traversed the interconnect: everything the
	// coalescer emitted except L1 hits and MSHR merges.
	net := res.TotalTx - l1Hits - res.MSHRMerges
	flitsPerTx := float64(1 + 64/cfg.FlitBytes)

	eb := EnergyBreakdown{
		ALU:          float64(res.ALUOps) * m.ALUOp,
		Coalescing:   float64(res.TotalTx) * m.CoalesceTx,
		Interconnect: float64(net) * flitsPerTx * m.ICNTFlit,
		// Every coalesced load probes the L1 when present; hits also
		// avoid everything downstream.
		L1:      float64(l1Hits) * m.L1Access,
		L2:      float64(l2Hits+dram) * m.L2Access * btof(cfg.L2Enabled),
		DRAM:    float64(dram) * m.DRAMAccess,
		Leakage: float64(res.Cycles) * m.LeakagePerCycle,
	}
	return eb
}

func btof(b bool) float64 {
	if b {
		return 1
	}
	return 0
}
