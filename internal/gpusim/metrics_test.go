package gpusim

import (
	"encoding/json"
	"fmt"
	"testing"

	"rcoal/internal/mechanism"
)

func metricsConfig() Config {
	cfg := DefaultConfig()
	cfg.Defense = mechanism.RSS(4)
	cfg.Metrics = NewMetrics()
	return cfg
}

func TestMetricsReproduceRoundTx(t *testing.T) {
	// The acceptance check of the metrics layer: the exported snapshot
	// must reproduce the per-round coalesced-access counts the Result
	// already carries through WarpStats aggregation.
	cfg := metricsConfig()
	g := mustGPU(t, cfg)
	res, err := g.Run(randomKernel(7, 6, 4), 11)
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics == nil {
		t.Fatal("Config.Metrics installed but Result.Metrics is nil")
	}
	s := res.Metrics
	for r := 0; r <= MaxRounds; r++ {
		name := fmt.Sprintf("%s/%02d", MetricRoundTx, r)
		if got := s.Counters[name]; got != res.RoundTx[r] {
			t.Errorf("%s = %d, want Result.RoundTx[%d] = %d", name, got, r, res.RoundTx[r])
		}
	}
	// Cross-checks tying the histograms to the Result's totals: every
	// transaction is one group-size observation, and the per-instruction
	// counts sum to the total transaction count.
	if h, ok := s.Histograms[MetricTxGroupSize]; !ok || h.Count != res.TotalTx {
		t.Errorf("%s count = %d, want TotalTx = %d", MetricTxGroupSize, h.Count, res.TotalTx)
	}
	if h, ok := s.Histograms[MetricTxPerInstr]; !ok || uint64(h.Sum) != res.TotalTx {
		t.Errorf("%s sum = %d, want TotalTx = %d", MetricTxPerInstr, h.Sum, res.TotalTx)
	}
	// DRAM partition counters must agree with the controller stats.
	var wantAcc, gotAcc uint64
	for pid, d := range res.DRAM {
		wantAcc += d.Accesses
		gotAcc += s.Counters[fmt.Sprintf("dram/p%d/accesses", pid)]
	}
	if gotAcc != wantAcc {
		t.Errorf("dram accesses from metrics = %d, from stats = %d", gotAcc, wantAcc)
	}
	// And the per-bank table partitions those counts: each partition's
	// rows sum to its partition-level counter.
	banks, ok := s.Tables[MetricDRAMBanks]
	if !ok {
		t.Fatalf("%s table missing from snapshot", MetricDRAMBanks)
	}
	bankRows := len(banks.Rows) / len(res.DRAM)
	for pid := range res.DRAM {
		var acc uint64
		for b := 0; b < bankRows; b++ {
			acc += banks.Value(pid*bankRows+b, BankColAccesses)
		}
		if want := s.Counters[fmt.Sprintf("dram/p%d/accesses", pid)]; acc != want {
			t.Errorf("partition %d bank rows sum to %d accesses, counter says %d", pid, acc, want)
		}
	}
	// The launch ran warps and stalled schedulers at least once each.
	if s.Counters[MetricIssued] == 0 {
		t.Error("no issued instructions counted")
	}
	if h := s.Histograms[MetricPRTOccupancy]; h.Count == 0 || h.Min < 0 {
		t.Errorf("PRT occupancy histogram count=%d min=%d", h.Count, h.Min)
	}
	if h := s.Histograms[MetricInjectDepth]; h.Count == 0 {
		t.Error("inject-queue depth never observed")
	}
	if h := s.Histograms[MetricICNTToMemDepth]; h.Count == 0 {
		t.Error("to-mem crossbar depth never observed")
	}
	// The snapshot must marshal (the JSON export path used by the CLIs).
	if _, err := json.Marshal(s); err != nil {
		t.Fatalf("snapshot marshal: %v", err)
	}
}

func TestMetricsGroupSizesSumToActiveThreads(t *testing.T) {
	// Group sizes partition the active threads of each memory
	// instruction, so their histogram sum counts thread-level accesses.
	// The test kernel keeps every thread active, making the expected sum
	// exactly warpSize x memory instructions; count that via tx_per_instr
	// observations.
	cfg := metricsConfig()
	g := mustGPU(t, cfg)
	res, err := g.Run(aesLikeKernel(4, 3), 5)
	if err != nil {
		t.Fatal(err)
	}
	s := res.Metrics
	instrs := s.Histograms[MetricTxPerInstr].Count
	want := int64(instrs) * int64(DefaultConfig().WarpSize)
	if got := s.Histograms[MetricTxGroupSize].Sum; got != want {
		t.Errorf("group-size sum = %d, want %d (%d instrs x 32 threads)", got, want, instrs)
	}
}

func TestMetricsResetBetweenRuns(t *testing.T) {
	// Each Run reports exactly its own launch: repeating the identical
	// launch must yield an identical snapshot, not an accumulated one.
	cfg := metricsConfig()
	g := mustGPU(t, cfg)
	k := randomKernel(3, 4, 3)
	first, err := g.Run(k, 9)
	if err != nil {
		t.Fatal(err)
	}
	second, err := g.Run(k, 9)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := json.Marshal(first.Metrics)
	b, _ := json.Marshal(second.Metrics)
	if string(a) != string(b) {
		t.Error("identical launches produced different metric snapshots")
	}
}

func TestMetricsOffLeavesResultNil(t *testing.T) {
	g := mustGPU(t, DefaultConfig())
	res, err := g.Run(randomKernel(1, 2, 2), 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics != nil {
		t.Error("Result.Metrics set without Config.Metrics")
	}
}

func TestMetricsCoalescingDisabledGroupsOfOne(t *testing.T) {
	cfg := metricsConfig()
	cfg.Defense = mechanism.NoCoal()
	g := mustGPU(t, cfg)
	res, err := g.Run(aesLikeKernel(2, 2), 3)
	if err != nil {
		t.Fatal(err)
	}
	h := res.Metrics.Histograms[MetricTxGroupSize]
	if h.Count == 0 || h.Max != 1 {
		t.Errorf("uncoalesced group sizes: count=%d max=%d, want all 1", h.Count, h.Max)
	}
	if h.Count != res.TotalTx {
		t.Errorf("group count %d != TotalTx %d", h.Count, res.TotalTx)
	}
}

// TestRunAllocsPerRunMetricsOff guards the observability PR's zero-cost
// promise: with no metrics bundle installed, steady-state Run stays at
// the pinned allocation count — the nil checks added for metrics and
// the extra trace kinds contribute nothing.
func TestRunAllocsPerRunMetricsOff(t *testing.T) {
	g, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	k := randomKernel(5, 2, 3)
	if _, err := g.Run(k, 1); err != nil {
		t.Fatal(err)
	}
	avg := testing.AllocsPerRun(20, func() {
		if _, err := g.Run(k, 2); err != nil {
			t.Fatal(err)
		}
	})
	if avg > steadyStateRunAllocs {
		t.Errorf("metrics-off Run allocates %.1f times per launch, pinned at %d",
			avg, steadyStateRunAllocs)
	}
}
