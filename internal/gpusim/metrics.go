package gpusim

import (
	"fmt"

	"rcoal/internal/metrics"
)

// This file is the simulator's metrics layer: a typed bundle of
// counters, gauges, and histograms (internal/metrics) instrumenting
// the microarchitectural distributions the RCoal evaluation reasons
// about — MCU coalescing behaviour, PRT occupancy, DRAM row locality
// and queueing, crossbar queue depths, and warp-scheduler stalls.
//
// The discipline matches the trace sink: metrics are off unless a
// *Metrics is installed on the Config, and every hot-path site pays
// only a nil check. With metrics on, Run resets the bundle at launch
// start and snapshots it into Result.Metrics at completion, so each
// Result carries exactly its own launch's distributions; snapshots
// from many launches aggregate with metrics.Snapshot.Merge.

// Metric names exported by the simulator (the registry keys of a
// Result.Metrics snapshot). Per-partition DRAM metrics are formatted
// with partition ids, e.g. "dram/p2/queue_depth"; per-bank detail
// lives in the MetricDRAMBanks table (rows "p2/b07", columns
// accesses/row_hits/row_misses/row_conflicts).
const (
	// MetricTxPerInstr histograms the Algorithm-1 group count: how many
	// coalesced transactions the MCU emitted per warp-wide memory
	// instruction under the launch's subwarp plan.
	MetricTxPerInstr = "mcu/tx_per_instr"
	// MetricTxGroupSize histograms the threads merged into each
	// coalesced transaction (the subwarp coalesce group sizes).
	MetricTxGroupSize = "mcu/tx_group_size"
	// MetricRoundTx counters (one per AES round, "mcu/round_tx/NN")
	// mirror Result.RoundTx so the exported JSON is self-contained.
	MetricRoundTx = "mcu/round_tx"
	// MetricPRTOccupancy histograms the per-SM pending-request-table
	// occupancy, observed at every entry allocation and drain.
	MetricPRTOccupancy = "sm/prt_occupancy"
	// MetricInjectDepth histograms the LD/ST unit's transaction queue
	// depth at every enqueue.
	MetricInjectDepth = "sm/inject_queue_depth"
	// MetricICNTToMemDepth / MetricICNTToSMDepth histogram the
	// request (inject) and reply crossbar port depths at every push.
	MetricICNTToMemDepth = "icnt/to_mem_depth"
	MetricICNTToSMDepth  = "icnt/to_sm_depth"
	// MetricStallMemory / MetricStallPipeline / MetricStallIdle count
	// scheduler slots that issued nothing, by reason: every candidate
	// warp blocked on memory; warps ready but inside their pipeline
	// latency; all warps finished.
	MetricStallMemory   = "sched/stall_memory"
	MetricStallPipeline = "sched/stall_pipeline"
	MetricStallIdle     = "sched/stall_idle"
	// MetricIssued counts instructions issued across all schedulers.
	MetricIssued = "sched/issued"
	// MetricDRAMBanks is the per-bank row-locality table: one row per
	// (partition, bank) pair, columns accesses, row_hits, row_misses,
	// row_conflicts. A dense table keeps the per-launch snapshot cheap
	// (one slice copy) where 96x4 named counters would not be.
	MetricDRAMBanks = "dram/banks"
)

// Column indices of the MetricDRAMBanks table.
const (
	BankColAccesses = iota
	BankColRowHits
	BankColRowMisses
	BankColRowConflicts
)

// bankCols is the MetricDRAMBanks column labels, in column order.
var bankCols = []string{"accesses", "row_hits", "row_misses", "row_conflicts"}

// Metrics instruments one GPU. Install with Config.Metrics; create one
// per GPU (the bundle is single-goroutine, like the GPU itself).
type Metrics struct {
	reg *metrics.Registry

	// Hot-path handles, resolved once at construction.
	txPerInstr    *metrics.Histogram
	txGroupSize   *metrics.Histogram
	roundTx       [MaxRounds + 1]*metrics.Counter
	prtOccupancy  *metrics.Histogram
	injectDepth   *metrics.Histogram
	icntToMem     *metrics.Histogram
	icntToSM      *metrics.Histogram
	stallMemory   *metrics.Counter
	stallPipeline *metrics.Counter
	stallIdle     *metrics.Counter
	issued        *metrics.Counter

	// sizeScratch backs the per-instruction group-size computation.
	sizeScratch []int

	// dram holds the per-partition counter handles and banks the
	// per-bank table, resolved once when the runtime is built
	// (installDRAM) so the per-launch snapshot formats no names.
	dram     []dramPartMetrics
	banks    *metrics.Table
	banksPer int // banks per partition (table row stride)
}

// dramPartMetrics caches one partition's metric handles.
type dramPartMetrics struct {
	accesses, rowHits, rowMisses, rowConfl *metrics.Counter
	maxQueue                               *metrics.Gauge
}

// NewMetrics returns a metrics bundle ready to install on a Config.
func NewMetrics() *Metrics {
	reg := metrics.NewRegistry()
	m := &Metrics{
		reg: reg,
		// A warp splits into at most 32 transactions per instruction
		// (one per thread), and group sizes are 1..32: unit buckets
		// resolve the full distribution exactly.
		txPerInstr:  reg.Histogram(MetricTxPerInstr, metrics.LinearBounds(1, 32)),
		txGroupSize: reg.Histogram(MetricTxGroupSize, metrics.LinearBounds(1, 32)),
		// PRT and queue depths: unit buckets to 32, then coarser tails.
		prtOccupancy:  reg.Histogram(MetricPRTOccupancy, depthBounds()),
		injectDepth:   reg.Histogram(MetricInjectDepth, depthBounds()),
		icntToMem:     reg.Histogram(MetricICNTToMemDepth, depthBounds()),
		icntToSM:      reg.Histogram(MetricICNTToSMDepth, depthBounds()),
		stallMemory:   reg.Counter(MetricStallMemory),
		stallPipeline: reg.Counter(MetricStallPipeline),
		stallIdle:     reg.Counter(MetricStallIdle),
		issued:        reg.Counter(MetricIssued),
	}
	for r := 0; r <= MaxRounds; r++ {
		m.roundTx[r] = reg.Counter(fmt.Sprintf("%s/%02d", MetricRoundTx, r))
	}
	return m
}

// depthBounds is the queue/PRT bucket layout: exact to 32, then
// power-of-two tails to 1024.
func depthBounds() []int64 {
	b := metrics.LinearBounds(1, 32)
	for v := int64(64); v <= 1024; v *= 2 {
		b = append(b, v)
	}
	return b
}

// Snapshot exports the bundle's current state.
func (m *Metrics) Snapshot() *metrics.Snapshot { return m.reg.Snapshot() }

// reset zeroes every metric for a new launch.
func (m *Metrics) reset() { m.reg.Reset() }

// dramDepthHist returns partition pid's queue-depth histogram,
// creating it on first use (called at build time, not on the hot
// path).
func (m *Metrics) dramDepthHist(pid int) *metrics.Histogram {
	return m.reg.Histogram(fmt.Sprintf("dram/p%d/queue_depth", pid), depthBounds())
}

// installDRAM resolves the per-partition and per-bank counter handles.
// Build-time only; get-or-create semantics make re-installation after
// a runtime rebuild a no-op.
func (m *Metrics) installDRAM(partitions, banks int) {
	if len(m.dram) == partitions && m.banksPer == banks {
		return
	}
	m.dram = make([]dramPartMetrics, partitions)
	rows := make([]string, 0, partitions*banks)
	for pid := range m.dram {
		prefix := fmt.Sprintf("dram/p%d", pid)
		p := &m.dram[pid]
		p.accesses = m.reg.Counter(prefix + "/accesses")
		p.rowHits = m.reg.Counter(prefix + "/row_hits")
		p.rowMisses = m.reg.Counter(prefix + "/row_misses")
		p.rowConfl = m.reg.Counter(prefix + "/row_conflicts")
		p.maxQueue = m.reg.Gauge(prefix + "/max_queue")
		for b := 0; b < banks; b++ {
			rows = append(rows, fmt.Sprintf("p%d/b%02d", pid, b))
		}
	}
	m.banks = m.reg.Table(MetricDRAMBanks, rows, bankCols)
	m.banksPer = banks
}

// observeSizes records one MCU pass from its group sizes (one per
// emitted transaction): the instruction's transaction count, the
// per-transaction group sizes, and the round attribution.
func (m *Metrics) observeSizes(sizes []int, round int) {
	m.txPerInstr.Observe(int64(len(sizes)))
	m.roundTx[round].Add(uint64(len(sizes)))
	for _, s := range sizes {
		m.txGroupSize.Observe(int64(s))
	}
}

// observeUncoalesced records a coalescing-disabled instruction: every
// transaction is its own group of one thread.
func (m *Metrics) observeUncoalesced(nTx, round int) {
	m.txPerInstr.Observe(int64(nTx))
	m.roundTx[round].Add(uint64(nTx))
	for i := 0; i < nTx; i++ {
		m.txGroupSize.Observe(1)
	}
}

// snapshotInto finalizes the launch's metrics: DRAM per-bank and
// per-partition counters are pulled from the controllers via the
// handles cached at build time (cheap, snapshot-time only), and the
// full bundle is exported into res.
func (g *GPU) snapshotInto(st *runState, res *Result) {
	m := g.cfg.Metrics
	for pid, p := range st.parts {
		pm := &m.dram[pid]
		s := p.ctrl.Stats
		pm.accesses.Add(s.Accesses)
		pm.rowHits.Add(s.RowHits)
		pm.rowMisses.Add(s.RowMisses)
		pm.rowConfl.Add(s.RowConflicts)
		pm.maxQueue.Set(int64(s.MaxQueue))
		for _, b := range p.ctrl.BankStats() {
			row := pid*m.banksPer + b.Bank
			m.banks.Add(row, BankColAccesses, b.Accesses)
			m.banks.Add(row, BankColRowHits, b.RowHits)
			m.banks.Add(row, BankColRowMisses, b.RowMisses)
			m.banks.Add(row, BankColRowConflicts, b.RowConflicts)
		}
	}
	res.Metrics = m.Snapshot()
}
