package gpusim

import (
	"errors"
	"fmt"
	"strings"
)

// ErrNoProgress is the sentinel wrapped by every *NoProgressError:
// the forward-progress watchdog found the launch wedged — no subsystem
// changed state for a full watchdog window (or provably never will)
// while warps remained unfinished. Match with errors.Is; recover the
// diagnostic snapshot with errors.As into a *NoProgressError.
var ErrNoProgress = errors.New("gpusim: no forward progress")

// ErrMaxCycles is the sentinel wrapped by every *MaxCyclesError: the
// launch exhausted its Config.MaxCycles budget.
var ErrMaxCycles = errors.New("gpusim: cycle budget exhausted")

// NoProgressError reports a wedged launch: which kernel, when the
// watchdog tripped, and a diagnostic snapshot of where every request
// and warp was stuck.
type NoProgressError struct {
	// Kernel is the launch's label.
	Kernel string
	// Cycle is the simulated cycle at which the watchdog tripped.
	Cycle int64
	// Window is how many consecutive no-change steps it waited; 0 means
	// the watchdog proved immediately that no future step could change
	// state (nothing in flight, warps still unfinished).
	Window int64
	// Snapshot is the launch state at the trip point.
	Snapshot *Snapshot
}

func (e *NoProgressError) Error() string {
	why := fmt.Sprintf("no state change for %d steps", e.Window)
	if e.Window == 0 {
		why = "nothing in flight can ever complete"
	}
	return fmt.Sprintf("gpusim: kernel %q made no forward progress at cycle %d (%s)\n%s",
		e.Kernel, e.Cycle, why, e.Snapshot)
}

// Unwrap lets errors.Is(err, ErrNoProgress) match.
func (e *NoProgressError) Unwrap() error { return ErrNoProgress }

// MaxCyclesError reports a launch that exhausted its cycle budget,
// with the same diagnostic snapshot a watchdog trip carries.
type MaxCyclesError struct {
	// Kernel is the launch's label.
	Kernel string
	// MaxCycles is the exhausted budget.
	MaxCycles int64
	// Snapshot is the launch state when the budget ran out.
	Snapshot *Snapshot
}

func (e *MaxCyclesError) Error() string {
	return fmt.Sprintf("gpusim: kernel %q exceeded %d cycles\n%s", e.Kernel, e.MaxCycles, e.Snapshot)
}

// Unwrap lets errors.Is(err, ErrMaxCycles) match.
func (e *MaxCyclesError) Unwrap() error { return ErrMaxCycles }

// Snapshot is a diagnostic dump of a launch's runtime state, attached
// to watchdog and cycle-budget errors so a wedged multi-hour sweep
// reports where it was stuck instead of hanging.
type Snapshot struct {
	// Cycle is the simulated cycle the snapshot was taken at.
	Cycle int64
	// RemainingWarps counts unfinished warps across the launch.
	RemainingWarps int
	// SMs holds one entry per SM with resident warps.
	SMs []SMSnapshot
	// ToMemPending / ToSMPending are the packet totals queued in the
	// SM→partition and partition→SM crossbars.
	ToMemPending, ToSMPending int
	// Partitions holds one entry per memory partition.
	Partitions []PartitionSnapshot
}

// SMSnapshot is one SM's state: warp-scheduler occupancy and the PRT
// (pending request table) pressure of its LD/ST unit.
type SMSnapshot struct {
	// SM is the SM id.
	SM int
	// Warps/Done/Blocked/Ready partition the resident warps: Blocked
	// warps wait on memory replies, Ready warps could issue.
	Warps, Done, Blocked, Ready int
	// PRTEntries is the PRT occupancy: outstanding memory replies
	// summed over the SM's warps.
	PRTEntries int
	// InjectQueue is the LD/ST unit's queued-transaction count (the
	// PRT drain queue of Figure 11).
	InjectQueue int
	// LocalReplies counts maturing L1-hit replies.
	LocalReplies int
}

// PartitionSnapshot is one memory partition's controller state.
type PartitionSnapshot struct {
	// Partition is the partition id.
	Partition int
	// Queued is the controller's unscheduled request count; InFlight
	// counts scheduled requests whose data has not returned.
	Queued, InFlight int
	// L2Replies counts maturing L2-hit replies.
	L2Replies int
}

// String renders the snapshot as a compact multi-line diagnostic,
// omitting fully idle SMs and partitions.
func (s *Snapshot) String() string {
	if s == nil {
		return "  (no snapshot)"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "  snapshot @ cycle %d: %d warps unfinished; icnt to-mem=%d to-sm=%d\n",
		s.Cycle, s.RemainingWarps, s.ToMemPending, s.ToSMPending)
	for _, sm := range s.SMs {
		if sm.Done == sm.Warps && sm.PRTEntries == 0 && sm.InjectQueue == 0 && sm.LocalReplies == 0 {
			continue
		}
		fmt.Fprintf(&b, "  sm %d: warps %d (done %d, blocked %d, ready %d), prt %d, injectq %d, l1-replies %d\n",
			sm.SM, sm.Warps, sm.Done, sm.Blocked, sm.Ready, sm.PRTEntries, sm.InjectQueue, sm.LocalReplies)
	}
	for _, p := range s.Partitions {
		if p.Queued == 0 && p.InFlight == 0 && p.L2Replies == 0 {
			continue
		}
		fmt.Fprintf(&b, "  partition %d: queued %d, in-flight %d, l2-replies %d\n",
			p.Partition, p.Queued, p.InFlight, p.L2Replies)
	}
	return strings.TrimRight(b.String(), "\n")
}

// snapshot captures the launch state for a diagnostic error.
func (g *GPU) snapshot(st *runState, now int64) *Snapshot {
	s := &Snapshot{Cycle: now, RemainingWarps: st.remaining}
	for smID, sm := range st.sms {
		if len(sm.warps) == 0 {
			continue
		}
		snap := SMSnapshot{SM: smID, Warps: len(sm.warps),
			InjectQueue: sm.injectQ.Len(), LocalReplies: len(sm.replies)}
		for _, w := range sm.warps {
			switch {
			case w.done:
				snap.Done++
			case w.blocked:
				snap.Blocked++
			default:
				snap.Ready++
			}
			snap.PRTEntries += w.pending
		}
		s.SMs = append(s.SMs, snap)
		s.ToSMPending += st.toSM.Pending(smID)
	}
	for pid, p := range st.parts {
		s.Partitions = append(s.Partitions, PartitionSnapshot{
			Partition: pid, Queued: p.ctrl.QueueLen(),
			InFlight: p.ctrl.InFlight(), L2Replies: len(p.replies)})
		s.ToMemPending += st.toMem.Pending(pid)
	}
	return s
}
