package gpusim

import (
	"fmt"
	"reflect"

	"rcoal/internal/core"
	"rcoal/internal/gpusim/dram"
	"rcoal/internal/gpusim/icnt"
	"rcoal/internal/gpusim/mem"
	"rcoal/internal/mechanism"
	"rcoal/internal/rng"
)

// This file implements copy-on-write prefix forking for selective
// RCoal sweeps. Under VulnerableRounds only the listed rounds use the
// mechanism's subwarp plan; every other instruction coalesces with the
// whole-warp basePlan, whose derivation consumes zero RNG draws
// (mechanism.WholeWarpPlan never touches a stream, and plan-only
// mechanisms — the only ones forkable() admits — draw nothing at
// per-request time). The timing prefix
// up to the first vulnerable-round instruction is therefore a pure
// function of (kernel, seed), independent of the mechanism under test:
// RunPrefix simulates it once, snapshots the complete simulator state,
// and RunFork replays only the vulnerable suffix per mechanism —
// byte-identical to a full Run, which fork_test.go and internal/equiv
// enforce differentially.

// PrefixSnapshot is the frozen state of a launch paused at the first
// vulnerable-round boundary (or run to completion when the kernel has
// no vulnerable-round work). It is immutable after RunPrefix returns:
// any number of RunFork calls, from any fork-compatible GPU, may
// consume the same snapshot sequentially or from different GPUs.
type PrefixSnapshot struct {
	cfg      Config
	kernel   *Kernel
	seed     uint64
	cycle    int64 // the paused cycle; no work of this cycle has run
	finished bool  // the prefix ran to termination (nothing to fork)

	// reqs interns every in-flight request by value; subsystem
	// snapshots refer to requests by index so the snapshot survives
	// arena reuse across forks.
	reqs  []mem.Request
	warps []warpSnap
	sms   []smSnap
	parts []partSnap
	toMem *icnt.Snapshot
	toSM  *icnt.Snapshot

	res       Result // deep copy; Plan zeroed (mechanism-dependent)
	reqID     uint64
	remaining int
	progress  uint64
	basePlan  core.Plan
}

// Cycle returns the cycle the prefix paused at (or the total runtime
// when Finished).
func (s *PrefixSnapshot) Cycle() int64 { return s.cycle }

// Finished reports whether the prefix ran to completion without
// reaching a vulnerable round, in which case forks replay nothing.
func (s *PrefixSnapshot) Finished() bool { return s.finished }

type warpSnap struct {
	pc       int
	readyAt  int64
	pending  int
	blocked  bool
	curRound int
	done     bool
	stats    WarpStats
}

type smSnap struct {
	injectQ  []int // request indices in FIFO order
	replies  []localReply
	mshr     map[uint64][]int // nil when MSHR disabled
	schedPtr []int
	prt      int
}

type partSnap struct {
	dram    *dram.Snapshot
	replies []int
}

// forkable rejects configurations the prefix-fork fast path cannot
// serve. Caches are excluded because their internal state has no
// snapshot support (and cache keys are launch-derived); traces,
// metrics, and fault seams observe prefix-internal events and would
// otherwise double-count across forks; PlanPerWarp draws per-warp
// plans from the hardware stream, which breaks the zero-draw argument
// that makes the prefix mechanism-independent.
func (g *GPU) forkable() error {
	switch {
	case len(g.cfg.VulnerableRounds) == 0:
		return fmt.Errorf("gpusim: prefix forking requires selective RCoal (set VulnerableRounds)")
	case g.cfg.PlanPerWarp:
		return fmt.Errorf("gpusim: prefix forking is incompatible with PlanPerWarp")
	case g.cfg.L1Enabled || g.cfg.L2Enabled:
		return fmt.Errorf("gpusim: prefix forking is incompatible with caches")
	case g.cfg.Trace != nil:
		return fmt.Errorf("gpusim: prefix forking is incompatible with tracing")
	case g.cfg.Metrics != nil:
		return fmt.Errorf("gpusim: prefix forking is incompatible with metrics")
	case g.cfg.Faults != nil:
		return fmt.Errorf("gpusim: prefix forking is incompatible with fault injection")
	case !mechanism.PlanOnly(g.cfg.Defense, g.cfg.WarpSize):
		// Per-request hooks (delay, shuffle) and the coalescer bypass
		// consume defense randomness — or change timing — inside the
		// prefix, so the prefix is no longer mechanism-independent.
		return fmt.Errorf("gpusim: prefix forking requires a plan-only defense, not %s", g.cfg.Defense.Spec())
	}
	return nil
}

// forkCompatible reports whether two configurations may share a prefix
// snapshot: identical in every respect except the defense mechanism
// under test.
func forkCompatible(a, b Config) bool {
	a.Defense = nil
	b.Defense = nil
	return reflect.DeepEqual(a, b)
}

// RunPrefix simulates the mechanism-independent prefix of the kernel —
// everything before the first vulnerable-round instruction issues —
// and returns a reusable snapshot. The GPU's own Defense is irrelevant
// to the prefix (conventionally mechanism.Baseline()); what matters is
// that every other Config field matches the fork GPUs'.
func (g *GPU) RunPrefix(k *Kernel, seed uint64) (*PrefixSnapshot, error) {
	if err := g.forkable(); err != nil {
		return nil, err
	}
	if err := k.Validate(g.cfg.WarpSize); err != nil {
		return nil, err
	}
	st, err := g.setup(k, seed)
	if err != nil {
		return nil, err
	}
	pausedAt, paused, err := g.loop(st, k, 0, true)
	if err != nil {
		return nil, err
	}
	snap := g.snapshotPrefix(st, k, seed)
	if paused {
		snap.cycle = pausedAt
	} else {
		// The kernel finished without touching a vulnerable round.
		// Resuming the loop at the terminal cycle re-detects
		// termination immediately with the same Cycles value, so forks
		// of a finished snapshot still return correct Results.
		snap.cycle = st.res.Cycles
		snap.finished = true
	}
	return snap, nil
}

// snapshotPrefix deep-copies the launch state. Live request pointers
// are interned by value so the snapshot is decoupled from the arena.
func (g *GPU) snapshotPrefix(st *runState, k *Kernel, seed uint64) *PrefixSnapshot {
	snap := &PrefixSnapshot{
		cfg:       g.cfg,
		kernel:    k,
		seed:      seed,
		reqID:     st.reqID,
		remaining: st.remaining,
		progress:  st.progress,
	}
	snap.basePlan = core.Plan{
		Sizes: append([]int(nil), st.basePlan.Sizes...),
		SID:   append([]uint8(nil), st.basePlan.SID...),
	}
	snap.res = *st.res
	snap.res.Warps = append([]WarpStats(nil), st.res.Warps...)
	snap.res.Plan = core.Plan{}

	idx := make(map[*mem.Request]int)
	intern := func(r *mem.Request) int {
		if i, ok := idx[r]; ok {
			return i
		}
		i := len(snap.reqs)
		snap.reqs = append(snap.reqs, *r)
		idx[r] = i
		return i
	}

	snap.warps = make([]warpSnap, len(st.runs))
	for i, w := range st.runs {
		snap.warps[i] = warpSnap{
			pc: w.pc, readyAt: w.readyAt, pending: w.pending,
			blocked: w.blocked, curRound: w.curRound, done: w.done,
			stats: w.stats,
		}
	}

	snap.sms = make([]smSnap, len(st.sms))
	var scratch []*mem.Request
	for i, sm := range st.sms {
		ss := &snap.sms[i]
		scratch = sm.injectQ.Snapshot(scratch[:0])
		for _, r := range scratch {
			ss.injectQ = append(ss.injectQ, intern(r))
		}
		ss.replies = append([]localReply(nil), sm.replies...)
		if sm.mshr != nil {
			ss.mshr = make(map[uint64][]int, len(sm.mshr))
			for b, waiters := range sm.mshr {
				ss.mshr[b] = append([]int(nil), waiters...)
			}
		}
		ss.schedPtr = append([]int(nil), sm.schedPtr...)
		ss.prt = sm.prt
	}

	snap.parts = make([]partSnap, len(st.parts))
	for i, p := range st.parts {
		ps := &snap.parts[i]
		ps.dram = p.ctrl.Snapshot(intern)
		for _, r := range p.replies {
			ps.replies = append(ps.replies, intern(r))
		}
	}

	snap.toMem = st.toMem.Snapshot(intern)
	snap.toSM = st.toSM.Snapshot(intern)
	return snap
}

// RunFork resumes a prefix snapshot under this GPU's defense
// mechanism and runs the vulnerable suffix to completion. The result
// is byte-identical to g.Run(snap kernel, snap seed). The snapshot is
// not consumed: it may be forked again, by this or another
// fork-compatible GPU.
func (g *GPU) RunFork(snap *PrefixSnapshot) (*Result, error) {
	if err := g.forkable(); err != nil {
		return nil, err
	}
	if !forkCompatible(g.cfg, snap.cfg) {
		return nil, fmt.Errorf("gpusim: fork config differs from prefix config beyond the coalescing mechanism")
	}
	k := snap.kernel // validated by RunPrefix under an identical WarpSize

	// Re-derive the launch exactly as setup would: the fork's mechanism
	// plan comes from the same hardware stream position because the
	// basePlan derivation between them consumes nothing.
	hwRNG := rng.New(snap.seed).Split(0xC0A1)
	launch, err := g.cfg.Defense.NewLaunch(g.cfg.WarpSize, hwRNG)
	if err != nil {
		return nil, err
	}
	cacheRNG := rng.New(snap.seed).Split(0xCAC8E)

	st := g.rt
	if st == nil || len(st.runs) != len(k.Warps) {
		if st, err = g.build(len(k.Warps)); err != nil {
			return nil, err
		}
		g.rt = st
	}
	g.resetRuntime(st, cacheRNG)
	g.arena.reset()

	// Materialize the interned requests as fresh arena values; all
	// subsystem restores below resolve indices through ptrs, so forks
	// never alias the snapshot's (or each other's) request storage.
	ptrs := make([]*mem.Request, len(snap.reqs))
	for i := range snap.reqs {
		ptrs[i] = g.arena.get()
		*ptrs[i] = snap.reqs[i]
	}
	req := func(i int) *mem.Request { return ptrs[i] }

	res := snap.res
	res.Warps = append([]WarpStats(nil), snap.res.Warps...)
	res.Plan = launch.Plan
	st.res = &res
	st.reqID = snap.reqID
	st.remaining = snap.remaining
	st.progress = snap.progress
	st.launch = launch
	st.defRNG = nil // forkable() admits plan-only defenses exclusively
	st.basePlan = snap.basePlan
	st.roundMask = [MaxRounds + 1]bool{}
	st.selective = true
	for _, r := range g.cfg.VulnerableRounds {
		st.roundMask[r] = true
	}

	for i, wp := range k.Warps {
		w := st.runs[i]
		ws := &snap.warps[i]
		*w = warpRun{
			prog: wp, pc: ws.pc, readyAt: ws.readyAt, pending: ws.pending,
			blocked: ws.blocked, curRound: ws.curRound, done: ws.done,
			plan: launch.Plan, delayedPC: -1, stats: ws.stats,
		}
	}
	for i, sm := range st.sms {
		ss := &snap.sms[i]
		for _, ri := range ss.injectQ {
			sm.injectQ.Push(ptrs[ri])
		}
		sm.replies = append(sm.replies[:0], ss.replies...)
		if sm.mshr != nil {
			for b, waiters := range ss.mshr {
				sm.mshr[b] = append([]int(nil), waiters...)
			}
		}
		copy(sm.schedPtr, ss.schedPtr)
		sm.prt = ss.prt
	}
	for i, p := range st.parts {
		ps := &snap.parts[i]
		p.ctrl.Restore(ps.dram, req)
		for _, ri := range ps.replies {
			p.replies = append(p.replies, ptrs[ri])
		}
	}
	st.toMem.Restore(snap.toMem, req)
	st.toSM.Restore(snap.toSM, req)

	if _, _, err := g.loop(st, k, snap.cycle, false); err != nil {
		return nil, err
	}
	g.finish(st)
	return st.res, nil
}
