package gpusim

import (
	"fmt"
	"reflect"
	"testing"

	"rcoal/internal/mechanism"
)

// This file enforces the copy-on-write prefix-fork determinism
// contract: for any selective-RCoal configuration, RunPrefix once +
// RunFork per mechanism is byte-identical to a full Run per mechanism.

// forkMechanisms spans the mechanism × subwarp-count grid the
// acceptance criteria require: ≥ 6 mechanism families × ≥ 3 subwarp
// counts.
func forkMechanisms() []mechanism.Mechanism {
	var out []mechanism.Mechanism
	out = append(out, mechanism.Baseline())
	for _, m := range []int{2, 4, 8} {
		out = append(out,
			mechanism.FSS(m),
			mechanism.FSSRTS(m),
			mechanism.RSS(m),
			mechanism.RSSRTS(m),
			mechanism.RSSNormal(m, 1.5),
		)
	}
	return out
}

// forkConfig returns a fork-eligible selective config with the given
// mechanism and vulnerable rounds.
func forkConfig(mech mechanism.Mechanism, vulnerable []int, mut func(*Config)) Config {
	cfg := DefaultConfig()
	cfg.Defense = mech
	cfg.VulnerableRounds = vulnerable
	if mut != nil {
		mut(&cfg)
	}
	return cfg
}

// TestForkByteIdenticalResults is the core differential: one prefix
// per (kernel, seed), forked across every mechanism and subwarp count,
// must reproduce the vanilla Run bit for bit.
func TestForkByteIdenticalResults(t *testing.T) {
	kern := randomKernel(11, 4, 4)
	vulnerable := []int{4} // last round, the paper's selective-RCoal case
	seeds := []uint64{1, 42, 0xdecaf}

	variants := []struct {
		name string
		mut  func(*Config)
	}{
		{"plain", nil},
		{"mshr", func(c *Config) { c.MSHREnabled = true }},
		{"gto", func(c *Config) { c.Scheduler = GTO }},
		{"ff-off", func(c *Config) { c.FastForwardDisabled = true }},
	}

	for _, variant := range variants {
		t.Run(variant.name, func(t *testing.T) {
			prefixGPU, err := New(forkConfig(mechanism.Baseline(), vulnerable, variant.mut))
			if err != nil {
				t.Fatal(err)
			}
			for _, seed := range seeds {
				snap, err := prefixGPU.RunPrefix(kern, seed)
				if err != nil {
					t.Fatalf("seed %d: RunPrefix: %v", seed, err)
				}
				if snap.Finished() {
					t.Fatalf("seed %d: prefix ran to completion; kernel should reach round 4", seed)
				}
				for _, mech := range forkMechanisms() {
					t.Run(fmt.Sprintf("%s/seed%d", mech.Name(), seed), func(t *testing.T) {
						cfg := forkConfig(mech, vulnerable, variant.mut)
						vanilla, err := New(cfg)
						if err != nil {
							t.Fatal(err)
						}
						want, err := vanilla.Run(kern, seed)
						if err != nil {
							t.Fatal(err)
						}
						forked, err := New(cfg)
						if err != nil {
							t.Fatal(err)
						}
						got, err := forked.RunFork(snap)
						if err != nil {
							t.Fatalf("RunFork: %v", err)
						}
						if !reflect.DeepEqual(want, got) {
							t.Fatalf("forked result differs from vanilla Run\nvanilla: cycles=%d totalTx=%d lastTx=%d\nforked:  cycles=%d totalTx=%d lastTx=%d",
								want.Cycles, want.TotalTx, want.RoundTx[4],
								got.Cycles, got.TotalTx, got.RoundTx[4])
						}
					})
				}
			}
		})
	}
}

// TestForkSnapshotImmutable forks one snapshot many times, with
// interleaved mechanisms and a shared fork GPU, and requires every
// same-mechanism fork to return identical results: consuming a
// snapshot must not mutate it.
func TestForkSnapshotImmutable(t *testing.T) {
	kern := randomKernel(3, 3, 4)
	vulnerable := []int{4}
	prefixGPU, err := New(forkConfig(mechanism.Baseline(), vulnerable, nil))
	if err != nil {
		t.Fatal(err)
	}
	snap, err := prefixGPU.RunPrefix(kern, 42)
	if err != nil {
		t.Fatal(err)
	}

	mechA, mechB := mechanism.RSSRTS(8), mechanism.FSS(4)
	gA, err := New(forkConfig(mechA, vulnerable, nil))
	if err != nil {
		t.Fatal(err)
	}
	gB, err := New(forkConfig(mechB, vulnerable, nil))
	if err != nil {
		t.Fatal(err)
	}
	first, err := gA.RunFork(snap)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := gB.RunFork(snap); err != nil {
		t.Fatal(err)
	}
	again, err := gA.RunFork(snap)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(first, again) {
		t.Fatal("re-forking the same snapshot with the same mechanism changed the result")
	}
	// The prefix GPU itself must stay usable for fresh prefixes.
	snap2, err := prefixGPU.RunPrefix(kern, 42)
	if err != nil {
		t.Fatal(err)
	}
	third, err := gA.RunFork(snap2)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(first, third) {
		t.Fatal("a fresh prefix of the same (kernel, seed) forked differently")
	}
}

// TestForkFinishedPrefix covers kernels that never reach a vulnerable
// round: the snapshot is Finished and forks still return the exact
// vanilla result.
func TestForkFinishedPrefix(t *testing.T) {
	kern := randomKernel(5, 2, 3) // rounds 1..3 only
	vulnerable := []int{9}
	prefixGPU, err := New(forkConfig(mechanism.Baseline(), vulnerable, nil))
	if err != nil {
		t.Fatal(err)
	}
	snap, err := prefixGPU.RunPrefix(kern, 7)
	if err != nil {
		t.Fatal(err)
	}
	if !snap.Finished() {
		t.Fatal("prefix should have run to completion")
	}
	mech := mechanism.RSSRTS(4)
	cfg := forkConfig(mech, vulnerable, nil)
	vanilla, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want, err := vanilla.Run(kern, 7)
	if err != nil {
		t.Fatal(err)
	}
	forked, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	got, err := forked.RunFork(snap)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatal("finished-prefix fork differs from vanilla Run")
	}
}

// TestForkGates pins the configurations forking must refuse.
func TestForkGates(t *testing.T) {
	kern := randomKernel(1, 2, 3)
	reject := []struct {
		name string
		cfg  Config
	}{
		{"no-vulnerable-rounds", forkConfig(mechanism.RSS(4), nil, nil)},
		{"plan-per-warp", forkConfig(mechanism.RSS(4), []int{3}, func(c *Config) { c.PlanPerWarp = true })},
		{"l1", forkConfig(mechanism.RSS(4), []int{3}, func(c *Config) { c.L1Enabled, c.L1 = true, DefaultL1() })},
		{"l2", forkConfig(mechanism.RSS(4), []int{3}, func(c *Config) { c.L2Enabled, c.L2 = true, DefaultL2() })},
	}
	for _, tc := range reject {
		t.Run(tc.name, func(t *testing.T) {
			g, err := New(tc.cfg)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := g.RunPrefix(kern, 1); err == nil {
				t.Fatal("RunPrefix accepted a non-forkable config")
			}
		})
	}

	// Fork-incompatibility beyond the mechanism: differing
	// VulnerableRounds must be refused.
	prefixGPU, err := New(forkConfig(mechanism.Baseline(), []int{3}, nil))
	if err != nil {
		t.Fatal(err)
	}
	snap, err := prefixGPU.RunPrefix(kern, 1)
	if err != nil {
		t.Fatal(err)
	}
	other, err := New(forkConfig(mechanism.RSS(4), []int{2}, nil))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := other.RunFork(snap); err == nil {
		t.Fatal("RunFork accepted a snapshot with different VulnerableRounds")
	}
}
