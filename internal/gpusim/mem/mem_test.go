package mem

import (
	"reflect"
	"testing"
	"testing/quick"
)

func TestBlockOf(t *testing.T) {
	cases := []struct {
		addr uint64
		want uint64
	}{{0, 0}, {63, 0}, {64, 1}, {4096, 64}}
	for _, c := range cases {
		if got := BlockOf(c.addr); got != c.want {
			t.Errorf("BlockOf(%d) = %d, want %d", c.addr, got, c.want)
		}
	}
}

func TestDefaultMapValid(t *testing.T) {
	if err := DefaultAddressMap().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejects(t *testing.T) {
	bad := []AddressMap{
		{Partitions: 0, ChunkBytes: 256, Banks: 16, BankGroups: 4, RowBytes: 2048},
		{Partitions: 6, ChunkBytes: 100, Banks: 16, BankGroups: 4, RowBytes: 2048},
		{Partitions: 6, ChunkBytes: 256, Banks: 16, BankGroups: 5, RowBytes: 2048},
		{Partitions: 6, ChunkBytes: 256, Banks: 16, BankGroups: 4, RowBytes: 100},
		{Partitions: 6, ChunkBytes: 256, Banks: 0, BankGroups: 4, RowBytes: 2048},
	}
	for i, m := range bad {
		if err := m.Validate(); err == nil {
			t.Errorf("bad map %d validated", i)
		}
	}
}

func TestDecodeInterleavesChunks(t *testing.T) {
	m := DefaultAddressMap()
	// Consecutive 256-byte chunks land on consecutive partitions.
	for chunk := 0; chunk < 12; chunk++ {
		loc := m.Decode(uint64(chunk) * 256)
		if loc.Partition != chunk%6 {
			t.Errorf("chunk %d on partition %d, want %d", chunk, loc.Partition, chunk%6)
		}
	}
	// Addresses within one chunk stay on one partition.
	base := uint64(7 * 256)
	want := m.Decode(base).Partition
	for off := uint64(0); off < 256; off += 64 {
		if got := m.Decode(base + off).Partition; got != want {
			t.Errorf("offset %d crossed partition: %d != %d", off, got, want)
		}
	}
}

func TestDecodeFieldsInRange(t *testing.T) {
	m := DefaultAddressMap()
	f := func(addr uint64) bool {
		addr %= 1 << 34
		loc := m.Decode(addr)
		return loc.Partition >= 0 && loc.Partition < m.Partitions &&
			loc.Bank >= 0 && loc.Bank < m.Banks &&
			loc.BankGroup == loc.Bank%m.BankGroups &&
			loc.Row >= 0 &&
			loc.Col >= 0 && loc.Col < m.RowBytes
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestDecodeIsInjectiveOnBlocks(t *testing.T) {
	// Two different blocks must never map to the same
	// (partition, bank, row, col) tuple.
	m := DefaultAddressMap()
	seen := map[Location]uint64{}
	for b := uint64(0); b < 4096; b++ {
		addr := b * BlockBytes
		loc := m.Decode(addr)
		if prev, dup := seen[loc]; dup {
			t.Fatalf("blocks %d and %d collide at %+v", prev, b, loc)
		}
		seen[loc] = b
	}
}

func TestDecodeBankWalk(t *testing.T) {
	// Within one partition, consecutive local chunks walk banks
	// round-robin, spreading row activity across bank groups.
	m := DefaultAddressMap()
	for i := 0; i < 32; i++ {
		addr := uint64(i) * 256 * 6 // stay on partition 0
		loc := m.Decode(addr)
		if loc.Partition != 0 {
			t.Fatalf("addr %d not on partition 0", addr)
		}
		if loc.Bank != i%16 {
			t.Errorf("local chunk %d on bank %d, want %d", i, loc.Bank, i%16)
		}
	}
}

func TestAccessKindString(t *testing.T) {
	if Load.String() != "load" || Store.String() != "store" {
		t.Error("AccessKind strings wrong")
	}
}

// TestRequestIsValueCopyable guards the prefix-fork snapshot contract:
// the simulator interns in-flight requests by *value* (gpusim's
// PrefixSnapshot), which is only a deep copy while Request and its
// fields contain no references. Adding a slice/map/pointer field to
// Request must consciously extend the snapshot logic — this test makes
// that omission loud.
func TestRequestIsValueCopyable(t *testing.T) {
	var check func(path string, ty reflect.Type)
	check = func(path string, ty reflect.Type) {
		switch ty.Kind() {
		case reflect.Pointer, reflect.Slice, reflect.Map, reflect.Chan, reflect.Func, reflect.Interface, reflect.UnsafePointer:
			t.Errorf("%s has reference kind %s; value-interned snapshots would alias it", path, ty.Kind())
		case reflect.Struct:
			for i := 0; i < ty.NumField(); i++ {
				f := ty.Field(i)
				check(path+"."+f.Name, f.Type)
			}
		case reflect.Array:
			check(path+"[]", ty.Elem())
		}
	}
	check("Request", reflect.TypeOf(Request{}))
}
