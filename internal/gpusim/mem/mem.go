// Package mem defines the global-memory address space model of the
// simulated GPU: the linear address space is interleaved among memory
// partitions in 256-byte chunks (Table I, following the GPGPU-Sim
// address mapping), and each partition spreads its chunks over DRAM
// banks and rows.
package mem

import "fmt"

// BlockBytes is the coalescing granularity: the cache-line-sized
// memory block (64 B) that the coalescing unit merges requests into.
// With 4-byte table entries this puts 16 consecutive entries in one
// block, the paper's R = 16.
const BlockBytes = 64

// BlockOf returns the memory-block key of an address: its 64-byte-
// aligned line number.
func BlockOf(addr uint64) uint64 { return addr / BlockBytes }

// AddressMap describes how linear addresses map onto the memory
// subsystem.
type AddressMap struct {
	// Partitions is the number of memory partitions (one per memory
	// controller); Table I uses 6.
	Partitions int
	// ChunkBytes is the interleaving granularity across partitions;
	// Table I uses 256.
	ChunkBytes int
	// Banks is the number of DRAM banks per partition (16).
	Banks int
	// BankGroups is the number of bank groups per partition (4).
	BankGroups int
	// RowBytes is the DRAM row (page) size per bank; 2 KiB is typical
	// for GDDR5.
	RowBytes int
}

// DefaultAddressMap returns the Table I configuration.
func DefaultAddressMap() AddressMap {
	return AddressMap{Partitions: 6, ChunkBytes: 256, Banks: 16, BankGroups: 4, RowBytes: 2048}
}

// Validate checks structural sanity of the map.
func (m AddressMap) Validate() error {
	switch {
	case m.Partitions <= 0:
		return fmt.Errorf("mem: partitions %d must be positive", m.Partitions)
	case m.ChunkBytes < BlockBytes || m.ChunkBytes%BlockBytes != 0:
		return fmt.Errorf("mem: chunk bytes %d must be a positive multiple of %d", m.ChunkBytes, BlockBytes)
	case m.Banks <= 0:
		return fmt.Errorf("mem: banks %d must be positive", m.Banks)
	case m.BankGroups <= 0 || m.Banks%m.BankGroups != 0:
		return fmt.Errorf("mem: bank groups %d must divide banks %d", m.BankGroups, m.Banks)
	case m.RowBytes < m.ChunkBytes || m.RowBytes%m.ChunkBytes != 0:
		return fmt.Errorf("mem: row bytes %d must be a multiple of chunk bytes %d", m.RowBytes, m.ChunkBytes)
	}
	return nil
}

// Location is the physical placement of an address.
type Location struct {
	Partition int // memory controller
	Bank      int // bank within the partition
	BankGroup int // bank group of the bank
	Row       int // DRAM row within the bank
	Col       int // byte offset within the row
}

// Decode maps a linear address to its physical location. Chunks are
// interleaved round-robin over partitions; within a partition,
// consecutive chunks walk the banks round-robin (spreading accesses
// across bank groups) and then advance the row.
func (m AddressMap) Decode(addr uint64) Location {
	chunk := addr / uint64(m.ChunkBytes)
	offset := int(addr % uint64(m.ChunkBytes))
	partition := int(chunk % uint64(m.Partitions))
	local := chunk / uint64(m.Partitions)
	bank := int(local % uint64(m.Banks))
	chunksPerRow := m.RowBytes / m.ChunkBytes
	rowChunk := local / uint64(m.Banks)
	row := int(rowChunk / uint64(chunksPerRow))
	col := int(rowChunk%uint64(chunksPerRow))*m.ChunkBytes + offset
	return Location{
		Partition: partition,
		Bank:      bank,
		BankGroup: bank % m.BankGroups,
		Row:       row,
		Col:       col,
	}
}

// AccessKind distinguishes loads from stores.
type AccessKind uint8

const (
	// Load is a global-memory read.
	Load AccessKind = iota
	// Store is a global-memory write.
	Store
)

func (k AccessKind) String() string {
	if k == Store {
		return "store"
	}
	return "load"
}

// Request is one coalesced memory transaction in flight: a 64-byte
// block access produced by the coalescing unit, tagged with enough
// provenance for statistics and for routing the reply.
type Request struct {
	// ID is unique per simulation, for tracing.
	ID uint64
	// Addr is the block-aligned byte address.
	Addr uint64
	// Kind is Load or Store.
	Kind AccessKind
	// SM and Warp identify the requester (Warp is the global warp id).
	SM, Warp int
	// Round tags the AES round (1-based; 0 for non-round traffic such
	// as plaintext loads), used to attribute per-round access counts.
	Round int
	// Issued is the core cycle the request entered the interconnect.
	Issued int64
	// Arrived is the core cycle the request reached its memory
	// partition's controller (set on acceptance; L2 hits never arrive).
	Arrived int64
	// Done is the core cycle the reply reached the SM (set on
	// completion).
	Done int64
	// Loc is the pre-decoded physical location of Addr, computed once
	// when the LD/ST unit creates the request so neither the
	// interconnect router nor the DRAM controller re-derives it.
	Loc Location
}
