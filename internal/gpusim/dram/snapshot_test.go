package dram

import (
	"reflect"
	"testing"

	"rcoal/internal/gpusim/mem"
	"rcoal/internal/rng"
)

// serviced records one completed request for sequence comparison.
type serviced struct {
	id    uint64
	cycle int64
}

// tickUntilIdle drains the controller from cycle start, recording the
// (id, cycle) service sequence.
func tickUntilIdle(t *testing.T, c *Controller, start int64) []serviced {
	t.Helper()
	var out []serviced
	for now := start; now < start+100000; now++ {
		for _, r := range c.Tick(now) {
			out = append(out, serviced{id: r.ID, cycle: now})
		}
		if c.Idle() {
			return out
		}
	}
	t.Fatal("controller did not drain")
	return nil
}

// TestSnapshotRestoreEquivalence is the snapshot/restore property
// test: capture a controller mid-flight (queued and pending requests,
// open rows, bus state), keep running it to completion (the mutation),
// then Restore — into the same controller and into a fresh one — and
// verify the continued run reproduces the reference service sequence
// and statistics exactly.
func TestSnapshotRestoreEquivalence(t *testing.T) {
	r := rng.New(99)
	for trial := 0; trial < 20; trial++ {
		load := func() (*Controller, []*mem.Request) {
			c := newTestController(t, 0)
			n := 8 + r.Intn(24)
			reqs := make([]*mem.Request, n)
			for i := range reqs {
				reqs[i] = &mem.Request{
					ID:   uint64(i + 1),
					Addr: uint64(r.Intn(1<<14)) * mem.BlockBytes,
				}
			}
			return c, reqs
		}
		c, reqs := load()
		for _, q := range reqs {
			c.Push(q)
		}
		// Advance mid-flight: some requests scheduled, some queued.
		cut := int64(10 + r.Intn(60))
		var head []serviced
		for now := int64(0); now < cut; now++ {
			for _, q := range c.Tick(now) {
				head = append(head, serviced{id: q.ID, cycle: now})
			}
		}

		var table []mem.Request
		idx := map[*mem.Request]int{}
		intern := func(q *mem.Request) int {
			if i, ok := idx[q]; ok {
				return i
			}
			table = append(table, *q)
			idx[q] = len(table) - 1
			return len(table) - 1
		}
		snap := c.Snapshot(intern)
		wantStats := c.Stats

		// Mutate: run the original to completion; this is both the
		// reference tail and the post-snapshot mutation.
		wantTail := tickUntilIdle(t, c, cut)
		wantFinal := c.Stats

		materialize := func() func(int) *mem.Request {
			fresh := make([]*mem.Request, len(table))
			return func(i int) *mem.Request {
				if fresh[i] == nil {
					p := new(mem.Request)
					*p = table[i]
					fresh[i] = p
				}
				return fresh[i]
			}
		}

		// Restore into the mutated controller.
		c.Restore(snap, materialize())
		if c.Stats != wantStats {
			t.Fatalf("trial %d: restored stats %+v != snapshot stats %+v", trial, c.Stats, wantStats)
		}
		if got := tickUntilIdle(t, c, cut); !reflect.DeepEqual(got, wantTail) {
			t.Fatalf("trial %d: same-controller restore tail differs\n got %v\nwant %v", trial, got, wantTail)
		}
		if c.Stats != wantFinal {
			t.Fatalf("trial %d: same-controller final stats differ", trial)
		}

		// Restore into a fresh controller.
		fresh := newTestController(t, 0)
		fresh.Restore(snap, materialize())
		if got := tickUntilIdle(t, fresh, cut); !reflect.DeepEqual(got, wantTail) {
			t.Fatalf("trial %d: fresh-controller restore tail differs", trial)
		}
		if fresh.Stats != wantFinal {
			t.Fatalf("trial %d: fresh-controller final stats differ", trial)
		}
	}
}

// TestSnapshotRestoreBankCountGuard pins the defensive panic on
// structural mismatch.
func TestSnapshotRestoreBankCountGuard(t *testing.T) {
	c := newTestController(t, 0)
	snap := c.Snapshot(func(*mem.Request) int { return 0 })
	m := mem.DefaultAddressMap()
	m.Banks = 8
	m.BankGroups = 4
	other, err := NewController(HynixGDDR5(), m, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("restore across bank counts did not panic")
		}
	}()
	other.Restore(snap, func(i int) *mem.Request { return nil })
}
