package dram

import (
	"testing"

	"rcoal/internal/gpusim/mem"
)

func newTestController(t *testing.T, queueCap int) *Controller {
	t.Helper()
	c, err := NewController(HynixGDDR5(), mem.DefaultAddressMap(), queueCap)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func drain(c *Controller, start int64, maxCycles int64) (done []*mem.Request, end int64) {
	for now := start; now < start+maxCycles; now++ {
		done = append(done, c.Tick(now)...)
		if c.Idle() {
			return done, now
		}
	}
	return done, start + maxCycles
}

func TestTimingValidate(t *testing.T) {
	if err := HynixGDDR5().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := HynixGDDR5()
	bad.CL = 0
	if bad.Validate() == nil {
		t.Fatal("zero CL validated")
	}
}

func TestTimingScale(t *testing.T) {
	s := HynixGDDR5().Scale(1400.0 / 924.0)
	if s.CL < 12 || s.CL > 19 {
		t.Errorf("scaled CL = %d, want ≈18", s.CL)
	}
	if s.CCD < 2 {
		t.Errorf("scaled CCD = %d, want >= 2", s.CCD)
	}
	// Scaling by a tiny ratio must not produce zeros.
	tiny := HynixGDDR5().Scale(0.01)
	if err := tiny.Validate(); err != nil {
		t.Errorf("tiny scale produced invalid timing: %v", err)
	}
}

func TestSingleRequestLatency(t *testing.T) {
	c := newTestController(t, 0)
	r := &mem.Request{ID: 1, Addr: 0}
	c.Push(r)
	done, _ := drain(c, 0, 1000)
	if len(done) != 1 {
		t.Fatalf("serviced %d requests, want 1", len(done))
	}
	tm := HynixGDDR5()
	// Cold row: RCD + CL + Burst (no precharge needed on a closed bank).
	want := int64(tm.RCD + tm.CL + tm.Burst)
	if done[0].Done != want {
		t.Errorf("first access done at %d, want %d", done[0].Done, want)
	}
	if c.Stats.RowMisses != 1 || c.Stats.RowHits != 0 {
		t.Errorf("stats: %+v", c.Stats)
	}
}

func TestRowHitFasterThanConflict(t *testing.T) {
	tm := HynixGDDR5()
	m := mem.DefaultAddressMap()

	// Two accesses to the same row: second is a row hit.
	c1, _ := NewController(tm, m, 0)
	c1.Push(&mem.Request{ID: 1, Addr: 0})
	c1.Push(&mem.Request{ID: 2, Addr: 64})
	done1, end1 := drain(c1, 0, 10000)
	if len(done1) != 2 || c1.Stats.RowHits != 1 {
		t.Fatalf("same-row: %d done, stats %+v", len(done1), c1.Stats)
	}

	// Two accesses to different rows of the same bank: row conflict.
	// Same bank repeats every Partitions*Banks chunks; same bank next
	// row is offset by Partitions*Banks*ChunkBytes*(RowBytes/ChunkBytes).
	rowStride := uint64(m.Partitions * m.Banks * m.RowBytes)
	c2, _ := NewController(tm, m, 0)
	c2.Push(&mem.Request{ID: 1, Addr: 0})
	c2.Push(&mem.Request{ID: 2, Addr: rowStride})
	done2, end2 := drain(c2, 0, 10000)
	if len(done2) != 2 || c2.Stats.RowMisses != 2 {
		t.Fatalf("conflict: %d done, stats %+v", len(done2), c2.Stats)
	}

	if end1 >= end2 {
		t.Errorf("row hit pair (%d cycles) not faster than conflict pair (%d)", end1, end2)
	}
}

func TestBankParallelismBeatsSerialBank(t *testing.T) {
	tm := HynixGDDR5()
	m := mem.DefaultAddressMap()
	rowStride := uint64(m.Partitions * m.Banks * m.RowBytes)
	bankStride := uint64(m.Partitions * m.ChunkBytes) // next bank, same partition

	// Four row-conflicting accesses on one bank...
	serial, _ := NewController(tm, m, 0)
	for i := uint64(0); i < 4; i++ {
		serial.Push(&mem.Request{ID: i, Addr: i * rowStride})
	}
	_, serialEnd := drain(serial, 0, 100000)

	// ...versus four accesses across four different banks.
	par, _ := NewController(tm, m, 0)
	for i := uint64(0); i < 4; i++ {
		par.Push(&mem.Request{ID: i, Addr: i * bankStride})
	}
	_, parEnd := drain(par, 0, 100000)

	if parEnd >= serialEnd {
		t.Errorf("bank-parallel end %d not faster than serial-bank end %d", parEnd, serialEnd)
	}
}

func TestServiceTimeGrowsWithTransactions(t *testing.T) {
	// The property RCoal's performance results rest on: more coalesced
	// transactions take longer to service.
	var ends []int64
	for _, n := range []int{4, 8, 16, 32} {
		c := newTestController(t, 0)
		for i := 0; i < n; i++ {
			c.Push(&mem.Request{ID: uint64(i), Addr: uint64(i) * 64})
		}
		_, end := drain(c, 0, 100000)
		ends = append(ends, end)
	}
	for i := 1; i < len(ends); i++ {
		if ends[i] <= ends[i-1] {
			t.Errorf("service time not increasing: %v", ends)
		}
	}
}

func TestFRFCFSPrefersRowHit(t *testing.T) {
	tm := HynixGDDR5()
	m := mem.DefaultAddressMap()
	c, _ := NewController(tm, m, 0)
	rowStride := uint64(m.Partitions * m.Banks * m.RowBytes)

	// Open row 0 with a first access, let it complete.
	c.Push(&mem.Request{ID: 0, Addr: 0})
	var now int64
	for ; !c.Idle(); now++ {
		c.Tick(now)
	}

	// Now queue a conflicting access (older) and a row hit (younger).
	conflict := &mem.Request{ID: 1, Addr: rowStride}
	hit := &mem.Request{ID: 2, Addr: 64}
	c.Push(conflict)
	c.Push(hit)
	for ; !c.Idle(); now++ {
		c.Tick(now)
	}
	if hit.Done >= conflict.Done {
		t.Errorf("row hit done at %d, conflict at %d: FR-FCFS should service the hit first", hit.Done, conflict.Done)
	}
	if c.Stats.RowHits == 0 {
		t.Error("no row hits recorded")
	}
}

func TestQueueCapacity(t *testing.T) {
	c := newTestController(t, 2)
	c.Push(&mem.Request{ID: 0, Addr: 0})
	c.Push(&mem.Request{ID: 1, Addr: 64})
	if c.CanAccept() {
		t.Error("queue of cap 2 with 2 entries accepts more")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("push into full queue did not panic")
		}
	}()
	c.Push(&mem.Request{ID: 2, Addr: 128})
}

func TestStatsAndIdle(t *testing.T) {
	c := newTestController(t, 0)
	if !c.Idle() {
		t.Error("new controller not idle")
	}
	c.Push(&mem.Request{ID: 0, Addr: 0})
	if c.Idle() || c.QueueLen() != 1 || c.InFlight() != 0 {
		t.Error("queue accounting wrong after push")
	}
	c.Tick(0)
	if c.QueueLen() != 0 || c.InFlight() != 1 {
		t.Error("queue accounting wrong after schedule")
	}
	done, _ := drain(c, 1, 1000)
	if len(done) != 1 || !c.Idle() || c.Stats.Accesses != 1 {
		t.Errorf("drain: %d done, stats %+v", len(done), c.Stats)
	}
}

func TestNewControllerRejectsBadConfig(t *testing.T) {
	bad := HynixGDDR5()
	bad.RCD = -1
	if _, err := NewController(bad, mem.DefaultAddressMap(), 0); err == nil {
		t.Error("bad timing accepted")
	}
	badMap := mem.DefaultAddressMap()
	badMap.Banks = 0
	if _, err := NewController(HynixGDDR5(), badMap, 0); err == nil {
		t.Error("bad address map accepted")
	}
}

// TestInjectStall: the fault seam freezes scheduling after the
// threshold while keeping the queue (and NextEvent) alive, so the
// upstream watchdog — not a hang — must resolve it.
func TestInjectStall(t *testing.T) {
	c := newTestController(t, 0)
	c.InjectStall(1) // service exactly one request, then freeze
	c.Push(&mem.Request{ID: 1, Addr: 0})
	c.Push(&mem.Request{ID: 2, Addr: 1 << 20})
	done, _ := drain(c, 0, 500)
	if len(done) != 1 || done[0].ID != 1 {
		t.Fatalf("serviced %d requests, want only the first", len(done))
	}
	if c.Idle() || c.QueueLen() != 1 {
		t.Fatalf("stalled controller: idle=%v queue=%d, want live queue of 1", c.Idle(), c.QueueLen())
	}
	// A stalled-but-queued controller still claims next-cycle activity:
	// the simulator keeps stepping and its watchdog sees no progress.
	if got := c.NextEvent(1000); got != 1001 {
		t.Errorf("NextEvent = %d, want 1001", got)
	}

	// Reset clears the launch's access count but keeps the armament:
	// an immediately-stalled controller (threshold 0) never schedules.
	c.Reset()
	c.InjectStall(0)
	c.Push(&mem.Request{ID: 3, Addr: 0})
	if done, _ := drain(c, 0, 200); len(done) != 0 {
		t.Fatalf("fully stalled controller serviced %d requests", len(done))
	}
}
