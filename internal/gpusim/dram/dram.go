// Package dram models a GDDR5 memory partition of the simulated GPU:
// a memory controller running first-ready, first-come-first-served
// (FR-FCFS) scheduling over banked DRAM with the Hynix GDDR5 timing
// parameters of Table I.
//
// The model is command-level but compact: when the scheduler selects a
// request it computes the request's data-return time from the bank's
// row state and the shared data-bus occupancy, then advances the bank
// timing state (tRC/tRAS/tRP/tRCD for activations, tCCD for column
// commands, tRRD across banks). That preserves the two properties the
// RCoal evaluation depends on — service time grows with the number of
// coalesced transactions, and row hits are cheaper than row conflicts —
// without simulating individual DRAM commands cycle by cycle.
package dram

import (
	"fmt"
	"math"

	"rcoal/internal/gpusim/mem"
	"rcoal/internal/metrics"
)

// Timing holds the GDDR5 timing parameters in memory-clock cycles
// (Table I: Hynix GDDR5 H5GQ1H24AFR).
type Timing struct {
	CL  int // CAS latency: column command to first data
	RP  int // row precharge
	RC  int // activate-to-activate, same bank
	RAS int // activate-to-precharge, same bank
	CCD int // column-command to column-command, same bank group
	RCD int // activate to column command
	RRD int // activate-to-activate, different banks
	// Burst is the data-bus occupancy of one 64-byte transaction in
	// memory (command-clock) cycles: a 32-bit GDDR5 bus with 8n
	// prefetch moves 32 bytes per command clock, so 64 bytes take 2.
	Burst int
}

// HynixGDDR5 returns the Table I timing: tCL=12, tRP=12, tRC=40,
// tRAS=28, tCCD=2, tRCD=12, tRRD=6.
func HynixGDDR5() Timing {
	return Timing{CL: 12, RP: 12, RC: 40, RAS: 28, CCD: 2, RCD: 12, RRD: 6, Burst: 2}
}

// Scale multiplies every parameter by ratio (core clock / memory
// clock) and rounds up, converting memory-clock timing into the core-
// clock domain the simulator ticks in.
func (t Timing) Scale(ratio float64) Timing {
	s := func(v int) int {
		scaled := int(float64(v)*ratio + 0.9999)
		if scaled < 1 {
			scaled = 1
		}
		return scaled
	}
	return Timing{CL: s(t.CL), RP: s(t.RP), RC: s(t.RC), RAS: s(t.RAS),
		CCD: s(t.CCD), RCD: s(t.RCD), RRD: s(t.RRD), Burst: s(t.Burst)}
}

// Validate rejects non-positive parameters.
func (t Timing) Validate() error {
	for name, v := range map[string]int{"CL": t.CL, "RP": t.RP, "RC": t.RC,
		"RAS": t.RAS, "CCD": t.CCD, "RCD": t.RCD, "RRD": t.RRD, "Burst": t.Burst} {
		if v <= 0 {
			return fmt.Errorf("dram: timing %s = %d must be positive", name, v)
		}
	}
	return nil
}

// queued pairs a request with its pre-decoded location so the FR-FCFS
// scan does not re-decode every queued address every cycle.
type queued struct {
	req *mem.Request
	loc mem.Location
}

type bankState struct {
	openRow  int   // currently open row, -1 if closed
	nextCol  int64 // earliest cycle for the next column command
	nextAct  int64 // earliest cycle for the next activate (tRC)
	nextPre  int64 // earliest cycle the open row may be precharged (tRAS)
	rowHits  uint64
	rowMiss  uint64 // every access that activated a row
	rowConfl uint64 // subset of rowMiss that closed a different open row
	accesses uint64
}

// Controller is one memory partition's FR-FCFS controller.
type Controller struct {
	timing   Timing
	addrMap  mem.AddressMap
	banks    []bankState
	queue    []queued       // arrival order preserved (FCFS component)
	pending  []*mem.Request // scheduled, waiting for data return
	busFree  int64          // shared data bus availability
	lastAct  int64          // most recent activate, for tRRD
	queueCap int
	minDone  int64          // earliest completion among pending requests
	doneBuf  []*mem.Request // reused by Tick; valid until the next Tick

	// stallArmed/stallAfter are the fault-injection seam (see
	// InjectStall): when armed, the scheduler freezes once Stats.Accesses
	// reaches stallAfter.
	stallArmed bool
	stallAfter uint64

	// Stats counts controller-level events.
	Stats Stats

	// DepthHist, when non-nil, observes the FR-FCFS queue depth at
	// every enqueue (the depth including the new arrival). Installed by
	// the simulator's metrics layer; the hot path pays one nil check.
	DepthHist *metrics.Histogram
}

// Stats aggregates controller activity. RowMisses counts every access
// that had to activate a row; RowConflicts is the subset that first had
// to close a different open row (the expensive case the RCoal timing
// distributions key on).
type Stats struct {
	Accesses     uint64 // requests serviced
	RowHits      uint64
	RowMisses    uint64
	RowConflicts uint64
	MaxQueue     int
}

// BankStats is one bank's per-launch activity, exported for the
// per-bank row-locality metrics.
type BankStats struct {
	Bank         int    `json:"bank"`
	Accesses     uint64 `json:"accesses"`
	RowHits      uint64 `json:"row_hits"`
	RowMisses    uint64 `json:"row_misses"`
	RowConflicts uint64 `json:"row_conflicts"`
}

// BankStats returns a fresh per-bank statistics slice (index = bank
// id). Snapshot-time only; it allocates.
func (c *Controller) BankStats() []BankStats {
	out := make([]BankStats, len(c.banks))
	for i := range c.banks {
		b := &c.banks[i]
		out[i] = BankStats{Bank: i, Accesses: b.accesses,
			RowHits: b.rowHits, RowMisses: b.rowMiss, RowConflicts: b.rowConfl}
	}
	return out
}

// NewController builds a controller for one partition. queueCap <= 0
// means unbounded.
func NewController(t Timing, m mem.AddressMap, queueCap int) (*Controller, error) {
	if err := t.Validate(); err != nil {
		return nil, err
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	banks := make([]bankState, m.Banks)
	for i := range banks {
		banks[i].openRow = -1
	}
	// lastAct starts far in the past so the first activate pays no tRRD.
	return &Controller{timing: t, addrMap: m, banks: banks, queueCap: queueCap,
		lastAct: -int64(t.RRD) - 1}, nil
}

// CanAccept reports whether the request queue has room.
func (c *Controller) CanAccept() bool {
	return c.queueCap <= 0 || len(c.queue) < c.queueCap
}

// Push enqueues a request. It panics if the queue is full; callers
// gate on CanAccept (back-pressure propagates into the interconnect).
func (c *Controller) Push(r *mem.Request) {
	if !c.CanAccept() {
		panic("dram: push into full queue")
	}
	// Requests arrive pre-decoded (Loc is set at creation); fall back
	// to decoding here for callers that push raw requests in tests.
	loc := r.Loc
	if loc == (mem.Location{}) && r.Addr != 0 {
		loc = c.addrMap.Decode(r.Addr)
	}
	c.queue = append(c.queue, queued{req: r, loc: loc})
	if len(c.queue) > c.Stats.MaxQueue {
		c.Stats.MaxQueue = len(c.queue)
	}
	if c.DepthHist != nil {
		c.DepthHist.Observe(int64(len(c.queue)))
	}
}

// QueueLen returns the number of waiting (unscheduled) requests.
func (c *Controller) QueueLen() int { return len(c.queue) }

// InFlight returns the number of scheduled requests whose data has not
// returned yet.
func (c *Controller) InFlight() int { return len(c.pending) }

// Tick advances the controller to cycle now: it schedules at most one
// request (FR-FCFS: the oldest row-hit if any, otherwise the oldest
// request) and returns every request whose data is ready by now. The
// returned slice is reused by the next Tick call; callers consume it
// immediately.
func (c *Controller) Tick(now int64) []*mem.Request {
	c.schedule(now)
	return c.collect(now)
}

// InjectStall arms the controller's test-only fault seam
// (internal/faultinject): once the controller has scheduled `after`
// requests it stops scheduling entirely, so queued requests wait
// forever. Stats reset per launch (Reset), so the threshold counts the
// current launch's accesses; the armed state itself survives Reset.
func (c *Controller) InjectStall(after uint64) {
	c.stallArmed = true
	c.stallAfter = after
}

func (c *Controller) schedule(now int64) {
	if len(c.queue) == 0 || (c.stallArmed && c.Stats.Accesses >= c.stallAfter) {
		return
	}
	// First-ready: oldest request whose bank has the needed row open
	// and can take a column command now.
	pick := -1
	for i := range c.queue {
		loc := &c.queue[i].loc
		b := &c.banks[loc.Bank]
		if b.openRow == loc.Row && b.nextCol <= now && c.busFree <= now {
			pick = i
			break
		}
	}
	if pick == -1 {
		// FCFS fallback: the oldest request, whenever its bank allows.
		pick = 0
	}
	r := c.queue[pick].req
	loc := c.queue[pick].loc
	b := &c.banks[loc.Bank]

	var colCmd int64
	if b.openRow == loc.Row {
		// Row hit: column command when the bank and bus allow.
		colCmd = maxi64(now, b.nextCol, c.busFree)
		b.rowHits++
		c.Stats.RowHits++
	} else {
		// Row miss/conflict: precharge (respecting tRAS) + activate
		// (respecting tRC and tRRD) + tRCD before the column command.
		act := maxi64(now, b.nextAct, c.lastAct+int64(c.timing.RRD))
		if b.openRow >= 0 {
			act = maxi64(act, b.nextPre+int64(c.timing.RP))
			b.rowConfl++
			c.Stats.RowConflicts++
		}
		b.openRow = loc.Row
		b.nextAct = act + int64(c.timing.RC)
		b.nextPre = act + int64(c.timing.RAS)
		c.lastAct = act
		colCmd = maxi64(act+int64(c.timing.RCD), c.busFree)
		b.rowMiss++
		c.Stats.RowMisses++
	}
	b.nextCol = colCmd + int64(c.timing.CCD)
	c.busFree = colCmd + int64(c.timing.Burst)
	r.Done = colCmd + int64(c.timing.CL) + int64(c.timing.Burst)
	b.accesses++
	c.Stats.Accesses++

	c.queue = append(c.queue[:pick], c.queue[pick+1:]...)
	c.pending = append(c.pending, r)
	if len(c.pending) == 1 || r.Done < c.minDone {
		c.minDone = r.Done
	}
}

func (c *Controller) collect(now int64) []*mem.Request {
	if len(c.pending) == 0 || now < c.minDone {
		return nil
	}
	done := c.doneBuf[:0]
	kept := c.pending[:0]
	next := int64(1) << 62
	for _, r := range c.pending {
		if r.Done <= now {
			done = append(done, r)
		} else {
			kept = append(kept, r)
			if r.Done < next {
				next = r.Done
			}
		}
	}
	c.pending = kept
	c.minDone = next
	c.doneBuf = done
	return done
}

// Idle reports whether the controller has no queued or in-flight work.
func (c *Controller) Idle() bool { return len(c.queue) == 0 && len(c.pending) == 0 }

// NextEvent returns the earliest cycle strictly after now at which the
// controller can make progress, or math.MaxInt64 when idle. While
// requests await scheduling the controller schedules one per cycle, so
// its horizon is now+1; with only in-flight requests the next event is
// the earliest data return. Fast-forwarding to the returned cycle is
// safe: Tick is a no-op at every cycle in between.
func (c *Controller) NextEvent(now int64) int64 {
	if len(c.queue) > 0 {
		return now + 1
	}
	if len(c.pending) == 0 {
		return math.MaxInt64
	}
	return c.minDone
}

// Snapshot is a controller's complete mid-launch state, captured for
// copy-on-write prefix forking. Requests are recorded as indices into
// the caller's interned request table (not as pointers), so a snapshot
// stays valid — and shareable across any number of forks — after the
// live request arena is reused.
type Snapshot struct {
	banks   []bankState
	queue   []snapQueued
	pending []int
	busFree int64
	lastAct int64
	minDone int64
	stats   Stats
}

type snapQueued struct {
	req int
	loc mem.Location
}

// Snapshot captures the controller's state. intern maps each live
// *mem.Request to a stable index in the caller's request table;
// request payloads (including the in-flight Done times) travel with
// the interned values, not with the snapshot.
func (c *Controller) Snapshot(intern func(*mem.Request) int) *Snapshot {
	s := &Snapshot{
		banks:   append([]bankState(nil), c.banks...),
		busFree: c.busFree,
		lastAct: c.lastAct,
		minDone: c.minDone,
		stats:   c.Stats,
	}
	for _, q := range c.queue {
		s.queue = append(s.queue, snapQueued{req: intern(q.req), loc: q.loc})
	}
	for _, r := range c.pending {
		s.pending = append(s.pending, intern(r))
	}
	return s
}

// Restore rewinds the controller to the snapshot, materializing queued
// and in-flight requests through req (interned index → fresh live
// request). The controller must have the snapshot's bank count (same
// address map), which fork-compatibility checks guarantee upstream.
func (c *Controller) Restore(s *Snapshot, req func(int) *mem.Request) {
	if len(c.banks) != len(s.banks) {
		panic(fmt.Sprintf("dram: restore across bank counts (%d != %d)", len(c.banks), len(s.banks)))
	}
	copy(c.banks, s.banks)
	c.queue = c.queue[:0]
	for _, q := range s.queue {
		c.queue = append(c.queue, queued{req: req(q.req), loc: q.loc})
	}
	c.pending = c.pending[:0]
	for _, i := range s.pending {
		c.pending = append(c.pending, req(i))
	}
	c.busFree = s.busFree
	c.lastAct = s.lastAct
	c.minDone = s.minDone
	c.Stats = s.stats
}

// Reset clears all bank, queue, and statistics state, keeping the
// backing buffers, so one controller can serve many launches without
// reallocating.
func (c *Controller) Reset() {
	for i := range c.banks {
		c.banks[i] = bankState{openRow: -1}
	}
	c.queue = c.queue[:0]
	c.pending = c.pending[:0]
	c.busFree = 0
	c.lastAct = -int64(c.timing.RRD) - 1
	c.minDone = 0
	c.Stats = Stats{}
}

func maxi64(vs ...int64) int64 {
	m := vs[0]
	for _, v := range vs[1:] {
		if v > m {
			m = v
		}
	}
	return m
}
