package gpusim

import (
	"fmt"
	"io"
)

// Event tracing: an optional sink receiving the simulator's timeline
// (instruction issues, transaction injections, reply deliveries, warp
// retirements). Tracing is for debugging kernels and validating timing
// behaviour; it is off unless a sink is installed on the Config, and
// the hot path pays only a nil check.

// EventKind classifies trace events.
type EventKind uint8

const (
	// EvIssue: a warp issued an instruction.
	EvIssue EventKind = iota
	// EvMemTx: the MCU emitted one coalesced transaction.
	EvMemTx
	// EvReply: a memory reply reached its SM.
	EvReply
	// EvRetire: a warp completed.
	EvRetire
	// EvCoalesce: the MCU ran Algorithm 1 on one warp-wide memory
	// instruction, splitting it into N subwarp-coalesced transactions.
	EvCoalesce
	// EvDRAMService: a memory partition finished servicing one
	// transaction; N carries the cycles between the request arriving at
	// the controller and its data returning.
	EvDRAMService
)

// NumEventKinds is the number of distinct event kinds, for sinks that
// tally by kind.
const NumEventKinds = 6

func (k EventKind) String() string {
	switch k {
	case EvIssue:
		return "issue"
	case EvMemTx:
		return "memtx"
	case EvReply:
		return "reply"
	case EvRetire:
		return "retire"
	case EvCoalesce:
		return "coalesce"
	case EvDRAMService:
		return "dram"
	}
	return "unknown"
}

// Event is one simulator timeline entry.
type Event struct {
	Cycle int64
	Kind  EventKind
	SM    int
	Warp  int
	// PC is the warp's program counter (EvIssue only).
	PC int
	// Addr is the block-aligned address (EvMemTx / EvReply /
	// EvDRAMService).
	Addr uint64
	// Round is the AES round tag, when applicable.
	Round int
	// Part is the memory partition (EvDRAMService only).
	Part int
	// N is the event's magnitude: coalesced-transaction count for
	// EvCoalesce, service duration in cycles for EvDRAMService.
	N int64
}

// TraceSink receives simulator events. Implementations must be cheap;
// they run inline with the simulation.
type TraceSink interface {
	Emit(Event)
}

// WriterSink streams events as one line of text each, suitable for
// grepping or downstream parsing.
type WriterSink struct {
	W io.Writer
	// Err records the first write error; subsequent events are dropped.
	Err error
}

// Emit implements TraceSink.
func (s *WriterSink) Emit(e Event) {
	if s.Err != nil {
		return
	}
	_, s.Err = fmt.Fprintf(s.W, "cycle=%d kind=%s sm=%d warp=%d pc=%d addr=%#x round=%d part=%d n=%d\n",
		e.Cycle, e.Kind, e.SM, e.Warp, e.PC, e.Addr, e.Round, e.Part, e.N)
}

// CountingSink tallies events by kind — used in tests and quick
// profiling.
type CountingSink struct {
	Counts [NumEventKinds]uint64
}

// Emit implements TraceSink.
func (s *CountingSink) Emit(e Event) {
	if int(e.Kind) < len(s.Counts) {
		s.Counts[e.Kind]++
	}
}
