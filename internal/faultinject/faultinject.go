// Package faultinject provides deterministic, test-only fault hooks
// for the robustness layer: every defense the repository claims — the
// simulator's forward-progress watchdog, the worker pool's panic
// containment, the experiment journal's corruption tolerance — has a
// fault here that proves it actually trips.
//
// The faults are plain data (a Plan wired through gpusim.Config) or
// tiny helpers with no dependencies, so production packages can expose
// injection seams without importing test machinery. Nothing in this
// package is randomized: a fault fires at an exact, configured point,
// so a test that injects one reproduces bit-for-bit.
package faultinject

import (
	"fmt"
	"os"
)

// Plan names the hardware faults a simulator launch should suffer.
// It is carried by gpusim.Config.Faults and wired into the subsystem
// seams (dram.Controller.InjectStall, icnt.Crossbar.InjectDrop) when
// the runtime is built. The zero value (and a nil *Plan) injects
// nothing.
type Plan struct {
	// DRAMStall, when non-nil, freezes a DRAM controller's scheduler:
	// queued requests are never serviced again. Upstream this must
	// surface as a no-progress error, not a hang.
	DRAMStall *DRAMStall
	// DropReply, when non-nil, silently swallows one memory reply on
	// the partition→SM crossbar. The requesting warp then waits
	// forever; upstream this must surface as a no-progress error.
	DropReply *DropReply
}

// DRAMStall freezes the scheduler of one (or every) DRAM controller
// after it has serviced AfterAccesses requests.
type DRAMStall struct {
	// Partition selects the controller; -1 stalls every partition.
	Partition int
	// AfterAccesses is how many requests the controller schedules
	// before freezing; 0 freezes it from the first request on.
	AfterAccesses uint64
}

// DropReply swallows the Nth packet pushed toward output port Port of
// the reply (partition→SM) crossbar.
type DropReply struct {
	// Port is the destination SM id.
	Port int
	// Nth counts pushes to that port, 1-based: the Nth push vanishes.
	Nth uint64
}

// CellPanic returns a per-cell hook that panics when invoked for the
// target cell index and is a no-op everywhere else — the "one bad cell
// must not kill the pool" fault.
func CellPanic(target int) func(cell int) error {
	return func(cell int) error {
		if cell == target {
			panic(fmt.Sprintf("faultinject: injected panic in cell %d", cell))
		}
		return nil
	}
}

// CellError returns a per-cell hook that fails the target cell with
// err and is a no-op everywhere else.
func CellError(target int, err error) func(cell int) error {
	return func(cell int) error {
		if cell == target {
			return err
		}
		return nil
	}
}

// TornTail truncates the final drop bytes of the file at path — the
// crash-mid-append fault: the last journal line loses its tail (and
// its newline), so a resume must discard it by checksum and terminate
// the fragment rather than concatenating onto it.
func TornTail(path string, drop int) error {
	info, err := os.Stat(path)
	if err != nil {
		return err
	}
	if int64(drop) >= info.Size() {
		return fmt.Errorf("faultinject: %s has only %d bytes, cannot drop %d", path, info.Size(), drop)
	}
	return os.Truncate(path, info.Size()-int64(drop))
}

// CorruptJournalLine overwrites the payload of line n (0-based) of the
// file at path with garbage of the same length, preserving the line
// structure — the torn-write/bit-rot fault a checkpoint journal must
// detect and discard rather than replay.
func CorruptJournalLine(path string, n int) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	line := 0
	start := 0
	for i, b := range data {
		if line == n {
			end := i
			for end < len(data) && data[end] != '\n' {
				end++
			}
			if start == end {
				return fmt.Errorf("faultinject: line %d of %s is empty", n, path)
			}
			for j := start; j < end; j++ {
				data[j] = '#'
			}
			return os.WriteFile(path, data, 0o644)
		}
		if b == '\n' {
			line++
			start = i + 1
		}
	}
	if line == n && start < len(data) {
		for j := start; j < len(data); j++ {
			data[j] = '#'
		}
		return os.WriteFile(path, data, 0o644)
	}
	return fmt.Errorf("faultinject: %s has no line %d", path, n)
}
