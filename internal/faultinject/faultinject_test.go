package faultinject

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestCellPanicFiresOnlyOnTarget(t *testing.T) {
	hook := CellPanic(3)
	for i := 0; i < 3; i++ {
		if err := hook(i); err != nil {
			t.Fatalf("cell %d: %v", i, err)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("target cell did not panic")
		}
	}()
	hook(3)
}

func TestCellError(t *testing.T) {
	boom := errors.New("boom")
	hook := CellError(2, boom)
	if err := hook(0); err != nil {
		t.Fatal(err)
	}
	if err := hook(2); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
}

func TestCorruptJournalLine(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.jsonl")
	orig := "line zero\nline one\nline two\n"
	if err := os.WriteFile(path, []byte(orig), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := CorruptJournalLine(path, 1); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(string(data), "\n")
	if lines[0] != "line zero" || lines[2] != "line two" {
		t.Errorf("neighbor lines damaged: %q", data)
	}
	if lines[1] == "line one" || len(lines[1]) != len("line one") {
		t.Errorf("line 1 = %q, want same-length garbage", lines[1])
	}

	// Out-of-range lines are an error, not a silent no-op.
	if err := CorruptJournalLine(path, 17); err == nil {
		t.Error("corrupting a missing line succeeded")
	}

	// A last line without trailing newline is still reachable.
	if err := os.WriteFile(path, []byte("a\nfinal"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := CorruptJournalLine(path, 1); err != nil {
		t.Fatal(err)
	}
	data, _ = os.ReadFile(path)
	if string(data) != "a\n#####" {
		t.Errorf("tail line corruption = %q", data)
	}
}
