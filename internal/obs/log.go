package obs

import (
	"context"
	"io"
	"log/slog"
	"time"
)

// Logger is the structured, leveled event log shared by the
// coordinator, workers, and CLI front ends. It wraps log/slog (JSON
// or logfmt-style text) and tees every record into an optional
// FlightRecorder so the crash dump always holds the most recent
// events regardless of where stderr went.
//
// A nil *Logger is a valid no-op receiver: the dist and cmd layers
// call it unconditionally and pay one nil check when logging is off.
type Logger struct {
	sl    *slog.Logger
	rec   *FlightRecorder
	attrs []slog.Attr // accumulated With context, mirrored into the recorder
}

// LogConfig selects the output encoding and wiring of a Logger.
type LogConfig struct {
	// JSON selects the slog JSON handler (one object per line);
	// otherwise records render as key=value text.
	JSON bool
	// Level is the minimum level emitted (slog.LevelInfo if unset is
	// the slog default).
	Level slog.Leveler
	// Recorder, when non-nil, receives a copy of every record —
	// including those below Level, so the flight dump keeps debug
	// detail the live stream suppressed.
	Recorder *FlightRecorder
}

// NewLogger builds a Logger writing to w.
func NewLogger(w io.Writer, cfg LogConfig) *Logger {
	opts := &slog.HandlerOptions{Level: cfg.Level}
	var h slog.Handler
	if cfg.JSON {
		h = slog.NewJSONHandler(w, opts)
	} else {
		h = slog.NewTextHandler(w, opts)
	}
	return &Logger{sl: slog.New(h), rec: cfg.Recorder}
}

// With returns a Logger that adds the given key-value pairs to every
// record — the correlation idiom: log.With("trace_id", id, "worker", w).
func (l *Logger) With(args ...any) *Logger {
	if l == nil || len(args) == 0 {
		return l
	}
	nl := &Logger{sl: l.sl.With(args...), rec: l.rec}
	nl.attrs = append(append([]slog.Attr{}, l.attrs...), argsToAttrs(args)...)
	return nl
}

// Recorder returns the attached flight recorder (nil when absent).
func (l *Logger) Recorder() *FlightRecorder {
	if l == nil {
		return nil
	}
	return l.rec
}

// Debug logs at LevelDebug.
func (l *Logger) Debug(msg string, args ...any) { l.log(slog.LevelDebug, msg, args...) }

// Info logs at LevelInfo.
func (l *Logger) Info(msg string, args ...any) { l.log(slog.LevelInfo, msg, args...) }

// Warn logs at LevelWarn.
func (l *Logger) Warn(msg string, args ...any) { l.log(slog.LevelWarn, msg, args...) }

// Error logs at LevelError.
func (l *Logger) Error(msg string, args ...any) { l.log(slog.LevelError, msg, args...) }

func (l *Logger) log(level slog.Level, msg string, args ...any) {
	if l == nil {
		return
	}
	if l.rec != nil {
		attrs := make(map[string]string, len(l.attrs)+len(args)/2)
		for _, a := range l.attrs {
			attrs[a.Key] = a.Value.String()
		}
		for _, a := range argsToAttrs(args) {
			attrs[a.Key] = a.Value.String()
		}
		l.rec.Record(level.String(), msg, attrs)
	}
	l.sl.Log(context.Background(), level, msg, args...)
}

// ParseLevel maps the conventional flag spellings to slog levels;
// unknown strings fall back to Info.
func ParseLevel(s string) slog.Level {
	switch s {
	case "debug":
		return slog.LevelDebug
	case "warn", "warning":
		return slog.LevelWarn
	case "error":
		return slog.LevelError
	default:
		return slog.LevelInfo
	}
}

// argsToAttrs resolves slog's loose key-value argument convention
// into concrete attrs, reusing slog.Record's own parser.
func argsToAttrs(args []any) []slog.Attr {
	if len(args) == 0 {
		return nil
	}
	r := slog.NewRecord(time.Time{}, slog.LevelInfo, "", 0)
	r.Add(args...)
	out := make([]slog.Attr, 0, r.NumAttrs())
	r.Attrs(func(a slog.Attr) bool {
		out = append(out, a)
		return true
	})
	return out
}
