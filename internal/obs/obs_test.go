package obs

import (
	"bytes"
	"encoding/json"
	"log/slog"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func TestNewTraceID(t *testing.T) {
	a, b := NewTraceID(), NewTraceID()
	if len(a) != 32 || len(b) != 32 {
		t.Fatalf("trace ids %q/%q not 32 hex chars", a, b)
	}
	if a == b {
		t.Fatal("two trace ids collided")
	}
}

func TestLoggerJSONAndCorrelationFields(t *testing.T) {
	var buf bytes.Buffer
	log := NewLogger(&buf, LogConfig{JSON: true}).With("trace_id", "abc", "worker", "w1")
	log.Info("lease granted", "experiment", "fig7", "seq", 3)

	var rec map[string]any
	if err := json.Unmarshal(buf.Bytes(), &rec); err != nil {
		t.Fatalf("log line is not JSON: %v\n%s", err, buf.String())
	}
	for k, want := range map[string]any{
		"msg": "lease granted", "trace_id": "abc", "worker": "w1",
		"experiment": "fig7", "seq": float64(3), "level": "INFO",
	} {
		if rec[k] != want {
			t.Errorf("field %s = %v, want %v", k, rec[k], want)
		}
	}
}

func TestNilLoggerIsSafe(t *testing.T) {
	var log *Logger
	log.Info("ignored")
	log.Error("ignored", "k", "v")
	if l2 := log.With("a", 1); l2 != nil {
		t.Error("nil Logger.With returned non-nil")
	}
	if log.Recorder() != nil {
		t.Error("nil Logger.Recorder returned non-nil")
	}
}

func TestLoggerTeesIntoFlightRecorder(t *testing.T) {
	rec := NewFlightRecorder(8)
	var buf bytes.Buffer
	log := NewLogger(&buf, LogConfig{JSON: true, Level: slog.LevelWarn, Recorder: rec}).
		With("worker", "w1")
	log.Info("below level, recorder still sees it", "seq", 1)
	log.Warn("visible", "seq", 2)

	if got := strings.Count(buf.String(), "\n"); got != 1 {
		t.Errorf("stream got %d lines, want 1 (info suppressed)", got)
	}
	events := rec.Snapshot()
	if len(events) != 2 {
		t.Fatalf("recorder holds %d events, want 2", len(events))
	}
	if events[0].Attrs["worker"] != "w1" || events[0].Attrs["seq"] != "1" {
		t.Errorf("recorder lost With/call attrs: %+v", events[0])
	}
	if events[0].Level != "INFO" || events[1].Level != "WARN" {
		t.Errorf("levels = %s/%s", events[0].Level, events[1].Level)
	}
}

func TestFlightRecorderRingEviction(t *testing.T) {
	rec := NewFlightRecorder(4)
	for i := 0; i < 10; i++ {
		rec.Record("INFO", "event", map[string]string{"i": string(rune('0' + i))})
	}
	if rec.Len() != 4 {
		t.Fatalf("ring holds %d, want 4", rec.Len())
	}
	events := rec.Snapshot()
	if events[0].Seq != 7 || events[3].Seq != 10 {
		t.Errorf("ring kept seqs %d..%d, want 7..10", events[0].Seq, events[3].Seq)
	}
	for i := 1; i < len(events); i++ {
		if events[i].Seq != events[i-1].Seq+1 {
			t.Errorf("snapshot not in order: %+v", events)
		}
	}
}

func TestFlightRecorderDump(t *testing.T) {
	rec := NewFlightRecorder(8)
	rec.now = func() time.Time { return time.Unix(42, 0) }
	rec.Record("ERROR", "watchdog tripped", map[string]string{"sm": "3"})
	path := filepath.Join(t.TempDir(), "flight.json")
	if err := rec.Dump(path, "watchdog", "deadbeef"); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var d FlightDump
	if err := json.Unmarshal(raw, &d); err != nil {
		t.Fatalf("dump is not JSON: %v", err)
	}
	if d.Reason != "watchdog" || d.TraceID != "deadbeef" || len(d.Events) != 1 {
		t.Errorf("dump = %+v", d)
	}
	if d.Events[0].Msg != "watchdog tripped" || d.Events[0].Attrs["sm"] != "3" {
		t.Errorf("dump event = %+v", d.Events[0])
	}
}

func TestNilFlightRecorderIsSafe(t *testing.T) {
	var rec *FlightRecorder
	rec.Record("INFO", "ignored", nil)
	if rec.Len() != 0 || rec.Snapshot() != nil {
		t.Error("nil recorder not empty")
	}
	if err := rec.Dump("/nonexistent/should-not-write", "x", ""); err != nil {
		t.Errorf("nil Dump returned %v", err)
	}
}
