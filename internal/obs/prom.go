package obs

import (
	"bytes"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"rcoal/internal/metrics"
	"rcoal/internal/runner"
)

// Prom renders metrics in the Prometheus text exposition format
// (version 0.0.4) with zero dependencies — the /metrics endpoints on
// the coordinator and workers build one per scrape. Families are
// emitted in call order; HELP/TYPE headers are written once per
// family and all samples of one family stay contiguous, as the
// format requires.
type Prom struct {
	buf  bytes.Buffer
	seen map[string]bool
}

// Label is one name="value" pair on a sample.
type Label struct{ Name, Value string }

// NewProm returns an empty exposition builder.
func NewProm() *Prom { return &Prom{seen: map[string]bool{}} }

// Counter emits one counter family with a single (optionally
// labeled) sample.
func (p *Prom) Counter(name, help string, v float64, labels ...Label) {
	p.family(name, help, "counter")
	p.sample(name, labels, v)
}

// Gauge emits one gauge family with a single sample.
func (p *Prom) Gauge(name, help string, v float64, labels ...Label) {
	p.family(name, help, "gauge")
	p.sample(name, labels, v)
}

// GaugeSeries emits one gauge family followed by many labeled
// samples produced by fill.
func (p *Prom) GaugeSeries(name, help string, fill func(sample func(v float64, labels ...Label))) {
	p.family(name, help, "gauge")
	fill(func(v float64, labels ...Label) { p.sample(name, labels, v) })
}

// Histogram emits one metrics.HistogramValue as a Prometheus
// histogram: cumulative le buckets, _sum, and _count.
func (p *Prom) Histogram(name, help string, h metrics.HistogramValue) {
	p.family(name, help, "histogram")
	cum := uint64(0)
	for i, b := range h.Bounds {
		if i < len(h.Counts) {
			cum += h.Counts[i]
		}
		p.sample(name+"_bucket", []Label{{"le", formatFloat(float64(b))}}, float64(cum))
	}
	p.sample(name+"_bucket", []Label{{"le", "+Inf"}}, float64(h.Count))
	p.sample(name+"_sum", nil, float64(h.Sum))
	p.sample(name+"_count", nil, float64(h.Count))
}

// Snapshot encodes a whole metrics.Snapshot under the given name
// prefix: counters as counters, gauges as value+_max gauge pair,
// histograms as histograms, and tables as one gauge family with
// row/col labels. Names are emitted sorted for deterministic output.
func (p *Prom) Snapshot(prefix string, s *metrics.Snapshot) {
	if s == nil {
		return
	}
	for _, name := range sortedKeys(s.Counters) {
		p.Counter(MetricName(prefix, name), "registry counter "+name, float64(s.Counters[name]))
	}
	for _, name := range sortedKeys(s.Gauges) {
		g := s.Gauges[name]
		base := MetricName(prefix, name)
		p.Gauge(base, "registry gauge "+name, float64(g.Value))
		p.Gauge(base+"_max", "high-water mark of "+name, float64(g.Max))
	}
	for _, name := range sortedKeys(s.Histograms) {
		p.Histogram(MetricName(prefix, name), "registry histogram "+name, s.Histograms[name])
	}
	for _, name := range sortedKeys(s.Tables) {
		t := s.Tables[name]
		p.GaugeSeries(MetricName(prefix, name), "registry table "+name, func(sample func(v float64, labels ...Label)) {
			for i, row := range t.Rows {
				for j, col := range t.Cols {
					sample(float64(t.Value(i, j)), Label{"row", row}, Label{"col", col})
				}
			}
		})
	}
}

// Telemetry encodes a runner.TelemetryStats snapshot under the given
// name prefix.
func (p *Prom) Telemetry(prefix string, s runner.TelemetryStats) {
	n := func(name string) string { return MetricName(prefix, name) }
	p.Gauge(n("cells_total"), "cells in the grid (including restored)", float64(s.TotalCells))
	p.Gauge(n("cells_done"), "cells completed (including restored)", float64(s.CellsDone))
	p.Gauge(n("cells_failed"), "cells that exhausted retries", float64(s.CellsFailed))
	p.Gauge(n("cells_restored"), "cells satisfied from journal or cache", float64(s.RestoredCells))
	p.Counter(n("cache_hits_total"), "results-cache hits", float64(s.CacheHits))
	p.Counter(n("cache_misses_total"), "results-cache misses", float64(s.CacheMisses))
	p.Counter(n("retries_total"), "extra attempts of failed cells", float64(s.Retries))
	p.Gauge(n("workers_active"), "workers currently inside a cell", float64(s.ActiveWorkers))
	p.Gauge(n("workers_peak"), "peak concurrent workers seen", float64(s.PeakWorkers))
	p.Gauge(n("elapsed_seconds"), "observation window length", s.Elapsed.Seconds())
	p.Gauge(n("cell_seconds_avg"), "mean fresh-cell duration", s.AvgCell.Seconds())
	p.Gauge(n("cell_seconds_min"), "fastest fresh cell", s.MinCell.Seconds())
	p.Gauge(n("cell_seconds_max"), "slowest fresh cell", s.MaxCell.Seconds())
	p.Gauge(n("cells_per_second"), "fresh-cell throughput", s.CellsPerSec)
	p.Gauge(n("eta_seconds"), "extrapolated time to finish fresh cells", s.ETA.Seconds())
	p.Gauge(n("utilization"), "fraction of worker-seconds spent in cells", s.Utilization)
}

// Bytes returns the exposition accumulated so far.
func (p *Prom) Bytes() []byte { return p.buf.Bytes() }

// WriteTo writes the exposition to w.
func (p *Prom) WriteTo(w io.Writer) (int64, error) {
	n, err := w.Write(p.buf.Bytes())
	return int64(n), err
}

func (p *Prom) family(name, help, typ string) {
	if p.seen[name] {
		return
	}
	p.seen[name] = true
	fmt.Fprintf(&p.buf, "# HELP %s %s\n# TYPE %s %s\n", name, escapeHelp(help), name, typ)
}

func (p *Prom) sample(name string, labels []Label, v float64) {
	p.buf.WriteString(name)
	if len(labels) > 0 {
		p.buf.WriteByte('{')
		for i, l := range labels {
			if i > 0 {
				p.buf.WriteByte(',')
			}
			fmt.Fprintf(&p.buf, `%s="%s"`, sanitizeName(l.Name), escapeLabel(l.Value))
		}
		p.buf.WriteByte('}')
	}
	p.buf.WriteByte(' ')
	p.buf.WriteString(formatFloat(v))
	p.buf.WriteByte('\n')
}

// MetricName joins a prefix and a registry name into a valid
// Prometheus metric name, mapping characters outside
// [a-zA-Z0-9_:] to underscores.
func MetricName(prefix, name string) string {
	if prefix != "" {
		name = prefix + "_" + name
	}
	return sanitizeName(name)
}

func sanitizeName(s string) string {
	var b strings.Builder
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
			b.WriteRune(c)
		case c >= '0' && c <= '9':
			if i == 0 {
				b.WriteByte('_')
			}
			b.WriteRune(c)
		default:
			b.WriteByte('_')
		}
	}
	if b.Len() == 0 {
		return "_"
	}
	return b.String()
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// escapeLabel applies the exposition format's three label escapes
// (backslash, quote, newline) and strips any other control character
// — the format recognizes no further escape sequences.
func escapeLabel(s string) string {
	s = strings.Map(func(r rune) rune {
		if r < 0x20 && r != '\n' {
			return -1
		}
		return r
	}, s)
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
