package obs

import (
	"strings"
	"testing"
	"time"

	"rcoal/internal/metrics"
	"rcoal/internal/runner"
)

func TestPromSnapshotRendersAndLints(t *testing.T) {
	reg := metrics.NewRegistry()
	reg.Counter("dist_cache_hits").Add(7)
	reg.Gauge("queue_depth").Set(3)
	reg.Gauge("queue_depth").Set(9)
	reg.Gauge("queue_depth").Set(2)
	h := reg.Histogram("tx_per_instr", []int64{1, 4, 16})
	h.Observe(2)
	h.Observe(5)
	h.Observe(100)
	tab := reg.Table("row_hits", []string{"p0", "p1"}, []string{"hit", "miss"})
	tab.Add(0, 1, 1)
	tab.Add(1, 0, 1)

	p := NewProm()
	p.Snapshot("rcoal", reg.Snapshot())
	out := string(p.Bytes())

	for _, want := range []string{
		"# TYPE rcoal_dist_cache_hits counter",
		"rcoal_dist_cache_hits 7",
		"# TYPE rcoal_queue_depth gauge",
		"rcoal_queue_depth 2",
		"rcoal_queue_depth_max 9",
		"# TYPE rcoal_tx_per_instr histogram",
		`rcoal_tx_per_instr_bucket{le="+Inf"} 3`,
		"rcoal_tx_per_instr_count 3",
		`rcoal_row_hits{row="p0",col="miss"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	if err := LintProm(p.Bytes()); err != nil {
		t.Errorf("renderer output fails own linter: %v\n%s", err, out)
	}
}

func TestPromTelemetryRendersAndLints(t *testing.T) {
	var s runner.TelemetryStats
	s.TotalCells, s.CellsDone, s.CacheHits = 64, 32, 8
	s.CellsPerSec, s.Utilization = 2.5, 0.75
	s.Elapsed, s.ETA = 10*time.Second, 12800*time.Millisecond

	p := NewProm()
	p.Telemetry("rcoal_sweep", s)
	out := string(p.Bytes())
	for _, want := range []string{
		"rcoal_sweep_cells_total 64",
		"rcoal_sweep_cells_per_second 2.5",
		"rcoal_sweep_eta_seconds 12.8",
		"# TYPE rcoal_sweep_cache_hits_total counter",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("telemetry exposition missing %q:\n%s", want, out)
		}
	}
	if err := LintProm(p.Bytes()); err != nil {
		t.Errorf("telemetry exposition fails linter: %v\n%s", err, out)
	}
}

func TestPromLabelEscaping(t *testing.T) {
	p := NewProm()
	p.Gauge("weird", "label escaping", 1, Label{"k", "a\\b\"c\nd\x01e"})
	if err := LintProm(p.Bytes()); err != nil {
		t.Fatalf("escaped label fails linter: %v\n%s", err, p.Bytes())
	}
	if !strings.Contains(string(p.Bytes()), `k="a\\b\"c\nde"`) {
		t.Errorf("unexpected escaping: %s", p.Bytes())
	}
}

func TestMetricNameSanitized(t *testing.T) {
	for in, want := range map[string]string{
		"dist.cache-hits": "rcoal_dist_cache_hits",
		"99luft":          "rcoal_99luft",
	} {
		if got := MetricName("rcoal", in); got != want {
			t.Errorf("MetricName(%q) = %q, want %q", in, got, want)
		}
	}
	if got := MetricName("", "7seas"); got != "_7seas" {
		t.Errorf("leading digit not sanitized: %q", got)
	}
}

func TestLintPromRejectsMalformed(t *testing.T) {
	cases := map[string]string{
		"bad name":        "1bad_name 3\n",
		"bad value":       "ok_name hello\n",
		"unknown type":    "# TYPE x widget\nx 1\n",
		"duplicate type":  "# TYPE x counter\nx 1\n# TYPE x counter\n",
		"unquoted label":  "x{a=b} 1\n",
		"bad escape":      "x{a=\"\\t\"} 1\n",
		"ungrouped":       "# TYPE a counter\na 1\n# TYPE b counter\nb 1\na 2\n",
		"histogram bare":  "# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_sum 1\nh_count 1\n",
		"non-cumulative":  "# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"+Inf\"} 3\nh_sum 1\nh_count 3\n",
		"count mismatch":  "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 3\nh_sum 1\nh_count 4\n",
		"dangling labels": "x{a=\"b\" 1\n",
	}
	for name, raw := range cases {
		if err := LintProm([]byte(raw)); err == nil {
			t.Errorf("%s: linter accepted %q", name, raw)
		}
	}
	good := "# HELP a help text\n# TYPE a counter\na 1\n" +
		"# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_bucket{le=\"+Inf\"} 2\nh_sum 3\nh_count 2\n" +
		"untyped_ok{l=\"v\"} 2 1700000000\n"
	if err := LintProm([]byte(good)); err != nil {
		t.Errorf("linter rejected valid exposition: %v", err)
	}
}
