package obs

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"rcoal/internal/gpusim/tracevis"
)

func buildFleetTrace() *FleetTrace {
	base := int64(1_000_000_000_000) // ns
	ft := NewFleetTrace("feedface")
	ft.RegisterProcess("coordinator")
	// Coordinator lease span + renewal mark on the experiment track.
	ft.Span("coordinator", Span{
		Track: "fig7", Name: "lease fig7[3]",
		Start: base, End: base + 5_000_000,
		Attrs: map[string]string{"worker": "w1", "seq": "1"},
	})
	ft.Mark("coordinator", Mark{
		Track: "fig7", Name: "lease_renewed", At: base + 2_000_000,
		Attrs: map[string]string{"worker": "w1"},
	})
	// A worker cell report, as it arrives in a completion payload.
	ft.AddCell("worker w1", CellTrace{
		Worker: "w1",
		Spans: []Span{
			{Track: "slot 0", Name: "cell", Start: base + 500_000, End: base + 4_500_000,
				Attrs: map[string]string{"key": "fig7[3]"}},
			{Track: "slot 0", Name: "deliver", Start: base + 4_500_000, End: base + 4_800_000},
		},
		Marks: []Mark{
			{Track: "slot 0", Name: "chaos_fault", At: base + 4_600_000,
				Attrs: map[string]string{"kind": "drop_request"}},
			{Track: "slot 0", Name: "backoff", At: base + 4_700_000},
		},
	})
	ft.SetLabel("worker w1", "straggler")
	return ft
}

func TestFleetTraceExportValidatesAndMerges(t *testing.T) {
	ft := buildFleetTrace()
	var buf bytes.Buffer
	if err := ft.Export(&buf); err != nil {
		t.Fatal(err)
	}
	if err := tracevis.Validate(buf.Bytes()); err != nil {
		t.Fatalf("fleet trace fails tracevis schema: %v\n%s", err, buf.String())
	}

	var d struct {
		TraceEvents []map[string]any `json:"traceEvents"`
		OtherData   map[string]any   `json:"otherData"`
	}
	if err := json.Unmarshal(buf.Bytes(), &d); err != nil {
		t.Fatal(err)
	}
	if d.OtherData["trace_id"] != "feedface" {
		t.Errorf("otherData trace_id = %v", d.OtherData["trace_id"])
	}

	names := map[string]int{}
	var labelSeen bool
	for _, e := range d.TraceEvents {
		name := e["name"].(string)
		names[name]++
		if e["ph"] == "M" {
			if name == "process_labels" {
				labelSeen = true
			}
			continue
		}
		// Every timeline event shares the sweep's trace id.
		args := e["args"].(map[string]any)
		if args["trace_id"] != "feedface" {
			t.Errorf("event %q missing trace id: %v", name, args)
		}
		// Coordinator registered first, so its events live on pid 0.
		if name == "lease fig7[3]" && e["pid"].(float64) != 0 {
			t.Errorf("coordinator span on pid %v, want 0", e["pid"])
		}
	}
	for _, want := range []string{"lease fig7[3]", "lease_renewed", "cell", "deliver", "chaos_fault", "backoff"} {
		if names[want] == 0 {
			t.Errorf("merged trace missing %q event", want)
		}
	}
	if !labelSeen {
		t.Error("straggler process_labels metadata missing")
	}
}

func TestFleetTraceWriteFile(t *testing.T) {
	ft := buildFleetTrace()
	path := filepath.Join(t.TempDir(), "fleet.json")
	if err := ft.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := tracevis.Validate(raw); err != nil {
		t.Fatalf("written fleet trace invalid: %v", err)
	}
}

func TestNilFleetTraceIsSafe(t *testing.T) {
	var ft *FleetTrace
	ft.RegisterProcess("p")
	ft.Span("p", Span{Name: "s"})
	ft.Mark("p", Mark{Name: "m"})
	ft.AddCell("p", CellTrace{})
	ft.SetLabel("p", "l")
	if ft.Len() != 0 || ft.TraceID() != "" {
		t.Error("nil FleetTrace not inert")
	}
}

func TestFleetTraceClampsBackwardSpan(t *testing.T) {
	ft := NewFleetTrace("t")
	ft.Span("p", Span{Name: "skewed", Start: 2_000_000, End: 1_000_000})
	var buf bytes.Buffer
	if err := ft.Export(&buf); err != nil {
		t.Fatal(err)
	}
	if err := tracevis.Validate(buf.Bytes()); err != nil {
		t.Fatalf("clock-skewed span breaks schema: %v", err)
	}
}
