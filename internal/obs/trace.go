package obs

import (
	"encoding/json"
	"io"
	"sort"
	"sync"

	"rcoal/internal/atomicio"
	"rcoal/internal/gpusim/tracevis"
)

// FleetTrace merges spans and marks from every process in a
// distributed sweep — the coordinator's lease lifecycle and each
// worker's per-cell reports — into one Chrome/Perfetto trace sharing
// a single trace id, reusing the tracevis JSON schema so the fleet
// timeline loads in the same viewer as a single-simulation trace.
//
// Processes map to Perfetto "processes" (pid assigned in first-seen
// order, so the coordinator — which registers itself at startup — is
// pid 0) and tracks within a process map to threads. Timestamps are
// Unix nanoseconds at ingestion, rebased to the earliest event and
// converted to microseconds on export. A nil *FleetTrace ignores all
// calls, keeping the coordinator's completion path unconditional.
type FleetTrace struct {
	mu      sync.Mutex
	traceID string
	procs   []string       // pid order
	pids    map[string]int // proc → pid
	tracks  map[string][]string
	tids    map[string]map[string]int // proc → track → tid
	labels  map[string]string         // proc → process_labels badge
	spans   []procSpan
	marks   []procMark
}

type procSpan struct {
	proc string
	Span
}

type procMark struct {
	proc string
	Mark
}

// NewFleetTrace returns an empty fleet trace for one sweep.
func NewFleetTrace(traceID string) *FleetTrace {
	return &FleetTrace{
		traceID: traceID,
		pids:    map[string]int{},
		tracks:  map[string][]string{},
		tids:    map[string]map[string]int{},
		labels:  map[string]string{},
	}
}

// TraceID returns the sweep's trace id ("" on a nil trace).
func (f *FleetTrace) TraceID() string {
	if f == nil {
		return ""
	}
	return f.traceID
}

// RegisterProcess pins proc's pid to the next free slot; the
// coordinator calls it at startup so it owns pid 0 regardless of
// which worker reports first. Registering an existing process is a
// no-op.
func (f *FleetTrace) RegisterProcess(proc string) {
	if f == nil {
		return
	}
	f.mu.Lock()
	f.pid(proc)
	f.mu.Unlock()
}

// SetLabel attaches a process_labels badge (e.g. "straggler") shown
// next to proc's name in the viewer.
func (f *FleetTrace) SetLabel(proc, label string) {
	if f == nil {
		return
	}
	f.mu.Lock()
	f.pid(proc)
	f.labels[proc] = label
	f.mu.Unlock()
}

// Span records one interval on proc.
func (f *FleetTrace) Span(proc string, s Span) {
	if f == nil {
		return
	}
	f.mu.Lock()
	f.track(proc, s.Track)
	f.spans = append(f.spans, procSpan{proc, s})
	f.mu.Unlock()
}

// Mark records one instant event on proc.
func (f *FleetTrace) Mark(proc string, m Mark) {
	if f == nil {
		return
	}
	f.mu.Lock()
	f.track(proc, m.Track)
	f.marks = append(f.marks, procMark{proc, m})
	f.mu.Unlock()
}

// AddCell merges a worker's per-cell span report under proc.
func (f *FleetTrace) AddCell(proc string, ct CellTrace) {
	if f == nil {
		return
	}
	f.mu.Lock()
	for _, s := range ct.Spans {
		f.track(proc, s.Track)
		f.spans = append(f.spans, procSpan{proc, s})
	}
	for _, m := range ct.Marks {
		f.track(proc, m.Track)
		f.marks = append(f.marks, procMark{proc, m})
	}
	f.mu.Unlock()
}

// Len returns the number of recorded spans and marks.
func (f *FleetTrace) Len() int {
	if f == nil {
		return 0
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.spans) + len(f.marks)
}

// pid returns proc's pid, assigning the next one on first sight.
// Callers hold mu.
func (f *FleetTrace) pid(proc string) int {
	if id, ok := f.pids[proc]; ok {
		return id
	}
	id := len(f.procs)
	f.pids[proc] = id
	f.procs = append(f.procs, proc)
	f.tids[proc] = map[string]int{}
	return id
}

// track returns the tid of a track within proc, assigning on first
// sight. Callers hold mu.
func (f *FleetTrace) track(proc, name string) int {
	f.pid(proc)
	if id, ok := f.tids[proc][name]; ok {
		return id
	}
	id := len(f.tracks[proc])
	f.tids[proc][name] = id
	f.tracks[proc] = append(f.tracks[proc], name)
	return id
}

// Export writes the merged trace as Chrome trace-event JSON:
// process/track naming metadata first, then the timeline sorted by
// timestamp (stable, so ingestion order breaks ties). Every timeline
// event carries the trace id in its args, and the file-level
// otherData block repeats it.
func (f *FleetTrace) Export(w io.Writer) error {
	raw, err := f.marshal()
	if err != nil {
		return err
	}
	_, err = w.Write(raw)
	return err
}

// WriteFile exports the trace atomically to path.
func (f *FleetTrace) WriteFile(path string) error {
	raw, err := f.marshal()
	if err != nil {
		return err
	}
	return atomicio.WriteFile(path, raw, 0o644)
}

func (f *FleetTrace) marshal() ([]byte, error) {
	f.mu.Lock()
	defer f.mu.Unlock()

	out := tracevis.File{
		DisplayTimeUnit: "ms",
		OtherData:       map[string]any{"trace_id": f.traceID},
	}
	for pid, proc := range f.procs {
		out.TraceEvents = append(out.TraceEvents,
			tracevis.Meta("process_name", pid, 0, proc),
			tracevis.Meta("process_sort_index", pid, 0, pid))
		if label := f.labels[proc]; label != "" {
			out.TraceEvents = append(out.TraceEvents,
				tracevis.Meta("process_labels", pid, 0, label))
		}
		for tid, track := range f.tracks[proc] {
			name := track
			if name == "" {
				name = "events"
			}
			out.TraceEvents = append(out.TraceEvents,
				tracevis.Meta("thread_name", pid, tid, name),
				tracevis.Meta("thread_sort_index", pid, tid, tid))
		}
	}

	// Rebase to the earliest event so the viewer's axis starts near 0.
	epoch := int64(0)
	first := true
	see := func(ns int64) {
		if first || ns < epoch {
			epoch, first = ns, false
		}
	}
	for _, s := range f.spans {
		see(s.Start)
	}
	for _, m := range f.marks {
		see(m.At)
	}

	timeline := make([]tracevis.TraceEvent, 0, len(f.spans)+len(f.marks))
	for _, s := range f.spans {
		dur := (s.End - s.Start) / 1000
		if dur < 0 {
			dur = 0
		}
		timeline = append(timeline, tracevis.TraceEvent{
			Name: s.Name, Ph: "X", Ts: (s.Start - epoch) / 1000, Dur: &dur,
			Pid: f.pids[s.proc], Tid: f.tids[s.proc][s.Track],
			Args: f.args(s.Attrs),
		})
	}
	for _, m := range f.marks {
		timeline = append(timeline, tracevis.TraceEvent{
			Name: m.Name, Ph: "i", Ts: (m.At - epoch) / 1000,
			Pid: f.pids[m.proc], Tid: f.tids[m.proc][m.Track], S: "t",
			Args: f.args(m.Attrs),
		})
	}
	sort.SliceStable(timeline, func(i, j int) bool { return timeline[i].Ts < timeline[j].Ts })
	out.TraceEvents = append(out.TraceEvents, timeline...)

	raw, err := json.Marshal(out)
	if err != nil {
		return nil, err
	}
	return append(raw, '\n'), nil
}

// args copies attrs into the event-args map, always stamping the
// sweep's trace id so any event answers "which run was this".
func (f *FleetTrace) args(attrs map[string]string) map[string]any {
	out := make(map[string]any, len(attrs)+1)
	for k, v := range attrs {
		out[k] = v
	}
	out["trace_id"] = f.traceID
	return out
}
