package obs

import (
	"encoding/json"
	"sync"
	"time"

	"rcoal/internal/atomicio"
)

// FlightEvent is one structured event captured in the recorder ring.
type FlightEvent struct {
	Seq   uint64            `json:"seq"`
	At    int64             `json:"time_unix_nano"`
	Level string            `json:"level"`
	Msg   string            `json:"msg"`
	Attrs map[string]string `json:"attrs,omitempty"`
}

// FlightRecorder keeps a bounded ring of recent structured events —
// the last N things the process saw before something went wrong. It
// fills passively (the Logger tees every record into it) and is
// dumped atomically to disk on watchdog trips, panics, and
// degraded-mode entry, so a post-mortem has the lead-up even when
// stderr scrolled away or the process died. A nil recorder ignores
// all calls.
type FlightRecorder struct {
	mu   sync.Mutex
	buf  []FlightEvent
	next int    // ring write position
	n    int    // events currently held (≤ len(buf))
	seq  uint64 // monotonically increasing event number
	now  func() time.Time
}

// DefaultFlightCapacity is the ring size used when NewFlightRecorder
// is given a non-positive capacity: enough to cover the chatty tail
// of a chaos-faulted sweep without unbounded memory.
const DefaultFlightCapacity = 256

// NewFlightRecorder returns a recorder holding the most recent
// capacity events (DefaultFlightCapacity if capacity <= 0).
func NewFlightRecorder(capacity int) *FlightRecorder {
	if capacity <= 0 {
		capacity = DefaultFlightCapacity
	}
	return &FlightRecorder{buf: make([]FlightEvent, capacity)}
}

func (r *FlightRecorder) clock() time.Time {
	if r.now != nil {
		return r.now()
	}
	return time.Now()
}

// Record appends one event, evicting the oldest when the ring is full.
func (r *FlightRecorder) Record(level, msg string, attrs map[string]string) {
	if r == nil {
		return
	}
	now := r.clock()
	r.mu.Lock()
	r.seq++
	r.buf[r.next] = FlightEvent{Seq: r.seq, At: now.UnixNano(), Level: level, Msg: msg, Attrs: attrs}
	r.next = (r.next + 1) % len(r.buf)
	if r.n < len(r.buf) {
		r.n++
	}
	r.mu.Unlock()
}

// Len reports how many events the ring currently holds.
func (r *FlightRecorder) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.n
}

// Snapshot copies the held events, oldest first.
func (r *FlightRecorder) Snapshot() []FlightEvent {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]FlightEvent, 0, r.n)
	start := r.next - r.n
	if start < 0 {
		start += len(r.buf)
	}
	for i := 0; i < r.n; i++ {
		out = append(out, r.buf[(start+i)%len(r.buf)])
	}
	return out
}

// FlightDump is the on-disk schema of a dumped recorder.
type FlightDump struct {
	Reason  string        `json:"reason"`
	TraceID string        `json:"trace_id,omitempty"`
	At      int64         `json:"dumped_at_unix_nano"`
	Events  []FlightEvent `json:"events"`
}

// Dump writes the ring atomically to path as indented JSON, tagged
// with the reason (e.g. "watchdog", "panic", "degraded") and the
// sweep's trace id. On a nil recorder it is a no-op returning nil, so
// error paths can dump unconditionally.
func (r *FlightRecorder) Dump(path, reason, traceID string) error {
	if r == nil {
		return nil
	}
	d := FlightDump{Reason: reason, TraceID: traceID, At: r.clock().UnixNano(), Events: r.Snapshot()}
	raw, err := json.MarshalIndent(d, "", "  ")
	if err != nil {
		return err
	}
	return atomicio.WriteFile(path, append(raw, '\n'), 0o644)
}
