// Package obs is the fleet-wide observability plane: one place for
// the structured event log, the distributed trace that stitches a
// coordinator and its workers into a single Perfetto timeline, the
// Prometheus text exposition of the existing metrics surfaces, and
// the crash flight recorder.
//
// The package deliberately sits above the hot paths it observes:
// internal/gpusim and internal/runner never import it. Everything
// here follows the PR-5 discipline — nil-gated, zero cost when
// disabled. A nil *Logger, *FlightRecorder, or *FleetTrace is a valid
// no-op receiver, so call sites do not need their own guards.
//
// Correlation model: every sweep mints one trace id (NewTraceID) on
// the coordinator. The id travels in the X-Rcoal-Trace-Id response
// header of every lease-protocol reply and in LeaseGrant.TraceID;
// workers echo it on their requests and stamp it into their logs.
// Workers report per-cell Span/Mark lists (lease hold, compute,
// delivery attempts, backoff, renewals, chaos faults) back inside
// CompleteRequest.Trace; the coordinator merges them with its own
// lease-lifecycle spans into one FleetTrace sharing that trace id.
package obs

import (
	"crypto/rand"
	"encoding/hex"
)

// TraceHeader is the HTTP header carrying the sweep's trace id on
// every lease-protocol request and response.
const TraceHeader = "X-Rcoal-Trace-Id"

// NewTraceID mints a 128-bit random trace id, hex-encoded. Trace ids
// are correlation handles, not secrets, but crypto/rand keeps them
// collision-free across a fleet without coordination.
func NewTraceID() string {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand failing means the platform is broken; a fixed id
		// keeps observability usable rather than killing the sweep.
		return "00000000000000000000000000000000"
	}
	return hex.EncodeToString(b[:])
}

// Span is one named interval on a process track, the wire form
// workers use to report per-cell phases. Timestamps are Unix
// nanoseconds from the reporting process's clock; within one machine
// (the smoke and CI topology) they merge cleanly, across machines
// skew shows up as track offset — acceptable for diagnostics.
type Span struct {
	// Track groups spans onto one timeline row ("slot 0", or an
	// experiment id). Empty means the process's default track.
	Track string            `json:"track,omitempty"`
	Name  string            `json:"name"`
	Start int64             `json:"start_unix_nano"`
	End   int64             `json:"end_unix_nano"`
	Attrs map[string]string `json:"attrs,omitempty"`
}

// Mark is one instant event (a renewal, a backoff, an injected chaos
// fault) on a process track.
type Mark struct {
	Track string            `json:"track,omitempty"`
	Name  string            `json:"name"`
	At    int64             `json:"at_unix_nano"`
	Attrs map[string]string `json:"attrs,omitempty"`
}

// CellTrace is a worker's span report for one computed cell, attached
// to the completion payload. It rides next to — never inside — the
// result value, so enabling tracing cannot perturb result bytes.
type CellTrace struct {
	Worker string `json:"worker,omitempty"`
	Spans  []Span `json:"spans,omitempty"`
	Marks  []Mark `json:"marks,omitempty"`
}
