package obs

import (
	"fmt"
	"strconv"
	"strings"
)

// LintProm validates a Prometheus text exposition (format 0.0.4):
// well-formed HELP/TYPE headers, legal metric and label names, quoted
// label values with only the three recognized escapes, parseable
// sample values, samples grouped contiguously per family, histogram
// families carrying cumulative le buckets (ending in +Inf) plus _sum
// and _count. It is the gate the CI observability smoke runs against
// both /metrics endpoints via cmd/rcoal-obscheck.
func LintProm(data []byte) error {
	l := promLinter{typed: map[string]string{}, closed: map[string]bool{}}
	for i, line := range strings.Split(string(data), "\n") {
		if err := l.line(line); err != nil {
			return fmt.Errorf("line %d: %w (%q)", i+1, err, line)
		}
	}
	return l.finish()
}

type promLinter struct {
	typed  map[string]string // family → type
	closed map[string]bool   // families whose sample block has ended
	cur      string            // family currently accepting samples
	curTyp   string
	hist     *histCheck
	histDone []histCheck // completed histogram families, checked at finish
}

type histCheck struct {
	name      string
	lastLe    float64
	lastCum   float64
	buckets   int
	infSeen   bool
	sumSeen   bool
	countSeen bool
	count     float64
}

func (l *promLinter) line(line string) error {
	if line == "" {
		return nil
	}
	if strings.HasPrefix(line, "#") {
		fields := strings.SplitN(line, " ", 4)
		if len(fields) < 3 || (fields[1] != "HELP" && fields[1] != "TYPE") {
			// Any other comment is legal and ignored.
			return nil
		}
		name := fields[2]
		if !validMetricName(name) {
			return fmt.Errorf("invalid metric name %q in %s", name, fields[1])
		}
		if fields[1] == "TYPE" {
			if len(fields) != 4 {
				return fmt.Errorf("TYPE without a type")
			}
			switch fields[3] {
			case "counter", "gauge", "histogram", "summary", "untyped":
			default:
				return fmt.Errorf("unknown type %q", fields[3])
			}
			if _, dup := l.typed[name]; dup {
				return fmt.Errorf("duplicate TYPE for %s", name)
			}
			if l.closed[name] {
				return fmt.Errorf("TYPE for %s after its samples", name)
			}
			l.typed[name] = fields[3]
			l.enter(name, fields[3])
		}
		return nil
	}
	name, rest, err := splitSample(line)
	if err != nil {
		return err
	}
	family := l.familyOf(name)
	if family != l.cur {
		if l.closed[family] {
			return fmt.Errorf("samples of %s not contiguous", family)
		}
		typ, ok := l.typed[family]
		if !ok {
			typ = "untyped"
		}
		l.enter(family, typ)
	}
	return l.sample(name, rest)
}

// enter switches the linter to a new family, closing the previous one.
func (l *promLinter) enter(name, typ string) {
	if l.cur != "" && l.cur != name {
		l.closed[l.cur] = true
		if l.hist != nil {
			l.histDone = append(l.histDone, *l.hist)
			l.hist = nil
		}
	}
	l.cur = name
	l.curTyp = typ
	if typ == "histogram" && l.hist == nil {
		l.hist = &histCheck{name: name, lastLe: -1 << 62}
	}
}

func (l *promLinter) familyOf(name string) string {
	if l.typed[name] != "" {
		return name
	}
	for _, suffix := range []string{"_bucket", "_sum", "_count"} {
		if base, ok := strings.CutSuffix(name, suffix); ok {
			if t := l.typed[base]; t == "histogram" || t == "summary" {
				return base
			}
		}
	}
	return name
}

func (l *promLinter) sample(name, rest string) error {
	labels, valueStr, err := splitLabels(rest)
	if err != nil {
		return err
	}
	v, err := strconv.ParseFloat(valueStr, 64)
	if err != nil {
		return fmt.Errorf("unparseable value %q", valueStr)
	}
	if l.curTyp == "histogram" && l.hist != nil {
		h := l.hist
		switch {
		case name == h.name+"_bucket":
			le, ok := labels["le"]
			if !ok {
				return fmt.Errorf("histogram bucket without le label")
			}
			bound, err := strconv.ParseFloat(le, 64) // "+Inf" parses to +Inf
			if err != nil {
				return fmt.Errorf("unparseable le %q", le)
			}
			if bound <= h.lastLe && h.buckets > 0 {
				return fmt.Errorf("histogram %s buckets not in increasing le order", h.name)
			}
			if v < h.lastCum {
				return fmt.Errorf("histogram %s buckets not cumulative", h.name)
			}
			h.lastLe, h.lastCum = bound, v
			h.buckets++
			if le == "+Inf" {
				h.infSeen, h.count = true, v
			}
		case name == h.name+"_sum":
			h.sumSeen = true
		case name == h.name+"_count":
			h.countSeen = true
			if h.infSeen && v != h.count {
				return fmt.Errorf("histogram %s _count %v != +Inf bucket %v", h.name, v, h.count)
			}
		}
	}
	return nil
}

func (l *promLinter) finish() error {
	l.enter("", "") // close the trailing family
	for _, h := range l.histDone {
		if !h.infSeen || !h.sumSeen || !h.countSeen {
			return fmt.Errorf("histogram %s incomplete: +Inf bucket/_sum/_count = %v/%v/%v",
				h.name, h.infSeen, h.sumSeen, h.countSeen)
		}
	}
	return nil
}

// splitSample separates the metric name from the labels+value tail.
func splitSample(line string) (name, rest string, err error) {
	i := strings.IndexAny(line, "{ ")
	if i <= 0 {
		return "", "", fmt.Errorf("malformed sample")
	}
	name, rest = line[:i], line[i:]
	if !validMetricName(name) {
		return "", "", fmt.Errorf("invalid metric name %q", name)
	}
	return name, rest, nil
}

// splitLabels parses an optional {label="value",...} block and the
// trailing value (an optional timestamp is accepted and ignored).
func splitLabels(rest string) (map[string]string, string, error) {
	labels := map[string]string{}
	if strings.HasPrefix(rest, "{") {
		i := 1
		for {
			if i >= len(rest) {
				return nil, "", fmt.Errorf("unterminated label block")
			}
			if rest[i] == '}' {
				i++
				break
			}
			j := strings.IndexByte(rest[i:], '=')
			if j < 0 {
				return nil, "", fmt.Errorf("label without '='")
			}
			lname := rest[i : i+j]
			if !validLabelName(lname) {
				return nil, "", fmt.Errorf("invalid label name %q", lname)
			}
			i += j + 1
			if i >= len(rest) || rest[i] != '"' {
				return nil, "", fmt.Errorf("unquoted label value")
			}
			i++
			var val strings.Builder
			for {
				if i >= len(rest) {
					return nil, "", fmt.Errorf("unterminated label value")
				}
				c := rest[i]
				if c == '"' {
					i++
					break
				}
				if c == '\\' {
					if i+1 >= len(rest) {
						return nil, "", fmt.Errorf("dangling escape")
					}
					switch rest[i+1] {
					case '\\':
						val.WriteByte('\\')
					case '"':
						val.WriteByte('"')
					case 'n':
						val.WriteByte('\n')
					default:
						return nil, "", fmt.Errorf("unknown escape \\%c", rest[i+1])
					}
					i += 2
					continue
				}
				val.WriteByte(c)
				i++
			}
			labels[lname] = val.String()
			if i < len(rest) && rest[i] == ',' {
				i++
			}
		}
		rest = rest[i:]
	}
	rest = strings.TrimLeft(rest, " ")
	// A timestamp may follow the value; only the value is validated.
	if sp := strings.IndexByte(rest, ' '); sp >= 0 {
		if _, err := strconv.ParseInt(strings.TrimSpace(rest[sp+1:]), 10, 64); err != nil {
			return nil, "", fmt.Errorf("unparseable timestamp %q", rest[sp+1:])
		}
		rest = rest[:sp]
	}
	if rest == "" {
		return nil, "", fmt.Errorf("sample without value")
	}
	return labels, rest, nil
}

func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}

func validLabelName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		ok := c == '_' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}
