// The non-RCoal citizens of the defense zoo: the obfuscation defenses
// of Karimi et al., "Hardware/Software Obfuscation against Timing
// Side-channel Attack on a GPU" (arXiv 2007.16175) — randomized delay
// injection and memory-access shuffling — plus the no-coalescing
// strawman the RCoal paper uses as its security upper bound /
// performance lower bound (Section III).
//
// None of these randomize the subwarp plan, so all three return the
// whole-warp plan and consume zero launch-time draws; their randomness
// (if any) flows through the per-request Launch hooks, fed by the
// simulator's dedicated defense stream.

package mechanism

import (
	"fmt"

	"rcoal/internal/rng"
)

// DefaultDelayCycles is the default bound for the randomized-delay
// defense when the spec gives none: comparable to one DRAM access
// (Table I row-miss latency), enough to drown per-transaction timing
// differences without stalling the pipeline for thousands of cycles.
const DefaultDelayCycles = 64

// delayMech injects a uniform random stall before every memory
// instruction issues.
type delayMech struct {
	max  int
	hook func(*rng.Source) int64
}

// Delay returns the randomized-delay-injection defense: every memory
// instruction stalls an extra uniform [0, maxCycles] cycles at the
// issue stage, decorrelating observed latency from the coalescing
// degree. Coalescing itself is untouched, so (unlike RCoal) the
// defense costs latency even when the secret leaks nothing.
func Delay(maxCycles int) Mechanism {
	d := &delayMech{max: maxCycles}
	// The hook closure is built once here, not per launch, so NewLaunch
	// stays allocation-free (the simulator's steady-state alloc guards
	// count launch setup).
	d.hook = func(r *rng.Source) int64 { return int64(r.Intn(d.max + 1)) }
	return d
}

func (d *delayMech) Spec() string { return fmt.Sprintf("delay:%d", d.max) }
func (d *delayMech) Name() string { return fmt.Sprintf("Delay(%d)", d.max) }

func (d *delayMech) ValidateFor(warpSize int) error {
	if warpSize < 0 {
		return fmt.Errorf("mechanism: negative warp size %d", warpSize)
	}
	if d.max < 1 {
		return fmt.Errorf("mechanism: delay bound %d cycles, need >= 1", d.max)
	}
	return nil
}

func (d *delayMech) NewLaunch(warpSize int, r *rng.Source) (Launch, error) {
	if err := d.ValidateFor(warpSize); err != nil {
		return Launch{}, err
	}
	return Launch{Plan: WholeWarpPlan(warpSize), Delay: d.hook}, nil
}

// shuffleMech permutes coalesced transaction order per request.
type shuffleMech struct {
	hook func(*rng.Source, []uint64)
}

// Shuffle returns the access-pattern-shuffling defense: the coalesced
// transactions of each memory request are issued in a fresh random
// order (Fisher–Yates per request). Transaction counts — RCoal's
// channel — are unchanged, but DRAM row locality and bank order are
// perturbed, obfuscating latency-shape side channels.
func Shuffle() Mechanism {
	return &shuffleMech{hook: func(r *rng.Source, tx []uint64) {
		for i := len(tx) - 1; i > 0; i-- {
			j := r.Intn(i + 1)
			tx[i], tx[j] = tx[j], tx[i]
		}
	}}
}

func (s *shuffleMech) Spec() string { return "shuffle" }
func (s *shuffleMech) Name() string { return "Shuffle" }

func (s *shuffleMech) ValidateFor(warpSize int) error {
	if warpSize < 0 {
		return fmt.Errorf("mechanism: negative warp size %d", warpSize)
	}
	return nil
}

func (s *shuffleMech) NewLaunch(warpSize int, r *rng.Source) (Launch, error) {
	return Launch{Plan: WholeWarpPlan(warpSize), Shuffle: s.hook}, nil
}

// noCoal disables the coalescer outright.
type noCoal struct{}

// NoCoal returns the no-coalescing strawman: the MCU is bypassed and
// every active thread's access becomes its own transaction, duplicates
// included. Timing no longer depends on address overlap at all —
// maximum security, and the paper's motivating worst case for
// performance.
func NoCoal() Mechanism { return noCoal{} }

func (noCoal) Spec() string { return "nocoal" }
func (noCoal) Name() string { return "NoCoalescing" }

func (noCoal) ValidateFor(warpSize int) error {
	if warpSize < 0 {
		return fmt.Errorf("mechanism: negative warp size %d", warpSize)
	}
	return nil
}

func (noCoal) NewLaunch(warpSize int, r *rng.Source) (Launch, error) {
	return Launch{Plan: WholeWarpPlan(warpSize), PerThread: true}, nil
}

// The delay/shuffle/nocoal registry entries live in registry.go's init
// so registration (and therefore frontier-grid) order is subwarp
// families first, obfuscation defenses after — independent of package
// file initialization order.
