// The mechanism registry: one table mapping CLI spec keywords to
// constructors, shared by every binary (rcoal, rcoal-experiments,
// rcoal-theory) so the spec grammar exists in exactly one place.
//
// Grammar: keyword[:arg[:arg]] — e.g. "baseline", "fss:4",
// "fss+rts:8", "rss-normal:4:1.5", "delay:64", "shuffle", "nocoal".
// Keywords are case-insensitive; compact aliases ("fssrts") are kept
// for backward compatibility with the pre-registry facade grammar.

package mechanism

import (
	"fmt"
	"strconv"
	"strings"

	"rcoal/internal/core"
)

// Info describes one registered mechanism family for discovery UIs
// (`rcoal list-mechanisms`).
type Info struct {
	// Keyword is the primary spec keyword, e.g. "fss+rts".
	Keyword string
	// Aliases are alternative keywords accepted by Parse.
	Aliases []string
	// Usage shows the argument shape, e.g. "fss+rts:M".
	Usage string
	// Summary is the one-line description.
	Summary string
	// Examples are canonical specs seeding the defense-frontier grid
	// (and the fuzz corpus); they parse and round-trip by construction.
	Examples []string
	// Hidden entries parse but are omitted from List — spec spellings
	// kept only so every constructible mechanism's Spec() round-trips.
	Hidden bool
}

type entry struct {
	Info
	parse func(args []string) (Mechanism, error)
}

var (
	registry  []*entry
	byKeyword = map[string]*entry{}
)

// Register adds a mechanism family to the registry. It is called from
// init functions in this package; external packages extend the zoo by
// adding a citizen here. Duplicate keywords panic at init time.
func Register(info Info, parse func(args []string) (Mechanism, error)) {
	e := &entry{Info: info, parse: parse}
	for _, k := range append([]string{info.Keyword}, info.Aliases...) {
		if _, dup := byKeyword[k]; dup {
			panic(fmt.Sprintf("mechanism: duplicate registry keyword %q", k))
		}
		byKeyword[k] = e
	}
	registry = append(registry, e)
}

// Parse resolves a CLI spec string ("fss+rts:8", "delay:64") against
// the registry. It validates the result for the default warp size, so
// a bad spec surfaces as an error here — never as a panic downstream.
func Parse(spec string) (Mechanism, error) {
	fields := strings.Split(strings.ToLower(strings.TrimSpace(spec)), ":")
	e, ok := byKeyword[fields[0]]
	if !ok {
		return nil, fmt.Errorf("mechanism: unknown mechanism %q (known: %s)", spec, strings.Join(Keywords(), ", "))
	}
	m, err := e.parse(fields[1:])
	if err != nil {
		return nil, fmt.Errorf("mechanism: spec %q: %w", spec, err)
	}
	if err := m.ValidateFor(0); err != nil {
		return nil, fmt.Errorf("mechanism: spec %q: %w", spec, err)
	}
	return m, nil
}

// List returns the visible registry entries in registration order.
func List() []Info {
	out := make([]Info, 0, len(registry))
	for _, e := range registry {
		if !e.Hidden {
			out = append(out, e.Info)
		}
	}
	return out
}

// Keywords returns the visible primary keywords in registration order.
func Keywords() []string {
	var out []string
	for _, e := range registry {
		if !e.Hidden {
			out = append(out, e.Keyword)
		}
	}
	return out
}

// FrontierSpecs returns the canonical example specs of every visible
// registered mechanism, in registration order — the default grid of
// the ext-defense-frontier experiment. The first spec is always
// "baseline" (the normalization reference).
func FrontierSpecs() []string {
	var out []string
	for _, e := range registry {
		if !e.Hidden {
			out = append(out, e.Examples...)
		}
	}
	return out
}

// specArgs parses the ":"-separated argument list for the subwarp
// families: an optional subwarp count (default 1) and, where allowed,
// an optional sigma.
func specArgs(args []string, wantSigma bool) (m int, sigma float64, err error) {
	m = 1
	if len(args) >= 1 && args[0] != "" {
		m, err = strconv.Atoi(args[0])
		if err != nil {
			return 0, 0, fmt.Errorf("bad subwarp count %q", args[0])
		}
	}
	maxArgs := 1
	if wantSigma {
		maxArgs = 2
		if len(args) >= 2 {
			sigma, err = strconv.ParseFloat(args[1], 64)
			if err != nil {
				return 0, 0, fmt.Errorf("bad sigma %q", args[1])
			}
		}
	}
	if len(args) > maxArgs {
		return 0, 0, fmt.Errorf("too many arguments (%d)", len(args))
	}
	return m, sigma, nil
}

func noArgs(args []string) error {
	if len(args) > 0 {
		return fmt.Errorf("takes no arguments, got %d", len(args))
	}
	return nil
}

func init() {
	Register(Info{
		Keyword: "baseline",
		Usage:   "baseline",
		Summary: "undefended whole-warp coalescing (the attacked GPU)",
		Examples: []string{
			"baseline",
		},
	}, func(args []string) (Mechanism, error) {
		if err := noArgs(args); err != nil {
			return nil, err
		}
		return Baseline(), nil
	})
	Register(Info{
		Keyword: "fss",
		Usage:   "fss:M",
		Summary: "RCoal fixed-sized subwarps: M equal groups, in-order threads",
		Examples: []string{
			"fss:4",
			"fss:8",
		},
	}, func(args []string) (Mechanism, error) {
		m, _, err := specArgs(args, false)
		if err != nil {
			return nil, err
		}
		return FSS(m), nil
	})
	Register(Info{
		Keyword: "fss+rts",
		Aliases: []string{"fssrts"},
		Usage:   "fss+rts:M",
		Summary: "RCoal FSS with random thread-to-subwarp allocation",
		Examples: []string{
			"fss+rts:8",
		},
	}, func(args []string) (Mechanism, error) {
		m, _, err := specArgs(args, false)
		if err != nil {
			return nil, err
		}
		return FSSRTS(m), nil
	})
	Register(Info{
		Keyword: "rss",
		Usage:   "rss:M",
		Summary: "RCoal random-sized subwarps (skewed sizing, drawn per launch)",
		Examples: []string{
			"rss:8",
		},
	}, func(args []string) (Mechanism, error) {
		m, _, err := specArgs(args, false)
		if err != nil {
			return nil, err
		}
		return RSS(m), nil
	})
	Register(Info{
		Keyword: "rss+rts",
		Aliases: []string{"rssrts"},
		Usage:   "rss+rts:M",
		Summary: "RCoal RSS with random thread allocation (strongest family)",
		Examples: []string{
			"rss+rts:4",
			"rss+rts:8",
		},
	}, func(args []string) (Mechanism, error) {
		m, _, err := specArgs(args, false)
		if err != nil {
			return nil, err
		}
		return RSSRTS(m), nil
	})
	Register(Info{
		Keyword: "rss-normal",
		Aliases: []string{"rssnormal"},
		Usage:   "rss-normal:M[:sigma]",
		Summary: "RSS with normal-distributed sizes (Figure 9 comparison point)",
		Examples: []string{
			"rss-normal:8",
		},
	}, func(args []string) (Mechanism, error) {
		m, sigma, err := specArgs(args, true)
		if err != nil {
			return nil, err
		}
		return RSSNormal(m, sigma), nil
	})
	// Hidden round-trip spelling for Subwarp(core.Config) combinations
	// that have no named constructor (normal sizing + RTS).
	Register(Info{
		Keyword: "rss-normal+rts",
		Aliases: []string{"rssnormal+rts"},
		Usage:   "rss-normal+rts:M[:sigma]",
		Summary: "RSS normal sizing with random thread allocation",
		Hidden:  true,
	}, func(args []string) (Mechanism, error) {
		m, sigma, err := specArgs(args, true)
		if err != nil {
			return nil, err
		}
		cfg := core.RSSNormal(m, sigma)
		cfg.RandomThreads = true
		return Subwarp(cfg), nil
	})

	// Non-RCoal citizens (obfuscation.go), registered after the subwarp
	// families so the frontier grid leads with the paper's mechanisms.
	Register(Info{
		Keyword: "delay",
		Usage:   "delay:D",
		Summary: "randomized delay injection: +uniform[0,D] cycles per memory issue (Karimi et al.)",
		Examples: []string{
			"delay:16",
			"delay:64",
		},
	}, func(args []string) (Mechanism, error) {
		max := DefaultDelayCycles
		if len(args) > 1 {
			return nil, fmt.Errorf("too many arguments (%d)", len(args))
		}
		if len(args) == 1 && args[0] != "" {
			var err error
			if max, err = strconv.Atoi(args[0]); err != nil {
				return nil, fmt.Errorf("bad delay bound %q", args[0])
			}
		}
		return Delay(max), nil
	})
	Register(Info{
		Keyword: "shuffle",
		Usage:   "shuffle",
		Summary: "access-pattern shuffling: random per-request transaction order (Karimi et al.)",
		Examples: []string{
			"shuffle",
		},
	}, func(args []string) (Mechanism, error) {
		if err := noArgs(args); err != nil {
			return nil, err
		}
		return Shuffle(), nil
	})
	Register(Info{
		Keyword: "nocoal",
		Aliases: []string{"no-coalescing", "uncoalesced"},
		Usage:   "nocoal",
		Summary: "no-coalescing strawman: one transaction per active thread, MCU bypassed",
		Examples: []string{
			"nocoal",
		},
	}, func(args []string) (Mechanism, error) {
		if err := noArgs(args); err != nil {
			return nil, err
		}
		return NoCoal(), nil
	})
}
