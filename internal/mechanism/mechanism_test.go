package mechanism

import (
	"reflect"
	"strings"
	"testing"

	"rcoal/internal/core"
	"rcoal/internal/rng"
)

// TestSubwarpPlanIdentity is the refactor's byte-identity differential
// at the plan level: for every RCoal family × subwarp count × seed, the
// Mechanism path (NewLaunch) must realize exactly the plan the
// pre-Mechanism core.Config path (NewPlan) drew, consuming the same
// stream positions.
func TestSubwarpPlanIdentity(t *testing.T) {
	families := []struct {
		name string
		mech func(m int) Mechanism
		cfg  func(m int) core.Config
	}{
		{"fss", FSS, core.FSS},
		{"fss+rts", FSSRTS, core.FSSRTS},
		{"rss", RSS, core.RSS},
		{"rss+rts", RSSRTS, core.RSSRTS},
		{"rss-normal", func(m int) Mechanism { return RSSNormal(m, 1.5) },
			func(m int) core.Config { return core.RSSNormal(m, 1.5) }},
	}
	seeds := []uint64{1, 42, 0xdecaf}
	for _, f := range families {
		for _, m := range []int{2, 4, 8} {
			for _, seed := range seeds {
				r := rng.New(seed)
				launch, err := f.mech(m).NewLaunch(core.DefaultWarpSize, r)
				if err != nil {
					t.Fatalf("%s:%d seed %d: %v", f.name, m, seed, err)
				}
				want := f.cfg(m).NewPlan(rng.New(seed))
				if !reflect.DeepEqual(launch.Plan, want) {
					t.Errorf("%s:%d seed %d: mechanism plan differs from core.NewPlan\n got %v\nwant %v",
						f.name, m, seed, launch.Plan, want)
				}
				// Stream position identity: the next draw after NewLaunch
				// must match the next draw after NewPlan.
				ref := rng.New(seed)
				f.cfg(m).NewPlan(ref)
				if got, want := r.Uint64(), ref.Uint64(); got != want {
					t.Errorf("%s:%d seed %d: stream position diverged after launch", f.name, m, seed)
				}
			}
		}
	}
	// Baseline consumes zero draws and realizes the whole-warp plan.
	r := rng.New(7)
	launch, err := Baseline().NewLaunch(core.DefaultWarpSize, r)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(launch.Plan, core.Baseline().NewPlan(rng.New(7))) {
		t.Error("baseline plan differs from core baseline plan")
	}
	if r.Uint64() != rng.New(7).Uint64() {
		t.Error("baseline NewLaunch consumed random draws")
	}
}

// TestWholeWarpMechanismsDrawNothing pins the stream-stability
// contract: defenses that leave the subwarp plan whole-warp must
// consume ZERO draws at launch time (their randomness flows through the
// per-request hooks instead). The prefix-fork accelerator's correctness
// argument depends on this.
func TestWholeWarpMechanismsDrawNothing(t *testing.T) {
	for _, m := range []Mechanism{Baseline(), Delay(64), Shuffle(), NoCoal()} {
		r := rng.New(99)
		launch, err := m.NewLaunch(32, r)
		if err != nil {
			t.Fatalf("%s: %v", m.Name(), err)
		}
		if r.Uint64() != rng.New(99).Uint64() {
			t.Errorf("%s: NewLaunch consumed launch-time draws", m.Name())
		}
		if got := launch.Plan.WarpSize(); got != 32 {
			t.Errorf("%s: plan warp size %d, want 32", m.Name(), got)
		}
		if got := launch.Plan.NumSubwarps(); got != 1 {
			t.Errorf("%s: plan has %d subwarps, want whole-warp", m.Name(), got)
		}
	}
}

func TestLaunchShape(t *testing.T) {
	cases := []struct {
		mech      Mechanism
		perThread bool
		delay     bool
		shuffle   bool
	}{
		{Baseline(), false, false, false},
		{RSSRTS(8), false, false, false},
		{Delay(64), false, true, false},
		{Shuffle(), false, false, true},
		{NoCoal(), true, false, false},
	}
	for _, c := range cases {
		l, err := c.mech.NewLaunch(32, rng.New(1))
		if err != nil {
			t.Fatalf("%s: %v", c.mech.Name(), err)
		}
		if l.PerThread != c.perThread {
			t.Errorf("%s: PerThread = %v", c.mech.Name(), l.PerThread)
		}
		if (l.Delay != nil) != c.delay || (l.Shuffle != nil) != c.shuffle {
			t.Errorf("%s: hooks (delay=%v, shuffle=%v)", c.mech.Name(), l.Delay != nil, l.Shuffle != nil)
		}
		if want := c.delay || c.shuffle; l.HasHooks() != want {
			t.Errorf("%s: HasHooks = %v, want %v", c.mech.Name(), l.HasHooks(), want)
		}
		if got := PlanOnly(c.mech, 32); got != (!c.perThread && !c.delay && !c.shuffle) {
			t.Errorf("%s: PlanOnly = %v", c.mech.Name(), got)
		}
	}
}

func TestDelayHookBounds(t *testing.T) {
	l, err := Delay(16).NewLaunch(32, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(5)
	seen := map[int64]bool{}
	for i := 0; i < 2000; i++ {
		d := l.Delay(r)
		if d < 0 || d > 16 {
			t.Fatalf("delay %d outside [0, 16]", d)
		}
		seen[d] = true
	}
	if len(seen) < 10 {
		t.Errorf("delay hook drew only %d distinct values in [0,16]", len(seen))
	}
}

func TestShuffleHookPermutes(t *testing.T) {
	l, err := Shuffle().NewLaunch(32, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	orig := []uint64{10, 20, 30, 40, 50, 60, 70, 80}
	tx := append([]uint64(nil), orig...)
	r := rng.New(3)
	moved := false
	for i := 0; i < 20 && !moved; i++ {
		l.Shuffle(r, tx)
		counts := map[uint64]int{}
		for _, v := range tx {
			counts[v]++
		}
		for _, v := range orig {
			if counts[v] != 1 {
				t.Fatalf("shuffle lost or duplicated %d: %v", v, tx)
			}
		}
		moved = !reflect.DeepEqual(tx, orig)
	}
	if !moved {
		t.Error("20 shuffles never changed the order")
	}
}

// TestParseSpecRoundTrip: every visible frontier spec, every alias, and
// the hidden round-trip spellings parse, and parsing a mechanism's
// canonical Spec() reconstructs an identical mechanism.
func TestParseSpecRoundTrip(t *testing.T) {
	specs := append([]string{}, FrontierSpecs()...)
	specs = append(specs,
		"fssrts:8", "rssrts:4", "rssnormal:8", "no-coalescing", "uncoalesced",
		"rss-normal:4:2.5", "rss-normal+rts:4", "rssnormal+rts:4:1.5",
		"delay", "FSS:4", " rss+rts:8 ",
	)
	for _, spec := range specs {
		m, err := Parse(spec)
		if err != nil {
			t.Errorf("Parse(%q): %v", spec, err)
			continue
		}
		again, err := Parse(m.Spec())
		if err != nil {
			t.Errorf("canonical spec %q (from %q) does not re-parse: %v", m.Spec(), spec, err)
			continue
		}
		if again.Spec() != m.Spec() || again.Name() != m.Name() {
			t.Errorf("round-trip drift: %q -> (%q, %q) -> (%q, %q)",
				spec, m.Spec(), m.Name(), again.Spec(), again.Name())
		}
	}
	// Constructor Spec()s round-trip too, including the RTS+normal
	// combination that only the hidden registry spelling covers.
	ctors := []Mechanism{
		Baseline(), FSS(4), FSSRTS(8), RSS(8), RSSRTS(4), RSSNormal(8, 1.5),
		Subwarp(func() core.Config { c := core.RSSNormal(4, 2); c.RandomThreads = true; return c }()),
		Delay(64), Shuffle(), NoCoal(),
	}
	for _, m := range ctors {
		again, err := Parse(m.Spec())
		if err != nil {
			t.Errorf("%s: Spec() %q does not parse: %v", m.Name(), m.Spec(), err)
			continue
		}
		if again.Spec() != m.Spec() || again.Name() != m.Name() {
			t.Errorf("%s: Spec() %q round-trips to (%q, %q)", m.Name(), m.Spec(), again.Spec(), again.Name())
		}
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"", "warp", "fss:0", "fss:3", "fss:x", "fss:4:4", "rss:33",
		"baseline:1", "nocoal:1", "shuffle:2", "delay:0", "delay:-1",
		"delay:x", "delay:1:2", "rss-normal:8:x", "fss:999999999999999999999",
	}
	for _, spec := range bad {
		if m, err := Parse(spec); err == nil {
			t.Errorf("Parse(%q) accepted: %v", spec, m.Name())
		}
	}
	// Parse errors mention the known keywords for unknown mechanisms.
	_, err := Parse("warp")
	if err == nil || !strings.Contains(err.Error(), "baseline") {
		t.Errorf("unknown-keyword error does not list keywords: %v", err)
	}
}

func TestRegistryListing(t *testing.T) {
	list := List()
	if len(list) == 0 || list[0].Keyword != "baseline" {
		t.Fatalf("List() = %v, want baseline first", list)
	}
	kws := Keywords()
	if len(kws) != len(list) {
		t.Errorf("Keywords() has %d entries, List() %d", len(kws), len(list))
	}
	for _, info := range list {
		if info.Hidden {
			t.Errorf("List() includes hidden entry %q", info.Keyword)
		}
		if info.Summary == "" || info.Usage == "" {
			t.Errorf("%q: missing usage or summary", info.Keyword)
		}
		if len(info.Examples) == 0 {
			t.Errorf("%q: no examples (frontier grid would skip it)", info.Keyword)
		}
	}
	fs := FrontierSpecs()
	if len(fs) == 0 || fs[0] != "baseline" {
		t.Fatalf("FrontierSpecs() = %v, want baseline first", fs)
	}
	seen := map[string]bool{}
	for _, s := range fs {
		m, err := Parse(s)
		if err != nil {
			t.Errorf("frontier spec %q does not parse: %v", s, err)
			continue
		}
		if m.Spec() != s {
			t.Errorf("frontier spec %q is not canonical (Spec() = %q)", s, m.Spec())
		}
		if seen[s] {
			t.Errorf("frontier spec %q duplicated", s)
		}
		seen[s] = true
	}
	// The zoo the issue requires: subwarp families plus delay, shuffle,
	// and the no-coalescing strawman.
	for _, want := range []string{"fss:4", "rss+rts:8", "delay:64", "shuffle", "nocoal"} {
		if !seen[want] {
			t.Errorf("frontier grid missing %q (have %v)", want, fs)
		}
	}
}

func TestSubwarpConfigProbe(t *testing.T) {
	cfg, ok := SubwarpConfig(RSSRTS(8))
	if !ok || cfg.NumSubwarps != 8 || !cfg.RandomThreads {
		t.Errorf("SubwarpConfig(RSSRTS(8)) = %+v, %v", cfg, ok)
	}
	for _, m := range []Mechanism{Delay(64), Shuffle(), NoCoal()} {
		if _, ok := SubwarpConfig(m); ok {
			t.Errorf("SubwarpConfig(%s) claimed a subwarp policy", m.Name())
		}
	}
}

func TestValidateForErrors(t *testing.T) {
	if err := FSS(3).ValidateFor(32); err == nil {
		t.Error("FSS(3) accepted for warp 32")
	}
	if err := FSS(8).ValidateFor(32); err != nil {
		t.Errorf("FSS(8): %v", err)
	}
	// Warp-size mismatch between a sized policy and the hardware.
	mis := Subwarp(core.Config{NumSubwarps: 2, SizeDist: core.SizeFixed, WarpSize: 16})
	if err := mis.ValidateFor(32); err == nil {
		t.Error("warp-16 policy accepted on warp-32 hardware")
	}
	if _, err := mis.NewLaunch(32, rng.New(1)); err == nil {
		t.Error("NewLaunch accepted mismatched warp size")
	}
	if err := Delay(0).ValidateFor(32); err == nil {
		t.Error("Delay(0) accepted")
	}
	if _, err := Delay(-5).NewLaunch(32, rng.New(1)); err == nil {
		t.Error("Delay(-5) launch accepted")
	}
}

func TestWholeWarpPlanShape(t *testing.T) {
	p := WholeWarpPlan(32)
	if err := p.Check(); err != nil {
		t.Fatal(err)
	}
	if p.NumSubwarps() != 1 || p.WarpSize() != 32 {
		t.Errorf("WholeWarpPlan(32) = %d subwarps, %d threads", p.NumSubwarps(), p.WarpSize())
	}
}
