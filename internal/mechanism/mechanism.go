// Package mechanism defines the pluggable defense-mechanism API: every
// GPU timing-attack defense the repository models — RCoal's subwarp
// coalescing families, the obfuscation defenses of Karimi et al.
// (randomized delay injection, access-pattern shuffling), and the
// no-coalescing strawman — implements one interface and registers
// itself under a CLI spec keyword.
//
// The split mirrors internal/core's policy/plan separation, lifted one
// level: a Mechanism is the *policy* (which defense, with which knobs)
// and a Launch is the *realized per-kernel-launch state* the simulator
// executes — a thread→subwarp plan for the MCU, plus optional
// per-request hooks (an issue-stage delay, a transaction-order
// shuffle) for defenses that act outside the coalescer.
//
// Two contracts every implementation must keep:
//
//   - Determinism: NewLaunch draws all randomness from the supplied
//     source, so identical (mechanism, seed) pairs realize identical
//     launches anywhere.
//   - Stream stability: a mechanism that carries no subwarp
//     randomization (whole-warp plan) must consume ZERO draws in
//     NewLaunch. This is what keeps the subwarp mechanisms
//     byte-identical through the refactor and what the prefix-fork
//     accelerator's mechanism-independent-prefix argument rests on.
package mechanism

import (
	"fmt"
	"strconv"

	"rcoal/internal/core"
	"rcoal/internal/rng"
)

// Launch is one realized defense state for a kernel launch: drawn by
// NewLaunch at launch start (Section IV-D fixes it for the launch's
// duration) and consumed by the simulator's issue and coalescing
// stages.
type Launch struct {
	// Plan is the thread→subwarp mapping the modified MCU executes.
	// Mechanisms that do not randomize coalescing return the whole-warp
	// plan (one subwarp holding every thread).
	Plan core.Plan
	// PerThread bypasses the coalescer entirely: one memory transaction
	// per active thread, duplicates included (the Section III
	// no-coalescing strawman).
	PerThread bool
	// Delay, when non-nil, is the issue-stage hook: called once per
	// memory instruction with the launch's defense RNG, it returns the
	// extra stall cycles injected before the instruction issues
	// (randomized delay injection, Karimi et al.).
	Delay func(r *rng.Source) int64
	// Shuffle, when non-nil, permutes the coalesced transaction order
	// in place before the transactions queue for injection — the
	// access-pattern shuffling defense: counts are untouched, but DRAM
	// arrival order (and therefore row locality and timing) is
	// perturbed per request.
	Shuffle func(r *rng.Source, tx []uint64)
}

// HasHooks reports whether the launch carries per-request hooks that
// consume defense randomness during execution (as opposed to only at
// launch setup).
func (l Launch) HasHooks() bool { return l.Delay != nil || l.Shuffle != nil }

// Mechanism is one defense against the coalescing timing channel. All
// implementations are immutable after construction and safe to share
// across goroutines; the mutable per-launch state lives in Launch.
type Mechanism interface {
	// Spec returns the canonical registry spec string, e.g. "fss+rts:8"
	// or "delay:64". Parse(Spec()) round-trips to an equivalent
	// mechanism — the invariant the registry fuzz target enforces.
	Spec() string
	// Name returns the display name, e.g. "FSS+RTS(8)" or "Delay(64)",
	// matching the paper's naming for the RCoal families.
	Name() string
	// ValidateFor checks the mechanism against the target hardware's
	// warp size (FSS requires M to divide it, every family bounds M by
	// it). It returns an error — never panics — so a bad CLI spec is a
	// clean usage error end-to-end.
	ValidateFor(warpSize int) error
	// NewLaunch draws one launch's realized defense state from r (the
	// hardware RNG of Figure 11, or the attacker's own stream in a
	// corresponding attack). Invalid mechanisms error here too, so no
	// path from untrusted input reaches a panic.
	NewLaunch(warpSize int, r *rng.Source) (Launch, error)
}

// PlanOnly reports whether the mechanism realizes launches as a pure
// subwarp plan — coalescing enabled, no per-request hooks. This is the
// class the prefix-fork accelerator and the Section V analytical model
// can reason about; the probe draws from a throwaway stream and never
// touches hardware randomness.
func PlanOnly(m Mechanism, warpSize int) bool {
	l, err := m.NewLaunch(warpSize, rng.New(0))
	return err == nil && !l.PerThread && !l.HasHooks()
}

// WholeWarpPlan returns the undefended plan: one subwarp holding every
// thread, in order. It is what core.Baseline() realizes, constructed
// without touching any random stream.
func WholeWarpPlan(warpSize int) core.Plan {
	return core.Plan{Sizes: []int{warpSize}, SID: make([]uint8, warpSize)}
}

// --- Subwarp coalescing: the first registered citizen -----------------------

// subwarp wraps a core.Config coalescing policy (the RCoal families)
// as a Mechanism.
type subwarp struct{ cfg core.Config }

// Subwarp wraps an RCoal coalescing policy as a Mechanism. The thin
// compatibility constructors below (Baseline, FSS, ...) cover the
// named families; Subwarp itself admits any core.Config, validated at
// use.
func Subwarp(cfg core.Config) Mechanism { return subwarp{cfg: cfg} }

// SubwarpConfig unwraps a subwarp-coalescing mechanism back to its
// core.Config policy, reporting false for every other defense. The
// analytical model (internal/theory) uses it to decide whether a
// closed-form ρ exists.
func SubwarpConfig(m Mechanism) (core.Config, bool) {
	s, ok := m.(subwarp)
	return s.cfg, ok
}

// Baseline returns the undefended whole-warp coalescing mechanism.
func Baseline() Mechanism { return subwarp{cfg: core.Baseline()} }

// FSS returns fixed-sized subwarps with m subwarps per warp.
func FSS(m int) Mechanism { return subwarp{cfg: core.FSS(m)} }

// FSSRTS returns FSS with random thread allocation.
func FSSRTS(m int) Mechanism { return subwarp{cfg: core.FSSRTS(m)} }

// RSS returns random-sized (skewed) subwarps.
func RSS(m int) Mechanism { return subwarp{cfg: core.RSS(m)} }

// RSSRTS returns RSS with random thread allocation.
func RSSRTS(m int) Mechanism { return subwarp{cfg: core.RSSRTS(m)} }

// RSSNormal returns the normal-sized RSS variant of Figure 9; sigma 0
// means the default spread.
func RSSNormal(m int, sigma float64) Mechanism { return subwarp{cfg: core.RSSNormal(m, sigma)} }

func (s subwarp) Spec() string {
	c := s.cfg
	if c.NumSubwarps == 1 && c.SizeDist == core.SizeFixed && !c.RandomThreads {
		return "baseline"
	}
	base := "fss"
	switch c.SizeDist {
	case core.SizeSkewed:
		base = "rss"
	case core.SizeNormal:
		base = "rss-normal"
	}
	if c.RandomThreads {
		base += "+rts"
	}
	spec := fmt.Sprintf("%s:%d", base, c.NumSubwarps)
	if c.SizeDist == core.SizeNormal && c.NormalSigma != 0 {
		spec += ":" + strconv.FormatFloat(c.NormalSigma, 'g', -1, 64)
	}
	return spec
}

func (s subwarp) Name() string { return s.cfg.Name() }

func (s subwarp) ValidateFor(warpSize int) error {
	c, err := s.sized(warpSize)
	if err != nil {
		return err
	}
	return c.Validate()
}

func (s subwarp) NewLaunch(warpSize int, r *rng.Source) (Launch, error) {
	c, err := s.sized(warpSize)
	if err != nil {
		return Launch{}, err
	}
	// core.Config.Plan draws exactly the stream positions the
	// pre-Mechanism simulator consumed, so refactored results stay
	// byte-identical (pinned by internal/equiv and the accel goldens).
	p, err := c.Plan(r)
	if err != nil {
		return Launch{}, err
	}
	return Launch{Plan: p}, nil
}

// sized resolves the policy's warp size against the hardware's.
func (s subwarp) sized(warpSize int) (core.Config, error) {
	c := s.cfg
	if c.WarpSize == 0 {
		c.WarpSize = warpSize
	}
	if warpSize > 0 && c.WarpSize != warpSize {
		return core.Config{}, fmt.Errorf("mechanism: subwarp policy warp size %d != hardware warp size %d", c.WarpSize, warpSize)
	}
	return c, nil
}
