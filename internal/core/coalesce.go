package core

// This file is the coalescing logic itself: turning a warp-wide memory
// instruction (one block address per active thread) into the set of
// memory transactions the MCU emits. Coalescing happens independently
// per subwarp — threads in different subwarps never merge, which is
// the entire lever the defense turns.
//
// The same functions serve the simulated hardware (via Transaction,
// which carries full block keys and member threads) and the attacker's
// estimators (via CountSmallBlocks, a bitset fast path for table
// lookups where blocks are 0..R-1 with R <= 64).

// Transaction is one coalesced memory access: the distinct memory
// block touched by one subwarp, with the threads whose requests were
// merged into it.
type Transaction struct {
	// SID is the subwarp that generated the access.
	SID int
	// Block is the 64-byte-aligned memory block key (address >> 6).
	Block uint64
	// Threads are the warp-relative thread ids merged into the access,
	// in increasing tid order.
	Threads []int
}

// Coalesce merges the per-thread block accesses of one warp-wide
// memory instruction into transactions, independently per subwarp.
// blocks[tid] is the memory block requested by thread tid; active[tid]
// false means the thread is predicated off (branch divergence) and
// issues no request. A nil active slice means all threads are active.
// Transactions are ordered by subwarp, then by first requesting
// thread — the order the PRT drains them.
func (p Plan) Coalesce(blocks []uint64, active []bool) []Transaction {
	if len(blocks) != len(p.SID) {
		panic("core: Coalesce blocks length does not match warp size")
	}
	if active != nil && len(active) != len(p.SID) {
		panic("core: Coalesce active length does not match warp size")
	}
	var out []Transaction
	// Per-subwarp open-transaction index; small M, linear scan is fine
	// and allocation-free for the common path.
	for s := 0; s < len(p.Sizes); s++ {
		start := len(out)
		for tid, sid := range p.SID {
			if int(sid) != s || (active != nil && !active[tid]) {
				continue
			}
			b := blocks[tid]
			merged := false
			for i := start; i < len(out); i++ {
				if out[i].Block == b {
					out[i].Threads = append(out[i].Threads, tid)
					merged = true
					break
				}
			}
			if !merged {
				out = append(out, Transaction{SID: s, Block: b, Threads: []int{tid}})
			}
		}
	}
	return out
}

// CoalesceBlocks is the allocation-lean variant used on the
// simulator's hot path: it appends to out the block key of each
// transaction Coalesce would produce (same count, same order), without
// materializing per-transaction thread lists.
func (p Plan) CoalesceBlocks(blocks []uint64, active []bool, out []uint64) []uint64 {
	if len(blocks) != len(p.SID) {
		panic("core: CoalesceBlocks blocks length does not match warp size")
	}
	if active != nil && len(active) != len(p.SID) {
		panic("core: CoalesceBlocks active length does not match warp size")
	}
	for s := 0; s < len(p.Sizes); s++ {
		start := len(out)
		for tid, sid := range p.SID {
			if int(sid) != s || (active != nil && !active[tid]) {
				continue
			}
			b := blocks[tid]
			dup := false
			for i := start; i < len(out); i++ {
				if out[i] == b {
					dup = true
					break
				}
			}
			if !dup {
				out = append(out, b)
			}
		}
	}
	return out
}

// CoalesceGroupSizes appends to out, for each transaction
// CoalesceBlocks would produce (same count, same order), the number of
// threads merged into it — the Algorithm-1 group sizes the MCU
// instrumentation histograms. Allocation-free when out has capacity.
func (p Plan) CoalesceGroupSizes(blocks []uint64, active []bool, out []int) []int {
	if len(blocks) != len(p.SID) {
		panic("core: CoalesceGroupSizes blocks length does not match warp size")
	}
	if active != nil && len(active) != len(p.SID) {
		panic("core: CoalesceGroupSizes active length does not match warp size")
	}
	for s := 0; s < len(p.Sizes); s++ {
		start := len(out)
		var keyBuf [DefaultWarpSize]uint64
		keys := keyBuf[:0]
		for tid, sid := range p.SID {
			if int(sid) != s || (active != nil && !active[tid]) {
				continue
			}
			b := blocks[tid]
			merged := false
			for i, k := range keys {
				if k == b {
					out[start+i]++
					merged = true
					break
				}
			}
			if !merged {
				keys = append(keys, b)
				out = append(out, 1)
			}
		}
	}
	return out
}

// CoalesceBlocksSizes is the fused variant for the instrumented
// simulator hot path: one scan appending both the block keys
// CoalesceBlocks would produce and the group sizes CoalesceGroupSizes
// would produce (same count, same order), so enabling metrics does not
// re-run the coalescing pass. outBlocks and outSizes must enter with
// equal lengths; they are appended in lockstep.
func (p Plan) CoalesceBlocksSizes(blocks []uint64, active []bool, outBlocks []uint64, outSizes []int) ([]uint64, []int) {
	if len(blocks) != len(p.SID) {
		panic("core: CoalesceBlocksSizes blocks length does not match warp size")
	}
	if active != nil && len(active) != len(p.SID) {
		panic("core: CoalesceBlocksSizes active length does not match warp size")
	}
	if len(outBlocks) != len(outSizes) {
		panic("core: CoalesceBlocksSizes output slices out of lockstep")
	}
	for s := 0; s < len(p.Sizes); s++ {
		start := len(outBlocks)
		for tid, sid := range p.SID {
			if int(sid) != s || (active != nil && !active[tid]) {
				continue
			}
			b := blocks[tid]
			merged := false
			for i := start; i < len(outBlocks); i++ {
				if outBlocks[i] == b {
					outSizes[i]++
					merged = true
					break
				}
			}
			if !merged {
				outBlocks = append(outBlocks, b)
				outSizes = append(outSizes, 1)
			}
		}
	}
	return outBlocks, outSizes
}

// CountCoalesced returns only the number of transactions Coalesce
// would produce, without materializing them.
func (p Plan) CountCoalesced(blocks []uint64, active []bool) int {
	if len(blocks) != len(p.SID) {
		panic("core: CountCoalesced blocks length does not match warp size")
	}
	count := 0
	var seenBuf [DefaultWarpSize]uint64 // distinct blocks seen per subwarp scan
	seen := seenBuf[:]
	if len(p.SID) > len(seen) {
		seen = make([]uint64, len(p.SID))
	}
	for s := 0; s < len(p.Sizes); s++ {
		n := 0
		for tid, sid := range p.SID {
			if int(sid) != s || (active != nil && !active[tid]) {
				continue
			}
			b := blocks[tid]
			dup := false
			for i := 0; i < n; i++ {
				if seen[i] == b {
					dup = true
					break
				}
			}
			if !dup {
				seen[n] = b
				n++
			}
		}
		count += n
	}
	return count
}

// CountSmallBlocks is the attacker-side hot path: per-thread block ids
// are small (0..r-1, r <= 64, e.g. the R = 16 lines of a lookup
// table), so each subwarp's distinct-block set is a 64-bit mask and
// the count is a popcount. blocks[tid] < 0 marks an inactive thread.
func (p Plan) CountSmallBlocks(blocks []int) int {
	if len(blocks) != len(p.SID) {
		panic("core: CountSmallBlocks blocks length does not match warp size")
	}
	var maskBuf [DefaultWarpSize]uint64
	masks := maskBuf[:]
	if len(p.Sizes) > len(masks) {
		masks = make([]uint64, len(p.Sizes))
	}
	for tid, sid := range p.SID {
		b := blocks[tid]
		if b < 0 {
			continue
		}
		if b >= 64 {
			panic("core: CountSmallBlocks block id out of small range")
		}
		masks[sid] |= 1 << uint(b)
	}
	count := 0
	for s := 0; s < len(p.Sizes); s++ {
		count += popcount(masks[s])
	}
	return count
}

func popcount(x uint64) int {
	n := 0
	for x != 0 {
		x &= x - 1
		n++
	}
	return n
}

// CountUncoalesced returns the transaction count with coalescing
// disabled entirely: one access per active thread. This is the
// worst-case defense the paper rejects in Section III (up to 178%
// slowdown, 2.7x data movement).
func CountUncoalesced(blocks []uint64, active []bool) int {
	n := 0
	for tid := range blocks {
		if active == nil || active[tid] {
			n++
		}
	}
	return n
}
