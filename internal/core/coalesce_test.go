package core

import (
	"testing"
	"testing/quick"

	"rcoal/internal/rng"
)

func fullWarpPlan() Plan {
	sid := make([]uint8, 32)
	return Plan{Sizes: []int{32}, SID: sid}
}

func TestCoalescePerfect(t *testing.T) {
	// All 32 threads hit one block -> 1 transaction with 32 threads.
	blocks := make([]uint64, 32)
	txs := fullWarpPlan().Coalesce(blocks, nil)
	if len(txs) != 1 || len(txs[0].Threads) != 32 {
		t.Fatalf("perfect coalescing: %d txs", len(txs))
	}
}

func TestCoalesceWorstCase(t *testing.T) {
	blocks := make([]uint64, 32)
	for i := range blocks {
		blocks[i] = uint64(i)
	}
	txs := fullWarpPlan().Coalesce(blocks, nil)
	if len(txs) != 32 {
		t.Fatalf("worst case: %d txs, want 32", len(txs))
	}
}

func TestCoalesceRespectsActiveMask(t *testing.T) {
	blocks := make([]uint64, 32)
	active := make([]bool, 32)
	for i := 0; i < 4; i++ {
		active[i] = true
		blocks[i] = uint64(i % 2)
	}
	txs := fullWarpPlan().Coalesce(blocks, active)
	if len(txs) != 2 {
		t.Fatalf("masked coalescing: %d txs, want 2", len(txs))
	}
	n := 0
	for _, tx := range txs {
		n += len(tx.Threads)
	}
	if n != 4 {
		t.Fatalf("masked coalescing merged %d threads, want 4", n)
	}
}

func TestCoalesceThreadsSortedAndAttributed(t *testing.T) {
	p := Plan{Sizes: []int{16, 16}, SID: make([]uint8, 32)}
	for i := 16; i < 32; i++ {
		p.SID[i] = 1
	}
	blocks := make([]uint64, 32)
	for i := range blocks {
		blocks[i] = 7 // all same block, but two subwarps -> 2 txs
	}
	txs := p.Coalesce(blocks, nil)
	if len(txs) != 2 {
		t.Fatalf("got %d txs, want 2 (one per subwarp)", len(txs))
	}
	for _, tx := range txs {
		for i := 1; i < len(tx.Threads); i++ {
			if tx.Threads[i] <= tx.Threads[i-1] {
				t.Fatal("threads not in increasing order")
			}
		}
		for _, tid := range tx.Threads {
			if int(p.SID[tid]) != tx.SID {
				t.Fatalf("thread %d attributed to subwarp %d, has sid %d", tid, tx.SID, p.SID[tid])
			}
		}
	}
}

func TestCountMatchesCoalesce(t *testing.T) {
	r := rng.New(11)
	f := func(seed uint64, mRaw uint8) bool {
		ms := []int{1, 2, 4, 8, 16, 32}
		m := ms[int(mRaw)%len(ms)]
		src := rng.New(seed)
		for _, cfg := range []Config{FSS(m), FSSRTS(m), RSS(m), RSSRTS(m)} {
			p := cfg.NewPlan(r)
			blocks := make([]uint64, 32)
			small := make([]int, 32)
			for i := range blocks {
				b := src.Intn(16)
				blocks[i] = uint64(b)
				small[i] = b
			}
			txs := p.Coalesce(blocks, nil)
			want := len(txs)
			if p.CountCoalesced(blocks, nil) != want {
				return false
			}
			if p.CountSmallBlocks(small) != want {
				return false
			}
			// CoalesceBlocks agrees in count, order, and content.
			lean := p.CoalesceBlocks(blocks, nil, nil)
			if len(lean) != want {
				return false
			}
			for i := range lean {
				if lean[i] != txs[i].Block {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestCoalesceGroupSizesMatchThreadLists(t *testing.T) {
	planRNG := rng.New(11)
	src := rng.New(12)
	mechs := []Config{Baseline(), FSS(4), FSSRTS(8), RSS(4), RSSRTS(8)}
	for trial := 0; trial < 200; trial++ {
		plan := mechs[trial%len(mechs)].NewPlan(planRNG)
		blocks := make([]uint64, 32)
		active := make([]bool, 32)
		for i := range blocks {
			blocks[i] = uint64(src.Intn(8))
			active[i] = src.Intn(4) != 0
		}
		var mask []bool
		if trial%2 == 0 {
			mask = active
		}
		txs := plan.Coalesce(blocks, mask)
		sizes := plan.CoalesceGroupSizes(blocks, mask, nil)
		if len(sizes) != len(txs) {
			t.Fatalf("trial %d: %d sizes for %d transactions", trial, len(sizes), len(txs))
		}
		for i, tx := range txs {
			if sizes[i] != len(tx.Threads) {
				t.Fatalf("trial %d tx %d: size %d, want %d threads", trial, i, sizes[i], len(tx.Threads))
			}
		}
		// Reuse a scratch slice: appending after reslice must keep the
		// same results (the simulator's hot-path usage).
		scratch := make([]int, 0, 64)
		again := plan.CoalesceGroupSizes(blocks, mask, scratch[:0])
		for i := range sizes {
			if again[i] != sizes[i] {
				t.Fatalf("trial %d: scratch reuse changed size %d", trial, i)
			}
		}
		// The fused variant agrees with both unfused passes in count,
		// order, and content.
		fb, fs := plan.CoalesceBlocksSizes(blocks, mask, nil, nil)
		if len(fb) != len(txs) || len(fs) != len(txs) {
			t.Fatalf("trial %d: fused lengths %d/%d, want %d", trial, len(fb), len(fs), len(txs))
		}
		for i, tx := range txs {
			if fb[i] != tx.Block || fs[i] != len(tx.Threads) {
				t.Fatalf("trial %d tx %d: fused (%d,%d), want (%d,%d)",
					trial, i, fb[i], fs[i], tx.Block, len(tx.Threads))
			}
		}
	}
}

func TestCoalesceGroupSizesLengthMismatchPanics(t *testing.T) {
	p := fullWarpPlan()
	for name, fn := range map[string]func(){
		"short blocks":       func() { p.CoalesceGroupSizes(make([]uint64, 3), nil, nil) },
		"short active":       func() { p.CoalesceGroupSizes(make([]uint64, len(p.SID)), make([]bool, 2), nil) },
		"fused short blocks": func() { p.CoalesceBlocksSizes(make([]uint64, 3), nil, nil, nil) },
		"fused lockstep": func() {
			p.CoalesceBlocksSizes(make([]uint64, len(p.SID)), nil, make([]uint64, 1), nil)
		},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestCountSmallBlocksInactive(t *testing.T) {
	p := fullWarpPlan()
	blocks := make([]int, 32)
	for i := range blocks {
		blocks[i] = -1 // all inactive
	}
	if got := p.CountSmallBlocks(blocks); got != 0 {
		t.Errorf("all inactive: %d, want 0", got)
	}
	blocks[5] = 3
	if got := p.CountSmallBlocks(blocks); got != 1 {
		t.Errorf("one active: %d, want 1", got)
	}
}

func TestCountSmallBlocksPanicsOnLargeBlock(t *testing.T) {
	p := fullWarpPlan()
	blocks := make([]int, 32)
	blocks[0] = 64
	defer func() {
		if recover() == nil {
			t.Fatal("block id 64 did not panic")
		}
	}()
	p.CountSmallBlocks(blocks)
}

func TestLengthMismatchesPanic(t *testing.T) {
	p := fullWarpPlan()
	for name, fn := range map[string]func(){
		"Coalesce":         func() { p.Coalesce(make([]uint64, 4), nil) },
		"CoalesceActive":   func() { p.Coalesce(make([]uint64, 32), make([]bool, 4)) },
		"CountCoalesced":   func() { p.CountCoalesced(make([]uint64, 4), nil) },
		"CountSmallBlocks": func() { p.CountSmallBlocks(make([]int, 4)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s with mismatched length did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestSubwarpCountBounds(t *testing.T) {
	// Property: for any plan and access pattern, the coalesced count is
	// at least the whole-warp count (splitting can only break merges)
	// and at most min(warp size, whole-warp count + ... ) — concretely,
	// it is bounded by the number of active threads.
	r := rng.New(13)
	f := func(seed uint64, mRaw uint8) bool {
		ms := []int{2, 4, 8, 16, 32}
		m := ms[int(mRaw)%len(ms)]
		src := rng.New(seed)
		blocks := make([]uint64, 32)
		for i := range blocks {
			blocks[i] = uint64(src.Intn(16))
		}
		whole := fullWarpPlan().CountCoalesced(blocks, nil)
		for _, cfg := range []Config{FSS(m), FSSRTS(m), RSS(m), RSSRTS(m)} {
			p := cfg.NewPlan(r)
			got := p.CountCoalesced(blocks, nil)
			if got < whole || got > 32 {
				return false
			}
			// And the uncoalesced bound dominates everything.
			if got > CountUncoalesced(blocks, nil) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestMoreSubwarpsNeverImproveCoalescing(t *testing.T) {
	// FSS monotonicity: doubling M (nested refinement) cannot decrease
	// the access count — the performance cost curve of Figure 7a.
	src := rng.New(17)
	for trial := 0; trial < 100; trial++ {
		blocks := make([]uint64, 32)
		for i := range blocks {
			blocks[i] = uint64(src.Intn(16))
		}
		prev := 0
		for _, m := range []int{1, 2, 4, 8, 16, 32} {
			p := FSS(m).NewPlan(rng.New(1))
			got := p.CountCoalesced(blocks, nil)
			if got < prev {
				t.Fatalf("FSS(%d) count %d < previous %d", m, got, prev)
			}
			prev = got
		}
	}
}

func TestCountUncoalesced(t *testing.T) {
	blocks := make([]uint64, 32)
	if got := CountUncoalesced(blocks, nil); got != 32 {
		t.Errorf("CountUncoalesced = %d, want 32", got)
	}
	active := make([]bool, 32)
	active[3] = true
	if got := CountUncoalesced(blocks, active); got != 1 {
		t.Errorf("CountUncoalesced masked = %d, want 1", got)
	}
}

func TestM32IsConstantCount(t *testing.T) {
	// num-subwarp = 32: every thread is alone, the count is always 32
	// regardless of addresses — the rho = 0 row of Table II.
	p := FSS(32).NewPlan(rng.New(19))
	src := rng.New(23)
	for trial := 0; trial < 50; trial++ {
		blocks := make([]uint64, 32)
		for i := range blocks {
			blocks[i] = uint64(src.Intn(16))
		}
		if got := p.CountCoalesced(blocks, nil); got != 32 {
			t.Fatalf("M=32 count = %d, want constant 32", got)
		}
	}
}
