package core

import (
	"strings"
	"testing"

	"rcoal/internal/rng"
)

func TestConstructors(t *testing.T) {
	cases := []struct {
		cfg  Config
		name string
	}{
		{Baseline(), "Baseline"},
		{FSS(4), "FSS(4)"},
		{FSSRTS(8), "FSS+RTS(8)"},
		{RSS(2), "RSS(2)"},
		{RSSRTS(16), "RSS+RTS(16)"},
		{RSSNormal(4, 1.5), "RSS(normal)(4)"},
	}
	for _, c := range cases {
		if err := c.cfg.Validate(); err != nil {
			t.Errorf("%v: %v", c.name, err)
		}
		if got := c.cfg.Name(); got != c.name {
			t.Errorf("Name() = %q, want %q", got, c.name)
		}
	}
}

func TestValidateRejects(t *testing.T) {
	bad := []Config{
		{NumSubwarps: 0},
		{NumSubwarps: 33},
		{NumSubwarps: 3, SizeDist: SizeFixed}, // 3 does not divide 32
		{NumSubwarps: 4, SizeDist: SizeNormal, NormalSigma: -1},
		{NumSubwarps: 1, WarpSize: -4},
	}
	for _, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("config %+v validated but should not", c)
		}
	}
	// RSS with M=3 is fine (sizes need not be equal).
	if err := RSS(3).Validate(); err != nil {
		t.Errorf("RSS(3): %v", err)
	}
}

func TestSizeDistributionString(t *testing.T) {
	for _, c := range []struct {
		d    SizeDistribution
		want string
	}{{SizeFixed, "fixed"}, {SizeSkewed, "skewed"}, {SizeNormal, "normal"}, {SizeDistribution(9), "unknown"}} {
		if got := c.d.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
}

func TestNewPlanInvariantsAllMechanisms(t *testing.T) {
	r := rng.New(1)
	ms := []int{1, 2, 4, 8, 16, 32}
	for _, m := range ms {
		for _, cfg := range []Config{FSS(m), FSSRTS(m), RSS(m), RSSRTS(m), RSSNormal(m, 2)} {
			for trial := 0; trial < 50; trial++ {
				p := cfg.NewPlan(r)
				if err := p.Check(); err != nil {
					t.Fatalf("%s: invalid plan: %v", cfg.Name(), err)
				}
				if p.NumSubwarps() != m || p.WarpSize() != 32 {
					t.Fatalf("%s: M=%d warp=%d", cfg.Name(), p.NumSubwarps(), p.WarpSize())
				}
			}
		}
	}
}

func TestFSSPlanIsInOrder(t *testing.T) {
	r := rng.New(2)
	p := FSS(4).NewPlan(r)
	for tid, sid := range p.SID {
		if int(sid) != tid/8 {
			t.Fatalf("FSS(4): thread %d in subwarp %d, want %d", tid, sid, tid/8)
		}
	}
	for _, sz := range p.Sizes {
		if sz != 8 {
			t.Fatalf("FSS(4) sizes = %v, want all 8", p.Sizes)
		}
	}
}

func TestRSSPlanInOrderButRandomSizes(t *testing.T) {
	r := rng.New(3)
	sawUnequal := false
	for trial := 0; trial < 50; trial++ {
		p := RSS(4).NewPlan(r)
		// Without RTS, sids must be non-decreasing across tids.
		for tid := 1; tid < len(p.SID); tid++ {
			if p.SID[tid] < p.SID[tid-1] {
				t.Fatalf("RSS without RTS: sid order broken at tid %d: %v", tid, p.SID)
			}
		}
		for _, sz := range p.Sizes {
			if sz != 8 {
				sawUnequal = true
			}
		}
	}
	if !sawUnequal {
		t.Error("RSS(4) never produced unequal sizes in 50 draws")
	}
}

func TestRTSPlanShufflesThreads(t *testing.T) {
	r := rng.New(4)
	shuffled := false
	for trial := 0; trial < 20; trial++ {
		p := FSSRTS(4).NewPlan(r)
		for tid := 1; tid < len(p.SID); tid++ {
			if p.SID[tid] < p.SID[tid-1] {
				shuffled = true
			}
		}
	}
	if !shuffled {
		t.Error("FSS+RTS never shuffled thread order in 20 draws")
	}
}

func TestPlanDiffersAcrossLaunches(t *testing.T) {
	// RSS/RTS must re-randomize per launch — the property the
	// corresponding attacks cannot bypass.
	r := rng.New(5)
	for _, cfg := range []Config{RSS(4), FSSRTS(4), RSSRTS(4)} {
		distinct := map[string]bool{}
		for trial := 0; trial < 30; trial++ {
			p := cfg.NewPlan(r)
			key := planKey(p)
			distinct[key] = true
		}
		if len(distinct) < 2 {
			t.Errorf("%s: plans identical across launches", cfg.Name())
		}
	}
}

func planKey(p Plan) string {
	var b strings.Builder
	for _, s := range p.SID {
		b.WriteByte(byte('a' + s))
	}
	return b.String()
}

func TestCheckCatchesCorruption(t *testing.T) {
	good := FSS(4).NewPlan(rng.New(6))
	bad1 := Plan{Sizes: []int{0, 32}, SID: good.SID}
	if bad1.Check() == nil {
		t.Error("empty subwarp not caught")
	}
	bad2 := Plan{Sizes: []int{16, 8}, SID: good.SID}
	if bad2.Check() == nil {
		t.Error("size sum mismatch not caught")
	}
	sid := make([]uint8, 32)
	sid[0] = 9
	bad3 := Plan{Sizes: []int{16, 16}, SID: sid}
	if bad3.Check() == nil {
		t.Error("out-of-range sid not caught")
	}
	sid2 := make([]uint8, 32)
	for i := range sid2 {
		sid2[i] = uint8(i % 2)
	}
	bad4 := Plan{Sizes: []int{20, 12}, SID: sid2}
	if bad4.Check() == nil {
		t.Error("membership/size mismatch not caught")
	}
}

func TestNewPlanPanicsOnInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewPlan with invalid config did not panic")
		}
	}()
	Config{NumSubwarps: 0}.NewPlan(rng.New(1))
}

// --- Paper worked examples -------------------------------------------------

// figure2Plan builds the 4-thread example warp of Figure 2: accesses
// [A, B, B, C] (threads 1 and 2 share a block).
var figure2Blocks = []uint64{100, 200, 200, 300}

func TestFigure2Case1WholeWarp(t *testing.T) {
	// Case 1: num-subwarp = 1 -> 3 coalesced accesses.
	p := Plan{Sizes: []int{4}, SID: []uint8{0, 0, 0, 0}}
	if got := p.CountCoalesced(figure2Blocks, nil); got != 3 {
		t.Errorf("Figure 2 case 1: %d accesses, want 3", got)
	}
}

func TestFigure2Case2TwoSubwarps(t *testing.T) {
	// Case 2: num-subwarp = 2, in-order halves -> threads {0,1} and
	// {2,3}: blocks {A,B} and {B,C} -> 4 accesses.
	p := Plan{Sizes: []int{2, 2}, SID: []uint8{0, 0, 1, 1}}
	if got := p.CountCoalesced(figure2Blocks, nil); got != 4 {
		t.Errorf("Figure 2 case 2: %d accesses, want 4", got)
	}
}

func TestFigure10aFSSRTS(t *testing.T) {
	// Figure 10a: FSS+RTS, M = 2, subwarp 0 holds threads {0,2},
	// subwarp 1 holds {1,3} -> blocks {A,B} and {B,C} -> 4 accesses.
	p := Plan{Sizes: []int{2, 2}, SID: []uint8{0, 1, 0, 1}}
	if err := p.Check(); err != nil {
		t.Fatal(err)
	}
	if got := p.CountCoalesced(figure2Blocks, nil); got != 4 {
		t.Errorf("Figure 10a: %d accesses, want 4", got)
	}
}

func TestFigure10bRSSRTS(t *testing.T) {
	// Figure 10b: RSS+RTS, M = 2, sizes {3,1}; thread 0 moved to
	// subwarp 1 (alone) -> subwarp 0 = {1,2,3} with blocks {B,B,C}
	// (2 accesses), subwarp 1 = {0} with block {A} (1 access):
	// 3 accesses total.
	p := Plan{Sizes: []int{3, 1}, SID: []uint8{1, 0, 0, 0}}
	if err := p.Check(); err != nil {
		t.Fatal(err)
	}
	if got := p.CountCoalesced(figure2Blocks, nil); got != 3 {
		t.Errorf("Figure 10b: %d accesses, want 3", got)
	}
}

func TestPlanString(t *testing.T) {
	p := Plan{Sizes: []int{2, 2}, SID: []uint8{0, 1, 0, 1}}
	if got := p.String(); got != "sizes=[2 2] sid=[0 1 0 1]" {
		t.Errorf("Plan.String() = %q", got)
	}
}
