// Package core implements the primary contribution of the RCoal paper:
// subwarp-based randomized memory-access coalescing (Section IV).
//
// A warp's threads are grouped into subwarps; the memory coalescing
// unit (MCU) merges requests only within a subwarp. The paper's three
// mechanisms control how that grouping is formed:
//
//   - FSS (fixed-sized subwarps): num-subwarp equal-sized groups,
//     threads assigned in order;
//   - RSS (random-sized subwarps): per-kernel-launch random subwarp
//     sizes drawn uniformly from all compositions of the warp size
//     into num-subwarp non-empty parts (the "skewed" distribution), or
//     from a discretized normal for comparison (Figure 9);
//   - RTS (random-threaded subwarps): threads are assigned to subwarps
//     by a random permutation instead of in order. RTS composes with
//     both FSS and RSS.
//
// The package separates the *policy* (Config: which mechanism, how
// many subwarps) from the *plan* (Plan: one realized thread→subwarp
// mapping, drawn per kernel launch with hardware randomness). The
// same Plan type and the same coalescing counter serve both the
// simulated hardware and the attacker's estimation algorithms — the
// paper's "corresponding attacks" (Section IV-E) differ from the
// hardware only in *whose* random stream generated the plan.
package core

import (
	"fmt"

	"rcoal/internal/rng"
)

// DefaultWarpSize is the SIMT width of the simulated GPU (Table I).
const DefaultWarpSize = 32

// SizeDistribution selects how subwarp sizes are drawn.
type SizeDistribution uint8

const (
	// SizeFixed gives every subwarp WarpSize/NumSubwarps threads (FSS).
	SizeFixed SizeDistribution = iota
	// SizeSkewed draws sizes uniformly from all compositions of the
	// warp into non-empty subwarps — the RSS default (Section V-B3).
	SizeSkewed
	// SizeNormal draws sizes from a discretized normal centered on the
	// FSS size; evaluated only as the Figure 9 comparison point.
	SizeNormal
)

func (d SizeDistribution) String() string {
	switch d {
	case SizeFixed:
		return "fixed"
	case SizeSkewed:
		return "skewed"
	case SizeNormal:
		return "normal"
	}
	return "unknown"
}

// Config is a coalescing policy: the mechanism knobs of Section IV.
// The zero value is not valid; use the constructors.
type Config struct {
	// NumSubwarps is M, the number of subwarps per warp. 1 reproduces
	// the baseline (whole-warp) coalescing of the attacked GPU.
	NumSubwarps int
	// SizeDist selects FSS (fixed) or RSS (skewed/normal) sizing.
	SizeDist SizeDistribution
	// RandomThreads enables RTS: random thread→subwarp allocation.
	RandomThreads bool
	// NormalSigma is the standard deviation for SizeNormal.
	NormalSigma float64
	// WarpSize is the number of threads per warp; 0 means
	// DefaultWarpSize.
	WarpSize int
}

// Baseline returns the undefended configuration: one subwarp holding
// the whole warp, in-order threads.
func Baseline() Config { return Config{NumSubwarps: 1, SizeDist: SizeFixed} }

// FSS returns the fixed-sized-subwarp mechanism with m subwarps.
func FSS(m int) Config { return Config{NumSubwarps: m, SizeDist: SizeFixed} }

// FSSRTS returns FSS+RTS: fixed sizes, random thread allocation.
func FSSRTS(m int) Config {
	return Config{NumSubwarps: m, SizeDist: SizeFixed, RandomThreads: true}
}

// RSS returns the random-sized-subwarp mechanism (skewed sizing) with
// m subwarps.
func RSS(m int) Config { return Config{NumSubwarps: m, SizeDist: SizeSkewed} }

// RSSRTS returns RSS+RTS: random sizes and random thread allocation.
func RSSRTS(m int) Config {
	return Config{NumSubwarps: m, SizeDist: SizeSkewed, RandomThreads: true}
}

// RSSNormal returns the normal-sized RSS variant of Figure 9.
func RSSNormal(m int, sigma float64) Config {
	return Config{NumSubwarps: m, SizeDist: SizeNormal, NormalSigma: sigma}
}

// Name returns the paper's name for the mechanism, e.g. "FSS+RTS(8)".
func (c Config) Name() string {
	base := "FSS"
	switch c.SizeDist {
	case SizeSkewed:
		base = "RSS"
	case SizeNormal:
		base = "RSS(normal)"
	}
	if c.NumSubwarps == 1 && c.SizeDist == SizeFixed && !c.RandomThreads {
		return "Baseline"
	}
	if c.RandomThreads {
		base += "+RTS"
	}
	return fmt.Sprintf("%s(%d)", base, c.NumSubwarps)
}

func (c Config) warpSize() int {
	if c.WarpSize == 0 {
		return DefaultWarpSize
	}
	return c.WarpSize
}

// Validate checks the configuration against the hardware constraints:
// M must divide nothing in particular, but it must be in [1, warp
// size] (no subwarp may be empty), and FSS additionally requires M to
// divide the warp size so all subwarps are equal.
func (c Config) Validate() error {
	w := c.warpSize()
	if w <= 0 {
		return fmt.Errorf("core: warp size %d must be positive", w)
	}
	if c.NumSubwarps < 1 || c.NumSubwarps > w {
		return fmt.Errorf("core: num-subwarp %d outside [1, %d]", c.NumSubwarps, w)
	}
	if c.SizeDist == SizeFixed && w%c.NumSubwarps != 0 {
		return fmt.Errorf("core: FSS num-subwarp %d must divide warp size %d", c.NumSubwarps, w)
	}
	if c.SizeDist == SizeNormal && c.NormalSigma < 0 {
		return fmt.Errorf("core: negative NormalSigma %v", c.NormalSigma)
	}
	return nil
}

// NewPlan draws one realized subwarp plan from the policy using the
// supplied random source (the hardware RNG of Figure 11, or the
// attacker's own stream in a corresponding attack). It panics on an
// invalid configuration; untrusted input must go through Plan (or the
// mechanism registry, which validates end-to-end) instead.
func (c Config) NewPlan(r *rng.Source) Plan {
	p, err := c.Plan(r)
	if err != nil {
		panic(err)
	}
	return p
}

// Plan is the non-panicking form of NewPlan: it validates the policy
// and reports an error instead of panicking, so callers reached from
// untrusted input (CLI mechanism specs, config files) degrade to a
// clean usage error.
func (c Config) Plan(r *rng.Source) (Plan, error) {
	if err := c.Validate(); err != nil {
		return Plan{}, err
	}
	w := c.warpSize()
	m := c.NumSubwarps

	var sizes []int
	switch c.SizeDist {
	case SizeFixed:
		sizes = make([]int, m)
		for i := range sizes {
			sizes[i] = w / m
		}
	case SizeSkewed:
		sizes = r.Composition(w, m)
	case SizeNormal:
		sigma := c.NormalSigma
		if sigma == 0 {
			sigma = float64(w) / float64(4*m) // gentle default spread
		}
		sizes = r.NormalComposition(w, m, sigma)
	}

	sid := make([]uint8, w)
	if c.RandomThreads {
		perm := r.Perm(w)
		pos := 0
		for s, sz := range sizes {
			for k := 0; k < sz; k++ {
				sid[perm[pos]] = uint8(s)
				pos++
			}
		}
	} else {
		pos := 0
		for s, sz := range sizes {
			for k := 0; k < sz; k++ {
				sid[pos] = uint8(s)
				pos++
			}
		}
	}
	return Plan{Sizes: sizes, SID: sid}, nil
}

// Plan is one realized thread→subwarp assignment for a warp: the
// contents of the subwarp-id (sid) fields the modified MCU stores in
// its pending request table (Figure 11). It is drawn once per kernel
// launch and fixed for the launch's duration (Section IV-D).
type Plan struct {
	// Sizes[s] is the capacity of subwarp s; the sizes sum to the warp
	// size.
	Sizes []int
	// SID[tid] is the subwarp id of thread tid.
	SID []uint8
}

// String renders the plan compactly for logs: sizes then the
// thread→sid map, e.g. "sizes=[2 2] sid=[0 1 0 1]".
func (p Plan) String() string {
	return fmt.Sprintf("sizes=%v sid=%v", p.Sizes, p.SID)
}

// NumSubwarps returns M for this plan.
func (p Plan) NumSubwarps() int { return len(p.Sizes) }

// WarpSize returns the number of threads covered by the plan.
func (p Plan) WarpSize() int { return len(p.SID) }

// Check verifies the structural invariants of the plan: non-empty
// subwarps, sizes summing to the warp size, and per-subwarp membership
// counts matching the declared sizes.
func (p Plan) Check() error {
	total := 0
	for s, sz := range p.Sizes {
		if sz <= 0 {
			return fmt.Errorf("core: subwarp %d empty (size %d)", s, sz)
		}
		total += sz
	}
	if total != len(p.SID) {
		return fmt.Errorf("core: sizes sum to %d, warp has %d threads", total, len(p.SID))
	}
	counts := make([]int, len(p.Sizes))
	for tid, s := range p.SID {
		if int(s) >= len(p.Sizes) {
			return fmt.Errorf("core: thread %d has sid %d, only %d subwarps", tid, s, len(p.Sizes))
		}
		counts[s]++
	}
	for s := range counts {
		if counts[s] != p.Sizes[s] {
			return fmt.Errorf("core: subwarp %d has %d members, declared size %d", s, counts[s], p.Sizes[s])
		}
	}
	return nil
}
