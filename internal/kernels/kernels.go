// Package kernels translates AES encryptions into the per-warp
// instruction traces the GPU simulator executes, mirroring the CUDA
// AES implementation the RCoal paper attacks (Section II-B): each
// thread encrypts one 16-byte line of the plaintext, lines map to
// threads sequentially, and every round performs 16 T-table lookups
// per thread that the coalescing unit merges warp-wide.
//
// The trace builder uses the real AES dataflow (internal/aes's
// TraceEncrypt) to compute the exact global-memory address of every
// table lookup, so the coalescing behaviour on the simulator is
// bit-exact with respect to the modeled GPU kernel.
package kernels

import (
	"fmt"

	"rcoal/internal/aes"
	"rcoal/internal/gpusim"
	"rcoal/internal/rng"
)

// Memory layout of the kernel's address space. Bases are chunk-aligned
// and far apart so table, plaintext, and ciphertext traffic never share
// memory blocks.
const (
	// TableBase is where the five T-tables (T0..T4, 1 KiB each) start.
	TableBase uint64 = 0x1000_0000
	// PlainBase is the plaintext buffer base.
	PlainBase uint64 = 0x2000_0000
	// CipherBase is the ciphertext buffer base.
	CipherBase uint64 = 0x3000_0000
	// LineBytes is one plaintext/ciphertext line (one AES block).
	LineBytes = aes.BlockSize
)

// TableAddr returns the global address of entry index of table t.
func TableAddr(t aes.TableID, index byte) uint64 {
	return TableBase + uint64(t)*uint64(aes.TableBytes) + uint64(index)*uint64(aes.EntryBytes)
}

// Line is one 16-byte plaintext or ciphertext block.
type Line = [LineBytes]byte

// RandomPlaintext draws n random lines — the attacker's chosen
// plaintext samples.
func RandomPlaintext(r *rng.Source, n int) []Line {
	lines := make([]Line, n)
	for i := range lines {
		for j := 0; j < LineBytes; j += 8 {
			v := r.Uint64()
			for b := 0; b < 8; b++ {
				lines[i][j+b] = byte(v >> (8 * b))
			}
		}
	}
	return lines
}

// Build constructs the kernel for encrypting the given plaintext lines
// under the cipher, along with the resulting ciphertext lines. Lines
// are assigned to threads sequentially (line L -> warp L/32, thread
// L%32), per the baseline implementation; a trailing partial warp runs
// with inactive threads.
func Build(c *aes.Cipher, lines []Line) (*gpusim.Kernel, []Line, error) {
	if len(lines) == 0 {
		return nil, nil, fmt.Errorf("kernels: no plaintext lines")
	}
	const warpSize = 32
	rounds := c.Rounds()
	cts := make([]Line, len(lines))

	numWarps := (len(lines) + warpSize - 1) / warpSize
	kernel := &gpusim.Kernel{Label: fmt.Sprintf("aes%d-%dlines", 128+(rounds-10)*32, len(lines))}

	for w := 0; w < numWarps; w++ {
		lo := w * warpSize
		hi := lo + warpSize
		if hi > len(lines) {
			hi = len(lines)
		}
		nActive := hi - lo

		// Per-thread lookup traces from the real AES dataflow.
		traces := make([]aes.Trace, nActive)
		for t := 0; t < nActive; t++ {
			ct, tr := c.TraceEncrypt(lines[lo+t][:])
			cts[lo+t] = ct
			traces[t] = tr
		}

		var active []bool
		if nActive < warpSize {
			active = make([]bool, warpSize)
			for t := 0; t < nActive; t++ {
				active[t] = true
			}
		}

		wp := &gpusim.WarpProgram{ID: w}

		// Plaintext loads: each thread reads its 16-byte line as four
		// 4-byte words.
		for word := 0; word < 4; word++ {
			addrs := make([]uint64, warpSize)
			for t := 0; t < warpSize; t++ {
				line := lo + t
				if line >= len(lines) {
					line = lo // padded threads carry a dummy address
				}
				addrs[t] = PlainBase + uint64(line)*LineBytes + uint64(word)*4
			}
			wp.Instrs = append(wp.Instrs, gpusim.Instr{Kind: gpusim.Load, Addrs: addrs, Active: active})
		}
		// Initial AddRoundKey.
		wp.Instrs = append(wp.Instrs, gpusim.Instr{Kind: gpusim.ALU})

		// Rounds 1..rounds: 16 table lookups each. Lookup slot j is
		// issued warp-wide: all threads access their own index of the
		// same table in lock step (Figure 3).
		for r := 1; r <= rounds; r++ {
			wp.Instrs = append(wp.Instrs, gpusim.Instr{Kind: gpusim.RoundMark, Round: r})
			for j := 0; j < 16; j++ {
				addrs := make([]uint64, warpSize)
				for t := 0; t < warpSize; t++ {
					if t < nActive {
						lk := traces[t][r-1][j]
						addrs[t] = TableAddr(lk.Table, lk.Index)
					} else {
						addrs[t] = TableAddr(aes.T0, 0)
					}
				}
				wp.Instrs = append(wp.Instrs, gpusim.Instr{
					Kind: gpusim.Load, Addrs: addrs, Active: active, Round: r,
				})
				// XOR-accumulate after each word's four lookups.
				if j%4 == 3 {
					wp.Instrs = append(wp.Instrs, gpusim.Instr{Kind: gpusim.ALU, Round: r})
				}
			}
		}
		wp.Instrs = append(wp.Instrs, gpusim.Instr{Kind: gpusim.RoundMark, Round: 0})

		// Ciphertext stores.
		for word := 0; word < 4; word++ {
			addrs := make([]uint64, warpSize)
			for t := 0; t < warpSize; t++ {
				line := lo + t
				if line >= len(lines) {
					line = lo
				}
				addrs[t] = CipherBase + uint64(line)*LineBytes + uint64(word)*4
			}
			wp.Instrs = append(wp.Instrs, gpusim.Instr{Kind: gpusim.Store, Addrs: addrs, Active: active})
		}

		kernel.Warps = append(kernel.Warps, wp)
	}
	return kernel, cts, nil
}
