package kernels

import (
	"fmt"

	"rcoal/internal/aes"
	"rcoal/internal/gpusim"
)

// BuildDecrypt constructs the kernel for *decrypting* the given
// ciphertext lines: the mirror of Build using the equivalent inverse
// cipher's Td-table dataflow (one line per thread, 16 lookups per
// inverse round). The decryption tables occupy the same address
// layout as the encryption tables (a decryption kernel binds Td0..Td4
// at TableBase), so the coalescing geometry — 16 entries per 64-byte
// block, R = 16 blocks per table — is identical.
//
// It returns the recovered plaintext lines alongside the kernel.
func BuildDecrypt(c *aes.Cipher, lines []Line) (*gpusim.Kernel, []Line, error) {
	if len(lines) == 0 {
		return nil, nil, fmt.Errorf("kernels: no ciphertext lines")
	}
	const warpSize = 32
	rounds := c.Rounds()
	pts := make([]Line, len(lines))

	numWarps := (len(lines) + warpSize - 1) / warpSize
	kernel := &gpusim.Kernel{Label: fmt.Sprintf("aes%d-dec-%dlines", 128+(rounds-10)*32, len(lines))}

	for w := 0; w < numWarps; w++ {
		lo := w * warpSize
		hi := lo + warpSize
		if hi > len(lines) {
			hi = len(lines)
		}
		nActive := hi - lo

		traces := make([]aes.Trace, nActive)
		for t := 0; t < nActive; t++ {
			pt, tr := c.TraceDecrypt(lines[lo+t][:])
			pts[lo+t] = pt
			traces[t] = tr
		}

		var active []bool
		if nActive < warpSize {
			active = make([]bool, warpSize)
			for t := 0; t < nActive; t++ {
				active[t] = true
			}
		}

		wp := &gpusim.WarpProgram{ID: w}

		// Ciphertext loads.
		for word := 0; word < 4; word++ {
			addrs := make([]uint64, warpSize)
			for t := 0; t < warpSize; t++ {
				line := lo + t
				if line >= len(lines) {
					line = lo
				}
				addrs[t] = CipherBase + uint64(line)*LineBytes + uint64(word)*4
			}
			wp.Instrs = append(wp.Instrs, gpusim.Instr{Kind: gpusim.Load, Addrs: addrs, Active: active})
		}
		wp.Instrs = append(wp.Instrs, gpusim.Instr{Kind: gpusim.ALU})

		for r := 1; r <= rounds; r++ {
			wp.Instrs = append(wp.Instrs, gpusim.Instr{Kind: gpusim.RoundMark, Round: r})
			for j := 0; j < 16; j++ {
				addrs := make([]uint64, warpSize)
				for t := 0; t < warpSize; t++ {
					if t < nActive {
						lk := traces[t][r-1][j]
						addrs[t] = TableAddr(lk.Table, lk.Index)
					} else {
						addrs[t] = TableAddr(aes.T0, 0)
					}
				}
				wp.Instrs = append(wp.Instrs, gpusim.Instr{
					Kind: gpusim.Load, Addrs: addrs, Active: active, Round: r,
				})
				if j%4 == 3 {
					wp.Instrs = append(wp.Instrs, gpusim.Instr{Kind: gpusim.ALU, Round: r})
				}
			}
		}
		wp.Instrs = append(wp.Instrs, gpusim.Instr{Kind: gpusim.RoundMark, Round: 0})

		// Plaintext stores.
		for word := 0; word < 4; word++ {
			addrs := make([]uint64, warpSize)
			for t := 0; t < warpSize; t++ {
				line := lo + t
				if line >= len(lines) {
					line = lo
				}
				addrs[t] = PlainBase + uint64(line)*LineBytes + uint64(word)*4
			}
			wp.Instrs = append(wp.Instrs, gpusim.Instr{Kind: gpusim.Store, Addrs: addrs, Active: active})
		}

		kernel.Warps = append(kernel.Warps, wp)
	}
	return kernel, pts, nil
}
