package kernels

import (
	"fmt"

	"rcoal/internal/gpusim"
	"rcoal/internal/rng"
)

// Synthetic memory workloads characterize how the RCoal mechanisms
// cost different access patterns. The AES kernel only exercises the
// "uniform random over a small table" pattern; real GPU workloads span
// everything from perfectly sequential (where subwarping hurts most —
// a whole warp's accesses fit one or two blocks) to fully divergent
// (where subwarping costs nothing — every thread already needs its own
// transaction). The Pattern kernels let the experiments map that
// spectrum.

// Pattern selects a synthetic per-thread address pattern.
type Pattern uint8

const (
	// Sequential: thread t accesses base + 4t — one element per
	// thread, perfectly coalescable (2 blocks per warp instruction).
	Sequential Pattern = iota
	// Strided: thread t accesses base + stride·t with a 64-byte
	// stride — every thread in its own block, worst case regardless of
	// coalescing.
	Strided
	// UniformRandom: thread t accesses a random element of a 16-block
	// table — the AES-like pattern.
	UniformRandom
	// Hotspot: most threads hit one block, a few stragglers wander —
	// high coalescing opportunity with occasional extra transactions.
	Hotspot
)

func (p Pattern) String() string {
	switch p {
	case Sequential:
		return "sequential"
	case Strided:
		return "strided"
	case UniformRandom:
		return "uniform-random"
	case Hotspot:
		return "hotspot"
	}
	return "unknown"
}

// AllPatterns lists the synthetic patterns.
var AllPatterns = []Pattern{Sequential, Strided, UniformRandom, Hotspot}

// SyntheticBase is the buffer base address for synthetic kernels.
const SyntheticBase uint64 = 0x4000_0000

// BuildSynthetic constructs a one-warp-per-32-"lines" kernel issuing
// `loads` warp-wide global loads per warp with the given pattern,
// tagged as round 1 so the round-window statistics apply.
func BuildSynthetic(p Pattern, warps, loads int, seed uint64) (*gpusim.Kernel, error) {
	if warps < 1 || loads < 1 {
		return nil, fmt.Errorf("kernels: synthetic needs positive warps (%d) and loads (%d)", warps, loads)
	}
	const warpSize = 32
	src := rng.New(seed).Split(uint64(p) + 1)
	k := &gpusim.Kernel{Label: fmt.Sprintf("synthetic-%s-%dw", p, warps)}
	for w := 0; w < warps; w++ {
		wp := &gpusim.WarpProgram{ID: w}
		wp.Instrs = append(wp.Instrs, gpusim.Instr{Kind: gpusim.RoundMark, Round: 1})
		warpBase := SyntheticBase + uint64(w)*1<<20 // private region per warp
		for l := 0; l < loads; l++ {
			addrs := make([]uint64, warpSize)
			for t := 0; t < warpSize; t++ {
				switch p {
				case Sequential:
					addrs[t] = warpBase + uint64(l)*128 + uint64(t)*4
				case Strided:
					addrs[t] = warpBase + uint64(l)*4096 + uint64(t)*64
				case UniformRandom:
					addrs[t] = warpBase + uint64(src.Intn(256))*4
				case Hotspot:
					if src.Intn(8) == 0 {
						addrs[t] = warpBase + uint64(src.Intn(16))*64
					} else {
						addrs[t] = warpBase // the hot block
					}
				}
			}
			wp.Instrs = append(wp.Instrs, gpusim.Instr{Kind: gpusim.Load, Addrs: addrs, Round: 1})
			wp.Instrs = append(wp.Instrs, gpusim.Instr{Kind: gpusim.ALU, Round: 1})
		}
		wp.Instrs = append(wp.Instrs, gpusim.Instr{Kind: gpusim.RoundMark, Round: 0})
		k.Warps = append(k.Warps, wp)
	}
	return k, nil
}
