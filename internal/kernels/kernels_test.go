package kernels

import (
	"testing"

	"rcoal/internal/aes"
	"rcoal/internal/gpusim"
	"rcoal/internal/rng"
)

func testCipher(t *testing.T) *aes.Cipher {
	t.Helper()
	c, err := aes.NewCipher([]byte("0123456789abcdef"))
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestTableAddrLayout(t *testing.T) {
	if TableAddr(aes.T0, 0) != TableBase {
		t.Error("T0 not at base")
	}
	if TableAddr(aes.T1, 0)-TableAddr(aes.T0, 0) != 1024 {
		t.Error("tables not 1KiB apart")
	}
	if TableAddr(aes.T4, 255) != TableBase+4*1024+255*4 {
		t.Error("T4 last entry misplaced")
	}
	// 16 consecutive entries share one 64-byte block (R = 16).
	if TableAddr(aes.T4, 0)/64 != TableAddr(aes.T4, 15)/64 {
		t.Error("entries 0 and 15 in different blocks")
	}
	if TableAddr(aes.T4, 15)/64 == TableAddr(aes.T4, 16)/64 {
		t.Error("entries 15 and 16 share a block")
	}
	// Each table spans exactly 16 blocks.
	blocks := map[uint64]bool{}
	for i := 0; i < 256; i++ {
		blocks[TableAddr(aes.T4, byte(i))/64] = true
	}
	if len(blocks) != 16 {
		t.Errorf("T4 spans %d blocks, want 16", len(blocks))
	}
}

func TestRandomPlaintext(t *testing.T) {
	r := rng.New(1)
	lines := RandomPlaintext(r, 32)
	if len(lines) != 32 {
		t.Fatalf("got %d lines", len(lines))
	}
	same := 0
	for i := 1; i < len(lines); i++ {
		if lines[i] == lines[i-1] {
			same++
		}
	}
	if same > 0 {
		t.Errorf("%d duplicate adjacent lines", same)
	}
}

func TestBuildCiphertextsMatchAES(t *testing.T) {
	c := testCipher(t)
	lines := RandomPlaintext(rng.New(2), 48) // spans 2 warps, one partial
	_, cts, err := Build(c, lines)
	if err != nil {
		t.Fatal(err)
	}
	for i, pt := range lines {
		want := make([]byte, 16)
		c.Encrypt(want, pt[:])
		for b := 0; b < 16; b++ {
			if cts[i][b] != want[b] {
				t.Fatalf("line %d ciphertext mismatch", i)
			}
		}
	}
}

func TestBuildStructure(t *testing.T) {
	c := testCipher(t)
	lines := RandomPlaintext(rng.New(3), 64)
	k, _, err := Build(c, lines)
	if err != nil {
		t.Fatal(err)
	}
	if len(k.Warps) != 2 {
		t.Fatalf("%d warps, want 2", len(k.Warps))
	}
	if err := k.Validate(32); err != nil {
		t.Fatal(err)
	}
	// Per warp: 4 pt loads + 10*16 lookups + 4 ct stores = 168 memory
	// instructions; kernel-wide 336.
	if got := k.MemInstrs(); got != 336 {
		t.Errorf("MemInstrs = %d, want 336", got)
	}
	// Last-round lookups target T4's address range.
	w := k.Warps[0]
	t4lo, t4hi := TableAddr(aes.T4, 0), TableAddr(aes.T4, 255)
	seenLastRound := 0
	for _, ins := range w.Instrs {
		if ins.Kind == gpusim.Load && ins.Round == 10 {
			seenLastRound++
			for _, a := range ins.Addrs {
				if a < t4lo || a > t4hi+3 {
					t.Fatalf("last-round lookup at %#x outside T4", a)
				}
			}
		}
	}
	if seenLastRound != 16 {
		t.Errorf("%d last-round lookups, want 16", seenLastRound)
	}
}

func TestBuildPartialWarpMasksPadding(t *testing.T) {
	c := testCipher(t)
	lines := RandomPlaintext(rng.New(4), 40) // 32 + 8
	k, _, err := Build(c, lines)
	if err != nil {
		t.Fatal(err)
	}
	if len(k.Warps) != 2 {
		t.Fatalf("%d warps, want 2", len(k.Warps))
	}
	for _, ins := range k.Warps[1].Instrs {
		if ins.Kind != gpusim.Load && ins.Kind != gpusim.Store {
			continue
		}
		if ins.Active == nil {
			t.Fatal("partial warp without active mask")
		}
		for t8 := 0; t8 < 8; t8++ {
			if !ins.Active[t8] {
				t.Fatal("active thread masked off")
			}
		}
		for t8 := 8; t8 < 32; t8++ {
			if ins.Active[t8] {
				t.Fatal("padded thread active")
			}
		}
	}
}

func TestBuildEmptyErrors(t *testing.T) {
	if _, _, err := Build(testCipher(t), nil); err == nil {
		t.Fatal("empty plaintext accepted")
	}
}

func TestBuildRunsOnSimulator(t *testing.T) {
	c := testCipher(t)
	lines := RandomPlaintext(rng.New(5), 32)
	k, _, err := Build(c, lines)
	if err != nil {
		t.Fatal(err)
	}
	g, err := gpusim.New(gpusim.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	res, err := g.Run(k, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles <= 0 || res.TotalTx == 0 {
		t.Fatalf("degenerate run: %d cycles, %d txs", res.Cycles, res.TotalTx)
	}
	// All ten rounds saw traffic; round windows are ordered.
	for r := 1; r <= 10; r++ {
		if res.RoundTx[r] == 0 {
			t.Errorf("round %d has no transactions", r)
		}
		if res.RoundWindow(r) <= 0 {
			t.Errorf("round %d window empty", r)
		}
	}
	// With num-subwarp = 1, each lookup coalesces to at most 16 blocks:
	// per-round tx <= 16 instr x 16 blocks.
	if res.RoundTx[10] > 256 {
		t.Errorf("last round tx %d exceeds 16x16", res.RoundTx[10])
	}
}

func TestBuildSyntheticValidation(t *testing.T) {
	if _, err := BuildSynthetic(Sequential, 0, 4, 1); err == nil {
		t.Error("0 warps accepted")
	}
	if _, err := BuildSynthetic(Sequential, 1, 0, 1); err == nil {
		t.Error("0 loads accepted")
	}
}

func TestBuildSyntheticPatterns(t *testing.T) {
	for _, p := range AllPatterns {
		k, err := BuildSynthetic(p, 2, 8, 7)
		if err != nil {
			t.Fatalf("%v: %v", p, err)
		}
		if err := k.Validate(32); err != nil {
			t.Fatalf("%v: %v", p, err)
		}
		if len(k.Warps) != 2 || k.MemInstrs() != 16 {
			t.Errorf("%v: %d warps, %d mem instrs", p, len(k.Warps), k.MemInstrs())
		}
	}
}

func TestSyntheticPatternGeometry(t *testing.T) {
	// Block-level structure per pattern, for one warp instruction.
	blockSpread := func(p Pattern) int {
		k, err := BuildSynthetic(p, 1, 1, 3)
		if err != nil {
			t.Fatal(err)
		}
		for _, ins := range k.Warps[0].Instrs {
			if ins.Kind != gpusim.Load {
				continue
			}
			blocks := map[uint64]bool{}
			for _, a := range ins.Addrs {
				blocks[a/64] = true
			}
			return len(blocks)
		}
		t.Fatal("no load found")
		return 0
	}
	if got := blockSpread(Sequential); got != 2 {
		t.Errorf("sequential spreads %d blocks, want 2", got)
	}
	if got := blockSpread(Strided); got != 32 {
		t.Errorf("strided spreads %d blocks, want 32", got)
	}
	if got := blockSpread(UniformRandom); got < 8 || got > 16 {
		t.Errorf("uniform-random spreads %d blocks, want 8..16", got)
	}
	if got := blockSpread(Hotspot); got < 1 || got > 8 {
		t.Errorf("hotspot spreads %d blocks, want small", got)
	}
}

func TestPatternString(t *testing.T) {
	if Sequential.String() != "sequential" || Pattern(99).String() != "unknown" {
		t.Error("pattern names wrong")
	}
}

func TestBuildSharedMemStructure(t *testing.T) {
	c := testCipher(t)
	lines := RandomPlaintext(rng.New(91), 32)
	k, cts, err := BuildSharedMem(c, lines)
	if err != nil {
		t.Fatal(err)
	}
	if err := k.Validate(32); err != nil {
		t.Fatal(err)
	}
	// Ciphertexts still correct.
	for i, pt := range lines {
		want := make([]byte, 16)
		c.Encrypt(want, pt[:])
		for b := 0; b < 16; b++ {
			if cts[i][b] != want[b] {
				t.Fatalf("line %d ciphertext mismatch", i)
			}
		}
	}
	// Rounds use SharedLoad only; global traffic is staging + IO.
	shared, globalInRounds := 0, 0
	for _, ins := range k.Warps[0].Instrs {
		if ins.Kind == gpusim.SharedLoad {
			shared++
			if ins.Round < 1 || ins.Round > 10 {
				t.Fatal("shared load outside rounds")
			}
		}
		if (ins.Kind == gpusim.Load || ins.Kind == gpusim.Store) && ins.Round != 0 {
			globalInRounds++
		}
	}
	if shared != 160 {
		t.Errorf("%d shared loads, want 160", shared)
	}
	if globalInRounds != 0 {
		t.Errorf("%d global accesses inside rounds, want 0", globalInRounds)
	}
	if _, _, err := BuildSharedMem(c, nil); err == nil {
		t.Error("empty plaintext accepted")
	}
}

func TestBuildSharedMemRunsOnSimulator(t *testing.T) {
	c := testCipher(t)
	k, _, err := BuildSharedMem(c, RandomPlaintext(rng.New(93), 32))
	if err != nil {
		t.Fatal(err)
	}
	g, err := gpusim.New(gpusim.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	res, err := g.Run(k, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.LastRoundTx(10) != 0 {
		t.Errorf("last round issued %d global transactions, want 0", res.LastRoundTx(10))
	}
	if res.SharedPasses[10] == 0 {
		t.Error("no bank-conflict passes recorded in the last round")
	}
	if res.RoundWindow(10) <= 0 {
		t.Error("last-round window empty")
	}
}
