package kernels

import (
	"bytes"
	"reflect"
	"sync"
	"testing"

	"rcoal/internal/aes"
	"rcoal/internal/rng"
)

func cacheCipher(t testing.TB, key []byte) *aes.Cipher {
	t.Helper()
	c, err := aes.NewCipher(key)
	if err != nil {
		t.Fatalf("NewCipher: %v", err)
	}
	return c
}

func seqKey(n int, salt byte) []byte {
	k := make([]byte, n)
	for i := range k {
		k[i] = byte(i) ^ salt
	}
	return k
}

// TestTraceCacheHitMatchesDirectBuild pins the cache's core contract:
// a cached Build returns the same kernel and outputs as a direct
// Build, and repeat calls hit (sharing one kernel pointer).
func TestTraceCacheHitMatchesDirectBuild(t *testing.T) {
	c := cacheCipher(t, seqKey(16, 0))
	lines := RandomPlaintext(rng.New(7), 40)

	wantK, wantCT, err := Build(c, lines)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}

	tc := NewTraceCache()
	k1, ct1, err := tc.Build(c, lines)
	if err != nil {
		t.Fatalf("cached Build: %v", err)
	}
	if !reflect.DeepEqual(k1, wantK) {
		t.Fatalf("cached kernel differs from direct build")
	}
	if !reflect.DeepEqual(ct1, wantCT) {
		t.Fatalf("cached ciphertext differs from direct build")
	}

	k2, ct2, err := tc.Build(c, lines)
	if err != nil {
		t.Fatalf("cached Build (hit): %v", err)
	}
	if k2 != k1 {
		t.Fatalf("cache hit returned a different kernel pointer")
	}
	if !reflect.DeepEqual(ct2, wantCT) {
		t.Fatalf("cache hit ciphertext differs")
	}
	if st := tc.Stats(); st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("stats = %+v, want 1 hit / 1 miss", st)
	}

	// The returned output slices are caller-owned copies: mutating one
	// must not poison later hits.
	ct1[0][0] ^= 0xFF
	k3, ct3, err := tc.Build(c, lines)
	if err != nil {
		t.Fatalf("cached Build (hit 2): %v", err)
	}
	if k3 != k1 || !reflect.DeepEqual(ct3, wantCT) {
		t.Fatalf("cache entry was poisoned by caller mutation")
	}
}

// TestTraceCacheDistinguishesInputs verifies that every component of
// the cache key — key, plaintext, line count, direction — separates
// entries.
func TestTraceCacheDistinguishesInputs(t *testing.T) {
	cA := cacheCipher(t, seqKey(16, 0))
	cB := cacheCipher(t, seqKey(16, 1))
	cLong := cacheCipher(t, seqKey(32, 0))
	lines := RandomPlaintext(rng.New(7), 3)
	lines2 := RandomPlaintext(rng.New(8), 3)

	keys := map[[32]byte]string{}
	add := func(name string, k [32]byte) {
		if prev, ok := keys[k]; ok {
			t.Fatalf("cache key collision: %s vs %s", prev, name)
		}
		keys[k] = name
	}
	add("enc/keyA/3", TraceKey(traceDirEncrypt, cA, lines))
	add("enc/keyB/3", TraceKey(traceDirEncrypt, cB, lines))
	add("enc/keyLong/3", TraceKey(traceDirEncrypt, cLong, lines))
	add("enc/keyA/3'", TraceKey(traceDirEncrypt, cA, lines2))
	add("enc/keyA/2", TraceKey(traceDirEncrypt, cA, lines[:2]))
	add("dec/keyA/3", TraceKey(traceDirDecrypt, cA, lines))

	// Determinism: same inputs, same key.
	if TraceKey(traceDirEncrypt, cA, lines) != TraceKey(traceDirEncrypt, cA, lines) {
		t.Fatalf("TraceKey is not deterministic")
	}
}

// TestTraceCacheDecrypt checks the decrypt direction round-trips
// through the cache.
func TestTraceCacheDecrypt(t *testing.T) {
	c := cacheCipher(t, seqKey(16, 3))
	pts := RandomPlaintext(rng.New(9), 5)
	_, cts, err := Build(c, pts)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	tc := NewTraceCache()
	_, back, err := tc.BuildDecrypt(c, cts)
	if err != nil {
		t.Fatalf("cached BuildDecrypt: %v", err)
	}
	if !reflect.DeepEqual(back, pts) {
		t.Fatalf("cached decrypt did not recover the plaintext")
	}
	if _, _, err := tc.BuildDecrypt(c, cts); err != nil {
		t.Fatalf("cached BuildDecrypt (hit): %v", err)
	}
	if st := tc.Stats(); st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("stats = %+v, want 1 hit / 1 miss", st)
	}
}

// TestTraceCacheConcurrent hammers one cache from many goroutines over
// a small universe of inputs; run with -race this doubles as the
// data-race check for the shared-kernel contract.
func TestTraceCacheConcurrent(t *testing.T) {
	c := cacheCipher(t, seqKey(16, 5))
	universe := make([][]Line, 4)
	for i := range universe {
		universe[i] = RandomPlaintext(rng.New(uint64(100+i)), 8)
	}
	want := make([][]Line, len(universe))
	for i, lines := range universe {
		_, ct, err := Build(c, lines)
		if err != nil {
			t.Fatalf("Build: %v", err)
		}
		want[i] = ct
	}

	tc := NewTraceCache()
	var wg sync.WaitGroup
	errs := make(chan string, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for iter := 0; iter < 20; iter++ {
				i := (g + iter) % len(universe)
				_, ct, err := tc.Build(c, universe[i])
				if err != nil {
					errs <- err.Error()
					return
				}
				if !reflect.DeepEqual(ct, want[i]) {
					errs <- "concurrent cached build returned wrong ciphertext"
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
	if n := tc.Len(); n != len(universe) {
		t.Fatalf("cache holds %d entries, want %d", n, len(universe))
	}
}

// TestTraceCacheKeyAllocs proves the internal key computation is
// allocation-free once the scratch buffer is warm, so cache hits cost
// one allocation total (the caller-owned output copy).
func TestTraceCacheKeyAllocs(t *testing.T) {
	c := cacheCipher(t, seqKey(16, 2))
	lines := RandomPlaintext(rng.New(11), 32)
	tc := NewTraceCache()
	if _, _, err := tc.Build(c, lines); err != nil {
		t.Fatalf("warmup Build: %v", err)
	}
	allocs := testing.AllocsPerRun(50, func() {
		tc.mu.Lock()
		tc.key(traceDirEncrypt, c, lines)
		tc.mu.Unlock()
	})
	if allocs != 0 {
		t.Fatalf("key computation allocates %v per run, want 0", allocs)
	}
}

// FuzzTraceCacheKey mutates key material, plaintext bytes, and shape
// (line count, direction) and asserts the cache-key encoding is
// injective: distinct (direction, key, lines) tuples never share a
// key, and identical tuples always do. A violation means a cache hit
// could hand a cell the wrong trace — a wrong-science bug.
func FuzzTraceCacheKey(f *testing.F) {
	f.Add([]byte{1}, []byte{2}, []byte{3}, []byte{4}, false, false)
	f.Add([]byte{}, []byte{}, []byte{}, []byte{}, true, false)
	f.Add(seqKey(16, 0), seqKey(16, 0), []byte("pt"), []byte("pt"), true, true)
	f.Add(seqKey(32, 7), seqKey(24, 7), bytes.Repeat([]byte{0xAB}, 40), []byte{}, false, true)

	normKey := func(raw []byte) []byte {
		sizes := [...]int{16, 24, 32}
		k := make([]byte, sizes[len(raw)%3])
		copy(k, raw)
		return k
	}
	normLines := func(raw []byte) []Line {
		n := len(raw)/LineBytes + 1
		if n > 40 {
			n = 40
		}
		lines := make([]Line, n)
		for i, b := range raw {
			lines[(i/LineBytes)%n][i%LineBytes] ^= b
		}
		return lines
	}
	dirOf := func(enc bool) byte {
		if enc {
			return traceDirEncrypt
		}
		return traceDirDecrypt
	}

	f.Fuzz(func(t *testing.T, rawKeyA, rawKeyB, rawPtA, rawPtB []byte, encA, encB bool) {
		keyA, keyB := normKey(rawKeyA), normKey(rawKeyB)
		linesA, linesB := normLines(rawPtA), normLines(rawPtB)
		cA, err := aes.NewCipher(keyA)
		if err != nil {
			t.Fatalf("NewCipher(A): %v", err)
		}
		cB, err := aes.NewCipher(keyB)
		if err != nil {
			t.Fatalf("NewCipher(B): %v", err)
		}
		hA := TraceKey(dirOf(encA), cA, linesA)
		hB := TraceKey(dirOf(encB), cB, linesB)

		same := encA == encB && bytes.Equal(keyA, keyB) && reflect.DeepEqual(linesA, linesB)
		if same && hA != hB {
			t.Fatalf("identical inputs produced distinct cache keys")
		}
		if !same && hA == hB {
			t.Fatalf("distinct inputs collided: key=%x", hA)
		}

		// A hit through the live cache must return the entry for the
		// matching tuple, proven by checking its output against a
		// direct build.
		tc := NewTraceCache()
		if _, _, err := tc.Build(cA, linesA); err != nil {
			t.Fatalf("cached Build(A): %v", err)
		}
		_, got, err := tc.Build(cB, linesB)
		if err != nil {
			t.Fatalf("cached Build(B): %v", err)
		}
		_, want, err := Build(cB, linesB)
		if err != nil {
			t.Fatalf("Build(B): %v", err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("cache returned the wrong trace for B after caching A")
		}
	})
}
