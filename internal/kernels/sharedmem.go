package kernels

import (
	"fmt"

	"rcoal/internal/aes"
	"rcoal/internal/gpusim"
)

// BuildSharedMem constructs the shared-memory variant of the AES
// kernel: the T-tables live in per-SM scratchpad (staged from global
// memory once at kernel start), so round lookups are SharedLoad
// instructions that serialize over bank conflicts instead of global
// loads that coalesce.
//
// This variant exists to map the *boundary* of RCoal: it removes the
// coalescing channel entirely (the last round issues no global
// traffic), but it opens the shared-memory bank-conflict channel of
// Jiang et al. (GLSVLSI'17) — which subwarp randomization does not
// close, since bank conflicts are computed per thread address,
// independent of coalescing groups.
func BuildSharedMem(c *aes.Cipher, lines []Line) (*gpusim.Kernel, []Line, error) {
	if len(lines) == 0 {
		return nil, nil, fmt.Errorf("kernels: no plaintext lines")
	}
	const warpSize = 32
	rounds := c.Rounds()
	cts := make([]Line, len(lines))

	numWarps := (len(lines) + warpSize - 1) / warpSize
	kernel := &gpusim.Kernel{Label: fmt.Sprintf("aes%d-shared-%dlines", 128+(rounds-10)*32, len(lines))}

	for w := 0; w < numWarps; w++ {
		lo := w * warpSize
		hi := lo + warpSize
		if hi > len(lines) {
			hi = len(lines)
		}
		nActive := hi - lo

		traces := make([]aes.Trace, nActive)
		for t := 0; t < nActive; t++ {
			ct, tr := c.TraceEncrypt(lines[lo+t][:])
			cts[lo+t] = ct
			traces[t] = tr
		}

		var active []bool
		if nActive < warpSize {
			active = make([]bool, warpSize)
			for t := 0; t < nActive; t++ {
				active[t] = true
			}
		}

		wp := &gpusim.WarpProgram{ID: w}

		// Table staging: the warp cooperatively copies the five 1 KiB
		// tables from global memory into shared memory — 5120 B / (32
		// threads × 4 B) = 40 coalesced global loads, once per launch.
		for chunk := 0; chunk < 40; chunk++ {
			addrs := make([]uint64, warpSize)
			for t := 0; t < warpSize; t++ {
				addrs[t] = TableBase + uint64(chunk*warpSize+t)*4
			}
			wp.Instrs = append(wp.Instrs, gpusim.Instr{Kind: gpusim.Load, Addrs: addrs, Active: active})
		}

		// Plaintext loads, as in the global-memory kernel.
		for word := 0; word < 4; word++ {
			addrs := make([]uint64, warpSize)
			for t := 0; t < warpSize; t++ {
				line := lo + t
				if line >= len(lines) {
					line = lo
				}
				addrs[t] = PlainBase + uint64(line)*LineBytes + uint64(word)*4
			}
			wp.Instrs = append(wp.Instrs, gpusim.Instr{Kind: gpusim.Load, Addrs: addrs, Active: active})
		}
		wp.Instrs = append(wp.Instrs, gpusim.Instr{Kind: gpusim.ALU})

		// Rounds: lookups hit shared memory at the table's scratchpad
		// offset; entry index i of table T sits at T*1024 + i*4, so
		// bank = (T*256 + i) mod 32 = (i + T*256) mod 32.
		for r := 1; r <= rounds; r++ {
			wp.Instrs = append(wp.Instrs, gpusim.Instr{Kind: gpusim.RoundMark, Round: r})
			for j := 0; j < 16; j++ {
				addrs := make([]uint64, warpSize)
				for t := 0; t < warpSize; t++ {
					if t < nActive {
						lk := traces[t][r-1][j]
						addrs[t] = uint64(lk.Table)*uint64(aes.TableBytes) + uint64(lk.Index)*aes.EntryBytes
					}
				}
				wp.Instrs = append(wp.Instrs, gpusim.Instr{
					Kind: gpusim.SharedLoad, Addrs: addrs, Active: active, Round: r,
				})
				if j%4 == 3 {
					wp.Instrs = append(wp.Instrs, gpusim.Instr{Kind: gpusim.ALU, Round: r})
				}
			}
		}
		wp.Instrs = append(wp.Instrs, gpusim.Instr{Kind: gpusim.RoundMark, Round: 0})

		for word := 0; word < 4; word++ {
			addrs := make([]uint64, warpSize)
			for t := 0; t < warpSize; t++ {
				line := lo + t
				if line >= len(lines) {
					line = lo
				}
				addrs[t] = CipherBase + uint64(line)*LineBytes + uint64(word)*4
			}
			wp.Instrs = append(wp.Instrs, gpusim.Instr{Kind: gpusim.Store, Addrs: addrs, Active: active})
		}

		kernel.Warps = append(kernel.Warps, wp)
	}
	return kernel, cts, nil
}
