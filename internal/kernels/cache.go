package kernels

import (
	"crypto/sha256"
	"encoding/binary"
	"sync"

	"rcoal/internal/aes"
	"rcoal/internal/gpusim"
)

// This file implements the trace cache: grid sweeps in
// internal/experiments run the same (plaintext, key) samples under
// many coalescing mechanisms, and the AES address trace — the kernel —
// depends only on the plaintext, the key schedule, and the direction,
// never on the mechanism. Memoizing Build/BuildDecrypt by a
// cryptographic fingerprint of those inputs lets every cell of a
// mechanism × subwarp grid share one trace construction.
//
// The cached *gpusim.Kernel is shared across callers by pointer. That
// is sound because the simulator treats a kernel as read-only program
// text (it only ever reads WarpProgram.Instrs); the cache's own tests
// and the internal/equiv differential harness pin this down.

// Cache key directions. The direction byte keeps an encryption of
// lines L under key K from colliding with a decryption of the same
// lines under the same key, whose trace differs.
const (
	traceDirEncrypt byte = 1
	traceDirDecrypt byte = 2
)

// TraceCacheStats reports cache effectiveness counters.
type TraceCacheStats struct {
	Hits   uint64
	Misses uint64
}

type traceEntry struct {
	kernel *gpusim.Kernel
	out    []Line // ciphertext (encrypt) or plaintext (decrypt) lines
}

// TraceCache memoizes kernel construction keyed by
// (direction, key schedule, plaintext lines). It is safe for
// concurrent use; worker pools sweeping a grid share one cache.
type TraceCache struct {
	mu      sync.Mutex
	entries map[[32]byte]*traceEntry
	scratch []byte // key-material buffer, reused under mu for zero-alloc keying
	hits    uint64
	misses  uint64
}

// NewTraceCache returns an empty trace cache.
func NewTraceCache() *TraceCache {
	return &TraceCache{entries: make(map[[32]byte]*traceEntry)}
}

// Stats returns the hit/miss counters.
func (tc *TraceCache) Stats() TraceCacheStats {
	tc.mu.Lock()
	defer tc.mu.Unlock()
	return TraceCacheStats{Hits: tc.hits, Misses: tc.misses}
}

// Len returns the number of cached traces.
func (tc *TraceCache) Len() int {
	tc.mu.Lock()
	defer tc.mu.Unlock()
	return len(tc.entries)
}

// appendKeyMaterial writes the canonical cache-key encoding to dst:
// direction byte, key-schedule fingerprint, line count (little-endian
// 64-bit, so a 1-line input never collides with a 2-line input whose
// bytes happen to align), then the raw lines. Every field is
// fixed-width or length-prefixed, making the encoding injective.
func appendKeyMaterial(dst []byte, dir byte, c *aes.Cipher, lines []Line) []byte {
	dst = append(dst, dir)
	dst = c.AppendScheduleFingerprint(dst)
	dst = binary.LittleEndian.AppendUint64(dst, uint64(len(lines)))
	for i := range lines {
		dst = append(dst, lines[i][:]...)
	}
	return dst
}

// TraceKey returns the cache key for (dir, cipher, lines). Exported
// for the fuzz harness, which proves the encoding injective; the
// cache itself uses the allocation-free internal path.
func TraceKey(dir byte, c *aes.Cipher, lines []Line) [32]byte {
	return sha256.Sum256(appendKeyMaterial(nil, dir, c, lines))
}

// key computes the cache key using the cache's scratch buffer. Caller
// holds mu.
func (tc *TraceCache) key(dir byte, c *aes.Cipher, lines []Line) [32]byte {
	tc.scratch = appendKeyMaterial(tc.scratch[:0], dir, c, lines)
	return sha256.Sum256(tc.scratch)
}

// Build is the cached counterpart of the package-level Build: it
// returns the encryption kernel for lines under c and the ciphertext
// lines. The kernel is shared with other callers and must be treated
// as read-only; the output lines are a fresh copy the caller owns.
func (tc *TraceCache) Build(c *aes.Cipher, lines []Line) (*gpusim.Kernel, []Line, error) {
	return tc.build(traceDirEncrypt, c, lines, Build)
}

// BuildDecrypt is the cached counterpart of the package-level
// BuildDecrypt, with the same sharing contract as Build.
func (tc *TraceCache) BuildDecrypt(c *aes.Cipher, lines []Line) (*gpusim.Kernel, []Line, error) {
	return tc.build(traceDirDecrypt, c, lines, BuildDecrypt)
}

func (tc *TraceCache) build(dir byte, c *aes.Cipher, lines []Line, fn func(*aes.Cipher, []Line) (*gpusim.Kernel, []Line, error)) (*gpusim.Kernel, []Line, error) {
	tc.mu.Lock()
	k := tc.key(dir, c, lines)
	if e, ok := tc.entries[k]; ok {
		tc.hits++
		tc.mu.Unlock()
		return e.kernel, append([]Line(nil), e.out...), nil
	}
	tc.misses++
	tc.mu.Unlock()

	// Build outside the lock: trace construction is the expensive part,
	// and concurrent misses on the same key both build deterministically
	// identical entries, so last-write-wins is harmless.
	kernel, out, err := fn(c, lines)
	if err != nil {
		return nil, nil, err
	}
	tc.mu.Lock()
	if e, ok := tc.entries[k]; ok {
		// Another worker won the race; adopt its entry so all callers
		// share one kernel pointer.
		kernel, out = e.kernel, e.out
	} else {
		tc.entries[k] = &traceEntry{kernel: kernel, out: out}
	}
	tc.mu.Unlock()
	return kernel, append([]Line(nil), out...), nil
}
