package kernels

import (
	"testing"

	"rcoal/internal/aes"
	"rcoal/internal/gpusim"
	"rcoal/internal/rng"
)

func TestBuildDecryptRecoversPlaintext(t *testing.T) {
	c := testCipher(t)
	pts := RandomPlaintext(rng.New(71), 48)
	_, cts, err := Build(c, pts)
	if err != nil {
		t.Fatal(err)
	}
	_, back, err := BuildDecrypt(c, cts)
	if err != nil {
		t.Fatal(err)
	}
	for i := range pts {
		if back[i] != pts[i] {
			t.Fatalf("line %d did not round-trip through the kernel builders", i)
		}
	}
}

func TestBuildDecryptStructure(t *testing.T) {
	c := testCipher(t)
	cts := RandomPlaintext(rng.New(73), 64)
	k, _, err := BuildDecrypt(c, cts)
	if err != nil {
		t.Fatal(err)
	}
	if err := k.Validate(32); err != nil {
		t.Fatal(err)
	}
	if len(k.Warps) != 2 || k.MemInstrs() != 336 {
		t.Errorf("%d warps, %d mem instrs", len(k.Warps), k.MemInstrs())
	}
	// Final-inverse-round lookups land in the T4 slot's address range
	// (the Td4 table binds at the same base).
	t4lo, t4hi := TableAddr(aes.T4, 0), TableAddr(aes.T4, 255)
	seen := 0
	for _, ins := range k.Warps[0].Instrs {
		if ins.Kind == gpusim.Load && ins.Round == 10 {
			seen++
			for _, a := range ins.Addrs {
				if a < t4lo || a > t4hi+3 {
					t.Fatalf("final-round lookup at %#x outside table 4", a)
				}
			}
		}
	}
	if seen != 16 {
		t.Errorf("%d final-round lookups, want 16", seen)
	}
}

func TestBuildDecryptPartialWarp(t *testing.T) {
	c := testCipher(t)
	cts := RandomPlaintext(rng.New(79), 40)
	k, pts, err := BuildDecrypt(c, cts)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 40 || len(k.Warps) != 2 {
		t.Fatalf("%d lines, %d warps", len(pts), len(k.Warps))
	}
	for _, ins := range k.Warps[1].Instrs {
		if ins.Kind != gpusim.Load && ins.Kind != gpusim.Store {
			continue
		}
		if ins.Active == nil {
			t.Fatal("partial decrypt warp without active mask")
		}
	}
}

func TestBuildDecryptEmptyErrors(t *testing.T) {
	if _, _, err := BuildDecrypt(testCipher(t), nil); err == nil {
		t.Fatal("empty ciphertext accepted")
	}
}

func TestBuildDecryptRunsOnSimulator(t *testing.T) {
	c := testCipher(t)
	cts := RandomPlaintext(rng.New(83), 32)
	k, _, err := BuildDecrypt(c, cts)
	if err != nil {
		t.Fatal(err)
	}
	g, err := gpusim.New(gpusim.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	res, err := g.Run(k, 1)
	if err != nil {
		t.Fatal(err)
	}
	for r := 1; r <= 10; r++ {
		if res.RoundTx[r] == 0 {
			t.Errorf("inverse round %d has no transactions", r)
		}
	}
}
