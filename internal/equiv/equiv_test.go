package equiv

import (
	"testing"

	"rcoal/internal/experiments"
	"rcoal/internal/kernels"
)

// The CI `make equiv` target runs exactly this file: with -short (the
// PR gate) the reduced grid, without (main) the full 6-mechanism ×
// 3-subwarp-count × 3-seed matrix.

func testGrid() Grid {
	if testing.Short() {
		return ShortGrid()
	}
	return DefaultGrid()
}

var equivKey = []byte("equiv-harness-ky")

func TestTraceCacheExact(t *testing.T) {
	if err := TraceCacheExact(testGrid(), equivKey); err != nil {
		t.Fatal(err)
	}
}

func TestForkExact(t *testing.T) {
	if err := ForkExact(testGrid(), equivKey, nil); err != nil {
		t.Fatal(err)
	}
}

func TestForkExactWithTraceCache(t *testing.T) {
	if err := ForkExact(testGrid(), equivKey, kernels.NewTraceCache()); err != nil {
		t.Fatal(err)
	}
}

func TestHybridWithinBound(t *testing.T) {
	o := experiments.DefaultOptions()
	ms := experiments.Fig16Subwarps // superset grid of Figures 15-17
	if testing.Short() {
		o.Samples = 6
		ms = []int{1, 4, 16}
	} else {
		o.Samples = 10
	}
	rep, err := HybridWithinBound(o, ms)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Substituted == 0 {
		t.Fatal("hybrid mode substituted no cells — the accelerator is inert")
	}
	t.Logf("hybrid: %d cells substituted, max score delta %.3f (bound %.2f)",
		rep.Substituted, rep.MaxScoreDelta, experiments.HybridScoreBound)
}
