// Package equiv is the differential-equivalence harness for the
// simulation accelerators. Three contracts, in decreasing strictness:
//
//  1. Trace caching (kernels.TraceCache) must be invisible: a server
//     with the cache installed returns datasets byte-identical to an
//     uncached one, for every mechanism and seed.
//  2. Copy-on-write prefix forking (aesgpu.ForkedCollect) must be
//     invisible: forked collection across a policy set equals a fresh
//     per-policy vanilla collection, bit for bit.
//  3. Hybrid analytical cells (experiments.Options.Hybrid) are allowed
//     to move security scores, but only on analytically decisive cells
//     and only within experiments.HybridScoreBound; performance
//     columns must not move at all.
//
// The harness functions return nil/zero on agreement and a
// first-mismatch error otherwise; equiv_test.go wires them into the
// regular test suite (reduced grid under -short, full grid otherwise),
// which is what CI's `make equiv` runs.
package equiv

import (
	"fmt"
	"reflect"

	"rcoal/internal/aesgpu"
	"rcoal/internal/experiments"
	"rcoal/internal/gpusim"
	"rcoal/internal/kernels"
	"rcoal/internal/mechanism"
)

// Grid parameterizes the exact-equivalence sweeps: every mechanism is
// exercised at every seed.
type Grid struct {
	Policies []mechanism.Mechanism
	Seeds    []uint64
	Samples  int
	Lines    int
	// VulnerableRounds is the selective-RCoal round set shared by all
	// policies; prefix forking requires it to be non-empty.
	VulnerableRounds []int
}

// equivSeeds are the three seeds every exact sweep runs at.
var equivSeeds = []uint64{1, 42, 0xdecaf}

// policies returns the mechanism grid: whole-warp baseline plus the
// six mechanism families (FSS, FSS+RTS, RSS skewed, RSS normal,
// RSS+RTS, and FSS at M=1 — the degenerate single-subwarp point) at
// each subwarp count in ms.
func policies(ms []int) []mechanism.Mechanism {
	ps := []mechanism.Mechanism{mechanism.Baseline(), mechanism.FSS(1)}
	for _, m := range ms {
		ps = append(ps,
			mechanism.FSS(m),
			mechanism.FSSRTS(m),
			mechanism.RSS(m),
			mechanism.RSSNormal(m, 1.5),
			mechanism.RSSRTS(m),
		)
	}
	return ps
}

// DefaultGrid is the full differential grid: 6 mechanism families ×
// subwarp counts {2, 4, 8} × 3 seeds.
func DefaultGrid() Grid {
	return Grid{
		Policies:         policies([]int{2, 4, 8}),
		Seeds:            equivSeeds,
		Samples:          3,
		Lines:            32,
		VulnerableRounds: []int{10},
	}
}

// ShortGrid is the PR-sized grid: same mechanism families, one subwarp
// count, same three seeds.
func ShortGrid() Grid {
	g := DefaultGrid()
	g.Policies = policies([]int{4})
	return g
}

func (g Grid) config() gpusim.Config {
	cfg := gpusim.DefaultConfig()
	cfg.VulnerableRounds = append([]int(nil), g.VulnerableRounds...)
	return cfg
}

// TraceCacheExact checks contract 1: for every (policy, seed), a
// Collect through one shared TraceCache equals an uncached Collect.
// The single cache instance is reused across the whole grid, so key
// collisions between policies or seeds would surface as mismatches.
func TraceCacheExact(g Grid, key []byte) error {
	tc := kernels.NewTraceCache()
	for _, p := range g.Policies {
		cfg := g.config()
		cfg.Defense = p
		for _, seed := range g.Seeds {
			plain, err := aesgpu.NewServer(cfg, key)
			if err != nil {
				return err
			}
			cached, err := aesgpu.NewServer(cfg, key)
			if err != nil {
				return err
			}
			cached.SetTraceCache(tc)
			want, err := plain.Collect(g.Samples, g.Lines, seed)
			if err != nil {
				return err
			}
			got, err := cached.Collect(g.Samples, g.Lines, seed)
			if err != nil {
				return err
			}
			if !reflect.DeepEqual(got, want) {
				return fmt.Errorf("equiv: cached Collect diverged (policy %s, seed %#x)", p.Name(), seed)
			}
		}
	}
	if st := tc.Stats(); st.Hits == 0 {
		return fmt.Errorf("equiv: trace cache never hit (stats %+v) — grid exercises nothing", st)
	}
	return nil
}

// ForkExact checks contract 2: for every seed, one ForkedCollect
// across the full policy set equals a fresh vanilla Collect per
// policy. Run once with tc == nil (forking alone) and once with a
// cache (both accelerators stacked).
func ForkExact(g Grid, key []byte, tc *kernels.TraceCache) error {
	cfg := g.config()
	for _, seed := range g.Seeds {
		want := make([]*aesgpu.Dataset, len(g.Policies))
		for i, p := range g.Policies {
			vcfg := cfg
			vcfg.Defense = p
			srv, err := aesgpu.NewServer(vcfg, key)
			if err != nil {
				return err
			}
			if want[i], err = srv.Collect(g.Samples, g.Lines, seed); err != nil {
				return err
			}
		}
		got, err := aesgpu.ForkedCollect(cfg, key, g.Policies, g.Samples, g.Lines, seed, tc)
		if err != nil {
			return err
		}
		for i := range want {
			if !reflect.DeepEqual(got[i], want[i]) {
				return fmt.Errorf("equiv: forked dataset diverged (policy %s, seed %#x, cache=%v)",
					g.Policies[i].Name(), seed, tc != nil)
			}
		}
	}
	return nil
}

// HybridReport summarizes a hybrid-vs-full sweep comparison.
type HybridReport struct {
	// MaxScoreDelta is max |AvgCorrectCorr(hybrid) − (full)| over the
	// grid; contract 3 requires it ≤ experiments.HybridScoreBound.
	MaxScoreDelta float64
	// Substituted counts cells where hybrid mode changed the score —
	// zero means the mode silently did nothing, which is also a bug.
	Substituted int
}

// HybridWithinBound checks contract 3 on the given Fig-class subwarp
// grid: scores move only within HybridScoreBound, performance columns
// not at all.
func HybridWithinBound(o experiments.Options, ms []int) (HybridReport, error) {
	var rep HybridReport
	full, err := experiments.Sweep(o, ms)
	if err != nil {
		return rep, err
	}
	o.Hybrid = true
	hyb, err := experiments.Sweep(o, ms)
	if err != nil {
		return rep, err
	}
	if len(full.Cells) != len(hyb.Cells) {
		return rep, fmt.Errorf("equiv: hybrid grid shape changed (%d vs %d cells)",
			len(hyb.Cells), len(full.Cells))
	}
	for i := range full.Cells {
		f, h := full.Cells[i], hyb.Cells[i]
		if f.Mechanism != h.Mechanism || f.M != h.M {
			return rep, fmt.Errorf("equiv: hybrid cell %d is (%s,%d), want (%s,%d)",
				i, h.Mechanism, h.M, f.Mechanism, f.M)
		}
		// Performance must be untouched — hybrid only ever replaces
		// the attack, never the simulation.
		if f.MeanCycles != h.MeanCycles || f.MeanTx != h.MeanTx ||
			f.NormCycles != h.NormCycles || f.NormTx != h.NormTx {
			return rep, fmt.Errorf("equiv: hybrid moved performance columns at (%s,%d)",
				f.Mechanism, f.M)
		}
		if d := abs(f.AvgCorrectCorr - h.AvgCorrectCorr); d > 0 {
			rep.Substituted++
			if d > rep.MaxScoreDelta {
				rep.MaxScoreDelta = d
			}
			if d > experiments.HybridScoreBound {
				return rep, fmt.Errorf("equiv: hybrid score off by %.3f at (%s,%d), bound %.2f (full %.3f, hybrid %.3f)",
					d, f.Mechanism, f.M, experiments.HybridScoreBound,
					f.AvgCorrectCorr, h.AvgCorrectCorr)
			}
		}
	}
	return rep, nil
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
