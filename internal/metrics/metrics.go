// Package metrics is a zero-dependency instrumentation registry for
// the simulator and its drivers: counters, gauges (with high-water
// marks), fixed-bucket histograms, and dense counter tables, collected
// into JSON-friendly snapshots.
//
// The design discipline mirrors the gpusim trace sink: instrumented
// code holds typed metric pointers resolved once at construction, so
// the hot path pays a nil check when metrics are off and a handful of
// integer operations when they are on. Observe/Inc/Add never allocate
// (pinned by TestHotPathAllocsPerRun); only Snapshot does.
//
// Like the simulator itself, a Registry is single-goroutine state:
// create one per GPU (or other instrumented unit) and merge snapshots
// afterwards. Concurrent aggregation across worker goroutines lives in
// internal/runner's Telemetry, not here.
package metrics

import (
	"fmt"
	"sort"
)

// Counter is a monotonically increasing event count.
type Counter struct {
	n uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.n++ }

// Add adds n.
func (c *Counter) Add(n uint64) { c.n += n }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.n }

// Gauge is an instantaneous level that also tracks its high-water
// mark (e.g. a queue depth and the deepest the queue ever got).
type Gauge struct {
	cur, max int64
}

// Set replaces the level.
func (g *Gauge) Set(v int64) {
	g.cur = v
	if v > g.max {
		g.max = v
	}
}

// Add shifts the level by d (d may be negative).
func (g *Gauge) Add(d int64) { g.Set(g.cur + d) }

// Value returns the current level.
func (g *Gauge) Value() int64 { return g.cur }

// Max returns the high-water mark.
func (g *Gauge) Max() int64 { return g.max }

// Histogram counts observations into fixed buckets. Bucket i counts
// observations v with v <= Bounds[i] (and > Bounds[i-1]); one implicit
// overflow bucket collects everything above the last bound.
//
// Bucketing is a table lookup built at construction, which keeps
// Observe O(1), branch-light, and small enough to inline into the
// simulator's hot paths; the price is that layouts are bounded (last
// bound below lutLimit, at most 255 buckets). That comfortably covers
// this package's domain — small-integer distributions such as
// transaction counts, group sizes, and queue depths; pick coarser
// buckets for wider-ranged values.
type Histogram struct {
	bounds []int64
	counts []uint64 // len(bounds)+1; last is overflow
	// lut maps value v (clamped to the table) to its bucket index; the
	// final entry maps to the overflow bucket.
	lut []uint8
	sum int64
	min int64
	max int64
}

// lutLimit bounds histogram layouts: the last bound must be below it
// so the lookup table stays small (a few KiB at most).
const lutLimit = 1 << 12

// sentinelMin/sentinelMax initialize min/max so Observe needs no
// emptiness branch; snapshots report 0 for empty histograms.
const (
	sentinelMin = int64(^uint64(0) >> 1) // math.MaxInt64
	sentinelMax = -sentinelMin - 1       // math.MinInt64
)

// NewHistogram builds a histogram over the given strictly increasing
// inclusive upper bounds. It panics on empty, unsorted, negative, or
// oversized bounds (see the type comment for the layout limits) —
// bucket layouts are compile-time decisions, not runtime inputs.
func NewHistogram(bounds []int64) *Histogram {
	if len(bounds) == 0 {
		panic("metrics: histogram needs at least one bound")
	}
	if bounds[0] < 0 {
		panic(fmt.Sprintf("metrics: histogram bounds must be non-negative, got %d", bounds[0]))
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("metrics: histogram bounds not increasing at %d (%d <= %d)",
				i, bounds[i], bounds[i-1]))
		}
	}
	last := bounds[len(bounds)-1]
	if last >= lutLimit {
		panic(fmt.Sprintf("metrics: histogram last bound %d exceeds limit %d — use coarser buckets", last, lutLimit-1))
	}
	if len(bounds)+1 > 256 {
		panic(fmt.Sprintf("metrics: histogram has %d buckets, limit 256", len(bounds)+1))
	}
	b := make([]int64, len(bounds))
	copy(b, bounds)
	h := &Histogram{bounds: b, counts: make([]uint64, len(b)+1)}
	h.min, h.max = sentinelMin, sentinelMax
	// lut[v] = bucket of v for 0..last; lut[last+1] = overflow. Observe
	// clamps out-of-range values onto those ends.
	h.lut = make([]uint8, last+2)
	i := 0
	for v := int64(0); v <= last; v++ {
		for v > b[i] {
			i++
		}
		h.lut[v] = uint8(i)
	}
	h.lut[last+1] = uint8(len(h.counts) - 1)
	return h
}

// LinearBounds returns n inclusive upper bounds width, 2*width, ...,
// n*width — the bucket layout for small-integer distributions such as
// per-instruction transaction counts or queue depths.
func LinearBounds(width int64, n int) []int64 {
	if width <= 0 || n <= 0 {
		panic("metrics: LinearBounds needs positive width and count")
	}
	out := make([]int64, n)
	for i := range out {
		out[i] = width * int64(i+1)
	}
	return out
}

// Observe records one value. The body is a table lookup plus a few
// integer updates, small enough for the compiler to inline at the
// instrumentation sites; min/max use sentinel initial values (see
// reset) so no emptiness branch runs per observation.
func (h *Histogram) Observe(v int64) {
	i := v
	if uint64(i) >= uint64(len(h.lut)) {
		i = 0 // negative values land in the first bucket...
		if v > 0 {
			i = int64(len(h.lut) - 1) // ...oversized ones in overflow
		}
	}
	h.counts[h.lut[i]]++
	h.sum += v
	if v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
}

// Count returns the number of observations. It is derived by summing
// the bucket counts — snapshot-time work traded for one fewer memory
// update in Observe.
func (h *Histogram) Count() uint64 {
	var n uint64
	for _, c := range h.counts {
		n += c
	}
	return n
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() int64 { return h.sum }

// Mean returns the average observed value, or 0 with no observations.
func (h *Histogram) Mean() float64 {
	n := h.Count()
	if n == 0 {
		return 0
	}
	return float64(h.sum) / float64(n)
}

// reset zeroes observations, keeping the bucket layout.
func (h *Histogram) reset() {
	for i := range h.counts {
		h.counts[i] = 0
	}
	h.sum, h.min, h.max = 0, sentinelMin, sentinelMax
}

// Min returns the smallest observed value, or 0 with no observations.
// (The sentinel initial value doubles as the emptiness marker.)
func (h *Histogram) Min() int64 {
	if h.min == sentinelMin {
		return 0
	}
	return h.min
}

// Max returns the largest observed value, or 0 with no observations.
func (h *Histogram) Max() int64 {
	if h.max == sentinelMax {
		return 0
	}
	return h.max
}

// Table is a dense rows x cols matrix of counters for per-entity
// metric families — e.g. per-DRAM-bank row-locality stats, where 96
// banks x 4 stats as individually named counters would turn every
// snapshot into hundreds of string-keyed map inserts. The backing
// store is one flat row-major slice, so snapshotting a table is a
// single copy regardless of its size.
type Table struct {
	rows, cols []string
	vals       []uint64 // len(rows)*len(cols), row-major
}

// Add adds v to cell (row, col).
func (t *Table) Add(row, col int, v uint64) { t.vals[row*len(t.cols)+col] += v }

// Value returns cell (row, col).
func (t *Table) Value(row, col int) uint64 { return t.vals[row*len(t.cols)+col] }

// Rows returns the row labels (read-only).
func (t *Table) Rows() []string { return t.rows }

// Cols returns the column labels (read-only).
func (t *Table) Cols() []string { return t.cols }

func (t *Table) reset() {
	for i := range t.vals {
		t.vals[i] = 0
	}
}

// Registry holds named metrics. Lookup is get-or-create and idempotent
// so instrumented subsystems can resolve their metrics at construction
// time without coordinating registration order.
type Registry struct {
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
	tables     map[string]*Table
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   map[string]*Counter{},
		gauges:     map[string]*Gauge{},
		histograms: map[string]*Histogram{},
		tables:     map[string]*Table{},
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	if c, ok := r.counters[name]; ok {
		return c
	}
	c := &Counter{}
	r.counters[name] = c
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if g, ok := r.gauges[name]; ok {
		return g
	}
	g := &Gauge{}
	r.gauges[name] = g
	return g
}

// Histogram returns the named histogram, creating it with the given
// bounds on first use. Later calls ignore bounds (the first layout
// wins), so hot-path callers can re-resolve without re-checking.
func (r *Registry) Histogram(name string, bounds []int64) *Histogram {
	if h, ok := r.histograms[name]; ok {
		return h
	}
	h := NewHistogram(bounds)
	r.histograms[name] = h
	return h
}

// Table returns the named table, creating it with the given row and
// column labels on first use. Later calls ignore the labels (the first
// layout wins) but panic if the shape differs — a shape change means
// two subsystems disagree about the same name.
func (r *Registry) Table(name string, rows, cols []string) *Table {
	if t, ok := r.tables[name]; ok {
		if len(t.rows) != len(rows) || len(t.cols) != len(cols) {
			panic(fmt.Sprintf("metrics: table %q re-registered with shape %dx%d, have %dx%d",
				name, len(rows), len(cols), len(t.rows), len(t.cols)))
		}
		return t
	}
	if len(rows) == 0 || len(cols) == 0 {
		panic(fmt.Sprintf("metrics: table %q needs at least one row and column", name))
	}
	t := &Table{
		rows: append([]string(nil), rows...),
		cols: append([]string(nil), cols...),
		vals: make([]uint64, len(rows)*len(cols)),
	}
	r.tables[name] = t
	return t
}

// Reset zeroes every registered metric, keeping registrations and
// bucket layouts, so one registry can serve many launches.
func (r *Registry) Reset() {
	for _, c := range r.counters {
		c.n = 0
	}
	for _, g := range r.gauges {
		g.cur, g.max = 0, 0
	}
	for _, h := range r.histograms {
		h.reset()
	}
	for _, t := range r.tables {
		t.reset()
	}
}

// GaugeValue is a gauge's exported state.
type GaugeValue struct {
	Value int64 `json:"value"`
	Max   int64 `json:"max"`
}

// HistogramValue is a histogram's exported state. Counts has one entry
// per bound plus a trailing overflow bucket.
type HistogramValue struct {
	Bounds []int64  `json:"bounds"`
	Counts []uint64 `json:"counts"`
	Count  uint64   `json:"count"`
	Sum    int64    `json:"sum"`
	Min    int64    `json:"min"`
	Max    int64    `json:"max"`
	Mean   float64  `json:"mean"`
}

// TableValue is a table's exported state: Values[i*len(Cols)+j] is the
// cell at row i, column j. Rows and Cols are shared with the live
// table (labels are immutable after registration) — treat them as
// read-only.
type TableValue struct {
	Rows   []string `json:"rows"`
	Cols   []string `json:"cols"`
	Values []uint64 `json:"values"`
}

// Value returns cell (row, col).
func (t TableValue) Value(row, col int) uint64 { return t.Values[row*len(t.Cols)+col] }

// Snapshot is a point-in-time copy of a registry, detached from the
// live metrics and safe to marshal, merge, or retain. encoding/json
// emits map keys sorted, so marshaled snapshots are deterministic.
type Snapshot struct {
	Counters   map[string]uint64         `json:"counters,omitempty"`
	Gauges     map[string]GaugeValue     `json:"gauges,omitempty"`
	Histograms map[string]HistogramValue `json:"histograms,omitempty"`
	Tables     map[string]TableValue     `json:"tables,omitempty"`
}

// Snapshot copies the registry's current state.
func (r *Registry) Snapshot() *Snapshot {
	s := &Snapshot{}
	if len(r.counters) > 0 {
		s.Counters = make(map[string]uint64, len(r.counters))
		for name, c := range r.counters {
			s.Counters[name] = c.n
		}
	}
	if len(r.gauges) > 0 {
		s.Gauges = make(map[string]GaugeValue, len(r.gauges))
		for name, g := range r.gauges {
			s.Gauges[name] = GaugeValue{Value: g.cur, Max: g.max}
		}
	}
	if len(r.histograms) > 0 {
		s.Histograms = make(map[string]HistogramValue, len(r.histograms))
		for name, h := range r.histograms {
			hv := HistogramValue{
				Bounds: append([]int64(nil), h.bounds...),
				Counts: append([]uint64(nil), h.counts...),
				Count:  h.Count(),
				Sum:    h.sum,
				Min:    h.Min(),
				Max:    h.Max(),
				Mean:   h.Mean(),
			}
			s.Histograms[name] = hv
		}
	}
	if len(r.tables) > 0 {
		s.Tables = make(map[string]TableValue, len(r.tables))
		for name, t := range r.tables {
			s.Tables[name] = TableValue{
				Rows:   t.rows,
				Cols:   t.cols,
				Values: append([]uint64(nil), t.vals...),
			}
		}
	}
	return s
}

// Merge folds other into s: counters and histogram buckets add,
// gauges keep the maximum of the high-water marks and other's last
// value. Histograms merge only when their bucket layouts match.
func (s *Snapshot) Merge(other *Snapshot) error {
	if other == nil {
		return nil
	}
	for name, v := range other.Counters {
		if s.Counters == nil {
			s.Counters = map[string]uint64{}
		}
		s.Counters[name] += v
	}
	for name, g := range other.Gauges {
		if s.Gauges == nil {
			s.Gauges = map[string]GaugeValue{}
		}
		cur := s.Gauges[name]
		if g.Max > cur.Max {
			cur.Max = g.Max
		}
		cur.Value = g.Value
		s.Gauges[name] = cur
	}
	for name, h := range other.Histograms {
		if s.Histograms == nil {
			s.Histograms = map[string]HistogramValue{}
		}
		cur, ok := s.Histograms[name]
		if !ok {
			cur = HistogramValue{
				Bounds: append([]int64(nil), h.Bounds...),
				Counts: make([]uint64, len(h.Counts)),
				Min:    h.Min,
				Max:    h.Max,
			}
		}
		if len(cur.Bounds) != len(h.Bounds) {
			return fmt.Errorf("metrics: merge %q: bucket layouts differ (%d vs %d bounds)",
				name, len(cur.Bounds), len(h.Bounds))
		}
		for i, b := range h.Bounds {
			if cur.Bounds[i] != b {
				return fmt.Errorf("metrics: merge %q: bound %d differs (%d vs %d)",
					name, i, cur.Bounds[i], b)
			}
		}
		for i, c := range h.Counts {
			cur.Counts[i] += c
		}
		if h.Count > 0 {
			if cur.Count == 0 || h.Min < cur.Min {
				cur.Min = h.Min
			}
			if cur.Count == 0 || h.Max > cur.Max {
				cur.Max = h.Max
			}
		}
		cur.Count += h.Count
		cur.Sum += h.Sum
		if cur.Count > 0 {
			cur.Mean = float64(cur.Sum) / float64(cur.Count)
		}
		s.Histograms[name] = cur
	}
	for name, t := range other.Tables {
		if s.Tables == nil {
			s.Tables = map[string]TableValue{}
		}
		cur, ok := s.Tables[name]
		if !ok {
			cur = TableValue{
				Rows:   t.Rows,
				Cols:   t.Cols,
				Values: make([]uint64, len(t.Values)),
			}
		}
		if len(cur.Rows) != len(t.Rows) || len(cur.Cols) != len(t.Cols) {
			return fmt.Errorf("metrics: merge %q: table shapes differ (%dx%d vs %dx%d)",
				name, len(cur.Rows), len(cur.Cols), len(t.Rows), len(t.Cols))
		}
		for i, v := range t.Values {
			cur.Values[i] += v
		}
		s.Tables[name] = cur
	}
	return nil
}

// Names returns every metric name in the snapshot, sorted — handy for
// stable test assertions and reports.
func (s *Snapshot) Names() []string {
	var out []string
	for n := range s.Counters {
		out = append(out, n)
	}
	for n := range s.Gauges {
		out = append(out, n)
	}
	for n := range s.Histograms {
		out = append(out, n)
	}
	for n := range s.Tables {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}
