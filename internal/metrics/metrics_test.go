package metrics

import (
	"encoding/json"
	"testing"
)

func TestCounterGauge(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Errorf("counter = %d, want 5", c.Value())
	}

	var g Gauge
	g.Set(7)
	g.Add(-3)
	g.Add(10)
	g.Set(2)
	if g.Value() != 2 {
		t.Errorf("gauge value = %d, want 2", g.Value())
	}
	if g.Max() != 14 {
		t.Errorf("gauge max = %d, want 14", g.Max())
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram([]int64{1, 2, 4, 8})
	for _, v := range []int64{0, 1, 2, 3, 4, 5, 8, 9, 100} {
		h.Observe(v)
	}
	want := []uint64{2, 1, 2, 2, 2} // <=1, <=2, <=4, <=8, overflow
	for i, w := range want {
		if h.counts[i] != w {
			t.Errorf("bucket %d = %d, want %d", i, h.counts[i], w)
		}
	}
	if h.Count() != 9 || h.Sum() != 132 {
		t.Errorf("count/sum = %d/%d, want 9/132", h.Count(), h.Sum())
	}
	if h.min != 0 || h.max != 100 {
		t.Errorf("min/max = %d/%d, want 0/100", h.min, h.max)
	}
	if m := h.Mean(); m < 14.6 || m > 14.7 {
		t.Errorf("mean = %v", m)
	}
}

func TestHistogramPanicsOnBadBounds(t *testing.T) {
	for _, bounds := range [][]int64{nil, {}, {3, 3}, {5, 2}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("bounds %v accepted", bounds)
				}
			}()
			NewHistogram(bounds)
		}()
	}
}

func TestLinearBounds(t *testing.T) {
	got := LinearBounds(4, 3)
	for i, want := range []int64{4, 8, 12} {
		if got[i] != want {
			t.Errorf("LinearBounds[%d] = %d, want %d", i, got[i], want)
		}
	}
}

func TestRegistryIdempotentAndReset(t *testing.T) {
	r := NewRegistry()
	c1 := r.Counter("a")
	c1.Add(3)
	if r.Counter("a") != c1 {
		t.Error("Counter not idempotent")
	}
	h1 := r.Histogram("h", []int64{1, 2})
	h1.Observe(2)
	if r.Histogram("h", []int64{9}) != h1 {
		t.Error("Histogram not idempotent (bounds of later calls must be ignored)")
	}
	g1 := r.Gauge("g")
	g1.Set(5)
	if r.Gauge("g") != g1 {
		t.Error("Gauge not idempotent")
	}

	r.Reset()
	if c1.Value() != 0 || g1.Value() != 0 || g1.Max() != 0 || h1.Count() != 0 || h1.Sum() != 0 {
		t.Error("Reset left state behind")
	}
	h1.Observe(1)
	if h1.counts[0] != 1 {
		t.Error("histogram unusable after Reset")
	}
}

func TestSnapshotDetachedAndJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("tx").Add(10)
	r.Gauge("depth").Set(3)
	r.Histogram("sizes", []int64{1, 2, 4}).Observe(3)

	s := r.Snapshot()
	r.Counter("tx").Add(99)
	r.Histogram("sizes", nil).Observe(100)
	if s.Counters["tx"] != 10 {
		t.Error("snapshot not detached from live counter")
	}
	if s.Histograms["sizes"].Count != 1 {
		t.Error("snapshot not detached from live histogram")
	}

	b1, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	b2, _ := json.Marshal(s)
	if string(b1) != string(b2) {
		t.Error("snapshot JSON not deterministic")
	}
	var back Snapshot
	if err := json.Unmarshal(b1, &back); err != nil {
		t.Fatal(err)
	}
	if back.Counters["tx"] != 10 || back.Gauges["depth"].Value != 3 {
		t.Errorf("round-trip lost data: %s", b1)
	}
}

func TestSnapshotMerge(t *testing.T) {
	mk := func(txA uint64, obs ...int64) *Snapshot {
		r := NewRegistry()
		r.Counter("tx").Add(txA)
		r.Gauge("depth").Set(int64(txA))
		h := r.Histogram("sizes", []int64{1, 2, 4})
		for _, v := range obs {
			h.Observe(v)
		}
		return r.Snapshot()
	}
	a := mk(3, 1, 5)
	b := mk(7, 2, 2, 0)
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if a.Counters["tx"] != 10 {
		t.Errorf("merged counter = %d, want 10", a.Counters["tx"])
	}
	if a.Gauges["depth"].Max != 7 {
		t.Errorf("merged gauge max = %d, want 7", a.Gauges["depth"].Max)
	}
	h := a.Histograms["sizes"]
	if h.Count != 5 || h.Sum != 10 || h.Min != 0 || h.Max != 5 {
		t.Errorf("merged histogram = %+v", h)
	}
	if err := a.Merge(nil); err != nil {
		t.Errorf("merging nil: %v", err)
	}

	// Mismatched layouts must refuse to merge.
	r := NewRegistry()
	r.Histogram("sizes", []int64{1, 2}).Observe(1)
	if err := a.Merge(r.Snapshot()); err == nil {
		t.Error("mismatched bucket layouts merged silently")
	}
	r2 := NewRegistry()
	r2.Histogram("sizes", []int64{1, 2, 5}).Observe(1)
	if err := a.Merge(r2.Snapshot()); err == nil {
		t.Error("differing bounds merged silently")
	}

	// Merging into an empty snapshot deep-copies.
	var empty Snapshot
	if err := empty.Merge(b); err != nil {
		t.Fatal(err)
	}
	if empty.Counters["tx"] != 7 || empty.Histograms["sizes"].Count != 3 {
		t.Errorf("merge into empty lost data: %+v", empty)
	}
	empty.Histograms["sizes"].Counts[0]++
	if b.Histograms["sizes"].Counts[0] == empty.Histograms["sizes"].Counts[0] {
		t.Error("merge into empty aliases source counts")
	}
}

func TestTable(t *testing.T) {
	r := NewRegistry()
	tab := r.Table("banks", []string{"p0/b00", "p0/b01"}, []string{"hits", "misses"})
	if r.Table("banks", []string{"x", "y"}, []string{"a", "b"}) != tab {
		t.Error("Table not idempotent")
	}
	tab.Add(0, 1, 5)
	tab.Add(1, 0, 2)
	tab.Add(1, 0, 3)
	if tab.Value(0, 1) != 5 || tab.Value(1, 0) != 5 || tab.Value(0, 0) != 0 {
		t.Errorf("table cells: %v", tab.vals)
	}

	// Snapshot detaches values and round-trips through JSON.
	s := r.Snapshot()
	tab.Add(0, 0, 99)
	tv := s.Tables["banks"]
	if tv.Value(0, 0) != 0 || tv.Value(0, 1) != 5 {
		t.Error("snapshot not detached from live table")
	}
	b, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back.Tables["banks"].Value(1, 0) != 5 {
		t.Errorf("round-trip lost table data: %s", b)
	}

	// Merge adds cell-wise, deep-copies into empty, refuses mismatched
	// shapes.
	var empty Snapshot
	if err := empty.Merge(s); err != nil {
		t.Fatal(err)
	}
	if err := empty.Merge(s); err != nil {
		t.Fatal(err)
	}
	if got := empty.Tables["banks"].Value(0, 1); got != 10 {
		t.Errorf("merged cell = %d, want 10", got)
	}
	if s.Tables["banks"].Value(0, 1) != 5 {
		t.Error("merge mutated its source")
	}
	r2 := NewRegistry()
	r2.Table("banks", []string{"one"}, []string{"hits", "misses"})
	if err := empty.Merge(r2.Snapshot()); err == nil {
		t.Error("mismatched table shapes merged silently")
	}

	// Reset zeroes values but keeps the layout usable.
	r.Reset()
	if tab.Value(0, 0) != 0 || tab.Value(1, 0) != 0 {
		t.Error("Reset left table state behind")
	}
	tab.Add(1, 1, 1)
	if tab.Value(1, 1) != 1 {
		t.Error("table unusable after Reset")
	}
}

func TestTableBadShapePanics(t *testing.T) {
	r := NewRegistry()
	r.Table("t", []string{"r"}, []string{"c"})
	for name, fn := range map[string]func(){
		"reshape rows": func() { r.Table("t", []string{"a", "b"}, []string{"c"}) },
		"reshape cols": func() { r.Table("t", []string{"r"}, []string{"c", "d"}) },
		"empty rows":   func() { r.Table("t2", nil, []string{"c"}) },
		"empty cols":   func() { r.Table("t3", []string{"r"}, nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestNames(t *testing.T) {
	r := NewRegistry()
	r.Counter("b")
	r.Gauge("a")
	r.Histogram("c", []int64{1})
	r.Table("d", []string{"r"}, []string{"c"})
	got := r.Snapshot().Names()
	want := []string{"a", "b", "c", "d"}
	if len(got) != len(want) {
		t.Fatalf("names = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("names = %v, want %v", got, want)
		}
	}
}

// TestHotPathAllocsPerRun pins the instrumentation hot path at zero
// allocations: a regression here would show up as GC pressure in every
// metrics-on simulation.
func TestHotPathAllocsPerRun(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c")
	g := r.Gauge("g")
	h := r.Histogram("h", LinearBounds(2, 16))
	tab := r.Table("t", []string{"r0", "r1"}, []string{"c0", "c1"})
	avg := testing.AllocsPerRun(100, func() {
		c.Inc()
		c.Add(3)
		g.Add(1)
		h.Observe(9)
		h.Observe(1000)
		tab.Add(1, 1, 2)
	})
	if avg != 0 {
		t.Errorf("hot path allocates %.1f per run, want 0", avg)
	}
}
