package chaos

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"
)

// Injector applies a Plan to live traffic: it keeps the per-endpoint
// request counters that index into the plan's decision stream and the
// arm time the partition windows are measured from. One Injector may
// back any number of Transports and Middlemen — they then share one
// fault schedule, exactly like machines sharing one flaky network.
type Injector struct {
	plan *Plan
	// Log, when non-nil, receives one line per injected fault.
	Log io.Writer
	// OnFault, when non-nil, is called once per injected fault with
	// the endpoint, that endpoint's request index, the fault, and
	// whether a partition window forced it. Observability wiring (the
	// worker's trace marks and structured fault log) hangs off this
	// hook; it runs outside the injector's lock.
	OnFault func(endpoint string, n uint64, f Fault, partitioned bool)
	// now overrides time.Now (tests).
	now func() time.Time

	mu     sync.Mutex
	armed  time.Time
	counts map[string]uint64
	faults map[string]uint64 // per-kind injected-fault counters
}

// NewInjector arms plan: partition windows start counting now.
func NewInjector(plan *Plan) *Injector {
	in := &Injector{
		plan:   plan,
		now:    time.Now,
		counts: make(map[string]uint64),
		faults: make(map[string]uint64),
	}
	in.armed = in.now()
	return in
}

// Plan returns the injector's compiled plan.
func (in *Injector) Plan() *Plan { return in.plan }

// Next consumes the next decision for endpoint, folding in the
// partition schedule: inside a window every request drops. The
// returned fault has already been counted and logged.
func (in *Injector) Next(endpoint string) Fault {
	in.mu.Lock()
	n := in.counts[endpoint]
	in.counts[endpoint] = n + 1
	partitioned := in.plan.Partitioned(in.now().Sub(in.armed))
	in.mu.Unlock()

	f := in.plan.Decide(endpoint, n)
	if partitioned {
		f = Fault{Kind: DropRequest}
	}
	if f.Kind != None {
		in.mu.Lock()
		in.faults[f.Kind.String()]++
		in.mu.Unlock()
		if in.Log != nil {
			suffix := ""
			if partitioned {
				suffix = " (partition)"
			}
			fmt.Fprintf(in.Log, "chaos: %s #%d: %s%s\n", endpoint, n, f.Kind, suffix)
		}
		if in.OnFault != nil {
			in.OnFault(endpoint, n, f, partitioned)
		}
	}
	return f
}

// Counters snapshots how many faults of each kind were injected.
func (in *Injector) Counters() map[string]uint64 {
	in.mu.Lock()
	defer in.mu.Unlock()
	out := make(map[string]uint64, len(in.faults))
	for k, v := range in.faults {
		out[k] = v
	}
	return out
}

// Summary renders the injected-fault counters on one line.
func (in *Injector) Summary() string {
	c := in.Counters()
	if len(c) == 0 {
		return "chaos: no faults injected"
	}
	keys := make([]string, 0, len(c))
	for k := range c {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = fmt.Sprintf("%s=%d", k, c[k])
	}
	return "chaos: injected " + strings.Join(parts, " ")
}

// errDropped is the transport error surfaced for lost traffic; it
// contains "chaos" so worker logs attribute the failure.
type errDropped struct{ kind Kind }

func (e errDropped) Error() string { return fmt.Sprintf("chaos: injected fault: %s", e.kind) }

// Transport is a fault-injecting http.RoundTripper — the worker-side
// middleman. Install it on dist.Worker.Client to make that worker's
// whole view of the coordinator flaky under the injector's plan.
type Transport struct {
	Injector *Injector
	// Base performs the real round trips; nil means
	// http.DefaultTransport.
	Base http.RoundTripper
}

// NewTransport returns a chaos client transport over base.
func NewTransport(in *Injector, base http.RoundTripper) *Transport {
	return &Transport{Injector: in, Base: base}
}

func (t *Transport) base() http.RoundTripper {
	if t.Base != nil {
		return t.Base
	}
	return http.DefaultTransport
}

// RoundTrip implements http.RoundTripper.
func (t *Transport) RoundTrip(req *http.Request) (*http.Response, error) {
	f := t.Injector.Next(req.URL.Path)
	switch f.Kind {
	case DropRequest:
		// The request never reaches the wire. Close the body as the
		// transport contract requires.
		if req.Body != nil {
			req.Body.Close()
		}
		return nil, errDropped{f.Kind}
	case Err5xx:
		if req.Body != nil {
			req.Body.Close()
		}
		return synthesized503(req), nil
	case Delay:
		time.Sleep(f.Delay)
		return t.base().RoundTrip(req)
	case Dup:
		first, err := t.replay(req)
		if err == nil {
			// First delivery succeeded; discard it and deliver again.
			io.Copy(io.Discard, first.Body)
			first.Body.Close()
		}
		return t.base().RoundTrip(req)
	case DropResponse:
		resp, err := t.base().RoundTrip(req)
		if err != nil {
			return nil, err
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return nil, errDropped{f.Kind}
	case Torn:
		resp, err := t.base().RoundTrip(req)
		if err != nil {
			return nil, err
		}
		body, rerr := io.ReadAll(resp.Body)
		resp.Body.Close()
		if rerr != nil {
			return nil, rerr
		}
		resp.Body = io.NopCloser(&tornReader{data: body[:len(body)/2]})
		return resp, nil
	default:
		return t.base().RoundTrip(req)
	}
}

// replay performs one extra delivery of req, rebuilding the body via
// GetBody (set for the bytes.Reader bodies the worker sends).
func (t *Transport) replay(req *http.Request) (*http.Response, error) {
	clone := req.Clone(req.Context())
	if req.GetBody != nil {
		body, err := req.GetBody()
		if err != nil {
			return nil, err
		}
		clone.Body = body
	}
	return t.base().RoundTrip(clone)
}

// tornReader yields its data then fails with io.ErrUnexpectedEOF —
// the reader-visible shape of a connection cut mid-body.
type tornReader struct {
	data []byte
	off  int
}

func (r *tornReader) Read(p []byte) (int, error) {
	if r.off >= len(r.data) {
		return 0, io.ErrUnexpectedEOF
	}
	n := copy(p, r.data[r.off:])
	r.off += n
	return n, nil
}

func synthesized503(req *http.Request) *http.Response {
	body := "chaos: injected 503\n"
	return &http.Response{
		Status:        "503 Service Unavailable",
		StatusCode:    http.StatusServiceUnavailable,
		Proto:         "HTTP/1.1",
		ProtoMajor:    1,
		ProtoMinor:    1,
		Header:        http.Header{"Content-Type": []string{"text/plain"}},
		Body:          io.NopCloser(strings.NewReader(body)),
		ContentLength: int64(len(body)),
		Request:       req,
	}
}

// Middleman is a fault-injecting HTTP proxy: it forwards every
// request to the target coordinator, applying the injector's schedule
// on the way. Point workers (or a whole smoke-test fleet) at the
// middleman's address instead of the coordinator's. The target is
// mutable so a test can follow a restarted coordinator to its new
// address — the healed side of a partition.
type Middleman struct {
	inj    *Injector
	client *http.Client

	mu     sync.Mutex
	target string
}

// NewMiddleman proxies to target (a base URL such as
// http://host:port) under in's fault schedule.
func NewMiddleman(target string, in *Injector) *Middleman {
	return &Middleman{
		inj:    in,
		target: strings.TrimSuffix(target, "/"),
		// The proxy's own upstream requests are bounded so a wedged
		// coordinator cannot pin proxy goroutines forever.
		client: &http.Client{Timeout: 2 * time.Minute},
	}
}

// SetTarget repoints the proxy (a coordinator restarted elsewhere).
func (m *Middleman) SetTarget(target string) {
	m.mu.Lock()
	m.target = strings.TrimSuffix(target, "/")
	m.mu.Unlock()
}

// Target returns the current upstream base URL.
func (m *Middleman) Target() string {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.target
}

// ServeHTTP implements http.Handler.
func (m *Middleman) ServeHTTP(rw http.ResponseWriter, req *http.Request) {
	body, err := io.ReadAll(io.LimitReader(req.Body, 64<<20))
	if err != nil {
		http.Error(rw, fmt.Sprintf("chaos middleman: reading request: %v", err), http.StatusBadRequest)
		return
	}
	f := m.inj.Next(req.URL.Path)
	switch f.Kind {
	case DropRequest:
		// Cut the connection without a response: the client sees a
		// transport error, the coordinator saw nothing.
		panic(http.ErrAbortHandler)
	case Err5xx:
		http.Error(rw, "chaos: injected 503", http.StatusServiceUnavailable)
		return
	case Delay:
		time.Sleep(f.Delay)
	case Dup:
		if resp, err := m.forward(req, body); err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	}
	resp, err := m.forward(req, body)
	if err != nil {
		// The upstream really is unreachable (e.g. a restarting
		// coordinator): surface it as a cut connection, like a router
		// with no route.
		panic(http.ErrAbortHandler)
	}
	defer resp.Body.Close()
	upstream, err := io.ReadAll(resp.Body)
	if err != nil {
		panic(http.ErrAbortHandler)
	}
	switch f.Kind {
	case DropResponse:
		panic(http.ErrAbortHandler)
	case Torn:
		// Advertise the full length, deliver half, cut the connection:
		// the client's decoder sees an unexpected EOF.
		copyHeader(rw.Header(), resp.Header)
		rw.Header().Set("Content-Length", fmt.Sprint(len(upstream)))
		rw.WriteHeader(resp.StatusCode)
		rw.Write(upstream[:len(upstream)/2])
		if fl, ok := rw.(http.Flusher); ok {
			fl.Flush()
		}
		panic(http.ErrAbortHandler)
	default:
		copyHeader(rw.Header(), resp.Header)
		rw.WriteHeader(resp.StatusCode)
		rw.Write(upstream)
	}
}

func (m *Middleman) forward(req *http.Request, body []byte) (*http.Response, error) {
	out, err := http.NewRequestWithContext(req.Context(), req.Method, m.Target()+req.URL.RequestURI(), bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	out.Header = req.Header.Clone()
	return m.client.Do(out)
}

func copyHeader(dst, src http.Header) {
	for k, vs := range src {
		for _, v := range vs {
			dst.Add(k, v)
		}
	}
}
