// Package chaos is the distributed-transport analogue of
// internal/faultinject: deterministic, seed-driven network fault
// injection for the coordinator/worker lease protocol. Where
// faultinject proves the single-process robustness layer (watchdog,
// panic containment, journal corruption tolerance) actually trips,
// chaos proves the cluster-level layer does: dropped and duplicated
// deliveries, injected 5xx bursts, torn response bodies, delays, and
// timed coordinator partitions, all derived from one seed so a chaos
// run is replayable fault-for-fault.
//
// The package follows the faultinject plan idiom: a Plan is plain
// data compiled from a seed, and the decision for any request is a
// pure function of (seed, endpoint, per-endpoint request index) — no
// global randomness, no time-dependent draws. Two plans built from
// the same seed and profile produce bit-identical fault schedules;
// only the partition windows are evaluated against the wall clock,
// and their offsets too are fixed by the seed.
//
// Injection points:
//
//   - Transport is an http.RoundTripper faulting a worker's view of
//     the network (install on dist.Worker.Client, or via the
//     rcoal-experiments -chaos-seed flag);
//   - Middleman is an http.Handler proxying to a coordinator, for
//     standing a faulty network segment between real processes
//     (scripts/chaos_smoke.sh) or between test servers.
//
// Because the lease protocol is idempotent (journaled leases,
// first-writer-wins completions, stale-seq rejection) and every cell
// derives its results from explicit seeds, no transport fault may
// change experiment bytes — the chaos soak e2e and the CI smoke step
// assert CSVs stay byte-identical to the vanilla golden under the
// full fault mix.
package chaos

import (
	"fmt"
	"hash/fnv"
	"strings"
	"time"

	"rcoal/internal/rng"
)

// Kind names one injected transport fault.
type Kind int

const (
	// None delivers the request and its response untouched.
	None Kind = iota
	// DropRequest loses the request before it reaches the server: the
	// client sees a transport error, the server sees nothing.
	DropRequest
	// DropResponse delivers the request but loses the response: the
	// server state changes, the client sees a transport error and will
	// retry — the fault that forces duplicate-delivery handling.
	DropResponse
	// Err5xx answers 503 without delivering the request (an overloaded
	// or restarting front end).
	Err5xx
	// Torn delivers the request but truncates the response body
	// mid-JSON, so the client's decode fails after the server
	// committed.
	Torn
	// Dup delivers the request twice back-to-back (a retrying proxy);
	// the client sees the second response.
	Dup
	// Delay delivers request and response intact after a pause.
	Delay
)

var kindNames = map[Kind]string{
	None: "none", DropRequest: "drop_request", DropResponse: "drop_response",
	Err5xx: "err_5xx", Torn: "torn", Dup: "dup", Delay: "delay",
}

func (k Kind) String() string { return kindNames[k] }

// Fault is the decision for one request: what happens to it, and for
// Delay, how long the pause is.
type Fault struct {
	Kind  Kind
	Delay time.Duration
}

// Profile sets the fault mix as per-mille rates (out of every 1000
// requests to an endpoint, how many suffer each fault; the bands are
// disjoint, so the rates must sum to <= 1000) plus the partition
// schedule parameters.
type Profile struct {
	DropRequest  int
	DropResponse int
	Err5xx       int
	Torn         int
	Dup          int
	Delay        int
	// MaxDelay bounds each injected Delay; the actual pause is a
	// seeded draw in [MaxDelay/4, MaxDelay).
	MaxDelay time.Duration
	// Partitions is how many timed coordinator partition windows the
	// plan schedules; during a window every request is dropped
	// (DropRequest) regardless of its per-request decision.
	Partitions int
	// PartitionEvery is the mean spacing between window starts,
	// measured from the injector's arm time.
	PartitionEvery time.Duration
	// PartitionLength is each window's duration.
	PartitionLength time.Duration
}

// DefaultProfile is the aggressive mix the chaos smoke runs: roughly
// a third of all traffic suffers some fault, plus one mid-run
// partition.
func DefaultProfile() Profile {
	return Profile{
		DropRequest:     80,
		DropResponse:    60,
		Err5xx:          80,
		Torn:            50,
		Dup:             60,
		Delay:           120,
		MaxDelay:        25 * time.Millisecond,
		Partitions:      1,
		PartitionEvery:  2 * time.Second,
		PartitionLength: 300 * time.Millisecond,
	}
}

func (p Profile) total() int {
	return p.DropRequest + p.DropResponse + p.Err5xx + p.Torn + p.Dup + p.Delay
}

// Window is one scheduled partition: offsets from the injector's arm
// time during which the target is unreachable.
type Window struct {
	Start time.Duration
	End   time.Duration
}

// Plan is a compiled fault schedule: the per-request decision
// function plus the partition windows, both fixed by (seed, profile).
type Plan struct {
	Seed    uint64
	Profile Profile

	windows []Window
}

// NewPlan compiles profile under seed. It panics if the profile's
// per-mille rates sum past 1000 (the bands must be disjoint) — a
// configuration error, not a runtime condition.
func NewPlan(seed uint64, profile Profile) *Plan {
	if t := profile.total(); t > 1000 {
		panic(fmt.Sprintf("chaos: profile rates sum to %d per mille (max 1000)", t))
	}
	p := &Plan{Seed: seed, Profile: profile}
	if profile.Partitions > 0 && profile.PartitionLength > 0 {
		r := rng.New(seed ^ 0x9A27_71710_15)
		at := time.Duration(0)
		for i := 0; i < profile.Partitions; i++ {
			// Window starts are spaced PartitionEvery on average, with a
			// seeded jitter of up to half the spacing either side.
			spacing := profile.PartitionEvery
			if spacing <= 0 {
				spacing = time.Second
			}
			jitter := time.Duration(r.Intn(int(spacing))) - spacing/2
			at += spacing + jitter
			if at < 0 {
				at = 0
			}
			p.windows = append(p.windows, Window{Start: at, End: at + profile.PartitionLength})
			at += profile.PartitionLength
		}
	}
	return p
}

// Windows returns the scheduled partition windows (a copy).
func (p *Plan) Windows() []Window {
	out := make([]Window, len(p.windows))
	copy(out, p.windows)
	return out
}

// Partitioned reports whether offset elapsed-since-arm falls inside a
// partition window.
func (p *Plan) Partitioned(offset time.Duration) bool {
	for _, w := range p.windows {
		if offset >= w.Start && offset < w.End {
			return true
		}
	}
	return false
}

// Decide returns the fault for the n-th request (0-based) to
// endpoint. It is a pure function of (plan seed, endpoint, n): the
// whole schedule can be enumerated without sending a byte, and two
// runs under the same seed suffer identical fault sequences
// per endpoint.
func (p *Plan) Decide(endpoint string, n uint64) Fault {
	h := fnv.New64a()
	h.Write([]byte(endpoint))
	r := rng.New(p.Seed ^ h.Sum64() ^ (n+1)*0x9E3779B97F4A7C15)
	d := r.Intn(1000)
	pr := p.Profile
	bands := []struct {
		kind Kind
		rate int
	}{
		{DropRequest, pr.DropRequest},
		{DropResponse, pr.DropResponse},
		{Err5xx, pr.Err5xx},
		{Torn, pr.Torn},
		{Dup, pr.Dup},
		{Delay, pr.Delay},
	}
	for _, b := range bands {
		if d < b.rate {
			f := Fault{Kind: b.kind}
			if b.kind == Delay && pr.MaxDelay > 0 {
				min := pr.MaxDelay / 4
				f.Delay = min + time.Duration(r.Intn(int(pr.MaxDelay-min)))
			}
			return f
		}
		d -= b.rate
	}
	return Fault{Kind: None}
}

// Describe renders the replay recipe: the seed, the rates, and the
// partition schedule — everything needed to reproduce the fault
// sequence with the same seed.
func (p *Plan) Describe() string {
	pr := p.Profile
	var b strings.Builder
	fmt.Fprintf(&b, "chaos plan seed=%#x rates(‰): drop_req=%d drop_resp=%d 5xx=%d torn=%d dup=%d delay=%d(max %s)",
		p.Seed, pr.DropRequest, pr.DropResponse, pr.Err5xx, pr.Torn, pr.Dup, pr.Delay, pr.MaxDelay)
	for i, w := range p.windows {
		fmt.Fprintf(&b, "; partition[%d] %s..%s", i, w.Start.Round(time.Millisecond), w.End.Round(time.Millisecond))
	}
	return b.String()
}
