package chaos_test

import (
	"context"
	"fmt"
	"net/http/httptest"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"rcoal/internal/chaos"
	"rcoal/internal/dist"
	"rcoal/internal/experiments"
)

// soakProfile is DefaultProfile with the partition window pulled
// forward so it lands inside a CI-scale sweep.
func soakProfile() chaos.Profile {
	p := chaos.DefaultProfile()
	p.PartitionEvery = 400 * time.Millisecond
	p.PartitionLength = 150 * time.Millisecond
	return p
}

// TestChaosSoakByteIdentity is the acceptance criterion of the chaos
// layer: the fig7 grid swept through a fault-injecting middleman —
// with roughly a third of all traffic dropped, duplicated, delayed,
// torn, or 5xx'd, one worker killed mid-sweep, and the coordinator
// crashed and resumed at a new address mid-sweep — produces results
// byte-identical to a vanilla single-process run. Transport faults
// may cost time; they may never change bytes.
func TestChaosSoakByteIdentity(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos soak exercises real sweeps; skipped in -short")
	}
	dir := t.TempDir()
	o := experiments.DefaultOptions()
	o.Samples = 6
	o.Lines = 8
	o.Workers = 1

	// Golden: a plain local sweep.
	goldenJ, err := experiments.OpenJournal(filepath.Join(dir, "golden.journal"), "fig7", o, false)
	if err != nil {
		t.Fatal(err)
	}
	defer goldenJ.Close()
	oo := o
	oo.Journal = goldenJ
	goldenRes, err := experiments.Run("fig7", oo)
	if err != nil {
		t.Fatal(err)
	}

	// Chaos phase 1: coordinator behind the middleman, three workers.
	path := filepath.Join(dir, "chaos.journal")
	j1, err := experiments.OpenJournal(path, "fig7", o, false)
	if err != nil {
		t.Fatal(err)
	}
	s1 := dist.NewServer(dist.ServerConfig{LeaseTimeout: 500 * time.Millisecond})
	srv1 := httptest.NewServer(s1.Handler())

	plan := chaos.NewPlan(0xC0A1_50AC, soakProfile())
	t.Log(plan.Describe())
	in := chaos.NewInjector(plan)
	mm := chaos.NewMiddleman(srv1.URL, in)
	proxy := httptest.NewServer(mm)
	defer proxy.Close()

	newWorker := func(i int) *dist.Worker {
		return &dist.Worker{
			Coordinator:    proxy.URL,
			ID:             fmt.Sprintf("soak%d", i),
			PollInterval:   5 * time.Millisecond,
			MaxErrors:      1_000_000, // chaos makes errors routine; the test bounds time, not retries
			BackoffBase:    time.Millisecond,
			BackoffCap:     25 * time.Millisecond,
			RequestTimeout: 30 * time.Second,
		}
	}
	var wg sync.WaitGroup
	doomedCtx, killWorker := context.WithCancel(context.Background())
	defer killWorker()
	survivorCtx, stopAll := context.WithCancel(context.Background())
	defer stopAll()
	for i := 0; i < 3; i++ {
		ctx := survivorCtx
		if i == 0 {
			ctx = doomedCtx
		}
		w := newWorker(i)
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := w.Run(ctx); err != nil && ctx.Err() == nil {
				t.Errorf("worker %s: %v", w.ID, err)
			}
		}()
	}

	exec1Err := make(chan error, 1)
	go func() {
		oo := o
		oo.Exec = dist.NewExec(s1, "fig7", j1, nil)
		_, err := experiments.Run("fig7", oo)
		exec1Err <- err
	}()

	// Let the sweep make real progress, then kill a worker and crash
	// the coordinator under it.
	deadline := time.Now().Add(60 * time.Second)
	for {
		if st := s1.Status(); len(st.Experiments) > 0 && st.Experiments[0].Done >= 1 {
			break
		}
		select {
		case err := <-exec1Err:
			t.Fatalf("sweep finished before the crash could be injected (err=%v); shrink the reaction window", err)
		default:
		}
		if time.Now().After(deadline) {
			t.Fatal("no cell completed under chaos within 60s")
		}
		time.Sleep(2 * time.Millisecond)
	}
	killWorker()
	s1.Close()
	srv1.Close()
	if err := <-exec1Err; err == nil {
		t.Fatal("crashed coordinator's sweep reported success")
	}
	j1.Close()

	// Chaos phase 2: resume at a new address; the middleman follows,
	// the surviving workers retry their way through.
	j2, err := experiments.OpenJournal(path, "fig7", o, true)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	s2 := dist.NewServer(dist.ServerConfig{LeaseTimeout: 500 * time.Millisecond})
	srv2 := httptest.NewServer(s2.Handler())
	defer srv2.Close()
	mm.SetTarget(srv2.URL)

	oo = o
	oo.Exec = dist.NewExec(s2, "fig7", j2, nil)
	chaosRes, err := experiments.Run("fig7", oo)
	if err != nil {
		t.Fatal(err)
	}
	s2.Drain()
	stopAll()
	wg.Wait()
	t.Log(in.Summary())

	// Byte identity, the whole point.
	if chaosRes.Render() != goldenRes.Render() {
		t.Errorf("chaos-swept render differs from golden:\n--- golden ---\n%s\n--- chaos ---\n%s",
			goldenRes.Render(), chaosRes.Render())
	}
	gc, cc := goldenRes.(experiments.CSVer), chaosRes.(experiments.CSVer)
	if gc.CSV() != cc.CSV() {
		t.Error("chaos-swept CSV differs from golden CSV")
	}
	for _, m := range experiments.Fig7Subwarps {
		key := fmt.Sprintf("fss/%d", m)
		g, ok := goldenJ.Lookup(key)
		if !ok {
			t.Fatalf("golden journal missing %s", key)
		}
		c, ok := j2.Lookup(key)
		if !ok {
			t.Fatalf("chaos journal missing %s", key)
		}
		if string(g) != string(c) {
			t.Errorf("cell %s differs under chaos:\n  golden: %s\n  chaos:  %s", key, g, c)
		}
	}

	// The soak must actually have injected faults, or it proved nothing.
	if len(in.Counters()) == 0 {
		t.Error("no faults injected — the soak ran on a clean network")
	}
}

// TestChaosSoakScheduleReplay pins the replay workflow the docs
// describe: re-arming the same seed yields the same per-endpoint
// decision stream the soak above suffered.
func TestChaosSoakScheduleReplay(t *testing.T) {
	p1 := chaos.NewPlan(0xC0A1_50AC, soakProfile())
	p2 := chaos.NewPlan(0xC0A1_50AC, soakProfile())
	if p1.Describe() != p2.Describe() {
		t.Fatalf("replay recipe not stable:\n%s\n%s", p1.Describe(), p2.Describe())
	}
	for n := uint64(0); n < 5000; n++ {
		if p1.Decide("/complete", n) != p2.Decide("/complete", n) {
			t.Fatalf("decision stream diverges at /complete #%d", n)
		}
	}
}
