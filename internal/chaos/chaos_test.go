package chaos

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// TestScheduleDeterminism is the replay contract: two plans compiled
// from the same seed and profile produce bit-identical fault
// schedules — per-request decisions and partition windows both.
func TestScheduleDeterminism(t *testing.T) {
	a := NewPlan(42, DefaultProfile())
	b := NewPlan(42, DefaultProfile())
	for _, ep := range []string{"/lease", "/complete", "/lease/renew"} {
		for n := uint64(0); n < 2000; n++ {
			fa, fb := a.Decide(ep, n), b.Decide(ep, n)
			if fa != fb {
				t.Fatalf("seed 42 %s #%d: %v vs %v", ep, n, fa, fb)
			}
		}
	}
	wa, wb := a.Windows(), b.Windows()
	if len(wa) != len(wb) {
		t.Fatalf("window counts differ: %d vs %d", len(wa), len(wb))
	}
	for i := range wa {
		if wa[i] != wb[i] {
			t.Fatalf("window %d differs: %+v vs %+v", i, wa[i], wb[i])
		}
	}
}

// TestSchedulesDifferAcrossSeeds guards against the schedule ignoring
// its seed.
func TestSchedulesDifferAcrossSeeds(t *testing.T) {
	a, b := NewPlan(1, DefaultProfile()), NewPlan(2, DefaultProfile())
	diff := 0
	for n := uint64(0); n < 1000; n++ {
		if a.Decide("/lease", n) != b.Decide("/lease", n) {
			diff++
		}
	}
	if diff == 0 {
		t.Fatal("seeds 1 and 2 produced identical /lease schedules")
	}
}

// TestDecideRespectsRates checks every configured kind occurs and the
// aggregate fault fraction lands near the profile's per-mille total.
func TestDecideRespectsRates(t *testing.T) {
	p := NewPlan(7, DefaultProfile())
	counts := map[Kind]int{}
	const n = 20000
	for i := uint64(0); i < n; i++ {
		counts[p.Decide("/lease", i).Kind]++
	}
	for _, k := range []Kind{DropRequest, DropResponse, Err5xx, Torn, Dup, Delay} {
		if counts[k] == 0 {
			t.Errorf("fault kind %s never drawn in %d requests", k, n)
		}
	}
	total := n - counts[None]
	want := DefaultProfile().total() * n / 1000
	if total < want/2 || total > want*2 {
		t.Errorf("fault fraction off: got %d faults, profile implies ~%d", total, want)
	}
}

// TestDelayBounds checks injected delays stay inside
// [MaxDelay/4, MaxDelay).
func TestDelayBounds(t *testing.T) {
	p := NewPlan(3, DefaultProfile())
	max := DefaultProfile().MaxDelay
	seen := 0
	for i := uint64(0); i < 5000; i++ {
		f := p.Decide("/status", i)
		if f.Kind != Delay {
			continue
		}
		seen++
		if f.Delay < max/4 || f.Delay >= max {
			t.Fatalf("delay %v outside [%v, %v)", f.Delay, max/4, max)
		}
	}
	if seen == 0 {
		t.Fatal("no delays drawn")
	}
}

// TestRatesOverflowPanics: the bands must be disjoint.
func TestRatesOverflowPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("profile summing past 1000 per mille did not panic")
		}
	}()
	NewPlan(1, Profile{DropRequest: 600, Err5xx: 600})
}

// TestPartitionWindows checks windows are scheduled, ordered, and that
// Partitioned answers exactly inside them.
func TestPartitionWindows(t *testing.T) {
	prof := DefaultProfile()
	prof.Partitions = 3
	p := NewPlan(11, prof)
	ws := p.Windows()
	if len(ws) != 3 {
		t.Fatalf("want 3 windows, got %d", len(ws))
	}
	for i, w := range ws {
		if w.End-w.Start != prof.PartitionLength {
			t.Errorf("window %d length %v, want %v", i, w.End-w.Start, prof.PartitionLength)
		}
		if i > 0 && w.Start < ws[i-1].End {
			t.Errorf("window %d overlaps predecessor", i)
		}
		if !p.Partitioned(w.Start) || p.Partitioned(w.End) {
			t.Errorf("window %d boundary semantics wrong (half-open [start,end))", i)
		}
	}
}

// planFor builds a single-fault plan: every request to every endpoint
// suffers exactly kind (no partitions), for driving one code path.
func planFor(kind Kind) *Plan {
	prof := Profile{MaxDelay: 2 * time.Millisecond}
	switch kind {
	case DropRequest:
		prof.DropRequest = 1000
	case DropResponse:
		prof.DropResponse = 1000
	case Err5xx:
		prof.Err5xx = 1000
	case Torn:
		prof.Torn = 1000
	case Dup:
		prof.Dup = 1000
	case Delay:
		prof.Delay = 1000
	}
	return NewPlan(5, prof)
}

// upstream is a tiny origin that counts deliveries and returns a
// fixed JSON body.
func TestInjectorOnFaultHook(t *testing.T) {
	in := NewInjector(planFor(DropRequest))
	type hit struct {
		endpoint    string
		n           uint64
		kind        Kind
		partitioned bool
	}
	var hits []hit
	in.OnFault = func(endpoint string, n uint64, f Fault, partitioned bool) {
		hits = append(hits, hit{endpoint, n, f.Kind, partitioned})
	}
	in.Next("/lease")
	in.Next("/lease")
	in.Next("/complete")
	if len(hits) != 3 {
		t.Fatalf("OnFault fired %d times, want 3 (drop rate 1000‰)", len(hits))
	}
	if hits[0] != (hit{"/lease", 0, DropRequest, false}) ||
		hits[1] != (hit{"/lease", 1, DropRequest, false}) ||
		hits[2] != (hit{"/complete", 0, DropRequest, false}) {
		t.Errorf("OnFault observations: %+v", hits)
	}

	// No hook, no faults injected → never called.
	quiet := NewInjector(NewPlan(5, Profile{}))
	quiet.OnFault = func(string, uint64, Fault, bool) { t.Error("OnFault fired with an empty profile") }
	quiet.Next("/lease")
}

type upstream struct {
	hits int
	body string
}

func (u *upstream) handler() http.Handler {
	return http.HandlerFunc(func(rw http.ResponseWriter, req *http.Request) {
		u.hits++
		io.Copy(io.Discard, req.Body)
		rw.Header().Set("Content-Type", "application/json")
		io.WriteString(rw, u.body)
	})
}

func get(t *testing.T, client *http.Client, url string) (*http.Response, string, error) {
	t.Helper()
	resp, err := client.Get(url)
	if err != nil {
		return nil, "", err
	}
	defer resp.Body.Close()
	body, rerr := io.ReadAll(resp.Body)
	if rerr != nil {
		return resp, string(body), rerr
	}
	return resp, string(body), nil
}

// TestTransportFaults drives each fault kind through the client-side
// Transport and asserts the observable shape: who saw the request, and
// what the client got back.
func TestTransportFaults(t *testing.T) {
	body := `{"ok":true,"pad":"` + strings.Repeat("x", 64) + `"}`
	cases := []struct {
		kind      Kind
		wantHits  int  // upstream deliveries per request
		wantErr   bool // client sees a transport/read error
		wantTorn  bool
		want5xx   bool
		wantDelay bool
	}{
		{kind: None, wantHits: 1},
		{kind: DropRequest, wantHits: 0, wantErr: true},
		{kind: DropResponse, wantHits: 1, wantErr: true},
		{kind: Err5xx, wantHits: 0, want5xx: true},
		{kind: Torn, wantHits: 1, wantTorn: true},
		{kind: Dup, wantHits: 2},
		{kind: Delay, wantHits: 1, wantDelay: true},
	}
	for _, tc := range cases {
		t.Run(tc.kind.String(), func(t *testing.T) {
			u := &upstream{body: body}
			srv := httptest.NewServer(u.handler())
			defer srv.Close()
			in := NewInjector(planFor(tc.kind))
			client := &http.Client{Transport: NewTransport(in, nil)}

			start := time.Now()
			resp, got, err := get(t, client, srv.URL+"/probe")
			elapsed := time.Since(start)

			if u.hits != tc.wantHits {
				t.Errorf("upstream saw %d deliveries, want %d", u.hits, tc.wantHits)
			}
			switch {
			case tc.wantErr:
				if err == nil {
					t.Fatalf("want transport error, got response %q", got)
				}
				if !strings.Contains(err.Error(), "chaos") {
					t.Errorf("error not attributed to chaos: %v", err)
				}
			case tc.want5xx:
				if err != nil || resp.StatusCode != http.StatusServiceUnavailable {
					t.Fatalf("want 503, got %v err %v", resp, err)
				}
			case tc.wantTorn:
				if err == nil && got == body {
					t.Fatal("torn response arrived intact")
				}
			default:
				if err != nil || got != body {
					t.Fatalf("want intact body, got %q err %v", got, err)
				}
				if tc.wantDelay && elapsed < 500*time.Microsecond {
					t.Errorf("delay fault completed in %v", elapsed)
				}
			}
			if tc.kind != None {
				if c := in.Counters(); c[tc.kind.String()] != 1 {
					t.Errorf("injected-fault counter for %s = %d, want 1", tc.kind, c[tc.kind.String()])
				}
			}
		})
	}
}

// TestMiddlemanFaults drives each fault kind through the proxy-side
// Middleman.
func TestMiddlemanFaults(t *testing.T) {
	body := `{"ok":true,"pad":"` + strings.Repeat("y", 64) + `"}`
	cases := []struct {
		kind     Kind
		wantHits int
		wantErr  bool
		want5xx  bool
	}{
		{kind: None, wantHits: 1},
		{kind: DropRequest, wantHits: 0, wantErr: true},
		{kind: DropResponse, wantHits: 1, wantErr: true},
		{kind: Err5xx, wantHits: 0, want5xx: true},
		{kind: Torn, wantHits: 1, wantErr: true}, // torn body = read error client-side
		{kind: Dup, wantHits: 2},
		{kind: Delay, wantHits: 1},
	}
	for _, tc := range cases {
		t.Run(tc.kind.String(), func(t *testing.T) {
			u := &upstream{body: body}
			origin := httptest.NewServer(u.handler())
			defer origin.Close()
			mm := NewMiddleman(origin.URL, NewInjector(planFor(tc.kind)))
			proxy := httptest.NewServer(mm)
			defer proxy.Close()

			resp, got, err := get(t, http.DefaultClient, proxy.URL+"/probe")
			if u.hits != tc.wantHits {
				t.Errorf("upstream saw %d deliveries, want %d", u.hits, tc.wantHits)
			}
			switch {
			case tc.wantErr:
				if err == nil && got == body {
					t.Fatalf("want broken exchange, got intact body")
				}
			case tc.want5xx:
				if err != nil || resp.StatusCode != http.StatusServiceUnavailable {
					t.Fatalf("want 503, got %v err %v", resp, err)
				}
			default:
				if err != nil || got != body {
					t.Fatalf("want intact body, got %q err %v", got, err)
				}
			}
		})
	}
}

// TestMiddlemanRetarget checks SetTarget follows a restarted upstream.
func TestMiddlemanRetarget(t *testing.T) {
	u1 := &upstream{body: `"one"`}
	s1 := httptest.NewServer(u1.handler())
	mm := NewMiddleman(s1.URL, NewInjector(NewPlan(1, Profile{})))
	proxy := httptest.NewServer(mm)
	defer proxy.Close()

	if _, got, err := get(t, http.DefaultClient, proxy.URL+"/x"); err != nil || got != `"one"` {
		t.Fatalf("first target: got %q err %v", got, err)
	}
	s1.Close()
	u2 := &upstream{body: `"two"`}
	s2 := httptest.NewServer(u2.handler())
	defer s2.Close()
	mm.SetTarget(s2.URL)
	if _, got, err := get(t, http.DefaultClient, proxy.URL+"/x"); err != nil || got != `"two"` {
		t.Fatalf("after retarget: got %q err %v", got, err)
	}
}

// TestPartitionForcesDrop checks that inside a window every request
// drops regardless of its per-request decision.
func TestPartitionForcesDrop(t *testing.T) {
	prof := Profile{Partitions: 1, PartitionEvery: 50 * time.Millisecond, PartitionLength: time.Hour}
	p := NewPlan(9, prof)
	in := NewInjector(p)
	base := time.Now()
	in.now = func() time.Time { return base.Add(p.Windows()[0].Start + time.Millisecond) }
	in.armed = base
	for i := 0; i < 10; i++ {
		if f := in.Next("/lease"); f.Kind != DropRequest {
			t.Fatalf("request %d inside partition window got %s, want drop_request", i, f.Kind)
		}
	}
}
