package aesgpu

import (
	"encoding/binary"

	"rcoal/internal/gpusim"
	"rcoal/internal/kernels"
)

// This file extends the encryption server with the other GPU AES
// services a real deployment exposes: block decryption (the
// equivalent inverse cipher on the GPU) and CTR-mode encryption (the
// parallel mode GPU AES libraries actually ship). Both reuse the same
// simulated pipeline, and — the point of modeling them — both leak
// through memory-access coalescing exactly like plain encryption:
//
//   - decryption's final inverse round does per-byte Td4 lookups whose
//     indices follow from the output plaintext and the equivalent key
//     (see aes.LastRoundDecIndex), and
//   - CTR's keystream blocks are plain AES encryptions, and the
//     attacker reconstructs the keystream as ciphertext XOR plaintext.

// Decrypt runs one GPU decryption request: Sample.Ciphertexts holds
// the *recovered plaintext* lines (the kernel's output).
func (s *Server) Decrypt(lines []kernels.Line, seed uint64) (*Sample, error) {
	var kernel *gpusim.Kernel
	var pts []kernels.Line
	var err error
	if s.cache != nil {
		kernel, pts, err = s.cache.BuildDecrypt(s.cipher, lines)
	} else {
		kernel, pts, err = kernels.BuildDecrypt(s.cipher, lines)
	}
	if err != nil {
		return nil, err
	}
	return s.run(kernel, pts, seed)
}

// CTRSample is one CTR-mode encryption response.
type CTRSample struct {
	*Sample
	// Keystream holds the raw keystream blocks (AES(counter_t)); an
	// attacker reconstructs them as plaintext XOR ciphertext, so they
	// are effectively public given known plaintext.
	Keystream []kernels.Line
}

// EncryptCTR encrypts lines in counter mode: thread t computes
// AES(nonce ‖ blockIndex_t) and XORs the keystream into its line. The
// keystream generation dominates the kernel and is what the timing
// channel sees.
func (s *Server) EncryptCTR(nonce uint64, lines []kernels.Line, seed uint64) (*CTRSample, error) {
	counters := make([]kernels.Line, len(lines))
	for i := range counters {
		binary.BigEndian.PutUint64(counters[i][:8], nonce)
		binary.BigEndian.PutUint64(counters[i][8:], uint64(i))
	}
	kernel, keystream, err := s.buildEncrypt(counters)
	if err != nil {
		return nil, err
	}
	cts := make([]kernels.Line, len(lines))
	for i := range lines {
		for b := 0; b < kernels.LineBytes; b++ {
			cts[i][b] = lines[i][b] ^ keystream[i][b]
		}
	}
	sample, err := s.run(kernel, cts, seed)
	if err != nil {
		return nil, err
	}
	return &CTRSample{Sample: sample, Keystream: keystream}, nil
}

// EncryptShared runs one encryption on the shared-memory AES kernel
// (T-tables in scratchpad): the coalescing channel disappears from the
// rounds, but bank conflicts serialize the lookups instead. The
// sample's LastRoundTx is 0 by construction; LastRoundCycles carries
// the bank-conflict timing.
func (s *Server) EncryptShared(lines []kernels.Line, seed uint64) (*Sample, error) {
	kernel, cts, err := kernels.BuildSharedMem(s.cipher, lines)
	if err != nil {
		return nil, err
	}
	return s.run(kernel, cts, seed)
}

// run executes a prepared kernel and assembles the sample with the
// given output lines.
func (s *Server) run(kernel *gpusim.Kernel, outputs []kernels.Line, seed uint64) (*Sample, error) {
	res, err := s.gpu.Run(kernel, seed)
	if err != nil {
		return nil, err
	}
	return newSample(s.cipher.Rounds(), outputs, res, s.gpu.Config()), nil
}

// newSample assembles the attacker-visible sample from a launch
// result. Shared by the vanilla path (run) and the prefix-fork
// collector (fork.go), so both paths report identically by
// construction.
func newSample(last int, outputs []kernels.Line, res *gpusim.Result, cfg gpusim.Config) *Sample {
	sample := &Sample{
		Ciphertexts:     outputs,
		TotalCycles:     res.Cycles,
		LastRoundCycles: res.RoundWindow(last),
		LastRoundTx:     res.LastRoundTx(last),
		TotalTx:         res.TotalTx,
		Plan:            res.Plan,
		MSHRMerges:      res.MSHRMerges,
		Metrics:         res.Metrics,
		Energy:          gpusim.DefaultEnergyModel().Estimate(res, cfg).Total(),
	}
	for _, d := range res.DRAM {
		sample.DRAMAccesses += d.Accesses
	}
	for _, c := range res.L1 {
		sample.L1Hits += c.Hits
	}
	for _, c := range res.L2 {
		sample.L2Hits += c.Hits
	}
	return sample
}

// RoundZeroKey returns the cipher's round-0 key — the target of the
// decryption-side attack (for AES the round-0 key IS the original
// key).
func (s *Server) RoundZeroKey() [16]byte { return s.cipher.RoundKey(0) }
