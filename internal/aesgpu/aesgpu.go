// Package aesgpu runs AES encryption on the simulated GPU and plays
// the role of the remote encryption server in the RCoal threat model
// (Section II-C): the attacker submits plaintexts and receives
// ciphertexts plus execution timing. Each plaintext sample is one
// kernel launch, so RSS/RTS randomness is redrawn between samples,
// exactly as the defense specifies.
package aesgpu

import (
	"fmt"

	"rcoal/internal/aes"
	"rcoal/internal/core"
	"rcoal/internal/gpusim"
	"rcoal/internal/kernels"
	"rcoal/internal/metrics"
	"rcoal/internal/rng"
)

// Server is a GPU AES encryption service with a fixed secret key. Like
// the underlying simulator, it serves requests sequentially; create one
// Server per goroutine for parallel studies.
type Server struct {
	gpu    *gpusim.GPU
	cipher *aes.Cipher
	// cache, when installed, memoizes kernel construction so repeated
	// (plaintext, key) samples — e.g. grid cells differing only in
	// mechanism — share one trace build. Purely an accelerator: cached
	// and uncached serving are byte-identical.
	cache *kernels.TraceCache
}

// SetTraceCache installs (or, with nil, removes) a trace cache. The
// cache may be shared across servers and goroutines.
func (s *Server) SetTraceCache(tc *kernels.TraceCache) { s.cache = tc }

// NewServer builds a server simulating the given GPU configuration
// with the given AES key (16, 24, or 32 bytes).
func NewServer(cfg gpusim.Config, key []byte) (*Server, error) {
	g, err := gpusim.New(cfg)
	if err != nil {
		return nil, err
	}
	c, err := aes.NewCipher(key)
	if err != nil {
		return nil, err
	}
	return &Server{gpu: g, cipher: c}, nil
}

// LastRound returns the index of the final AES round (10 for AES-128).
func (s *Server) LastRound() int { return s.cipher.Rounds() }

// LastRoundKey returns the ground-truth last round key — available to
// experiments for verifying attack results, never to attack code paths.
func (s *Server) LastRoundKey() [16]byte { return s.cipher.LastRoundKey() }

// Config returns the simulated GPU configuration.
func (s *Server) Config() gpusim.Config { return s.gpu.Config() }

// Sample is what the attacker observes from one encryption request
// (one kernel launch), plus simulator-internal ground truth used by
// the evaluation (observed access counts, the realized plan).
type Sample struct {
	// Ciphertexts are the encrypted lines, visible to the attacker.
	Ciphertexts []kernels.Line
	// TotalCycles is the end-to-end kernel time, visible to the
	// attacker (the realistic measurement).
	TotalCycles int64
	// LastRoundCycles is the last-round execution window; the paper
	// assumes a stronger attacker who can observe it directly.
	LastRoundCycles int64
	// LastRoundTx is the number of last-round coalesced accesses the
	// hardware actually generated (simulator ground truth, used by the
	// 1024-line case study's noise-free correlation).
	LastRoundTx uint64
	// TotalTx is the launch's total memory transactions ("data
	// movement").
	TotalTx uint64
	// Plan is the subwarp plan the launch realized (diagnostics only).
	Plan core.Plan
	// DRAMAccesses is the DRAM traffic summed over partitions (differs
	// from TotalTx when caches or MSHR merging absorb transactions).
	DRAMAccesses uint64
	// L1Hits and L2Hits aggregate cache hits when the caches are
	// enabled.
	L1Hits, L2Hits uint64
	// MSHRMerges counts loads absorbed by MSHR request merging.
	MSHRMerges uint64
	// Metrics is the launch's metrics snapshot, present only when the
	// server's GPU config installs a gpusim.Metrics bundle.
	Metrics *metrics.Snapshot
	// Energy is the launch's estimated energy in picojoules under the
	// default GTX-480-class energy model (evaluation ground truth for
	// the defense frontier's energy axis).
	Energy float64
}

// Encrypt runs one encryption request. The seed determines the
// launch's hardware randomness; callers give every sample a distinct
// seed.
func (s *Server) Encrypt(lines []kernels.Line, seed uint64) (*Sample, error) {
	kernel, cts, err := s.buildEncrypt(lines)
	if err != nil {
		return nil, err
	}
	return s.run(kernel, cts, seed)
}

// buildEncrypt constructs (or fetches from the trace cache) the
// encryption kernel for lines.
func (s *Server) buildEncrypt(lines []kernels.Line) (*gpusim.Kernel, []kernels.Line, error) {
	if s.cache != nil {
		return s.cache.Build(s.cipher, lines)
	}
	return kernels.Build(s.cipher, lines)
}

// Dataset is a collection of timing samples for a fixed server: the
// attacker's raw material.
type Dataset struct {
	// Plaintexts[n] are the lines submitted in sample n.
	Plaintexts [][]kernels.Line
	// Samples[n] is the server's response for sample n.
	Samples []*Sample
}

// Collect gathers nSamples encryption samples of linesPer lines each,
// with plaintexts drawn from the given seed and per-sample hardware
// seeds derived from it.
func (s *Server) Collect(nSamples, linesPer int, seed uint64) (*Dataset, error) {
	if nSamples <= 0 || linesPer <= 0 {
		return nil, fmt.Errorf("aesgpu: need positive samples (%d) and lines (%d)", nSamples, linesPer)
	}
	ptRNG := rng.New(seed).Split(1)
	ds := &Dataset{}
	for n := 0; n < nSamples; n++ {
		lines := kernels.RandomPlaintext(ptRNG, linesPer)
		sample, err := s.Encrypt(lines, seed^uint64(n+1)*0x9e3779b97f4a7c15)
		if err != nil {
			return nil, err
		}
		ds.Plaintexts = append(ds.Plaintexts, lines)
		ds.Samples = append(ds.Samples, sample)
	}
	return ds, nil
}

// LastRoundTimes returns the measurement vector T of last-round
// execution times (the paper's strong-attacker measurement).
func (d *Dataset) LastRoundTimes() []float64 {
	out := make([]float64, len(d.Samples))
	for i, s := range d.Samples {
		out[i] = float64(s.LastRoundCycles)
	}
	return out
}

// TotalTimes returns the total execution times (the realistic, noisier
// measurement).
func (d *Dataset) TotalTimes() []float64 {
	out := make([]float64, len(d.Samples))
	for i, s := range d.Samples {
		out[i] = float64(s.TotalCycles)
	}
	return out
}

// ObservedLastRoundTx returns the hardware's actual last-round
// coalesced-access counts (ground truth for noise-free correlations).
func (d *Dataset) ObservedLastRoundTx() []float64 {
	out := make([]float64, len(d.Samples))
	for i, s := range d.Samples {
		out[i] = float64(s.LastRoundTx)
	}
	return out
}
