package aesgpu

import (
	stdaes "crypto/aes"
	"crypto/cipher"
	"encoding/binary"
	"math"
	"testing"

	"rcoal/internal/aes"
	"rcoal/internal/gpusim"
	"rcoal/internal/kernels"
	"rcoal/internal/rng"
)

func TestDecryptInvertsEncrypt(t *testing.T) {
	s := newTestServer(t, gpusim.DefaultConfig())
	pts := kernels.RandomPlaintext(rng.New(21), 32)
	enc, err := s.Encrypt(pts, 1)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := s.Decrypt(enc.Ciphertexts, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := range pts {
		if dec.Ciphertexts[i] != pts[i] {
			t.Fatalf("line %d did not round-trip through the GPU", i)
		}
	}
	if dec.TotalCycles <= 0 || dec.LastRoundTx == 0 {
		t.Error("decryption sample lacks timing/accounting")
	}
}

func testPearson(xs, ys []float64) float64 {
	n := float64(len(xs))
	var mx, my float64
	for i := range xs {
		mx += xs[i]
		my += ys[i]
	}
	mx /= n
	my /= n
	var sxy, sxx, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0
	}
	return sxy / math.Sqrt(sxx*syy)
}

func TestDecryptTimingChannelExists(t *testing.T) {
	// Decryption leaks like encryption: last-round accesses vary and
	// drive the last-round time.
	s := newTestServer(t, gpusim.DefaultConfig())
	var txs, times []float64
	src := rng.New(23)
	for n := 0; n < 30; n++ {
		cts := kernels.RandomPlaintext(src, 32)
		smp, err := s.Decrypt(cts, uint64(n+1))
		if err != nil {
			t.Fatal(err)
		}
		txs = append(txs, float64(smp.LastRoundTx))
		times = append(times, float64(smp.LastRoundCycles))
	}
	varied := false
	for i := 1; i < len(txs); i++ {
		if txs[i] != txs[0] {
			varied = true
		}
	}
	if !varied {
		t.Fatal("decryption access counts constant; no channel to test")
	}
	if r := testPearson(txs, times); r < 0.9 {
		t.Errorf("decryption channel rho = %v, want > 0.9", r)
	}
}

func TestCTRRoundTripAndKeystream(t *testing.T) {
	s := newTestServer(t, gpusim.DefaultConfig())
	pts := kernels.RandomPlaintext(rng.New(29), 32)
	const nonce = 0xD00DFEED
	out, err := s.EncryptCTR(nonce, pts, 3)
	if err != nil {
		t.Fatal(err)
	}
	// ct XOR keystream = pt.
	for i := range pts {
		for b := 0; b < 16; b++ {
			if out.Ciphertexts[i][b]^out.Keystream[i][b] != pts[i][b] {
				t.Fatalf("CTR line %d byte %d does not round-trip", i, b)
			}
		}
	}
	// The keystream is the encryption of the counter blocks.
	c, err := aes.NewCipher(testKey)
	if err != nil {
		t.Fatal(err)
	}
	for i := range pts {
		var counter, want [16]byte
		binary.BigEndian.PutUint64(counter[:8], nonce)
		binary.BigEndian.PutUint64(counter[8:], uint64(i))
		c.Encrypt(want[:], counter[:])
		if out.Keystream[i] != want {
			t.Fatalf("keystream block %d is not AES(counter)", i)
		}
	}
	if out.TotalCycles <= 0 || out.LastRoundTx == 0 {
		t.Error("CTR sample lacks timing")
	}
}

func TestCTRTimingChannelOnKeystream(t *testing.T) {
	// The CTR attack surface: the attacker derives the keystream from
	// known plaintext and correlates — the last-round channel exists
	// for the keystream generation exactly as for block encryption.
	s := newTestServer(t, gpusim.DefaultConfig())
	var txs, times []float64
	src := rng.New(31)
	for n := 0; n < 30; n++ {
		pts := kernels.RandomPlaintext(src, 32)
		out, err := s.EncryptCTR(uint64(1000+n), pts, uint64(n+1))
		if err != nil {
			t.Fatal(err)
		}
		txs = append(txs, float64(out.LastRoundTx))
		times = append(times, float64(out.LastRoundCycles))
	}
	if r := testPearson(txs, times); r < 0.9 {
		t.Errorf("CTR channel rho = %v, want > 0.9", r)
	}
}

func TestRoundZeroKeyIsOriginalKey(t *testing.T) {
	s := newTestServer(t, gpusim.DefaultConfig())
	rk := s.RoundZeroKey()
	for i := range rk {
		if rk[i] != testKey[i] {
			t.Fatal("round-0 key differs from the AES key")
		}
	}
}

func TestCTRMatchesCryptoCipher(t *testing.T) {
	// Validate the CTR construction against the standard library's
	// cipher.NewCTR with IV = nonce || 0: our per-line counter is the
	// big-endian block index in the low 8 bytes, which matches the
	// stdlib's increment for < 2^64 blocks.
	s := newTestServer(t, gpusim.DefaultConfig())
	pts := kernels.RandomPlaintext(rng.New(33), 40)
	const nonce = 0x0123456789ABCDEF
	out, err := s.EncryptCTR(nonce, pts, 4)
	if err != nil {
		t.Fatal(err)
	}

	block, err := stdaes.NewCipher(testKey)
	if err != nil {
		t.Fatal(err)
	}
	var iv [16]byte
	binary.BigEndian.PutUint64(iv[:8], nonce)
	ctr := cipher.NewCTR(block, iv[:])
	flat := make([]byte, 16*len(pts))
	for i, p := range pts {
		copy(flat[16*i:], p[:])
	}
	want := make([]byte, len(flat))
	ctr.XORKeyStream(want, flat)
	for i := range pts {
		for b := 0; b < 16; b++ {
			if out.Ciphertexts[i][b] != want[16*i+b] {
				t.Fatalf("CTR line %d differs from crypto/cipher", i)
			}
		}
	}
}

func TestEncryptSharedNoGlobalRoundTraffic(t *testing.T) {
	s := newTestServer(t, gpusim.DefaultConfig())
	pts := kernels.RandomPlaintext(rng.New(35), 32)
	smp, err := s.EncryptShared(pts, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Ciphertexts correct.
	c, _ := aes.NewCipher(testKey)
	want := make([]byte, 16)
	c.Encrypt(want, pts[0][:])
	for b := 0; b < 16; b++ {
		if smp.Ciphertexts[0][b] != want[b] {
			t.Fatal("shared-memory kernel produced wrong ciphertext")
		}
	}
	// The rounds issue no global transactions; timing still exists.
	if smp.LastRoundTx != 0 {
		t.Errorf("last-round tx %d, want 0 (tables in scratchpad)", smp.LastRoundTx)
	}
	if smp.LastRoundCycles <= 0 {
		t.Error("no last-round timing")
	}
	// Staging + IO traffic exists but is far below the global-memory
	// kernel's table traffic.
	full, err := s.Encrypt(pts, 1)
	if err != nil {
		t.Fatal(err)
	}
	if smp.TotalTx >= full.TotalTx/2 {
		t.Errorf("shared kernel tx %d not well below global kernel %d", smp.TotalTx, full.TotalTx)
	}
}
