package aesgpu

import (
	"reflect"
	"testing"

	"rcoal/internal/gpusim"
	"rcoal/internal/kernels"
	"rcoal/internal/mechanism"
)

// TestForkedCollectMatchesVanillaCollect is the server-level
// differential: ForkedCollect across a policy set must be
// byte-identical to running a fresh per-policy Server.Collect — the
// exact comparison the experiments layer relies on when swapping in
// the forked path.
func TestForkedCollectMatchesVanillaCollect(t *testing.T) {
	key := []byte("fork-test-key-16")
	cfg := gpusim.DefaultConfig()
	cfg.VulnerableRounds = []int{10}
	policies := []mechanism.Mechanism{
		mechanism.Baseline(),
		mechanism.FSS(4),
		mechanism.FSSRTS(8),
		mechanism.RSS(2),
		mechanism.RSSRTS(8),
		mechanism.RSSNormal(4, 1.5),
	}
	const nSamples, linesPer = 3, 32
	const seed = 1234

	want := make([]*Dataset, len(policies))
	for i, p := range policies {
		vcfg := cfg
		vcfg.Defense = p
		srv, err := NewServer(vcfg, key)
		if err != nil {
			t.Fatal(err)
		}
		if want[i], err = srv.Collect(nSamples, linesPer, seed); err != nil {
			t.Fatal(err)
		}
	}

	for _, tc := range []*kernels.TraceCache{nil, kernels.NewTraceCache()} {
		got, err := ForkedCollect(cfg, key, policies, nSamples, linesPer, seed, tc)
		if err != nil {
			t.Fatalf("ForkedCollect (cache=%v): %v", tc != nil, err)
		}
		if len(got) != len(want) {
			t.Fatalf("got %d datasets, want %d", len(got), len(want))
		}
		for i := range want {
			if !reflect.DeepEqual(got[i], want[i]) {
				t.Fatalf("cache=%v: dataset %d (%s) differs from vanilla Collect",
					tc != nil, i, policies[i].Name())
			}
		}
		if tc != nil {
			// One trace build per sample, shared across all policies'
			// prefix+forks; the cache proves it saw repeat traffic.
			if st := tc.Stats(); st.Misses != nSamples {
				t.Errorf("trace cache misses = %d, want %d", st.Misses, nSamples)
			}
		}
	}
}

// TestCachedServerMatchesUncached checks the trace-cache hook on the
// serving path: a server with a cache installed returns byte-identical
// datasets, encrypting and decrypting.
func TestCachedServerMatchesUncached(t *testing.T) {
	key := []byte("cache-test-key16")
	cfg := gpusim.DefaultConfig()
	cfg.Defense = mechanism.RSSRTS(8)

	plain, err := NewServer(cfg, key)
	if err != nil {
		t.Fatal(err)
	}
	cached, err := NewServer(cfg, key)
	if err != nil {
		t.Fatal(err)
	}
	tc := kernels.NewTraceCache()
	cached.SetTraceCache(tc)

	want, err := plain.Collect(4, 32, 99)
	if err != nil {
		t.Fatal(err)
	}
	got, err := cached.Collect(4, 32, 99)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatal("cached Collect differs from uncached")
	}
	// Same stream again: all hits, same bytes.
	again, err := cached.Collect(4, 32, 99)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, again) {
		t.Fatal("repeat cached Collect differs")
	}
	if st := tc.Stats(); st.Hits != 4 || st.Misses != 4 {
		t.Fatalf("cache stats = %+v, want 4 hits / 4 misses", st)
	}

	// Decrypt path.
	lines := want.Samples[0].Ciphertexts
	wantDec, err := plain.Decrypt(lines, 7)
	if err != nil {
		t.Fatal(err)
	}
	gotDec, err := cached.Decrypt(lines, 7)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(wantDec, gotDec) {
		t.Fatal("cached Decrypt differs from uncached")
	}
}
