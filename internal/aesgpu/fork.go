package aesgpu

import (
	"fmt"

	"rcoal/internal/aes"
	"rcoal/internal/gpusim"
	"rcoal/internal/kernels"
	"rcoal/internal/mechanism"
	"rcoal/internal/rng"
)

// ForkedCollect is the prefix-forked counterpart of running
// Server.Collect once per defense mechanism: it gathers nSamples
// encryption samples under EACH of the given mechanisms, simulating
// the mechanism-independent prefix of every sample once and forking it
// per mechanism. cfg carries the shared GPU configuration; its Defense
// field is ignored (each mechanism supplies it) and its
// VulnerableRounds must be non-empty — forking only accelerates
// selective RCoal, where the prefix provably cannot depend on the
// mechanism. Every mechanism must be plan-only (gpusim's forkable()
// rejects per-request hooks and the coalescer bypass).
//
// The returned datasets are ordered like mechs, and each is
// byte-identical to what a per-mechanism Server.Collect with the same
// (nSamples, linesPer, seed) would produce — the contract
// fork_test.go here and internal/equiv enforce. tc, when non-nil,
// additionally memoizes trace construction.
func ForkedCollect(cfg gpusim.Config, key []byte, mechs []mechanism.Mechanism, nSamples, linesPer int, seed uint64, tc *kernels.TraceCache) ([]*Dataset, error) {
	if nSamples <= 0 || linesPer <= 0 {
		return nil, fmt.Errorf("aesgpu: need positive samples (%d) and lines (%d)", nSamples, linesPer)
	}
	if len(mechs) == 0 {
		return nil, fmt.Errorf("aesgpu: no mechanisms to fork")
	}
	cipher, err := aes.NewCipher(key)
	if err != nil {
		return nil, err
	}

	prefixCfg := cfg
	prefixCfg.Defense = mechanism.Baseline()
	prefixGPU, err := gpusim.New(prefixCfg)
	if err != nil {
		return nil, err
	}
	forkGPUs := make([]*gpusim.GPU, len(mechs))
	for i, m := range mechs {
		forkCfg := cfg
		forkCfg.Defense = m
		if forkGPUs[i], err = gpusim.New(forkCfg); err != nil {
			return nil, err
		}
	}

	build := func(lines []kernels.Line) (*gpusim.Kernel, []kernels.Line, error) {
		if tc != nil {
			return tc.Build(cipher, lines)
		}
		return kernels.Build(cipher, lines)
	}

	// Mirror Collect exactly: same plaintext stream, same per-sample
	// hardware seed derivation.
	ptRNG := rng.New(seed).Split(1)
	last := cipher.Rounds()
	out := make([]*Dataset, len(mechs))
	for i := range out {
		out[i] = &Dataset{}
	}
	for n := 0; n < nSamples; n++ {
		lines := kernels.RandomPlaintext(ptRNG, linesPer)
		kernel, cts, err := build(lines)
		if err != nil {
			return nil, err
		}
		hwSeed := seed ^ uint64(n+1)*0x9e3779b97f4a7c15
		snap, err := prefixGPU.RunPrefix(kernel, hwSeed)
		if err != nil {
			return nil, err
		}
		for i := range mechs {
			res, err := forkGPUs[i].RunFork(snap)
			if err != nil {
				return nil, err
			}
			out[i].Plaintexts = append(out[i].Plaintexts, lines)
			out[i].Samples = append(out[i].Samples, newSample(last, cts, res, forkGPUs[i].Config()))
		}
	}
	return out, nil
}
