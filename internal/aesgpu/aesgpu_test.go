package aesgpu

import (
	"testing"

	"rcoal/internal/gpusim"
	"rcoal/internal/kernels"
	"rcoal/internal/mechanism"
	"rcoal/internal/rng"
	"rcoal/internal/stats"
)

var testKey = []byte("very secret key!")

func newTestServer(t *testing.T, cfg gpusim.Config) *Server {
	t.Helper()
	s, err := NewServer(cfg, testKey)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewServerRejectsBadInput(t *testing.T) {
	if _, err := NewServer(gpusim.DefaultConfig(), []byte("short")); err == nil {
		t.Error("bad key accepted")
	}
	bad := gpusim.DefaultConfig()
	bad.NumSMs = 0
	if _, err := NewServer(bad, testKey); err == nil {
		t.Error("bad config accepted")
	}
}

func TestEncryptReturnsCorrectCiphertext(t *testing.T) {
	s := newTestServer(t, gpusim.DefaultConfig())
	lines := kernels.RandomPlaintext(rng.New(1), 32)
	sample, err := s.Encrypt(lines, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(sample.Ciphertexts) != 32 {
		t.Fatalf("%d ciphertexts", len(sample.Ciphertexts))
	}
	if sample.TotalCycles <= 0 || sample.LastRoundCycles <= 0 {
		t.Errorf("timing: total %d, last round %d", sample.TotalCycles, sample.LastRoundCycles)
	}
	if sample.LastRoundCycles >= sample.TotalCycles {
		t.Errorf("last round (%d) not inside total (%d)", sample.LastRoundCycles, sample.TotalCycles)
	}
	if sample.LastRoundTx == 0 || sample.TotalTx <= sample.LastRoundTx {
		t.Errorf("tx accounting: last %d, total %d", sample.LastRoundTx, sample.TotalTx)
	}
}

func TestCollectShapes(t *testing.T) {
	s := newTestServer(t, gpusim.DefaultConfig())
	ds, err := s.Collect(5, 32, 42)
	if err != nil {
		t.Fatal(err)
	}
	if len(ds.Samples) != 5 || len(ds.Plaintexts) != 5 {
		t.Fatalf("dataset shape: %d samples, %d plaintexts", len(ds.Samples), len(ds.Plaintexts))
	}
	if len(ds.LastRoundTimes()) != 5 || len(ds.TotalTimes()) != 5 || len(ds.ObservedLastRoundTx()) != 5 {
		t.Fatal("vector lengths wrong")
	}
	if _, err := s.Collect(0, 32, 1); err == nil {
		t.Error("zero samples accepted")
	}
}

func TestFigure5TimingProportionality(t *testing.T) {
	// Figure 5: last-round time and total time both correlate strongly
	// with last-round coalesced accesses. This is the keystone of the
	// whole attack.
	s := newTestServer(t, gpusim.DefaultConfig())
	ds, err := s.Collect(40, 32, 99)
	if err != nil {
		t.Fatal(err)
	}
	tx := ds.ObservedLastRoundTx()
	if v := stats.Variance(tx); v == 0 {
		t.Fatal("no variance in last-round accesses; cannot test correlation")
	}
	rLast := stats.MustPearson(tx, ds.LastRoundTimes())
	if rLast < 0.8 {
		t.Errorf("last-round time vs accesses: rho = %v, want > 0.8", rLast)
	}
	// Total time also correlates, but weakly: the other nine rounds
	// contribute independent access-count noise (ideal dilution is
	// ~1/sqrt(10) ≈ 0.32). This is exactly why the paper grants the
	// attacker last-round timing for the strong attack.
	rTotal := stats.MustPearson(tx, ds.TotalTimes())
	if rTotal < 0.1 {
		t.Errorf("total time vs last-round accesses: rho = %v, want > 0.1", rTotal)
	}
	if rTotal >= rLast {
		t.Errorf("total-time rho %v should be below last-round rho %v", rTotal, rLast)
	}
}

func TestLastRoundKeyMatchesAES(t *testing.T) {
	s := newTestServer(t, gpusim.DefaultConfig())
	lrk := s.LastRoundKey()
	if s.LastRound() != 10 {
		t.Errorf("LastRound = %d, want 10", s.LastRound())
	}
	zero := [16]byte{}
	if lrk == zero {
		t.Error("last round key is zero")
	}
}

func TestDefendedServerStillCorrect(t *testing.T) {
	// Functional correctness is defense-independent: RSS+RTS changes
	// timing, never ciphertexts.
	cfg := gpusim.DefaultConfig()
	cfg.Defense = mechanism.RSSRTS(8)
	def := newTestServer(t, cfg)
	base := newTestServer(t, gpusim.DefaultConfig())
	lines := kernels.RandomPlaintext(rng.New(3), 32)
	a, err := def.Encrypt(lines, 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := base.Encrypt(lines, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Ciphertexts {
		if a.Ciphertexts[i] != b.Ciphertexts[i] {
			t.Fatal("defense changed ciphertext")
		}
	}
	if a.TotalTx <= b.TotalTx {
		t.Errorf("RSS+RTS(8) tx %d not above baseline %d", a.TotalTx, b.TotalTx)
	}
}

func TestSeedVariesDefendedTiming(t *testing.T) {
	cfg := gpusim.DefaultConfig()
	cfg.Defense = mechanism.RSSRTS(4)
	s := newTestServer(t, cfg)
	lines := kernels.RandomPlaintext(rng.New(5), 32)
	seen := map[uint64]bool{}
	for seed := uint64(1); seed <= 8; seed++ {
		smp, err := s.Encrypt(lines, seed)
		if err != nil {
			t.Fatal(err)
		}
		seen[smp.LastRoundTx] = true
	}
	if len(seen) < 2 {
		t.Error("RSS+RTS produced identical access counts across seeds")
	}
}

func TestAES256ServerFourteenRounds(t *testing.T) {
	// The kernel builder and timing statistics generalize to AES-256's
	// 14 rounds; the last-round channel exists there too.
	key := make([]byte, 32)
	for i := range key {
		key[i] = byte(i * 11)
	}
	s, err := NewServer(gpusim.DefaultConfig(), key)
	if err != nil {
		t.Fatal(err)
	}
	if s.LastRound() != 14 {
		t.Fatalf("LastRound = %d, want 14", s.LastRound())
	}
	smp, err := s.Encrypt(kernels.RandomPlaintext(rng.New(61), 32), 1)
	if err != nil {
		t.Fatal(err)
	}
	if smp.LastRoundTx == 0 || smp.LastRoundCycles <= 0 {
		t.Errorf("AES-256 last-round stats empty: %+v", smp)
	}
	// 14 rounds of 16 lookups cost ~40% more than AES-128.
	s128, _ := NewServer(gpusim.DefaultConfig(), key[:16])
	smp128, err := s128.Encrypt(kernels.RandomPlaintext(rng.New(61), 32), 1)
	if err != nil {
		t.Fatal(err)
	}
	if smp.TotalTx <= smp128.TotalTx {
		t.Errorf("AES-256 tx %d not above AES-128 %d", smp.TotalTx, smp128.TotalTx)
	}
}
