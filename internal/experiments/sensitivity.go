package experiments

import (
	"context"
	"fmt"
	"strings"

	"rcoal/internal/report"
	"rcoal/internal/theory"
)

func init() {
	Registry["ext-sensitivity"] = func(o Options) (Result, error) { return ExtSensitivity(o) }
}

// ExtSensitivityRow is one (N, R, M) analytical point.
type ExtSensitivityRow struct {
	N, R, M              int
	RhoFSSRTS, RhoRSSRTS float64
}

// ExtSensitivityResult sweeps the analytical model over the
// architectural parameters the paper fixes: R (memory blocks per
// table — i.e. cache-line size vs table layout) and N (threads per
// warp). It answers questions the paper leaves open: how would RCoal's
// security change on a GPU with 128-byte lines (R = 8), sectored
// 32-byte fetches (R = 32), or 64-wide wavefronts (N = 64)?
type ExtSensitivityResult struct {
	Rows []ExtSensitivityRow
}

// ExtSensitivity evaluates the model across parameter variants. Each
// variant's combinatorics build independently on the worker pool; rows
// are flattened in variant order, identical at any worker count.
func ExtSensitivity(o Options) (*ExtSensitivityResult, error) {
	if err := o.validate(); err != nil {
		return nil, err
	}
	variants := []struct{ n, r int }{
		{32, 8},  // 128-byte lines: 8 blocks per table
		{32, 16}, // the paper's configuration
		{32, 32}, // 32-byte sectors: 32 blocks per table
		{64, 16}, // 64-wide wavefronts (AMD-style)
	}
	rows, err := runCells(o, variants,
		func(_ int, v struct{ n, r int }) string { return fmt.Sprintf("n%d-r%d", v.n, v.r) },
		func(_ context.Context, _ int, v struct{ n, r int }) ([]ExtSensitivityRow, error) {
			md, err := theory.NewModel(v.n, v.r)
			if err != nil {
				return nil, err
			}
			var out []ExtSensitivityRow
			for _, m := range []int{2, 4, 8} {
				out = append(out, ExtSensitivityRow{
					N: v.n, R: v.r, M: m,
					RhoFSSRTS: md.RhoFSSRTS(m),
					RhoRSSRTS: md.RhoRSSRTS(m),
				})
			}
			return out, nil
		})
	if err != nil {
		return nil, err
	}
	res := &ExtSensitivityResult{}
	for _, rs := range rows {
		res.Rows = append(res.Rows, rs...)
	}
	return res, nil
}

// Row returns the (n, r, m) row, or nil.
func (r *ExtSensitivityResult) Row(n, rr, m int) *ExtSensitivityRow {
	for i := range r.Rows {
		if r.Rows[i].N == n && r.Rows[i].R == rr && r.Rows[i].M == m {
			return &r.Rows[i]
		}
	}
	return nil
}

// Render implements Result.
func (r *ExtSensitivityResult) Render() string {
	var b strings.Builder
	b.WriteString("Extension: analytical sensitivity to architecture (N threads, R blocks/table)\n\n")
	t := &report.Table{Headers: []string{"N", "R", "M", "rho FSS+RTS", "rho RSS+RTS",
		"S FSS+RTS", "S RSS+RTS"}}
	for _, row := range r.Rows {
		t.AddRow(row.N, row.R, row.M,
			report.FormatFloat(row.RhoFSSRTS, 4), report.FormatFloat(row.RhoRSSRTS, 4),
			fmt.Sprintf("%.0f", 1/(row.RhoFSSRTS*row.RhoFSSRTS)),
			fmt.Sprintf("%.0f", 1/(row.RhoRSSRTS*row.RhoRSSRTS)))
	}
	b.WriteString(t.String())
	b.WriteString("\nFinding: coarser fetch granularity (smaller R) and wider warps (larger\n" +
		"N) both STRENGTHEN RCoal — with fewer blocks per table the access counts\n" +
		"saturate and carry less per-byte signal, and wider warps give the\n" +
		"randomization more thread entropy. Finer sectoring (R = 32) weakens it.\n")
	return b.String()
}

// CSV implements CSVer.
func (r *ExtSensitivityResult) CSV() string {
	var b strings.Builder
	b.WriteString("n,r,m,rho_fss_rts,rho_rss_rts\n")
	for _, row := range r.Rows {
		b.WriteString(csvJoin(row.N, row.R, row.M, row.RhoFSSRTS, row.RhoRSSRTS))
		b.WriteByte('\n')
	}
	return b.String()
}
