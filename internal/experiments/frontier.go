package experiments

import (
	"context"
	"fmt"
	"strings"

	"rcoal/internal/attack"
	"rcoal/internal/mechanism"
	"rcoal/internal/report"
)

// This file implements the defense-frontier experiment: every defense
// in the mechanism registry — the paper's subwarp mechanisms, the
// obfuscation defenses of Karimi et al. (randomized delay injection,
// access-pattern shuffling), and the Section III no-coalescing
// strawman — is swept through the correlation timing attack and the
// performance/energy accounting, producing the three-axis
// security/performance/energy frontier the paper's Figure 15-17
// comparison implies but never draws across defense *families*.

func init() {
	Registry["ext-defense-frontier"] = func(o Options) (Result, error) { return DefenseFrontier(o) }
}

// FrontierCell is one defense's point on the frontier.
type FrontierCell struct {
	// Name is the mechanism's display name, Spec its canonical parse
	// spec (ParseMechanism(Spec) reconstructs the mechanism).
	Name string
	Spec string
	// AvgCorrectCorr is the corresponding attack's average correct-byte
	// correlation against last-round time — the security axis (lower is
	// safer). For mechanisms that leave the subwarp plan whole-warp
	// (delay, shuffle, nocoal) the corresponding attack degenerates to
	// the baseline attack of Jiang et al.
	AvgCorrectCorr float64
	// MeanCycles / MeanTx / MeanEnergy are per-encryption averages;
	// energy is in picojoules under the default GPUWattch-style model.
	MeanCycles float64
	MeanTx     float64
	MeanEnergy float64
	// NormCycles / NormTx / NormEnergy are normalized to the baseline
	// cell.
	NormCycles float64
	NormTx     float64
	NormEnergy float64
}

// FrontierResult is the security/performance/energy frontier over the
// registered defense zoo.
type FrontierResult struct {
	Samples int
	Rows    []FrontierCell // baseline first, then registry order
}

// Cell returns the row with the given canonical spec, or nil.
func (r *FrontierResult) Cell(spec string) *FrontierCell {
	for i := range r.Rows {
		if r.Rows[i].Spec == spec {
			return &r.Rows[i]
		}
	}
	return nil
}

// frontierSpecs resolves the experiment's defense grid: the explicit
// Options.Mechanisms filter when given, otherwise every registered
// mechanism's example specs. The baseline is always included (it is
// the normalization reference) and always first. Specs are canonical:
// each parses, and parsing then re-speccing is the identity.
func frontierSpecs(o Options) ([]string, error) {
	specs := o.Mechanisms
	if len(specs) == 0 {
		specs = mechanism.FrontierSpecs()
	}
	out := []string{"baseline"}
	seen := map[string]bool{"baseline": true}
	for _, s := range specs {
		m, err := mechanism.Parse(s)
		if err != nil {
			return nil, fmt.Errorf("experiments: frontier: %w", err)
		}
		canon := m.Spec()
		if seen[canon] {
			continue
		}
		seen[canon] = true
		out = append(out, canon)
	}
	return out, nil
}

// DefenseFrontier sweeps every selected defense through the
// correlation attack and the performance/energy accounting. Cells fan
// out over Options.Workers (or Options.Exec) exactly like the other
// grid experiments: each cell re-parses its own spec and derives all
// randomness from (o.Seed, spec), so results are byte-identical at any
// worker count and across distributed executors, and cells journal,
// cache, and resume through the usual checkpoint machinery.
func DefenseFrontier(o Options) (*FrontierResult, error) {
	if err := o.validate(); err != nil {
		return nil, err
	}
	specs, err := frontierSpecs(o)
	if err != nil {
		return nil, err
	}

	// Exported fields: cells round-trip through the checkpoint journal
	// as JSON when Options.Journal is attached.
	type out struct{ Cell FrontierCell }
	outs, err := runCells(o, specs,
		func(_ int, spec string) string { return spec },
		func(_ context.Context, _ int, spec string) (out, error) {
			// Parse inside the cell: cells must be self-contained so a
			// distributed worker can run them from the key alone.
			mech, err := mechanism.Parse(spec)
			if err != nil {
				return out{}, err
			}
			srv, ds, err := collect(o, mech)
			if err != nil {
				return out{}, err
			}
			cell := FrontierCell{Name: mech.Name(), Spec: mech.Spec()}
			for _, s := range ds.Samples {
				cell.MeanCycles += float64(s.TotalCycles)
				cell.MeanTx += float64(s.TotalTx)
				cell.MeanEnergy += s.Energy
			}
			n := float64(len(ds.Samples))
			cell.MeanCycles /= n
			cell.MeanTx /= n
			cell.MeanEnergy /= n

			atk, err := attack.New(mech, o.Seed^0x5EC)
			if err != nil {
				return out{}, err
			}
			// The grid saturates the pool, so the per-key-byte loop
			// inside each cell stays serial (workers = 1).
			cell.AvgCorrectCorr, err = avgCorrectCorrelation(
				atk, ciphertexts(ds), ds.LastRoundTimes(), srv.LastRoundKey(), 1)
			if err != nil {
				return out{}, err
			}
			return out{Cell: cell}, nil
		})
	if err != nil {
		return nil, err
	}

	res := &FrontierResult{Samples: o.Samples}
	base := outs[0].Cell // specs[0] is always "baseline"
	for _, ot := range outs {
		cell := ot.Cell
		cell.NormCycles = cell.MeanCycles / base.MeanCycles
		cell.NormTx = cell.MeanTx / base.MeanTx
		cell.NormEnergy = cell.MeanEnergy / base.MeanEnergy
		res.Rows = append(res.Rows, cell)
	}
	return res, nil
}

// Render implements Result.
func (r *FrontierResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Extension: defense frontier — every registered mechanism through the\n"+
		"correlation attack (%d samples; cycles/tx/energy normalized to baseline)\n\n", r.Samples)
	t := &report.Table{Headers: []string{"defense", "spec", "attack corr", "time (x)", "tx (x)", "energy (x)"}}
	for _, c := range r.Rows {
		t.AddRow(c.Name, c.Spec, c.AvgCorrectCorr,
			fmt.Sprintf("%.2f", c.NormCycles), fmt.Sprintf("%.2f", c.NormTx), fmt.Sprintf("%.2f", c.NormEnergy))
	}
	b.WriteString(t.String())
	b.WriteString("\nReading the frontier: a defense dominates when it sits lower (attack\n" +
		"corr) AND further left (time/energy). Delay injection hides timing\n" +
		"without touching data movement; shuffling perturbs DRAM order only;\n" +
		"disabling coalescing pays the worst energy bill (the paper's §III\n" +
		"argument); subwarp randomization trades the axes smoothly via M.\n")
	return b.String()
}

// CSV implements CSVer: one row per defense with all three axes.
func (r *FrontierResult) CSV() string {
	var b strings.Builder
	b.WriteString("mechanism,spec,avg_correct_corr,mean_cycles,norm_cycles,mean_tx,norm_tx,energy_pj,norm_energy\n")
	for _, c := range r.Rows {
		b.WriteString(csvJoin(c.Name, c.Spec, c.AvgCorrectCorr,
			c.MeanCycles, c.NormCycles, c.MeanTx, c.NormTx, c.MeanEnergy, c.NormEnergy))
		b.WriteByte('\n')
	}
	return b.String()
}
