package experiments

import (
	"fmt"
	"strings"

	"rcoal/internal/report"
)

func init() {
	Registry["fig15"] = func(o Options) (Result, error) { return Fig15(o) }
	Registry["fig16"] = func(o Options) (Result, error) { return Fig16(o) }
	Registry["fig17"] = func(o Options) (Result, error) { return Fig17(o) }
}

// Fig15Subwarps are the security-comparison num-subwarp points.
var Fig15Subwarps = []int{1, 2, 4, 8, 16}

// Fig16Subwarps extend the performance sweep to 32.
var Fig16Subwarps = []int{1, 2, 4, 8, 16, 32}

// Fig15Result compares the security of all four mechanisms: the
// average correct-byte correlation under each corresponding attack.
type Fig15Result struct{ Sweep *SweepResult }

// Fig15 runs the security comparison.
func Fig15(o Options) (*Fig15Result, error) {
	s, err := Sweep(o, Fig15Subwarps)
	if err != nil {
		return nil, err
	}
	return &Fig15Result{Sweep: s}, nil
}

// Render implements Result.
func (r *Fig15Result) Render() string {
	var b strings.Builder
	b.WriteString("Figure 15: security comparison (avg correct-byte correlation, corresponding attacks)\n\n")
	t := &report.Table{Headers: []string{"num-subwarp", "FSS", "FSS+RTS", "RSS", "RSS+RTS"}}
	for _, m := range r.Sweep.Ms {
		t.AddRow(m,
			r.Sweep.Cell(MechFSS, m).AvgCorrectCorr,
			r.Sweep.Cell(MechFSSRTS, m).AvgCorrectCorr,
			r.Sweep.Cell(MechRSS, m).AvgCorrectCorr,
			r.Sweep.Cell(MechRSSRTS, m).AvgCorrectCorr)
	}
	b.WriteString(t.String())
	b.WriteString("\nPaper: FSS stays highly correlated (insecure); the randomized mechanisms\n" +
		"drop sharply. RSS+RTS leads at num-subwarp 2-4, FSS+RTS at 8-16.\n")
	return b.String()
}

// Fig16Result compares performance and data movement of all
// mechanisms.
type Fig16Result struct{ Sweep *SweepResult }

// Fig16 runs the performance/data-movement comparison.
func Fig16(o Options) (*Fig16Result, error) {
	s, err := Sweep(o, Fig16Subwarps)
	if err != nil {
		return nil, err
	}
	return &Fig16Result{Sweep: s}, nil
}

// Render implements Result.
func (r *Fig16Result) Render() string {
	var b strings.Builder
	b.WriteString("Figure 16: performance and data movement (normalized to num-subwarp = 1)\n\n")
	t := &report.Table{Headers: []string{"num-subwarp",
		"FSS tx", "FSS+RTS tx", "RSS tx", "RSS+RTS tx",
		"FSS time", "FSS+RTS time", "RSS time", "RSS+RTS time"}}
	for _, m := range r.Sweep.Ms {
		t.AddRow(m,
			r.Sweep.Cell(MechFSS, m).NormTx,
			r.Sweep.Cell(MechFSSRTS, m).NormTx,
			r.Sweep.Cell(MechRSS, m).NormTx,
			r.Sweep.Cell(MechRSSRTS, m).NormTx,
			r.Sweep.Cell(MechFSS, m).NormCycles,
			r.Sweep.Cell(MechFSSRTS, m).NormCycles,
			r.Sweep.Cell(MechRSS, m).NormCycles,
			r.Sweep.Cell(MechRSSRTS, m).NormCycles)
	}
	b.WriteString(t.String())
	b.WriteString("\nPaper: accesses and time grow with num-subwarp; RTS is performance-\n" +
		"neutral; RSS-based mechanisms cost slightly less than FSS-based ones.\n")
	return b.String()
}

// Fig17Row is one RCoal_Score cell.
type Fig17Row struct {
	M int
	// SecurityScore / PerformanceScore are RCoal_Score with
	// (a=1, b=1) and (a=1, b=20) respectively, per mechanism.
	SecurityScore    map[Mechanism]float64
	PerformanceScore map[Mechanism]float64
}

// Fig17Result evaluates the RCoal_Score trade-off metric.
type Fig17Result struct {
	Rows  []Fig17Row
	Sweep *SweepResult
}

// Fig17 computes RCoal_Score for the security-oriented (a=1, b=1) and
// performance-oriented (a=1, b=20) designs.
func Fig17(o Options) (*Fig17Result, error) {
	s, err := Sweep(o, Fig15Subwarps)
	if err != nil {
		return nil, err
	}
	res := &Fig17Result{Sweep: s}
	for _, m := range s.Ms {
		row := Fig17Row{M: m,
			SecurityScore:    map[Mechanism]float64{},
			PerformanceScore: map[Mechanism]float64{},
		}
		for _, mech := range AllMechanisms {
			cell := s.Cell(mech, m)
			row.SecurityScore[mech] = RCoalScoreOf(cell, 1, 1)
			row.PerformanceScore[mech] = RCoalScoreOf(cell, 1, 20)
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Render implements Result.
func (r *Fig17Result) Render() string {
	var b strings.Builder
	b.WriteString("Figure 17: RCoal_Score trade-off (S^a / time^b)\n\n")
	for _, variant := range []struct {
		title string
		pick  func(Fig17Row) map[Mechanism]float64
	}{
		{"(a) security-oriented, a=1 b=1", func(r Fig17Row) map[Mechanism]float64 { return r.SecurityScore }},
		{"(b) performance-oriented, a=1 b=20", func(r Fig17Row) map[Mechanism]float64 { return r.PerformanceScore }},
	} {
		t := &report.Table{Title: variant.title,
			Headers: []string{"num-subwarp", "FSS", "FSS+RTS", "RSS", "RSS+RTS"}}
		for _, row := range r.Rows {
			sc := variant.pick(row)
			t.AddRow(row.M,
				fmt.Sprintf("%.3g", sc[MechFSS]),
				fmt.Sprintf("%.3g", sc[MechFSSRTS]),
				fmt.Sprintf("%.3g", sc[MechRSS]),
				fmt.Sprintf("%.3g", sc[MechRSSRTS]))
		}
		b.WriteString(t.String())
		b.WriteString("\n")
	}
	b.WriteString("Paper: FSS+RTS wins the security-oriented design at num-subwarp 8-16;\n" +
		"RSS+RTS overtakes it in the performance-oriented design.\n")
	return b.String()
}
