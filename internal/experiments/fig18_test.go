package experiments

import (
	"math"
	"testing"
)

func TestFig18CaseStudy(t *testing.T) {
	if testing.Short() {
		t.Skip("1024-line case study is slow; run without -short")
	}
	o := testOptions()
	o.Samples = 6
	r, err := Fig18(o)
	if err != nil {
		t.Fatal(err)
	}
	if r.Lines != 1024 {
		t.Fatalf("lines = %d", r.Lines)
	}
	if len(r.Cells) != len(AllMechanisms)*len(Fig18Subwarps) {
		t.Fatalf("%d cells", len(r.Cells))
	}
	for _, mech := range AllMechanisms {
		// Execution time grows with num-subwarp (18b).
		prev := 0.0
		for _, m := range Fig18Subwarps {
			c := r.Cell(mech, m)
			if c.NormCycles <= prev {
				t.Errorf("%s M=%d: time %v not increasing", mech, m, c.NormCycles)
			}
			prev = c.NormCycles
		}
		// The FSS attack reconstructs FSS access counts exactly; the
		// randomized mechanisms cannot be reconstructed exactly.
		for _, m := range Fig18Subwarps {
			c := r.Cell(mech, m)
			if mech == MechFSS || m == 1 {
				if math.Abs(c.FullKeyCorr-1) > 1e-9 {
					t.Errorf("%s M=%d: full-key corr %v, want exactly 1", mech, m, c.FullKeyCorr)
				}
			} else if c.FullKeyCorr > 0.9 {
				t.Errorf("%s M=%d: full-key corr %v too high for a randomized mechanism", mech, m, c.FullKeyCorr)
			}
		}
	}
	// Paper's headline range: RSS+RTS costs 29-76% at M = 2..8 for 1024
	// lines; shape check — overhead within a sane band.
	for _, m := range []int{2, 4, 8} {
		c := r.Cell(MechRSSRTS, m)
		if c.NormCycles < 1.05 || c.NormCycles > 3 {
			t.Errorf("RSS+RTS M=%d: overhead %vx outside plausible band", m, c.NormCycles)
		}
	}
}
