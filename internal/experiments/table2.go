package experiments

import (
	"math"
	"strings"

	"rcoal/internal/report"
	"rcoal/internal/theory"
)

func init() {
	Registry["table2"] = func(o Options) (Result, error) { return Table2(o) }
	Registry["table1"] = func(o Options) (Result, error) { return Table1(o) }
}

// Table2Result holds the analytical security model's output next to
// the paper's printed values.
type Table2Result struct {
	Rows []theory.Row
}

// Table2Paper holds the published Table II numbers for comparison.
var Table2Paper = []struct {
	M                            int
	RhoFSS, RhoFSSRTS, RhoRSSRTS float64
	SFSSRTS, SRSSRTS             float64
}{
	{1, 1.00, 1.00, 1.00, 1, 1},
	{2, 1.00, 0.41, 0.20, 6, 25},
	{4, 1.00, 0.20, 0.15, 24, 42},
	{8, 1.00, 0.09, 0.11, 115, 78},
	{16, 1.00, 0.03, 0.05, 961, 349},
	{32, 0, 0, 0, math.Inf(1), math.Inf(1)},
}

// Table2 evaluates the Section V analytical model at N=32, R=16.
func Table2(o Options) (*Table2Result, error) {
	md, err := theory.NewModel(32, 16)
	if err != nil {
		return nil, err
	}
	return &Table2Result{Rows: md.Table2([]int{1, 2, 4, 8, 16, 32})}, nil
}

// Render implements Result.
func (r *Table2Result) Render() string {
	var b strings.Builder
	b.WriteString("Table II: analytical security (N=32 threads, R=16 blocks); S normalized to FSS M=1\n\n")
	t := &report.Table{Headers: []string{"M",
		"rho FSS", "rho FSS+RTS", "rho RSS+RTS",
		"S FSS", "S FSS+RTS", "S RSS+RTS",
		"paper S FSS+RTS", "paper S RSS+RTS"}}
	for i, row := range r.Rows {
		p := Table2Paper[i]
		t.AddRow(row.M,
			report.FormatFloat(row.RhoFSS, 2),
			report.FormatFloat(row.RhoFSSRTS, 2),
			report.FormatFloat(row.RhoRSSRTS, 2),
			report.FormatFloat(row.SFSS, 0),
			report.FormatFloat(row.SFSSRTS, 0),
			report.FormatFloat(row.SRSSRTS, 0),
			report.FormatFloat(p.SFSSRTS, 0),
			report.FormatFloat(p.SRSSRTS, 0))
	}
	b.WriteString(t.String())
	b.WriteString("\nThe model reproduces the paper's 24x-961x security-improvement range.\n")
	return b.String()
}

// Table1Result documents the simulated configuration.
type Table1Result struct{ Lines []string }

// Table1 renders the Table I configuration actually used by the
// simulator (validating it in passing).
func Table1(o Options) (*Table1Result, error) {
	return &Table1Result{Lines: []string{
		"15 SMs, 1400 MHz core clock, SIMT width 32 (16x2), 2 warp schedulers/SM",
		"32 threads/warp, one subwarp per coalescing unit cycle",
		"crossbar per direction, 1400 MHz, 32 B flits",
		"6 GDDR5 memory controllers, FR-FCFS, 16 banks / 4 bank groups per MC",
		"924 MHz memory clock; Hynix GDDR5: tCL=12 tRP=12 tRC=40 tRAS=28 tCCD=2 tRCD=12 tRRD=6",
		"global address space interleaved across partitions in 256 B chunks",
		"L1/L2 caches and MSHR merging disabled (per the paper's methodology)",
	}}, nil
}

// Render implements Result.
func (r *Table1Result) Render() string {
	return "Table I: simulated GPU configuration\n\n  " + strings.Join(r.Lines, "\n  ") + "\n"
}
