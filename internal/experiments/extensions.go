package experiments

import (
	"fmt"
	"strings"

	"rcoal/internal/aesgpu"
	"rcoal/internal/attack"
	"rcoal/internal/core"
	"rcoal/internal/gpusim"
	"rcoal/internal/mechanism"
	"rcoal/internal/report"
	"rcoal/internal/rng"
	"rcoal/internal/stats"
)

// This file goes beyond the paper's evaluation: the two §VII future-
// work directions (selective RCoal; randomization across the memory
// hierarchy) and ablations of this reproduction's design choices
// (cache/MSHR substrate, scheduler policy, plan granularity, RSS size
// distribution).

func init() {
	Registry["ext-selective"] = func(o Options) (Result, error) { return ExtSelective(o) }
	Registry["ext-hierarchy"] = func(o Options) (Result, error) { return ExtHierarchy(o) }
	Registry["ext-inferm"] = func(o Options) (Result, error) { return ExtInferM(o) }
	Registry["ext-scheduler"] = func(o Options) (Result, error) { return ExtScheduler(o) }
	Registry["ext-planperwarp"] = func(o Options) (Result, error) { return ExtPlanPerWarp(o) }
	Registry["ext-rssdist"] = func(o Options) (Result, error) { return ExtRSSDist(o) }
}

// collectCfg is like collect but takes a fully specified GPU config.
func collectCfg(o Options, cfg gpusim.Config) (*aesgpu.Server, *aesgpu.Dataset, error) {
	if err := o.validate(); err != nil {
		return nil, nil, err
	}
	srv, err := aesgpu.NewServer(cfg, o.Key)
	if err != nil {
		return nil, nil, err
	}
	srv.SetTraceCache(o.TraceCache)
	ds, err := srv.Collect(o.Samples, o.Lines, o.Seed)
	if err != nil {
		return nil, nil, err
	}
	return srv, ds, nil
}

// --- ext-selective: future work #1 -------------------------------------------

// ExtSelectiveRow is one configuration of the selective-RCoal study.
type ExtSelectiveRow struct {
	Label string
	// NormCycles is execution time normalized to the undefended
	// baseline.
	NormCycles float64
	// LastRoundCorr is the corresponding attack's full-key estimate
	// correlation against observed last-round accesses (1 = channel
	// intact, ≈0 = closed).
	LastRoundCorr float64
}

// ExtSelectiveResult evaluates selective RCoal (§VII future work #1):
// randomizing only the vulnerable last round should keep the last
// round's protection while recovering most of the performance.
type ExtSelectiveResult struct {
	Rows []ExtSelectiveRow
}

// ExtSelective compares undefended, full-RCoal, and selective-RCoal
// configurations.
func ExtSelective(o Options) (*ExtSelectiveResult, error) {
	policy := mechanism.RSSRTS(8)
	configs := []struct {
		label string
		mut   func(*gpusim.Config)
	}{
		{"baseline (no defense)", func(c *gpusim.Config) {}},
		{"full RCoal RSS+RTS(8)", func(c *gpusim.Config) { c.Defense = policy }},
		{"selective: round 10 only", func(c *gpusim.Config) {
			c.Defense = policy
			c.VulnerableRounds = []int{10}
		}},
		{"selective: rounds 1+10", func(c *gpusim.Config) {
			c.Defense = policy
			c.VulnerableRounds = []int{1, 10}
		}},
	}
	res := &ExtSelectiveResult{}
	baseCycles := 0.0
	for i, cc := range configs {
		cfg := o.gpuConfig()
		cc.mut(&cfg)
		srv, ds, err := collectCfg(o, cfg)
		if err != nil {
			return nil, err
		}
		mean := 0.0
		for _, s := range ds.Samples {
			mean += float64(s.TotalCycles)
		}
		mean /= float64(len(ds.Samples))
		if i == 0 {
			baseCycles = mean
		}

		atk, err := attack.New(cfg.Defense, o.Seed^0x5E1)
		if err != nil {
			return nil, err
		}
		corr, err := fullKeyEstimateCorrelation(atk, ciphertexts(ds), ds.ObservedLastRoundTx(), srv.LastRoundKey(), o.Workers)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, ExtSelectiveRow{
			Label:         cc.label,
			NormCycles:    mean / baseCycles,
			LastRoundCorr: corr,
		})
	}
	return res, nil
}

// Render implements Result.
func (r *ExtSelectiveResult) Render() string {
	var b strings.Builder
	b.WriteString("Extension (paper §VII future work #1): selective RCoal\n\n")
	t := &report.Table{Headers: []string{"configuration", "time (x baseline)", "last-round channel corr"}}
	for _, row := range r.Rows {
		t.AddRow(row.Label, row.NormCycles, row.LastRoundCorr)
	}
	b.WriteString(t.String())
	b.WriteString("\nRandomizing only the vulnerable round keeps the last-round channel closed\n" +
		"while recovering most of the full-RCoal slowdown.\n")
	return b.String()
}

// --- ext-hierarchy: substrate ablation + future work #2 ----------------------

// ExtHierarchyRow is one memory-hierarchy configuration.
type ExtHierarchyRow struct {
	Label string
	// NormCycles is execution time normalized to the paper baseline
	// (no caches, no MSHR).
	NormCycles float64
	// DRAMAccesses is the mean DRAM traffic per encryption.
	DRAMAccesses float64
	// ChannelCorr is ρ(true last-round accesses, last-round time): how
	// much of the timing channel survives this hierarchy.
	ChannelCorr float64
}

// ExtHierarchyResult quantifies how the cache hierarchy and MSHR
// merging — which the paper disables — interact with the timing
// channel, including the future-work randomized cache indexing.
type ExtHierarchyResult struct {
	Rows []ExtHierarchyRow
}

// ExtHierarchy sweeps memory-hierarchy configurations under baseline
// coalescing.
func ExtHierarchy(o Options) (*ExtHierarchyResult, error) {
	configs := []struct {
		label string
		mut   func(*gpusim.Config)
	}{
		{"paper baseline (no caches)", func(c *gpusim.Config) {}},
		{"+MSHR merging", func(c *gpusim.Config) { c.MSHREnabled = true }},
		{"+L2", func(c *gpusim.Config) { c.L2Enabled = true; c.L2 = gpusim.DefaultL2() }},
		{"+L1+L2", func(c *gpusim.Config) {
			c.L1Enabled = true
			c.L1 = gpusim.DefaultL1()
			c.L2Enabled = true
			c.L2 = gpusim.DefaultL2()
		}},
		{"+L1+L2, randomized index", func(c *gpusim.Config) {
			c.L1Enabled = true
			c.L1 = gpusim.DefaultL1()
			c.L2Enabled = true
			c.L2 = gpusim.DefaultL2()
			c.CacheRandomized = true
		}},
	}
	res := &ExtHierarchyResult{}
	baseCycles := 0.0
	for i, cc := range configs {
		cfg := o.gpuConfig()
		cc.mut(&cfg)
		_, ds, err := collectCfg(o, cfg)
		if err != nil {
			return nil, err
		}
		row := ExtHierarchyRow{Label: cc.label}
		mean := 0.0
		for _, s := range ds.Samples {
			mean += float64(s.TotalCycles)
		}
		mean /= float64(len(ds.Samples))
		if i == 0 {
			baseCycles = mean
		}
		row.NormCycles = mean / baseCycles

		for _, smp := range ds.Samples {
			row.DRAMAccesses += float64(smp.DRAMAccesses)
		}
		row.DRAMAccesses /= float64(len(ds.Samples))

		row.ChannelCorr, err = channelCorrelation(ds)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Render implements Result.
func (r *ExtHierarchyResult) Render() string {
	var b strings.Builder
	b.WriteString("Extension: memory-hierarchy ablation under baseline coalescing\n\n")
	t := &report.Table{Headers: []string{"hierarchy", "time (x)", "DRAM accesses", "channel corr"}}
	for _, row := range r.Rows {
		t.AddRow(row.Label, row.NormCycles, fmt.Sprintf("%.0f", row.DRAMAccesses), row.ChannelCorr)
	}
	b.WriteString(t.String())
	b.WriteString("\nCaches and MSHRs absorb DRAM traffic and weaken (but need not eliminate)\n" +
		"the access-count timing channel; the paper disables them to isolate it.\n")
	return b.String()
}

// --- ext-inferm: the FSS-attack prelude ---------------------------------------

// ExtInferMRow is one victim configuration of the num-subwarp
// inference study.
type ExtInferMRow struct {
	TrueM    int
	Inferred int
	Margin   float64
	Correct  bool
}

// ExtInferMResult reproduces the Section IV-A claim that an attacker
// can identify num-subwarp from execution-time differences alone.
type ExtInferMResult struct {
	Rows []ExtInferMRow
}

// ExtInferM calibrates on attacker-controlled hardware and infers each
// victim configuration's num-subwarp.
func ExtInferM(o Options) (*ExtInferMResult, error) {
	if err := o.validate(); err != nil {
		return nil, err
	}
	candidates := []int{1, 2, 4, 8, 16, 32}
	cal, err := attack.CalibrateSubwarps(o.gpuConfig(), mechanism.FSS, candidates,
		o.Samples/4+2, o.Lines, o.Seed^0xCA1)
	if err != nil {
		return nil, err
	}
	res := &ExtInferMResult{}
	for _, trueM := range candidates {
		cfg := o.gpuConfig()
		cfg.Defense = mechanism.FSS(trueM)
		_, ds, err := collectCfg(o, cfg)
		if err != nil {
			return nil, err
		}
		m, margin := cal.Infer(attack.ObserveMeanTime(ds))
		res.Rows = append(res.Rows, ExtInferMRow{
			TrueM: trueM, Inferred: m, Margin: margin, Correct: m == trueM,
		})
	}
	return res, nil
}

// Accuracy returns the fraction of victims correctly identified.
func (r *ExtInferMResult) Accuracy() float64 {
	n := 0
	for _, row := range r.Rows {
		if row.Correct {
			n++
		}
	}
	return float64(n) / float64(len(r.Rows))
}

// Render implements Result.
func (r *ExtInferMResult) Render() string {
	var b strings.Builder
	b.WriteString("Extension (paper §IV-A): inferring num-subwarp from timing alone\n\n")
	t := &report.Table{Headers: []string{"victim M", "inferred", "margin", "correct"}}
	for _, row := range r.Rows {
		t.AddRow(row.TrueM, row.Inferred, row.Margin, row.Correct)
	}
	b.WriteString(t.String())
	fmt.Fprintf(&b, "\naccuracy: %.0f%% — FSS cannot hide its num-subwarp, which is why the\n"+
		"FSS attack (Algorithm 1) applies and RSS/RTS randomization is needed.\n", 100*r.Accuracy())
	return b.String()
}

// --- ext-scheduler: LRR vs GTO ------------------------------------------------

// ExtSchedulerResult checks that the reproduced results are robust to
// the warp scheduling policy (a design choice of this substrate).
type ExtSchedulerResult struct {
	Rows []ExtSchedulerRow
}

// ExtSchedulerRow is one (scheduler, mechanism) cell.
type ExtSchedulerRow struct {
	Scheduler  string
	Mechanism  string
	MeanCycles float64
	// ChannelCorr is ρ(last-round accesses, last-round time).
	ChannelCorr float64
}

// ExtScheduler compares LRR and GTO under baseline and defended
// coalescing on launches with several warps per scheduler (the default
// 15-SM GPU is shrunk to 2 SMs so each scheduler juggles 2 warps).
func ExtScheduler(o Options) (*ExtSchedulerResult, error) {
	o.Lines = 256 // 8 warps over 2 SMs: 2 warps per scheduler
	res := &ExtSchedulerResult{}
	for _, sched := range []gpusim.SchedulerKind{gpusim.LRR, gpusim.GTO} {
		for _, policy := range []mechanism.Mechanism{mechanism.Baseline(), mechanism.RSSRTS(8)} {
			cfg := o.gpuConfig()
			cfg.NumSMs = 2
			cfg.Scheduler = sched
			cfg.Defense = policy
			_, ds, err := collectCfg(o, cfg)
			if err != nil {
				return nil, err
			}
			mean := 0.0
			for _, s := range ds.Samples {
				mean += float64(s.TotalCycles)
			}
			corr, err := channelCorrelation(ds)
			if err != nil {
				return nil, err
			}
			res.Rows = append(res.Rows, ExtSchedulerRow{
				Scheduler:   sched.String(),
				Mechanism:   policy.Name(),
				MeanCycles:  mean / float64(len(ds.Samples)),
				ChannelCorr: corr,
			})
		}
	}
	return res, nil
}

// Render implements Result.
func (r *ExtSchedulerResult) Render() string {
	var b strings.Builder
	b.WriteString("Extension: warp-scheduler ablation (256-line launches)\n\n")
	t := &report.Table{Headers: []string{"scheduler", "mechanism", "mean cycles", "channel corr"}}
	for _, row := range r.Rows {
		t.AddRow(row.Scheduler, row.Mechanism, fmt.Sprintf("%.0f", row.MeanCycles), row.ChannelCorr)
	}
	b.WriteString(t.String())
	b.WriteString("\nChannel corr here is the *physical* access-to-time relationship (what\n" +
		"any attacker ultimately taps); it survives either scheduling policy, so\n" +
		"the reproduction's conclusions do not hinge on the scheduler choice.\n")
	return b.String()
}

// --- ext-planperwarp: randomization granularity --------------------------------

// ExtPlanPerWarpResult measures whether drawing an independent plan
// per warp (instead of one per launch) strengthens the defense.
type ExtPlanPerWarpResult struct {
	Rows []ExtPlanPerWarpRow
}

// ExtPlanPerWarpRow is one (granularity, M) cell.
type ExtPlanPerWarpRow struct {
	PerWarp bool
	M       int
	// FullKeyCorr is the corresponding attack's full-key estimate
	// correlation vs observed accesses.
	FullKeyCorr float64
}

// ExtPlanPerWarp compares launch-level and warp-level plan draws by
// Monte Carlo over the coalescing mechanisms directly (no timing
// simulation): per sample, 4 warps of uniform block accesses are
// counted under the hardware's plan(s) and under an independent
// attacker plan, and the two count series are correlated. The direct
// construction supports enough samples to resolve the small
// correlation differences the ablation is after.
func ExtPlanPerWarp(o Options) (*ExtPlanPerWarpResult, error) {
	if err := o.validate(); err != nil {
		return nil, err
	}
	const warps = 4
	samples := o.Samples * 100 // cheap: pure counting, no simulation
	res := &ExtPlanPerWarpResult{}
	for _, perWarp := range []bool{false, true} {
		for _, m := range []int{4, 8} {
			policy := mechanism.RSSRTS(m)
			drawPlan := func(r *rng.Source) (core.Plan, error) {
				launch, err := policy.NewLaunch(core.DefaultWarpSize, r)
				return launch.Plan, err
			}
			hw := rng.New(o.Seed).Split(0x9A1)
			atkRNG := rng.New(o.Seed).Split(0x9A2)
			data := rng.New(o.Seed).Split(0x9A3)
			obs := make([]float64, samples)
			est := make([]float64, samples)
			blocks := make([]int, core.DefaultWarpSize)
			for n := 0; n < samples; n++ {
				launchPlan, err := drawPlan(hw)
				if err != nil {
					return nil, err
				}
				attackerPlan, err := drawPlan(atkRNG)
				if err != nil {
					return nil, err
				}
				for w := 0; w < warps; w++ {
					for i := range blocks {
						blocks[i] = data.Intn(16)
					}
					hwPlan := launchPlan
					if perWarp && w > 0 {
						if hwPlan, err = drawPlan(hw); err != nil {
							return nil, err
						}
					}
					obs[n] += float64(hwPlan.CountSmallBlocks(blocks))
					est[n] += float64(attackerPlan.CountSmallBlocks(blocks))
				}
			}
			corr, err := stats.Pearson(obs, est)
			if err != nil {
				return nil, err
			}
			res.Rows = append(res.Rows, ExtPlanPerWarpRow{PerWarp: perWarp, M: m, FullKeyCorr: corr})
		}
	}
	return res, nil
}

// Render implements Result.
func (r *ExtPlanPerWarpResult) Render() string {
	var b strings.Builder
	b.WriteString("Extension: plan granularity ablation (RSS+RTS, 128-line launches)\n\n")
	t := &report.Table{Headers: []string{"plan granularity", "num-subwarp", "full-key channel corr"}}
	for _, row := range r.Rows {
		g := "per launch (paper)"
		if row.PerWarp {
			g = "per warp"
		}
		t.AddRow(g, row.M, row.FullKeyCorr)
	}
	b.WriteString(t.String())
	b.WriteString("\nFinding: per-warp plans slightly HELP the attacker on multi-warp\n" +
		"launches — independent draws average out across the warp sum, while the\n" +
		"paper's single per-launch draw injects shared, non-averaging noise.\n" +
		"The paper's per-launch granularity is the right design.\n")
	return b.String()
}

// --- ext-rssdist: normal vs skewed sizing ---------------------------------------

// ExtRSSDistResult validates the paper's §IV-B claim that normal-
// distributed subwarp sizes behave like FSS while skewed sizes improve
// both security and performance.
type ExtRSSDistResult struct {
	Rows []ExtRSSDistRow
}

// ExtRSSDistRow is one sizing policy.
type ExtRSSDistRow struct {
	Label string
	// MeanTx is data movement per encryption.
	MeanTx float64
	// FullKeyCorr is the corresponding attack's channel correlation.
	FullKeyCorr float64
}

// ExtRSSDist compares FSS, normal-sized RSS, and skewed RSS at M=4.
func ExtRSSDist(o Options) (*ExtRSSDistResult, error) {
	const m = 4
	res := &ExtRSSDistResult{}
	for _, pc := range []struct {
		label   string
		defense mechanism.Mechanism
	}{
		{"FSS (fixed sizes)", mechanism.FSS(m)},
		{"RSS normal sizing", mechanism.RSSNormal(m, 1.5)},
		{"RSS skewed sizing", mechanism.RSS(m)},
	} {
		cfg := o.gpuConfig()
		cfg.Defense = pc.defense
		srv, ds, err := collectCfg(o, cfg)
		if err != nil {
			return nil, err
		}
		row := ExtRSSDistRow{Label: pc.label}
		for _, s := range ds.Samples {
			row.MeanTx += float64(s.TotalTx)
		}
		row.MeanTx /= float64(len(ds.Samples))

		atk, err := attack.New(pc.defense, o.Seed^0xD157)
		if err != nil {
			return nil, err
		}
		row.FullKeyCorr, err = fullKeyEstimateCorrelation(atk, ciphertexts(ds), ds.ObservedLastRoundTx(), srv.LastRoundKey(), o.Workers)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Render implements Result.
func (r *ExtRSSDistResult) Render() string {
	var b strings.Builder
	b.WriteString("Extension (paper §IV-B): RSS size-distribution ablation, num-subwarp = 4\n\n")
	t := &report.Table{Headers: []string{"sizing", "mean tx / encryption", "channel corr"}}
	for _, row := range r.Rows {
		t.AddRow(row.Label, fmt.Sprintf("%.0f", row.MeanTx), row.FullKeyCorr)
	}
	b.WriteString(t.String())
	b.WriteString("\nSkewed sizing moves less data than FSS (large subwarps re-enable\n" +
		"coalescing) while keeping the channel correlation low.\n")
	return b.String()
}

// --- shared helpers -------------------------------------------------------------

// channelCorrelation is ρ(observed last-round accesses, last-round
// time): the raw strength of the timing channel in a dataset.
func channelCorrelation(ds *aesgpu.Dataset) (float64, error) {
	return stats.Pearson(ds.ObservedLastRoundTx(), ds.LastRoundTimes())
}
