package experiments

import (
	"strings"

	"rcoal/internal/core"
	"rcoal/internal/mechanism"
	"rcoal/internal/report"
	"rcoal/internal/rng"
)

func init() { Registry["fig9"] = func(o Options) (Result, error) { return Fig9(o) } }

// Fig9Result reproduces Figure 9: the subwarp-size distribution of RSS
// under normal and skewed sizing, for num-subwarp = 4 over many
// launches.
type Fig9Result struct {
	M      int
	Draws  int
	Normal []int // Normal[s] = how often a subwarp of size s occurred
	Skewed []int
	Width  int
}

// Fig9Draws matches the paper's 1000 plaintexts.
const Fig9Draws = 1000

// Fig9 samples both RSS sizing distributions.
func Fig9(o Options) (*Fig9Result, error) {
	if err := o.validate(); err != nil {
		return nil, err
	}
	const m = 4
	res := &Fig9Result{M: m, Draws: Fig9Draws,
		Normal: make([]int, 33), Skewed: make([]int, 33), Width: o.Width}
	rNorm := rng.New(o.Seed).Split(901)
	rSkew := rng.New(o.Seed).Split(902)
	normal := mechanism.RSSNormal(m, 1.5)
	skewed := mechanism.RSS(m)
	for d := 0; d < Fig9Draws; d++ {
		nl, err := normal.NewLaunch(core.DefaultWarpSize, rNorm)
		if err != nil {
			return nil, err
		}
		for _, s := range nl.Plan.Sizes {
			res.Normal[s]++
		}
		sl, err := skewed.NewLaunch(core.DefaultWarpSize, rSkew)
		if err != nil {
			return nil, err
		}
		for _, s := range sl.Plan.Sizes {
			res.Skewed[s]++
		}
	}
	return res, nil
}

// Mode returns the most frequent subwarp size of a histogram.
func Mode(hist []int) int {
	best := 0
	for s, c := range hist {
		if c > hist[best] {
			best = s
		}
	}
	return best
}

// Render implements Result.
func (r *Fig9Result) Render() string {
	var b strings.Builder
	b.WriteString("Figure 9: RSS subwarp size distribution, num-subwarp = 4, 1000 plaintexts\n\n")
	b.WriteString(report.Histogram("Normal sizing (mode should sit at 32/M = 8):", r.Normal, r.Width))
	b.WriteString("\n")
	b.WriteString(report.Histogram("Skewed sizing (uniform over compositions; small sizes dominate):", r.Skewed, r.Width))
	b.WriteString("\nPaper: the skewed distribution is the RSS default — it spreads sizes\n" +
		"widely, improving both security and coalescing opportunities.\n")
	return b.String()
}
