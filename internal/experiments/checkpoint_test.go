package experiments

import (
	"errors"
	"path/filepath"
	"testing"

	"rcoal/internal/faultinject"
	"rcoal/internal/runner"
)

// TestKillAndResumeSweepByteIdentical is the crash-safety acceptance
// test: a sweep killed mid-grid by a panicking cell, resumed from its
// journal, re-runs only the incomplete cells and produces CSV output
// byte-identical to an uninterrupted run — even after a journal line
// is corrupted on disk.
func TestKillAndResumeSweepByteIdentical(t *testing.T) {
	o := testOptions()
	o.Workers = 1 // deterministic journal order: cells complete 0, 1, 2, ...
	ms := []int{2}

	ref, err := Sweep(o, ms)
	if err != nil {
		t.Fatal(err)
	}
	refCSV := ref.CSV()

	path := filepath.Join(t.TempDir(), "sweep.journal")

	// Run 1: "crash" — cell 3 of 5 panics mid-sweep.
	crashed := o
	j, err := OpenJournal(path, "sweep", crashed, false)
	if err != nil {
		t.Fatal(err)
	}
	crashed.Journal = j
	crashed.faultHook = faultinject.CellPanic(3)
	_, err = Sweep(crashed, ms)
	var pe *runner.PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want *runner.PanicError", err)
	}
	if pe.Cell != 3 {
		t.Errorf("panicking cell = %d, want 3", pe.Cell)
	}
	j.Close()

	// Run 2: resume. Cells 0-2 must come from the journal; only 3 and 4
	// may run.
	resumed := o
	j, err = OpenJournal(path, "sweep", resumed, true)
	if err != nil {
		t.Fatal(err)
	}
	if j.Len() != 3 {
		t.Fatalf("journal holds %d cells after crash, want 3", j.Len())
	}
	resumed.Journal = j
	var ran []int
	resumed.faultHook = func(cell int) error { ran = append(ran, cell); return nil }
	res, err := Sweep(resumed, ms)
	if err != nil {
		t.Fatal(err)
	}
	j.Close()
	if len(ran) != 2 || ran[0] != 3 || ran[1] != 4 {
		t.Errorf("resumed run re-ran cells %v, want [3 4]", ran)
	}
	if got := res.CSV(); got != refCSV {
		t.Errorf("resumed CSV differs from uninterrupted run:\n--- resumed ---\n%s--- reference ---\n%s", got, refCSV)
	}

	// Run 3: corrupt one journaled cell on disk (line 0 is the meta
	// line; line 2 is the second cell). Only that cell re-runs, and the
	// output is still byte-identical.
	if err := faultinject.CorruptJournalLine(path, 2); err != nil {
		t.Fatal(err)
	}
	healed := o
	j, err = OpenJournal(path, "sweep", healed, true)
	if err != nil {
		t.Fatal(err)
	}
	if j.Discarded != 1 {
		t.Errorf("Discarded = %d, want 1", j.Discarded)
	}
	if j.Len() != 4 {
		t.Errorf("journal holds %d cells after corruption, want 4", j.Len())
	}
	healed.Journal = j
	ran = nil
	healed.faultHook = func(cell int) error { ran = append(ran, cell); return nil }
	res, err = Sweep(healed, ms)
	if err != nil {
		t.Fatal(err)
	}
	j.Close()
	if len(ran) != 1 {
		t.Errorf("corruption-recovery run re-ran cells %v, want exactly one", ran)
	}
	if got := res.CSV(); got != refCSV {
		t.Errorf("corruption-recovered CSV differs from uninterrupted run")
	}
}

// TestResumeRejectsChangedOptions: a journal written under different
// result-determining options must refuse to resume rather than splice
// incompatible cells together.
func TestResumeRejectsChangedOptions(t *testing.T) {
	o := testOptions()
	path := filepath.Join(t.TempDir(), "sweep.journal")
	j, err := OpenJournal(path, "sweep", o, false)
	if err != nil {
		t.Fatal(err)
	}
	j.Close()

	changed := o
	changed.Samples++
	if _, err := OpenJournal(path, "sweep", changed, true); err == nil {
		t.Error("resume with changed Samples succeeded")
	}
	changed = o
	changed.Seed++
	if _, err := OpenJournal(path, "sweep", changed, true); err == nil {
		t.Error("resume with changed Seed succeeded")
	}
	changed = o
	changed.Key = []byte("RCoal eval key 2")
	if _, err := OpenJournal(path, "sweep", changed, true); err == nil {
		t.Error("resume with changed Key succeeded")
	}
	// Worker count does not affect results, so it must NOT invalidate a
	// journal.
	changed = o
	changed.Workers = 4
	j, err = OpenJournal(path, "sweep", changed, true)
	if err != nil {
		t.Errorf("resume with changed Workers rejected: %v", err)
	} else {
		j.Close()
	}
}

// TestCellErrorPropagatesFromExperiment: an injected (non-panic) cell
// failure surfaces as an ordinary error and leaves the journal usable.
func TestCellErrorPropagatesFromExperiment(t *testing.T) {
	o := testOptions()
	o.Workers = 1
	boom := errors.New("injected cell fault")
	o.faultHook = faultinject.CellError(1, boom)
	_, err := Fig7(o)
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want injected fault", err)
	}
}
