package experiments

import (
	"context"
	"fmt"

	"rcoal/internal/attack"
)

// SweepCell is one (mechanism, num-subwarp) evaluation point shared by
// Figures 15, 16, and 17: performance (cycles, accesses) plus security
// (average correct-guess correlation under the corresponding attack).
type SweepCell struct {
	Mechanism Mechanism
	M         int
	// MeanCycles / MeanTx are per-plaintext averages.
	MeanCycles float64
	MeanTx     float64
	// AvgCorrectCorr is the corresponding attack's average correct-byte
	// correlation against the last-round execution time.
	AvgCorrectCorr float64
	// NormCycles is MeanCycles normalized to the baseline
	// (num-subwarp = 1) cell.
	NormCycles float64
	// NormTx is MeanTx normalized to the baseline cell.
	NormTx float64
}

// SweepResult is the full mechanism × num-subwarp grid.
type SweepResult struct {
	Ms    []int
	Cells []SweepCell // ordered mechanism-major, then M
	// BaselineCycles / BaselineTx are the num-subwarp = 1 references.
	BaselineCycles float64
	BaselineTx     float64
}

// Cell returns the cell for (mech, m), or nil.
func (s *SweepResult) Cell(mech Mechanism, m int) *SweepCell {
	for i := range s.Cells {
		if s.Cells[i].Mechanism == mech && s.Cells[i].M == m {
			return &s.Cells[i]
		}
	}
	return nil
}

// Sweep evaluates every mechanism at every num-subwarp value in ms.
// The baseline reference is measured separately at num-subwarp = 1.
//
// The baseline and every (mechanism, num-subwarp) cell fan out over
// Options.Workers; each cell owns its simulated server and attacker
// and draws all randomness from seeds fixed by (o.Seed, mechanism, M),
// so the result is byte-identical at any worker count.
//
// Under Options.Hybrid, analytically decisive cells (see hybrid.go)
// substitute the Section V model's ρ for the simulated attack score;
// performance columns are still simulated for every cell.
func Sweep(o Options, ms []int) (*SweepResult, error) {
	if err := o.validate(); err != nil {
		return nil, err
	}
	type job struct {
		mech     Mechanism
		m        int
		baseline bool
	}
	jobs := make([]job, 0, len(AllMechanisms)*len(ms)+1)
	jobs = append(jobs, job{baseline: true})
	for _, mech := range AllMechanisms {
		for _, m := range ms {
			jobs = append(jobs, job{mech: mech, m: m})
		}
	}

	// Exported fields: cells round-trip through the checkpoint journal
	// as JSON when Options.Journal is attached.
	type out struct {
		Cell               SweepCell
		BaseCycles, BaseTx float64
	}
	outs, err := runCells(o, jobs,
		func(_ int, jb job) string {
			if jb.baseline {
				return "baseline"
			}
			return fmt.Sprintf("%s/%d", jb.mech, jb.m)
		},
		func(_ context.Context, _ int, jb job) (out, error) {
			if jb.baseline {
				_, base, err := collect(o, MechFSS.Policy(1))
				if err != nil {
					return out{}, err
				}
				var ot out
				for _, s := range base.Samples {
					ot.BaseCycles += float64(s.TotalCycles)
					ot.BaseTx += float64(s.TotalTx)
				}
				ot.BaseCycles /= float64(len(base.Samples))
				ot.BaseTx /= float64(len(base.Samples))
				return ot, nil
			}
			srv, ds, err := collect(o, jb.mech.Policy(jb.m))
			if err != nil {
				return out{}, err
			}
			cell := SweepCell{Mechanism: jb.mech, M: jb.m}
			for _, s := range ds.Samples {
				cell.MeanCycles += float64(s.TotalCycles)
				cell.MeanTx += float64(s.TotalTx)
			}
			cell.MeanCycles /= float64(len(ds.Samples))
			cell.MeanTx /= float64(len(ds.Samples))

			if o.Hybrid {
				if rho, ok := hybridScore(jb.mech, jb.m); ok {
					cell.AvgCorrectCorr = rho
					return out{Cell: cell}, nil
				}
			}
			atk, err := attack.New(jb.mech.Policy(jb.m), o.Seed^0x5EC)
			if err != nil {
				return out{}, err
			}
			// The grid saturates the pool, so the per-key-byte loop
			// inside each cell stays serial (workers = 1).
			cell.AvgCorrectCorr, err = avgCorrectCorrelation(
				atk, ciphertexts(ds), ds.LastRoundTimes(), srv.LastRoundKey(), 1)
			if err != nil {
				return out{}, err
			}
			return out{Cell: cell}, nil
		})
	if err != nil {
		return nil, err
	}

	res := &SweepResult{Ms: ms,
		BaselineCycles: outs[0].BaseCycles, BaselineTx: outs[0].BaseTx}
	for _, ot := range outs[1:] {
		cell := ot.Cell
		cell.NormCycles = cell.MeanCycles / res.BaselineCycles
		cell.NormTx = cell.MeanTx / res.BaselineTx
		res.Cells = append(res.Cells, cell)
	}
	return res, nil
}
