package experiments

import (
	"rcoal/internal/attack"
)

// SweepCell is one (mechanism, num-subwarp) evaluation point shared by
// Figures 15, 16, and 17: performance (cycles, accesses) plus security
// (average correct-guess correlation under the corresponding attack).
type SweepCell struct {
	Mechanism Mechanism
	M         int
	// MeanCycles / MeanTx are per-plaintext averages.
	MeanCycles float64
	MeanTx     float64
	// AvgCorrectCorr is the corresponding attack's average correct-byte
	// correlation against the last-round execution time.
	AvgCorrectCorr float64
	// NormCycles is MeanCycles normalized to the baseline
	// (num-subwarp = 1) cell.
	NormCycles float64
	// NormTx is MeanTx normalized to the baseline cell.
	NormTx float64
}

// SweepResult is the full mechanism × num-subwarp grid.
type SweepResult struct {
	Ms    []int
	Cells []SweepCell // ordered mechanism-major, then M
	// BaselineCycles / BaselineTx are the num-subwarp = 1 references.
	BaselineCycles float64
	BaselineTx     float64
}

// Cell returns the cell for (mech, m), or nil.
func (s *SweepResult) Cell(mech Mechanism, m int) *SweepCell {
	for i := range s.Cells {
		if s.Cells[i].Mechanism == mech && s.Cells[i].M == m {
			return &s.Cells[i]
		}
	}
	return nil
}

// Sweep evaluates every mechanism at every num-subwarp value in ms.
// The baseline reference is measured separately at num-subwarp = 1.
func Sweep(o Options, ms []int) (*SweepResult, error) {
	res := &SweepResult{Ms: ms}

	// Baseline reference for normalization.
	_, base, err := collect(o, MechFSS.Policy(1), false)
	if err != nil {
		return nil, err
	}
	for _, s := range base.Samples {
		res.BaselineCycles += float64(s.TotalCycles)
		res.BaselineTx += float64(s.TotalTx)
	}
	res.BaselineCycles /= float64(len(base.Samples))
	res.BaselineTx /= float64(len(base.Samples))

	for _, mech := range AllMechanisms {
		for _, m := range ms {
			srv, ds, err := collect(o, mech.Policy(m), false)
			if err != nil {
				return nil, err
			}
			cell := SweepCell{Mechanism: mech, M: m}
			for _, s := range ds.Samples {
				cell.MeanCycles += float64(s.TotalCycles)
				cell.MeanTx += float64(s.TotalTx)
			}
			cell.MeanCycles /= float64(len(ds.Samples))
			cell.MeanTx /= float64(len(ds.Samples))
			cell.NormCycles = cell.MeanCycles / res.BaselineCycles
			cell.NormTx = cell.MeanTx / res.BaselineTx

			atk, err := attack.New(mech.Policy(m), o.Seed^0x5EC)
			if err != nil {
				return nil, err
			}
			cell.AvgCorrectCorr, err = avgCorrectCorrelation(
				atk, ciphertexts(ds), ds.LastRoundTimes(), srv.LastRoundKey())
			if err != nil {
				return nil, err
			}
			res.Cells = append(res.Cells, cell)
		}
	}
	return res, nil
}
