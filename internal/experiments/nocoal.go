package experiments

import (
	"fmt"
	"strings"

	"rcoal/internal/mechanism"
	"rcoal/internal/report"
)

func init() { Registry["nocoal"] = func(o Options) (Result, error) { return NoCoal(o) } }

// NoCoalRow compares baseline coalescing against fully disabled
// coalescing for one plaintext size.
type NoCoalRow struct {
	Lines int
	// SlowdownPct is the execution-time increase in percent (the paper
	// reports up to 178% for 1024 lines).
	SlowdownPct float64
	// TxRatio is the data-movement multiplier (paper: 2.7x).
	TxRatio float64
}

// NoCoalResult reproduces the Section III motivation numbers for
// disabling coalescing outright.
type NoCoalResult struct {
	Rows []NoCoalRow
}

// NoCoal measures the strawman defense at 32 and 1024 lines.
func NoCoal(o Options) (*NoCoalResult, error) {
	res := &NoCoalResult{}
	for _, lines := range []int{32, 1024} {
		opt := o
		opt.Lines = lines
		_, on, err := collect(opt, mechanism.Baseline())
		if err != nil {
			return nil, err
		}
		_, off, err := collect(opt, mechanism.NoCoal())
		if err != nil {
			return nil, err
		}
		var onC, offC, onT, offT float64
		for i := range on.Samples {
			onC += float64(on.Samples[i].TotalCycles)
			offC += float64(off.Samples[i].TotalCycles)
			onT += float64(on.Samples[i].TotalTx)
			offT += float64(off.Samples[i].TotalTx)
		}
		res.Rows = append(res.Rows, NoCoalRow{
			Lines:       lines,
			SlowdownPct: (offC/onC - 1) * 100,
			TxRatio:     offT / onT,
		})
	}
	return res, nil
}

// Render implements Result.
func (r *NoCoalResult) Render() string {
	var b strings.Builder
	b.WriteString("Section III: cost of disabling coalescing entirely\n\n")
	t := &report.Table{Headers: []string{"plaintext lines", "slowdown %", "data movement x"}}
	for _, row := range r.Rows {
		t.AddRow(row.Lines, fmt.Sprintf("%.1f", row.SlowdownPct), fmt.Sprintf("%.2f", row.TxRatio))
	}
	b.WriteString(t.String())
	b.WriteString("\nPaper: up to 178% slowdown and 2.7x data movement for 1024 lines —\n" +
		"which is why RCoal randomizes coalescing instead of disabling it.\n")
	return b.String()
}
