package experiments

import (
	"strings"
	"testing"
)

func TestExtSelectiveRecoversPerformance(t *testing.T) {
	o := testOptions()
	r, err := ExtSelective(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 4 {
		t.Fatalf("%d rows", len(r.Rows))
	}
	base, full, sel := r.Rows[0], r.Rows[1], r.Rows[2]
	// Full RCoal costs real time; selective recovers most of it.
	if full.NormCycles < 1.2 {
		t.Errorf("full RCoal overhead %v too small", full.NormCycles)
	}
	if sel.NormCycles >= full.NormCycles {
		t.Errorf("selective (%v) not cheaper than full (%v)", sel.NormCycles, full.NormCycles)
	}
	if sel.NormCycles > 1.15 {
		t.Errorf("selective overhead %v should be near baseline", sel.NormCycles)
	}
	// Last-round protection identical: same plan governs round 10.
	if sel.LastRoundCorr != full.LastRoundCorr {
		t.Errorf("selective last-round corr %v != full %v", sel.LastRoundCorr, full.LastRoundCorr)
	}
	// Undefended baseline has a fully open channel.
	if base.LastRoundCorr < 0.999 {
		t.Errorf("baseline channel corr %v, want 1", base.LastRoundCorr)
	}
}

func TestExtHierarchyShape(t *testing.T) {
	o := testOptions()
	r, err := ExtHierarchy(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 5 {
		t.Fatalf("%d rows", len(r.Rows))
	}
	noCache, l2 := r.Rows[0], r.Rows[2]
	// The paper-baseline channel is wide open.
	if noCache.ChannelCorr < 0.9 {
		t.Errorf("no-cache channel corr %v", noCache.ChannelCorr)
	}
	// Caches absorb DRAM traffic dramatically (the AES tables fit).
	if l2.DRAMAccesses >= noCache.DRAMAccesses/2 {
		t.Errorf("L2 DRAM accesses %v not well below %v", l2.DRAMAccesses, noCache.DRAMAccesses)
	}
	if !strings.Contains(r.Render(), "hierarchy") {
		t.Error("render missing title")
	}
}

func TestExtInferMPerfect(t *testing.T) {
	o := testOptions()
	r, err := ExtInferM(o)
	if err != nil {
		t.Fatal(err)
	}
	if r.Accuracy() < 1 {
		t.Errorf("inference accuracy %v, want 1.0 (paper: timing separates all M)", r.Accuracy())
	}
}

func TestExtSchedulerRuns(t *testing.T) {
	o := testOptions()
	o.Samples = 10
	r, err := ExtScheduler(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 4 {
		t.Fatalf("%d rows", len(r.Rows))
	}
	// RSS+RTS(8) costs more than baseline under both schedulers.
	for i := 0; i < 4; i += 2 {
		if r.Rows[i+1].MeanCycles <= r.Rows[i].MeanCycles {
			t.Errorf("%s: defended (%v) not slower than baseline (%v)",
				r.Rows[i].Scheduler, r.Rows[i+1].MeanCycles, r.Rows[i].MeanCycles)
		}
	}
}

func TestExtPlanPerWarpFinding(t *testing.T) {
	o := testOptions()
	r, err := ExtPlanPerWarp(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 4 {
		t.Fatalf("%d rows", len(r.Rows))
	}
	// The counter-intuitive but real finding: on multi-warp sums,
	// per-warp randomness averages out and the correlation rises
	// relative to a shared per-launch plan.
	for _, m := range []int{4, 8} {
		var perLaunch, perWarp float64
		for _, row := range r.Rows {
			if row.M != m {
				continue
			}
			if row.PerWarp {
				perWarp = row.FullKeyCorr
			} else {
				perLaunch = row.FullKeyCorr
			}
		}
		if perWarp <= perLaunch {
			t.Errorf("M=%d: per-warp corr %v not above per-launch %v (averaging effect)", m, perWarp, perLaunch)
		}
	}
}

func TestExtRSSDistPaperClaim(t *testing.T) {
	o := testOptions()
	r, err := ExtRSSDist(o)
	if err != nil {
		t.Fatal(err)
	}
	fss, normal, skewed := r.Rows[0], r.Rows[1], r.Rows[2]
	// §IV-B: normal-sized RSS behaves like FSS; skewed improves both.
	if fss.FullKeyCorr < 0.999 {
		t.Errorf("FSS channel corr %v, want 1", fss.FullKeyCorr)
	}
	if normal.FullKeyCorr <= skewed.FullKeyCorr {
		t.Errorf("normal sizing corr %v should exceed skewed %v", normal.FullKeyCorr, skewed.FullKeyCorr)
	}
	if skewed.MeanTx >= fss.MeanTx {
		t.Errorf("skewed tx %v not below FSS %v", skewed.MeanTx, fss.MeanTx)
	}
}

func TestExtensionsRegistered(t *testing.T) {
	for _, id := range []string{"ext-selective", "ext-hierarchy", "ext-inferm",
		"ext-scheduler", "ext-planperwarp", "ext-rssdist"} {
		if _, ok := Registry[id]; !ok {
			t.Errorf("%s not registered", id)
		}
	}
}

func TestExtModesAttackTransfers(t *testing.T) {
	o := testOptions()
	o.Samples = 60
	r, err := ExtModes(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 4 {
		t.Fatalf("%d rows", len(r.Rows))
	}
	for _, row := range r.Rows {
		switch row.Defense {
		case "Baseline":
			// The channel is open: correct-byte correlation well above
			// the noise floor and at least some bytes recovered.
			if row.AvgCorr < 0.15 {
				t.Errorf("%s undefended: avg corr %v too low", row.Service, row.AvgCorr)
			}
			if row.Recovered == 0 {
				t.Errorf("%s undefended: no bytes recovered", row.Service)
			}
		default:
			// RCoal closes it.
			if row.AvgCorr > 0.15 {
				t.Errorf("%s defended: avg corr %v still high", row.Service, row.AvgCorr)
			}
			if row.Recovered > 2 {
				t.Errorf("%s defended: %d bytes recovered", row.Service, row.Recovered)
			}
		}
	}
}

func TestExtEq4TransitionShape(t *testing.T) {
	o := testOptions()
	o.Samples = 100 // 10 trials per point
	r, err := ExtEq4(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 4 {
		t.Fatalf("%d rows", len(r.Rows))
	}
	for _, row := range r.Rows {
		// Success increases with samples and is high at 4x the
		// prediction.
		if row.SuccessRate[2] < row.SuccessRate[0] {
			t.Errorf("%s: success not increasing: %v", row.Mechanism, row.SuccessRate)
		}
		if row.SuccessRate[2] < 0.8 {
			t.Errorf("%s: success at 4S = %v, want >= 0.8", row.Mechanism, row.SuccessRate[2])
		}
		if row.SuccessRate[0] > 0.7 {
			t.Errorf("%s: success at S/4 = %v suspiciously high", row.Mechanism, row.SuccessRate[0])
		}
	}
}

func TestExtRealisticOrdering(t *testing.T) {
	o := testOptions()
	o.Samples = 80
	r, err := ExtRealistic(o)
	if err != nil {
		t.Fatal(err)
	}
	bound, strong, realistic := r.Rows[0], r.Rows[1], r.Rows[2]
	// The attacker hierarchy: bound >= strong >> realistic.
	if strong.AvgCorr > bound.AvgCorr+0.05 {
		t.Errorf("strong corr %v above noise-free bound %v", strong.AvgCorr, bound.AvgCorr)
	}
	if realistic.AvgCorr >= strong.AvgCorr {
		t.Errorf("realistic corr %v not below strong %v", realistic.AvgCorr, strong.AvgCorr)
	}
	if realistic.Recovered > strong.Recovered {
		t.Errorf("realistic recovered %d > strong %d", realistic.Recovered, strong.Recovered)
	}
}

func TestExtSensitivityDirections(t *testing.T) {
	r, err := ExtSensitivity(testOptions())
	if err != nil {
		t.Fatal(err)
	}
	// Paper config must match Table II.
	base := r.Row(32, 16, 2)
	if base == nil || base.RhoRSSRTS < 0.19 || base.RhoRSSRTS > 0.21 {
		t.Fatalf("base row wrong: %+v", base)
	}
	// Coarser lines (R=8) strengthen RSS+RTS; finer (R=32) weaken it.
	if r.Row(32, 8, 2).RhoRSSRTS >= base.RhoRSSRTS {
		t.Error("R=8 did not strengthen RSS+RTS")
	}
	if r.Row(32, 32, 2).RhoRSSRTS <= base.RhoRSSRTS {
		t.Error("R=32 did not weaken RSS+RTS")
	}
	// Wider warps strengthen both mechanisms.
	if r.Row(64, 16, 2).RhoRSSRTS >= base.RhoRSSRTS {
		t.Error("N=64 did not strengthen RSS+RTS")
	}
	if r.Row(64, 16, 2).RhoFSSRTS >= r.Row(32, 16, 2).RhoFSSRTS {
		t.Error("N=64 did not strengthen FSS+RTS")
	}
}

func TestExtEnergyTracksDataMovement(t *testing.T) {
	o := testOptions()
	r, err := ExtEnergy(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 5 {
		t.Fatalf("%d rows", len(r.Rows))
	}
	base, fss8, nocoal := r.Rows[0], r.Rows[1], r.Rows[4]
	if base.NormEnergy != 1 {
		t.Errorf("baseline not normalized: %v", base.NormEnergy)
	}
	if fss8.NormEnergy <= 1.3 {
		t.Errorf("FSS(8) energy %v, want clearly above baseline", fss8.NormEnergy)
	}
	if nocoal.NormEnergy < fss8.NormEnergy {
		t.Errorf("disabled coalescing (%v) cheaper than FSS(8) (%v)", nocoal.NormEnergy, fss8.NormEnergy)
	}
	for _, row := range r.Rows {
		if row.DRAMShare < 0.5 || row.DRAMShare > 0.95 {
			t.Errorf("%s: DRAM share %v outside plausible band", row.Label, row.DRAMShare)
		}
	}
}

func TestExtNoiseDegradesChannel(t *testing.T) {
	o := testOptions()
	o.Samples = 25
	r, err := ExtNoise(o)
	if err != nil {
		t.Fatal(err)
	}
	clean := r.Rows[0]
	if clean.ChannelCorr < 0.9 {
		t.Errorf("clean channel corr %v", clean.ChannelCorr)
	}
	heavy := r.Rows[len(r.Rows)-1]
	if heavy.ChannelCorr > clean.ChannelCorr/2 {
		t.Errorf("heavy load channel corr %v did not collapse from %v", heavy.ChannelCorr, clean.ChannelCorr)
	}
}

func TestExtSharedMemBoundary(t *testing.T) {
	o := testOptions()
	o.Samples = 100
	r, err := ExtSharedMem(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 4 {
		t.Fatalf("%d rows", len(r.Rows))
	}
	for _, row := range r.Rows {
		switch row.Channel {
		case "coalescing attack":
			// The channel does not exist on the shared-memory kernel.
			if row.Recovered > 1 || row.AvgCorr > 0.1 {
				t.Errorf("%s/%s: coalescing attack should find nothing (corr %v, %d/16)",
					row.Defense, row.Channel, row.AvgCorr, row.Recovered)
			}
		case "bank-conflict attack":
			// The channel leaks regardless of the RCoal defense.
			if row.AvgCorr < 0.15 {
				t.Errorf("%s/%s: bank-conflict corr %v too low", row.Defense, row.Channel, row.AvgCorr)
			}
			if row.Recovered == 0 {
				t.Errorf("%s/%s: no bytes recovered", row.Defense, row.Channel)
			}
		}
	}
	// RCoal changes nothing for the bank-conflict channel: identical
	// correlations under both defenses (deterministic channel).
	if r.Rows[1].AvgCorr != r.Rows[3].AvgCorr {
		t.Errorf("bank-conflict corr differs across defenses: %v vs %v (RCoal should be irrelevant)",
			r.Rows[1].AvgCorr, r.Rows[3].AvgCorr)
	}
}
