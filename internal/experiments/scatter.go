package experiments

import (
	"context"
	"fmt"
	"strings"

	"rcoal/internal/attack"
	"rcoal/internal/report"
	"rcoal/internal/stats"
)

// Figures 8, 12, 13, and 14 share one shape: run defense mechanism X,
// attack it with the corresponding attack X, and show the per-guess
// correlation scatter for key byte 0 at num-subwarp ∈ {2, 4, 8, 16}.

func init() {
	Registry["fig8"] = func(o Options) (Result, error) { return ScatterExperiment(o, MechFSS, "fig8") }
	Registry["fig12"] = func(o Options) (Result, error) { return ScatterExperiment(o, MechFSSRTS, "fig12") }
	Registry["fig13"] = func(o Options) (Result, error) { return ScatterExperiment(o, MechRSS, "fig13") }
	Registry["fig14"] = func(o Options) (Result, error) { return ScatterExperiment(o, MechRSSRTS, "fig14") }
}

// ScatterSubwarps are the num-subwarp panels of Figures 8 and 12-14.
var ScatterSubwarps = []int{2, 4, 8, 16}

// ScatterPanel is one num-subwarp panel.
type ScatterPanel struct {
	M int
	// Byte0 holds the 256 guess correlations for key byte 0.
	Byte0 *attack.ByteResult
	// TrueByte is the correct key byte 0 value.
	TrueByte byte
	// Recovered reports whether the correct value won.
	Recovered bool
	// Rank is the correct value's correlation ranking (0 = winner).
	Rank int
	// AvgCorrectCorr is the correct-guess correlation averaged over
	// all 16 byte positions.
	AvgCorrectCorr float64
}

// ScatterResult reproduces one of the defense-vs-corresponding-attack
// figures.
type ScatterResult struct {
	ID        string
	Mechanism Mechanism
	Panels    []ScatterPanel
	// NoiseFloor is the expected best wrong-guess correlation at this
	// sample count: correct-guess correlations below it are
	// indistinguishable from noise.
	NoiseFloor float64
}

// ScatterExperiment runs mechanism mech against its corresponding
// attack across the standard num-subwarp panels. The panels — and,
// within each panel, the 16-key-byte correlation loop — fan out over
// Options.Workers with per-panel servers and attackers; output is
// byte-identical at any worker count.
func ScatterExperiment(o Options, mech Mechanism, id string) (*ScatterResult, error) {
	panels, err := runCells(o, ScatterSubwarps,
		func(_ int, m int) string { return fmt.Sprintf("%s/%d", mech, m) },
		func(_ context.Context, _ int, m int) (ScatterPanel, error) {
			srv, ds, err := collect(o, mech.Policy(m))
			if err != nil {
				return ScatterPanel{}, err
			}
			// The corresponding attack assumes the same mechanism and M
			// but runs on its own random stream.
			atk, err := attack.New(mech.Policy(m), o.Seed^0xDEFEA7ED)
			if err != nil {
				return ScatterPanel{}, err
			}
			cts := ciphertexts(ds)
			times := ds.LastRoundTimes()
			lrk := srv.LastRoundKey()

			br, err := atk.RecoverByte(cts, times, 0)
			if err != nil {
				return ScatterPanel{}, err
			}
			// Few panels, so spare workers go to the per-key-byte loop.
			avg, err := avgCorrectCorrelation(atk, cts, times, lrk, o.Workers)
			if err != nil {
				return ScatterPanel{}, err
			}
			return ScatterPanel{
				M:              m,
				Byte0:          br,
				TrueByte:       lrk[0],
				Recovered:      br.Best == lrk[0],
				Rank:           br.Rank(lrk[0]),
				AvgCorrectCorr: avg,
			}, nil
		})
	if err != nil {
		return nil, err
	}
	return &ScatterResult{ID: id, Mechanism: mech,
		NoiseFloor: stats.NoiseFloor(o.Samples, 255),
		Panels:     panels}, nil
}

// RecoveredCount returns how many panels recovered byte 0.
func (r *ScatterResult) RecoveredCount() int {
	n := 0
	for _, p := range r.Panels {
		if p.Recovered {
			n++
		}
	}
	return n
}

// Render implements Result.
func (r *ScatterResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: %s defense against the corresponding %s attack\n\n",
		strings.ToUpper(r.ID[:1])+r.ID[1:], r.Mechanism, r.Mechanism)
	t := &report.Table{Headers: []string{
		"num-subwarp", "correct-k0 corr", "best corr", "recovered", "rank", "avg correct corr (16 bytes)"}}
	for _, p := range r.Panels {
		t.AddRow(p.M, p.Byte0.Correlations[p.TrueByte], p.Byte0.BestCorr,
			p.Recovered, fmt.Sprintf("%d/256", p.Rank), p.AvgCorrectCorr)
	}
	b.WriteString(t.String())
	fmt.Fprintf(&b, "\n(wrong-guess noise floor at this sample count: ~%.3f)\n", r.NoiseFloor)
	switch r.Mechanism {
	case MechFSS:
		b.WriteString("\nPaper (Fig. 8): the FSS attack defeats FSS — recovery succeeds for all\n" +
			"num-subwarp < 32 with high correlation.\n")
	default:
		b.WriteString("\nPaper (Figs. 12-14): randomization defeats the corresponding attack —\n" +
			"recovery becomes difficult as num-subwarp grows (> 2).\n")
	}
	return b.String()
}
