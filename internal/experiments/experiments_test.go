package experiments

import (
	"strings"
	"testing"
)

// testOptions keeps experiment tests fast; shape assertions hold at
// reduced scale.
func testOptions() Options {
	o := DefaultOptions()
	o.Samples = 30
	return o
}

func TestOptionsValidation(t *testing.T) {
	bad := DefaultOptions()
	bad.Samples = 1
	if bad.validate() == nil {
		t.Error("1 sample accepted")
	}
	bad = DefaultOptions()
	bad.Lines = 0
	if bad.validate() == nil {
		t.Error("0 lines accepted")
	}
	bad = DefaultOptions()
	bad.Key = []byte("short")
	if bad.validate() == nil {
		t.Error("bad key accepted")
	}
}

func TestMechanismNaming(t *testing.T) {
	wants := map[Mechanism]string{
		MechFSS: "FSS", MechFSSRTS: "FSS+RTS", MechRSS: "RSS", MechRSSRTS: "RSS+RTS",
	}
	for mech, want := range wants {
		if mech.String() != want {
			t.Errorf("%d.String() = %q", mech, mech.String())
		}
		p := mech.Policy(4)
		if err := p.ValidateFor(0); err != nil {
			t.Errorf("%s policy invalid: %v", want, err)
		}
	}
}

func TestRegistryComplete(t *testing.T) {
	want := []string{"fig5", "fig6", "fig7", "fig8", "fig9", "fig10",
		"fig12", "fig13", "fig14", "fig15", "fig16", "fig17", "fig18",
		"nocoal", "table1", "table2",
		"ext-selective", "ext-hierarchy", "ext-inferm", "ext-scheduler",
		"ext-planperwarp", "ext-rssdist", "ext-modes", "ext-workloads",
		"ext-eq4", "ext-realistic", "ext-sensitivity", "ext-energy", "ext-noise",
		"ext-sharedmem", "ext-selective-sweep", "ext-defense-frontier"}
	for _, id := range want {
		if _, ok := Registry[id]; !ok {
			t.Errorf("experiment %q not registered", id)
		}
	}
	if len(IDs()) != len(want) {
		t.Errorf("registry has %d entries, want %d: %v", len(IDs()), len(want), IDs())
	}
	if _, err := Run("nope", testOptions()); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestFig5Shape(t *testing.T) {
	r, err := Fig5(testOptions())
	if err != nil {
		t.Fatal(err)
	}
	if r.RhoTxLastTime < 0.9 {
		t.Errorf("last-round channel rho = %v, want > 0.9", r.RhoTxLastTime)
	}
	if r.RhoTxTotalTime >= r.RhoTxLastTime {
		t.Error("total-time channel should be noisier than last-round channel")
	}
	if len(r.Pairs) != 30 {
		t.Errorf("%d pairs", len(r.Pairs))
	}
	if !strings.Contains(r.Render(), "Figure 5") {
		t.Error("render missing title")
	}
}

func TestFig6Shape(t *testing.T) {
	o := testOptions()
	o.Samples = 60 // byte-0 recovery needs a bit more signal
	r, err := Fig6(o)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Enabled.Byte0Recovered {
		t.Errorf("coalescing enabled: k0 not recovered (rank %d)", r.Enabled.Rank)
	}
	if r.Enabled.KeyBytesRecovered <= r.Disabled.KeyBytesRecovered {
		t.Error("enabled should recover more bytes than disabled")
	}
	// Disabled coalescing: correct-byte correlation collapses.
	if c := r.Disabled.Byte0.Correlations[r.Disabled.TrueByte]; c > 0.3 {
		t.Errorf("disabled: correct correlation %v still high", c)
	}
	if !strings.Contains(r.Render(), "DISABLED") {
		t.Error("render missing disabled section")
	}
}

func TestFig7Shape(t *testing.T) {
	r, err := Fig7(testOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != len(Fig7Subwarps) {
		t.Fatalf("%d rows", len(r.Rows))
	}
	// 7a: time and accesses strictly increase with num-subwarp.
	for i := 1; i < len(r.Rows); i++ {
		if r.Rows[i].MeanCycles <= r.Rows[i-1].MeanCycles {
			t.Errorf("M=%d: cycles %v not above M=%d's %v",
				r.Rows[i].M, r.Rows[i].MeanCycles, r.Rows[i-1].M, r.Rows[i-1].MeanCycles)
		}
		if r.Rows[i].MeanAccesses <= r.Rows[i-1].MeanAccesses {
			t.Errorf("M=%d: accesses not increasing", r.Rows[i].M)
		}
	}
	// 7b: baseline-attack correlation decays: M=1 clearly above M=32.
	first, last := r.Rows[0].BaselineAttackCorr, r.Rows[len(r.Rows)-1].BaselineAttackCorr
	if first < 0.15 {
		t.Errorf("M=1 baseline-attack corr %v too low", first)
	}
	if last > first/2 {
		t.Errorf("M=32 corr %v did not decay from %v", last, first)
	}
}

func TestFig8FSSAttackBeatsFSS(t *testing.T) {
	o := testOptions()
	o.Samples = 60
	r, err := ScatterExperiment(o, MechFSS, "fig8")
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Panels) != len(ScatterSubwarps) {
		t.Fatalf("%d panels", len(r.Panels))
	}
	// The FSS attack tracks FSS exactly; the correct byte should rank
	// at or near the top in every panel.
	for _, p := range r.Panels {
		if p.Rank > 8 {
			t.Errorf("M=%d: correct byte rank %d, FSS attack should nearly win", p.M, p.Rank)
		}
	}
	if r.RecoveredCount() < len(r.Panels)/2 {
		t.Errorf("FSS attack recovered only %d/%d panels", r.RecoveredCount(), len(r.Panels))
	}
}

func TestFig12RandomizationResists(t *testing.T) {
	o := testOptions()
	o.Samples = 60
	for _, mech := range []Mechanism{MechFSSRTS, MechRSSRTS} {
		r, err := ScatterExperiment(o, mech, "figX")
		if err != nil {
			t.Fatal(err)
		}
		// Paper: recovery difficult for num-subwarp > 2. Check the
		// M >= 4 panels collectively: at most one lucky recovery.
		lucky := 0
		for _, p := range r.Panels[1:] {
			if p.Recovered {
				lucky++
			}
		}
		if lucky > 1 {
			t.Errorf("%s: %d/3 high-M panels recovered; randomization failed", mech, lucky)
		}
	}
}

func TestFig9Shape(t *testing.T) {
	r, err := Fig9(testOptions())
	if err != nil {
		t.Fatal(err)
	}
	if got := Mode(r.Normal); got < 7 || got > 9 {
		t.Errorf("normal mode at %d, want ≈8", got)
	}
	if got := Mode(r.Skewed); got != 1 {
		t.Errorf("skewed mode at %d, want 1", got)
	}
	// Both histograms hold Draws × M sizes.
	sum := 0
	for _, c := range r.Skewed {
		sum += c
	}
	if sum != Fig9Draws*r.M {
		t.Errorf("skewed histogram holds %d sizes, want %d", sum, Fig9Draws*r.M)
	}
}

func TestFig10MatchesPaper(t *testing.T) {
	r, err := Fig10(testOptions())
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range r.Rows {
		if row.Accesses != row.Expected {
			t.Errorf("%s: %d accesses, paper says %d", row.Label, row.Accesses, row.Expected)
		}
	}
}

func TestSweepShape(t *testing.T) {
	o := testOptions()
	o.Samples = 20
	s, err := Sweep(o, []int{1, 4, 16})
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Cells) != len(AllMechanisms)*3 {
		t.Fatalf("%d cells", len(s.Cells))
	}
	for _, mech := range AllMechanisms {
		// Normalized metrics increase with M for every mechanism.
		prev := 0.0
		for _, m := range []int{1, 4, 16} {
			c := s.Cell(mech, m)
			if c == nil {
				t.Fatalf("missing cell %s M=%d", mech, m)
			}
			if c.NormCycles <= prev {
				t.Errorf("%s M=%d: normalized cycles %v not increasing", mech, m, c.NormCycles)
			}
			prev = c.NormCycles
		}
		// num-subwarp = 1 sits at the baseline.
		if c := s.Cell(mech, 1); c.NormCycles < 0.95 || c.NormCycles > 1.05 {
			t.Errorf("%s M=1 normalized cycles %v, want ≈1", mech, c.NormCycles)
		}
	}
	if s.Cell(MechFSS, 99) != nil {
		t.Error("phantom cell returned")
	}
}

func TestFig16RSSCheaperThanFSS(t *testing.T) {
	o := testOptions()
	o.Samples = 20
	r, err := Fig16(o)
	if err != nil {
		t.Fatal(err)
	}
	// Paper: skewed sizing recovers coalescing opportunities — RSS
	// moves less data than FSS at intermediate num-subwarp.
	for _, m := range []int{4, 8, 16} {
		if rss, fss := r.Sweep.Cell(MechRSS, m).MeanTx, r.Sweep.Cell(MechFSS, m).MeanTx; rss >= fss {
			t.Errorf("M=%d: RSS tx %v not below FSS tx %v", m, rss, fss)
		}
	}
	// M=32: all mechanisms degenerate to one thread per subwarp.
	if a, b := r.Sweep.Cell(MechFSS, 32).MeanTx, r.Sweep.Cell(MechRSSRTS, 32).MeanTx; a != b {
		t.Errorf("M=32 tx differ: FSS %v vs RSS+RTS %v", a, b)
	}
}

func TestFig17ScoresFavorRandomization(t *testing.T) {
	o := testOptions()
	o.Samples = 30
	r, err := Fig17(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != len(Fig15Subwarps) {
		t.Fatalf("%d rows", len(r.Rows))
	}
	// At num-subwarp >= 8, a randomized mechanism must outscore FSS in
	// the security-oriented design (FSS's correlation stays high).
	for _, row := range r.Rows {
		if row.M < 8 {
			continue
		}
		fss := row.SecurityScore[MechFSS]
		best := row.SecurityScore[MechFSSRTS]
		if row.SecurityScore[MechRSSRTS] > best {
			best = row.SecurityScore[MechRSSRTS]
		}
		if best <= fss {
			t.Errorf("M=%d: randomized best score %v not above FSS %v", row.M, best, fss)
		}
	}
}

func TestNoCoalShape(t *testing.T) {
	o := testOptions()
	o.Samples = 5
	r, err := NoCoal(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 2 {
		t.Fatalf("%d rows", len(r.Rows))
	}
	for _, row := range r.Rows {
		if row.SlowdownPct <= 0 {
			t.Errorf("%d lines: slowdown %v%%, want positive", row.Lines, row.SlowdownPct)
		}
		if row.TxRatio < 1.5 {
			t.Errorf("%d lines: tx ratio %v, want > 1.5", row.Lines, row.TxRatio)
		}
	}
	// The 1024-line slowdown exceeds the 32-line one (paper: 178%).
	if r.Rows[1].SlowdownPct <= r.Rows[0].SlowdownPct {
		t.Error("1024-line slowdown should exceed 32-line slowdown")
	}
}

func TestTable2Experiment(t *testing.T) {
	r, err := Table2(testOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 6 {
		t.Fatalf("%d rows", len(r.Rows))
	}
	out := r.Render()
	for _, want := range []string{"961", "349", "115", "inf"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q", want)
		}
	}
}

func TestTable1Experiment(t *testing.T) {
	r, err := Table1(testOptions())
	if err != nil {
		t.Fatal(err)
	}
	out := r.Render()
	for _, want := range []string{"15 SMs", "GDDR5", "FR-FCFS"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q", want)
		}
	}
}

func TestAllRendersNonEmpty(t *testing.T) {
	// Cheap experiments only; the expensive ones have dedicated tests.
	o := testOptions()
	o.Samples = 5
	for _, id := range []string{"fig5", "fig9", "fig10", "table1", "table2"} {
		res, err := Run(id, o)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if len(res.Render()) < 40 {
			t.Errorf("%s render suspiciously short", id)
		}
	}
}

func TestCSVExports(t *testing.T) {
	o := testOptions()
	o.Samples = 5

	var res Result
	var err error
	if res, err = Fig5(o); err != nil {
		t.Fatal(err)
	}
	out := res.(CSVer).CSV()
	if !strings.HasPrefix(out, "last_round_tx,") || strings.Count(out, "\n") != 6 {
		t.Errorf("fig5 csv:\n%s", out)
	}

	if res, err = Table2(o); err != nil {
		t.Fatal(err)
	}
	out = res.(CSVer).CSV()
	if !strings.Contains(out, "961") {
		t.Errorf("table2 csv missing data:\n%s", out)
	}

	if res, err = Fig9(o); err != nil {
		t.Fatal(err)
	}
	out = res.(CSVer).CSV()
	if !strings.HasPrefix(out, "size,normal_count,skewed_count\n") {
		t.Errorf("fig9 csv header wrong")
	}

}

func TestEveryExperimentRunsAndRenders(t *testing.T) {
	if testing.Short() {
		t.Skip("full registry smoke is slow; run without -short")
	}
	heavy := map[string]bool{"fig18": true, "nocoal": true} // covered by dedicated tests
	o := testOptions()
	o.Samples = 8
	for _, id := range IDs() {
		if heavy[id] {
			continue
		}
		id := id
		t.Run(id, func(t *testing.T) {
			res, err := Run(id, o)
			if err != nil {
				t.Fatalf("%s: %v", id, err)
			}
			out := res.Render()
			if len(out) < 60 {
				t.Errorf("%s: render suspiciously short:\n%s", id, out)
			}
			if c, ok := res.(CSVer); ok {
				csv := c.CSV()
				if !strings.Contains(csv, ",") || !strings.Contains(csv, "\n") {
					t.Errorf("%s: malformed csv", id)
				}
			}
		})
	}
}
