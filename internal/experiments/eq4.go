package experiments

import (
	"fmt"
	"strings"

	"rcoal/internal/attack"
	"rcoal/internal/core"
	"rcoal/internal/kernels"
	"rcoal/internal/mechanism"
	"rcoal/internal/report"
	"rcoal/internal/rng"
	"rcoal/internal/stats"
	"rcoal/internal/theory"
)

func init() {
	Registry["ext-eq4"] = func(o Options) (Result, error) { return ExtEq4(o) }
	Registry["ext-realistic"] = func(o Options) (Result, error) { return ExtRealistic(o) }
}

// --- ext-eq4: empirical validation of Equation 4 ------------------------------

// ExtEq4Row is one (mechanism, M, sample-count) measurement.
type ExtEq4Row struct {
	Mechanism string
	M         int
	// Rho is the analytical correlation from the Section V model.
	Rho float64
	// PredictedS is Equation 4's sample count for alpha = 0.99.
	PredictedS float64
	// SuccessAt maps measured sample counts (fractions of PredictedS)
	// to the empirical per-byte recovery rate.
	Samples     []int
	SuccessRate []float64
}

// ExtEq4Result validates Equation 4 end to end: the analytical ρ from
// Table II predicts how many samples the attack needs; we measure the
// actual per-byte success rate at ¼×, 1×, and 4× that prediction on a
// noise-free counting channel (the bound Equation 4 is derived for).
// Success should be poor below the prediction and high above it.
type ExtEq4Result struct {
	Alpha float64
	Rows  []ExtEq4Row
}

// ExtEq4 runs the validation for FSS+RTS and RSS+RTS at M = 2 and 4
// (larger M needs prohibitively many samples, exactly as the paper
// argues).
func ExtEq4(o Options) (*ExtEq4Result, error) {
	if err := o.validate(); err != nil {
		return nil, err
	}
	const alpha = 0.99
	md, err := theory.NewModel(32, 16)
	if err != nil {
		return nil, err
	}
	res := &ExtEq4Result{Alpha: alpha}

	cases := []struct {
		defense mechanism.Mechanism
		m       int
		rho     float64
	}{
		{mechanism.FSSRTS(2), 2, md.RhoFSSRTS(2)},
		{mechanism.FSSRTS(4), 4, md.RhoFSSRTS(4)},
		{mechanism.RSSRTS(2), 2, md.RhoRSSRTS(2)},
		{mechanism.RSSRTS(4), 4, md.RhoRSSRTS(4)},
	}
	trials := o.Samples / 10
	if trials < 5 {
		trials = 5
	}
	for _, c := range cases {
		predicted := stats.SamplesForAttack(c.rho, alpha)
		row := ExtEq4Row{
			Mechanism:  c.defense.Name(),
			M:          c.m,
			Rho:        c.rho,
			PredictedS: predicted,
		}
		for _, scale := range []float64{0.25, 1, 4} {
			s := int(predicted*scale + 0.5)
			if s < 4 {
				s = 4
			}
			row.Samples = append(row.Samples, s)
			row.SuccessRate = append(row.SuccessRate, eq4SuccessRate(c.defense, s, trials, o.Seed))
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// eq4SuccessRate measures the per-byte recovery rate on the noise-free
// counting channel: the victim counts its true last-round accesses for
// byte 0 under hardware plans; the attacker mounts the corresponding
// 256-guess attack.
func eq4SuccessRate(defense mechanism.Mechanism, samples, trials int, seed uint64) float64 {
	wins := 0
	for trial := 0; trial < trials; trial++ {
		base := rng.New(seed).Split(uint64(trial) + 0xE4)
		hw := base.Split(1)
		data := base.Split(2)
		keyByte := byte(base.Uint64())

		cts := make([][]kernels.Line, samples)
		meas := make([]float64, samples)
		for n := 0; n < samples; n++ {
			lines := kernels.RandomPlaintext(data, 32)
			cts[n] = lines
			// The victim's true per-byte access count under its own
			// (hardware) plan for this launch.
			launch, err := defense.NewLaunch(core.DefaultWarpSize, hw)
			if err != nil {
				return 0
			}
			meas[n] = float64(attack.EstimateSample(launch.Plan, lines, 0, keyByte))
		}
		atk, err := attack.New(defense, seed^uint64(trial)*0xA7)
		if err != nil {
			return 0
		}
		br, err := atk.RecoverByte(cts, meas, 0)
		if err != nil {
			return 0
		}
		if br.Best == keyByte {
			wins++
		}
	}
	return float64(wins) / float64(trials)
}

// Render implements Result.
func (r *ExtEq4Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Extension: empirical validation of Equation 4 (alpha = %.2f)\n\n", r.Alpha)
	t := &report.Table{Headers: []string{"mechanism", "analytic rho", "predicted S",
		"success @ S/4", "success @ S", "success @ 4S"}}
	for _, row := range r.Rows {
		t.AddRow(row.Mechanism, row.Rho, fmt.Sprintf("%.0f", row.PredictedS),
			fmt.Sprintf("%.0f%% (n=%d)", 100*row.SuccessRate[0], row.Samples[0]),
			fmt.Sprintf("%.0f%% (n=%d)", 100*row.SuccessRate[1], row.Samples[1]),
			fmt.Sprintf("%.0f%% (n=%d)", 100*row.SuccessRate[2], row.Samples[2]))
	}
	b.WriteString(t.String())
	b.WriteString("\nEquation 4's sample prediction brackets the empirical transition: the\n" +
		"attack mostly fails below it and mostly succeeds above it.\n")
	return b.String()
}

// --- ext-realistic: strong vs realistic attacker --------------------------------

// ExtRealisticRow is one measurement-channel outcome.
type ExtRealisticRow struct {
	Channel string
	// AvgCorr is the baseline attack's average correct-byte correlation
	// over that channel.
	AvgCorr float64
	// Recovered is the number of key bytes recovered.
	Recovered int
}

// ExtRealisticResult compares the attacker models of Section II-C: the
// paper's strong attacker (last-round time), the realistic attacker
// (total time, diluted by the other nine rounds), and the noise-free
// bound (observed access counts).
type ExtRealisticResult struct {
	Samples int
	Rows    []ExtRealisticRow
}

// ExtRealistic runs the baseline attack over the three measurement
// channels on one dataset.
func ExtRealistic(o Options) (*ExtRealisticResult, error) {
	srv, ds, err := collect(o, mechanism.Baseline())
	if err != nil {
		return nil, err
	}
	cts := ciphertexts(ds)
	trueKey := srv.LastRoundKey()
	res := &ExtRealisticResult{Samples: o.Samples}
	for _, ch := range []struct {
		name string
		meas []float64
	}{
		{"observed access counts (bound)", ds.ObservedLastRoundTx()},
		{"last-round time (strong attacker)", ds.LastRoundTimes()},
		{"total time (realistic attacker)", ds.TotalTimes()},
	} {
		atk := attack.Baseline(o.Seed ^ 0x8EA1)
		kr, err := atk.RecoverKey(cts, ch.meas)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, ExtRealisticRow{
			Channel:   ch.name,
			AvgCorr:   kr.AvgCorrectCorrelation(trueKey),
			Recovered: kr.CorrectCount(trueKey),
		})
	}
	return res, nil
}

// Render implements Result.
func (r *ExtRealisticResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Extension (paper §II-C): attacker strength vs measurement channel (%d samples)\n\n", r.Samples)
	t := &report.Table{Headers: []string{"measurement channel", "avg correct corr", "bytes recovered"}}
	for _, row := range r.Rows {
		t.AddRow(row.Channel, row.AvgCorr, fmt.Sprintf("%d/16", row.Recovered))
	}
	b.WriteString(t.String())
	b.WriteString("\nThe paper grants the strong attacker last-round timing because the\n" +
		"realistic total-time channel needs many more samples (Equation 4 with a\n" +
		"~3x smaller rho means ~10x more samples).\n")
	return b.String()
}
