package experiments

import (
	"fmt"
	"strings"

	"rcoal/internal/attack"
	"rcoal/internal/mechanism"
	"rcoal/internal/report"
)

func init() { Registry["fig6"] = func(o Options) (Result, error) { return Fig6(o) } }

// Fig6Case is one half of Figure 6: the baseline attack against the
// GPU with coalescing enabled (6a) or disabled (6b).
type Fig6Case struct {
	CoalescingEnabled bool
	// Byte0 is the detailed per-guess result for key byte 0 (the
	// scatter of the figure).
	Byte0 *attack.ByteResult
	// TrueByte is the correct value of key byte 0.
	TrueByte byte
	// Byte0Recovered is whether the correct value won.
	Byte0Recovered bool
	// Rank is the correct value's position in the correlation ranking.
	Rank int
	// KeyBytesRecovered counts correct bytes over the full 16-byte
	// attack.
	KeyBytesRecovered int
}

// Fig6Result is the full Figure 6 reproduction.
type Fig6Result struct {
	Enabled  Fig6Case
	Disabled Fig6Case
}

// Fig6 runs the baseline attack against both configurations.
func Fig6(o Options) (*Fig6Result, error) {
	res := &Fig6Result{}
	for _, enabled := range []bool{true, false} {
		defense := mechanism.Baseline()
		if !enabled {
			defense = mechanism.NoCoal()
		}
		srv, ds, err := collect(o, defense)
		if err != nil {
			return nil, err
		}
		atk := attack.Baseline(o.Seed ^ 0xA77AC4)
		cts := ciphertexts(ds)
		times := ds.LastRoundTimes()

		kr, err := atk.RecoverKey(cts, times)
		if err != nil {
			return nil, err
		}
		lrk := srv.LastRoundKey()
		c := Fig6Case{
			CoalescingEnabled: enabled,
			Byte0:             kr.Bytes[0],
			TrueByte:          lrk[0],
			Byte0Recovered:    kr.Key[0] == lrk[0],
			Rank:              kr.Bytes[0].Rank(lrk[0]),
			KeyBytesRecovered: kr.CorrectCount(lrk),
		}
		if enabled {
			res.Enabled = c
		} else {
			res.Disabled = c
		}
	}
	return res, nil
}

func (c *Fig6Case) render(b *strings.Builder) {
	state := "ENABLED"
	if !c.CoalescingEnabled {
		state = "DISABLED"
	}
	fmt.Fprintf(b, "Coalescing %s:\n", state)
	t := &report.Table{Headers: []string{"metric", "value"}}
	t.AddRow("correct k0 correlation", c.Byte0.Correlations[c.TrueByte])
	t.AddRow("best-guess correlation", c.Byte0.BestCorr)
	t.AddRow("k0 recovered", fmt.Sprintf("%v (rank %d/256)", c.Byte0Recovered, c.Rank))
	t.AddRow("key bytes recovered", fmt.Sprintf("%d/16", c.KeyBytesRecovered))
	b.WriteString(t.String())
	b.WriteString("\n")
}

// Render implements Result.
func (r *Fig6Result) Render() string {
	var b strings.Builder
	b.WriteString("Figure 6: effect of coalescing on the recovery of last-round key byte 0\n\n")
	r.Enabled.render(&b)
	r.Disabled.render(&b)
	b.WriteString("Paper: recovery succeeds with coalescing enabled, fails when disabled.\n")
	return b.String()
}
