package experiments

import (
	"fmt"
	"strings"
)

// CSVer is implemented by experiment results that can export their
// data points in machine-readable form, for plotting the figures with
// external tools. Results without a natural tabular form (worked
// examples, configuration dumps) simply don't implement it.
type CSVer interface {
	CSV() string
}

func csvJoin(cells ...any) string {
	parts := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			parts[i] = fmt.Sprintf("%.6g", v)
		default:
			parts[i] = fmt.Sprintf("%v", v)
		}
	}
	return strings.Join(parts, ",")
}

// CSV implements CSVer: one row per sample with the raw scatter data.
func (r *Fig5Result) CSV() string {
	var b strings.Builder
	b.WriteString("last_round_tx,last_round_cycles,total_cycles\n")
	for _, p := range r.Pairs {
		b.WriteString(csvJoin(p[0], p[1], p[2]))
		b.WriteByte('\n')
	}
	return b.String()
}

// CSV implements CSVer: per num-subwarp FSS performance and security.
func (r *Fig7Result) CSV() string {
	var b strings.Builder
	b.WriteString("num_subwarp,exec_cycles,mem_accesses,baseline_attack_corr\n")
	for _, row := range r.Rows {
		b.WriteString(csvJoin(row.M, row.MeanCycles, row.MeanAccesses, row.BaselineAttackCorr))
		b.WriteByte('\n')
	}
	return b.String()
}

// CSV implements CSVer: the 256 key-byte-0 guess correlations of both
// Figure 6 panels.
func (r *Fig6Result) CSV() string {
	var b strings.Builder
	b.WriteString("coalescing_enabled,guess,correlation,is_correct\n")
	for _, c := range []*Fig6Case{&r.Enabled, &r.Disabled} {
		for m := 0; m < 256; m++ {
			b.WriteString(csvJoin(c.CoalescingEnabled, m, c.Byte0.Correlations[m], byte(m) == c.TrueByte))
			b.WriteByte('\n')
		}
	}
	return b.String()
}

// CSV implements CSVer: all 256 guess correlations per panel (the raw
// scatter of Figures 8 and 12-14).
func (r *ScatterResult) CSV() string {
	var b strings.Builder
	b.WriteString("num_subwarp,guess,correlation,is_correct\n")
	for _, p := range r.Panels {
		for m := 0; m < 256; m++ {
			b.WriteString(csvJoin(p.M, m, p.Byte0.Correlations[m], byte(m) == p.TrueByte))
			b.WriteByte('\n')
		}
	}
	return b.String()
}

// CSV implements CSVer: the full mechanism × num-subwarp grid.
func (s *SweepResult) CSV() string {
	var b strings.Builder
	b.WriteString("mechanism,num_subwarp,mean_cycles,mean_tx,norm_cycles,norm_tx,avg_correct_corr\n")
	for _, c := range s.Cells {
		b.WriteString(csvJoin(c.Mechanism, c.M, c.MeanCycles, c.MeanTx, c.NormCycles, c.NormTx, c.AvgCorrectCorr))
		b.WriteByte('\n')
	}
	return b.String()
}

// CSV implements CSVer: the selective-RCoal grid.
func (s *SelectiveSweepResult) CSV() string {
	var b strings.Builder
	b.WriteString("mechanism,num_subwarp,mean_cycles,norm_cycles,mean_last_round_tx,channel_corr\n")
	for _, c := range s.Cells {
		b.WriteString(csvJoin(c.Mechanism, c.M, c.MeanCycles, c.NormCycles, c.MeanLastRoundTx, c.ChannelCorr))
		b.WriteByte('\n')
	}
	return b.String()
}

// CSV implements CSVer via the underlying sweep.
func (r *Fig15Result) CSV() string { return r.Sweep.CSV() }

// CSV implements CSVer via the underlying sweep.
func (r *Fig16Result) CSV() string { return r.Sweep.CSV() }

// CSV implements CSVer: both score variants per cell.
func (r *Fig17Result) CSV() string {
	var b strings.Builder
	b.WriteString("num_subwarp,mechanism,security_score,performance_score\n")
	for _, row := range r.Rows {
		for _, mech := range AllMechanisms {
			b.WriteString(csvJoin(row.M, mech, row.SecurityScore[mech], row.PerformanceScore[mech]))
			b.WriteByte('\n')
		}
	}
	return b.String()
}

// CSV implements CSVer: the 1024-line case study grid.
func (r *Fig18Result) CSV() string {
	var b strings.Builder
	b.WriteString("mechanism,num_subwarp,avg_correct_corr,full_key_corr,norm_cycles\n")
	for _, c := range r.Cells {
		b.WriteString(csvJoin(c.Mechanism, c.M, c.AvgCorrectCorr, c.FullKeyCorr, c.NormCycles))
		b.WriteByte('\n')
	}
	return b.String()
}

// CSV implements CSVer: the analytical model's rows.
func (r *Table2Result) CSV() string {
	var b strings.Builder
	b.WriteString("m,rho_fss,rho_fss_rts,rho_rss_rts,s_fss,s_fss_rts,s_rss_rts\n")
	for _, row := range r.Rows {
		b.WriteString(csvJoin(row.M, row.RhoFSS, row.RhoFSSRTS, row.RhoRSSRTS,
			row.SFSS, row.SFSSRTS, row.SRSSRTS))
		b.WriteByte('\n')
	}
	return b.String()
}

// CSV implements CSVer: the size histograms side by side.
func (r *Fig9Result) CSV() string {
	var b strings.Builder
	b.WriteString("size,normal_count,skewed_count\n")
	for s := 1; s < len(r.Normal); s++ {
		if r.Normal[s] == 0 && r.Skewed[s] == 0 {
			continue
		}
		b.WriteString(csvJoin(s, r.Normal[s], r.Skewed[s]))
		b.WriteByte('\n')
	}
	return b.String()
}
