package experiments

import (
	"fmt"
	"strings"

	"rcoal/internal/aesgpu"
	"rcoal/internal/attack"
	"rcoal/internal/kernels"
	"rcoal/internal/mechanism"
	"rcoal/internal/report"
	"rcoal/internal/rng"
)

func init() {
	Registry["ext-modes"] = func(o Options) (Result, error) { return ExtModes(o) }
}

// ExtModesRow is one (service, defense) attack outcome.
type ExtModesRow struct {
	Service   string
	Defense   string
	AvgCorr   float64
	Recovered int // correct key bytes of 16
	// Target names what the attack recovers in this mode.
	Target string
}

// ExtModesResult extends the paper's threat model to the other GPU AES
// services a deployment exposes: block decryption (the attack then
// recovers the *original key* directly — the equivalent inverse
// cipher's final round key is round key 0) and CTR-mode encryption
// (the attacker reconstructs the keystream from known plaintext and
// attacks it like ECB ciphertext). Both fall to the same correlation
// attack on the undefended GPU and both are protected by RCoal.
type ExtModesResult struct {
	Rows []ExtModesRow
}

// ExtModes runs the attack against decryption and CTR services,
// undefended and defended.
func ExtModes(o Options) (*ExtModesResult, error) {
	if err := o.validate(); err != nil {
		return nil, err
	}
	res := &ExtModesResult{}
	for _, defense := range []mechanism.Mechanism{mechanism.Baseline(), mechanism.RSSRTS(8)} {
		cfg := o.gpuConfig()
		cfg.Defense = defense
		srv, err := aesgpu.NewServer(cfg, o.Key)
		if err != nil {
			return nil, err
		}

		// --- Decryption service ------------------------------------
		decRow, err := attackDecryption(o, srv, defense)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, *decRow)

		// --- CTR service --------------------------------------------
		ctrRow, err := attackCTR(o, srv, defense)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, *ctrRow)
	}
	return res, nil
}

func attackDecryption(o Options, srv *aesgpu.Server, defense mechanism.Mechanism) (*ExtModesRow, error) {
	src := rng.New(o.Seed).Split(0xDEC)
	var outputs [][]kernels.Line
	var times []float64
	for n := 0; n < o.Samples; n++ {
		cts := kernels.RandomPlaintext(src, o.Lines)
		smp, err := srv.Decrypt(cts, o.Seed^uint64(n+1)*0x9e37)
		if err != nil {
			return nil, err
		}
		outputs = append(outputs, smp.Ciphertexts) // recovered plaintexts
		times = append(times, float64(smp.LastRoundCycles))
	}
	atk, err := attack.NewDecrypt(defense, o.Seed^0xDEC0DE)
	if err != nil {
		return nil, err
	}
	kr, err := atk.RecoverKey(outputs, times)
	if err != nil {
		return nil, err
	}
	trueKey := srv.RoundZeroKey() // the original AES key
	return &ExtModesRow{
		Service:   "decryption",
		Defense:   defense.Name(),
		AvgCorr:   kr.AvgCorrectCorrelation(trueKey),
		Recovered: kr.CorrectCount(trueKey),
		Target:    "original AES key (round-0 key), no schedule inversion needed",
	}, nil
}

func attackCTR(o Options, srv *aesgpu.Server, defense mechanism.Mechanism) (*ExtModesRow, error) {
	src := rng.New(o.Seed).Split(0xC7)
	var keystreams [][]kernels.Line
	var times []float64
	for n := 0; n < o.Samples; n++ {
		pts := kernels.RandomPlaintext(src, o.Lines)
		out, err := srv.EncryptCTR(uint64(n)<<20, pts, o.Seed^uint64(n+7)*0x9e37)
		if err != nil {
			return nil, err
		}
		// The attacker reconstructs keystream = pt XOR ct; here that
		// equals out.Keystream by construction.
		keystreams = append(keystreams, out.Keystream)
		times = append(times, float64(out.LastRoundCycles))
	}
	atk, err := attack.New(defense, o.Seed^0xC7C7)
	if err != nil {
		return nil, err
	}
	kr, err := atk.RecoverKey(keystreams, times)
	if err != nil {
		return nil, err
	}
	trueKey := srv.LastRoundKey()
	return &ExtModesRow{
		Service:   "CTR encryption",
		Defense:   defense.Name(),
		AvgCorr:   kr.AvgCorrectCorrelation(trueKey),
		Recovered: kr.CorrectCount(trueKey),
		Target:    "last-round key via keystream (known plaintext)",
	}, nil
}

// Render implements Result.
func (r *ExtModesResult) Render() string {
	var b strings.Builder
	b.WriteString("Extension: the attack transfers to other GPU AES services\n\n")
	t := &report.Table{Headers: []string{"service", "defense", "avg correct corr", "bytes recovered", "target"}}
	for _, row := range r.Rows {
		t.AddRow(row.Service, row.Defense, row.AvgCorr,
			fmt.Sprintf("%d/16", row.Recovered), row.Target)
	}
	b.WriteString(t.String())
	b.WriteString("\nDecryption leaks the original key directly (its final inverse round\n" +
		"uses round key 0); CTR leaks through the reconstructed keystream. RCoal\n" +
		"closes both channels with the same mechanism.\n")
	return b.String()
}
