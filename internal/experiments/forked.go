package experiments

import (
	"strings"

	"rcoal/internal/aesgpu"
	"rcoal/internal/mechanism"
	"rcoal/internal/report"
)

// This file adds the selective-RCoal mechanism sweep, the experiment
// the copy-on-write prefix-fork accelerator (aesgpu.ForkedCollect)
// targets: every cell of the grid shares the same plaintext stream and
// the same mechanism-independent prefix (all rounds but the vulnerable
// one), so the prefix is simulated once per sample and forked per
// (mechanism, num-subwarp) configuration. Options.ForkPrefix selects
// the forked path; either path produces byte-identical results (the
// contract internal/equiv enforces).

func init() {
	Registry["ext-selective-sweep"] = func(o Options) (Result, error) {
		return SelectiveSweep(o, []int{2, 4, 8, 32})
	}
}

// SelectiveSweepVulnerableRound is the round selective RCoal defends
// in this sweep: the last AES round, the one the Section III attack
// reads.
const SelectiveSweepVulnerableRound = 10

// SelectiveSweepCell is one (mechanism, num-subwarp) point of the
// selective sweep.
type SelectiveSweepCell struct {
	Mechanism Mechanism
	M         int
	// MeanCycles / MeanLastRoundTx are per-plaintext averages.
	MeanCycles      float64
	MeanLastRoundTx float64
	// ChannelCorr is ρ(observed last-round accesses, last-round time):
	// how much of the vulnerable round's channel survives.
	ChannelCorr float64
	// NormCycles is MeanCycles normalized to the undefended baseline
	// cell.
	NormCycles float64
}

// SelectiveSweepResult is the selective-RCoal mechanism × num-subwarp
// grid.
type SelectiveSweepResult struct {
	Ms    []int
	Cells []SelectiveSweepCell // mechanism-major, then M
	// BaselineCycles is the undefended (whole-warp) reference.
	BaselineCycles float64
	// Forked records which collection path produced the result — the
	// numbers are identical either way; only wall-clock differs.
	Forked bool
}

// Cell returns the cell for (mech, m), or nil.
func (s *SelectiveSweepResult) Cell(mech Mechanism, m int) *SelectiveSweepCell {
	for i := range s.Cells {
		if s.Cells[i].Mechanism == mech && s.Cells[i].M == m {
			return &s.Cells[i]
		}
	}
	return nil
}

// SelectiveSweep evaluates every mechanism at every num-subwarp value
// in ms under selective RCoal (only SelectiveSweepVulnerableRound is
// randomized). All cells replay the same plaintext stream, so with
// Options.ForkPrefix the mechanism-independent prefix of each sample
// is simulated once and forked per cell; otherwise each cell collects
// vanilla. Cells run serially in both paths (the forked path reuses
// one prefix snapshot across cells, which a cell-parallel pool would
// forfeit); Options.Workers is ignored.
func SelectiveSweep(o Options, ms []int) (*SelectiveSweepResult, error) {
	if err := o.validate(); err != nil {
		return nil, err
	}
	// policies[0] is the undefended baseline reference; the rest are
	// the grid, mechanism-major.
	policies := []mechanism.Mechanism{MechFSS.Policy(1)}
	for _, mech := range AllMechanisms {
		for _, m := range ms {
			policies = append(policies, mech.Policy(m))
		}
	}

	cfg := o.gpuConfig()
	cfg.VulnerableRounds = []int{SelectiveSweepVulnerableRound}

	var dss []*aesgpu.Dataset
	if o.ForkPrefix {
		var err error
		dss, err = aesgpu.ForkedCollect(cfg, o.Key, policies,
			o.Samples, o.Lines, o.Seed, o.TraceCache)
		if err != nil {
			return nil, err
		}
	} else {
		dss = make([]*aesgpu.Dataset, len(policies))
		for i, p := range policies {
			c := cfg
			c.Defense = p
			_, ds, err := collectCfg(o, c)
			if err != nil {
				return nil, err
			}
			dss[i] = ds
		}
	}

	cell := func(ds *aesgpu.Dataset) (SelectiveSweepCell, error) {
		var c SelectiveSweepCell
		for _, s := range ds.Samples {
			c.MeanCycles += float64(s.TotalCycles)
			c.MeanLastRoundTx += float64(s.LastRoundTx)
		}
		c.MeanCycles /= float64(len(ds.Samples))
		c.MeanLastRoundTx /= float64(len(ds.Samples))
		var err error
		c.ChannelCorr, err = channelCorrelation(ds)
		return c, err
	}

	base, err := cell(dss[0])
	if err != nil {
		return nil, err
	}
	res := &SelectiveSweepResult{Ms: ms, BaselineCycles: base.MeanCycles, Forked: o.ForkPrefix}
	i := 1
	for _, mech := range AllMechanisms {
		for _, m := range ms {
			c, err := cell(dss[i])
			if err != nil {
				return nil, err
			}
			i++
			c.Mechanism = mech
			c.M = m
			c.NormCycles = c.MeanCycles / res.BaselineCycles
			res.Cells = append(res.Cells, c)
		}
	}
	return res, nil
}

// Render implements Result.
func (r *SelectiveSweepResult) Render() string {
	var b strings.Builder
	b.WriteString("Extension: selective-RCoal mechanism sweep (vulnerable round only)\n\n")
	t := &report.Table{Headers: []string{"mechanism", "num-subwarp", "time (x baseline)", "last-round tx", "channel corr"}}
	for _, c := range r.Cells {
		t.AddRow(c.Mechanism.String(), c.M, c.NormCycles, c.MeanLastRoundTx, c.ChannelCorr)
	}
	b.WriteString(t.String())
	b.WriteString("\nOnly the vulnerable round is randomized, so even aggressive subwarp\n" +
		"counts cost little total time while the last-round channel degrades\n" +
		"like full RCoal.\n")
	if r.Forked {
		b.WriteString("(collected via copy-on-write prefix forking — byte-identical to vanilla)\n")
	}
	return b.String()
}
