package experiments

import (
	"context"
	"fmt"
	"strings"

	"rcoal/internal/attack"
	"rcoal/internal/mechanism"
	"rcoal/internal/report"
)

func init() { Registry["fig7"] = func(o Options) (Result, error) { return Fig7(o) } }

// Fig7Row is one num-subwarp point of Figure 7: FSS performance and
// its security against the *baseline* attack (which keeps assuming
// num-subwarp = 1).
type Fig7Row struct {
	M int
	// MeanCycles and MeanAccesses are per-plaintext averages.
	MeanCycles   float64
	MeanAccesses float64
	// BaselineAttackCorr is the average correct-byte correlation the
	// baseline attack achieves against this FSS configuration.
	BaselineAttackCorr float64
}

// Fig7Result reproduces Figure 7 (a and b).
type Fig7Result struct {
	Rows []Fig7Row
}

// Fig7Subwarps are the num-subwarp values of the FSS sweep.
var Fig7Subwarps = []int{1, 2, 4, 8, 16, 32}

// Fig7 sweeps FSS over num-subwarp under the baseline attack. The
// num-subwarp rows fan out over Options.Workers; output is
// byte-identical at any worker count.
func Fig7(o Options) (*Fig7Result, error) {
	rows, err := runCells(o, Fig7Subwarps,
		func(_ int, m int) string { return fmt.Sprintf("fss/%d", m) },
		func(_ context.Context, _ int, m int) (Fig7Row, error) {
			srv, ds, err := collect(o, mechanism.FSS(m))
			if err != nil {
				return Fig7Row{}, err
			}
			row := Fig7Row{M: m}
			for _, s := range ds.Samples {
				row.MeanCycles += float64(s.TotalCycles)
				row.MeanAccesses += float64(s.TotalTx)
			}
			row.MeanCycles /= float64(len(ds.Samples))
			row.MeanAccesses /= float64(len(ds.Samples))

			atk := attack.Baseline(o.Seed ^ 0xF55)
			row.BaselineAttackCorr, err = avgCorrectCorrelation(
				atk, ciphertexts(ds), ds.LastRoundTimes(), srv.LastRoundKey(), 1)
			if err != nil {
				return Fig7Row{}, err
			}
			return row, nil
		})
	if err != nil {
		return nil, err
	}
	return &Fig7Result{Rows: rows}, nil
}

// Render implements Result.
func (r *Fig7Result) Render() string {
	var b strings.Builder
	b.WriteString("Figure 7: FSS performance and security vs num-subwarp (baseline attack)\n\n")
	t := &report.Table{Headers: []string{"num-subwarp", "exec cycles", "mem accesses", "baseline-attack corr"}}
	for _, row := range r.Rows {
		t.AddRow(row.M, fmt.Sprintf("%.0f", row.MeanCycles), fmt.Sprintf("%.0f", row.MeanAccesses),
			row.BaselineAttackCorr)
	}
	b.WriteString(t.String())
	b.WriteString("\nPaper: execution time and accesses grow with num-subwarp (7a); the\n" +
		"baseline attack's correlation decays as num-subwarp grows (7b).\n")
	return b.String()
}
