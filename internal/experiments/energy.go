package experiments

import (
	"fmt"
	"math"
	"strings"

	"rcoal/internal/aes"
	"rcoal/internal/attack"
	"rcoal/internal/gpusim"
	"rcoal/internal/kernels"
	"rcoal/internal/mechanism"
	"rcoal/internal/report"
	"rcoal/internal/rng"
	"rcoal/internal/stats"
)

func init() {
	Registry["ext-energy"] = func(o Options) (Result, error) { return ExtEnergy(o) }
	Registry["ext-noise"] = func(o Options) (Result, error) { return ExtNoise(o) }
}

// --- ext-energy ----------------------------------------------------------------

// ExtEnergyRow is one configuration's energy estimate.
type ExtEnergyRow struct {
	Label string
	// NormEnergy is energy per encryption normalized to the baseline.
	NormEnergy float64
	// DRAMShare is the DRAM fraction of total energy.
	DRAMShare float64
}

// ExtEnergyResult estimates the energy cost of each defense — the
// paper argues disabling coalescing "degrades GPU performance and
// energy efficiency significantly" (§III); this quantifies that claim
// and RCoal's gentler energy footprint on the simulated substrate.
type ExtEnergyResult struct {
	Rows []ExtEnergyRow
}

// ExtEnergy measures energy per 32-line encryption across defenses.
func ExtEnergy(o Options) (*ExtEnergyResult, error) {
	if err := o.validate(); err != nil {
		return nil, err
	}
	c, err := aes.NewCipher(o.Key)
	if err != nil {
		return nil, err
	}
	model := gpusim.DefaultEnergyModel()
	res := &ExtEnergyResult{}
	base := 0.0
	reps := o.Samples / 10
	if reps < 3 {
		reps = 3
	}
	for _, cc := range []struct {
		label   string
		defense mechanism.Mechanism
	}{
		{"baseline", mechanism.Baseline()},
		{"FSS(8)", mechanism.FSS(8)},
		{"RSS+RTS(8)", mechanism.RSSRTS(8)},
		{"FSS(32)", mechanism.FSS(32)},
		{"coalescing disabled", mechanism.NoCoal()},
	} {
		cfg := o.gpuConfig()
		cfg.Defense = cc.defense
		g, err := gpusim.New(cfg)
		if err != nil {
			return nil, err
		}
		var total, dram float64
		src := rng.New(o.Seed).Split(0xE6)
		for rep := 0; rep < reps; rep++ {
			kern, _, err := kernels.Build(c, kernels.RandomPlaintext(src, o.Lines))
			if err != nil {
				return nil, err
			}
			r, err := g.Run(kern, o.Seed^uint64(rep)*13)
			if err != nil {
				return nil, err
			}
			eb := model.Estimate(r, cfg)
			total += eb.Total()
			dram += eb.DRAM
		}
		if base == 0 {
			base = total
		}
		res.Rows = append(res.Rows, ExtEnergyRow{
			Label:      cc.label,
			NormEnergy: total / base,
			DRAMShare:  dram / total,
		})
	}
	return res, nil
}

// Render implements Result.
func (r *ExtEnergyResult) Render() string {
	var b strings.Builder
	b.WriteString("Extension: energy per encryption (GPUWattch-style model, normalized)\n\n")
	t := &report.Table{Headers: []string{"configuration", "energy (x baseline)", "DRAM share"}}
	for _, row := range r.Rows {
		t.AddRow(row.Label, row.NormEnergy, fmt.Sprintf("%.0f%%", 100*row.DRAMShare))
	}
	b.WriteString(t.String())
	b.WriteString("\nEnergy tracks data movement: DRAM dominates, so RCoal's extra accesses\n" +
		"cost energy roughly in proportion to Figure 16's tx counts, and disabling\n" +
		"coalescing is the most expensive option — the paper's §III argument.\n")
	return b.String()
}

// --- ext-noise -------------------------------------------------------------------

// ExtNoiseRow is one background-load level.
type ExtNoiseRow struct {
	BackgroundWarps int
	// ChannelCorr is ρ(last-round accesses, last-round time) under load.
	ChannelCorr float64
	// CorrectCorr is the baseline attack's avg correct-byte correlation.
	CorrectCorr float64
	// PredictedSamples extrapolates Equation 4 at alpha = 0.99 from
	// CorrectCorr.
	PredictedSamples float64
}

// ExtNoiseResult studies what separates the paper's 100-sample
// simulator attack from the 1-million-sample hardware attack of Jiang
// et al.: co-running work. Background warps contend for DRAM and the
// interconnect, burying the last-round signal and inflating the
// Equation-4 sample cost.
type ExtNoiseResult struct {
	Samples int
	Rows    []ExtNoiseRow
}

// ExtNoise measures the timing channel under increasing background
// load on the undefended GPU.
func ExtNoise(o Options) (*ExtNoiseResult, error) {
	if err := o.validate(); err != nil {
		return nil, err
	}
	c, err := aes.NewCipher(o.Key)
	if err != nil {
		return nil, err
	}
	g, err := gpusim.New(o.gpuConfig())
	if err != nil {
		return nil, err
	}
	res := &ExtNoiseResult{Samples: o.Samples}
	for _, bg := range []int{0, 8, 16, 24} {
		src := rng.New(o.Seed).Split(uint64(bg) + 0xA01E)
		var cts [][]kernels.Line
		var times, obs []float64
		for n := 0; n < o.Samples; n++ {
			lines := kernels.RandomPlaintext(src, o.Lines)
			kern, outs, err := kernels.Build(c, lines)
			if err != nil {
				return nil, err
			}
			if bg > 0 {
				// Other tenants' load fluctuates between requests: vary
				// the per-warp work so contention adds sample-to-sample
				// timing variance, as on shared hardware.
				loads := 60 + src.Intn(120)
				noise, err := kernels.BuildSynthetic(kernels.UniformRandom, bg, loads, src.Uint64())
				if err != nil {
					return nil, err
				}
				offset := len(kern.Warps)
				for _, wp := range noise.Warps {
					wp.ID += offset
					// Background traffic is untagged round-0 work.
					for i := range wp.Instrs {
						wp.Instrs[i].Round = 0
						if wp.Instrs[i].Kind == gpusim.RoundMark {
							wp.Instrs[i].Round = 0
						}
					}
					kern.Warps = append(kern.Warps, wp)
				}
			}
			r, err := g.Run(kern, src.Uint64())
			if err != nil {
				return nil, err
			}
			cts = append(cts, outs)
			times = append(times, float64(r.RoundWindow(10)))
			obs = append(obs, float64(r.LastRoundTx(10)))
		}
		row := ExtNoiseRow{BackgroundWarps: bg}
		if row.ChannelCorr, err = stats.Pearson(obs, times); err != nil {
			return nil, err
		}
		atk := attack.Baseline(o.Seed ^ 0xA01E)
		kr, err := atk.RecoverKey(cts, times)
		if err != nil {
			return nil, err
		}
		var lrk [16]byte
		copy(lrk[:], func() []byte { k := c.LastRoundKey(); return k[:] }())
		row.CorrectCorr = kr.AvgCorrectCorrelation(lrk)
		if row.CorrectCorr > 0 && row.CorrectCorr < 1 {
			row.PredictedSamples = stats.SamplesForAttack(row.CorrectCorr, 0.99)
		} else {
			// No usable signal at this sample count.
			row.PredictedSamples = math.Inf(1)
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Render implements Result.
func (r *ExtNoiseResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Extension: timing channel under co-running load (%d samples, baseline GPU)\n\n", r.Samples)
	t := &report.Table{Headers: []string{"background warps", "channel corr", "correct-byte corr", "Eq.4 samples needed"}}
	for _, row := range r.Rows {
		t.AddRow(row.BackgroundWarps, row.ChannelCorr, row.CorrectCorr,
			report.FormatFloat(row.PredictedSamples, 0))
	}
	b.WriteString(t.String())
	b.WriteString("\nContention buries the signal: this is the gap between the paper's clean\n" +
		"100-sample simulator attack and Jiang et al.'s one-million-sample attack\n" +
		"on real hardware serving other tenants.\n")
	return b.String()
}
