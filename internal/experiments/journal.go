package experiments

import (
	"context"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"

	"rcoal/internal/checkpoint"
)

// journalMeta fingerprints the options that determine an experiment's
// cell results. Resuming a journal whose fingerprint differs from the
// current run would splice together results from incompatible
// configurations, so checkpoint.Resume rejects the mismatch. The same
// fingerprint keys the cross-sweep results cache (OpenCache).
//
// Hybrid is part of the fingerprint because it changes reported scores
// (within HybridScoreBound); the exact accelerators (trace cache,
// prefix forking) are deliberately NOT — they are byte-identical by
// the internal/equiv contract, so accelerated and vanilla runs may
// share journals and cache entries.
type journalMeta struct {
	Experiment string `json:"experiment"`
	Samples    int    `json:"samples"`
	Lines      int    `json:"lines"`
	Seed       uint64 `json:"seed"`
	// KeyHash fingerprints the AES key without writing it to disk.
	KeyHash string `json:"keyHash"`
	Hybrid  bool   `json:"hybrid,omitempty"`
	// Mechanisms is the explicit defense-spec filter of mechanism-
	// enumerating experiments. omitempty keeps the fingerprints of
	// every pre-existing experiment (and of default frontier runs)
	// unchanged.
	Mechanisms []string `json:"mechanisms,omitempty"`
}

func metaFor(id string, o Options) journalMeta {
	h := fnv.New64a()
	h.Write(o.Key)
	return journalMeta{
		Experiment: id,
		Samples:    o.Samples,
		Lines:      o.Lines,
		Seed:       o.Seed,
		KeyHash:    fmt.Sprintf("%016x", h.Sum64()),
		Hybrid:     o.Hybrid,
		Mechanisms: o.Mechanisms,
	}
}

// Fingerprint returns the 16-hex-digit fingerprint of the
// result-determining options for experiment id — the identity under
// which cell results may be shared across runs, machines, and sweeps.
func Fingerprint(id string, o Options) string {
	b, err := json.Marshal(metaFor(id, o))
	if err != nil {
		// journalMeta is a flat struct of marshalable fields; this
		// cannot fail for any Options value.
		panic(err)
	}
	h := fnv.New64a()
	h.Write(b)
	return fmt.Sprintf("%016x", h.Sum64())
}

// OpenJournal opens (resume) or creates the checkpoint journal for
// experiment id at path, fingerprinted with the result-determining
// options. Attach the returned journal to Options.Journal so the
// experiment's cells are checkpointed as they complete and journaled
// cells are restored instead of re-run.
func OpenJournal(path, id string, o Options, resume bool) (*checkpoint.Journal, error) {
	meta := metaFor(id, o)
	if resume {
		return checkpoint.Resume(path, meta)
	}
	return checkpoint.Create(path, meta)
}

// OpenCache opens (creating as needed) the results-cache journal for
// experiment id under dir. Unlike a run's checkpoint journal — one per
// sweep, truncated on a fresh start — the cache is keyed by the
// options fingerprint and append-only across runs: any sweep, local or
// distributed, that computed a cell under identical result-determining
// options has already paid for it, and later sweeps restore it for
// free. Attach the returned journal to Options.Cache.
//
// The cache file is single-writer: one process (a coordinator or a
// local sweep) may have it open at a time.
func OpenCache(dir, id string, o Options) (*checkpoint.Journal, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("experiments: creating cache dir: %w", err)
	}
	path := filepath.Join(dir, fmt.Sprintf("%s-%s.cache", id, Fingerprint(id, o)))
	return checkpoint.Resume(path, metaFor(id, o))
}

// GridCell is one enumerated cell of a cell-parallel experiment: a
// stable key plus a closure that computes the cell and returns its
// canonical JSON encoding — exactly the bytes the checkpoint journal
// stores, so a computed, journaled, cached, or remotely executed cell
// all round-trip identically.
type GridCell struct {
	// Index is the cell's position in the experiment's grid.
	Index int
	// Key identifies the cell within its experiment. Keys are only
	// unique per experiment — different experiments may reuse a key
	// for different computations, which is why the results cache is
	// fingerprinted per experiment.
	Key string
	// Run computes the cell. The result must depend only on the cell's
	// identity and the result-determining Options (never on scheduling,
	// location, or worker count) — the property that makes cells
	// location-independent and distributed execution byte-identical.
	Run func(ctx context.Context) (json.RawMessage, error)
}

// CellExec executes one enumerated batch of grid cells and returns
// each cell's JSON result in order. It is the seam that decouples grid
// enumeration from execution: the default local executor fans cells
// out over the in-process worker pool, while internal/dist's executor
// leases them to remote workers. An executor owns the durability of
// what it runs (journaling, caching); runCells only unmarshals.
//
// Every current experiment enumerates its full grid in a single batch
// (one runCells call per driver); executors may rely on that.
type CellExec interface {
	ExecCells(o Options, cells []GridCell) ([]json.RawMessage, error)
}

// localExec is the default executor: the journaled evaluation loop
// every cell-parallel experiment runs on in a single process. Cells
// already in the run's journal are restored; cells in the results
// cache are copied into the journal and restored; the remainder fan
// out over the pool with the full robustness envelope (panic recovery,
// per-cell timeout, retries) and are journaled and cached as they
// complete. Restores and cache hits are reported to Telemetry outside
// the rate window.
type localExec struct{}

func (localExec) ExecCells(o Options, cells []GridCell) ([]json.RawMessage, error) {
	raws := make([]json.RawMessage, len(cells))
	todo := make([]int, 0, len(cells))
	restored := 0
	for i, c := range cells {
		if o.Journal != nil {
			if raw, ok := o.Journal.Lookup(c.Key); ok {
				raws[i] = raw
				restored++
				continue
			}
		}
		if o.Cache != nil {
			if raw, ok := o.Cache.Lookup(c.Key); ok {
				raws[i] = raw
				restored++
				if o.Telemetry != nil {
					o.Telemetry.AddCacheHit()
				}
				// Copy into the run's journal so its ledger stays
				// complete for a later resume.
				if o.Journal != nil {
					if err := o.Journal.Record(c.Key, raw); err != nil {
						return nil, err
					}
				}
				continue
			}
			if o.Telemetry != nil {
				o.Telemetry.AddCacheMiss()
			}
		}
		todo = append(todo, i)
	}
	if restored > 0 && o.Telemetry != nil {
		o.Telemetry.AddRestored(restored)
	}

	err := o.pool().MapN(context.Background(), len(todo), func(ctx context.Context, ti int) error {
		c := cells[todo[ti]]
		if o.faultHook != nil {
			if err := o.faultHook(c.Index); err != nil {
				return err
			}
		}
		raw, err := c.Run(ctx)
		if err != nil {
			return err
		}
		if o.Journal != nil {
			if err := o.Journal.Record(c.Key, raw); err != nil {
				return err
			}
		}
		if o.Cache != nil {
			if _, err := o.Cache.RecordOnce(c.Key, raw); err != nil {
				return err
			}
		}
		raws[todo[ti]] = raw
		return nil
	})
	if err != nil {
		return nil, err
	}
	return raws, nil
}

// runCells is the evaluation loop every cell-parallel experiment runs
// on. It enumerates the grid — each item becomes a GridCell with a
// stable key and a closure producing canonical JSON — and hands the
// batch to the configured executor (Options.Exec, defaulting to the
// local pool). Results land in item order, and because every path
// through an executor round-trips the same encoding/json bytes, a
// resumed, cached, or distributed run's output is byte-identical to a
// plain single-process one.
func runCells[T, R any](o Options, items []T,
	key func(i int, item T) string,
	fn func(ctx context.Context, i int, item T) (R, error)) ([]R, error) {

	cells := make([]GridCell, len(items))
	for i := range items {
		i := i
		item := items[i]
		k := key(i, item)
		cells[i] = GridCell{
			Index: i,
			Key:   k,
			Run: func(ctx context.Context) (json.RawMessage, error) {
				r, err := fn(ctx, i, item)
				if err != nil {
					return nil, err
				}
				raw, err := json.Marshal(r)
				if err != nil {
					return nil, fmt.Errorf("experiments: encoding cell %q: %w", k, err)
				}
				return raw, nil
			},
		}
	}

	var exec CellExec = localExec{}
	if o.Exec != nil {
		exec = o.Exec
	}
	raws, err := exec.ExecCells(o, cells)
	if err != nil {
		return nil, err
	}
	if len(raws) != len(cells) {
		return nil, fmt.Errorf("experiments: executor returned %d results for %d cells", len(raws), len(cells))
	}
	out := make([]R, len(items))
	for i, raw := range raws {
		if err := json.Unmarshal(raw, &out[i]); err != nil {
			return nil, fmt.Errorf("experiments: decoding cell %q: %w", cells[i].Key, err)
		}
	}
	return out, nil
}
