package experiments

import (
	"context"
	"encoding/json"
	"fmt"
	"hash/fnv"

	"rcoal/internal/checkpoint"
)

// journalMeta fingerprints the options that determine an experiment's
// cell results. Resuming a journal whose fingerprint differs from the
// current run would splice together results from incompatible
// configurations, so checkpoint.Resume rejects the mismatch.
type journalMeta struct {
	Experiment string `json:"experiment"`
	Samples    int    `json:"samples"`
	Lines      int    `json:"lines"`
	Seed       uint64 `json:"seed"`
	// KeyHash fingerprints the AES key without writing it to disk.
	KeyHash string `json:"keyHash"`
}

// OpenJournal opens (resume) or creates the checkpoint journal for
// experiment id at path, fingerprinted with the result-determining
// options. Attach the returned journal to Options.Journal so the
// experiment's cells are checkpointed as they complete and journaled
// cells are restored instead of re-run.
func OpenJournal(path, id string, o Options, resume bool) (*checkpoint.Journal, error) {
	h := fnv.New64a()
	h.Write(o.Key)
	meta := journalMeta{
		Experiment: id,
		Samples:    o.Samples,
		Lines:      o.Lines,
		Seed:       o.Seed,
		KeyHash:    fmt.Sprintf("%016x", h.Sum64()),
	}
	if resume {
		return checkpoint.Resume(path, meta)
	}
	return checkpoint.Create(path, meta)
}

// runCells is the journaled evaluation loop every cell-parallel
// experiment runs on. Each item is one cell, identified by a stable
// key; with a journal attached, already-journaled cells are restored
// by unmarshaling their recorded JSON (bypassing fn entirely) and each
// freshly computed cell is recorded before the run moves on. Results
// land in item order either way, and because recorded values
// round-trip exactly through encoding/json, a resumed run's output is
// byte-identical to an uninterrupted one.
//
// The remaining cells fan out over the pool with the pool's full
// robustness envelope (panic recovery, per-cell timeout, retries).
func runCells[T, R any](o Options, items []T,
	key func(i int, item T) string,
	fn func(ctx context.Context, i int, item T) (R, error)) ([]R, error) {

	out := make([]R, len(items))
	todo := make([]int, 0, len(items))
	for i, item := range items {
		if o.Journal != nil {
			if raw, ok := o.Journal.Lookup(key(i, item)); ok {
				if err := json.Unmarshal(raw, &out[i]); err != nil {
					return nil, fmt.Errorf("experiments: journaled cell %q: %w", key(i, item), err)
				}
				continue
			}
		}
		todo = append(todo, i)
	}

	err := o.pool().MapN(context.Background(), len(todo), func(ctx context.Context, ti int) error {
		i := todo[ti]
		if o.faultHook != nil {
			if err := o.faultHook(i); err != nil {
				return err
			}
		}
		r, err := fn(ctx, i, items[i])
		if err != nil {
			return err
		}
		if o.Journal != nil {
			if err := o.Journal.Record(key(i, items[i]), r); err != nil {
				return err
			}
		}
		out[i] = r
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
