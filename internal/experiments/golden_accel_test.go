package experiments

import (
	"os"
	"path/filepath"
	"testing"

	"rcoal/internal/kernels"
)

// This file pins the accelerator contract at the experiment level: a
// run with every accelerator enabled (trace cache installed, prefix
// forking on) must emit CSVs byte-identical to the committed goldens,
// which are generated with every accelerator OFF (`-update` runs the
// vanilla path). A single flipped bit anywhere — cache key collision,
// fork state leak, sample-assembly drift — fails the comparison.
//
// Hybrid mode is deliberately NOT exercised here: it is the one
// accelerator allowed to change scores (see HybridScoreBound and
// internal/equiv), so it can never sit behind a byte-identical pin.

// accelOptions is goldenOptions with the exact-by-contract
// accelerators switched on.
func accelOptions() Options {
	o := goldenOptions()
	o.TraceCache = kernels.NewTraceCache()
	o.ForkPrefix = true
	return o
}

// accelGoldenCases spans the Fig-class shapes: raw scatter (fig5),
// full key recovery (fig6), the FSS sweep (fig7), the 1024-line case
// study (fig18), and the prefix-forked selective sweep — the only case
// where ForkPrefix changes the execution path rather than being
// ignored.
var accelGoldenCases = []struct {
	name string
	slow bool // skipped under -short (1024-line launches)
	run  func(o Options) (CSVer, error)
}{
	{"fig5_small", false, func(o Options) (CSVer, error) { return Fig5(o) }},
	{"fig6_small", false, func(o Options) (CSVer, error) { return Fig6(o) }},
	{"fig7_small", false, func(o Options) (CSVer, error) { return Fig7(o) }},
	{"fig18_small", true, func(o Options) (CSVer, error) {
		o.Samples = 3
		return Fig18(o)
	}},
	{"selective_sweep_small", false, func(o Options) (CSVer, error) {
		return SelectiveSweep(o, []int{2, 4})
	}},
}

// TestAcceleratorsPreserveGoldenCSVs runs each case with caching and
// forking enabled and compares against the vanilla-generated golden.
func TestAcceleratorsPreserveGoldenCSVs(t *testing.T) {
	for _, tc := range accelGoldenCases {
		t.Run(tc.name, func(t *testing.T) {
			if tc.slow && testing.Short() {
				t.Skip("1024-line case study is slow; run without -short")
			}
			golden := filepath.Join("testdata", tc.name+".golden.csv")
			if *updateGolden {
				// Goldens come from the vanilla path: no cache, no
				// forking. That is what makes the comparison below a
				// differential test rather than a self-fulfilling pin.
				res, err := tc.run(goldenOptions())
				if err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(golden, []byte(res.CSV()), 0o644); err != nil {
					t.Fatal(err)
				}
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("missing golden (run with -update): %v", err)
			}
			res, err := tc.run(accelOptions())
			if err != nil {
				t.Fatal(err)
			}
			if got := res.CSV(); got != string(want) {
				t.Errorf("accelerated output diverged from vanilla golden %s:\n got:\n%s\nwant:\n%s",
					golden, got, want)
			}
		})
	}
}
