package experiments

import (
	"context"
	"fmt"
	"strings"

	"rcoal/internal/attack"
	"rcoal/internal/report"
)

func init() { Registry["fig18"] = func(o Options) (Result, error) { return Fig18(o) } }

// Fig18Subwarps are the case study's num-subwarp points.
var Fig18Subwarps = []int{1, 2, 4, 8, 16}

// Fig18Cell is one (mechanism, num-subwarp) point of the 1024-line
// case study.
type Fig18Cell struct {
	Mechanism Mechanism
	M         int
	// AvgCorrectCorr correlates the attack's estimated last-round
	// accesses with the accesses *observed during encryption* — the
	// paper's noise-free measurement that removes warp-scheduling
	// noise.
	AvgCorrectCorr float64
	// FullKeyCorr is ρ between the attack's total estimate under the
	// full correct key and the observed accesses: exactly 1 for
	// deterministic coalescing, degraded by randomization.
	FullKeyCorr float64
	// NormCycles is mean execution time normalized to num-subwarp = 1.
	NormCycles float64
}

// Fig18Result is the scalability case study on 1024-line plaintexts.
type Fig18Result struct {
	Lines   int
	Samples int
	Cells   []Fig18Cell
}

// Fig18 runs the 1024-line case study. Options.Lines is overridden to
// 1024 (the point of the experiment); Options.Samples is respected.
//
// The baseline and the mechanism × num-subwarp grid — the heaviest
// simulation load in the repository — fan out over Options.Workers;
// output is byte-identical at any worker count.
func Fig18(o Options) (*Fig18Result, error) {
	o.Lines = 1024
	res := &Fig18Result{Lines: o.Lines, Samples: o.Samples}

	type job struct {
		mech     Mechanism
		m        int
		baseline bool
	}
	jobs := []job{{baseline: true}}
	for _, mech := range AllMechanisms {
		for _, m := range Fig18Subwarps {
			jobs = append(jobs, job{mech: mech, m: m})
		}
	}

	// Exported fields: cells round-trip through the checkpoint journal
	// as JSON when Options.Journal is attached.
	type out struct {
		Cell       Fig18Cell
		BaseCycles float64
		MeanCycles float64
	}
	outs, err := runCells(o, jobs,
		func(_ int, jb job) string {
			if jb.baseline {
				return "baseline"
			}
			return fmt.Sprintf("%s/%d", jb.mech, jb.m)
		},
		func(_ context.Context, _ int, jb job) (out, error) {
			if jb.baseline {
				_, base, err := collect(o, MechFSS.Policy(1))
				if err != nil {
					return out{}, err
				}
				baseCycles := 0.0
				for _, s := range base.Samples {
					baseCycles += float64(s.TotalCycles)
				}
				return out{BaseCycles: baseCycles / float64(len(base.Samples))}, nil
			}
			srv, ds, err := collect(o, jb.mech.Policy(jb.m))
			if err != nil {
				return out{}, err
			}
			cell := Fig18Cell{Mechanism: jb.mech, M: jb.m}
			mean := 0.0
			for _, s := range ds.Samples {
				mean += float64(s.TotalCycles)
			}

			atk, err := attack.New(jb.mech.Policy(jb.m), o.Seed^0x1024)
			if err != nil {
				return out{}, err
			}
			// Correlate against observed last-round accesses, not time,
			// per Section VI-D. The grid saturates the pool, so the
			// per-key-byte loops stay serial.
			cts := ciphertexts(ds)
			obs := ds.ObservedLastRoundTx()
			cell.AvgCorrectCorr, err = avgCorrectCorrelation(atk, cts, obs, srv.LastRoundKey(), 1)
			if err != nil {
				return out{}, err
			}
			cell.FullKeyCorr, err = fullKeyEstimateCorrelation(atk, cts, obs, srv.LastRoundKey(), 1)
			if err != nil {
				return out{}, err
			}
			return out{Cell: cell, MeanCycles: mean / float64(len(ds.Samples))}, nil
		})
	if err != nil {
		return nil, err
	}

	baseCycles := outs[0].BaseCycles
	for _, ot := range outs[1:] {
		cell := ot.Cell
		cell.NormCycles = ot.MeanCycles / baseCycles
		res.Cells = append(res.Cells, cell)
	}
	return res, nil
}

// Cell returns the case-study cell for (mech, m), or nil.
func (r *Fig18Result) Cell(mech Mechanism, m int) *Fig18Cell {
	for i := range r.Cells {
		if r.Cells[i].Mechanism == mech && r.Cells[i].M == m {
			return &r.Cells[i]
		}
	}
	return nil
}

// Render implements Result.
func (r *Fig18Result) Render() string {
	var b strings.Builder
	b.WriteString("Figure 18: 1024-line case study (correlation vs observed accesses; normalized time)\n\n")
	ta := &report.Table{Title: "(a) security: avg correct-byte corr | full-key estimate corr",
		Headers: []string{"num-subwarp", "FSS", "FSS+RTS", "RSS", "RSS+RTS"}}
	tb := &report.Table{Title: "(b) normalized execution time",
		Headers: []string{"num-subwarp", "FSS", "FSS+RTS", "RSS", "RSS+RTS"}}
	for _, m := range Fig18Subwarps {
		fmtCell := func(mech Mechanism) string {
			c := r.Cell(mech, m)
			return report.FormatFloat(c.AvgCorrectCorr, 3) + " | " + report.FormatFloat(c.FullKeyCorr, 3)
		}
		ta.AddRow(m, fmtCell(MechFSS), fmtCell(MechFSSRTS), fmtCell(MechRSS), fmtCell(MechRSSRTS))
		tb.AddRow(m,
			r.Cell(MechFSS, m).NormCycles,
			r.Cell(MechFSSRTS, m).NormCycles,
			r.Cell(MechRSS, m).NormCycles,
			r.Cell(MechRSSRTS, m).NormCycles)
	}
	b.WriteString(ta.String())
	b.WriteString("\n")
	b.WriteString(tb.String())
	b.WriteString("\nPaper: correlations fall for the randomized mechanisms at num-subwarp > 1;\n" +
		"execution time grows with num-subwarp and RSS-based mechanisms stay cheaper.\n")
	return b.String()
}
