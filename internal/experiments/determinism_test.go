package experiments

import (
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"runtime"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite testdata golden files")

// goldenOptions is the reduced-scale configuration the determinism
// goldens are pinned at. Changing it invalidates testdata/*.golden.csv
// (regenerate with `go test ./internal/experiments -run Determinism -update`).
func goldenOptions() Options {
	o := DefaultOptions()
	o.Samples = 10
	return o
}

// determinismCases are the experiments whose CSV output is pinned:
// each must produce byte-identical output for every worker count, and
// match the committed golden file.
var determinismCases = []struct {
	name string
	run  func(o Options) (CSVer, error)
}{
	{"sweep_small", func(o Options) (CSVer, error) { return Sweep(o, []int{1, 2}) }},
	{"table2", func(o Options) (CSVer, error) { return Table2(o) }},
	{"fig9", func(o Options) (CSVer, error) { return Fig9(o) }},
}

// TestDeterminismAcrossWorkerCounts is the tentpole contract: the same
// seed yields the same output bytes for workers 1, 4, and NumCPU.
func TestDeterminismAcrossWorkerCounts(t *testing.T) {
	for _, tc := range determinismCases {
		t.Run(tc.name, func(t *testing.T) {
			var ref string
			for _, workers := range []int{1, 4, runtime.NumCPU()} {
				o := goldenOptions()
				o.Workers = workers
				res, err := tc.run(o)
				if err != nil {
					t.Fatalf("workers=%d: %v", workers, err)
				}
				csv := res.CSV()
				if ref == "" {
					ref = csv
					continue
				}
				if csv != ref {
					t.Errorf("workers=%d: output differs from workers=1 baseline:\n%s\nvs\n%s",
						workers, csv, ref)
				}
			}

			golden := filepath.Join("testdata", tc.name+".golden.csv")
			if *updateGolden {
				if err := os.WriteFile(golden, []byte(ref), 0o644); err != nil {
					t.Fatal(err)
				}
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("missing golden (run with -update): %v", err)
			}
			if ref != string(want) {
				t.Errorf("output diverged from %s:\n got:\n%s\nwant:\n%s", golden, ref, want)
			}
		})
	}
}

// TestCSVSchemasMatchCommittedData pins each exporter's header against
// the CSV data files committed under data/, so a schema change cannot
// silently orphan the published datasets.
func TestCSVSchemasMatchCommittedData(t *testing.T) {
	headers := map[string]CSVer{
		"fig5":                 &Fig5Result{},
		"fig7":                 &Fig7Result{},
		"fig8":                 &ScatterResult{},
		"fig12":                &ScatterResult{},
		"fig13":                &ScatterResult{},
		"fig14":                &ScatterResult{},
		"fig9":                 &Fig9Result{Normal: []int{0}, Skewed: []int{0}},
		"fig15":                &Fig15Result{Sweep: &SweepResult{}},
		"fig16":                &Fig16Result{Sweep: &SweepResult{}},
		"fig17":                &Fig17Result{},
		"fig18":                &Fig18Result{},
		"table2":               &Table2Result{},
		"ext-sensitivity":      &ExtSensitivityResult{},
		"ext-workloads":        &ExtWorkloadsResult{},
		"ext-defense-frontier": &FrontierResult{},
	}
	for id, res := range headers {
		path := filepath.Join("..", "..", "data", id+".csv")
		data, err := os.ReadFile(path)
		if err != nil {
			t.Errorf("%s: committed data file unreadable: %v", id, err)
			continue
		}
		committed, _, _ := strings.Cut(string(data), "\n")
		fresh, _, _ := strings.Cut(res.CSV(), "\n")
		if committed != fresh {
			t.Errorf("%s: exporter header %q != committed header %q", id, fresh, committed)
		}
	}
}

// TestSweepCellOrderingProperty: regardless of completion order (any
// worker count), the cell slice keeps its mechanism-major ordering,
// Cell lookup agrees with it, and the full results are deeply equal.
func TestSweepCellOrderingProperty(t *testing.T) {
	ms := []int{1, 2}
	var ref *SweepResult
	for _, workers := range []int{1, 2, 5, runtime.NumCPU()} {
		o := goldenOptions()
		o.Workers = workers
		s, err := Sweep(o, ms)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		i := 0
		for _, mech := range AllMechanisms {
			for _, m := range ms {
				cell := &s.Cells[i]
				if cell.Mechanism != mech || cell.M != m {
					t.Fatalf("workers=%d: cell %d is (%s, %d), want (%s, %d)",
						workers, i, cell.Mechanism, cell.M, mech, m)
				}
				if got := s.Cell(mech, m); got != cell {
					t.Errorf("workers=%d: Cell(%s, %d) returned %p, want slice entry %p",
						workers, mech, m, got, cell)
				}
				i++
			}
		}
		if len(s.Cells) != i {
			t.Fatalf("workers=%d: %d extra cells", workers, len(s.Cells)-i)
		}
		if ref == nil {
			ref = s
		} else if !reflect.DeepEqual(s, ref) {
			t.Errorf("workers=%d: SweepResult differs from workers=1 run", workers)
		}
	}
}

// TestProgressReporting wires Options.Progress through a sweep and
// checks the callback sees every cell exactly once.
func TestProgressReporting(t *testing.T) {
	o := goldenOptions()
	o.Samples = 5
	o.Workers = 2
	var done, total int
	o.Progress = func(d, n int) { done, total = d, n }
	if _, err := Sweep(o, []int{1}); err != nil {
		t.Fatal(err)
	}
	want := len(AllMechanisms)*1 + 1 // cells + baseline
	if done != want || total != want {
		t.Errorf("progress finished at %d/%d, want %d/%d", done, total, want, want)
	}
}

// TestWorkersValidation rejects negative worker counts.
func TestWorkersValidation(t *testing.T) {
	o := DefaultOptions()
	o.Workers = -1
	if err := o.validate(); err == nil {
		t.Error("negative Workers accepted")
	}
	if _, err := Sweep(o, []int{1}); err == nil {
		t.Error("Sweep accepted negative Workers")
	}
}
