package experiments

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"rcoal/internal/runner"
)

// TestComputeCellMatchesJournaledBytes is the worker-side determinism
// contract: a cell computed in isolation by ComputeCell must be
// byte-identical to the JSON a full local run journals for the same
// key — that equality is what makes distributed results splice
// seamlessly into the coordinator's ledger.
func TestComputeCellMatchesJournaledBytes(t *testing.T) {
	o := testOptions()
	o.Samples = 6
	o.Lines = 8

	jo := o
	path := filepath.Join(t.TempDir(), "fig7.journal")
	j, err := OpenJournal(path, "fig7", jo, false)
	if err != nil {
		t.Fatal(err)
	}
	jo.Journal = j
	if _, err := Run("fig7", jo); err != nil {
		t.Fatal(err)
	}
	defer j.Close()

	for _, key := range []string{"fss/1", "fss/4", "fss/32"} {
		want, ok := j.Lookup(key)
		if !ok {
			t.Fatalf("journal missing %q", key)
		}
		got, err := ComputeCell("fig7", o, key)
		if err != nil {
			t.Fatalf("ComputeCell(%q): %v", key, err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("ComputeCell(%q) = %s, journal has %s", key, got, want)
		}
	}
}

func TestComputeCellUnknownKey(t *testing.T) {
	o := testOptions()
	o.Samples = 2
	o.Lines = 1
	if _, err := ComputeCell("fig7", o, "rss/7"); err == nil || !strings.Contains(err.Error(), "no grid cell") {
		t.Errorf("unknown key error = %v", err)
	}
	// An experiment with no cell-parallel grid runs to completion and
	// reports the key as absent rather than hanging or panicking.
	if _, err := ComputeCell("table2", o, "anything"); err == nil || !strings.Contains(err.Error(), "no grid cell") {
		t.Errorf("gridless experiment error = %v", err)
	}
}

// TestResultsCacheWarmSweep pins the cache contract: a second sweep
// under identical result-determining options computes zero cells and
// renders identical output; a sweep under different options shares
// nothing.
func TestResultsCacheWarmSweep(t *testing.T) {
	dir := t.TempDir()
	o := testOptions()
	o.Samples = 6
	o.Lines = 8
	o.Workers = 1

	cold := o
	c1, err := OpenCache(dir, "fig7", cold)
	if err != nil {
		t.Fatal(err)
	}
	cold.Cache = c1
	var coldRan []int
	cold.faultHook = func(cell int) error { coldRan = append(coldRan, cell); return nil }
	coldTel := runner.NewTelemetry()
	cold.Telemetry = coldTel
	refRes, err := Run("fig7", cold)
	if err != nil {
		t.Fatal(err)
	}
	c1.Close()
	if len(coldRan) != len(Fig7Subwarps) {
		t.Fatalf("cold run computed %d cells, want %d", len(coldRan), len(Fig7Subwarps))
	}
	if s := coldTel.Stats(); s.CacheHits != 0 || s.CacheMisses != len(Fig7Subwarps) {
		t.Errorf("cold cache hit/miss = %d/%d, want 0/%d", s.CacheHits, s.CacheMisses, len(Fig7Subwarps))
	}

	warm := o
	c2, err := OpenCache(dir, "fig7", warm)
	if err != nil {
		t.Fatal(err)
	}
	warm.Cache = c2
	warm.faultHook = func(cell int) error {
		t.Errorf("warm run computed cell %d, want all from cache", cell)
		return nil
	}
	warmTel := runner.NewTelemetry()
	warm.Telemetry = warmTel
	res, err := Run("fig7", warm)
	if err != nil {
		t.Fatal(err)
	}
	c2.Close()
	if res.Render() != refRes.Render() {
		t.Error("cache-served run renders differently from cold run")
	}
	if s := warmTel.Stats(); s.CacheHits != len(Fig7Subwarps) || s.RestoredCells != len(Fig7Subwarps) {
		t.Errorf("warm stats = %+v, want all %d cells cache-hit and restored", s, len(Fig7Subwarps))
	}

	// Different seed → different fingerprint → nothing shared.
	other := o
	other.Seed++
	c3, err := OpenCache(dir, "fig7", other)
	if err != nil {
		t.Fatal(err)
	}
	defer c3.Close()
	if c3.Len() != 0 {
		t.Errorf("differently-seeded cache file holds %d cells, want a fresh file", c3.Len())
	}
}

func TestFingerprintSensitivity(t *testing.T) {
	o := DefaultOptions()
	base := Fingerprint("fig7", o)
	for name, variant := range map[string]Options{
		"seed":    func() Options { v := o; v.Seed++; return v }(),
		"samples": func() Options { v := o; v.Samples++; return v }(),
		"lines":   func() Options { v := o; v.Lines++; return v }(),
		"hybrid":  func() Options { v := o; v.Hybrid = true; return v }(),
		"key":     func() Options { v := o; v.Key = []byte("another 16B key!"); return v }(),
	} {
		if Fingerprint("fig7", variant) == base {
			t.Errorf("fingerprint insensitive to %s", name)
		}
	}
	if Fingerprint("fig18", o) == base {
		t.Error("fingerprint insensitive to experiment id")
	}
	// Workers/accelerators must NOT change the fingerprint: they are
	// byte-identical by contract, so their results are shareable.
	accel := o
	accel.Workers = 7
	accel.ForkPrefix = true
	if Fingerprint("fig7", accel) != base {
		t.Error("fingerprint varies with non-result-determining options")
	}
}
