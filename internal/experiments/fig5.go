package experiments

import (
	"fmt"
	"strings"

	"rcoal/internal/mechanism"
	"rcoal/internal/report"
	"rcoal/internal/stats"
)

func init() { Registry["fig5"] = func(o Options) (Result, error) { return Fig5(o) } }

// Fig5Result quantifies Figure 5: the proportionality between the
// last-round coalesced accesses, the last-round execution time, and
// the total execution time on the baseline GPU.
type Fig5Result struct {
	Samples int
	// RhoTxLastTime is ρ(last-round accesses, last-round time): the
	// strong attacker's channel.
	RhoTxLastTime float64
	// RhoTxTotalTime is ρ(last-round accesses, total time): the
	// realistic channel, diluted by the other nine rounds.
	RhoTxTotalTime float64
	// RhoLastTotal is ρ(last-round time, total time) — the
	// relationship Figure 5 plots directly.
	RhoLastTotal float64
	// Pairs holds (last-round tx, last-round cycles, total cycles) per
	// sample for scatter inspection.
	Pairs [][3]float64
}

// Fig5 runs the baseline server and measures the timing relationships.
func Fig5(o Options) (*Fig5Result, error) {
	_, ds, err := collect(o, mechanism.Baseline())
	if err != nil {
		return nil, err
	}
	tx := ds.ObservedLastRoundTx()
	last := ds.LastRoundTimes()
	total := ds.TotalTimes()

	res := &Fig5Result{Samples: o.Samples}
	if res.RhoTxLastTime, err = stats.Pearson(tx, last); err != nil {
		return nil, err
	}
	if res.RhoTxTotalTime, err = stats.Pearson(tx, total); err != nil {
		return nil, err
	}
	if res.RhoLastTotal, err = stats.Pearson(last, total); err != nil {
		return nil, err
	}
	for i := range tx {
		res.Pairs = append(res.Pairs, [3]float64{tx[i], last[i], total[i]})
	}
	return res, nil
}

// Render implements Result.
func (r *Fig5Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 5: relationship between last-round and total execution time (%d samples)\n\n", r.Samples)
	t := &report.Table{Headers: []string{"relationship", "pearson rho"}}
	t.AddRow("last-round accesses vs last-round time", r.RhoTxLastTime)
	t.AddRow("last-round accesses vs total time", r.RhoTxTotalTime)
	t.AddRow("last-round time vs total time", r.RhoLastTotal)
	b.WriteString(t.String())
	b.WriteString("\nPaper: both times correlate with the last-round accesses; the paper's\n" +
		"strong attacker therefore uses last-round time, the realistic one total time.\n")
	return b.String()
}
