package experiments

import "rcoal/internal/stats"

// RCoalScoreOf evaluates Equation 7 for one sweep cell: S is the
// squared inverse of the cell's average attack correlation, execution
// time is normalized to the baseline.
func RCoalScoreOf(cell *SweepCell, a, b float64) float64 {
	s := stats.SecurityS(cell.AvgCorrectCorr)
	return stats.RCoalScore(s, cell.NormCycles, a, b)
}
