package experiments

import (
	"fmt"
	"strings"

	"rcoal/internal/aesgpu"
	"rcoal/internal/attack"
	"rcoal/internal/kernels"
	"rcoal/internal/mechanism"
	"rcoal/internal/report"
	"rcoal/internal/rng"
)

func init() {
	Registry["ext-sharedmem"] = func(o Options) (Result, error) { return ExtSharedMem(o) }
}

// ExtSharedMemRow is one (defense, attack-channel) outcome against the
// shared-memory AES kernel.
type ExtSharedMemRow struct {
	Defense string
	Channel string
	AvgCorr float64
	// Recovered counts correct key bytes of 16.
	Recovered int
}

// ExtSharedMemResult maps the boundary of RCoal's protection: moving
// the T-tables into shared memory removes the coalescing channel (the
// rounds issue no global traffic), but it opens the shared-memory
// bank-conflict channel of Jiang et al. (GLSVLSI'17) — and subwarp
// randomization does not close it, because bank conflicts are computed
// from raw per-thread addresses regardless of coalescing groups. This
// is the quantitative form of the paper's §VII second future-work
// point: randomization is needed at every level of the hierarchy.
type ExtSharedMemResult struct {
	Samples int
	Rows    []ExtSharedMemRow
}

// ExtSharedMem attacks the shared-memory AES server through both
// channels, undefended and under RCoal.
func ExtSharedMem(o Options) (*ExtSharedMemResult, error) {
	if err := o.validate(); err != nil {
		return nil, err
	}
	res := &ExtSharedMemResult{Samples: o.Samples}
	for _, defense := range []mechanism.Mechanism{mechanism.Baseline(), mechanism.RSSRTS(8)} {
		cfg := o.gpuConfig()
		cfg.Defense = defense
		srv, err := aesgpu.NewServer(cfg, o.Key)
		if err != nil {
			return nil, err
		}
		src := rng.New(o.Seed).Split(0x5A4D)
		var cts [][]kernels.Line
		var times []float64
		for n := 0; n < o.Samples; n++ {
			lines := kernels.RandomPlaintext(src, o.Lines)
			smp, err := srv.EncryptShared(lines, o.Seed^uint64(n+1)*0x9e37)
			if err != nil {
				return nil, err
			}
			cts = append(cts, smp.Ciphertexts)
			times = append(times, float64(smp.LastRoundCycles))
		}
		trueKey := srv.LastRoundKey()

		// Channel 1: the coalescing attack has nothing to grab — the
		// last round issues zero global transactions.
		coal, err := attack.New(defense, o.Seed^0x5A4D)
		if err != nil {
			return nil, err
		}
		kr, err := coal.RecoverKey(cts, times)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, ExtSharedMemRow{
			Defense: defense.Name(), Channel: "coalescing attack",
			AvgCorr: kr.AvgCorrectCorrelation(trueKey), Recovered: kr.CorrectCount(trueKey),
		})

		// Channel 2: the bank-conflict attack reads the same timing.
		var bank attack.BankConflictAttacker
		kr2, err := bank.RecoverKey(cts, times)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, ExtSharedMemRow{
			Defense: defense.Name(), Channel: "bank-conflict attack",
			AvgCorr: kr2.AvgCorrectCorrelation(trueKey), Recovered: kr2.CorrectCount(trueKey),
		})
	}
	return res, nil
}

// Render implements Result.
func (r *ExtSharedMemResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Extension: shared-memory AES — the boundary of RCoal (%d samples)\n\n", r.Samples)
	t := &report.Table{Headers: []string{"defense", "attack channel", "avg correct corr", "bytes recovered"}}
	for _, row := range r.Rows {
		t.AddRow(row.Defense, row.Channel, row.AvgCorr, fmt.Sprintf("%d/16", row.Recovered))
	}
	b.WriteString(t.String())
	b.WriteString("\nWith tables in scratchpad the coalescing channel is gone, but the bank-\n" +
		"conflict channel leaks the key regardless of RCoal — concrete evidence for\n" +
		"the paper's §VII call to randomize every level of the memory hierarchy.\n")
	return b.String()
}
