// Package experiments reproduces every table and figure of the RCoal
// paper's evaluation (Sections III, V-C, and VI). Each experiment is a
// function from Options to a typed result that renders as an ASCII
// table/chart; the Registry maps paper artifact IDs ("fig6", "table2",
// ...) to runners for the CLI and the benchmark harness.
//
// Reproduction is shape-level, per the repository's DESIGN.md: the
// simulated substrate differs from the authors' GPGPU-Sim testbed, so
// absolute cycle counts differ, but trends, winners, and crossovers
// are expected to match the paper.
package experiments

import (
	"context"
	"fmt"
	"sort"
	"time"

	"rcoal/internal/aesgpu"
	"rcoal/internal/attack"
	"rcoal/internal/checkpoint"
	"rcoal/internal/gpusim"
	"rcoal/internal/kernels"
	"rcoal/internal/mechanism"
	"rcoal/internal/runner"
	"rcoal/internal/stats"
)

// Options parameterizes an experiment run.
type Options struct {
	// Samples is the number of plaintext timing samples (the paper
	// demonstrates all attacks with 100).
	Samples int
	// Lines is the plaintext size in 16-byte lines per sample (32 for
	// the main evaluation, 1024 for the case study).
	Lines int
	// Seed drives all randomness: plaintexts, hardware plans, attacker
	// simulations (as independent derived streams).
	Seed uint64
	// Key is the AES key under attack.
	Key []byte
	// Width is the render width for bar charts.
	Width int
	// Workers bounds how many evaluation cells an experiment runs
	// concurrently: 0 means GOMAXPROCS, 1 forces serial execution.
	// The worker count never changes results — every cell derives its
	// randomness from explicit seeds and owns its simulator and
	// attacker, so output is byte-identical at any setting.
	Workers int
	// Progress, when non-nil, is called after each completed cell of
	// the cell-parallel experiments (sweeps, scatter figures, the case
	// study). Calls are serialized.
	Progress func(done, total int)
	// Journal, when non-nil, checkpoints each completed cell of the
	// cell-parallel experiments and restores journaled cells instead of
	// re-running them — an interrupted sweep resumes where it stopped
	// with byte-identical output (see OpenJournal).
	Journal *checkpoint.Journal
	// Cache, when non-nil, is the fingerprint-keyed results cache
	// (see OpenCache): cells any prior sweep computed under identical
	// result-determining options are restored instead of re-run, and
	// freshly computed cells are recorded for future sweeps. Purely an
	// accelerator — output stays byte-identical.
	Cache *checkpoint.Journal
	// Exec, when non-nil, replaces the local worker pool as the
	// executor of the cell-parallel experiments' enumerated grids —
	// the seam the distributed coordinator (internal/dist) plugs into
	// to lease cells out to remote workers. Cells are
	// location-independent (all randomness derives from explicit
	// seeds), so any executor that runs GridCell.Run faithfully
	// produces byte-identical results. See CellExec.
	Exec CellExec
	// CellTimeout, when positive, bounds each evaluation cell's run
	// (runner.Pool.CellTimeout).
	CellTimeout time.Duration
	// Retries re-runs a failed cell up to this many extra times when
	// its error is retryable (runner.MarkRetryable); same-seed retries
	// cannot change results.
	Retries int
	// faultHook, when non-nil, runs before each freshly evaluated cell
	// with the cell's index. Test-only: the crash-safety tests use it
	// to panic or fail inside a chosen cell (see internal/faultinject).
	faultHook func(cell int) error
	// Trace, when non-nil, receives every simulator event from every
	// launch the experiment performs — install a *tracevis.Exporter to
	// dump a Perfetto-loadable trace of the whole run. The sink must be
	// safe for concurrent use unless Workers is 1; expect large volumes
	// (every issue, transaction, and reply of every sample).
	Trace gpusim.TraceSink
	// Telemetry, when non-nil, aggregates live per-cell runtime stats
	// (timing, retries, throughput) from the experiment's worker pools.
	Telemetry *runner.Telemetry
	// TraceCache, when non-nil, memoizes per-plaintext AES trace
	// construction across cells (kernels.TraceCache). Cells of a grid
	// differing only in mechanism/subwarp count replay identical
	// plaintext streams, so the cache collapses their kernel builds to
	// one. Purely an accelerator: results stay byte-identical.
	TraceCache *kernels.TraceCache
	// ForkPrefix routes eligible collection loops through
	// copy-on-write prefix forking (aesgpu.ForkedCollect): the
	// mechanism-independent prefix of each sample is simulated once
	// and forked per mechanism configuration. Only honored by
	// experiments whose cells are selective-RCoal with shared
	// plaintext streams (ext-selective-sweep); byte-identical results.
	ForkPrefix bool
	// Mechanisms, when non-empty, restricts mechanism-enumerating
	// experiments (currently ext-defense-frontier) to the given defense
	// specs (mechanism.Parse grammar, e.g. "rss+rts:8", "delay:64").
	// Empty means the registry's full frontier set. Specs are part of
	// the result-determining fingerprint.
	Mechanisms []string
	// Hybrid replaces simulation of analytically decisive sweep cells
	// with the Section V model's ρ prediction (see hybrid.go),
	// reserving cycle-accurate simulation for cells near the decision
	// threshold. UNLIKE the other accelerators this changes reported
	// security scores, within the documented HybridScoreBound;
	// performance columns stay fully simulated. Opt-in via
	// cmd/rcoal-experiments -hybrid.
	Hybrid bool
}

// gpuConfig is the GPU configuration every experiment starts from: the
// paper's Table I defaults plus the run's trace sink.
func (o Options) gpuConfig() gpusim.Config {
	cfg := gpusim.DefaultConfig()
	cfg.Trace = o.Trace
	return cfg
}

// pool returns the worker pool experiments fan their cells out over.
func (o Options) pool() runner.Pool {
	return runner.Pool{
		Workers:     o.Workers,
		OnProgress:  o.Progress,
		CellTimeout: o.CellTimeout,
		Retries:     o.Retries,
		Telemetry:   o.Telemetry,
	}
}

// DefaultOptions mirrors the paper's evaluation setup.
func DefaultOptions() Options {
	return Options{
		Samples: 100,
		Lines:   32,
		Seed:    0x8C0A1,
		Key:     []byte("RCoal eval key 1"),
		Width:   40,
	}
}

func (o Options) validate() error {
	if o.Samples < 2 {
		return fmt.Errorf("experiments: need >= 2 samples, have %d", o.Samples)
	}
	if o.Lines < 1 {
		return fmt.Errorf("experiments: need >= 1 line, have %d", o.Lines)
	}
	if len(o.Key) != 16 && len(o.Key) != 24 && len(o.Key) != 32 {
		return fmt.Errorf("experiments: key length %d invalid", len(o.Key))
	}
	if o.Workers < 0 {
		return fmt.Errorf("experiments: negative worker count %d", o.Workers)
	}
	return nil
}

// Mechanism identifies one defense mechanism family.
type Mechanism int

const (
	// MechFSS is fixed-sized subwarps.
	MechFSS Mechanism = iota
	// MechFSSRTS is FSS with random thread allocation.
	MechFSSRTS
	// MechRSS is random-sized (skewed) subwarps.
	MechRSS
	// MechRSSRTS combines random sizing and random threads.
	MechRSSRTS
)

// AllMechanisms lists the four mechanism families in paper order.
var AllMechanisms = []Mechanism{MechFSS, MechFSSRTS, MechRSS, MechRSSRTS}

// String returns the paper's name for the mechanism family.
func (m Mechanism) String() string {
	switch m {
	case MechFSS:
		return "FSS"
	case MechFSSRTS:
		return "FSS+RTS"
	case MechRSS:
		return "RSS"
	case MechRSSRTS:
		return "RSS+RTS"
	}
	return "unknown"
}

// Policy returns the subwarp-coalescing defense of this mechanism
// family with m subwarps.
func (m Mechanism) Policy(subwarps int) mechanism.Mechanism {
	switch m {
	case MechFSS:
		return mechanism.FSS(subwarps)
	case MechFSSRTS:
		return mechanism.FSSRTS(subwarps)
	case MechRSS:
		return mechanism.RSS(subwarps)
	case MechRSSRTS:
		return mechanism.RSSRTS(subwarps)
	}
	panic("experiments: unknown mechanism")
}

// collect runs the encryption server under the given defense and
// gathers the attacker's dataset.
func collect(o Options, defense mechanism.Mechanism) (*aesgpu.Server, *aesgpu.Dataset, error) {
	if err := o.validate(); err != nil {
		return nil, nil, err
	}
	cfg := o.gpuConfig()
	cfg.Defense = defense
	srv, err := aesgpu.NewServer(cfg, o.Key)
	if err != nil {
		return nil, nil, err
	}
	srv.SetTraceCache(o.TraceCache)
	ds, err := srv.Collect(o.Samples, o.Lines, o.Seed)
	if err != nil {
		return nil, nil, err
	}
	return srv, ds, nil
}

// ciphertexts extracts the attacker-visible ciphertext matrix.
func ciphertexts(ds *aesgpu.Dataset) [][]kernels.Line {
	out := make([][]kernels.Line, len(ds.Samples))
	for i, s := range ds.Samples {
		out[i] = s.Ciphertexts
	}
	return out
}

// avgCorrectCorrelation computes the mean, over the 16 key-byte
// positions, of the correlation between the attack's estimation vector
// for the *correct* byte value and the measurement vector — the metric
// of Figures 7b, 15, and 18a. It avoids the 256-guess sweep that the
// full recovery performs.
//
// The per-byte estimations fan out over up to `workers` clones of the
// attacker (each clone owns its plan cache; the shared cache is warmed
// first). The correlations are summed in byte order, so the result is
// bit-identical to the serial loop at any worker count.
func avgCorrectCorrelation(a *attack.Attacker, cts [][]kernels.Line, meas []float64, trueKey [16]byte, workers int) (float64, error) {
	a.Warm(len(cts))
	var rs [attack.KeyBytes]float64
	err := (runner.Pool{Workers: workers}).MapN(context.Background(), attack.KeyBytes,
		func(_ context.Context, j int) error {
			u := a.Clone().EstimationVector(cts, j, trueKey[j])
			r, err := stats.Pearson(u, meas)
			if err != nil {
				return err
			}
			rs[j] = r
			return nil
		})
	if err != nil {
		return 0, err
	}
	sum := 0.0
	for _, r := range rs {
		sum += r
	}
	return sum / attack.KeyBytes, nil
}

// fullKeyEstimateCorrelation grants the attacker the entire correct
// key and asks how well the mechanism lets it reconstruct the total
// last-round access count: ρ(Σ_j Û_j(k_j), measurement). For
// deterministic mechanisms (baseline, FSS) this is exactly 1 against
// observed access counts; randomization drives it down. It is the
// cleanest single number for "can the access count be predicted at
// all".
// Like avgCorrectCorrelation, the per-byte estimations fan out over
// attacker clones and are accumulated in byte order, keeping the
// result identical at any worker count.
func fullKeyEstimateCorrelation(a *attack.Attacker, cts [][]kernels.Line, meas []float64, trueKey [16]byte, workers int) (float64, error) {
	a.Warm(len(cts))
	var us [attack.KeyBytes][]float64
	err := (runner.Pool{Workers: workers}).MapN(context.Background(), attack.KeyBytes,
		func(_ context.Context, j int) error {
			us[j] = a.Clone().EstimationVector(cts, j, trueKey[j])
			return nil
		})
	if err != nil {
		return 0, err
	}
	total := make([]float64, len(cts))
	for j := 0; j < attack.KeyBytes; j++ {
		for n, v := range us[j] {
			total[n] += v
		}
	}
	return stats.Pearson(total, meas)
}

// Result is what every experiment produces: something renderable plus
// a stable ID.
type Result interface {
	// Render returns the human-readable report.
	Render() string
}

// Runner executes one experiment.
type Runner func(Options) (Result, error)

// Registry maps experiment IDs (paper artifact names) to runners. It
// is populated by the per-figure files' init functions.
var Registry = map[string]Runner{}

// IDs returns the registered experiment IDs in sorted order.
func IDs() []string {
	ids := make([]string, 0, len(Registry))
	for id := range Registry {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// Run executes the experiment with the given ID.
func Run(id string, o Options) (Result, error) {
	r, ok := Registry[id]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown experiment %q (have %v)", id, IDs())
	}
	return r(o)
}
