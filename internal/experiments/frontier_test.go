package experiments

import (
	"os"
	"path/filepath"
	"reflect"
	"runtime"
	"strings"
	"testing"
)

// frontierOptions is the reduced-scale defense grid the frontier golden
// is pinned at: one representative per defense family, so the test
// exercises subwarp plans, both obfuscation hooks, and the per-thread
// strawman without sweeping the whole registry.
func frontierOptions() Options {
	o := goldenOptions()
	o.Mechanisms = []string{"fss:4", "rss+rts:8", "delay:16", "shuffle", "nocoal"}
	return o
}

// TestFrontierSpecs pins the grid-resolution rules: baseline is always
// present and first, specs are canonicalized and deduplicated, and a
// bad spec is a clean error.
func TestFrontierSpecs(t *testing.T) {
	// Default grid: the registry's examples, baseline first.
	specs, err := frontierSpecs(DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if specs[0] != "baseline" {
		t.Fatalf("default grid starts with %q, want baseline", specs[0])
	}
	for _, want := range []string{"fss:4", "rss+rts:8", "delay:64", "shuffle", "nocoal"} {
		found := false
		for _, s := range specs {
			found = found || s == want
		}
		if !found {
			t.Errorf("default grid missing %q: %v", want, specs)
		}
	}

	// Explicit filter: canonicalized (aliases fold), deduplicated,
	// baseline prepended exactly once.
	o := DefaultOptions()
	o.Mechanisms = []string{"rssrts:8", "rss+rts:8", "baseline", "no-coalescing"}
	specs, err = frontierSpecs(o)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"baseline", "rss+rts:8", "nocoal"}
	if !reflect.DeepEqual(specs, want) {
		t.Errorf("filtered grid = %v, want %v", specs, want)
	}

	o.Mechanisms = []string{"fss:3"}
	if _, err := frontierSpecs(o); err == nil {
		t.Error("invalid spec accepted")
	}
}

// TestFrontierDeterminismAndGolden: the frontier CSV is byte-identical
// at any worker count and matches the committed golden (regenerate with
// `go test ./internal/experiments -run Frontier -update`).
func TestFrontierDeterminismAndGolden(t *testing.T) {
	var ref string
	for _, workers := range []int{1, 4, runtime.NumCPU()} {
		o := frontierOptions()
		o.Workers = workers
		res, err := DefenseFrontier(o)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		csv := res.CSV()
		if ref == "" {
			ref = csv
			continue
		}
		if csv != ref {
			t.Errorf("workers=%d: output differs from workers=1 baseline:\n%s\nvs\n%s",
				workers, csv, ref)
		}
	}

	golden := filepath.Join("testdata", "frontier_small.golden.csv")
	if *updateGolden {
		if err := os.WriteFile(golden, []byte(ref), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing golden (run with -update): %v", err)
	}
	if ref != string(want) {
		t.Errorf("output diverged from %s:\n got:\n%s\nwant:\n%s", golden, ref, want)
	}
}

// TestFrontierResultShape checks the row invariants on a small run: the
// baseline row normalizes to exactly 1.0 on every axis, every requested
// defense is present and locatable via Cell, and the strawman rows show
// the paper's qualitative ordering (no coalescing costs the most
// transactions; obfuscation defenses keep baseline transaction counts).
func TestFrontierResultShape(t *testing.T) {
	o := frontierOptions()
	res, err := DefenseFrontier(o)
	if err != nil {
		t.Fatal(err)
	}
	if res.Samples != o.Samples {
		t.Errorf("Samples = %d, want %d", res.Samples, o.Samples)
	}
	if len(res.Rows) != 6 {
		t.Fatalf("got %d rows, want 6 (baseline + 5 defenses)", len(res.Rows))
	}
	base := res.Cell("baseline")
	if base == nil || base != &res.Rows[0] {
		t.Fatal("baseline row missing or not first")
	}
	if base.NormCycles != 1 || base.NormTx != 1 || base.NormEnergy != 1 {
		t.Errorf("baseline row not normalized to 1: %+v", base)
	}
	for _, spec := range []string{"fss:4", "rss+rts:8", "delay:16", "shuffle", "nocoal"} {
		c := res.Cell(spec)
		if c == nil {
			t.Errorf("row for %q missing", spec)
			continue
		}
		if c.Name == "" || c.MeanCycles <= 0 || c.MeanTx <= 0 || c.MeanEnergy <= 0 {
			t.Errorf("%q: degenerate row %+v", spec, c)
		}
	}
	if res.Cell("unknown") != nil {
		t.Error("Cell returned a row for an unknown spec")
	}

	// Transaction counts: nocoal must cost the most; delay and shuffle
	// leave coalescing (and so tx counts) exactly at baseline.
	nocoal := res.Cell("nocoal")
	for _, spec := range []string{"fss:4", "rss+rts:8", "delay:16", "shuffle"} {
		if c := res.Cell(spec); c != nil && nocoal.MeanTx <= c.MeanTx {
			t.Errorf("nocoal tx %f not above %s tx %f", nocoal.MeanTx, spec, c.MeanTx)
		}
	}
	for _, spec := range []string{"delay:16", "shuffle"} {
		if c := res.Cell(spec); c != nil && c.MeanTx != base.MeanTx {
			t.Errorf("%s perturbed transaction counts: %f vs baseline %f", spec, c.MeanTx, base.MeanTx)
		}
	}
	// Delay injection must cost cycles over baseline (it stalls every
	// memory issue); subwarping must cost transactions over baseline.
	if c := res.Cell("delay:16"); c != nil && c.MeanCycles <= base.MeanCycles {
		t.Errorf("delay:16 cycles %f not above baseline %f", c.MeanCycles, base.MeanCycles)
	}
	if c := res.Cell("rss+rts:8"); c != nil && c.MeanTx <= base.MeanTx {
		t.Errorf("rss+rts:8 tx %f not above baseline %f", c.MeanTx, base.MeanTx)
	}

	// Render includes every row; CSV header matches the exporter schema.
	text := res.Render()
	for _, row := range res.Rows {
		if !strings.Contains(text, row.Name) {
			t.Errorf("Render missing row %q", row.Name)
		}
	}
	if !strings.HasPrefix(res.CSV(), "mechanism,spec,avg_correct_corr,") {
		t.Errorf("CSV header changed: %q", strings.SplitN(res.CSV(), "\n", 2)[0])
	}
}

// TestFrontierJournalRoundTrip: a frontier run with a journal attached
// restores every cell on resume and reproduces the same result.
func TestFrontierJournalRoundTrip(t *testing.T) {
	dir := t.TempDir()
	o := frontierOptions()
	o.Mechanisms = []string{"fss:4", "nocoal"}
	path := filepath.Join(dir, "frontier.journal")

	j, err := OpenJournal(path, "ext-defense-frontier", o, false)
	if err != nil {
		t.Fatal(err)
	}
	o.Journal = j
	first, err := DefenseFrontier(o)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	j2, err := OpenJournal(path, "ext-defense-frontier", o, true)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if j2.Len() != 3 {
		t.Fatalf("journal has %d cells, want 3", j2.Len())
	}
	o.Journal = j2
	o.faultHook = func(int) error { t.Fatal("resume recomputed a journaled cell"); return nil }
	again, err := DefenseFrontier(o)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(first, again) {
		t.Error("journaled resume produced a different frontier")
	}
}
