package experiments

import (
	"fmt"
	"testing"
)

// BenchmarkSweepWorkers measures the parallel experiment engine's
// scaling on the security/performance sweep: same seed, same cells,
// only the worker count varies. Because cell results land by input
// index, the outputs are byte-identical across sub-benchmarks — the
// speedup is free. On a single-core machine (GOMAXPROCS=1) the
// workers=4 case degenerates to serial and shows pool overhead only.
func BenchmarkSweepWorkers(b *testing.B) {
	for _, workers := range []int{1, 2, 4, 0} {
		name := fmt.Sprintf("workers=%d", workers)
		if workers == 0 {
			name = "workers=GOMAXPROCS"
		}
		b.Run(name, func(b *testing.B) {
			o := DefaultOptions()
			o.Samples = 16
			o.Workers = workers
			for i := 0; i < b.N; i++ {
				if _, err := Sweep(o, []int{1, 4}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkScatterWorkers covers the other hot path: the per-panel +
// per-key-byte fan-out of the Fig. 8/12-14 family.
func BenchmarkScatterWorkers(b *testing.B) {
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			o := DefaultOptions()
			o.Samples = 16
			o.Workers = workers
			for i := 0; i < b.N; i++ {
				if _, err := ScatterExperiment(o, MechRSS, "fig13"); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
