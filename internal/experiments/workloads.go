package experiments

import (
	"fmt"
	"strings"

	"rcoal/internal/core"
	"rcoal/internal/gpusim"
	"rcoal/internal/kernels"
	"rcoal/internal/report"
)

func init() {
	Registry["ext-workloads"] = func(o Options) (Result, error) { return ExtWorkloads(o) }
}

// ExtWorkloadsCell is one (pattern, mechanism) performance point.
type ExtWorkloadsCell struct {
	Pattern   string
	Mechanism string
	// NormCycles is the slowdown relative to the same pattern under
	// baseline coalescing.
	NormCycles float64
	// NormTx is the data-movement multiplier.
	NormTx float64
}

// ExtWorkloadsResult characterizes the mechanisms' overhead across
// memory-access patterns beyond AES: RCoal's cost is workload-
// dependent — highly coalescable (sequential/hotspot) patterns pay the
// most, already-divergent (strided) patterns pay nothing.
type ExtWorkloadsResult struct {
	Cells []ExtWorkloadsCell
}

// ExtWorkloads measures each mechanism on each synthetic pattern.
func ExtWorkloads(o Options) (*ExtWorkloadsResult, error) {
	if err := o.validate(); err != nil {
		return nil, err
	}
	const warps, loads = 4, 64
	policies := []core.Config{core.Baseline(), core.FSS(8), core.RSS(8), core.RSSRTS(8), core.FSS(32)}
	res := &ExtWorkloadsResult{}
	reps := o.Samples / 10
	if reps < 3 {
		reps = 3
	}
	for _, p := range kernels.AllPatterns {
		var baseCycles, baseTx float64
		for _, policy := range policies {
			cfg := gpusim.DefaultConfig()
			cfg.Coalescing = policy
			g, err := gpusim.New(cfg)
			if err != nil {
				return nil, err
			}
			var cycles, tx float64
			for rep := 0; rep < reps; rep++ {
				kern, err := kernels.BuildSynthetic(p, warps, loads, o.Seed^uint64(rep))
				if err != nil {
					return nil, err
				}
				r, err := g.Run(kern, o.Seed^uint64(rep)*31)
				if err != nil {
					return nil, err
				}
				cycles += float64(r.Cycles)
				tx += float64(r.TotalTx)
			}
			cycles /= float64(reps)
			tx /= float64(reps)
			if policy.NumSubwarps == 1 {
				baseCycles, baseTx = cycles, tx
			}
			res.Cells = append(res.Cells, ExtWorkloadsCell{
				Pattern:    p.String(),
				Mechanism:  policy.Name(),
				NormCycles: cycles / baseCycles,
				NormTx:     tx / baseTx,
			})
		}
	}
	return res, nil
}

// Cell returns the cell for (pattern, mechanism), or nil.
func (r *ExtWorkloadsResult) Cell(pattern, mech string) *ExtWorkloadsCell {
	for i := range r.Cells {
		if r.Cells[i].Pattern == pattern && r.Cells[i].Mechanism == mech {
			return &r.Cells[i]
		}
	}
	return nil
}

// Render implements Result.
func (r *ExtWorkloadsResult) Render() string {
	var b strings.Builder
	b.WriteString("Extension: mechanism overhead across memory-access patterns\n" +
		"(cycles and transactions normalized to baseline coalescing per pattern)\n\n")
	t := &report.Table{Headers: []string{"pattern", "mechanism", "time (x)", "tx (x)"}}
	for _, c := range r.Cells {
		t.AddRow(c.Pattern, c.Mechanism, fmt.Sprintf("%.2f", c.NormCycles), fmt.Sprintf("%.2f", c.NormTx))
	}
	b.WriteString(t.String())
	b.WriteString("\nRCoal's cost depends on how coalescable the workload was: sequential\n" +
		"patterns pay the most (subwarping shatters perfect coalescing), strided\n" +
		"(already divergent) patterns pay nothing.\n")
	return b.String()
}

// CSV implements CSVer.
func (r *ExtWorkloadsResult) CSV() string {
	var b strings.Builder
	b.WriteString("pattern,mechanism,norm_cycles,norm_tx\n")
	for _, c := range r.Cells {
		b.WriteString(csvJoin(c.Pattern, c.Mechanism, c.NormCycles, c.NormTx))
		b.WriteByte('\n')
	}
	return b.String()
}
