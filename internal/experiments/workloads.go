package experiments

import (
	"context"
	"fmt"
	"strings"

	"rcoal/internal/gpusim"
	"rcoal/internal/kernels"
	"rcoal/internal/mechanism"
	"rcoal/internal/report"
	"rcoal/internal/runner"
)

func init() {
	Registry["ext-workloads"] = func(o Options) (Result, error) { return ExtWorkloads(o) }
}

// ExtWorkloadsCell is one (pattern, mechanism) performance point.
type ExtWorkloadsCell struct {
	Pattern   string
	Mechanism string
	// NormCycles is the slowdown relative to the same pattern under
	// baseline coalescing.
	NormCycles float64
	// NormTx is the data-movement multiplier.
	NormTx float64
}

// ExtWorkloadsResult characterizes the mechanisms' overhead across
// memory-access patterns beyond AES: RCoal's cost is workload-
// dependent — highly coalescable (sequential/hotspot) patterns pay the
// most, already-divergent (strided) patterns pay nothing.
type ExtWorkloadsResult struct {
	Cells []ExtWorkloadsCell
}

// ExtWorkloads measures each mechanism on each synthetic pattern. The
// (pattern, mechanism) cells fan out over Options.Workers; each cell
// owns its simulator, and per-rep seeds derive via runner.CellSeed so
// the kernel stream is shared by every mechanism within a pattern (the
// normalization compares like against like) while the hardware stream
// stays distinct from it — the old ad-hoc xor derivation aliased both
// streams at rep 0.
func ExtWorkloads(o Options) (*ExtWorkloadsResult, error) {
	if err := o.validate(); err != nil {
		return nil, err
	}
	const warps, loads = 4, 64
	policies := []mechanism.Mechanism{mechanism.Baseline(), mechanism.FSS(8), mechanism.RSS(8), mechanism.RSSRTS(8), mechanism.FSS(32)}
	reps := o.Samples / 10
	if reps < 3 {
		reps = 3
	}

	type job struct {
		pattern kernels.Pattern
		policy  mechanism.Mechanism
	}
	jobs := make([]job, 0, len(kernels.AllPatterns)*len(policies))
	for _, p := range kernels.AllPatterns {
		for _, policy := range policies {
			jobs = append(jobs, job{pattern: p, policy: policy})
		}
	}
	// Exported fields: cells round-trip through the checkpoint journal
	// as JSON when Options.Journal is attached.
	type raw struct{ Cycles, Tx float64 }
	raws, err := runCells(o, jobs,
		func(_ int, jb job) string { return jb.pattern.String() + "/" + jb.policy.Name() },
		func(_ context.Context, _ int, jb job) (raw, error) {
			cfg := o.gpuConfig()
			cfg.Defense = jb.policy
			g, err := gpusim.New(cfg)
			if err != nil {
				return raw{}, err
			}
			var r raw
			for rep := 0; rep < reps; rep++ {
				kern, err := kernels.BuildSynthetic(jb.pattern, warps, loads,
					runner.CellSeed(o.Seed, "ext-workloads/kernel", jb.pattern.String(), rep))
				if err != nil {
					return raw{}, err
				}
				rr, err := g.Run(kern,
					runner.CellSeed(o.Seed, "ext-workloads/hw", jb.pattern.String(), jb.policy.Name(), rep))
				if err != nil {
					return raw{}, err
				}
				r.Cycles += float64(rr.Cycles)
				r.Tx += float64(rr.TotalTx)
			}
			r.Cycles /= float64(reps)
			r.Tx /= float64(reps)
			return r, nil
		})
	if err != nil {
		return nil, err
	}

	res := &ExtWorkloadsResult{}
	var baseCycles, baseTx float64
	for i, jb := range jobs {
		if jb.policy.Spec() == "baseline" {
			baseCycles, baseTx = raws[i].Cycles, raws[i].Tx
		}
		res.Cells = append(res.Cells, ExtWorkloadsCell{
			Pattern:    jb.pattern.String(),
			Mechanism:  jb.policy.Name(),
			NormCycles: raws[i].Cycles / baseCycles,
			NormTx:     raws[i].Tx / baseTx,
		})
	}
	return res, nil
}

// Cell returns the cell for (pattern, mechanism), or nil.
func (r *ExtWorkloadsResult) Cell(pattern, mech string) *ExtWorkloadsCell {
	for i := range r.Cells {
		if r.Cells[i].Pattern == pattern && r.Cells[i].Mechanism == mech {
			return &r.Cells[i]
		}
	}
	return nil
}

// Render implements Result.
func (r *ExtWorkloadsResult) Render() string {
	var b strings.Builder
	b.WriteString("Extension: mechanism overhead across memory-access patterns\n" +
		"(cycles and transactions normalized to baseline coalescing per pattern)\n\n")
	t := &report.Table{Headers: []string{"pattern", "mechanism", "time (x)", "tx (x)"}}
	for _, c := range r.Cells {
		t.AddRow(c.Pattern, c.Mechanism, fmt.Sprintf("%.2f", c.NormCycles), fmt.Sprintf("%.2f", c.NormTx))
	}
	b.WriteString(t.String())
	b.WriteString("\nRCoal's cost depends on how coalescable the workload was: sequential\n" +
		"patterns pay the most (subwarping shatters perfect coalescing), strided\n" +
		"(already divergent) patterns pay nothing.\n")
	return b.String()
}

// CSV implements CSVer.
func (r *ExtWorkloadsResult) CSV() string {
	var b strings.Builder
	b.WriteString("pattern,mechanism,norm_cycles,norm_tx\n")
	for _, c := range r.Cells {
		b.WriteString(csvJoin(c.Pattern, c.Mechanism, c.NormCycles, c.NormTx))
		b.WriteByte('\n')
	}
	return b.String()
}
