package experiments

import (
	"strings"

	"rcoal/internal/core"
	"rcoal/internal/report"
)

func init() { Registry["fig10"] = func(o Options) (Result, error) { return Fig10(o) } }

// Fig10Result reproduces the worked examples of Figures 2 and 10: a
// four-thread warp accessing blocks [A, B, B, C] under the baseline,
// FSS, FSS+RTS, and RSS+RTS groupings from the paper's illustrations.
type Fig10Result struct {
	Rows []Fig10Row
}

// Fig10Row is one example configuration.
type Fig10Row struct {
	Label    string
	Plan     core.Plan
	Accesses int
	Expected int
}

// Fig10 evaluates the worked examples (no simulation involved; the
// numbers are fully determined by the coalescing logic).
func Fig10(o Options) (*Fig10Result, error) {
	blocks := []uint64{100, 200, 200, 300} // A, B, B, C
	examples := []struct {
		label    string
		plan     core.Plan
		expected int
	}{
		{"Fig2 case 1: 1 subwarp", core.Plan{Sizes: []int{4}, SID: []uint8{0, 0, 0, 0}}, 3},
		{"Fig2 case 2: FSS M=2", core.Plan{Sizes: []int{2, 2}, SID: []uint8{0, 0, 1, 1}}, 4},
		{"Fig10a: FSS+RTS M=2", core.Plan{Sizes: []int{2, 2}, SID: []uint8{0, 1, 0, 1}}, 4},
		{"Fig10b: RSS+RTS M=2", core.Plan{Sizes: []int{3, 1}, SID: []uint8{1, 0, 0, 0}}, 3},
	}
	res := &Fig10Result{}
	for _, ex := range examples {
		if err := ex.plan.Check(); err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, Fig10Row{
			Label:    ex.label,
			Plan:     ex.plan,
			Accesses: ex.plan.CountCoalesced(blocks, nil),
			Expected: ex.expected,
		})
	}
	return res, nil
}

// Render implements Result.
func (r *Fig10Result) Render() string {
	var b strings.Builder
	b.WriteString("Figures 2 & 10: coalescing worked examples (4 threads, blocks A B B C)\n\n")
	t := &report.Table{Headers: []string{"example", "sizes", "sid per thread", "accesses", "paper"}}
	for _, row := range r.Rows {
		t.AddRow(row.Label, intsToString(row.Plan.Sizes), sidsToString(row.Plan.SID),
			row.Accesses, row.Expected)
	}
	b.WriteString(t.String())
	return b.String()
}

func intsToString(xs []int) string {
	var b strings.Builder
	for i, x := range xs {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteByte(byte('0' + x))
	}
	return b.String()
}

func sidsToString(xs []uint8) string {
	var b strings.Builder
	for i, x := range xs {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteByte(byte('0' + x))
	}
	return b.String()
}
