package experiments

import (
	"testing"

	"rcoal/internal/gpusim/tracevis"
	"rcoal/internal/runner"
)

func TestOptionsTraceAndTelemetryWired(t *testing.T) {
	// An experiment run with an exporter and telemetry installed must
	// feed both: every simulated launch traces into the exporter, and
	// the worker pool reports its cells. fig7 is cell-parallel (one
	// cell per subwarp count), so it exercises the pool's telemetry
	// hooks; the exporter must be installed concurrency-safe.
	o := testOptions()
	o.Samples = 10
	o.Workers = 2
	exp := tracevis.New()
	tel := runner.NewTelemetry()
	o.Trace = exp
	o.Telemetry = tel

	if _, err := Run("fig7", o); err != nil {
		t.Fatal(err)
	}
	if exp.Len() == 0 {
		t.Error("exporter saw no events — Options.Trace not reaching gpusim.Config")
	}
	s := tel.Stats()
	if s.TotalCells == 0 || s.CellsDone != s.TotalCells || s.CellsFailed != 0 {
		t.Errorf("telemetry not fed by the pool: %+v", s)
	}

	// The same options without the sinks must leave results identical:
	// observability may not perturb the determinism contract.
	plain := testOptions()
	plain.Samples = 10
	plain.Workers = 2
	r1, err := Run("fig7", plain)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run("fig7", o)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Render() != r2.Render() {
		t.Error("installing trace/telemetry sinks changed experiment output")
	}
}
