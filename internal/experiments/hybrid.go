package experiments

import (
	"sync"

	"rcoal/internal/theory"
)

// This file implements the hybrid analytical/simulated sweep mode
// (Options.Hybrid): sweep cells whose security score the Section V
// model predicts *decisively* skip the correlation attack entirely and
// report the analytical ρ instead, reserving the expensive attack
// simulation for cells near the decision threshold. Performance
// columns (MeanCycles, MeanTx) are always measured on the simulator —
// the analytical model says nothing about cycles.
//
// The substitution is NOT exact: the simulated score is the empirical
// Pearson correlation of the attacker's correct-guess estimation
// vectors against last-round *execution time* over o.Samples
// plaintexts, while the model's ρ is the asymptotic correlation
// against last-round *access counts*. Crucially the two only agree on
// the CLOSED side of the channel: when ρ → 0 the empirical score is
// sample noise around 0, but when ρ = 1 (deterministic mechanisms)
// the per-byte/time proxy attenuates the empirical score far below 1
// (a correct-byte estimation vector explains 1/16th of the access
// count, measured through scheduling noise). Hybrid mode therefore
// substitutes only analytically *closed* cells — ρ ≤ hybridLowRho —
// where the model's verdict transfers; every other cell, including
// the decisively-open ρ ≈ 1 ones, is simulated in full. The residual
// gap on substituted cells is bounded by HybridScoreBound, which
// internal/equiv verifies empirically on the Fig-class grids.

// HybridScoreBound bounds |AvgCorrectCorr(hybrid) −
// AvgCorrectCorr(full)| on cells where hybrid mode substitutes the
// analytical score. The slack is the finite-sample noise floor of the
// empirical correlation at closed cells (|r| ≲ 2/√samples plus
// scheduling noise at the paper's 100-sample scale); the bound is
// asserted by the internal/equiv differential harness.
const HybridScoreBound = 0.40

// hybridLowRho is the decisive threshold: substitute only cells the
// model declares closed. Mid-range cells — exactly the ones where the
// proxy gap could flip a comparison — always simulate.
const hybridLowRho = 0.1

// hybridModel lazily builds the paper-parameter analytical model
// (N=32 threads per warp, R=16 blocks per T-table). Model construction
// enumerates frequency classes once; all sweep cells share it.
var hybridModel struct {
	once sync.Once
	md   *theory.Model
	err  error
}

func hybridTheoryModel() (*theory.Model, error) {
	hybridModel.once.Do(func() {
		hybridModel.md, hybridModel.err = theory.NewModel(32, 16)
	})
	return hybridModel.md, hybridModel.err
}

// hybridPredict returns the analytical ρ for (mech, m) when the
// Section V model covers that point (theory.Model.RhoFor). RSS
// without RTS has no closed-form model in the paper (the skewed-size
// distribution breaks the composition-class enumeration), and FSS
// variants require M to divide the warp size — those cells report
// ok=false and always simulate.
func hybridPredict(mech Mechanism, m int) (rho float64, ok bool) {
	md, err := hybridTheoryModel()
	if err != nil {
		return 0, false
	}
	return md.RhoFor(mech.Policy(m))
}

// hybridScore returns the score to substitute for (mech, m) under
// hybrid mode, or ok=false when the cell must be simulated — either
// because no analytical model covers it or because the model does not
// declare the channel closed.
func hybridScore(mech Mechanism, m int) (rho float64, ok bool) {
	rho, ok = hybridPredict(mech, m)
	if !ok || rho > hybridLowRho {
		return 0, false
	}
	return rho, true
}
