package experiments

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
)

// ComputeCell runs exactly one cell of experiment id's grid — the cell
// whose stable key is key — and returns its canonical JSON encoding,
// byte-identical to what a full local run would journal for it. This
// is the worker side of distributed sweeps: a leased cell names its
// experiment and key, and the worker recomputes just that cell.
//
// The implementation drives the ordinary experiment runner with a
// capturing executor: the driver enumerates its grid as usual, the
// executor runs only the requested cell, and the rest of the driver is
// abandoned. Grid enumeration is cheap (no simulation happens before
// execution), so the overhead over a hand-rolled per-experiment
// dispatch is negligible — and no experiment needs per-cell plumbing
// of its own.
func ComputeCell(id string, o Options, key string) (json.RawMessage, error) {
	cap := &captureExec{key: key}
	o.Exec = cap
	// A single-cell computation owns no sweep-level machinery.
	o.Journal = nil
	o.Cache = nil
	o.Progress = nil
	o.Telemetry = nil
	_, runErr := Run(id, o)
	if cap.found {
		if cap.err != nil {
			return nil, cap.err
		}
		return cap.raw, nil
	}
	if runErr != nil && !errors.Is(runErr, errCellCaptured) {
		return nil, runErr
	}
	return nil, fmt.Errorf("experiments: %s has no grid cell %q", id, key)
}

// errCellCaptured aborts an experiment driver once the capturing
// executor has what it came for (or knows the batch lacks it). It
// deliberately surfaces through the driver's error path: the driver's
// post-processing needs the full grid, which a single-cell run never
// produces.
var errCellCaptured = errors.New("experiments: cell captured; driver abandoned")

// captureExec runs the one cell matching key and aborts the driver.
// Relies on the CellExec contract that a driver enumerates its full
// grid in one batch: a key absent from the batch is absent from the
// experiment.
type captureExec struct {
	key   string
	found bool
	raw   json.RawMessage
	err   error
}

func (c *captureExec) ExecCells(_ Options, cells []GridCell) ([]json.RawMessage, error) {
	for _, cell := range cells {
		if cell.Key == c.key {
			c.found = true
			c.raw, c.err = cell.Run(context.Background())
			break
		}
	}
	return nil, errCellCaptured
}
