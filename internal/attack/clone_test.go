package attack

import (
	"sync"
	"testing"

	"rcoal/internal/kernels"
	"rcoal/internal/mechanism"
)

// TestCloneMatchesParent: clones derive exactly the plans and
// estimates the parent would, warmed or cold.
func TestCloneMatchesParent(t *testing.T) {
	cts := make([][]kernels.Line, 20)
	for n := range cts {
		cts[n] = randomLines(uint64(n+1), 32)
	}
	for _, warm := range []int{0, 5, 20} {
		parent, err := New(mechanism.RSSRTS(8), 0xC10)
		if err != nil {
			t.Fatal(err)
		}
		parent.Warm(warm)
		clone := parent.Clone()

		// Reference from a fresh attacker with the same seed.
		ref, err := New(mechanism.RSSRTS(8), 0xC10)
		if err != nil {
			t.Fatal(err)
		}
		for j := 0; j < KeyBytes; j += 3 {
			want := ref.EstimationVector(cts, j, byte(j*7))
			got := clone.EstimationVector(cts, j, byte(j*7))
			for n := range want {
				if got[n] != want[n] {
					t.Fatalf("warm=%d j=%d: clone estimate[%d] = %v, want %v", warm, j, n, got[n], want[n])
				}
			}
		}
		// The clone's cache growth must not have leaked into the parent.
		if len(parent.planCache) != warm {
			t.Errorf("warm=%d: parent cache grew to %d", warm, len(parent.planCache))
		}
	}
}

// TestCloneRaceRegression is the -race regression for the plan-cache
// hazard: two attackers (clones of one warmed parent) run estimation
// loops on sibling goroutines, including past the warmed range so both
// exercise concurrent cache growth on their own copies. Run with
// `go test -race ./internal/attack`.
func TestCloneRaceRegression(t *testing.T) {
	cts := make([][]kernels.Line, 30)
	for n := range cts {
		cts[n] = randomLines(uint64(n+1), 32)
	}
	parent, err := New(mechanism.RSSRTS(4), 0xACE)
	if err != nil {
		t.Fatal(err)
	}
	parent.Warm(10) // warm only a prefix: clones must grow independently

	serial := make([][]float64, KeyBytes)
	for j := range serial {
		serial[j] = parent.Clone().EstimationVector(cts, j, byte(j))
	}

	var wg sync.WaitGroup
	parallel := make([][]float64, KeyBytes)
	for w := 0; w < 2; w++ { // two sibling workers, split by parity
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			atk := parent.Clone()
			for j := w; j < KeyBytes; j += 2 {
				parallel[j] = atk.EstimationVector(cts, j, byte(j))
			}
		}(w)
	}
	wg.Wait()

	for j := range serial {
		for n := range serial[j] {
			if parallel[j][n] != serial[j][n] {
				t.Fatalf("j=%d sample %d: parallel %v != serial %v", j, n, parallel[j][n], serial[j][n])
			}
		}
	}
}
