package attack

import (
	"fmt"

	"rcoal/internal/aes"
	"rcoal/internal/kernels"
	"rcoal/internal/stats"
)

// Bank-conflict attack: the shared-memory analogue of the coalescing
// attack (Jiang et al., GLSVLSI'17). When the T-tables live in
// scratchpad, a last-round lookup's latency is its bank-conflict
// serialization degree — the maximum number of distinct words any
// shared-memory bank must serve. Like the coalesced-access count, the
// degree is a deterministic per-byte function of ciphertext and key
// byte, so the same correlate-and-rank machinery recovers the key.
//
// RCoal does not close this channel: subwarp plans regroup threads for
// *coalescing*, while bank conflicts are computed from raw per-thread
// addresses regardless of grouping. The ext-sharedmem experiment uses
// this attacker to map that boundary.

// SharedBanks is the bank count of the modeled scratchpad.
const SharedBanks = 32

// EstimateSharedSample predicts the summed last-round bank-conflict
// degree of one sample for key byte j and guess m: per 32-line warp,
// the conflict degree of lookup j, summed over warps. Table entries
// are 4-byte words, so entry i of table T4 occupies bank
// (T4·256 + i) mod 32 = (i + T4·256) mod 32; the table offset shifts
// every index equally and cancels in the degree, so index mod 32
// suffices.
func EstimateSharedSample(lines []kernels.Line, j int, m byte) int {
	if j < 0 || j >= KeyBytes {
		panic(fmt.Sprintf("attack: key byte index %d out of range", j))
	}
	const warpSize = 32
	total := 0
	for base := 0; base < len(lines); base += warpSize {
		hi := base + warpSize
		if hi > len(lines) {
			hi = len(lines)
		}
		// words[b] is a bitmask of distinct word indices seen in bank b:
		// index i maps to bank i%32 and word i/32 ∈ [0,8) for a 256-entry
		// table.
		var words [SharedBanks]uint8
		for t := base; t < hi; t++ {
			idx := aes.LastRoundIndex(lines[t][j], m)
			words[idx%SharedBanks] |= 1 << (idx / SharedBanks)
		}
		degree := 0
		for b := 0; b < SharedBanks; b++ {
			if n := popcount8(words[b]); n > degree {
				degree = n
			}
		}
		total += degree
	}
	return total
}

func popcount8(x uint8) int {
	n := 0
	for x != 0 {
		x &= x - 1
		n++
	}
	return n
}

// BankConflictAttacker mounts the correlation attack over the bank-
// conflict channel. It has no randomness to simulate: the channel is
// deterministic, like the baseline coalescing attack.
type BankConflictAttacker struct{}

// EstimationVector returns the predicted conflict degrees for guess m
// of byte j across samples.
func (BankConflictAttacker) EstimationVector(cts [][]kernels.Line, j int, m byte) []float64 {
	out := make([]float64, len(cts))
	for n, lines := range cts {
		out[n] = float64(EstimateSharedSample(lines, j, m))
	}
	return out
}

// RecoverByte ranks all 256 guesses for key byte j against the
// measurement vector.
func (a BankConflictAttacker) RecoverByte(cts [][]kernels.Line, measurements []float64, j int) (*ByteResult, error) {
	if len(cts) != len(measurements) {
		return nil, fmt.Errorf("attack: %d samples vs %d measurements", len(cts), len(measurements))
	}
	if len(cts) < 2 {
		return nil, fmt.Errorf("attack: need at least 2 samples, have %d", len(cts))
	}
	res := &ByteResult{BestCorr: -2}
	for m := 0; m < 256; m++ {
		u := a.EstimationVector(cts, j, byte(m))
		r, err := stats.Pearson(u, measurements)
		if err != nil {
			return nil, err
		}
		res.Correlations[m] = r
		if r > res.BestCorr {
			res.BestCorr = r
			res.Best = byte(m)
		}
	}
	return res, nil
}

// RecoverKey attacks all 16 key bytes over the bank-conflict channel.
func (a BankConflictAttacker) RecoverKey(cts [][]kernels.Line, measurements []float64) (*KeyResult, error) {
	kr := &KeyResult{}
	for j := 0; j < KeyBytes; j++ {
		br, err := a.RecoverByte(cts, measurements, j)
		if err != nil {
			return nil, err
		}
		kr.Bytes[j] = br
		kr.Key[j] = br.Best
	}
	return kr, nil
}
