package attack

import (
	"testing"

	"rcoal/internal/kernels"
)

// Steady-state allocation guards for the attack inner loop: once an
// attacker has warmed its plan cache, nibble table, and scoring
// scratch, a full key-byte scoring pass (256 guesses × N samples) must
// allocate exactly one value — the ByteResult that escapes — and
// num-subwarp inference must allocate nothing.

func attackFixture(samples, lines int) ([][]kernels.Line, []float64) {
	cts := make([][]kernels.Line, samples)
	measurements := make([]float64, samples)
	for s := range cts {
		cts[s] = randomLines(uint64(s+1), lines)
		measurements[s] = float64(100 + s%7)
	}
	return cts, measurements
}

func TestRecoverByteSteadyStateAllocations(t *testing.T) {
	cts, measurements := attackFixture(30, 32)
	atk := Baseline(1)
	if _, err := atk.RecoverByte(cts, measurements, 0); err != nil {
		t.Fatal(err)
	}
	j := 0
	avg := testing.AllocsPerRun(10, func() {
		if _, err := atk.RecoverByte(cts, measurements, j); err != nil {
			t.Fatal(err)
		}
		j = (j + 1) % KeyBytes
	})
	if avg > 1 {
		t.Errorf("warm RecoverByte allocates %.1f times per pass, pinned at 1 (the ByteResult)", avg)
	}
}

func TestInferZeroAllocations(t *testing.T) {
	cal := Calibration{1: 100, 2: 180, 4: 310, 8: 540, 16: 900, 32: 1500}
	avg := testing.AllocsPerRun(100, func() {
		cal.Infer(333)
	})
	if avg != 0 {
		t.Errorf("Infer allocates %.1f times per call, want 0", avg)
	}
}
