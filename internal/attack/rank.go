package attack

import "math"

// Key-rank metrics: finer-grained security measures than the binary
// recovered/not-recovered. The paper reasons in terms of correlations
// and sample counts; rank metrics summarize how close an attack came,
// which the evaluation uses to compare near-misses across mechanisms.

// GuessingEntropy returns the average rank (0 = attacker's first
// guess) of the correct byte value across the 16 positions: the
// expected number of wrong guesses per byte before hitting the right
// one if the attacker descends the correlation ranking.
func (k *KeyResult) GuessingEntropy(trueKey [KeyBytes]byte) float64 {
	sum := 0.0
	for j := 0; j < KeyBytes; j++ {
		sum += float64(k.Bytes[j].Rank(trueKey[j]))
	}
	return sum / KeyBytes
}

// RemainingKeyBits estimates the brute-force work left after the
// attack, in bits: Σ_j log2(rank_j + 1). A fully successful attack
// leaves 0 bits; an uninformative one leaves ≈16·log2(128) ≈ 112 bits
// (expected rank 127.5 per byte against a uniform ranking).
func (k *KeyResult) RemainingKeyBits(trueKey [KeyBytes]byte) float64 {
	bits := 0.0
	for j := 0; j < KeyBytes; j++ {
		bits += math.Log2(float64(k.Bytes[j].Rank(trueKey[j]) + 1))
	}
	return bits
}
