package attack

import (
	"fmt"
	"math"
	"sort"

	"rcoal/internal/aesgpu"
	"rcoal/internal/gpusim"
	"rcoal/internal/mechanism"
	"rcoal/internal/stats"
)

// This file implements the prelude to the FSS attack described in
// Section IV-A of the paper: before Algorithm 1 can run, the attacker
// must learn num-subwarp. "The calculation can be done based on the
// significant execution time differences across num-subwarp values
// (Figure 7). By repeatedly measuring the execution time for
// encryption of a plaintext, an attacker can determine which
// num-subwarp is used by the remote GPU server."
//
// The attacker calibrates on hardware it controls (the same GPU model
// with known settings), building a timing profile per candidate M,
// then matches the victim's observed mean time against the profile.

// Calibration maps a candidate num-subwarp value to the expected mean
// total execution time (cycles per encryption) on the attacker's
// reference hardware.
type Calibration map[int]float64

// CalibrateSubwarps builds a timing profile by running the given
// mechanism family at each candidate M on an attacker-controlled
// replica of the victim GPU. The key is arbitrary: mean timing over
// random plaintexts is key-independent.
func CalibrateSubwarps(base gpusim.Config, family func(int) mechanism.Mechanism,
	candidates []int, samples, lines int, seed uint64) (Calibration, error) {
	if samples < 1 || lines < 1 {
		return nil, fmt.Errorf("attack: calibration needs positive samples (%d) and lines (%d)", samples, lines)
	}
	cal := Calibration{}
	for _, m := range candidates {
		cfg := base
		cfg.Defense = family(m)
		srv, err := aesgpu.NewServer(cfg, []byte("calibration-key!"))
		if err != nil {
			return nil, fmt.Errorf("attack: calibrating M=%d: %w", m, err)
		}
		ds, err := srv.Collect(samples, lines, seed^uint64(m)*0x9e37)
		if err != nil {
			return nil, err
		}
		cal[m] = stats.Mean(ds.TotalTimes())
	}
	return cal, nil
}

// Candidates returns the calibrated M values in ascending order.
func (c Calibration) Candidates() []int {
	out := make([]int, 0, len(c))
	for m := range c {
		out = append(out, m)
	}
	sort.Ints(out)
	return out
}

// Infer matches an observed mean execution time against the profile
// and returns the closest candidate M plus the relative timing gap to
// the runner-up (a confidence proxy: small gaps mean the guess is
// fragile).
func (c Calibration) Infer(observedMeanCycles float64) (m int, margin float64) {
	if len(c) == 0 {
		panic("attack: Infer on empty calibration")
	}
	// Allocation-free two-minima scan. Candidates are ordered
	// lexicographically by (distance, M) — the same total order the
	// ranking previously sorted by — so the result is independent of
	// the map's iteration order.
	bestM, nextM := 0, 0
	bestD, nextD := math.Inf(1), math.Inf(1)
	haveBest, haveNext := false, false
	for mm, t := range c {
		d := math.Abs(t - observedMeanCycles)
		switch {
		case !haveBest || d < bestD || (d == bestD && mm < bestM):
			nextM, nextD, haveNext = bestM, bestD, haveBest
			bestM, bestD, haveBest = mm, d, true
		case !haveNext || d < nextD || (d == nextD && mm < nextM):
			nextM, nextD, haveNext = mm, d, true
		}
	}
	if !haveNext {
		return bestM, math.Inf(1)
	}
	if observedMeanCycles != 0 {
		return bestM, (nextD - bestD) / observedMeanCycles
	}
	return bestM, 0
}

// ObserveMeanTime is the attacker's victim-side measurement: the mean
// total execution time over the dataset.
func ObserveMeanTime(ds *aesgpu.Dataset) float64 {
	return stats.Mean(ds.TotalTimes())
}
